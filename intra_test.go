package busytime_test

import (
	"context"
	"testing"

	"busytime"
	"busytime/internal/generator"
)

// clustered returns a multi-component instance: WithIntraWorkers' natural
// habitat.
func clustered(seed int64) *busytime.Instance {
	return generator.Clustered(seed, 8, 30, 3, 12, 5)
}

// TestWithIntraWorkersValidation pins the option's eager validation.
func TestWithIntraWorkersValidation(t *testing.T) {
	if _, err := busytime.New(busytime.WithIntraWorkers(-1)); err == nil {
		t.Error("negative intra workers accepted")
	}
	if _, err := busytime.New(busytime.WithIntraWorkers(0), busytime.WithFreshSchedules()); err == nil {
		t.Error("WithIntraWorkers + WithFreshSchedules accepted; borrowed arenas need the pool")
	}
	if _, err := busytime.New(busytime.WithIntraWorkers(1), busytime.WithFreshSchedules()); err != nil {
		t.Errorf("WithIntraWorkers(1) is off and should coexist with fresh mode: %v", err)
	}
	if _, err := busytime.New(busytime.WithIntraWorkers(0), busytime.WithWorkers(4)); err != nil {
		t.Errorf("auto intra workers rejected: %v", err)
	}
}

// TestSolveDecomposesAndMatchesSequential pins the public decomposed path
// bitwise against a sequential session, and the Decomp telemetry shape.
func TestSolveDecomposesAndMatchesSequential(t *testing.T) {
	for _, name := range []string{"firstfit", "bestfit", "online-firstfit"} {
		seq, err := busytime.New(busytime.WithAlgorithm(name), busytime.WithVerify(true))
		if err != nil {
			t.Fatal(err)
		}
		par, err := busytime.New(busytime.WithAlgorithm(name), busytime.WithVerify(true),
			busytime.WithWorkers(4), busytime.WithIntraWorkers(0))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			in := clustered(seed)
			want, err := seq.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if want.Decomp.Decomposed() || want.Decomp.Components != 0 {
				t.Fatalf("%s: sequential session reports decomposition: %+v", name, want.Decomp)
			}
			wantCost, wantMachines := want.Cost, want.Machines

			got, err := par.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Decomp.Decomposed() {
				t.Fatalf("%s seed=%d: layer declined with 3 spare arenas: %+v", name, seed, got.Decomp)
			}
			d := got.Decomp
			if d.Components < 2 || d.Workers < 2 || d.LargestComponent < 1 {
				t.Fatalf("%s seed=%d: telemetry %+v", name, seed, d)
			}
			if len(d.PerComponent) != d.Components {
				t.Fatalf("%s seed=%d: %d per-component entries for %d components", name, seed, len(d.PerComponent), d.Components)
			}
			jobs := 0
			for _, c := range d.PerComponent {
				jobs += c.Jobs
			}
			if jobs != in.N() {
				t.Fatalf("%s seed=%d: component sizes sum to %d, want %d", name, seed, jobs, in.N())
			}
			if got.Cost != wantCost || got.Machines != wantMachines {
				t.Fatalf("%s seed=%d: decomposed (m=%d cost=%v) vs sequential (m=%d cost=%v)",
					name, seed, got.Machines, got.Cost, wantMachines, wantCost)
			}
			for j := 0; j < in.N(); j++ {
				if got.Schedule.MachineOf(j) != want.Schedule.MachineOf(j) {
					t.Fatalf("%s seed=%d: job %d machine %d vs %d", name, seed, j,
						got.Schedule.MachineOf(j), want.Schedule.MachineOf(j))
				}
			}
		}
	}
}

// TestSolveBatchDecomposedParity pins the batch path: SolveBatch with intra
// workers equals SolveBatch without, and the per-result telemetry reports the
// components.
func TestSolveBatchDecomposedParity(t *testing.T) {
	var batch []*busytime.Instance
	for seed := int64(0); seed < 5; seed++ {
		batch = append(batch, clustered(seed))
	}
	plain, err := busytime.New(busytime.WithWorkers(4), busytime.WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	intra, err := busytime.New(busytime.WithWorkers(4), busytime.WithIntraWorkers(0), busytime.WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.SolveBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := intra.SolveBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	decomposed := 0
	for i := range want {
		if want[i].Err != "" || got[i].Err != "" {
			t.Fatalf("index %d: errs %q / %q", i, want[i].Err, got[i].Err)
		}
		if want[i].Cost != got[i].Cost || want[i].Machines != got[i].Machines {
			t.Fatalf("index %d: plain (m=%d cost=%v) vs intra (m=%d cost=%v)", i,
				want[i].Machines, want[i].Cost, got[i].Machines, got[i].Cost)
		}
		if got[i].IntraWorkers > 1 {
			decomposed++
			if got[i].Components < 2 {
				t.Fatalf("index %d: decomposed with %d components", i, got[i].Components)
			}
		}
	}
	if decomposed == 0 {
		t.Fatal("no batch instance was decomposed; spare arenas never materialized")
	}
}

// TestIntraInertForUndecomposableAlgorithm pins the documented silence: an
// algorithm without a Decomposer runs unchanged under WithIntraWorkers.
func TestIntraInertForUndecomposableAlgorithm(t *testing.T) {
	s, err := busytime.New(busytime.WithAlgorithm("nextfit"), busytime.WithWorkers(4), busytime.WithIntraWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), clustered(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decomp.Decomposed() || res.Decomp.Components != 0 {
		t.Fatalf("nextfit reports decomposition telemetry: %+v", res.Decomp)
	}
}

// TestIntraExactRespectsSessionLimit pins that the decomposed exact path
// carries WithExactLimit: a component over the session limit fails both ways.
func TestIntraExactRespectsSessionLimit(t *testing.T) {
	in := generator.Clustered(3, 4, 10, 2, 8, 3) // components of 10 jobs
	tight, err := busytime.New(busytime.WithAlgorithm("exact"), busytime.WithExactLimit(5),
		busytime.WithWorkers(4), busytime.WithIntraWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Solve(context.Background(), in); err == nil {
		t.Fatal("10-job components passed a 5-job limit")
	}
	wide, err := busytime.New(busytime.WithAlgorithm("exact"), busytime.WithExactLimit(12),
		busytime.WithWorkers(4), busytime.WithIntraWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wide.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := busytime.New(busytime.WithAlgorithm("exact"), busytime.WithExactLimit(12))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || res.Machines != want.Machines {
		t.Fatalf("decomposed exact (m=%d cost=%v) vs sequential (m=%d cost=%v)",
			res.Machines, res.Cost, want.Machines, want.Cost)
	}
}
