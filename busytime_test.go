package busytime_test

import (
	"testing"

	"busytime"
)

func TestFacadeRoundTrip(t *testing.T) {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 3),
		busytime.NewInterval(1, 4),
		busytime.NewInterval(2, 5),
		busytime.NewInterval(10, 12),
	)
	s := busytime.FirstFit(in)
	if err := s.Verify(); err != nil {
		t.Fatalf("FirstFit: %v", err)
	}
	opt, err := busytime.Exact(in)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	lb := busytime.LowerBound(in)
	if opt.Cost() < lb-1e-9 {
		t.Errorf("OPT %v below LB %v", opt.Cost(), lb)
	}
	if s.Cost() > 4*opt.Cost()+1e-9 {
		t.Errorf("FirstFit %v exceeds 4·OPT %v", s.Cost(), opt.Cost())
	}
	b := busytime.AllBounds(in)
	if b.Fractional != lb {
		t.Errorf("AllBounds fractional %v != LowerBound %v", b.Fractional, lb)
	}
}

func TestFacadeProperGreedy(t *testing.T) {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 2),
		busytime.NewInterval(1, 3),
		busytime.NewInterval(2, 4),
	)
	if !in.IsProper() {
		t.Fatal("instance should be proper")
	}
	s := busytime.ProperGreedy(in)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	opt, err := busytime.Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() > 2*opt.Cost()+1e-9 {
		t.Errorf("greedy %v exceeds 2·OPT %v on proper instance", s.Cost(), opt.Cost())
	}
}

func TestFacadeCliqueSchedule(t *testing.T) {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 10),
		busytime.NewInterval(2, 8),
		busytime.NewInterval(4, 6),
	)
	s, err := busytime.CliqueSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	nonClique := busytime.NewInstance(2,
		busytime.NewInterval(0, 1), busytime.NewInterval(5, 6))
	if _, err := busytime.CliqueSchedule(nonClique); err == nil {
		t.Error("non-clique accepted")
	}
}

func TestFacadeBoundedLength(t *testing.T) {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 2),
		busytime.NewInterval(1, 3),
		busytime.NewInterval(4, 6),
	)
	s, err := busytime.BoundedLength(in, 0) // d from max length
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLaminarAndPortfolio(t *testing.T) {
	lam := busytime.NewInstance(2,
		busytime.NewInterval(0, 10),
		busytime.NewInterval(1, 4),
		busytime.NewInterval(5, 9),
		busytime.NewInterval(2, 3),
	)
	s, err := busytime.LaminarSchedule(lam)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != busytime.LowerBound(lam) {
		t.Errorf("laminar cost %v != LB %v", s.Cost(), busytime.LowerBound(lam))
	}
	crossing := busytime.NewInstance(2,
		busytime.NewInterval(0, 5), busytime.NewInterval(3, 8))
	if _, err := busytime.LaminarSchedule(crossing); err == nil {
		t.Error("non-laminar accepted")
	}

	p, name, err := busytime.Portfolio(crossing)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || p.Verify() != nil {
		t.Errorf("portfolio: name=%q verify=%v", name, p.Verify())
	}
	opt, err := busytime.Exact(crossing)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost() != opt.Cost() {
		t.Errorf("portfolio %v != OPT %v on tiny instance", p.Cost(), opt.Cost())
	}
}
