package busytime_test

import (
	"errors"
	"testing"

	"busytime"
)

// TestWithAdmissionPublicSurface wires the public option end to end: caps
// enforce with the typed errors, PlaceBatch matches per-call placement, and
// Close drains.
func TestWithAdmissionPublicSurface(t *testing.T) {
	s, err := busytime.New(busytime.WithAdmission(busytime.Admission{MaxLive: 2}))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := s.OnlinePool(4, "firstfit")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []busytime.PlaceRequest{
		{Iv: busytime.NewInterval(0, 10), Demand: 1},
		{Iv: busytime.NewInterval(1, 10), Demand: 1},
		{Iv: busytime.NewInterval(2, 10), Demand: 1},
	}
	out := make([]busytime.PlaceResult, len(reqs))
	if err := pool.PlaceBatch("a", reqs, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("in-cap placements rejected: %+v", out[:2])
	}
	if !errors.Is(out[2].Err, busytime.ErrLiveLimit) {
		t.Fatalf("item 2: err = %v, want ErrLiveLimit", out[2].Err)
	}
	pool.Close()
	if !pool.Closed() {
		t.Fatal("Closed() = false")
	}
	if _, _, err := pool.Place("a", busytime.NewInterval(3, 4)); !errors.Is(err, busytime.ErrPoolClosed) {
		t.Fatalf("Place on closed pool: %v, want ErrPoolClosed", err)
	}
	if ok, err := pool.Release("a", out[0].Job); !ok || err != nil {
		t.Fatalf("Release during drain = %v, %v", ok, err)
	}
}

// TestWithAdmissionValidation pins option-time rejection of bad limits.
func TestWithAdmissionValidation(t *testing.T) {
	for _, a := range []busytime.Admission{
		{MaxLive: -1}, {Rate: -2}, {Burst: -3},
	} {
		if _, err := busytime.New(busytime.WithAdmission(a)); err == nil {
			t.Errorf("Admission %+v accepted", a)
		}
	}
}
