package busytime

import (
	"fmt"

	"busytime/internal/online"
)

// OnlineSession is the feed-one-job-at-a-time handle of the online problem:
// jobs are revealed at their start times (arrivals must come in
// non-decreasing start order) and each Place decision is immediate and
// irrevocable — the model the paper's offline length sort (§2.1) is not
// allowed to use. Obtain one from Solver.Online; it is not safe for
// concurrent use.
type OnlineSession struct {
	inner *online.Session
}

// Online opens an incremental session with parallelism g placing through
// the named arrival policy: "firstfit" (lowest feasible machine), "bestfit"
// (least busy-time growth), or "nextfit" (single open machine, abandoned on
// overflow) — the registered "online-" prefix is also accepted. The
// session's decisions are byte-identical to replaying the completed
// instance through the corresponding online-* algorithm.
//
// Batch replays of recorded arrival sequences are better served by a Solver
// with WithAlgorithm("online-..."), which rides the indexed placement
// kernel and the arena; a session exists for the genuinely incremental
// caller that does not have the future in hand. For the same reason a
// WithLookahead session is rejected: buffering k future arrivals requires
// the replay side (Solve), not an immediate-decision handle.
//
// Sessions run a rolling horizon: as the stream clock (the latest start fed
// to Place) moves past a job's end the job departs automatically, its
// capacity returns to the free pool, and its record is eventually compacted
// away, so a session's memory tracks the live window rather than the stream
// length. WithWindow pre-sizes that state; Release departs a job early.
func (s *Solver) Online(g int, policy string) (*OnlineSession, error) {
	pol, err := s.onlinePolicy(policy)
	if err != nil {
		return nil, err
	}
	inner, err := online.NewSessionSized(g, pol, s.cfg.window)
	if err != nil {
		return nil, err
	}
	return &OnlineSession{inner: inner}, nil
}

// onlinePolicy resolves a session policy name, rejecting configurations that
// cannot drive an immediate-decision handle.
func (s *Solver) onlinePolicy(policy string) (online.Policy, error) {
	if s.cfg.lookahead > 1 {
		return nil, fmt.Errorf("busytime: WithLookahead(%d) cannot drive an incremental session (decisions are immediate); replay the completed instance via Solve instead", s.cfg.lookahead)
	}
	pol, ok := online.PolicyByName(policy)
	if !ok {
		return nil, fmt.Errorf("busytime: unknown online policy %q (want firstfit, bestfit or nextfit)", policy)
	}
	return pol, nil
}

// Place feeds the next unit-demand arrival and returns the machine it was
// irrevocably assigned to. Arrivals must come in non-decreasing start
// order; violations are rejected without changing the session.
func (o *OnlineSession) Place(iv Interval) (int, error) {
	return o.inner.Place(iv, 1)
}

// PlaceDemand is Place for a job consuming demand machine slots while
// active (the demand extension; 1 ≤ demand ≤ g).
func (o *OnlineSession) PlaceDemand(iv Interval, demand int) (int, error) {
	return o.inner.Place(iv, demand)
}

// Release departs job (a feed index: the session's Jobs() at its Place)
// before its natural end: the job's effective interval is clipped at the
// current stream clock, the machine's busy span stops accruing there, and
// the slot returns to the free pool once the clock moves strictly past —
// under closed intervals the job still holds its slot at the release
// instant itself. It reports false for a job that already departed
// (released earlier, expired naturally, or compacted out of the retained
// window) and errors only for an index never handed out.
func (o *OnlineSession) Release(job int) (bool, error) { return o.inner.Release(job) }

// Jobs returns the number of arrivals placed so far.
func (o *OnlineSession) Jobs() int { return o.inner.Jobs() }

// Live returns the number of jobs currently holding capacity: placed, not
// released, and with ends at or past the stream clock.
func (o *OnlineSession) Live() int { return o.inner.Live() }

// Stats reports the session's counters, memory high-water marks and live
// competitive ratio without allocating.
func (o *OnlineSession) Stats() OnlineStats { return onlineStats(o.inner.Stats()) }

// Machines returns the number of machines opened so far.
func (o *OnlineSession) Machines() int { return o.inner.Machines() }

// Cost returns the total busy time accrued so far, maintained incrementally
// (no sweep per call).
func (o *OnlineSession) Cost() float64 { return o.inner.Cost() }

// MachineOf returns the machine of the j-th arrival (feed order).
func (o *OnlineSession) MachineOf(j int) int { return o.inner.MachineOf(j) }

// Result materializes the retained window as a standard Result: a verified
// schedule in caller-owned memory over the records the rolling horizon still
// holds (live jobs plus recent departures awaiting reclaim), using effective
// intervals — an early release appears clipped at its release clock — with
// lower bounds computed against that window instance. Jobs already compacted
// away are absent, so on a long stream the Result covers the recent past,
// not the full history; Cost() and Stats() carry the stream-lifetime
// aggregates. The session remains usable; later arrivals do not invalidate
// the returned Result.
func (o *OnlineSession) Result() (Result, error) {
	sched, err := o.inner.Snapshot()
	if err != nil {
		return Result{}, err
	}
	in := sched.Instance()
	return Result{
		Algorithm: o.inner.Policy(),
		Schedule:  sched,
		Machines:  sched.NumMachines(),
		Cost:      sched.Cost(),
		Bounds:    in.CachedBounds(),
	}, nil
}

// OnlineStats is a session's telemetry snapshot: stream-lifetime counters,
// current and high-water state sizes, and the live competitive ratio. The
// lower bound is the exact fractional bound ∫⌈D_t/g⌉dt of the effective
// stream seen so far (early releases clipped at their release clock), with
// the live jobs projected to their natural ends, maintained incrementally;
// Ratio = Cost / LowerBound is therefore a true upper bound on how far the
// session sits above any schedule of the same stream.
// The JSON field names are part of the scripting surface: `busysched online
// -json` and the daemon's per-tenant stats endpoint both emit this struct
// through the library's shared encoder.
type OnlineStats struct {
	Placed      uint64 `json:"placed"`      // arrivals accepted
	Released    uint64 `json:"released"`    // explicit early departures
	Expired     uint64 `json:"expired"`     // natural departures (clock passed the end)
	Compactions uint64 `json:"compactions"` // retained-window reclaim passes

	Live         int `json:"live"`          // jobs currently holding capacity
	Window       int `json:"window"`        // retained records (live + departed awaiting reclaim)
	WindowCap    int `json:"window_cap"`    // retained-window backing capacity (the memory bound)
	Machines     int `json:"machines"`      // machines opened so far
	IdleMachines int `json:"idle_machines"` // machines currently in the free pool

	PeakLive     int `json:"peak_live"`     // high-water Live
	PeakWindow   int `json:"peak_window"`   // high-water Window
	PeakMachines int `json:"peak_machines"` // high-water Machines

	Cost       float64 `json:"cost"`        // total busy time accrued
	LowerBound float64 `json:"lower_bound"` // fractional bound of the effective stream, live tails projected
	Ratio      float64 `json:"ratio"`       // Cost / LowerBound; the live competitive ratio
}

// onlineStats converts the internal telemetry struct field for field.
func onlineStats(st online.Stats) OnlineStats {
	return OnlineStats{
		Placed:       st.Placed,
		Released:     st.Released,
		Expired:      st.Expired,
		Compactions:  st.Compactions,
		Live:         st.Live,
		Window:       st.Window,
		WindowCap:    st.WindowCap,
		Machines:     st.Machines,
		IdleMachines: st.IdleMachines,
		PeakLive:     st.PeakLive,
		PeakWindow:   st.PeakWindow,
		PeakMachines: st.PeakMachines,
		Cost:         st.Cost,
		LowerBound:   st.LowerBound,
		Ratio:        st.Ratio,
	}
}

// OnlinePool is sharded multi-tenant online state: one rolling-horizon
// session per tenant key, created on first placement and distributed over
// power-of-two lock shards, so independent tenants place concurrently and
// contend only when they hash together. Obtain one from Solver.OnlinePool;
// it is safe for concurrent use.
type OnlinePool struct {
	inner *online.Pool
}

// OnlinePool opens a multi-tenant pool of rolling-horizon sessions with
// parallelism g placing through the named arrival policy (the same names
// Online accepts). The shard count follows WithWorkers and each tenant's
// session is pre-sized by WithWindow; WithAdmission installs per-tenant
// placement limits. Unless the solver runs WithFreshSchedules, the pool
// shares the solver's recycled arenas, and Offline can replay any tenant's
// retained window through the offline kernel for an exact competitive
// comparison.
func (s *Solver) OnlinePool(g int, policy string) (*OnlinePool, error) {
	pol, err := s.onlinePolicy(policy)
	if err != nil {
		return nil, err
	}
	inner, err := online.NewPool(g, pol, s.cfg.maxWorkers(), s.cfg.window, s.pool)
	if err != nil {
		return nil, err
	}
	if err := inner.SetAdmission(s.cfg.admission); err != nil {
		return nil, fmt.Errorf("busytime: %w", err)
	}
	return &OnlinePool{inner: inner}, nil
}

// Admission is a per-tenant acceptance policy for OnlinePool, installed with
// WithAdmission: MaxLive caps a tenant's simultaneously live jobs, and
// Rate/Burst form a token bucket over placement attempts (tokens refill at
// Rate per second up to Burst, each Place — accepted or rejected — spends
// one; Release and Stats are never throttled). Zero fields are unlimited.
type Admission = online.Admission

// Typed rejection errors of the admission and drain layers. They survive
// every wrapping: match with errors.Is.
var (
	// ErrLiveLimit rejects a placement that would exceed the tenant's
	// Admission.MaxLive; capacity re-admits as the tenant's jobs depart.
	ErrLiveLimit = online.ErrLiveLimit
	// ErrRateLimit rejects placements arriving faster than the tenant's
	// sustained Admission.Rate; the bucket refills continuously.
	ErrRateLimit = online.ErrRateLimit
	// ErrPoolClosed rejects new placements on a pool whose Close has been
	// called (the graceful-drain switch); in-flight work still completes.
	ErrPoolClosed = online.ErrPoolClosed
)

// PlaceRequest is one arrival of a PlaceBatch call.
type PlaceRequest = online.PlaceRequest

// PlaceResult is PlaceBatch's per-arrival verdict: machine and feed index,
// or a placement/admission error with both set to -1.
type PlaceResult = online.PlaceResult

// Place feeds the tenant's next unit-demand arrival, creating the tenant's
// session on first use, and returns the machine it was assigned to plus the
// job's feed index — the handle Release takes. Arrival order is per tenant:
// each tenant's starts must be non-decreasing, independent of the others.
func (p *OnlinePool) Place(tenant string, iv Interval) (machine, job int, err error) {
	return p.inner.Place(tenant, iv, 1)
}

// PlaceDemand is Place for a job consuming demand machine slots while
// active (1 ≤ demand ≤ g).
func (p *OnlinePool) PlaceDemand(tenant string, iv Interval, demand int) (machine, job int, err error) {
	return p.inner.Place(tenant, iv, demand)
}

// PlaceBatch feeds several arrivals of one tenant under a single shard-lock
// acquisition, writing out[i] for reqs[i] (lengths must match). It is the
// amortized form of PlaceDemand the daemon's framed data plane batches
// into: a warm batch allocates nothing, per-item failures (admission,
// arrival order) reject that item and continue, and on a pool that has been
// Closed every item reports ErrPoolClosed.
func (p *OnlinePool) PlaceBatch(tenant string, reqs []PlaceRequest, out []PlaceResult) error {
	return p.inner.PlaceBatch(tenant, reqs, out)
}

// Close flips the pool into draining: every subsequent placement is
// rejected with ErrPoolClosed while Release, Stats, Tenants, Drop and
// Offline keep working, so in-flight work finishes and final telemetry
// stays readable. Closing is idempotent and one-way.
func (p *OnlinePool) Close() { p.inner.Close() }

// Closed reports whether Close has been called.
func (p *OnlinePool) Closed() bool { return p.inner.Closed() }

// Release departs the tenant's job early; see OnlineSession.Release. An
// unknown tenant reports (false, nil) like an already-departed job.
func (p *OnlinePool) Release(tenant string, job int) (bool, error) {
	return p.inner.Release(tenant, job)
}

// Stats snapshots the tenant's telemetry; ok is false for a tenant that
// never placed.
func (p *OnlinePool) Stats(tenant string) (OnlineStats, bool) {
	st, ok := p.inner.Stats(tenant)
	if !ok {
		return OnlineStats{}, false
	}
	return onlineStats(st), true
}

// Drop discards the tenant's session and reports whether one existed.
func (p *OnlinePool) Drop(tenant string) bool { return p.inner.Drop(tenant) }

// Tenants returns every tenant key currently holding a session, in no
// particular order.
func (p *OnlinePool) Tenants() []string { return p.inner.Tenants() }

// OnlineComparison is Offline's verdict on one tenant: how the irrevocable
// online decisions compare to an offline replay of the same retained window
// and to its lower bounds.
type OnlineComparison struct {
	// OnlineCost is the tenant's total accrued busy time (stream lifetime).
	OnlineCost float64
	// WindowCost is the policy's offline replay cost of the retained window.
	WindowCost float64
	// Bounds are the offline lower bounds of the retained-window instance.
	Bounds Bounds
	// Ratio is WindowCost / Bounds.Fractional: the window's competitive ratio.
	Ratio float64
}

// Offline replays the tenant's retained window through the pool's policy on
// an arena leased from the solver's scratch pool and reports the competitive
// comparison. The window is snapshotted under the tenant's shard lock; the
// replay runs unlocked, so a slow comparison never stalls placements. It
// errors on a solver built WithFreshSchedules (no shared arenas) or an
// unknown tenant.
func (p *OnlinePool) Offline(tenant string) (OnlineComparison, error) {
	cmp, err := p.inner.Offline(tenant)
	if err != nil {
		return OnlineComparison{}, err
	}
	return OnlineComparison{
		OnlineCost: cmp.OnlineCost,
		WindowCost: cmp.WindowCost,
		Bounds:     cmp.Bounds,
		Ratio:      cmp.Ratio,
	}, nil
}
