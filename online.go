package busytime

import (
	"fmt"

	"busytime/internal/online"
)

// OnlineSession is the feed-one-job-at-a-time handle of the online problem:
// jobs are revealed at their start times (arrivals must come in
// non-decreasing start order) and each Place decision is immediate and
// irrevocable — the model the paper's offline length sort (§2.1) is not
// allowed to use. Obtain one from Solver.Online; it is not safe for
// concurrent use.
type OnlineSession struct {
	inner *online.Session
}

// Online opens an incremental session with parallelism g placing through
// the named arrival policy: "firstfit" (lowest feasible machine), "bestfit"
// (least busy-time growth), or "nextfit" (single open machine, abandoned on
// overflow) — the registered "online-" prefix is also accepted. The
// session's decisions are byte-identical to replaying the completed
// instance through the corresponding online-* algorithm.
//
// Batch replays of recorded arrival sequences are better served by a Solver
// with WithAlgorithm("online-..."), which rides the indexed placement
// kernel and the arena; a session exists for the genuinely incremental
// caller that does not have the future in hand. For the same reason a
// WithLookahead session is rejected: buffering k future arrivals requires
// the replay side (Solve), not an immediate-decision handle.
func (s *Solver) Online(g int, policy string) (*OnlineSession, error) {
	if s.cfg.lookahead > 1 {
		return nil, fmt.Errorf("busytime: WithLookahead(%d) cannot drive an incremental session (decisions are immediate); replay the completed instance via Solve instead", s.cfg.lookahead)
	}
	pol, ok := online.PolicyByName(policy)
	if !ok {
		return nil, fmt.Errorf("busytime: unknown online policy %q (want firstfit, bestfit or nextfit)", policy)
	}
	inner, err := online.NewSession(g, pol)
	if err != nil {
		return nil, err
	}
	return &OnlineSession{inner: inner}, nil
}

// Place feeds the next unit-demand arrival and returns the machine it was
// irrevocably assigned to. Arrivals must come in non-decreasing start
// order; violations are rejected without changing the session.
func (o *OnlineSession) Place(iv Interval) (int, error) {
	return o.inner.Place(iv, 1)
}

// PlaceDemand is Place for a job consuming demand machine slots while
// active (the demand extension; 1 ≤ demand ≤ g).
func (o *OnlineSession) PlaceDemand(iv Interval, demand int) (int, error) {
	return o.inner.Place(iv, demand)
}

// Jobs returns the number of arrivals placed so far.
func (o *OnlineSession) Jobs() int { return o.inner.Jobs() }

// Machines returns the number of machines opened so far.
func (o *OnlineSession) Machines() int { return o.inner.Machines() }

// Cost returns the total busy time accrued so far, maintained incrementally
// (no sweep per call).
func (o *OnlineSession) Cost() float64 { return o.inner.Cost() }

// MachineOf returns the machine of the j-th arrival (feed order).
func (o *OnlineSession) MachineOf(j int) int { return o.inner.MachineOf(j) }

// Result materializes the session so far as a standard Result: a verified
// schedule in caller-owned memory over a snapshot of the fed jobs, with the
// lower bounds and gap computed against the arrivals seen so far. The
// session remains usable; later arrivals do not invalidate the returned
// Result.
func (o *OnlineSession) Result() (Result, error) {
	sched, err := o.inner.Snapshot()
	if err != nil {
		return Result{}, err
	}
	in := sched.Instance()
	return Result{
		Algorithm: o.inner.Policy(),
		Schedule:  sched,
		Machines:  sched.NumMachines(),
		Cost:      sched.Cost(),
		Bounds:    in.CachedBounds(),
	}, nil
}
