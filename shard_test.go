package busytime_test

import (
	"context"
	"testing"

	"busytime"
	"busytime/internal/generator"
)

// dense returns a single-component instance: WithTimeSharding's natural
// habitat (component decomposition starves, only the time axis can be cut).
func dense(seed int64) *busytime.Instance {
	return generator.General(seed, 2000, 3, 200, 10)
}

// TestWithTimeShardingValidation pins the option's eager validation.
func TestWithTimeShardingValidation(t *testing.T) {
	if _, err := busytime.New(busytime.WithTimeSharding(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := busytime.New(busytime.WithTimeSharding(0), busytime.WithFreshSchedules()); err == nil {
		t.Error("WithTimeSharding + WithFreshSchedules accepted; shard arenas need the pool")
	}
	if _, err := busytime.New(busytime.WithTimeSharding(1), busytime.WithFreshSchedules()); err != nil {
		t.Errorf("WithTimeSharding(1) is off and should coexist with fresh mode: %v", err)
	}
	if _, err := busytime.New(busytime.WithTimeSharding(0), busytime.WithWorkers(4)); err != nil {
		t.Errorf("auto sharding rejected: %v", err)
	}
}

// TestSolveShardedValidAndReported pins the public sharded path: a dense
// instance under WithTimeSharding produces a feasible (WithVerify-checked)
// schedule, the telemetry reports the shard split, and the cost stays within
// the documented envelope of the sequential session.
func TestSolveShardedValidAndReported(t *testing.T) {
	for _, name := range []string{"firstfit", "bestfit"} {
		seq, err := busytime.New(busytime.WithAlgorithm(name), busytime.WithVerify(true))
		if err != nil {
			t.Fatal(err)
		}
		shr, err := busytime.New(busytime.WithAlgorithm(name), busytime.WithVerify(true),
			busytime.WithWorkers(4), busytime.WithTimeSharding(4))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			in := dense(seed)
			want, err := seq.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := shr.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			d := got.Decomp
			if !d.Sharded() || d.Shards < 2 {
				t.Fatalf("%s seed=%d: sharding did not engage: %+v", name, seed, d)
			}
			if !d.Decomposed() {
				t.Fatalf("%s seed=%d: Sharded implies Decomposed: %+v", name, seed, d)
			}
			if len(d.PerComponent) != d.Shards {
				t.Fatalf("%s seed=%d: %d per-shard entries for %d shards", name, seed, len(d.PerComponent), d.Shards)
			}
			jobs := d.CrossingJobs
			for _, c := range d.PerComponent {
				jobs += c.Jobs
			}
			if jobs != in.N() {
				t.Fatalf("%s seed=%d: shard sizes + crossing sum to %d, want %d", name, seed, jobs, in.N())
			}
			if got.Cost > want.Cost*1.25 {
				t.Fatalf("%s seed=%d: sharded cost %v exceeds sequential %v × 1.25", name, seed, got.Cost, want.Cost)
			}
		}
	}
}

// TestTimeShardingOffMatchesSequential pins WithTimeSharding(1) to bitwise
// sequential behavior — the knob's off position must be exactly off.
func TestTimeShardingOffMatchesSequential(t *testing.T) {
	seq, err := busytime.New(busytime.WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := busytime.New(busytime.WithVerify(true), busytime.WithWorkers(4), busytime.WithTimeSharding(1))
	if err != nil {
		t.Fatal(err)
	}
	in := dense(5)
	want, err := seq.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := off.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Decomp.Sharded() {
		t.Fatalf("WithTimeSharding(1) sharded: %+v", got.Decomp)
	}
	if got.Cost != want.Cost || got.Machines != want.Machines {
		t.Fatalf("off-position differs: (m=%d cost=%v) vs (m=%d cost=%v)",
			got.Machines, got.Cost, want.Machines, want.Cost)
	}
	for j := 0; j < in.N(); j++ {
		if got.Schedule.MachineOf(j) != want.Schedule.MachineOf(j) {
			t.Fatalf("job %d machine %d vs %d", j, got.Schedule.MachineOf(j), want.Schedule.MachineOf(j))
		}
	}
}

// TestSolveBatchSharded pins the batch path: SolveBatch with sharding stays
// verify-clean on dense instances and reports per-result shard telemetry.
func TestSolveBatchSharded(t *testing.T) {
	var batch []*busytime.Instance
	for seed := int64(0); seed < 4; seed++ {
		batch = append(batch, dense(seed))
	}
	s, err := busytime.New(busytime.WithWorkers(4), busytime.WithTimeSharding(4), busytime.WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != "" {
			t.Fatalf("index %d: %s", i, r.Err)
		}
		if r.Machines == 0 {
			t.Fatalf("index %d: empty schedule", i)
		}
	}
	// Whether a given batch instance shards depends on momentary pool
	// pressure (batch fan-out and shard fan-out share the arena pool), so
	// only the aggregate is asserted: the summary folds the telemetry and
	// stays self-consistent.
	sum := busytime.SummarizeBatch(res)
	if sum.MaxShards > 0 && sum.ShardedRuns == 0 {
		t.Fatalf("summary inconsistent: %+v", sum)
	}
	if sum.Components == 0 {
		t.Fatal("summary reports no components; the layer never swept")
	}
}

// TestShardedAlgorithmsListed pins the registry surface: the greedy family
// declares a shard rule, the non-decomposing algorithms do not.
func TestShardedAlgorithmsListed(t *testing.T) {
	want := map[string]bool{
		"firstfit": true, "bestfit": true, "firstfit-start": true,
		"nextfit": false, "exact": false,
	}
	for _, a := range busytime.Algorithms() {
		expect, ok := want[a.Name]
		if !ok {
			continue
		}
		if a.Shards != expect {
			t.Errorf("%s: Shards=%v, want %v", a.Name, a.Shards, expect)
		}
		if a.Shards && !a.Decomposes {
			t.Errorf("%s: shard rule without a decomposer", a.Name)
		}
	}
}
