// VM consolidation example: busy-time scheduling as cloud host billing.
// Each job is a virtual machine reservation [start, end]; a physical host
// runs at most g VMs at once and is billed for every hour it is powered on.
// Minimizing total busy time = minimizing the host bill.
//
// The example compares FirstFit (the paper's 4-approximation) with the
// machine-minimizing baseline and with per-VM hosting, and replays the
// winning placement through the discrete-event simulator.
//
//	go run ./examples/vmconsolidation
package main

import (
	"fmt"
	"log"

	"busytime/internal/algo/baselines"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/sim"
	"busytime/internal/stats"
)

func main() {
	// A day of VM reservations: 200 VMs over a 24h horizon, up to 6h each,
	// hosts take g = 8 VMs.
	const g = 8
	in := generator.General(2024, 200, g, 24, 6)
	in.Name = "vm-day"

	lb := core.BestBound(in)
	fmt.Printf("workload: %d VM reservations over 24h, hosts hold %d VMs\n", in.N(), g)
	fmt.Printf("billing lower bound: %.1f host-hours\n\n", lb)

	tb := stats.NewTable("placement comparison", "policy", "hosts", "host-hours", "vs LB", "utilization")
	type policy struct {
		name string
		run  func(*core.Instance) *core.Schedule
	}
	policies := []policy{
		{"firstfit (paper)", firstfit.Schedule},
		{"fewest hosts", baselines.MachineMin},
		{"bestfit", baselines.BestFit},
		{"arrival nextfit", baselines.NextFit},
	}
	var best *core.Schedule
	var bestName string
	for _, p := range policies {
		s := p.run(in)
		if err := s.Verify(); err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		tb.AddRow(p.name, s.NumMachines(), s.Cost(), stats.Ratio(s.Cost(), lb), s.Utilization())
		if best == nil || s.Cost() < best.Cost() {
			best, bestName = s, p.name
		}
	}
	fmt.Print(tb.String())

	// Replay the winner: the simulator independently integrates each host's
	// power-on time and confirms the bill.
	rep, err := sim.Run(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwinner: %s\n", bestName)
	fmt.Printf("replayed bill: %.1f host-hours across %d hosts (peak load %d VMs)\n",
		rep.TotalBusy, len(rep.Machines), rep.PeakLoad)
	onOff := 0
	for _, m := range rep.Machines {
		onOff += m.Switches
	}
	fmt.Printf("power-on transitions: %d\n", onOff)
}
