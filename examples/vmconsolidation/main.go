// VM consolidation example: busy-time scheduling as cloud host billing.
// Each job is a virtual machine reservation [start, end]; a physical host
// runs at most g VMs at once and is billed for every hour it is powered on.
// Minimizing total busy time = minimizing the host bill.
//
// The example sweeps placement policies over the scenario engine's burst
// trace — every run independently cross-checked against the discrete-event
// simulator, so each row's bill is the bill a host fleet executing that
// placement would present — and compares the clairvoyant offline solves
// with the online session that places VMs as they arrive.
//
//	go run ./examples/vmconsolidation
package main

import (
	"context"
	"fmt"
	"log"

	"busytime/internal/scenario"
	"busytime/internal/stats"
)

func main() {
	sc, ok := scenario.Lookup("burst")
	if !ok {
		log.Fatal("burst scenario not registered")
	}
	// A day of VM reservations: ≈200 VMs with correlated arrival bursts,
	// hosts take g = 8 VMs, reservations up to a few hours.
	params := scenario.Params{Seed: 2024, N: 200, G: 8, Horizon: 24, MeanLen: 3}

	policies := []string{"firstfit", "machine-min", "bestfit", "nextfit"}
	tb := stats.NewTable("placement comparison", "policy", "hosts", "host-hours", "vs LB", "solve p50")
	var best *scenario.Report
	var bestAlgo string
	for _, algo := range policies {
		rep, err := scenario.Run(context.Background(), scenario.Config{
			Modes:     scenario.ModeOffline,
			Algorithm: algo,
			Repeat:    3,
		}, sc, params)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		o := rep.Offline
		tb.AddRow(algo, o.Machines, o.Cost, o.Ratio, o.Latency.P50)
		if best == nil || o.Cost < best.Offline.Cost {
			best, bestAlgo = rep, algo
		}
	}
	fmt.Printf("workload: %d VM reservations over 24h, hosts hold %d VMs\n", best.Jobs, best.G)
	fmt.Printf("billing lower bound: %.1f host-hours\n\n", best.Offline.LowerBound)
	fmt.Print(tb.String())
	fmt.Printf("\nwinner: %s — %.1f host-hours on %d hosts (simulator-confirmed)\n",
		bestAlgo, best.Offline.Cost, best.Offline.Machines)

	// The online side of the same day: VMs placed the moment they arrive,
	// 15% cancelled early. The competitive ratio is measured live against
	// the fractional bound of the effective stream.
	rep, err := scenario.Run(context.Background(), scenario.Config{
		Modes:       scenario.ModeOnline,
		Policy:      "bestfit",
		ReleaseFrac: 0.15,
	}, sc, params)
	if err != nil {
		log.Fatal(err)
	}
	on := rep.Online
	fmt.Printf("\nonline bestfit: %.1f host-hours, ratio %.3f (placed %d, %d early releases, place p99 %v)\n",
		on.Stats.Cost, on.Stats.Ratio, on.Stats.Placed, on.Released, on.Latency.P99)
}
