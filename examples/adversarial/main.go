// Adversarial example: the Fig. 4 lower-bound family of Theorem 2.4.
// It builds the instance for growing g, runs FirstFit under the adversarial
// tie-breaking order (all jobs have length 1, so the order is a legal
// longest-first order), and shows the ratio to the optimum approaching 3.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/generator"
	"busytime/internal/stats"
)

func main() {
	const epsPrime = 0.05
	fmt.Println("Theorem 2.4 construction (Fig. 4): FirstFit may pay g(3−2ε′)")
	fmt.Printf("while OPT = g+1; with ε′ = %.2f the ratio tends to %.2f.\n\n", epsPrime, 3-2*epsPrime)

	tb := stats.NewTable("", "g", "jobs", "FirstFit", "OPT", "ratio", "limit")
	for _, g := range []int{2, 3, 4, 8, 16, 32, 64} {
		in, order := generator.Fig4(g, epsPrime)
		ff := firstfit.ScheduleOrder(in, order)
		if err := ff.Verify(); err != nil {
			log.Fatal(err)
		}
		opt := float64(g + 1)
		if g <= 3 {
			// Cross-check the analytic optimum on small sizes.
			ex, err := exact.Cost(in)
			if err != nil {
				log.Fatal(err)
			}
			if diff := ex - opt; diff > 1e-9 || diff < -1e-9 {
				log.Fatalf("g=%d: exact %v != analytic %v", g, ex, opt)
			}
		}
		tb.AddRow(g, in.N(), ff.Cost(), opt, ff.Cost()/opt,
			(3-2*epsPrime)*float64(g)/float64(g+1))
	}
	fmt.Print(tb.String())

	fmt.Println("\nThe same family with the ranked shift of §3.1 is a proper instance;")
	fmt.Println("there the greedy NextFit is guaranteed ≤ 2 while FirstFit still degrades:")
	in, order := generator.Fig4Proper(16, epsPrime, epsPrime/(2*16*16))
	ff := firstfit.ScheduleOrder(in, order)
	fmt.Printf("g=16: FirstFit ratio %.3f vs greedy guarantee 2\n", ff.Cost()/float64(16+1))
}
