// Optical grooming example (Section 4 of the paper): color lightpaths on a
// path network through the busy-time scheduling reduction so that at most g
// lightpaths share an edge per wavelength, and count regenerators and ADMs.
//
//	go run ./examples/optical
package main

import (
	"fmt"
	"log"

	"busytime/internal/algo/firstfit"
	"busytime/internal/optical"
)

func main() {
	// A 10-node path carrying nine lightpaths, grooming factor 2.
	net := &optical.Network{
		Name:  "metro-ring-segment",
		Nodes: 10,
		G:     2,
		Paths: []optical.Lightpath{
			{ID: 0, A: 0, B: 4},
			{ID: 1, A: 0, B: 3},
			{ID: 2, A: 2, B: 6},
			{ID: 3, A: 3, B: 7},
			{ID: 4, A: 4, B: 9},
			{ID: 5, A: 5, B: 9},
			{ID: 6, A: 1, B: 5},
			{ID: 7, A: 6, B: 9},
			{ID: 8, A: 0, B: 2},
		},
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// Reduce to busy-time scheduling: lightpath (a,b) ↦ job [a+½, b−½],
	// wavelengths ↦ machines, and regenerators ↦ total busy time.
	in := net.ToInstance()
	s := firstfit.Schedule(in)
	col, err := optical.FromSchedule(net, s)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network %q: %d nodes, %d lightpaths, g=%d\n",
		net.Name, net.Nodes, len(net.Paths), net.G)
	fmt.Printf("wavelengths used : %d\n", col.Wavelengths())
	fmt.Printf("regenerators     : %d (== schedule busy time %.0f)\n",
		col.Regenerators(), s.Cost())
	fmt.Printf("ADMs             : %d\n", col.ADMs())
	for _, alpha := range []float64{0, 0.5, 1} {
		fmt.Printf("cost α=%.1f       : %.1f\n", alpha, col.Cost(alpha))
	}

	fmt.Println("\nper-wavelength breakdown:")
	for _, w := range col.Breakdown() {
		fmt.Printf("  λ%d: %d lightpaths, %d regenerators\n",
			w.Wavelength, w.Lightpaths, w.Regenerators)
	}
}
