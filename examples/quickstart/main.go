// Quickstart: build an instance through the validating constructors, run
// the paper's FirstFit through a Solver session, inspect the Result, and
// compare against the exact optimum — all through the public busytime API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"busytime"
)

func main() {
	ctx := context.Background()

	// Six jobs, at most g = 2 simultaneously per machine. ParseInterval and
	// BuildInstance validate instead of panicking.
	var ivs []busytime.Interval
	for _, p := range [][2]float64{{0, 4}, {1, 5}, {2, 6}, {8, 10}, {8, 9}, {3, 9}} {
		iv, err := busytime.ParseInterval(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		ivs = append(ivs, iv)
	}
	in, err := busytime.BuildInstance(2, busytime.UnitJobs(ivs...)...)
	if err != nil {
		log.Fatal(err)
	}
	in.Name = "quickstart"

	b := busytime.AllBounds(in)
	fmt.Printf("instance %q: n=%d, g=%d\n", in.Name, in.N(), in.G)
	fmt.Printf("lower bounds: span=%.1f parallelism=%.1f fractional=%.1f\n\n",
		b.Span, b.Parallelism, b.Fractional)

	// The paper's 4-approximation (§2.1) through a verified Solver session.
	ff, err := busytime.New(
		busytime.WithAlgorithm("firstfit"),
		busytime.WithVerify(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ff.Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FirstFit: %d machines, total busy time %.1f (gap to LB %.1f)\n",
		res.Machines, res.Cost, res.Gap())
	for _, m := range res.Schedule.Summary() {
		fmt.Printf("  machine %d: jobs %v busy %v (%.1f)\n", m.Machine, m.JobIDs, m.Busy, m.Cost)
	}

	// Exact optimum (branch and bound; small instances only). The session
	// takes the same context every entry point does — a cancelled ctx stops
	// the search mid-run.
	ex, err := busytime.New(busytime.WithAlgorithm("exact"))
	if err != nil {
		log.Fatal(err)
	}
	opt, err := ex.Solve(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOPT: %d machines, total busy time %.1f\n", opt.Machines, opt.Cost)
	fmt.Printf("FirstFit/OPT = %.3f (Theorem 2.1 guarantees ≤ 4)\n", res.Cost/opt.Cost)
}
