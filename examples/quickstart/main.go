// Quickstart: build an instance, run the paper's FirstFit, inspect the
// schedule, and compare against the exact optimum and the lower bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/interval"
	"busytime/internal/sim"
)

func main() {
	// Six jobs, at most g = 2 simultaneously per machine.
	in := core.NewInstance(2,
		interval.New(0, 4),  // J0
		interval.New(1, 5),  // J1
		interval.New(2, 6),  // J2
		interval.New(8, 10), // J3
		interval.New(8, 9),  // J4
		interval.New(3, 9),  // J5
	)
	in.Name = "quickstart"
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	b := core.AllBounds(in)
	fmt.Printf("instance %q: n=%d, g=%d\n", in.Name, in.N(), in.G)
	fmt.Printf("lower bounds: span=%.1f parallelism=%.1f fractional=%.1f\n\n",
		b.Span, b.Parallelism, b.Fractional)

	// The paper's 4-approximation (Section 2.1).
	s := firstfit.Schedule(in)
	if err := s.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FirstFit: %d machines, total busy time %.1f\n", s.NumMachines(), s.Cost())
	for _, m := range s.Summary() {
		fmt.Printf("  machine %d: jobs %v busy %v (%.1f)\n", m.Machine, m.JobIDs, m.Busy, m.Cost)
	}

	// Cross-check with a discrete-event replay of the schedule.
	if err := sim.Check(s, 1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay: measured busy time matches the analytic cost")

	// Exact optimum (branch and bound; small instances only).
	opt, err := exact.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOPT: %d machines, total busy time %.1f\n", opt.NumMachines(), opt.Cost())
	fmt.Printf("FirstFit/OPT = %.3f (Theorem 2.1 guarantees ≤ 4)\n", s.Cost()/opt.Cost())
}
