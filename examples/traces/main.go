// Traces example: generate a diurnal (day/night) arrival process, schedule
// it with the portfolio entry point, render the resulting Gantt chart and
// depth profile, and export the workload as CSV for external tools.
//
//	go run ./examples/traces
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"busytime/internal/algo/portfolio"
	"busytime/internal/core"
	"busytime/internal/trace"
	"busytime/internal/viz"
)

func main() {
	// Two days of diurnal traffic: night rate 0.3 jobs/hour, midday 4/hour,
	// mean job length 2.5 hours, hosts take g = 4 jobs.
	in := trace.Diurnal(2026, 4, 2, 0.3, 4, 2.5)
	fmt.Printf("workload %s: %d jobs over %d days\n", in.Name, in.N(), 2)
	fmt.Printf("lower bound: %.1f machine-hours\n\n", core.BestBound(in))

	fmt.Print(viz.DepthProfile(in, 96))
	fmt.Println()

	s, winner, err := portfolio.Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portfolio winner: %s — cost %.1f on %d machines (utilization %.0f%%)\n\n",
		winner, s.Cost(), s.NumMachines(), 100*s.Utilization())
	fmt.Print(viz.Gantt(s, 96))

	// Export the workload for spreadsheets or other tools.
	path := filepath.Join(os.TempDir(), "diurnal.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload exported to %s\n", path)
}
