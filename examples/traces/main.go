// Traces example: pull the diurnal (day/night) cloud trace from the
// scenario registry, replay it offline and online through the scenario
// driver — which cross-checks every schedule against the discrete-event
// simulator before reporting — render the Gantt chart and depth profile,
// and export the workload as CSV for external tools.
//
//	go run ./examples/traces
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"busytime/internal/core"
	"busytime/internal/scenario"
	"busytime/internal/trace"
	"busytime/internal/viz"
)

func main() {
	sc, ok := scenario.Lookup("diurnal")
	if !ok {
		log.Fatal("diurnal scenario not registered")
	}
	params := scenario.Params{Seed: 2026, N: 150, G: 4, Horizon: 48, MeanLen: 2.5}

	// The driver replays the same trace twice: a clairvoyant offline solve
	// through the portfolio, and an online session that must place each VM
	// the moment it arrives, with 10% cancelled before completion.
	rep, err := scenario.Run(context.Background(), scenario.Config{
		Algorithm:   "portfolio",
		Policy:      "firstfit",
		ReleaseFrac: 0.1,
	}, sc, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d jobs over %v hours\n", rep.Scenario, rep.Jobs, params.Horizon)
	fmt.Printf("offline (%s): %.1f machine-hours on %d machines, ratio %.3f vs LB %.1f\n",
		rep.Offline.Algorithm, rep.Offline.Cost, rep.Offline.Machines,
		rep.Offline.Ratio, rep.Offline.LowerBound)
	fmt.Printf("online (%s) : %.1f machine-hours, live competitive ratio %.3f, %d early releases\n\n",
		rep.Online.Policy, rep.Online.Stats.Cost, rep.Online.Stats.Ratio, rep.Online.Released)

	// Regenerate the identical instance (same params, any worker count) for
	// the visual side: the scenario contract is bit-reproducibility.
	in, err := sc.Instance(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %.1f machine-hours\n\n", core.BestBound(in))
	fmt.Print(viz.DepthProfile(in, 96))
	fmt.Println()

	// Export the workload for spreadsheets or other tools; the same file
	// replays through `busysched replay -trace <path>`.
	path := filepath.Join(os.TempDir(), "diurnal.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload exported to %s\n", path)
}
