package busytime

import (
	"context"
	"io"

	"busytime/internal/algo"
	"busytime/internal/engine"
)

// BatchResult summarizes scheduling one instance of a batch or stream. The
// engine deliberately reports summaries rather than retaining schedules:
// keeping every schedule of a 100k-job batch alive would defeat the arena
// recycling that makes batch runs fast. Re-run an interesting instance
// through Solve to get its schedule.
//
// The field layout mirrors internal/engine.Result exactly; SolveBatch
// converts by plain struct conversion.
type BatchResult struct {
	// Index is the instance's position in the batch or stream.
	Index int `json:"index"`
	// Name echoes Instance.Name.
	Name string `json:"name"`
	// N and G are the instance's size and parallelism.
	N int `json:"n"`
	G int `json:"g"`
	// Machines and Cost describe the produced schedule.
	Machines int     `json:"machines"`
	Cost     float64 `json:"cost"`
	// LowerBound is the fractional lower bound and Ratio is
	// Cost/LowerBound (0 when the bound is 0).
	LowerBound float64 `json:"lower_bound"`
	Ratio      float64 `json:"ratio"`
	// Err is non-empty when the algorithm rejected the instance or, under
	// WithVerify, produced an infeasible schedule; the schedule fields are
	// then zero.
	Err string `json:"err,omitempty"`
	// Warm and SetupAllocs report arena reuse (see ArenaStats). They depend
	// on worker count and scheduling order, so they are excluded from
	// serialization to keep CSV/JSON output deterministic; SummarizeBatch
	// aggregates them.
	Warm        bool `json:"-"`
	SetupAllocs int  `json:"-"`
	// Components is the connected-component count the decomposition layer
	// observed for this instance and IntraWorkers how many workers solved
	// them; both are 0 when the run never consulted the layer (see
	// WithIntraWorkers). Like Warm they depend on momentary pool pressure,
	// so they are excluded from serialization.
	Components   int `json:"-"`
	IntraWorkers int `json:"-"`
	// Shards is the time-shard count when the decomposition layer took the
	// opt-in sharding path for this instance (WithTimeSharding), 0 otherwise.
	Shards int `json:"-"`
}

// SolveBatch schedules every instance with the session's algorithm, fanned
// out across WithWorkers workers over the session's shared arena pool, and
// returns one summary per instance in input order — a parallel run is
// byte-identical to a sequential one. Per-instance failures land in
// BatchResult.Err and do not abort the batch. Cancelling ctx stops workers
// at their next instance (and mid-run for the cancellable algorithms),
// drains the fan-out without leaking goroutines, and returns the context's
// error.
func (s *Solver) SolveBatch(ctx context.Context, instances []*Instance) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := engine.Run(ctx, instances, s.engineOptions())
	if err != nil {
		return nil, err
	}
	return convertBatch(results), nil
}

// SolveStream drains the instance stream next (which reports ok=false when
// exhausted), scheduling shard by shard with the same guarantees as
// SolveBatch; the output is identical to collecting the stream into a slice
// first. Arbitrarily long streams run in bounded memory.
func (s *Solver) SolveStream(ctx context.Context, next func() (*Instance, bool)) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := engine.RunStream(ctx, next, s.engineOptions())
	if err != nil {
		return nil, err
	}
	return convertBatch(results), nil
}

// engineOptions maps the session config onto the internal engine. The
// session's arena pool is passed through, so batch arenas stay warm across
// SolveBatch/SolveStream/Solve calls, not just across shards of one call;
// the algorithm record is the Solver's own dispatch (engine.Options.Custom),
// so batch runs carry the full session configuration — WithExactLimit,
// WithLookahead, WithLengthBound — and are guaranteed to agree with Solve.
func (s *Solver) engineOptions() engine.Options {
	opt := engine.Options{
		Algorithm: s.cfg.algorithm,
		Custom: &algo.Algorithm{
			Name:          s.cfg.algorithm,
			RunScratchCtx: s.run,
			Cancellation:  s.alg.Cancellation,
			// Decompose carries the session's resolved contract (exact limit
			// applied), so batch workers route through the same decomposition
			// layer as Solve — or none, identically.
			Decompose: s.decomp,
		},
		Workers: s.cfg.workers,
		Verify:  s.cfg.verify,
		Pool:    s.pool, // nil in fresh mode: the engine builds a private pool
	}
	if s.decomp != nil {
		opt.IntraWorkers = s.cfg.intraWorkers()
		opt.TimeShards = s.cfg.timeShards()
		opt.Runners = s.runners
	}
	return opt
}

func convertBatch(results []engine.Result) []BatchResult {
	out := make([]BatchResult, len(results))
	for i, r := range results {
		out[i] = BatchResult(r)
	}
	return out
}

// BatchSummary aggregates the arena-reuse telemetry of a batch: how many
// runs found their worker's arena warm, and how many backing allocations
// the arenas performed in total. In steady state (a warm pool re-serving
// seen instance shapes) SetupAllocs stays flat while WarmRuns tracks Runs.
//
// The decomposition fields summarize the intra-instance layer: Components
// is the total component count the sweeps observed (0 when the layer never
// ran — see WithIntraWorkers and WithTimeSharding), DecomposedRuns and
// ShardedRuns count the instances actually solved component-parallel or
// time-sharded, and MaxIntraWorkers/MaxShards the widest fan-out any single
// instance achieved.
type BatchSummary struct {
	Runs        int
	WarmRuns    int
	SetupAllocs int

	Components      int
	DecomposedRuns  int
	ShardedRuns     int
	MaxIntraWorkers int
	MaxShards       int
}

// HitRate returns the fraction of runs served by a warm arena, 0 when the
// summary is empty.
func (b BatchSummary) HitRate() float64 {
	if b.Runs == 0 {
		return 0
	}
	return float64(b.WarmRuns) / float64(b.Runs)
}

// SummarizeBatch folds the per-run arena counters of a batch into a
// BatchSummary.
func SummarizeBatch(results []BatchResult) BatchSummary {
	var b BatchSummary
	for _, r := range results {
		b.Runs++
		if r.Warm {
			b.WarmRuns++
		}
		b.SetupAllocs += r.SetupAllocs
		b.Components += r.Components
		if r.IntraWorkers > 0 {
			b.DecomposedRuns++
		}
		if r.IntraWorkers > b.MaxIntraWorkers {
			b.MaxIntraWorkers = r.IntraWorkers
		}
		if r.Shards > 0 {
			b.ShardedRuns++
		}
		if r.Shards > b.MaxShards {
			b.MaxShards = r.Shards
		}
	}
	return b
}

// WriteBatchCSV writes batch results as CSV with a header row. Floats use
// the shortest round-trip representation, so output is byte-stable across
// runs and worker counts.
func WriteBatchCSV(w io.Writer, results []BatchResult) error {
	return engine.WriteCSV(w, convertToEngine(results))
}

// WriteBatchJSON writes batch results as an indented JSON array.
func WriteBatchJSON(w io.Writer, results []BatchResult) error {
	return engine.WriteJSON(w, convertToEngine(results))
}

func convertToEngine(results []BatchResult) []engine.Result {
	out := make([]engine.Result, len(results))
	for i, r := range results {
		out[i] = engine.Result(r)
	}
	return out
}
