// Package busytime is the public facade of the busy-time scheduling library,
// a Go implementation of
//
//	Flammini, Monaco, Moscardelli, Shachnai, Shalom, Tamir, Zaks:
//	"Minimizing total busy time in parallel scheduling with application to
//	optical networks", IPDPS 2009 / Theoretical Computer Science 411 (2010).
//
// The problem: jobs are fixed time intervals, a machine may run at most g
// jobs simultaneously, machines may be opened freely, and the objective is
// to minimize the total busy time — the sum over machines of the measure of
// time each machine has at least one active job. The problem is NP-hard
// already for g = 2.
//
// The facade re-exports the instance/schedule model and the paper's
// algorithms with their proven guarantees:
//
//   - FirstFit — §2.1, 4-approximation for general instances (ratio ∈ [3,4])
//   - ProperGreedy — §3.1, 2-approximation for proper interval instances
//   - CliqueSchedule — Appendix, 2-approximation when all jobs intersect
//   - BoundedLength — §3.2, (2+ε)-approximation for lengths in [1, d]
//   - Exact — branch-and-bound optimum for small instances
//
// Sub-packages under internal/ provide the substrates (interval sweeps,
// interval graphs, interval trees, b-matching, the optical-network reduction
// of §4, a discrete-event validator, workload generators and the experiment
// harness reproducing every quantitative artifact of the paper).
package busytime

import (
	"busytime/internal/algo/boundedlength"
	"busytime/internal/algo/cliquealgo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/algo/laminar"
	"busytime/internal/algo/portfolio"
	"busytime/internal/algo/properfit"
	"busytime/internal/core"
	"busytime/internal/interval"
)

// Core model types, re-exported.
type (
	// Interval is a closed interval [Start, End] on the real line.
	Interval = interval.Interval
	// Job is a scheduling job: an interval plus a capacity demand.
	Job = core.Job
	// Instance is a busy-time scheduling instance (jobs + parallelism g).
	Instance = core.Instance
	// Schedule is an assignment of jobs to machines.
	Schedule = core.Schedule
	// Bounds bundles the lower bounds of an instance.
	Bounds = core.Bounds
)

// NewInterval returns the closed interval [start, end]; it panics when
// end < start.
func NewInterval(start, end float64) Interval { return interval.New(start, end) }

// NewInstance builds an instance with parallelism g from intervals,
// assigning sequential job IDs and unit demands.
func NewInstance(g int, ivs ...Interval) *Instance { return core.NewInstance(g, ivs...) }

// FirstFit runs the paper's FirstFit (§2.1): jobs sorted by non-increasing
// length, each placed on the first machine with capacity throughout its
// interval. Guarantee: cost ≤ 4·OPT on every instance (Theorem 2.1).
func FirstFit(in *Instance) *Schedule { return firstfit.Schedule(in) }

// ProperGreedy runs the §3.1 greedy (NextFit by start time). Guarantee:
// cost ≤ OPT + span ≤ 2·OPT on proper instances (Theorem 3.1); on arbitrary
// instances the schedule is feasible but unguaranteed.
func ProperGreedy(in *Instance) *Schedule { return properfit.Schedule(in) }

// CliqueSchedule runs the Appendix algorithm for instances whose intervals
// all share a common point. Guarantee: cost ≤ 2·OPT (Theorem A.1). It
// errors when the instance is not a clique.
func CliqueSchedule(in *Instance) (*Schedule, error) { return cliquealgo.Schedule(in) }

// BoundedLength runs the §3.2 algorithm: segment the time axis at
// granularity d (the maximum job length when d = 0) and optimize per
// segment; the segmentation costs at most a factor 2 (Lemma 3.3).
func BoundedLength(in *Instance, d float64) (*Schedule, error) {
	return boundedlength.Schedule(in, boundedlength.Options{D: d})
}

// Exact computes an optimal schedule by branch and bound. It errors when a
// connected component exceeds the tractable size.
func Exact(in *Instance) (*Schedule, error) { return exact.Solve(in) }

// LaminarSchedule solves laminar instances (any two jobs nested or strictly
// disjoint) exactly in polynomial time by level grouping; the result's cost
// equals the fractional lower bound. It errors on non-laminar instances.
func LaminarSchedule(in *Instance) (*Schedule, error) { return laminar.Schedule(in) }

// Portfolio runs every applicable algorithm plus local search and returns
// the cheapest feasible schedule with the winning algorithm's name. This is
// the recommended entry point when the instance class is unknown.
func Portfolio(in *Instance) (*Schedule, string, error) { return portfolio.Schedule(in) }

// LowerBound returns the strongest lower bound on OPT the library knows:
// the fractional bound ∫⌈N_t/g⌉dt, which dominates both Observation 1.1
// bounds.
func LowerBound(in *Instance) float64 { return core.BestBound(in) }

// AllBounds returns the span, parallelism and fractional lower bounds.
func AllBounds(in *Instance) Bounds { return core.AllBounds(in) }
