// Package busytime is the public API of the busy-time scheduling library,
// a Go implementation of
//
//	Flammini, Monaco, Moscardelli, Shachnai, Shalom, Tamir, Zaks:
//	"Minimizing total busy time in parallel scheduling with application to
//	optical networks", IPDPS 2009 / Theoretical Computer Science 411 (2010).
//
// The problem: jobs are fixed time intervals, a machine may run at most g
// jobs simultaneously, machines may be opened freely, and the objective is
// to minimize the total busy time — the sum over machines of the measure of
// time each machine has at least one active job. The problem is NP-hard
// already for g = 2.
//
// # Sessions
//
// The package is organized around the Solver session: New selects an
// algorithm by registered name and owns a pool of recycled schedule arenas,
// so repeated Solve calls run the same zero-steady-state-allocation path as
// the internal batch engine. SolveBatch and SolveStream fan instances out
// across workers with deterministic, input-ordered results; Online opens a
// feed-one-job-at-a-time handle for the online problem. Every entry point
// takes a context: batch runs cancel at instance boundaries and the exact
// branch-and-bound cancels mid-search.
//
//	s, err := busytime.New(busytime.WithAlgorithm("bestfit"), busytime.WithVerify(true))
//	res, err := s.Solve(ctx, instance)   // res.Cost, res.Bounds, res.Gap(), res.Schedule
//
// The paper's algorithms and their proven guarantees, by registered name:
//
//   - firstfit — §2.1, 4-approximation for general instances (ratio ∈ [3,4])
//   - properfit — §3.1, 2-approximation for proper interval instances
//   - clique — Appendix, 2-approximation when all jobs intersect
//   - boundedlength — §3.2, (2+ε)-approximation for lengths in [1, d]
//   - laminar — exact polynomial solver for laminar instances
//   - exact — branch-and-bound optimum for small instances
//   - portfolio — best of all applicable algorithms plus local search
//   - online-firstfit / online-bestfit / online-nextfit — arrival-order
//     policies for the online variant (plus baselines; see Algorithms)
//
// Sub-packages under internal/ provide the substrates (interval sweeps,
// interval graphs, interval trees, b-matching, the optical-network reduction
// of §4, a discrete-event validator, workload generators and the experiment
// harness reproducing every quantitative artifact of the paper).
package busytime

import (
	"context"
	"fmt"
	"math"
	"sync"

	"busytime/internal/algo/portfolio"
	"busytime/internal/core"
	"busytime/internal/interval"
)

// Core model types, re-exported.
type (
	// Interval is a closed interval [Start, End] on the real line.
	Interval = interval.Interval
	// Job is a scheduling job: an interval plus a capacity demand.
	Job = core.Job
	// Instance is a busy-time scheduling instance (jobs + parallelism g).
	Instance = core.Instance
	// Schedule is an assignment of jobs to machines.
	Schedule = core.Schedule
	// Bounds bundles the lower bounds of an instance.
	Bounds = core.Bounds
)

// ParseInterval returns the closed interval [start, end], rejecting NaN
// endpoints and reversed bounds with an error. It is the validating
// counterpart of the legacy NewInterval shim.
func ParseInterval(start, end float64) (Interval, error) {
	if math.IsNaN(start) || math.IsNaN(end) {
		return Interval{}, fmt.Errorf("busytime: NaN interval endpoint [%v, %v]", start, end)
	}
	if end < start {
		return Interval{}, fmt.Errorf("busytime: interval end %v < start %v", end, start)
	}
	return Interval{Start: start, End: end}, nil
}

// BuildInstance builds an instance with parallelism g from fully specified
// jobs, validating everything the scheduling core assumes: g ≥ 1, unique
// job IDs, demands in [1, g], and well-formed intervals. It is the
// validating counterpart of the legacy NewInstance shim. The jobs slice is
// copied.
func BuildInstance(g int, jobs ...Job) (*Instance, error) {
	in := &Instance{G: g, Jobs: append([]Job(nil), jobs...)}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// UnitJobs converts raw intervals into unit-demand jobs with sequential IDs
// starting at 0 — the paper's base problem — for use with BuildInstance.
func UnitJobs(ivs ...Interval) []Job {
	jobs := make([]Job, len(ivs))
	for i, iv := range ivs {
		jobs[i] = Job{ID: i, Iv: iv, Demand: 1}
	}
	return jobs
}

// NewInterval returns the closed interval [start, end]; it panics when end <
// start.
//
// It is the legacy panicking shim kept for source compatibility; new code
// should use ParseInterval and handle the error.
func NewInterval(start, end float64) Interval { return interval.New(start, end) }

// NewInstance builds an instance with parallelism g from intervals,
// assigning sequential job IDs and unit demands. It performs no validation
// (g ≤ 0 or reversed intervals surface later, possibly as panics).
//
// It is the legacy shim kept for source compatibility; new code should use
// BuildInstance (with UnitJobs for the unit-demand case) and handle the
// error.
func NewInstance(g int, ivs ...Interval) *Instance { return core.NewInstance(g, ivs...) }

// defaultSolvers caches one fresh-schedule Solver per algorithm name for
// the deprecated free functions, which predate sessions and must keep
// returning schedules that never share memory.
var defaultSolvers sync.Map

func defaultSolve(name string, in *Instance, extra ...Option) (Result, error) {
	if len(extra) > 0 {
		// Parameterized call (e.g. BoundedLength's d): a one-shot session.
		s, err := New(append([]Option{WithAlgorithm(name), WithFreshSchedules()}, extra...)...)
		if err != nil {
			return Result{}, err
		}
		return s.Solve(context.Background(), in)
	}
	v, ok := defaultSolvers.Load(name)
	if !ok {
		s, err := New(WithAlgorithm(name), WithFreshSchedules())
		if err != nil {
			return Result{}, err
		}
		v, _ = defaultSolvers.LoadOrStore(name, s)
	}
	return v.(*Solver).Solve(context.Background(), in)
}

// mustSolve backs the legacy wrappers whose signatures have no error return:
// errors (including invalid instances) panic, which is the documented shim
// behavior.
func mustSolve(name string, in *Instance) *Schedule {
	res, err := defaultSolve(name, in)
	if err != nil {
		panic(err)
	}
	return res.Schedule
}

// FirstFit runs the paper's FirstFit (§2.1): jobs sorted by non-increasing
// length, each placed on the first machine with capacity throughout its
// interval. Guarantee: cost ≤ 4·OPT on every instance (Theorem 2.1).
//
// Deprecated: use New(WithAlgorithm("firstfit")) and Solve; this shim runs a
// package-default Solver and panics on invalid instances.
func FirstFit(in *Instance) *Schedule { return mustSolve("firstfit", in) }

// ProperGreedy runs the §3.1 greedy (NextFit by start time). Guarantee:
// cost ≤ OPT + span ≤ 2·OPT on proper instances (Theorem 3.1); on arbitrary
// instances the schedule is feasible but unguaranteed.
//
// Deprecated: use New(WithAlgorithm("properfit")) and Solve; this shim runs
// a package-default Solver and panics on invalid instances.
func ProperGreedy(in *Instance) *Schedule { return mustSolve("properfit", in) }

// CliqueSchedule runs the Appendix algorithm for instances whose intervals
// all share a common point. Guarantee: cost ≤ 2·OPT (Theorem A.1). It
// errors when the instance is not a clique.
//
// Deprecated: use New(WithAlgorithm("clique")) and Solve.
func CliqueSchedule(in *Instance) (*Schedule, error) {
	res, err := defaultSolve("clique", in)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// BoundedLength runs the §3.2 algorithm: segment the time axis at
// granularity d (the maximum job length when d = 0) and optimize per
// segment; the segmentation costs at most a factor 2 (Lemma 3.3).
//
// Deprecated: use New(WithAlgorithm("boundedlength"), WithLengthBound(d))
// and Solve.
func BoundedLength(in *Instance, d float64) (*Schedule, error) {
	var extra []Option
	if d != 0 {
		extra = append(extra, WithLengthBound(d))
	}
	res, err := defaultSolve("boundedlength", in, extra...)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// Exact computes an optimal schedule by branch and bound. It errors when a
// connected component exceeds the tractable size.
//
// Deprecated: use New(WithAlgorithm("exact")) and Solve, which adds context
// cancellation and WithExactLimit.
func Exact(in *Instance) (*Schedule, error) {
	res, err := defaultSolve("exact", in)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// LaminarSchedule solves laminar instances (any two jobs nested or strictly
// disjoint) exactly in polynomial time by level grouping; the result's cost
// equals the fractional lower bound. It errors on non-laminar instances.
//
// Deprecated: use New(WithAlgorithm("laminar")) and Solve.
func LaminarSchedule(in *Instance) (*Schedule, error) {
	res, err := defaultSolve("laminar", in)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// Portfolio runs every applicable algorithm plus local search and returns
// the cheapest feasible schedule with the winning algorithm's name.
//
// Deprecated: use New(WithAlgorithm("portfolio")) and Solve. The session
// Result reports "portfolio" as the algorithm; this shim additionally
// surfaces the inner winner's name, which is why it calls the portfolio
// directly rather than through a session.
func Portfolio(in *Instance) (*Schedule, string, error) {
	if in == nil {
		return nil, "", fmt.Errorf("busytime: Portfolio of a nil instance")
	}
	if err := in.Validate(); err != nil {
		return nil, "", err
	}
	return portfolio.Schedule(in)
}

// LowerBound returns the strongest lower bound on OPT the library knows:
// the fractional bound ∫⌈N_t/g⌉dt, which dominates both Observation 1.1
// bounds.
func LowerBound(in *Instance) float64 { return core.BestBound(in) }

// AllBounds returns the span, parallelism and fractional lower bounds.
func AllBounds(in *Instance) Bounds { return core.AllBounds(in) }
