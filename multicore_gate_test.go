package busytime_test

// Multicore performance gates, run by the CI `multicore` job under
// GOMAXPROCS=4 with BUSYTIME_MULTICORE_GATE=1. They are skipped everywhere
// else: wall-clock ratios are meaningless on a time-sliced single core, and
// correctness (bitwise parity, feasibility, cost envelope) is already pinned
// unconditionally by the ordinary test suite.

import (
	"context"
	"os"
	"testing"
	"time"

	"busytime"
	"busytime/internal/generator"
)

func requireMulticoreGate(t *testing.T) {
	t.Helper()
	if os.Getenv("BUSYTIME_MULTICORE_GATE") == "" {
		t.Skip("set BUSYTIME_MULTICORE_GATE=1 (CI multicore job) to run wall-clock gates")
	}
}

// TestMulticoreMergeGate is the Amdahl gate of the stitch merge: on the
// 16-cluster 100k-job workload the sequential merge phase must stay under 25%
// of the concurrent solve phase, or the serial fraction has crept back up and
// the parallel layer cannot scale past ~4 workers.
func TestMulticoreMergeGate(t *testing.T) {
	requireMulticoreGate(t)
	in := generator.Clustered(7, 16, 6250, 4, 5000, 40)
	s, err := busytime.New(busytime.WithWorkers(4), busytime.WithIntraWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, in); err != nil { // warm arenas and runner
		t.Fatal(err)
	}
	// Best of 3 damps scheduler noise; the gate is structural (a second full
	// span-union pass would be ~100% of solve), not a tight timing assert.
	best := time.Duration(0)
	var bestD busytime.DecompStats
	for i := 0; i < 3; i++ {
		res, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		d := res.Decomp
		if !d.Decomposed() {
			t.Fatalf("run %d: layer declined: %+v", i, d)
		}
		if best == 0 || d.MergeTime < best {
			best, bestD = d.MergeTime, d
		}
	}
	if bestD.SolveTime <= 0 {
		t.Fatalf("degenerate solve time: %+v", bestD)
	}
	if ratio := float64(best) / float64(bestD.SolveTime); ratio > 0.25 {
		t.Fatalf("merge is %.0f%% of solve (merge=%v solve=%v); the stitch merge should stay ≤ 25%%",
			100*ratio, best, bestD.SolveTime)
	}
}

// TestMulticoreShardSpeedup is the sharding smoke: a dense single-component
// 100k-job instance must solve ≥ 1.8× faster with 4 time shards on 4 cores
// than sequentially. Correctness of the sharded schedule is pinned elsewhere;
// this gate only exists to catch the parallel path silently serializing.
func TestMulticoreShardSpeedup(t *testing.T) {
	requireMulticoreGate(t)
	in := generator.General(7, 100000, 4, 10000, 30)
	seq, err := busytime.New(busytime.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	shr, err := busytime.New(busytime.WithWorkers(4), busytime.WithTimeSharding(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	measure := func(s *busytime.Solver, wantShards bool) time.Duration {
		if _, err := s.Solve(ctx, in); err != nil { // warm
			t.Fatal(err)
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			res, err := s.Solve(ctx, in)
			el := time.Since(t0)
			if err != nil {
				t.Fatal(err)
			}
			if wantShards && res.Decomp.Shards < 2 {
				t.Fatalf("sharding did not engage: %+v", res.Decomp)
			}
			if best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	tseq := measure(seq, false)
	tshard := measure(shr, true)
	if speedup := float64(tseq) / float64(tshard); speedup < 1.8 {
		t.Fatalf("4-shard speedup %.2fx (seq=%v sharded=%v); want ≥ 1.8x on 4 cores", speedup, tseq, tshard)
	}
}
