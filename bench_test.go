package busytime_test

// One benchmark per experiment (E1–E10, see DESIGN.md §4): each bench
// regenerates the corresponding table of the reproduction at reduced trial
// counts, so `go test -bench=.` exercises the entire harness. cmd/benchtables
// prints the full tables.

import (
	"context"
	"runtime"
	"testing"

	"busytime"
	"busytime/internal/algo/baselines"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/decomp"
	"busytime/internal/engine"
	"busytime/internal/experiments"
	"busytime/internal/generator"
	"busytime/internal/online"
)

// benchCfg keeps per-iteration work bounded; the experiment structure
// (workloads, algorithms, references) is identical to the full run.
var benchCfg = experiments.Config{Trials: 6, Seed: 1, LargeN: 400}

func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Metrics) == 0 {
			b.Fatal("experiment reported no metrics")
		}
	}
}

func BenchmarkE1FirstFitGeneral(b *testing.B)   { runExperiment(b, experiments.E1FirstFitGeneral) }
func BenchmarkE2Fig4LowerBound(b *testing.B)    { runExperiment(b, experiments.E2Fig4) }
func BenchmarkE3ProperGreedy(b *testing.B)      { runExperiment(b, experiments.E3ProperGreedy) }
func BenchmarkE4BoundedLength(b *testing.B)     { runExperiment(b, experiments.E4BoundedLength) }
func BenchmarkE5Clique(b *testing.B)            { runExperiment(b, experiments.E5Clique) }
func BenchmarkE6LowerBounds(b *testing.B)       { runExperiment(b, experiments.E6LowerBounds) }
func BenchmarkE7Optical(b *testing.B)           { runExperiment(b, experiments.E7Optical) }
func BenchmarkE8MachineMin(b *testing.B)        { runExperiment(b, experiments.E8MachineMin) }
func BenchmarkE9ProperAdversarial(b *testing.B) { runExperiment(b, experiments.E9ProperAdversarial) }
func BenchmarkE10Demand(b *testing.B)           { runExperiment(b, experiments.E10Demand) }

// Design-choice ablations (DESIGN.md §4, "Ablations").

func BenchmarkA1Ordering(b *testing.B)     { runExperiment(b, experiments.A1Ordering) }
func BenchmarkA2TreeIndex(b *testing.B)    { runExperiment(b, experiments.A2TreeIndex) }
func BenchmarkA3LocalSearch(b *testing.B)  { runExperiment(b, experiments.A3LocalSearch) }
func BenchmarkA4Online(b *testing.B)       { runExperiment(b, experiments.A4Online) }
func BenchmarkA5Laminar(b *testing.B)      { runExperiment(b, experiments.A5Laminar) }
func BenchmarkA6MachineIndex(b *testing.B) { runExperiment(b, experiments.A6MachineIndex) }

// Scaling micro-benchmarks of the core algorithm at increasing sizes, with
// the machine-selection index (default) and without (the PR 1 scan path).

func benchFirstFitN(b *testing.B, n int, run func(*core.Instance) *core.Schedule) {
	in := generator.General(7, n, 4, float64(n), 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(in)
	}
}

func BenchmarkFirstFitN1e2(b *testing.B) { benchFirstFitN(b, 100, firstfit.Schedule) }
func BenchmarkFirstFitN1e3(b *testing.B) { benchFirstFitN(b, 1000, firstfit.Schedule) }
func BenchmarkFirstFitN1e4(b *testing.B) { benchFirstFitN(b, 10000, firstfit.Schedule) }
func BenchmarkFirstFitN1e5(b *testing.B) { benchFirstFitN(b, 100000, firstfit.Schedule) }

func BenchmarkFirstFitScanN1e4(b *testing.B) { benchFirstFitN(b, 10000, firstfit.ScheduleScan) }
func BenchmarkFirstFitScanN1e5(b *testing.B) { benchFirstFitN(b, 100000, firstfit.ScheduleScan) }

// Kernel BestFit at scale (the indexed argmin over span deltas) against the
// pre-kernel per-machine probe loop it replaced ("bestfit-scan").

func BenchmarkBestFitN1e4(b *testing.B)     { benchFirstFitN(b, 10000, baselines.BestFit) }
func BenchmarkBestFitN1e5(b *testing.B)     { benchFirstFitN(b, 100000, baselines.BestFit) }
func BenchmarkBestFitScanN1e4(b *testing.B) { benchFirstFitN(b, 10000, baselines.BestFitScan) }
func BenchmarkBestFitScanN1e5(b *testing.B) { benchFirstFitN(b, 100000, baselines.BestFitScan) }

// Online replays at scale: the arrival-order FirstFit policy through the
// kernel, fresh and through a recycled arena (the competitive-ratio sweep's
// steady state).

func BenchmarkOnlineN1e5(b *testing.B) {
	in := generator.General(7, 100000, 4, 100000, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Run(in, online.FirstFit{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlinePooledN1e5(b *testing.B) {
	in := generator.General(7, 100000, 4, 100000, 30)
	sc := new(core.Scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.RunScratch(in, sc, online.FirstFit{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Pooled-arena variants: the same workload scheduled through one recycled
// core.Scratch, the engine worker's steady state. After the first iteration
// warms the arena, runs perform zero schedule-state allocations (see
// core.TestFirstFitAssignZeroAllocSteadyState for the hard gate).
func benchFirstFitPooledN(b *testing.B, n int) {
	in := generator.General(7, n, 4, float64(n), 30)
	sc := new(core.Scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := firstfit.ScheduleScratch(in, sc)
		if s.NumMachines() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkFirstFitPooledN1e4(b *testing.B) { benchFirstFitPooledN(b, 10000) }
func BenchmarkFirstFitPooledN1e5(b *testing.B) { benchFirstFitPooledN(b, 100000) }

// Public warm path: a single-worker Solver session re-solving one instance,
// which must ride exactly the internal pooled path (same recycled arena,
// cached bounds and orders) — BenchmarkSolverWarmN1e5 is pinned to the
// allocs/op of BenchmarkFirstFitPooledN1e5 by TestSolverWarmMatchesPooled
// and the BENCH_5 record.
func benchSolverWarmN(b *testing.B, n int, algorithm string) {
	in := generator.General(7, n, 4, float64(n), 30)
	s, err := busytime.New(busytime.WithAlgorithm(algorithm), busytime.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, in); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if res.Machines == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkSolverWarmN1e4(b *testing.B)        { benchSolverWarmN(b, 10000, "firstfit") }
func BenchmarkSolverWarmN1e5(b *testing.B)        { benchSolverWarmN(b, 100000, "firstfit") }
func BenchmarkSolverWarmBestFitN1e5(b *testing.B) { benchSolverWarmN(b, 100000, "bestfit") }

// The batch fan-out through the public facade, against BenchmarkBatchFirstFit
// (the internal engine run it wraps).
func BenchmarkSolverBatchFirstFit(b *testing.B) {
	batch := batch100k()
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.SolveBatch(context.Background(), batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(batch) {
			b.Fatalf("got %d results, want %d", len(res), len(batch))
		}
	}
}

func benchBestFitPooledN(b *testing.B, n int) {
	in := generator.General(7, n, 4, float64(n), 30)
	sc := new(core.Scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := baselines.BestFitScratch(in, sc)
		if s.NumMachines() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkBestFitPooledN1e4(b *testing.B) { benchBestFitPooledN(b, 10000) }
func BenchmarkBestFitPooledN1e5(b *testing.B) { benchBestFitPooledN(b, 100000) }

// Batch-engine benchmarks (DESIGN.md §5): the same batch of seeded 100k-job
// instances scheduled through internal/engine versus a naive sequential
// loop. The engine run should beat the loop by roughly the core count; the
// determinism test in internal/engine guarantees the outputs are identical.

// batch100k builds one 100k-job instance per available core (min 4) across
// the large-scale scenario generators.
func batch100k() []*core.Instance {
	k := runtime.GOMAXPROCS(0)
	if k < 4 {
		k = 4
	}
	out := make([]*core.Instance, 0, k)
	for i := 0; i < k; i++ {
		seed := int64(100 + i)
		switch i % 3 {
		case 0:
			out = append(out, generator.General(seed, 100000, 8, 100000, 30))
		case 1:
			out = append(out, generator.CloudBurst(seed, 100000, 8, 50000, 15, 12, 0.5))
		default:
			out = append(out, generator.LightpathWave(seed, 50, 2000, 8, 2000, 800, 400))
		}
	}
	return out
}

func BenchmarkBatchFirstFit(b *testing.B) {
	batch := batch100k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Run(context.Background(), batch, engine.Options{Algorithm: "firstfit"})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(batch) {
			b.Fatalf("got %d results, want %d", len(res), len(batch))
		}
	}
}

func BenchmarkBatchFirstFitSequential(b *testing.B) {
	batch := batch100k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The naive loop the engine replaces: fresh schedule state per
		// instance, one instance at a time.
		for _, in := range batch {
			s := firstfit.Schedule(in)
			if s.NumMachines() == 0 {
				b.Fatal("empty schedule")
			}
			_ = s.Cost()
			_ = core.BestBound(in)
		}
	}
}

func BenchmarkBatchPortfolio(b *testing.B) {
	batch := make([]*core.Instance, 16)
	for i := range batch {
		batch[i] = generator.General(int64(200+i), 400, 4, 400, 30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(context.Background(), batch, engine.Options{Algorithm: "portfolio"}); err != nil {
			b.Fatal(err)
		}
	}
}

// The decompose–solve–merge path: one warm Solver session re-solving a
// multi-component clustered instance (~100k jobs across 16 time-disjoint
// clusters). The Seq variant is the plain sequential path; the Intra
// variants enable WithIntraWorkers so components solve concurrently on the
// session's spare arenas. On a multi-core host the ladder shows the
// intra-instance speedup; determinism is pinned separately (the decomposed
// schedule is bitwise-identical, see intra_test.go), so the bench only
// checks machine count. BENCH_6.json records the measured numbers together
// with the host core count — the scaling gate is only meaningful when
// GOMAXPROCS exceeds the intra budget.
func benchDecompClustered(b *testing.B, workers, intra int) {
	in := generator.Clustered(7, 16, 6250, 4, 5000, 40)
	opts := []busytime.Option{busytime.WithWorkers(workers)}
	if intra != 1 {
		opts = append(opts, busytime.WithIntraWorkers(intra))
	}
	s, err := busytime.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, in); err != nil { // warm the arenas
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if res.Machines == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkDecompClustered100kSeq(b *testing.B)    { benchDecompClustered(b, 1, 1) }
func BenchmarkDecompClustered100kIntra2(b *testing.B) { benchDecompClustered(b, 2, 2) }
func BenchmarkDecompClustered100kIntra4(b *testing.B) { benchDecompClustered(b, 4, 4) }

// The sweep alone: component labeling over the cached start order, the O(n)
// prefix of every decomposed run. The warm-up call before ResetTimer sizes
// the runner's label buffer, so the steady-state figure is 0 B/op — the
// recycled-buffer contract of the layer, not an amortized average.
func BenchmarkDecompSweep100k(b *testing.B) {
	in := generator.Clustered(7, 16, 6250, 4, 5000, 40)
	in.CachedValidate()
	r := decomp.NewRunner()
	if n := r.SweepCount(in); n != 16 { // warm: grow labels once
		b.Fatalf("sweep found %d components, want 16", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := r.SweepCount(in); n != 16 {
			b.Fatalf("sweep found %d components, want 16", n)
		}
	}
}

// The time-sharding ladder: one warm Solver session re-solving a dense
// single-component instance (100k jobs, no positive-length gap anywhere) —
// the regime where component decomposition starves and WithTimeSharding is
// the only parallel path. Seq is the plain sequential solve; the Shard
// variants opt in with k shards on k workers. Sharded results are feasible
// but not bitwise-identical (see WithTimeSharding), so the bench checks
// machine count only; TestShardedSolveValidAndBounded pins validity and the
// cost envelope. BENCH_7.json records measured numbers with the host core
// count — on a single-core host the ladder shows the sharding overhead
// (cut selection + reconcile + merge), not a speedup.
func benchShardDense(b *testing.B, workers, shards int) {
	in := generator.General(7, 100000, 4, 10000, 30)
	opts := []busytime.Option{busytime.WithWorkers(workers)}
	if shards != 1 {
		opts = append(opts, busytime.WithTimeSharding(shards))
	}
	s, err := busytime.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm every arena: shard↔arena pairing rotates through the pool between
	// Solves, so each arena must see both the largest shard and the merged
	// whole before steady state is reached.
	for w := 0; w < 2*workers+2; w++ {
		res, err := s.Solve(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if shards > 1 && res.Decomp.Shards < 2 {
			b.Fatalf("sharding did not engage: %+v", res.Decomp)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Solve(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if res.Machines == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkShardDense100kSeq(b *testing.B)    { benchShardDense(b, 1, 1) }
func BenchmarkShardDense100kShard2(b *testing.B) { benchShardDense(b, 2, 2) }
func BenchmarkShardDense100kShard4(b *testing.B) { benchShardDense(b, 4, 4) }

// The rolling-horizon session under an unbounded arrival stream: one op is
// one public PlaceDemand (demand ≤ 4 on g = 8, ~1k live jobs), with one in
// eight arrivals followed by an early Release of a recent job — the
// steady-state mix of arrivals, departures and window compactions. The
// stream (1e6 pre-generated arrivals) wraps by shifting the clock, so any
// -benchtime keeps arrival order legal; the warm-up before the timer takes
// the session past its growth phase, and the CI gate pins allocs/op to the
// checked-in budget of zero (ci/alloc-budget-online-stream.txt).
func BenchmarkOnlineStream1e6(b *testing.B) {
	const live = 1024
	s, err := busytime.New(busytime.WithWindow(live))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := s.Online(8, "firstfit")
	if err != nil {
		b.Fatal(err)
	}
	d := newStreamDriver(sess, generator.Stream(7, 1<<20, live, 4), 42, live)
	for i := 0; i < 16*live; i++ { // warm: ring, heaps and machines at steady size
		if err := d.step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
