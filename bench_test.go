package busytime_test

// One benchmark per experiment (E1–E10, see DESIGN.md §4 and
// EXPERIMENTS.md): each bench regenerates the corresponding table of the
// reproduction at reduced trial counts, so `go test -bench=.` exercises the
// entire harness. cmd/benchtables prints the full tables.

import (
	"testing"

	"busytime/internal/algo/firstfit"
	"busytime/internal/experiments"
	"busytime/internal/generator"
)

// benchCfg keeps per-iteration work bounded; the experiment structure
// (workloads, algorithms, references) is identical to the full run.
var benchCfg = experiments.Config{Trials: 6, Seed: 1, LargeN: 400}

func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Metrics) == 0 {
			b.Fatal("experiment reported no metrics")
		}
	}
}

func BenchmarkE1FirstFitGeneral(b *testing.B)   { runExperiment(b, experiments.E1FirstFitGeneral) }
func BenchmarkE2Fig4LowerBound(b *testing.B)    { runExperiment(b, experiments.E2Fig4) }
func BenchmarkE3ProperGreedy(b *testing.B)      { runExperiment(b, experiments.E3ProperGreedy) }
func BenchmarkE4BoundedLength(b *testing.B)     { runExperiment(b, experiments.E4BoundedLength) }
func BenchmarkE5Clique(b *testing.B)            { runExperiment(b, experiments.E5Clique) }
func BenchmarkE6LowerBounds(b *testing.B)       { runExperiment(b, experiments.E6LowerBounds) }
func BenchmarkE7Optical(b *testing.B)           { runExperiment(b, experiments.E7Optical) }
func BenchmarkE8MachineMin(b *testing.B)        { runExperiment(b, experiments.E8MachineMin) }
func BenchmarkE9ProperAdversarial(b *testing.B) { runExperiment(b, experiments.E9ProperAdversarial) }
func BenchmarkE10Demand(b *testing.B)           { runExperiment(b, experiments.E10Demand) }

// Design-choice ablations (DESIGN.md §4, EXPERIMENTS.md "Ablations").

func BenchmarkA1Ordering(b *testing.B)    { runExperiment(b, experiments.A1Ordering) }
func BenchmarkA2TreeIndex(b *testing.B)   { runExperiment(b, experiments.A2TreeIndex) }
func BenchmarkA3LocalSearch(b *testing.B) { runExperiment(b, experiments.A3LocalSearch) }
func BenchmarkA4Online(b *testing.B)      { runExperiment(b, experiments.A4Online) }
func BenchmarkA5Laminar(b *testing.B)     { runExperiment(b, experiments.A5Laminar) }

// Scaling micro-benchmarks of the core algorithm at increasing sizes.

func benchFirstFitN(b *testing.B, n int) {
	in := generator.General(7, n, 4, float64(n), 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = firstfit.Schedule(in)
	}
}

func BenchmarkFirstFitN1e2(b *testing.B) { benchFirstFitN(b, 100) }
func BenchmarkFirstFitN1e3(b *testing.B) { benchFirstFitN(b, 1000) }
func BenchmarkFirstFitN1e4(b *testing.B) { benchFirstFitN(b, 10000) }
