package busytime

import (
	"context"
	"fmt"

	"busytime/internal/algo"
	"busytime/internal/algo/boundedlength"
	"busytime/internal/algo/exact"
	"busytime/internal/core"
	"busytime/internal/decomp"
	"busytime/internal/engine"
	"busytime/internal/online"

	// Every algorithm package registers itself in init; the facade imports
	// the full set so any registered name is reachable through
	// WithAlgorithm from a pure public consumer. (boundedlength, exact,
	// online and portfolio are real imports above / in busytime.go.)
	_ "busytime/internal/algo/baselines"
	_ "busytime/internal/algo/cliquealgo"
	_ "busytime/internal/algo/firstfit"
	_ "busytime/internal/algo/laminar"
	_ "busytime/internal/algo/properfit"
)

// Solver is a scheduling session: an algorithm selected by name from the
// registry plus the state that makes repeated solving fast — a pool of
// recycled schedule arenas (core.Scratch), one per configured worker, so a
// warm Solver's Solve calls allocate no steady-state schedule state, exactly
// like the internal batch engine's workers. Construct one with New, then
// reuse it: Solve for single instances, SolveBatch/SolveStream for parallel
// bulk runs, Online for incremental arrival-order sessions.
//
// A Solver is safe for concurrent use. Up to WithWorkers arenas exist; a
// Solve call beyond that waits (honoring its context) for an arena to free.
// Note that concurrency tightens the arena-mode Result lifetime: a
// Result's Schedule (and Detach) must be consumed before any goroutine's
// next Solve can lease the same arena — concurrent pipelines that retain
// schedules should use WithFreshSchedules.
//
// Cancellation is cooperative: every entry point takes a context, batch runs
// observe it per instance and per shard, and the mid-run-cancellable
// algorithms (see Algorithms; currently the exact branch-and-bound) also
// checkpoint it inside a single run, so cancelling returns promptly with the
// context's error even from an exponential search.
type Solver struct {
	cfg    config
	alg    algo.Algorithm
	policy online.Policy // non-nil exactly for the online-* algorithms
	pool   chan *core.Scratch
	// decomp is the session's resolved decomposition contract (nil unless
	// WithIntraWorkers enabled the layer and the algorithm declares one) and
	// runners the recycled decomposition state, one Runner per worker.
	decomp  *algo.Decomposer
	runners chan *decomp.Runner
}

// New builds a Solver from functional options, validating the configuration
// (unknown algorithm names, cross-option mismatches) eagerly so every later
// Solve starts with a known-good session. The zero-option default is the
// paper's FirstFit with GOMAXPROCS workers, no verification, arena-backed
// results.
func New(opts ...Option) (*Solver, error) {
	cfg := config{algorithm: "firstfit", lookahead: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	a, ok := algo.Lookup(cfg.algorithm)
	if !ok {
		return nil, fmt.Errorf("busytime: unknown algorithm %q (registered: %s)", cfg.algorithm, algorithmNames())
	}
	s := &Solver{cfg: cfg, alg: a}
	for _, p := range online.Policies() {
		if p.Name() == cfg.algorithm {
			s.policy = p
			break
		}
	}
	if cfg.lookahead > 1 && s.policy == nil {
		return nil, fmt.Errorf("busytime: WithLookahead applies to the online-* algorithms, not %q", cfg.algorithm)
	}
	if cfg.exactLimit != 0 && cfg.algorithm != "exact" {
		return nil, fmt.Errorf("busytime: WithExactLimit applies to \"exact\", not %q", cfg.algorithm)
	}
	if cfg.lengthD != 0 && cfg.algorithm != "boundedlength" {
		return nil, fmt.Errorf("busytime: WithLengthBound applies to \"boundedlength\", not %q", cfg.algorithm)
	}
	// Machine-independent check: auto (-1) or an explicit cap ≥ 2 asked for
	// the layer, whatever the worker budget resolves to on this host.
	if (cfg.intra < 0 || cfg.intra > 1) && cfg.fresh {
		return nil, fmt.Errorf("busytime: WithIntraWorkers needs the recycled arena pool; drop WithFreshSchedules")
	}
	if (cfg.shards < 0 || cfg.shards > 1) && cfg.fresh {
		return nil, fmt.Errorf("busytime: WithTimeSharding needs the recycled arena pool; drop WithFreshSchedules")
	}
	if !cfg.fresh {
		s.pool = engine.NewScratchPool(cfg.maxWorkers())
	}
	if cfg.intraWorkers() > 1 || cfg.timeShards() > 1 {
		if d := s.decomposer(); d != nil {
			s.decomp = d
			s.runners = decomp.NewRunnerPool(cfg.maxWorkers())
		}
	}
	return s, nil
}

// decomposer resolves the session's decomposition contract: the registered
// Decomposer for most algorithms, the exact solver's rebuilt with the
// session's WithExactLimit, and nil for lookahead replays (the shared buffer
// spans components).
func (s *Solver) decomposer() *algo.Decomposer {
	switch {
	case s.cfg.algorithm == "exact":
		return exact.Decomposer(s.exactLimit())
	case s.cfg.lookahead > 1:
		return nil
	default:
		return s.alg.Decompose
	}
}

// Algorithm returns the session's registered algorithm name.
func (s *Solver) Algorithm() string { return s.cfg.algorithm }

// Solve schedules one instance and returns the summary Result. The instance
// is validated first (no panics on bad input); ctx cancellation is honored
// while waiting for an arena and, for mid-run-cancellable algorithms, inside
// the run itself. In the default arena mode the Result's Schedule lives in
// recycled memory — see Result.Detach and WithFreshSchedules.
func (s *Solver) Solve(ctx context.Context, in *Instance) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if in == nil {
		return Result{}, fmt.Errorf("busytime: Solve of a nil instance")
	}
	if err := in.CachedValidate(); err != nil {
		return Result{}, err
	}
	if err := context.Cause(ctx); err != nil {
		return Result{}, err
	}
	if s.cfg.fresh {
		sched, err := s.run(ctx, in, nil)
		if err != nil {
			return Result{}, err
		}
		return s.summarize(in, sched, ArenaStats{})
	}
	sc, err := s.acquire(ctx)
	if err != nil {
		return Result{}, err
	}
	// The arena is held until the Result is fully extracted: a concurrent
	// Solve must not recycle this schedule while its cost and machine count
	// are still being read. After return, the Result's Schedule stays
	// arena-backed — see Result.Detach for the retention contract.
	defer s.release(sc)
	before := sc.Stats()
	sched, dstats, err := s.solveOn(ctx, in, sc)
	if err != nil {
		return Result{}, err
	}
	res, err := s.summarize(in, sched, ArenaStats{
		Warm:        before.Schedules > 0,
		SetupAllocs: sc.Stats().SetupAllocs - before.SetupAllocs,
	})
	if err != nil {
		return Result{}, err
	}
	res.Decomp = dstats
	return res, nil
}

// solveOn schedules one instance on the leased arena, offering it to the
// decomposition layer first when the session enables one. A declined offer
// (single component, no spare arena idle) falls through to the ordinary
// sequential dispatch; the schedule is identical either way.
func (s *Solver) solveOn(ctx context.Context, in *Instance, sc *core.Scratch) (*core.Schedule, DecompStats, error) {
	if s.decomp == nil {
		sched, err := s.run(ctx, in, sc)
		return sched, DecompStats{}, err
	}
	r := <-s.runners
	sched, st, err := r.Solve(ctx, in, s.decomp, sc, s.pool, s.cfg.intraWorkers(), s.cfg.timeShards())
	// Converted before release: the stats buffer rides the runner (r.Pub)
	// and the per-component slices are runner-owned, so both must be read
	// out while this Solve still holds the lease.
	dstats := newDecompStatsInto(st, &r.Pub)
	s.runners <- r
	if err != nil {
		return nil, dstats, fmt.Errorf("busytime: %s: %w", s.cfg.algorithm, err)
	}
	if sched != nil {
		return sched, dstats, nil
	}
	sched, err = s.run(ctx, in, sc)
	return sched, dstats, err
}

// summarize verifies (when configured) and folds one schedule into a Result.
func (s *Solver) summarize(in *Instance, sched *core.Schedule, arena ArenaStats) (Result, error) {
	if s.cfg.verify {
		if err := sched.Verify(); err != nil {
			return Result{}, fmt.Errorf("busytime: %s produced infeasible schedule: %w", s.cfg.algorithm, err)
		}
	}
	return Result{
		Algorithm: s.cfg.algorithm,
		Schedule:  sched,
		Machines:  sched.NumMachines(),
		Cost:      sched.Cost(),
		Bounds:    in.CachedBounds(),
		Arena:     arena,
	}, nil
}

// run dispatches one instance to the session's algorithm; sc == nil selects
// the fresh-memory path. The exact solver and the lookahead replays route
// around the registry to carry their extra configuration (component limit,
// buffer size, segment bound); everything else goes through its registered
// scratch entry point with panics converted to errors.
func (s *Solver) run(ctx context.Context, in *Instance, sc *core.Scratch) (*core.Schedule, error) {
	switch {
	case s.cfg.algorithm == "exact":
		return exact.SolveWith(ctx, in, s.exactLimit(), sc)
	case s.cfg.lookahead > 1:
		if sc != nil {
			return online.RunLookaheadScratch(in, sc, s.cfg.lookahead, s.policy)
		}
		return online.RunLookahead(in, s.cfg.lookahead, s.policy)
	case s.cfg.algorithm == "boundedlength" && s.cfg.lengthD != 0:
		if sc != nil {
			return boundedlength.ScheduleScratch(in, boundedlength.Options{D: s.cfg.lengthD}, sc)
		}
		return boundedlength.Schedule(in, boundedlength.Options{D: s.cfg.lengthD})
	case s.alg.RunScratchCtx != nil && sc != nil:
		return s.alg.RunScratchCtx(ctx, in, sc)
	default:
		return safeRun(s.alg, in, sc)
	}
}

// exactLimit resolves the configured component limit of the exact search.
func (s *Solver) exactLimit() int {
	if s.cfg.exactLimit > 0 {
		return s.cfg.exactLimit
	}
	return exact.DefaultMaxJobs
}

// safeRun invokes the registered entry point converting panics — the legacy
// error channel of the registry's Run signature (class preconditions like
// "not a clique", component limits) — into errors. Recovered error values
// stay wrapped so errors.Is/As keep working across the facade.
func safeRun(a algo.Algorithm, in *core.Instance, sc *core.Scratch) (sched *core.Schedule, err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case error:
			err = fmt.Errorf("busytime: %s: %w", a.Name, r)
		default:
			err = fmt.Errorf("busytime: %s: %v", a.Name, r)
		}
	}()
	if sc != nil && a.RunScratch != nil {
		return a.RunScratch(in, sc), nil
	}
	return a.Run(in), nil
}

// acquire leases an arena from the session pool, honoring ctx while waiting
// for one of the WithWorkers arenas to free.
func (s *Solver) acquire(ctx context.Context) (*core.Scratch, error) {
	select {
	case sc := <-s.pool:
		return sc, nil
	default:
	}
	select {
	case sc := <-s.pool:
		return sc, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

func (s *Solver) release(sc *core.Scratch) { s.pool <- sc }
