package busytime_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"busytime"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
)

// almostEq compares busy times up to last-ulp drift: incremental cost
// accounting (span deltas summed during placement) and recomputation from
// pieces round differently.
func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// tinyUniversal returns an instance accepted by every registered algorithm:
// it is simultaneously a clique (all intervals share a point) and laminar
// (nested), small enough for exact, and valid for every heuristic.
func tinyUniversal() *busytime.Instance {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 4),
		busytime.NewInterval(1, 3),
		busytime.NewInterval(1.5, 2.5),
	)
	in.Name = "tiny-universal"
	return in
}

// TestSolverEveryRegisteredAlgorithm is the acceptance gate of the API
// redesign: every name in the registry must be constructible and solvable
// through the public Solver, with a verified feasible schedule.
func TestSolverEveryRegisteredAlgorithm(t *testing.T) {
	algos := busytime.Algorithms()
	if len(algos) < 17 {
		t.Fatalf("registry lists %d algorithms, want ≥ 17", len(algos))
	}
	for _, a := range algos {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s, err := busytime.New(busytime.WithAlgorithm(a.Name), busytime.WithVerify(true))
			if err != nil {
				t.Fatalf("New(%q): %v", a.Name, err)
			}
			res, err := s.Solve(context.Background(), tinyUniversal())
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Machines < 1 || res.Cost <= 0 {
				t.Errorf("degenerate result: machines=%d cost=%v", res.Machines, res.Cost)
			}
			if res.Cost < res.LowerBound()-1e-9 {
				t.Errorf("cost %v below lower bound %v", res.Cost, res.LowerBound())
			}
			if res.Algorithm != a.Name {
				t.Errorf("Result.Algorithm = %q, want %q", res.Algorithm, a.Name)
			}
		})
	}
}

func TestSolverWarmPathReusesArena(t *testing.T) {
	in := generator.General(11, 2000, 4, 500, 20)
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if first.Arena.Warm {
		t.Error("first solve reported a warm arena")
	}
	if first.Arena.SetupAllocs == 0 {
		t.Error("first solve reported zero setup allocations")
	}
	second, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Arena.Warm {
		t.Error("second solve did not report a warm arena")
	}
	if second.Arena.SetupAllocs != 0 {
		t.Errorf("warm re-solve performed %d arena setup allocations, want 0", second.Arena.SetupAllocs)
	}
	if second.Cost != first.Cost || second.Machines != first.Machines {
		t.Errorf("warm solve changed the result: %v/%d vs %v/%d",
			second.Cost, second.Machines, first.Cost, first.Machines)
	}
}

// TestSolverWarmMatchesPooled pins the public warm path to the internal
// pooled path: a warm single-worker Solver must perform (almost) exactly
// the allocations of firstfit.ScheduleScratch on a warm core.Scratch — the
// facade may not add per-call garbage.
func TestSolverWarmMatchesPooled(t *testing.T) {
	in := generator.General(7, 5000, 4, 5000, 30)
	ctx := context.Background()

	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(ctx, in); err != nil {
		t.Fatal(err)
	}
	public := testing.AllocsPerRun(5, func() {
		if _, err := s.Solve(ctx, in); err != nil {
			t.Fatal(err)
		}
	})

	sc := new(core.Scratch)
	firstfit.ScheduleScratch(in, sc)
	internal := testing.AllocsPerRun(5, func() {
		firstfit.ScheduleScratch(in, sc)
	})

	if public > internal+4 {
		t.Errorf("public warm Solve allocates %.0f/op, internal pooled path %.0f/op (budget +4)",
			public, internal)
	}
}

// TestSolveCancelExact proves ctx cancellation reaches inside the
// exponential search: a dense 28-job g=2 instance takes far longer than the
// test budget to solve exactly (>3s measured), yet a cancel after 50ms
// returns context.Canceled well within a second.
func TestSolveCancelExact(t *testing.T) {
	in := generator.General(3, 28, 2, float64(28)/3, 14)
	s, err := busytime.New(busytime.WithAlgorithm("exact"), busytime.WithExactLimit(28))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Solve(ctx, in)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve returned %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSolveBatchCancel cancels a batch mid-flight: SolveBatch must return
// context.Canceled promptly and drain its worker goroutines.
func TestSolveBatchCancel(t *testing.T) {
	batch := make([]*busytime.Instance, 64)
	for i := range batch {
		batch[i] = generator.General(int64(i+1), 20000, 4, 20000, 30)
	}
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := s.SolveBatch(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveBatch returned %v, want context.Canceled", err)
	}
	// The engine's fan-out waits for its workers before returning, so no
	// goroutine may outlive the call; allow scheduler jitter to settle.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, after)
	}
}

func TestSolveStreamCancel(t *testing.T) {
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	i := 0
	next := func() (*busytime.Instance, bool) {
		i++
		if i == 3 {
			cancel() // cancel between shards; the stream would be endless
		}
		return generator.General(int64(i), 5000, 4, 5000, 30), true
	}
	if _, err := s.SolveStream(ctx, next); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveStream returned %v, want context.Canceled", err)
	}
}

func TestSolveBatchMatchesSolve(t *testing.T) {
	batch := make([]*busytime.Instance, 9)
	for i := range batch {
		batch[i] = generator.General(int64(40+i), 400, 3, 200, 25)
	}
	s, err := busytime.New(busytime.WithAlgorithm("bestfit"), busytime.WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SolveBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("got %d results, want %d", len(results), len(batch))
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("instance %d failed: %s", i, r.Err)
		}
		res, err := s.Solve(context.Background(), batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost != res.Cost || r.Machines != res.Machines {
			t.Errorf("instance %d: batch %v/%d vs solve %v/%d",
				i, r.Cost, r.Machines, res.Cost, res.Machines)
		}
		if r.LowerBound != res.LowerBound() {
			t.Errorf("instance %d: batch LB %v vs solve LB %v", i, r.LowerBound, res.LowerBound())
		}
	}
	sum := busytime.SummarizeBatch(results)
	if sum.Runs != len(batch) {
		t.Errorf("summary runs %d, want %d", sum.Runs, len(batch))
	}
}

// TestSolveBatchHonorsSessionConfig pins SolveBatch to the session's full
// configuration: options that route around the registry (exact limits,
// lookahead buffers) must produce the same outcome as Solve, never fall
// back to the registered defaults.
func TestSolveBatchHonorsSessionConfig(t *testing.T) {
	three := busytime.NewInstance(2,
		busytime.NewInterval(0, 4), busytime.NewInterval(1, 5), busytime.NewInterval(2, 6))

	s, err := busytime.New(busytime.WithAlgorithm("exact"), busytime.WithExactLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), three); err == nil {
		t.Fatal("Solve accepted a 3-job component with limit 2")
	}
	batch, err := s.SolveBatch(context.Background(), []*busytime.Instance{three})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err == "" || !strings.Contains(batch[0].Err, "exceeds limit 2") {
		t.Errorf("SolveBatch ignored WithExactLimit: err = %q", batch[0].Err)
	}

	in := generator.General(23, 300, 3, 150, 20)
	offline, err := busytime.New(busytime.WithAlgorithm("firstfit"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := offline.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	look, err := busytime.New(
		busytime.WithAlgorithm("online-firstfit"), busytime.WithLookahead(in.N()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := look.SolveBatch(context.Background(), []*busytime.Instance{in})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != "" || !almostEq(got[0].Cost, want.Cost) {
		t.Errorf("SolveBatch ignored WithLookahead: cost %v err %q, want offline FirstFit %v",
			got[0].Cost, got[0].Err, want.Cost)
	}
}

func TestOnlineRejectsLookaheadSession(t *testing.T) {
	s, err := busytime.New(busytime.WithAlgorithm("online-firstfit"), busytime.WithLookahead(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Online(2, "firstfit"); err == nil || !strings.Contains(err.Error(), "WithLookahead") {
		t.Errorf("lookahead session accepted: %v", err)
	}
}

func TestSolverOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []busytime.Option
		want string
	}{
		{"unknown algorithm", []busytime.Option{busytime.WithAlgorithm("nope")}, "unknown algorithm"},
		{"empty algorithm", []busytime.Option{busytime.WithAlgorithm("")}, "empty name"},
		{"lookahead offline", []busytime.Option{busytime.WithLookahead(4)}, "online-"},
		{"lookahead zero", []busytime.Option{busytime.WithAlgorithm("online-firstfit"), busytime.WithLookahead(0)}, "want ≥ 1"},
		{"exact limit elsewhere", []busytime.Option{busytime.WithExactLimit(20)}, "exact"},
		{"length bound elsewhere", []busytime.Option{busytime.WithLengthBound(2)}, "boundedlength"},
		{"negative workers", []busytime.Option{busytime.WithWorkers(-1)}, "want ≥ 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := busytime.New(tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New(%s) error = %v, want containing %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	s, err := busytime.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), nil); err == nil {
		t.Error("nil instance accepted")
	}
	bad := &busytime.Instance{G: 0, Jobs: []busytime.Job{{ID: 0, Iv: busytime.Interval{Start: 0, End: 1}, Demand: 1}}}
	if _, err := s.Solve(context.Background(), bad); err == nil {
		t.Error("g=0 instance accepted")
	}
}

func TestParseIntervalAndBuildInstance(t *testing.T) {
	if _, err := busytime.ParseInterval(3, 1); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := busytime.ParseInterval(math.NaN(), 1); err == nil {
		t.Error("NaN start accepted")
	}
	iv, err := busytime.ParseInterval(1, 3)
	if err != nil || iv.Len() != 2 {
		t.Errorf("ParseInterval(1,3) = %v, %v", iv, err)
	}

	if _, err := busytime.BuildInstance(0, busytime.UnitJobs(iv)...); err == nil {
		t.Error("g=0 accepted")
	}
	if _, err := busytime.BuildInstance(2, busytime.Job{ID: 1, Iv: iv, Demand: 3}); err == nil {
		t.Error("demand > g accepted")
	}
	if _, err := busytime.BuildInstance(2,
		busytime.Job{ID: 1, Iv: iv, Demand: 1}, busytime.Job{ID: 1, Iv: iv, Demand: 1}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := busytime.BuildInstance(2, busytime.Job{ID: 0, Iv: busytime.Interval{Start: math.NaN(), End: 1}, Demand: 1}); err == nil {
		t.Error("NaN job interval accepted")
	}
	in, err := busytime.BuildInstance(2, busytime.UnitJobs(iv, busytime.Interval{Start: 2, End: 5})...)
	if err != nil || in.N() != 2 {
		t.Errorf("BuildInstance = %v, %v", in, err)
	}
}

func TestResultDetachSurvivesReuse(t *testing.T) {
	in := generator.General(5, 500, 4, 200, 20)
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	cost, machines := res.Cost, res.Machines
	if err := res.Detach(); err != nil {
		t.Fatal(err)
	}
	// Recycle the arena with a different instance; the detached schedule
	// must be unaffected.
	if _, err := s.Solve(context.Background(), generator.General(6, 700, 3, 300, 15)); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(); err != nil {
		t.Errorf("detached schedule no longer verifies: %v", err)
	}
	if !almostEq(res.Schedule.Cost(), cost) || res.Schedule.NumMachines() != machines {
		t.Errorf("detached schedule changed: %v/%d, want %v/%d",
			res.Schedule.Cost(), res.Schedule.NumMachines(), cost, machines)
	}
}

func TestFreshSchedulesSurviveWithoutDetach(t *testing.T) {
	in := generator.General(5, 300, 4, 150, 20)
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithFreshSchedules())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	cost := res1.Cost
	if _, err := s.Solve(context.Background(), generator.General(9, 400, 3, 200, 10)); err != nil {
		t.Fatal(err)
	}
	if res1.Schedule.Cost() != cost {
		t.Errorf("fresh-mode schedule was recycled: cost %v, want %v", res1.Schedule.Cost(), cost)
	}
	if res1.Arena.Warm || res1.Arena.SetupAllocs != 0 {
		t.Errorf("fresh mode reported arena stats: %+v", res1.Arena)
	}
}

// TestSolverLookaheadRecoversOffline checks the semi-online ladder: with a
// full lookahead buffer the online FirstFit policy processes jobs in the
// offline order and must equal the paper's FirstFit exactly.
func TestSolverLookaheadRecoversOffline(t *testing.T) {
	in := generator.General(21, 400, 3, 200, 25)
	offline, err := busytime.New(busytime.WithAlgorithm("firstfit"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := offline.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	full, err := busytime.New(
		busytime.WithAlgorithm("online-firstfit"),
		busytime.WithLookahead(in.N()),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := full.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Machines != want.Machines {
		t.Errorf("full lookahead %v/%d != offline FirstFit %v/%d",
			got.Cost, got.Machines, want.Cost, want.Machines)
	}
	// A small buffer must still produce a feasible (verified) schedule.
	small, err := busytime.New(
		busytime.WithAlgorithm("online-firstfit"),
		busytime.WithLookahead(4),
		busytime.WithVerify(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineSessionMatchesReplay pins the incremental OnlineSession to the
// registered online-* algorithms: feeding an instance's jobs in arrival
// order must reproduce the batch replay decision for decision.
func TestOnlineSessionMatchesReplay(t *testing.T) {
	for _, policy := range []string{"firstfit", "bestfit", "nextfit"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				in := generator.General(seed, 300, 3, 150, 20)
				replaySolver, err := busytime.New(busytime.WithAlgorithm("online-" + policy))
				if err != nil {
					t.Fatal(err)
				}
				want, err := replaySolver.Solve(context.Background(), in)
				if err != nil {
					t.Fatal(err)
				}

				s, err := busytime.New()
				if err != nil {
					t.Fatal(err)
				}
				sess, err := s.Online(in.G, policy)
				if err != nil {
					t.Fatal(err)
				}
				order := in.StartOrder()
				feedMachine := make([]int, len(order))
				for p, j := range order {
					m, err := sess.PlaceDemand(in.Jobs[j].Iv, in.Jobs[j].Demand)
					if err != nil {
						t.Fatalf("seed %d: Place job %d: %v", seed, j, err)
					}
					if m != sess.MachineOf(p) {
						t.Fatalf("MachineOf(%d) = %d, Place returned %d", p, sess.MachineOf(p), m)
					}
					feedMachine[p] = m
				}
				if !almostEq(sess.Cost(), want.Cost) || sess.Machines() != want.Machines {
					t.Fatalf("seed %d: session %v/%d != replay %v/%d",
						seed, sess.Cost(), sess.Machines(), want.Cost, want.Machines)
				}
				for p, j := range order {
					if feedMachine[p] != want.Schedule.MachineOf(int(j)) {
						t.Fatalf("seed %d: job %d on machine %d in session, %d in replay",
							seed, j, feedMachine[p], want.Schedule.MachineOf(int(j)))
					}
				}
				// Result materializes the session's retained window (the
				// rolling horizon), not the full history: its verified
				// schedule costs at most the complete replay, and the
				// session's incremental Cost still accounts the whole
				// stream (pinned above).
				res, err := sess.Result()
				if err != nil {
					t.Fatal(err)
				}
				if res.Cost > want.Cost+1e-9 {
					t.Errorf("session window Result cost %v exceeds full replay %v", res.Cost, want.Cost)
				}
				if res.Machines > want.Machines {
					t.Errorf("session window Result machines %d exceed full replay %d", res.Machines, want.Machines)
				}
			}
		})
	}
}

func TestOnlineSessionRejectsBadInput(t *testing.T) {
	s, err := busytime.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Online(2, "leastloaded"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := s.Online(0, "firstfit"); err == nil {
		t.Error("g=0 accepted")
	}
	sess, err := s.Online(2, "online-firstfit") // registered prefix accepted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Place(busytime.Interval{Start: 5, End: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Place(busytime.Interval{Start: 4, End: 10}); err == nil {
		t.Error("out-of-order arrival accepted")
	}
	if _, err := sess.Place(busytime.Interval{Start: 6, End: 5}); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := sess.PlaceDemand(busytime.Interval{Start: 6, End: 7}, 3); err == nil {
		t.Error("demand > g accepted")
	}
	if _, err := sess.PlaceDemand(busytime.Interval{Start: 6, End: 7}, 0); err == nil {
		t.Error("zero demand accepted")
	}
	if sess.Jobs() != 1 {
		t.Errorf("rejected placements changed the session: %d jobs", sess.Jobs())
	}
}

// TestSolverConcurrentUse exercises the arena pool under concurrent Solve
// traffic (run with -race): distinct arenas per in-flight call, correct
// results throughout.
func TestSolverConcurrentUse(t *testing.T) {
	in := generator.General(13, 1000, 4, 500, 20)
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			res, err := s.Solve(context.Background(), in)
			if err == nil && (res.Cost != want.Cost || res.Machines != want.Machines) {
				err = errors.New("concurrent solve diverged")
			}
			errs <- err
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestLegacyWrappersStillWork pins the deprecated free functions to the
// session path they now wrap.
func TestLegacyWrappersStillWork(t *testing.T) {
	in := tinyUniversal()
	s := busytime.FirstFit(in)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// The wrapper solvers run in fresh mode: consecutive calls must not
	// recycle each other's schedules.
	s2 := busytime.FirstFit(busytime.NewInstance(2, busytime.NewInterval(0, 1)))
	if err := s.Verify(); err != nil {
		t.Errorf("first schedule invalidated by second call: %v", err)
	}
	if s2.NumMachines() != 1 {
		t.Errorf("second schedule machines = %d", s2.NumMachines())
	}
}

// TestOnlineSessionRollingPublic drives the rolling-horizon surface through
// the public API: WithWindow pre-sizing, early Release, auto-expiry and the
// telemetry snapshot.
func TestOnlineSessionRollingPublic(t *testing.T) {
	s, err := busytime.New(busytime.WithWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.Online(2, "firstfit")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Place(busytime.NewInterval(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Place(busytime.NewInterval(1, 10)); err != nil {
		t.Fatal(err)
	}
	if sess.Live() != 2 {
		t.Fatalf("live = %d, want 2", sess.Live())
	}
	// Release job 0 at clock 1: its span is clipped, and once the clock
	// moves strictly past, its slot frees up.
	if ok, err := sess.Release(0); !ok || err != nil {
		t.Fatalf("Release(0) = %v, %v", ok, err)
	}
	if ok, err := sess.Release(0); ok || err != nil {
		t.Fatalf("double Release(0) = %v, %v, want false, nil", ok, err)
	}
	if _, err := sess.Release(7); err == nil {
		t.Fatal("Release of a never-placed job accepted")
	}
	if _, err := sess.Place(busytime.NewInterval(2, 10)); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Placed != 3 || st.Released != 1 || st.Live != 2 {
		t.Fatalf("stats = %+v, want placed 3, released 1, live 2", st)
	}
	if st.Machines != 1 {
		t.Fatalf("machines = %d, want 1 (released slot reused)", st.Machines)
	}
	if st.LowerBound <= 0 || st.Cost < st.LowerBound-1e-9 || st.Ratio < 1-1e-9 {
		t.Fatalf("bound telemetry inconsistent: %+v", st)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Cost, sess.Cost()) {
		t.Fatalf("window result cost %v != session cost %v", res.Cost, sess.Cost())
	}
}

// TestOnlinePoolPublic drives the multi-tenant pool surface: per-tenant
// isolation, release handles, stats, the offline comparison and Drop.
func TestOnlinePoolPublic(t *testing.T) {
	s, err := busytime.New(busytime.WithWindow(32), busytime.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := s.OnlinePool(2, "bestfit")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		iv := busytime.NewInterval(float64(i), float64(i)+4)
		if _, _, err := pool.Place("a", iv); err != nil {
			t.Fatal(err)
		}
		if _, _, err := pool.PlaceDemand("b", iv, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, job, err := pool.Place("a", busytime.NewInterval(8, 12)); err != nil {
		t.Fatal(err)
	} else if ok, err := pool.Release("a", job); !ok || err != nil {
		t.Fatalf("Release = %v, %v", ok, err)
	}
	if ok, err := pool.Release("ghost", 0); ok || err != nil {
		t.Fatalf("Release on unknown tenant = %v, %v", ok, err)
	}
	sta, ok := pool.Stats("a")
	if !ok || sta.Placed != 9 || sta.Released != 1 {
		t.Fatalf("tenant a stats = %+v, %v", sta, ok)
	}
	if got := len(pool.Tenants()); got != 2 {
		t.Fatalf("%d tenants, want 2", got)
	}
	cmp, err := pool.Offline("b")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.WindowCost < cmp.Bounds.Fractional-1e-9 || cmp.OnlineCost < cmp.WindowCost-1e-9 {
		t.Fatalf("comparison inconsistent: %+v", cmp)
	}
	if cmp.Ratio < 1-1e-9 {
		t.Fatalf("ratio %v < 1", cmp.Ratio)
	}
	if !pool.Drop("a") || pool.Drop("a") {
		t.Fatal("Drop: want true then false")
	}

	// Fresh-schedule solvers have no shared arenas: Offline must refuse.
	fresh, err := busytime.New(busytime.WithFreshSchedules())
	if err != nil {
		t.Fatal(err)
	}
	fpool, err := fresh.OnlinePool(2, "firstfit")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fpool.Place("x", busytime.NewInterval(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fpool.Offline("x"); err == nil {
		t.Fatal("Offline on a fresh-schedule solver accepted")
	}

	// The lookahead rejection applies to pools like it does to sessions.
	la, err := busytime.New(busytime.WithAlgorithm("online-firstfit"), busytime.WithLookahead(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := la.OnlinePool(2, "firstfit"); err == nil {
		t.Fatal("lookahead pool accepted")
	}
}

func TestResultCrossCheck(t *testing.T) {
	in := generator.General(9, 400, 3, 180, 25)
	s, err := busytime.New(busytime.WithAlgorithm("bestfit"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CrossCheck(1e-9); err != nil {
		t.Errorf("CrossCheck rejects a verified solve: %v", err)
	}
	var empty busytime.Result
	if err := empty.CrossCheck(1e-9); err == nil {
		t.Error("CrossCheck accepted a Result without a schedule")
	}
}
