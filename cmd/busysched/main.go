// Command busysched is the command-line front end of the busy-time
// scheduling library; all logic lives in internal/cli. Run
// `busysched help` for the subcommand list.
package main

import (
	"os"

	"busytime/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}
