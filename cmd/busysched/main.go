// Command busysched is the command-line front end of the busy-time
// scheduling library; all logic lives in internal/cli, which drives the
// public busytime Solver API. SIGINT/SIGTERM cancel the run's context, so
// an interrupted batch or exact solve stops cooperatively (mid-search for
// the branch-and-bound) instead of being killed mid-write. Run
// `busysched help` for the subcommand list.
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"busytime/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.RunContext(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
