// Command busyschedd is the busy-time scheduling daemon: an HTTP/JSON
// control plane (one-shot solves, tenant lifecycle, telemetry) and a
// framed binary TCP data plane (streaming Place/Release against
// per-tenant rolling-horizon sessions). All logic lives in
// internal/server; this is flag parsing and lifecycle glue.
//
// The daemon announces its resolved listen addresses on stdout (useful
// with ":0" ports), serves until SIGINT/SIGTERM, then drains gracefully —
// in-flight frames complete, new placements get typed shutdown rejects —
// and flushes a final telemetry document (the same JSON GET /stats
// serves, latency percentiles included) to stderr before exiting 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"busytime"
	"busytime/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("busyschedd", flag.ExitOnError)
	var (
		control    = fs.String("control", "127.0.0.1:8480", "control plane (HTTP) listen address; empty disables")
		data       = fs.String("data", "127.0.0.1:8481", "data plane (framed TCP) listen address; empty disables")
		algorithm  = fs.String("algo", "firstfit", "control-plane solve algorithm")
		policy     = fs.String("policy", "firstfit", "data-plane arrival policy (firstfit, bestfit, nextfit)")
		g          = fs.Int("g", 4, "machine parallelism g")
		window     = fs.Int("window", 0, "per-tenant live-window presize hint")
		workers    = fs.Int("workers", 0, "solver workers and pool shards (0 = GOMAXPROCS)")
		maxLive    = fs.Int("max-live", 0, "per-tenant live-job cap (0 = unlimited)")
		rate       = fs.Float64("rate", 0, "per-tenant placement rate limit per second (0 = unlimited)")
		burst      = fs.Int("burst", 0, "rate-limit burst (0 derives from -rate)")
		maxBatch   = fs.Int("max-batch", 64, "max frames per connection batch")
		drainGrace = fs.Duration("drain-grace", 250*time.Millisecond, "drain window for open connections on shutdown")
	)
	fs.Parse(args)

	logger := log.New(os.Stdout, "", log.LstdFlags)
	srv, err := server.New(server.Config{
		ControlAddr: *control,
		DataAddr:    *data,
		Algorithm:   *algorithm,
		Policy:      *policy,
		G:           *g,
		Window:      *window,
		Workers:     *workers,
		Admission:   busytime.Admission{MaxLive: *maxLive, Rate: *rate, Burst: *burst},
		MaxBatch:    *maxBatch,
		DrainGrace:  *drainGrace,
		Logf:        logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "busyschedd: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "busyschedd: shutdown: %v\n", err)
		return 1
	}
	logger.Printf("busyschedd: drained, flushing stats")
	if err := srv.WriteStats(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "busyschedd: flushing stats: %v\n", err)
		return 1
	}
	return 0
}
