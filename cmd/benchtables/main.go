// Command benchtables regenerates every quantitative artifact of the paper
// (see DESIGN.md §4): it runs experiments E1–E10 and prints one table per
// experiment. Flags scale the number of trials and instance sizes.
//
//	benchtables               # full run
//	benchtables -only E2,E9   # selected experiments
//	benchtables -trials 10    # quicker
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"busytime/internal/experiments"
)

func main() {
	trials := flag.Int("trials", 40, "random trials per table row")
	seed := flag.Int64("seed", 1, "base random seed")
	largeN := flag.Int("large", 2000, "job count of the large-instance rows")
	only := flag.String("only", "", "comma-separated experiment IDs (default all)")
	ablations := flag.Bool("ablations", true, "also run design-choice ablations A1–A3")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, LargeN: *largeN}
	failed := false
	list := experiments.All()
	if *ablations {
		list = append(list, experiments.Ablations()...)
	}
	for _, e := range list {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Printf("%s — %s\n", e.ID, e.Name)
		fmt.Print(res.Table.String())
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
