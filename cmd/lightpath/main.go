// Command lightpath demonstrates the §4 optical application: it generates
// (or loads nothing — traffic is synthetic) lightpath traffic on a path
// network, colors it through the busy-time scheduling reduction, and reports
// wavelengths, regenerators, ADMs and the combined cost for a sweep of the
// cost weight α.
//
//	lightpath -nodes 40 -paths 120 -g 4 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"busytime"
	"busytime/internal/optical"
	"busytime/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 40, "path network size")
	paths := flag.Int("paths", 120, "number of lightpaths")
	g := flag.Int("g", 4, "grooming factor")
	maxHops := flag.Int("maxhops", 16, "maximum lightpath length in edges")
	seed := flag.Int64("seed", 1, "traffic seed")
	breakdown := flag.Bool("breakdown", false, "print per-wavelength breakdown")
	ring := flag.Bool("ring", false, "use a ring topology (cut reduction) instead of a path")
	flag.Parse()

	if *ring {
		runRing(*seed, *nodes, *paths, *maxHops, *g)
		return
	}

	net := optical.RandomTraffic(*seed, *nodes, *paths, *maxHops, *g)
	if err := net.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "lightpath: %v\n", err)
		os.Exit(1)
	}
	in := net.ToInstance()
	fmt.Printf("network: %d nodes, %d lightpaths, grooming g=%d\n", *nodes, *paths, *g)
	fmt.Printf("reduction: %d jobs, fractional LB %.2f\n\n", in.N(), busytime.LowerBound(in))

	// The schedulers run through the public Solver API (the coloring keeps
	// the schedule, so sessions hand out caller-owned fresh memory).
	algs := []struct {
		label string
		algo  string
	}{
		{"firstfit (paper §2)", "firstfit"},
		{"machine-min (§1.1)", "machine-min"},
		{"nextfit", "nextfit"},
	}
	tb := stats.NewTable("coloring comparison",
		"algorithm", "wavelengths", "regenerators", "ADMs", "α=0", "α=0.5", "α=1")
	var best *optical.Coloring
	for _, a := range algs {
		solver, err := busytime.New(
			busytime.WithAlgorithm(a.algo),
			busytime.WithVerify(true),
			busytime.WithFreshSchedules(),
		)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: %s: %v\n", a.label, err)
			os.Exit(1)
		}
		res, err := solver.Solve(context.Background(), in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: %s: %v\n", a.label, err)
			os.Exit(1)
		}
		col, err := optical.FromSchedule(net, res.Schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: %s: %v\n", a.label, err)
			os.Exit(1)
		}
		if err := col.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: %s produced invalid coloring: %v\n", a.label, err)
			os.Exit(1)
		}
		tb.AddRow(a.label, col.Wavelengths(), col.Regenerators(), col.ADMs(),
			col.Cost(0), col.Cost(0.5), col.Cost(1))
		if best == nil || col.Regenerators() < best.Regenerators() {
			best = col
		}
	}
	fmt.Print(tb.String())

	if *breakdown && best != nil {
		fmt.Println()
		bd := stats.NewTable("per-wavelength breakdown (best coloring)",
			"wavelength", "lightpaths", "regenerators")
		for _, w := range best.Breakdown() {
			bd.AddRow(w.Wavelength, w.Lightpaths, w.Regenerators)
		}
		fmt.Print(bd.String())
	}
}

// runRing demonstrates the ring-topology extension: arcs are colored via
// the cut reduction (crossing arcs become bonded interval pieces plus a
// cut-edge budget) and the result is compared across every possible cut.
func runRing(seed int64, nodes, paths, maxHops, g int) {
	net := optical.RandomRingTraffic(seed, nodes, paths, maxHops, g)
	if err := net.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "lightpath: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ring network: %d nodes, %d arcs, grooming g=%d\n", nodes, paths, g)
	best := net.BestCut()
	fmt.Printf("least-loaded cut edge: %d\n\n", best)

	tb := stats.NewTable("cut comparison (every edge)",
		"cut", "wavelengths", "regenerators")
	bestRegen, bestCutSeen := -1, -1
	for cut := 0; cut < nodes; cut++ {
		col, err := net.ColorRing(cut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: cut %d: %v\n", cut, err)
			os.Exit(1)
		}
		if err := col.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "lightpath: cut %d invalid: %v\n", cut, err)
			os.Exit(1)
		}
		regen := col.Regenerators()
		if bestRegen < 0 || regen < bestRegen {
			bestRegen, bestCutSeen = regen, cut
		}
		if cut == best || cut < 4 { // keep the table short
			tb.AddRow(cut, col.Wavelengths(), regen)
		}
	}
	fmt.Print(tb.String())
	fmt.Printf("\nbest observed cut: %d (%d regenerators)\n", bestCutSeen, bestRegen)
}
