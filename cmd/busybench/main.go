// Command busybench is the load generator for busyschedd's data plane: K
// connections, each owning a disjoint set of tenants, stream synthetic
// rolling-horizon arrivals (internal/generator.Stream) as pipelined place
// batches and record client-observed round-trip latency percentiles plus
// typed-reject counts. Each batch goes entirely to one tenant — the shape
// the server turns into a single shard-lock acquisition — and tenants
// rotate batch to batch so the pool's sharding is exercised.
//
// Output is a human summary, or with -json a machine document (the
// library's shared encoder) that BENCH_9.json and the e2e test consume.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"busytime/internal/generator"
	"busytime/internal/server"
	"busytime/internal/stats"
)

type benchOutput struct {
	Placements uint64  `json:"placements"` // accepted
	DurationS  float64 `json:"duration_sec"`
	PerSec     float64 `json:"placements_per_sec"`

	Conns   int `json:"conns"`
	Tenants int `json:"tenants"`
	Batch   int `json:"batch"`
	Live    int `json:"live"`

	Rejects map[string]uint64 `json:"rejects"` // by typed reject code name

	RTT stats.HistSummary `json:"rtt"` // per-placement, batch round-trip attributed
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("busybench", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8481", "busyschedd data plane address")
		conns     = fs.Int("conns", 4, "concurrent connections")
		tenants   = fs.Int("tenants", 8, "distinct tenants (spread over connections)")
		n         = fs.Int("n", 1_000_000, "total placements to send")
		live      = fs.Int("live", 256, "target simultaneously-live jobs per tenant stream")
		maxDemand = fs.Int("max-demand", 1, "max per-job demand (uniform in [1, max])")
		batch     = fs.Int("batch", 16, "place frames pipelined per batch")
		seed      = fs.Int64("seed", 1, "stream seed (per-connection offsets applied)")
		jsonOut   = fs.Bool("json", false, "emit the machine-readable JSON document")
	)
	fs.Parse(args)
	if *conns < 1 || *tenants < 1 || *batch < 1 || *n < *conns {
		fmt.Fprintln(os.Stderr, "busybench: need conns ≥ 1, tenants ≥ 1, batch ≥ 1, n ≥ conns")
		return 2
	}

	var (
		hist     stats.Hist
		accepted atomic.Uint64
		rejects  [5]atomic.Uint64 // indexed by reject code; 0 unused
		wg       sync.WaitGroup
		errCh    = make(chan error, *conns)
	)
	t0 := time.Now()
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := runConn(c, *addr, *conns, *tenants, *n / *conns, *live, *maxDemand, *batch, *seed, &hist, &accepted, &rejects); err != nil {
				errCh <- fmt.Errorf("conn %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	dur := time.Since(t0)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "busybench: %v\n", err)
		return 1
	default:
	}

	out := benchOutput{
		Placements: accepted.Load(),
		DurationS:  dur.Seconds(),
		PerSec:     float64(accepted.Load()) / dur.Seconds(),
		Conns:      *conns,
		Tenants:    *tenants,
		Batch:      *batch,
		Live:       *live,
		Rejects:    map[string]uint64{},
		RTT:        hist.Summary(),
	}
	for code := byte(1); code <= 4; code++ {
		if v := rejects[code].Load(); v > 0 {
			out.Rejects[server.RejectString(code)] = v
		}
	}
	if *jsonOut {
		if err := stats.WriteJSON(os.Stdout, out); err != nil {
			fmt.Fprintf(os.Stderr, "busybench: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Printf("busybench: %d placements in %.2fs = %.0f/s (conns=%d tenants=%d batch=%d)\n",
		out.Placements, out.DurationS, out.PerSec, out.Conns, out.Tenants, out.Batch)
	fmt.Printf("  rtt p50=%v p95=%v p99=%v p999=%v max=%v\n",
		out.RTT.P50, out.RTT.P95, out.RTT.P99, out.RTT.P999, out.RTT.Max)
	for name, v := range out.Rejects {
		fmt.Printf("  rejected %s: %d\n", name, v)
	}
	return 0
}

// runConn drives one connection: open this connection's tenant handles,
// then stream its share of the arrivals as pipelined batches, one tenant
// per batch, rotating tenants.
func runConn(c int, addr string, conns, tenants, n, live, maxDemand, batch int, seed int64,
	hist *stats.Hist, accepted *atomic.Uint64, rejects *[5]atomic.Uint64) error {
	cl, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	// Tenant i is owned by connection i%conns, so per-tenant arrival order
	// (non-decreasing starts) is preserved: a tenant's stream is a
	// subsequence of one connection's globally ordered stream.
	var handles []uint32
	for i := c; i < tenants; i += conns {
		h, err := cl.Open(fmt.Sprintf("tenant-%d", i))
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}
	if len(handles) == 0 { // more connections than tenants: share by index
		h, err := cl.Open(fmt.Sprintf("tenant-extra-%d", c))
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}

	jobs := generator.Stream(seed+int64(c)*7919, n, live, maxDemand)
	turn := 0
	for done := 0; done < len(jobs); {
		m := batch
		if len(jobs)-done < m {
			m = len(jobs) - done
		}
		h := handles[turn%len(handles)]
		turn++
		tb := time.Now()
		for k := 0; k < m; k++ {
			j := jobs[done+k]
			if err := cl.SendPlace(h, j.Iv.Start, j.Iv.End, j.Demand); err != nil {
				return err
			}
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		var acc uint64
		for k := 0; k < m; k++ {
			r, err := cl.ReadReply()
			if err != nil {
				return err
			}
			switch {
			case r.IsPlaced():
				acc++
			case r.IsReject() && r.Code >= 1 && r.Code <= 4:
				rejects[r.Code].Add(1)
			default:
				return fmt.Errorf("reply op 0x%02x (%s)", r.Op, r.Payload)
			}
		}
		accepted.Add(acc)
		d := time.Since(tb)
		for k := 0; k < m; k++ {
			hist.Observe(d)
		}
		done += m
	}
	return nil
}
