package busytime_test

// Rolling-horizon stream gates, run by CI with BUSYTIME_STREAM_GATE=1 and
// skipped everywhere else: wall-clock throughput ratios flake on loaded
// machines, and the structural properties they guard (zero-alloc steady
// state, window-bounded memory, oracle parity) are already pinned
// unconditionally by internal/online's test suite.

import (
	"os"
	"testing"
	"time"

	"busytime"
	"busytime/internal/generator"
	"busytime/internal/xrand"
)

// streamDriver feeds a pre-generated arrival stream through a public
// session, releasing roughly one in eight jobs early. When the stream
// wraps it shifts the clock past the last start, so arrival order stays
// legal at any op count.
type streamDriver struct {
	sess  *busytime.OnlineSession
	jobs  []generator.StreamJob
	rng   *xrand.RNG
	live  int
	idx   int
	shift float64
}

func newStreamDriver(sess *busytime.OnlineSession, jobs []generator.StreamJob, seed int64, live int) *streamDriver {
	return &streamDriver{sess: sess, jobs: jobs, rng: xrand.New(seed), live: live}
}

func (d *streamDriver) step() error {
	j := d.jobs[d.idx]
	iv := busytime.Interval{Start: j.Iv.Start + d.shift, End: j.Iv.End + d.shift}
	if _, err := d.sess.PlaceDemand(iv, j.Demand); err != nil {
		return err
	}
	if d.rng.Uint64()&7 == 0 {
		target := d.sess.Jobs() - 1 - d.rng.Intn(d.live)
		if target < 0 {
			target = 0
		}
		// Already-departed targets report (false, nil); only real
		// bookkeeping errors surface.
		if _, err := d.sess.Release(target); err != nil {
			return err
		}
	}
	d.idx++
	if d.idx == len(d.jobs) {
		d.idx = 0
		d.shift += d.jobs[len(d.jobs)-1].Iv.Start + 1
	}
	return nil
}

// TestStreamThroughputNoDecay is the rolling-horizon throughput gate: over a
// one-million-job stream with ~1000 live jobs, the last 10% of arrivals must
// place at ≥ 0.9× the rate of the first 10%. If window compaction or the
// departure heap leaked work proportional to stream history — the O(total)
// behaviour the rolling horizon exists to remove — the tail rate would decay
// well below that line.
func TestStreamThroughputNoDecay(t *testing.T) {
	if os.Getenv("BUSYTIME_STREAM_GATE") == "" {
		t.Skip("set BUSYTIME_STREAM_GATE=1 (CI stream gate) to run wall-clock gates")
	}
	const n, live = 1_000_000, 1000
	s, err := busytime.New(busytime.WithWindow(live))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.Online(8, "firstfit")
	if err != nil {
		t.Fatal(err)
	}
	d := newStreamDriver(sess, generator.Stream(3, n, live, 4), 99, live)
	segment := func(ops int) float64 {
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if err := d.step(); err != nil {
				t.Fatal(err)
			}
		}
		return float64(ops) / time.Since(t0).Seconds()
	}
	const tenth = n / 10
	first := segment(tenth)
	for seg := 1; seg < 9; seg++ {
		segment(tenth)
	}
	last := segment(tenth)
	t.Logf("first 10%%: %.0f jobs/s, last 10%%: %.0f jobs/s (%.2fx)", first, last, last/first)
	if last < 0.9*first {
		t.Fatalf("throughput decayed: last 10%% ran at %.0f jobs/s vs %.0f in the first 10%% (%.2fx < 0.9x)",
			last, first, last/first)
	}
	st := sess.Stats()
	if st.Placed != n {
		t.Fatalf("placed %d, want %d", st.Placed, n)
	}
	if st.Compactions == 0 {
		t.Fatal("window never compacted over a 1e6-job stream")
	}
	if st.WindowCap > 32*live {
		t.Fatalf("window capacity %d not bounded by the live population (%d live target)", st.WindowCap, live)
	}
	if st.Ratio != 0 && st.Ratio < 1-1e-9 {
		t.Fatalf("competitive ratio %v < 1", st.Ratio)
	}
}
