#!/bin/sh
# Golden check of the public busytime API surface.
#
# The committed ci/api-surface.txt is the symbol listing of `go doc -all .`
# (exported funcs, types, consts, vars and methods, one line each). Any
# change to the public surface — additions included — must be deliberate:
# regenerate with `ci/check-api-surface.sh -u`, review the diff, and commit
# it alongside the change. CI fails on undocumented drift.
set -eu
cd "$(dirname "$0")/.."
golden=ci/api-surface.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT
go doc -all . | grep -E '^(func|type|const|var)' > "$current"
if [ "${1:-}" = "-u" ]; then
    cp "$current" "$golden"
    echo "updated $golden"
    exit 0
fi
if ! diff -u "$golden" "$current"; then
    echo >&2
    echo "public API surface drifted from $golden." >&2
    echo "If the change is intentional, run ci/check-api-surface.sh -u and commit the result." >&2
    exit 1
fi
echo "public API surface matches $golden"
