package busytime

import (
	"fmt"
	"math"
	"time"

	"busytime/internal/core"
	"busytime/internal/decomp"
	"busytime/internal/sim"
)

// ArenaStats reports the scratch-arena traffic of one Solve: whether the
// call was served by a warm arena (one that had already scheduled an
// instance) and how many backing-array allocations the arena performed. A
// warm Solver re-solving a seen instance shape performs none — the public
// warm path is the same zero-steady-state-allocation path the internal
// batch engine's workers run.
type ArenaStats struct {
	Warm        bool
	SetupAllocs int
}

// ComponentStat describes one connected component of a decomposed solve.
type ComponentStat struct {
	// Jobs is the component's job count.
	Jobs int
	// Solve is the component's solve wall time; zero when this component was
	// never solved individually (the layer declined before solving).
	Solve time.Duration
}

// DecompStats reports what the component-decomposition layer did during one
// Solve (see WithIntraWorkers). The zero value means the layer was never
// consulted — it is off, or the algorithm does not decompose. Components
// alone set (Workers == 0) means the layer swept the instance but declined —
// a single component, or no arena was idle — and the ordinary sequential path
// produced the schedule; by the layer's merge-identity guarantee the schedule
// is the same either way.
type DecompStats struct {
	// Components is the number of connected components of the instance's
	// interval graph (strictly time-disjoint job groups).
	Components int
	// Workers is how many workers solved components concurrently: this
	// Solve's own arena plus the spare ones borrowed from the pool.
	Workers int
	// LargestComponent is the job count of the largest component — the lower
	// bound on the critical path of the parallel solve.
	LargestComponent int
	// Shards is the time-shard count when this Solve took the opt-in
	// time-sharding path (WithTimeSharding), 0 otherwise; CrossingJobs is
	// the number of jobs that crossed a shard cut and were placed by the
	// sequential reconciliation pass.
	Shards, CrossingJobs int
	// SweepTime, SolveTime and MergeTime are the wall times of the three
	// phases: component labeling (plus shard-cut selection when sharding),
	// the concurrent per-component or per-shard solves as a whole, and the
	// ordered reassembly. ReconcileTime is the sequential crossing-job
	// placement pass between solve and merge (0 unless Shards > 0).
	SweepTime, SolveTime, MergeTime, ReconcileTime time.Duration
	// PerComponent lists the components (or, when Shards > 0, the shards)
	// in start order. The slice rides the session's recycled solver state:
	// it is valid until a later Solve on this Solver reuses the same
	// internal runner — the same window as an arena-mode Schedule. Callers
	// that retain it must copy.
	PerComponent []ComponentStat
}

// Decomposed reports whether the schedule was actually produced by the
// decompose–solve–merge path (component-parallel or time-sharded).
func (d DecompStats) Decomposed() bool { return d.Workers > 0 }

// Sharded reports whether the schedule was produced by the opt-in
// time-sharding path; such a schedule is feasible but not bitwise-identical
// to the sequential run (see WithTimeSharding).
func (d DecompStats) Sharded() bool { return d.Shards > 0 }

// newDecompStatsInto converts the layer's runner-owned telemetry into the
// public form, drawing the PerComponent backing array from slot — a
// per-runner stash that rides the pooled runner between leases — so warm
// Solves stop allocating stats. The caller must finish with the returned
// value's PerComponent before the same runner serves another Solve.
func newDecompStatsInto(st decomp.Stats, slot *any) DecompStats {
	d := DecompStats{
		Components:       st.Components,
		Workers:          st.Workers,
		LargestComponent: st.Largest,
		Shards:           st.Shards,
		CrossingJobs:     st.Crossing,
		SweepTime:        st.Sweep,
		SolveTime:        st.Solve,
		MergeTime:        st.Merge,
		ReconcileTime:    st.Reconcile,
	}
	if len(st.Sizes) > 0 {
		buf, _ := (*slot).([]ComponentStat)
		if cap(buf) < len(st.Sizes) {
			buf = make([]ComponentStat, len(st.Sizes))
			*slot = buf
		}
		buf = buf[:len(st.Sizes)]
		for i, sz := range st.Sizes {
			buf[i].Jobs = int(sz)
			buf[i].Solve = 0
			if i < len(st.Times) {
				buf[i].Solve = st.Times[i]
			}
		}
		d.PerComponent = buf
	}
	return d
}

// Result is the outcome of one Solve: the schedule plus the metrics every
// caller of a scheduling library ends up recomputing — cost, every lower
// bound, the optimality gap against the strongest bound, and arena reuse
// stats.
type Result struct {
	// Algorithm is the registered name that produced the schedule.
	Algorithm string
	// Schedule is the produced assignment. In the default arena mode it
	// lives in the Solver's recycled memory and is valid until a later
	// Solve leases the same arena — extract what you need immediately,
	// Detach it, or build the Solver with WithFreshSchedules.
	Schedule *Schedule
	// Machines is the number of machines opened.
	Machines int
	// Cost is the schedule's total busy time.
	Cost float64
	// Bounds carries every lower bound on OPT: span and parallelism
	// (Observation 1.1) and the dominating fractional bound ∫⌈D_t/g⌉dt.
	Bounds Bounds
	// Arena reports scratch reuse for this call; zero in fresh mode.
	Arena ArenaStats
	// Decomp reports the component-decomposition layer's work for this call;
	// zero unless the session enables WithIntraWorkers.
	Decomp DecompStats
}

// LowerBound returns the strongest lower bound on OPT (the fractional
// bound).
func (r Result) LowerBound() float64 { return r.Bounds.Fractional }

// Gap returns the absolute optimality gap Cost − LowerBound: the busy time
// that is provably not forced by the instance. The true gap to OPT is at
// most this.
func (r Result) Gap() float64 { return r.Cost - r.LowerBound() }

// Ratio returns Cost / LowerBound, the empirical approximation ratio
// witnessed against the strongest bound (0 when the bound is 0). Since the
// bound is below OPT, the true ratio Cost/OPT is at most this.
func (r Result) Ratio() float64 {
	if lb := r.LowerBound(); lb > 0 {
		return r.Cost / lb
	}
	return 0
}

// CrossCheck replays the schedule through the library's discrete-event
// simulator and returns an error unless the busy time a machine executing it
// would bill agrees with the analytic Cost and no capacity is ever exceeded.
// The tolerance is relative: the two totals must agree within
// tol·max(1, |Cost|), so the same tol is meaningful for ten jobs or a
// million (float summation orders differ between the two accountings).
//
// It reads the schedule, so in arena mode it is subject to the usual
// lifetime window: call it before the next Solve on the same Solver.
func (r Result) CrossCheck(tol float64) error {
	if r.Schedule == nil {
		return fmt.Errorf("busytime: CrossCheck on a Result without a schedule")
	}
	rep, err := sim.Replay(r.Schedule)
	if err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		v := rep.Violations[0]
		return fmt.Errorf("busytime: machine %d holds load %d > g at t=%v (%d violations)",
			v.Machine, v.Load, v.T, len(rep.Violations))
	}
	if d := math.Abs(rep.TotalBusy - r.Cost); d > tol*math.Max(1, math.Abs(r.Cost)) {
		return fmt.Errorf("busytime: simulated busy time %v != analytic cost %v (Δ=%v)",
			rep.TotalBusy, r.Cost, d)
	}
	return nil
}

// Detach moves the Result's schedule out of the Solver's recycled arena
// into caller-owned memory, after which it stays valid indefinitely. It is
// a no-op on fresh-mode results beyond one copy.
//
// Detach reads the arena-backed schedule, so it is subject to the same
// lifetime window as any other Schedule access: call it before the arena
// is reused — that is, before the next Solve on this Solver from any
// goroutine. Pipelines that retain schedules while solving concurrently
// should build the Solver with WithFreshSchedules instead.
func (r *Result) Detach() error {
	if r.Schedule == nil {
		return nil
	}
	sched, err := core.FromAssignment(r.Schedule.Instance(), r.Schedule.Assignment())
	if err != nil {
		return err
	}
	r.Schedule = sched
	return nil
}
