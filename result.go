package busytime

import "busytime/internal/core"

// ArenaStats reports the scratch-arena traffic of one Solve: whether the
// call was served by a warm arena (one that had already scheduled an
// instance) and how many backing-array allocations the arena performed. A
// warm Solver re-solving a seen instance shape performs none — the public
// warm path is the same zero-steady-state-allocation path the internal
// batch engine's workers run.
type ArenaStats struct {
	Warm        bool
	SetupAllocs int
}

// Result is the outcome of one Solve: the schedule plus the metrics every
// caller of a scheduling library ends up recomputing — cost, every lower
// bound, the optimality gap against the strongest bound, and arena reuse
// stats.
type Result struct {
	// Algorithm is the registered name that produced the schedule.
	Algorithm string
	// Schedule is the produced assignment. In the default arena mode it
	// lives in the Solver's recycled memory and is valid until a later
	// Solve leases the same arena — extract what you need immediately,
	// Detach it, or build the Solver with WithFreshSchedules.
	Schedule *Schedule
	// Machines is the number of machines opened.
	Machines int
	// Cost is the schedule's total busy time.
	Cost float64
	// Bounds carries every lower bound on OPT: span and parallelism
	// (Observation 1.1) and the dominating fractional bound ∫⌈D_t/g⌉dt.
	Bounds Bounds
	// Arena reports scratch reuse for this call; zero in fresh mode.
	Arena ArenaStats
}

// LowerBound returns the strongest lower bound on OPT (the fractional
// bound).
func (r Result) LowerBound() float64 { return r.Bounds.Fractional }

// Gap returns the absolute optimality gap Cost − LowerBound: the busy time
// that is provably not forced by the instance. The true gap to OPT is at
// most this.
func (r Result) Gap() float64 { return r.Cost - r.LowerBound() }

// Ratio returns Cost / LowerBound, the empirical approximation ratio
// witnessed against the strongest bound (0 when the bound is 0). Since the
// bound is below OPT, the true ratio Cost/OPT is at most this.
func (r Result) Ratio() float64 {
	if lb := r.LowerBound(); lb > 0 {
		return r.Cost / lb
	}
	return 0
}

// Detach moves the Result's schedule out of the Solver's recycled arena
// into caller-owned memory, after which it stays valid indefinitely. It is
// a no-op on fresh-mode results beyond one copy.
//
// Detach reads the arena-backed schedule, so it is subject to the same
// lifetime window as any other Schedule access: call it before the arena
// is reused — that is, before the next Solve on this Solver from any
// goroutine. Pipelines that retain schedules while solving concurrently
// should build the Solver with WithFreshSchedules instead.
func (r *Result) Detach() error {
	if r.Schedule == nil {
		return nil
	}
	sched, err := core.FromAssignment(r.Schedule.Instance(), r.Schedule.Assignment())
	if err != nil {
		return err
	}
	r.Schedule = sched
	return nil
}
