package busytime

import (
	"fmt"
	"runtime"
	"strings"

	"busytime/internal/algo"
)

// Option configures a Solver under construction; see New. Options validate
// eagerly where they can and defer cross-option checks (a lookahead without
// an online algorithm, a length bound on a non-segmenting algorithm) to New,
// which reports the first configuration error.
type Option func(*config)

// config is the resolved Solver configuration.
type config struct {
	algorithm  string
	verify     bool
	workers    int
	intra      int // 0 off (default), -1 auto, n ≥ 1 explicit cap
	shards     int // 0 off (default), -1 auto, n ≥ 2 explicit shard count
	lookahead  int
	exactLimit int
	lengthD    float64
	window     int
	admission  Admission
	fresh      bool
	err        error
}

func (c *config) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("busytime: "+format, args...)
	}
}

// WithAlgorithm selects the scheduling algorithm by its registered name
// ("firstfit", "bestfit", "properfit", "boundedlength", "clique", "laminar",
// "exact", "portfolio", "online-firstfit", …); Algorithms lists every name.
// The default is "firstfit", the paper's 4-approximation.
func WithAlgorithm(name string) Option {
	return func(c *config) {
		if name == "" {
			c.fail("WithAlgorithm: empty name")
			return
		}
		c.algorithm = name
	}
}

// WithVerify controls whether every schedule's feasibility (capacity at
// every instant, totality) is re-checked before a Result is returned;
// verification failures surface as errors. Off by default: every shipped
// algorithm is differential- and fuzz-tested to produce feasible schedules.
func WithVerify(verify bool) Option {
	return func(c *config) { c.verify = verify }
}

// WithWorkers sets the solver's parallelism: the fan-out width of SolveBatch
// and SolveStream, and equally the number of recycled arenas — the count of
// Solve calls that can run concurrently without contending for scratch
// state. 0 (the default) means GOMAXPROCS. Results never depend on it.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithWorkers: %d workers, want ≥ 0", n)
			return
		}
		c.workers = n
	}
}

// WithIntraWorkers enables intra-instance parallelism: when the session's
// algorithm declares itself decomposable, each Solve (and each batch worker)
// splits its instance into the connected components of the interval graph and
// solves them on up to n workers — its own plus spare arenas borrowed, only
// while they are idle, from the same WithWorkers pool, so batch fan-out and
// component fan-out share one core budget instead of multiplying.
//
// n = 0 means automatic (the full WithWorkers budget); n = 1 disables the
// layer (the default); n ≥ 2 caps the per-instance fan-out. The produced
// schedules are bitwise-identical at every setting — decomposition is a
// latency knob, not an algorithm change — so the option is silently inert for
// algorithms that do not decompose (their cursor, coloring or search state
// spans components). New rejects the combination with WithFreshSchedules:
// borrowed arenas only exist in arena mode.
func WithIntraWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithIntraWorkers: %d workers, want ≥ 0", n)
			return
		}
		if n == 0 {
			c.intra = -1 // auto
			return
		}
		c.intra = n
	}
}

// intraWorkers resolves the intra-instance worker budget; ≤ 1 means the
// decomposition layer is off.
func (c *config) intraWorkers() int {
	if c.intra < 0 {
		return c.maxWorkers()
	}
	return c.intra
}

// WithTimeSharding opts into time-axis sharding for instances whose
// component structure starves WithIntraWorkers — a single (or dominant)
// connected component. When the session's algorithm declares a shard rule
// (see AlgorithmInfo.Shards), such an instance's time axis is cut at up to
// k−1 low-crossing bucket boundaries, the resulting shards are solved
// concurrently on idle arenas from the WithWorkers pool, and the jobs
// crossing a cut are placed afterwards by a sequential reconciliation pass
// driven by the algorithm's own placement rule against the live shard
// schedules.
//
// Unlike every other parallelism knob in this package, sharding CAN change
// results: the sharded schedule is always feasible (WithVerify-clean) and
// empirically within a few percent of the sequential cost, but it is not
// bitwise-identical — which is exactly why it is a separate opt-in rather
// than part of WithIntraWorkers. Result.Decomp reports the shard count,
// the crossing-job count and the reconcile time, so callers can audit what
// the option did.
//
// k = 0 means automatic (the full WithWorkers budget); k = 1 disables the
// layer (the default); k ≥ 2 fixes the shard count. The layer declines
// silently — falling back to the ordinary bitwise paths — whenever sharding
// cannot pay: too few jobs, a degenerate time axis, too many crossing jobs,
// or no idle arenas. New rejects the combination with WithFreshSchedules:
// shard arenas only exist in arena mode.
func WithTimeSharding(k int) Option {
	return func(c *config) {
		if k < 0 {
			c.fail("WithTimeSharding: %d shards, want ≥ 0", k)
			return
		}
		if k == 0 {
			c.shards = -1 // auto
			return
		}
		c.shards = k
	}
}

// timeShards resolves the time-shard budget; ≤ 1 means sharding is off.
func (c *config) timeShards() int {
	if c.shards < 0 {
		return c.maxWorkers()
	}
	return c.shards
}

// WithLookahead sets the semi-online buffer size k for the online-*
// algorithms: the scheduler sees the next k arrivals and always places the
// longest buffered job first. k = 1 (the default) is pure arrival order;
// k ≥ n recovers the offline processing order, so online-firstfit with full
// lookahead equals the paper's FirstFit. New rejects a lookahead on offline
// algorithms.
func WithLookahead(k int) Option {
	return func(c *config) {
		if k < 1 {
			c.fail("WithLookahead: %d, want ≥ 1", k)
			return
		}
		c.lookahead = k
	}
}

// WithWindow pre-sizes the rolling-horizon state of sessions opened by
// Solver.Online and Solver.OnlinePool for about n simultaneously live jobs:
// the retained-window ring, the departure heap and the telemetry scratch
// start at that capacity, so a stream that stays under the hint reaches the
// zero-allocation steady state without any warm-up growth. It is a hint,
// not a limit — sessions grow past it on demand — and it is inert for batch
// Solve calls. n = 0 (the default) starts empty.
func WithWindow(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithWindow: %d live jobs, want ≥ 0", n)
			return
		}
		c.window = n
	}
}

// WithAdmission installs a per-tenant acceptance policy on pools opened by
// Solver.OnlinePool: a live-job cap (rejections are ErrLiveLimit) and a
// token-bucket placement rate (ErrRateLimit), judged per tenant under the
// tenant's shard lock — see Admission for the exact semantics. The zero
// Admission admits everything, as does omitting the option. Single-tenant
// sessions from Solver.Online are not limited: admission is a
// multi-tenant-service concern, and the busyschedd daemon is its consumer.
func WithAdmission(a Admission) Option {
	return func(c *config) {
		if a.MaxLive < 0 {
			c.fail("WithAdmission: MaxLive = %d, want ≥ 0", a.MaxLive)
			return
		}
		if a.Rate < 0 || a.Rate != a.Rate {
			c.fail("WithAdmission: Rate = %v, want ≥ 0", a.Rate)
			return
		}
		if a.Burst < 0 {
			c.fail("WithAdmission: Burst = %d, want ≥ 0", a.Burst)
			return
		}
		c.admission = a
	}
}

// WithExactLimit sets the largest connected component (in jobs) the "exact"
// branch-and-bound accepts, replacing its default of 18. The search is
// exponential: raising the limit is useful together with a cancelling
// context. New rejects the option on other algorithms.
func WithExactLimit(maxJobs int) Option {
	return func(c *config) {
		if maxJobs < 1 {
			c.fail("WithExactLimit: %d jobs, want ≥ 1", maxJobs)
			return
		}
		c.exactLimit = maxJobs
	}
}

// WithLengthBound sets the segment granularity d of the "boundedlength"
// algorithm (§3.2); 0, the default, uses the maximum job length. New
// rejects the option on other algorithms.
func WithLengthBound(d float64) Option {
	return func(c *config) {
		if d < 0 {
			c.fail("WithLengthBound: d = %v, want ≥ 0", d)
			return
		}
		c.lengthD = d
	}
}

// WithFreshSchedules makes every Solve return its schedule in caller-owned
// memory instead of the solver's recycled arena: results stay valid forever
// without Detach, at the cost of allocating schedule state per call. This is
// the right mode when schedules are retained; the default arena mode is the
// right one for high-throughput metric extraction.
func WithFreshSchedules() Option {
	return func(c *config) { c.fresh = true }
}

// maxWorkers resolves the configured worker count.
func (c *config) maxWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// AlgorithmInfo describes one registered algorithm.
type AlgorithmInfo struct {
	// Name is the identifier WithAlgorithm accepts.
	Name string
	// Description is a one-line summary with the paper reference.
	Description string
	// Cancellation reports where the algorithm observes context
	// cancellation: "mid-run" for the unbounded-time searches that
	// checkpoint ctx inside a single run (exact), "run-boundary" for the
	// fast polynomial algorithms that drivers cancel between runs.
	Cancellation string
	// Decomposes reports whether the algorithm participates in the
	// component-decomposition layer: true means WithIntraWorkers can solve
	// its time-disjoint components concurrently with a bitwise-identical
	// result; false means the option leaves the algorithm untouched.
	Decomposes bool
	// Shards reports whether the algorithm additionally declares a
	// time-sharding reconciliation rule: true means WithTimeSharding can cut
	// a dominant component across the time axis (feasible but not bitwise —
	// see WithTimeSharding); false means that option leaves the algorithm
	// untouched.
	Shards bool
}

// Algorithms lists every registered algorithm sorted by name; each entry's
// Name is valid for WithAlgorithm.
func Algorithms() []AlgorithmInfo {
	all := algo.All()
	out := make([]AlgorithmInfo, len(all))
	for i, a := range all {
		out[i] = AlgorithmInfo{
			Name:         a.Name,
			Description:  a.Description,
			Cancellation: a.Cancellation.String(),
			Decomposes:   a.Decompose != nil,
			Shards:       a.Decompose != nil && a.Decompose.Shard != algo.ShardNone,
		}
	}
	return out
}

// algorithmNames returns every registered name for error messages.
func algorithmNames() string {
	all := algo.All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
