package busytime_test

import (
	"context"
	"fmt"

	"busytime"
)

// ExampleNew shows option combinations and the eager validation New
// performs: a semi-online lookahead belongs to the online-* algorithms.
func ExampleNew() {
	s, err := busytime.New(
		busytime.WithAlgorithm("online-firstfit"),
		busytime.WithLookahead(8),
		busytime.WithWorkers(4),
		busytime.WithVerify(true),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s.Algorithm())

	_, err = busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithLookahead(8))
	fmt.Println(err)
	// Output:
	// online-firstfit
	// busytime: WithLookahead applies to the online-* algorithms, not "firstfit"
}

// ExampleSolver_Solve schedules one instance through a session and reads
// the Result: cost, lower bound, optimality gap.
func ExampleSolver_Solve() {
	in, err := busytime.BuildInstance(2, busytime.UnitJobs(
		busytime.Interval{Start: 0, End: 4},
		busytime.Interval{Start: 1, End: 5},
		busytime.Interval{Start: 2, End: 6},
	)...)
	if err != nil {
		fmt.Println(err)
		return
	}
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithVerify(true))
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := s.Solve(context.Background(), in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: machines=%d cost=%.0f lb=%.0f gap=%.0f\n",
		res.Algorithm, res.Machines, res.Cost, res.LowerBound(), res.Gap())
	// Output: firstfit: machines=2 cost=9 lb=8 gap=1
}

// ExampleSolver_SolveBatch fans a batch out across workers; results come
// back in input order regardless of parallelism.
func ExampleSolver_SolveBatch() {
	batch := []*busytime.Instance{
		busytime.NewInstance(2,
			busytime.NewInterval(0, 4),
			busytime.NewInterval(1, 5),
			busytime.NewInterval(2, 6)),
		busytime.NewInstance(2,
			busytime.NewInterval(0, 2),
			busytime.NewInterval(1, 3)),
	}
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"), busytime.WithWorkers(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	results, err := s.SolveBatch(context.Background(), batch)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("%d: n=%d machines=%d cost=%.0f\n", r.Index, r.N, r.Machines, r.Cost)
	}
	// Output:
	// 0: n=3 machines=2 cost=9
	// 1: n=2 machines=1 cost=3
}

// ExampleSolver_SolveStream drains a generator-backed stream in bounded
// memory; the output is identical to collecting and batching.
func ExampleSolver_SolveStream() {
	i := 0
	next := func() (*busytime.Instance, bool) {
		if i >= 3 {
			return nil, false
		}
		i++
		end := float64(i)
		return busytime.NewInstance(2,
			busytime.NewInterval(0, end),
			busytime.NewInterval(0, end)), true
	}
	s, err := busytime.New(busytime.WithAlgorithm("firstfit"))
	if err != nil {
		fmt.Println(err)
		return
	}
	results, err := s.SolveStream(context.Background(), next)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("cost=%.0f ", r.Cost)
	}
	fmt.Println()
	// Output: cost=1 cost=2 cost=3
}

// ExampleSolver_Online feeds arrivals one at a time — the online model,
// where decisions are immediate and irrevocable.
func ExampleSolver_Online() {
	s, err := busytime.New()
	if err != nil {
		fmt.Println(err)
		return
	}
	sess, err := s.Online(2, "bestfit")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range [][2]float64{{0, 4}, {1, 5}, {2, 6}} {
		m, err := sess.Place(busytime.Interval{Start: p[0], End: p[1]})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("[%g,%g] -> machine %d\n", p[0], p[1], m)
	}
	fmt.Printf("machines=%d cost=%.0f\n", sess.Machines(), sess.Cost())
	// Output:
	// [0,4] -> machine 0
	// [1,5] -> machine 0
	// [2,6] -> machine 1
	// machines=2 cost=9
}

// ExampleBuildInstance shows the validating constructor rejecting what the
// legacy shims would panic on (or silently accept).
func ExampleBuildInstance() {
	_, err := busytime.BuildInstance(2, busytime.Job{ID: 0, Iv: busytime.Interval{Start: 0, End: 5}, Demand: 3})
	fmt.Println(err)
	// Output: core: job 0 demand 3 outside [1, 2]
}

// Example schedules three overlapping jobs with parallelism 2 and compares
// FirstFit to the optimum.
func Example() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 4),
		busytime.NewInterval(1, 5),
		busytime.NewInterval(2, 6),
	)
	s := busytime.FirstFit(in)
	opt, _ := busytime.Exact(in)
	fmt.Printf("firstfit=%.0f opt=%.0f machines=%d\n", s.Cost(), opt.Cost(), s.NumMachines())
	// Output: firstfit=9 opt=9 machines=2
}

// ExampleLowerBound shows the fractional bound dominating the two
// Observation 1.1 bounds.
func ExampleLowerBound() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 1),
		busytime.NewInterval(2, 3),
		busytime.NewInterval(0, 3),
	)
	b := busytime.AllBounds(in)
	fmt.Printf("span=%.1f parallelism=%.1f fractional=%.1f\n",
		b.Span, b.Parallelism, b.Fractional)
	// Output: span=3.0 parallelism=2.5 fractional=3.0
}

// ExampleProperGreedy runs the §3.1 2-approximation on a proper instance.
func ExampleProperGreedy() {
	in := busytime.NewInstance(1,
		busytime.NewInterval(0, 2),
		busytime.NewInterval(1, 3),
		busytime.NewInterval(2, 4),
	)
	s := busytime.ProperGreedy(in)
	fmt.Printf("machines=%d cost=%.0f\n", s.NumMachines(), s.Cost())
	// Output: machines=3 cost=6
}

// ExampleCliqueSchedule groups a clique of jobs by distance from their
// common point, g per machine.
func ExampleCliqueSchedule() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 10),
		busytime.NewInterval(1, 9),
		busytime.NewInterval(2, 8),
		busytime.NewInterval(3, 7),
	)
	s, err := busytime.CliqueSchedule(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("machines=%d cost=%.0f\n", s.NumMachines(), s.Cost())
	// Output: machines=2 cost=16
}
