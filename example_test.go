package busytime_test

import (
	"fmt"

	"busytime"
)

// Example schedules three overlapping jobs with parallelism 2 and compares
// FirstFit to the optimum.
func Example() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 4),
		busytime.NewInterval(1, 5),
		busytime.NewInterval(2, 6),
	)
	s := busytime.FirstFit(in)
	opt, _ := busytime.Exact(in)
	fmt.Printf("firstfit=%.0f opt=%.0f machines=%d\n", s.Cost(), opt.Cost(), s.NumMachines())
	// Output: firstfit=9 opt=9 machines=2
}

// ExampleLowerBound shows the fractional bound dominating the two
// Observation 1.1 bounds.
func ExampleLowerBound() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 1),
		busytime.NewInterval(2, 3),
		busytime.NewInterval(0, 3),
	)
	b := busytime.AllBounds(in)
	fmt.Printf("span=%.1f parallelism=%.1f fractional=%.1f\n",
		b.Span, b.Parallelism, b.Fractional)
	// Output: span=3.0 parallelism=2.5 fractional=3.0
}

// ExampleProperGreedy runs the §3.1 2-approximation on a proper instance.
func ExampleProperGreedy() {
	in := busytime.NewInstance(1,
		busytime.NewInterval(0, 2),
		busytime.NewInterval(1, 3),
		busytime.NewInterval(2, 4),
	)
	s := busytime.ProperGreedy(in)
	fmt.Printf("machines=%d cost=%.0f\n", s.NumMachines(), s.Cost())
	// Output: machines=3 cost=6
}

// ExampleCliqueSchedule groups a clique of jobs by distance from their
// common point, g per machine.
func ExampleCliqueSchedule() {
	in := busytime.NewInstance(2,
		busytime.NewInterval(0, 10),
		busytime.NewInterval(1, 9),
		busytime.NewInterval(2, 8),
		busytime.NewInterval(3, 7),
	)
	s, err := busytime.CliqueSchedule(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("machines=%d cost=%.0f\n", s.NumMachines(), s.Cost())
	// Output: machines=2 cost=16
}
