package bmatch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleMatching(t *testing.T) {
	// U = {0,1}, V = {0,1}, complete bipartite, unit bounds → size 2.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	size, matched, err := g.Solve(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 || len(matched) != 2 {
		t.Fatalf("size = %d, matched = %v", size, matched)
	}
}

func TestBMatchingBounds(t *testing.T) {
	// One left vertex with b=3 serving three right vertices.
	g := NewGraph(1, 3)
	for v := 0; v < 3; v++ {
		g.AddEdge(0, v)
	}
	size, _, err := g.Solve([]int{3}, nil)
	if err != nil || size != 3 {
		t.Fatalf("size = %d err=%v, want 3", size, err)
	}
	size, _, err = g.Solve([]int{2}, nil)
	if err != nil || size != 2 {
		t.Fatalf("size = %d err=%v, want 2 with b(u)=2", size, err)
	}
}

func TestPerfect(t *testing.T) {
	g := NewGraph(2, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	ok, matched, err := g.Perfect([]int{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(matched) != 3 {
		t.Fatalf("perfect = %v, matched = %v", ok, matched)
	}
	// Unit left bounds: only 2 of 3 right vertices can be saturated.
	ok, _, err = g.Perfect(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("perfect claimed with insufficient left capacity")
	}
}

func TestErrors(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddEdge(0, 0)
	if _, _, err := g.Solve([]int{1, 2}, nil); err == nil {
		t.Error("wrong bu length accepted")
	}
	if _, _, err := g.Solve(nil, []int{-1}); err == nil {
		t.Error("negative bound accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge accepted")
		}
	}()
	g.AddEdge(5, 0)
}

func TestMatchedRespectsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nu, nv := r.Intn(6)+1, r.Intn(6)+1
		g := NewGraph(nu, nv)
		for u := 0; u < nu; u++ {
			for v := 0; v < nv; v++ {
				if r.Intn(2) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		bu := make([]int, nu)
		bv := make([]int, nv)
		for i := range bu {
			bu[i] = r.Intn(3)
		}
		for i := range bv {
			bv[i] = r.Intn(3)
		}
		size, matched, err := g.Solve(bu, bv)
		if err != nil {
			t.Fatal(err)
		}
		if size != len(matched) {
			t.Fatalf("size %d != len(matched) %d", size, len(matched))
		}
		du := make([]int, nu)
		dv := make([]int, nv)
		for _, e := range matched {
			du[e[0]]++
			dv[e[1]]++
		}
		for u, d := range du {
			if d > bu[u] {
				t.Fatalf("vertex u%d degree %d > bound %d", u, d, bu[u])
			}
		}
		for v, d := range dv {
			if d > bv[v] {
				t.Fatalf("vertex v%d degree %d > bound %d", v, d, bv[v])
			}
		}
	}
}

// bruteMax enumerates subsets of edges (≤ 2^12) for ground truth.
func bruteMax(g *Graph, bu, bv []int) int {
	m := len(g.edges)
	best := 0
	for mask := 0; mask < 1<<m; mask++ {
		du := make([]int, g.nu)
		dv := make([]int, g.nv)
		cnt := 0
		ok := true
		for i := 0; i < m && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			e := g.edges[i]
			du[e[0]]++
			dv[e[1]]++
			cnt++
			if du[e[0]] > bu[e[0]] || dv[e[1]] > bv[e[1]] {
				ok = false
			}
		}
		if ok && cnt > best {
			best = cnt
		}
	}
	return best
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nu, nv := r.Intn(4)+1, r.Intn(4)+1
		g := NewGraph(nu, nv)
		for u := 0; u < nu; u++ {
			for v := 0; v < nv; v++ {
				if r.Intn(3) == 0 && g.Edges() < 12 {
					g.AddEdge(u, v)
				}
			}
		}
		bu := make([]int, nu)
		bv := make([]int, nv)
		for i := range bu {
			bu[i] = r.Intn(3)
		}
		for i := range bv {
			bv[i] = r.Intn(3)
		}
		size, _, err := g.Solve(bu, bv)
		if err != nil {
			return false
		}
		return size == bruteMax(g, bu, bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLargeBipartite(t *testing.T) {
	// Complete bipartite K(50,50) with unit bounds: perfect matching of 50.
	g := NewGraph(50, 50)
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			g.AddEdge(u, v)
		}
	}
	size, _, err := g.Solve(nil, nil)
	if err != nil || size != 50 {
		t.Fatalf("size = %d err=%v, want 50", size, err)
	}
}

func BenchmarkMatching(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := NewGraph(100, 100)
	for u := 0; u < 100; u++ {
		for v := 0; v < 100; v++ {
			if r.Intn(5) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Solve(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
