// Package bmatch solves the maximum bipartite b-matching problem: given a
// bipartite graph (U, V, E) and degree bounds b(x) for every vertex, find a
// maximum subset M ⊆ E such that every vertex x is incident to at most b(x)
// edges of M. The problem is polynomial (Gabow, STOC'83); this package uses
// the standard reduction to maximum flow solved with Dinic's algorithm.
//
// The Bounded_Length algorithm (§3.2, step 2(d)–(e)) uses b-matching to
// assign independent sets to machines: b(machine) = g, b(IS) = 1.
package bmatch

import "fmt"

// Graph is a bipartite graph with nu left and nv right vertices.
type Graph struct {
	nu, nv int
	edges  [][2]int
}

// NewGraph returns an empty bipartite graph with the given side sizes.
func NewGraph(nu, nv int) *Graph {
	return &Graph{nu: nu, nv: nv}
}

// AddEdge adds the edge (u, v); u indexes U, v indexes V. Parallel edges
// are permitted but never both used by a maximum b-matching with b(v) = 1.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.nu || v < 0 || v >= g.nv {
		panic(fmt.Sprintf("bmatch: edge (%d,%d) out of range (%d,%d)", u, v, g.nu, g.nv))
	}
	g.edges = append(g.edges, [2]int{u, v})
}

// NU and NV return the side sizes.
func (g *Graph) NU() int { return g.nu }

// NV returns the number of right-side vertices.
func (g *Graph) NV() int { return g.nv }

// Edges returns the number of edges.
func (g *Graph) Edges() int { return len(g.edges) }

// Solve computes a maximum b-matching. bu and bv give the degree bounds of
// the left and right vertices; a nil slice means bound 1 everywhere. The
// matched edges are returned as (u, v) pairs.
func (g *Graph) Solve(bu, bv []int) (size int, matched [][2]int, err error) {
	if bu == nil {
		bu = ones(g.nu)
	}
	if bv == nil {
		bv = ones(g.nv)
	}
	if len(bu) != g.nu || len(bv) != g.nv {
		return 0, nil, fmt.Errorf("bmatch: bound lengths (%d,%d), want (%d,%d)", len(bu), len(bv), g.nu, g.nv)
	}
	for _, b := range bu {
		if b < 0 {
			return 0, nil, fmt.Errorf("bmatch: negative bound %d", b)
		}
	}
	for _, b := range bv {
		if b < 0 {
			return 0, nil, fmt.Errorf("bmatch: negative bound %d", b)
		}
	}
	// Nodes: 0 = source, 1..nu = U, nu+1..nu+nv = V, nu+nv+1 = sink.
	src := 0
	sink := g.nu + g.nv + 1
	net := newFlowNet(sink + 1)
	for u, b := range bu {
		net.addEdge(src, 1+u, b)
	}
	for v, b := range bv {
		net.addEdge(1+g.nu+v, sink, b)
	}
	idx := make([]int, len(g.edges))
	for i, e := range g.edges {
		idx[i] = net.addEdge(1+e[0], 1+g.nu+e[1], 1)
	}
	size = net.maxFlow(src, sink)
	for i, e := range g.edges {
		if net.adj[1+e[0]][idx[i]].cap == 0 { // saturated ⇒ matched
			matched = append(matched, e)
		}
	}
	return size, matched, nil
}

// Perfect reports whether a b-matching saturating every right vertex exists,
// i.e. the maximum matching has size Σ bv. This is the feasibility question
// Bounded_Length asks: can all independent sets be placed on machines?
func (g *Graph) Perfect(bu, bv []int) (bool, [][2]int, error) {
	if bv == nil {
		bv = ones(g.nv)
	}
	want := 0
	for _, b := range bv {
		want += b
	}
	size, matched, err := g.Solve(bu, bv)
	if err != nil {
		return false, nil, err
	}
	return size == want, matched, nil
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
