package bmatch

// Dinic's maximum-flow algorithm on an integer-capacity network. This is the
// engine behind the bipartite b-matching used by the Bounded_Length
// algorithm's step 2(e); it is kept separate so it can be tested directly.

type edge struct {
	to  int
	cap int
	rev int // index of the reverse edge in flows.adj[to]
}

// flowNet is a directed flow network over vertices 0..n-1.
type flowNet struct {
	adj [][]edge
}

func newFlowNet(n int) *flowNet {
	return &flowNet{adj: make([][]edge, n)}
}

// addEdge inserts a directed edge u→v with the given capacity (and a
// residual reverse edge of capacity 0). It returns the index of the forward
// edge within adj[u] so callers can read its final flow.
func (f *flowNet) addEdge(u, v, cap int) int {
	f.adj[u] = append(f.adj[u], edge{to: v, cap: cap, rev: len(f.adj[v])})
	f.adj[v] = append(f.adj[v], edge{to: u, cap: 0, rev: len(f.adj[u]) - 1})
	return len(f.adj[u]) - 1
}

// maxFlow computes the maximum s→t flow; capacities in f are mutated into
// residual capacities.
func (f *flowNet) maxFlow(s, t int) int {
	total := 0
	level := make([]int, len(f.adj))
	iter := make([]int, len(f.adj))
	for f.bfs(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfs(s, t, int(^uint(0)>>1), level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (f *flowNet) bfs(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	queue := []int{s}
	level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range f.adj[u] {
			if e.cap > 0 && level[e.to] < 0 {
				level[e.to] = level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return level[t] >= 0
}

func (f *flowNet) dfs(u, t, limit int, level, iter []int) int {
	if u == t {
		return limit
	}
	for ; iter[u] < len(f.adj[u]); iter[u]++ {
		e := &f.adj[u][iter[u]]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		min := limit
		if e.cap < min {
			min = e.cap
		}
		if pushed := f.dfs(e.to, t, min, level, iter); pushed > 0 {
			e.cap -= pushed
			f.adj[e.to][e.rev].cap += pushed
			return pushed
		}
	}
	return 0
}
