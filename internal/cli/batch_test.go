package cli

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBatchGeneratedSuiteCSV(t *testing.T) {
	code, out, errOut := run("batch",
		"-algo", "firstfit", "-kind", "burst", "-count", "6", "-n", "200", "-g", "4", "-seed", "9", "-verify")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(recs) != 7 { // header + 6 instances
		t.Fatalf("got %d CSV rows, want 7:\n%s", len(recs), out)
	}
	if recs[0][0] != "index" || recs[0][5] != "cost" {
		t.Errorf("unexpected header: %v", recs[0])
	}
	for _, rec := range recs[1:] {
		if rec[8] != "" {
			t.Errorf("instance %s reported error: %s", rec[0], rec[8])
		}
	}
}

func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	args := []string{"batch", "-algo", "firstfit", "-kind", "waves", "-count", "8", "-n", "300", "-seed", "4"}
	_, seq, _ := run(append(args, "-workers", "1")...)
	_, par, _ := run(append(args, "-workers", "4")...)
	if seq != par {
		t.Errorf("worker count changed batch output:\nworkers=1:\n%s\nworkers=4:\n%s", seq, par)
	}
}

func TestBatchFromFilesJSON(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 2)
	for i := range paths {
		paths[i] = filepath.Join(dir, "inst"+strings.Repeat("x", i+1)+".json")
		code, _, errOut := run("generate", "-kind", "general", "-n", "30", "-g", "3", "-seed", "7", "-out", paths[i])
		if code != 0 {
			t.Fatalf("generate: %s", errOut)
		}
	}
	outFile := filepath.Join(dir, "results.json")
	code, _, errOut := run(append([]string{"batch", "-algo", "firstfit", "-format", "json", "-out", outFile}, paths...)...)
	if code != 0 {
		t.Fatalf("batch: %s", errOut)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"machines"`) {
		t.Errorf("JSON results missing fields:\n%s", data)
	}
}

// TestBatchDecompSummary pins the decomposition stderr line: a batch run
// with -intra and -shards reports components, component-parallel runs and
// time-sharded runs, while the CSV stream on stdout stays untouched. The
// clustered "waves" suite decomposes; whether any instance also shards
// depends on pool pressure, so only the component side is asserted.
func TestBatchDecompSummary(t *testing.T) {
	code, out, errOut := run("batch",
		"-algo", "firstfit", "-kind", "waves", "-count", "4", "-n", "400", "-seed", "3",
		"-workers", "4", "-intra", "0", "-shards", "0")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "decomposition: ") ||
		!strings.Contains(errOut, "intra-workers") || !strings.Contains(errOut, "shards") {
		t.Errorf("stderr missing decomposition summary:\n%s", errOut)
	}
	if strings.Contains(out, "decomposition") {
		t.Errorf("decomposition telemetry leaked into the output stream:\n%s", out)
	}
	// Without the layer the line must stay absent.
	_, _, plain := run("batch", "-algo", "firstfit", "-kind", "waves", "-count", "4", "-n", "400", "-seed", "3")
	if strings.Contains(plain, "decomposition") {
		t.Errorf("plain batch printed decomposition telemetry:\n%s", plain)
	}
}

func TestBatchBadFormatAndKind(t *testing.T) {
	if code, _, errOut := run("batch", "-format", "xml"); code != 1 || !strings.Contains(errOut, "unknown format") {
		t.Errorf("format: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("batch", "-kind", "nonsense"); code != 1 || !strings.Contains(errOut, "unknown kind") {
		t.Errorf("kind: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("batch", "-algo", "nope"); code != 1 || !strings.Contains(errOut, "unknown algorithm") {
		t.Errorf("algo: code=%d err=%q", code, errOut)
	}
}
