// Package cli implements the busysched command-line front end as a
// testable library: Run dispatches subcommands and writes to injected
// streams, and cmd/busysched is a thin wrapper around it. The CLI is a
// consumer of the public busytime API — solvers are built with busytime.New
// and driven through Solve/SolveBatch/SolveStream, so every subcommand
// exercises exactly the surface external users get (including context
// cancellation: busysched wires SIGINT into the context). Subcommands:
//
//	generate  create a random instance (JSON on stdout or -out)
//	solve     run one algorithm on an instance file
//	eval      run every registered algorithm on an instance and compare
//	bounds    print the lower bounds of an instance
//	batch     run one algorithm over many instances in parallel (CSV/JSON)
//	online    drive a rolling-horizon session over a synthetic arrival stream
//	replay    run a registered workload scenario offline/online/over the wire
//
// Example:
//
//	busysched generate -kind general -n 50 -g 3 -seed 7 -out inst.json
//	busysched solve -algo firstfit -in inst.json
//	busysched eval -in inst.json
//	busysched batch -algo firstfit -count 64 -kind burst -n 100000 -format csv
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"busytime"
	"busytime/internal/algo/laminar"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/scenario"
	"busytime/internal/sim"
	"busytime/internal/stats"
	"busytime/internal/trace"
	"busytime/internal/viz"
	"busytime/internal/xrand"
)

// CLI bundles the output streams of one invocation.
type CLI struct {
	Out io.Writer
	Err io.Writer
}

// Run dispatches a busysched invocation (args excludes the program name)
// and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	return RunContext(context.Background(), args, stdout, stderr)
}

// RunContext is Run with a caller-supplied context: cancelling it stops
// in-flight solves cooperatively (batch workers at their next instance, the
// exact search mid-run) and surfaces context.Canceled as an ordinary
// command error.
func RunContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	c := &CLI{Out: stdout, Err: stderr}
	if len(args) < 1 {
		c.usage()
		return 2
	}
	var err error
	switch args[0] {
	case "generate":
		err = c.cmdGenerate(args[1:])
	case "solve":
		err = c.cmdSolve(ctx, args[1:])
	case "eval":
		err = c.cmdEval(ctx, args[1:])
	case "bounds":
		err = c.cmdBounds(args[1:])
	case "show":
		err = c.cmdShow(ctx, args[1:])
	case "simulate":
		err = c.cmdSimulate(ctx, args[1:])
	case "convert":
		err = c.cmdConvert(args[1:])
	case "batch":
		err = c.cmdBatch(ctx, args[1:])
	case "online":
		err = c.cmdOnline(ctx, args[1:])
	case "replay":
		err = c.cmdReplay(ctx, args[1:])
	case "help", "-h", "--help":
		c.usage()
	default:
		fmt.Fprintf(c.Err, "busysched: unknown command %q\n", args[0])
		c.usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(c.Err, "busysched: %v\n", err)
		return 1
	}
	return 0
}

func (c *CLI) usage() {
	fmt.Fprintln(c.Err, `usage: busysched <command> [flags]

commands:
  generate  -kind general|proper|clique|bounded|poisson|diurnal|burst|waves
            -n N -g G -seed S [-out FILE]
  solve     -algo NAME -in FILE [-out FILE] [-replay]
  eval      -in FILE
  bounds    -in FILE
  show      -in FILE [-algo NAME] [-width W]   ASCII Gantt chart + depth profile
  simulate  -in FILE [-algo NAME]              discrete-event replay report
  convert   -in FILE -out FILE                 json<->csv by extension
  batch     -algo NAME [-workers W] [-format csv|json] [-out FILE] [-verify]
            FILE...                            schedule instance files, or
            -kind ... -count K -n N -g G -seed S   a generated suite
  online    -policy firstfit|bestfit|nextfit -n N -g G -live L
            [-maxdemand D] [-release P] [-window W] [-seed S] [-json]
            rolling-horizon stream with arrivals and departures
  replay    -scenario NAME | -trace FILE | -list
            [-seed S] [-seeds K] [-n N] [-g G] [-algo NAME] [-policy NAME]
            [-modes offline,online,wire] [-addr HOST:PORT] [-tenant T]
            [-release P] [-repeat R] [-workers W] [-maxdemand D]
            [-json | -format csv] [-out FILE]
            replay a registered workload scenario with billing cross-checks

registered algorithms:`)
	for _, a := range busytime.Algorithms() {
		suffix := ""
		if a.Cancellation == "mid-run" {
			suffix = "  (cancels mid-run)"
		}
		fmt.Fprintf(c.Err, "  %-16s %s%s\n", a.Name, a.Description, suffix)
	}
}

// newSolver builds a session for one CLI invocation; every schedule-running
// subcommand goes through here, so the CLI cannot bypass the public API.
func newSolver(name string, opts ...busytime.Option) (*busytime.Solver, error) {
	return busytime.New(append([]busytime.Option{busytime.WithAlgorithm(name)}, opts...)...)
}

func (c *CLI) cmdGenerate(args []string) error {
	fs := newFlagSet(c, "generate")
	kind := fs.String("kind", "general", "instance class: general, proper, clique, bounded, poisson, diurnal, burst, waves")
	n := fs.Int("n", 50, "number of jobs")
	g := fs.Int("g", 3, "parallelism parameter")
	seed := fs.Int64("seed", 1, "random seed")
	horizon := fs.Float64("horizon", 100, "time horizon")
	maxLen := fs.Float64("maxlen", 20, "maximum job length (general/proper)")
	d := fs.Float64("d", 4, "length bound (bounded)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := generateInstance(*kind, *seed, *n, *g, *horizon, *maxLen, *d)
	if err != nil {
		return err
	}
	w := io.Writer(c.Out)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return core.WriteInstance(w, in)
}

func loadInstance(path string) (*core.Instance, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in FILE")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadInstance(f)
}

func (c *CLI) cmdSolve(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "solve")
	name := fs.String("algo", "firstfit", "algorithm name (see busysched help)")
	in := fs.String("in", "", "instance file")
	out := fs.String("out", "", "write the schedule JSON to this file")
	replay := fs.Bool("replay", false, "cross-check via discrete-event replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*in)
	if err != nil {
		return err
	}
	solver, err := newSolver(*name, busytime.WithVerify(true))
	if err != nil {
		return err
	}
	res, err := solver.Solve(ctx, inst)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.Out, "instance : %s (n=%d, g=%d)\n", inst.Name, inst.N(), inst.G)
	fmt.Fprintf(c.Out, "algorithm: %s\n", res.Algorithm)
	fmt.Fprintf(c.Out, "machines : %d\n", res.Machines)
	fmt.Fprintf(c.Out, "cost     : %.4f\n", res.Cost)
	fmt.Fprintf(c.Out, "LB(frac) : %.4f  (cost/LB = %.4f)\n", res.LowerBound(), res.Ratio())
	if *replay {
		if err := sim.Check(res.Schedule, 1e-6); err != nil {
			return fmt.Errorf("replay check failed: %w", err)
		}
		fmt.Fprintln(c.Out, "replay   : ok (measured busy time matches)")
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		return core.WriteSchedule(f, res.Schedule)
	}
	return nil
}

func (c *CLI) cmdEval(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "eval")
	in := fs.String("in", "", "instance file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*in)
	if err != nil {
		return err
	}
	lb := busytime.LowerBound(inst)
	tb := stats.NewTable(
		fmt.Sprintf("evaluation of %s (n=%d, g=%d, LB=%.3f)", inst.Name, inst.N(), inst.G, lb),
		"algorithm", "machines", "cost", "cost/LB")
	for _, a := range busytime.Algorithms() {
		if a.Name == "exact" && inst.N() > 16 {
			continue // exact is exponential; skip on big inputs
		}
		if a.Name == "clique" && !inst.IsClique() {
			continue
		}
		if a.Name == "laminar" && !laminar.IsLaminar(inst.Set()) {
			continue
		}
		solver, err := newSolver(a.Name, busytime.WithVerify(true))
		if err != nil {
			return err
		}
		res, err := solver.Solve(ctx, inst)
		if err != nil {
			// A cancelled run aborts the whole evaluation (nonzero exit);
			// per-algorithm rejections stay in the table.
			if ctx.Err() != nil {
				return err
			}
			tb.AddRow(a.Name, "-", "-", fmt.Sprintf("error: %v", err))
			continue
		}
		tb.AddRow(a.Name, res.Machines, res.Cost, res.Ratio())
	}
	fmt.Fprint(c.Out, tb.String())
	return nil
}

func (c *CLI) cmdBounds(args []string) error {
	fs := newFlagSet(c, "bounds")
	in := fs.String("in", "", "instance file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*in)
	if err != nil {
		return err
	}
	b := busytime.AllBounds(inst)
	fmt.Fprintf(c.Out, "instance    : %s (n=%d, g=%d)\n", inst.Name, inst.N(), inst.G)
	fmt.Fprintf(c.Out, "span        : %.4f\n", b.Span)
	fmt.Fprintf(c.Out, "parallelism : %.4f\n", b.Parallelism)
	fmt.Fprintf(c.Out, "fractional  : %.4f  (dominates both)\n", b.Fractional)
	fmt.Fprintf(c.Out, "proper      : %v\n", inst.IsProper())
	fmt.Fprintf(c.Out, "clique      : %v\n", inst.IsClique())
	fmt.Fprintf(c.Out, "components  : %d\n", len(inst.Components()))
	return nil
}

func (c *CLI) cmdShow(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "show")
	in := fs.String("in", "", "instance file")
	name := fs.String("algo", "firstfit", "algorithm to schedule with")
	width := fs.Int("width", 80, "chart width in columns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*in)
	if err != nil {
		return err
	}
	solver, err := newSolver(*name, busytime.WithVerify(true))
	if err != nil {
		return err
	}
	res, err := solver.Solve(ctx, inst)
	if err != nil {
		return err
	}
	fmt.Fprint(c.Out, viz.DepthProfile(inst, *width))
	fmt.Fprintln(c.Out)
	fmt.Fprint(c.Out, viz.Gantt(res.Schedule, *width))
	return nil
}

func (c *CLI) cmdSimulate(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "simulate")
	in := fs.String("in", "", "instance file")
	name := fs.String("algo", "firstfit", "algorithm to schedule with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*in)
	if err != nil {
		return err
	}
	solver, err := newSolver(*name, busytime.WithVerify(true))
	if err != nil {
		return err
	}
	res, err := solver.Solve(ctx, inst)
	if err != nil {
		return err
	}
	rep, err := sim.Replay(res.Schedule)
	if err != nil {
		return err
	}
	tb := stats.NewTable(
		fmt.Sprintf("replay of %s via %s (%d events)", inst.Name, res.Algorithm, rep.Events),
		"machine", "jobs", "busy", "peak load", "power-ons")
	for _, m := range rep.Machines {
		tb.AddRow(m.Machine, m.Jobs, m.Busy, m.PeakLoad, m.Switches)
	}
	fmt.Fprint(c.Out, tb.String())
	fmt.Fprintf(c.Out, "total busy %.4f (analytic %.4f), violations %d\n",
		rep.TotalBusy, res.Cost, len(rep.Violations))
	if len(rep.Violations) > 0 {
		return fmt.Errorf("schedule violates capacity")
	}
	return nil
}

func (c *CLI) cmdConvert(args []string) error {
	fs := newFlagSet(c, "convert")
	in := fs.String("in", "", "input file (.json or .csv)")
	out := fs.String("out", "", "output file (.json or .csv)")
	g := fs.Int("g", 1, "parallelism fallback for CSV inputs without a #g row")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}
	var inst *core.Instance
	rf, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer rf.Close()
	switch {
	case strings.HasSuffix(*in, ".csv"):
		inst, err = trace.ReadCSV(rf, *g)
	default:
		inst, err = core.ReadInstance(rf)
	}
	if err != nil {
		return err
	}
	wf, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer wf.Close()
	if strings.HasSuffix(*out, ".csv") {
		return trace.WriteCSV(wf, inst)
	}
	return core.WriteInstance(wf, inst)
}

// cmdBatch runs one algorithm over a batch of instances through the public
// SolveBatch/SolveStream fan-out and reports one CSV or JSON row per
// instance. Instances come either from the positional file arguments or,
// when none are given, from a generated suite (-kind/-count/-n/-g/-seed,
// seeds increasing per instance). Generated suites stream into the solver
// shard by shard, so arbitrarily long suites run in bounded memory.
func (c *CLI) cmdBatch(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "batch")
	name := fs.String("algo", "firstfit", "algorithm name (see busysched help)")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	intra := fs.Int("intra", 1, "intra-instance workers: split each instance's components across this many workers (0 = all cores, 1 = off)")
	shards := fs.Int("shards", 1, "time shards: cut dominant components across the time axis (0 = all cores, 1 = off; results may differ — see WithTimeSharding)")
	format := fs.String("format", "csv", "output format: csv or json")
	out := fs.String("out", "", "output file (default stdout)")
	verify := fs.Bool("verify", false, "re-verify every schedule's feasibility")
	kind := fs.String("kind", "general", "generated suite class: general, proper, clique, bounded, poisson, diurnal, burst, waves")
	count := fs.Int("count", 16, "generated suite size")
	n := fs.Int("n", 1000, "jobs per generated instance")
	g := fs.Int("g", 4, "parallelism parameter")
	seed := fs.Int64("seed", 1, "base seed; instance i uses seed+i")
	horizon := fs.Float64("horizon", 0, "time horizon (default n/10)")
	maxLen := fs.Float64("maxlen", 20, "maximum (or mean, for burst/waves) job length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	opts := []busytime.Option{busytime.WithWorkers(*workers), busytime.WithVerify(*verify)}
	if *intra != 1 {
		opts = append(opts, busytime.WithIntraWorkers(*intra))
	}
	if *shards != 1 {
		opts = append(opts, busytime.WithTimeSharding(*shards))
	}
	solver, err := newSolver(*name, opts...)
	if err != nil {
		return err
	}

	var results []busytime.BatchResult
	if files := fs.Args(); len(files) > 0 {
		instances := make([]*core.Instance, len(files))
		for i, path := range files {
			if instances[i], err = loadInstance(path); err != nil {
				return err
			}
		}
		results, err = solver.SolveBatch(ctx, instances)
	} else {
		hz := *horizon
		if hz <= 0 {
			hz = float64(*n) / 10
		}
		var genErr error
		i := 0
		next := func() (*core.Instance, bool) {
			if i >= *count {
				return nil, false
			}
			in, err := generateInstance(*kind, *seed+int64(i), *n, *g, hz, *maxLen, *maxLen)
			if err != nil {
				genErr = err
				return nil, false
			}
			i++
			return in, true
		}
		results, err = solver.SolveStream(ctx, next)
		if err == nil {
			err = genErr
		}
	}
	if err != nil {
		return err
	}

	// Arena telemetry goes to stderr so the CSV/JSON stream stays
	// deterministic across worker counts. Algorithms without a scratch path
	// never advance the counters; stay quiet rather than report a
	// meaningless 0% hit rate.
	pool := busytime.SummarizeBatch(results)
	if pool.WarmRuns > 0 || pool.SetupAllocs > 0 {
		fmt.Fprintf(c.Err, "arena pool: %d/%d warm runs (%.0f%% hit rate), %d setup allocations\n",
			pool.WarmRuns, pool.Runs, 100*pool.HitRate(), pool.SetupAllocs)
	}
	// Decomposition telemetry follows the same convention: only printed when
	// the layer actually swept instances, so plain batches stay quiet.
	if pool.Components > 0 {
		fmt.Fprintf(c.Err, "decomposition: %d components across %d runs, %d solved component-parallel (max %d intra-workers), %d time-sharded (max %d shards)\n",
			pool.Components, pool.Runs, pool.DecomposedRuns, pool.MaxIntraWorkers, pool.ShardedRuns, pool.MaxShards)
	}

	w := io.Writer(c.Out)
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	if *format == "json" {
		return busytime.WriteBatchJSON(w, results)
	}
	return busytime.WriteBatchCSV(w, results)
}

// cmdOnline drives a rolling-horizon session over a synthetic arrival
// stream (generator.Stream: Poisson arrivals, bounded uniform durations)
// with a tunable fraction of early releases, and reports the session's
// telemetry — the live demonstration that memory follows the live window,
// not the stream length. Like every other subcommand it goes through the
// public API: busytime.New(WithWindow) + Solver.Online.
func (c *CLI) cmdOnline(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "online")
	policy := fs.String("policy", "firstfit", "arrival policy: firstfit, bestfit or nextfit")
	n := fs.Int("n", 100000, "stream length (arrivals)")
	g := fs.Int("g", 4, "parallelism parameter")
	live := fs.Int("live", 1000, "target live-job population")
	maxDemand := fs.Int("maxdemand", 1, "maximum per-job demand")
	release := fs.Float64("release", 0.1, "fraction of arrivals followed by a random early release")
	window := fs.Int("window", 0, "pre-size the session for this many live jobs (0 = grow on demand)")
	seed := fs.Int64("seed", 1, "random seed")
	jsonOut := fs.Bool("json", false, "emit the full OnlineStats document as JSON (the daemon's per-tenant stats encoding)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *release < 0 || *release > 1 {
		return fmt.Errorf("-release %v out of [0, 1]", *release)
	}
	solver, err := busytime.New(busytime.WithWindow(*window))
	if err != nil {
		return err
	}
	sess, err := solver.Online(*g, *policy)
	if err != nil {
		return err
	}
	jobs := generator.Stream(*seed, *n, *live, *maxDemand)
	rng := xrand.New(*seed ^ 0x5eed)
	for i, j := range jobs {
		if i&4095 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		if _, err := sess.PlaceDemand(j.Iv, j.Demand); err != nil {
			return err
		}
		if rng.Float64() < *release {
			// Aim at a recent job; already-departed targets report false.
			if _, err := sess.Release(i - rng.Intn(min(i+1, 2**live))); err != nil {
				return err
			}
		}
	}
	st := sess.Stats()
	if *jsonOut {
		// The same encoder and field names as busyschedd's per-tenant stats
		// endpoint, so scripts consume one schema from both front ends.
		return stats.WriteJSON(c.Out, st)
	}
	fmt.Fprintf(c.Out, "stream    : n=%d live≈%d g=%d policy=%s seed=%d\n", *n, *live, *g, *policy, *seed)
	fmt.Fprintf(c.Out, "placed    : %d  (released %d, expired %d, live %d)\n", st.Placed, st.Released, st.Expired, st.Live)
	fmt.Fprintf(c.Out, "machines  : %d open, %d idle  (peak %d)\n", st.Machines, st.IdleMachines, st.PeakMachines)
	fmt.Fprintf(c.Out, "window    : %d records retained, capacity %d  (peak live %d, peak window %d, %d compactions)\n",
		st.Window, st.WindowCap, st.PeakLive, st.PeakWindow, st.Compactions)
	fmt.Fprintf(c.Out, "cost      : %.4f\n", st.Cost)
	fmt.Fprintf(c.Out, "LB(frac)  : %.4f  (cost/LB = %.4f)\n", st.LowerBound, st.Ratio)
	return nil
}

// cmdReplay drives the scenario engine: a registered workload family (or an
// external CSV trace) replayed offline through the solver, online through a
// rolling-horizon session, and optionally over the framed data plane against
// a running busyschedd — every mode cross-checked against the discrete-event
// simulator before anything is reported.
func (c *CLI) cmdReplay(ctx context.Context, args []string) error {
	fs := newFlagSet(c, "replay")
	name := fs.String("scenario", "diurnal", "registered scenario name (see -list)")
	list := fs.Bool("list", false, "list registered scenarios and exit")
	traceFile := fs.String("trace", "", "replay an external CSV trace instead of a registered scenario")
	seed := fs.Int64("seed", 1, "first random seed")
	seeds := fs.Int("seeds", 1, "number of consecutive seeds to sweep")
	n := fs.Int("n", 0, "target job count (0 = scenario default)")
	g := fs.Int("g", 0, "parallelism parameter (0 = scenario default)")
	algoName := fs.String("algo", "bestfit", "offline solve algorithm")
	policy := fs.String("policy", "firstfit", "online/wire arrival policy")
	modes := fs.String("modes", "offline,online", "replay paths: offline,online,wire (comma-separated)")
	addr := fs.String("addr", "", "busyschedd data-plane address (required for wire mode)")
	tenant := fs.String("tenant", "replay", "wire tenant key")
	release := fs.Float64("release", 0, "fraction of online arrivals departed early")
	repeat := fs.Int("repeat", 1, "offline solve repetitions (latency percentiles)")
	workers := fs.Int("workers", 0, "generation workers (0 = GOMAXPROCS)")
	maxDemand := fs.Int("maxdemand", 0, "maximum per-job demand (0 = scenario default)")
	jsonOut := fs.Bool("json", false, "emit the report(s) as JSON")
	format := fs.String("format", "", `"csv" for one flat row per run`)
	out := fs.String("out", "", "write the report to FILE instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sc := range scenario.All() {
			fmt.Fprintf(c.Out, "  %-10s %s\n", sc.Name, sc.Description)
		}
		return nil
	}
	if *release < 0 || *release > 1 {
		return fmt.Errorf("-release %v out of [0, 1]", *release)
	}
	var sc scenario.Scenario
	if *traceFile != "" {
		sc = scenario.FromCSV(*traceFile)
	} else {
		var ok bool
		sc, ok = scenario.Lookup(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (registered: %s)", *name, strings.Join(scenario.Names(), ", "))
		}
	}
	mode, err := scenario.ParseModes(*modes)
	if err != nil {
		return err
	}
	if mode&scenario.ModeWire != 0 && *addr == "" {
		return fmt.Errorf("wire mode needs -addr")
	}
	cfg := scenario.Config{
		Modes:       mode,
		Algorithm:   *algoName,
		Policy:      *policy,
		Addr:        *addr,
		Tenant:      *tenant,
		ReleaseFrac: *release,
		Repeat:      *repeat,
	}
	var reports []*scenario.Report
	for k := 0; k < max(*seeds, 1); k++ {
		rep, err := scenario.Run(ctx, cfg, sc, scenario.Params{
			Seed:      *seed + int64(k),
			N:         *n,
			G:         *g,
			MaxDemand: *maxDemand,
			Workers:   *workers,
		})
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	w := io.Writer(c.Out)
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	switch {
	case *jsonOut:
		if len(reports) == 1 {
			return stats.WriteJSON(w, reports[0])
		}
		return stats.WriteJSON(w, reports)
	case *format == "csv":
		return scenario.WriteReportsCSV(w, reports)
	case *format != "":
		return fmt.Errorf("unknown -format %q (want csv)", *format)
	}
	for _, rep := range reports {
		c.printReport(w, rep)
	}
	return nil
}

// printReport renders one scenario report for terminals.
func (c *CLI) printReport(w io.Writer, rep *scenario.Report) {
	fmt.Fprintf(w, "scenario  : %s seed=%d jobs=%d g=%d  (generated in %v)\n",
		rep.Scenario, rep.Params.Seed, rep.Jobs, rep.G, rep.GenTime.Round(time.Microsecond))
	if o := rep.Offline; o != nil {
		fmt.Fprintf(w, "offline   : %s  machines=%d cost=%.4f LB=%.4f gap=%.4f ratio=%.4f  [sim ok]\n",
			o.Algorithm, o.Machines, o.Cost, o.LowerBound, o.Gap, o.Ratio)
		fmt.Fprintf(w, "  solve   : p50=%v p99=%v max=%v  (%d solves)\n",
			o.Latency.P50, o.Latency.P99, o.Latency.Max, o.Solves)
	}
	if o := rep.Online; o != nil {
		fmt.Fprintf(w, "online    : %s  cost=%.4f LB=%.4f ratio=%.4f  placed=%d released=%d machines=%d  [sim ok]\n",
			o.Policy, o.Stats.Cost, o.Stats.LowerBound, o.Stats.Ratio, o.Stats.Placed, o.Released, o.Stats.Machines)
		fmt.Fprintf(w, "  place   : p50=%v p99=%v max=%v\n", o.Latency.P50, o.Latency.P99, o.Latency.Max)
	}
	if o := rep.Wire; o != nil {
		fmt.Fprintf(w, "wire      : %s tenant=%s  placed=%d rejected=%d  server cost=%.4f ratio=%.4f\n",
			o.Addr, o.Tenant, o.Placed, o.Rejected, o.Stats.Cost, o.Stats.Ratio)
		fmt.Fprintf(w, "  batch   : p50=%v p99=%v max=%v  (batch=%d)\n",
			o.Latency.P50, o.Latency.P99, o.Latency.Max, o.BatchSize)
	}
	if len(rep.Metrics) > 0 {
		fmt.Fprintf(w, "metrics   :")
		for _, m := range rep.Metrics {
			fmt.Fprintf(w, " %s=%g", m.Name, m.Value)
		}
		fmt.Fprintln(w)
	}
}

// generateInstance builds one instance of the named class; it is the single
// switch behind both `generate` and `batch`, so the kinds and their
// conventions cannot drift apart. d is the length bound of the bounded
// class; the others ignore it.
func generateInstance(kind string, seed int64, n, g int, horizon, maxLen, d float64) (*core.Instance, error) {
	switch kind {
	case "general":
		return generator.General(seed, n, g, horizon, maxLen), nil
	case "proper":
		return generator.Proper(seed, n, g, horizon, maxLen), nil
	case "clique":
		return generator.Clique(seed, n, g, horizon/2, maxLen), nil
	case "bounded":
		segs := int(horizon / d)
		if segs < 1 {
			segs = 1
		}
		return generator.BoundedLength(seed, n, g, segs, d), nil
	case "poisson":
		// Rate chosen so the expected job count matches n.
		return trace.Poisson(seed, g, float64(n)/horizon, horizon, maxLen/2), nil
	case "diurnal":
		days := int(horizon / 24)
		if days < 1 {
			days = 1
		}
		peak := float64(n) / (float64(days) * 12) // rough midday rate
		return trace.Diurnal(seed, g, days, peak/8, peak, maxLen/2), nil
	case "burst":
		return generator.CloudBurst(seed, n, g, horizon, maxLen, 8, 0.5), nil
	case "waves":
		waves := 10
		perWave := n / waves
		if perWave < 1 {
			perWave = 1
		}
		return generator.LightpathWave(seed, waves, perWave, g, horizon/float64(waves), horizon/float64(4*waves), maxLen), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

// newFlagSet builds a flag set that reports parse errors on the CLI's
// error stream instead of exiting the process.
func newFlagSet(c *CLI, name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(c.Err)
	return fs
}
