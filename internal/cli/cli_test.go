package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busytime"
	"busytime/internal/core"
)

// run invokes the CLI and returns (exit code, stdout, stderr).
func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgsShowsUsage(t *testing.T) {
	code, _, errOut := run()
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage: busysched") {
		t.Errorf("usage missing: %q", errOut)
	}
	if !strings.Contains(errOut, "firstfit") {
		t.Error("usage should list registered algorithms")
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, errOut := run("frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
}

func TestHelp(t *testing.T) {
	code, _, errOut := run("help")
	if code != 0 || !strings.Contains(errOut, "commands:") {
		t.Errorf("help: code=%d err=%q", code, errOut)
	}
}

func TestGenerateToStdout(t *testing.T) {
	code, out, errOut := run("generate", "-kind", "general", "-n", "5", "-g", "2", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, `"jobs"`) {
		t.Errorf("no JSON instance on stdout: %q", out)
	}
}

func TestGenerateBadKind(t *testing.T) {
	code, _, errOut := run("generate", "-kind", "nonsense")
	if code != 1 || !strings.Contains(errOut, "unknown kind") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
}

func TestGenerateBadFlag(t *testing.T) {
	code, _, _ := run("generate", "-definitely-not-a-flag")
	if code != 1 {
		t.Errorf("bad flag exit = %d, want 1", code)
	}
}

// writeInstance generates an instance file in a temp dir and returns its path.
func writeInstance(t *testing.T, kind string, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	code, _, errOut := run("generate", "-kind", kind, "-n", "10", "-g", "2", "-seed", "5", "-out", path)
	if code != 0 {
		t.Fatalf("generate: %s", errOut)
	}
	return path
}

func TestSolveAndReplay(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, out, errOut := run("solve", "-algo", "firstfit", "-in", path, "-replay")
	if code != 0 {
		t.Fatalf("solve: %s", errOut)
	}
	for _, want := range []string{"machines", "cost", "LB(frac)", "replay   : ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("solve output missing %q:\n%s", want, out)
		}
	}
}

func TestSolveSchedulOutFile(t *testing.T) {
	path := writeInstance(t, "general", 10)
	sched := filepath.Join(t.TempDir(), "sched.json")
	code, _, errOut := run("solve", "-algo", "firstfit", "-in", path, "-out", sched)
	if code != 0 {
		t.Fatalf("solve: %s", errOut)
	}
	data, err := os.ReadFile(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"assignment"`) {
		t.Error("schedule file missing assignment")
	}
}

func TestSolveUnknownAlgo(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, _, errOut := run("solve", "-algo", "nope", "-in", path)
	if code != 1 || !strings.Contains(errOut, "unknown algorithm") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
}

func TestSolveMissingInput(t *testing.T) {
	code, _, errOut := run("solve", "-algo", "firstfit")
	if code != 1 || !strings.Contains(errOut, "missing -in") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
}

func TestEval(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, out, errOut := run("eval", "-in", path)
	if code != 0 {
		t.Fatalf("eval: %s", errOut)
	}
	for _, want := range []string{"firstfit", "nextfit", "cost/LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("eval output missing %q", want)
		}
	}
}

func TestBounds(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, out, errOut := run("bounds", "-in", path)
	if code != 0 {
		t.Fatalf("bounds: %s", errOut)
	}
	for _, want := range []string{"span", "parallelism", "fractional", "components"} {
		if !strings.Contains(out, want) {
			t.Errorf("bounds output missing %q:\n%s", want, out)
		}
	}
}

func TestShow(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, out, errOut := run("show", "-in", path, "-width", "40")
	if code != 0 {
		t.Fatalf("show: %s", errOut)
	}
	if !strings.Contains(out, "depth profile") || !strings.Contains(out, "M0") {
		t.Errorf("show output incomplete:\n%s", out)
	}
}

func TestSimulate(t *testing.T) {
	path := writeInstance(t, "general", 10)
	code, out, errOut := run("simulate", "-in", path)
	if code != 0 {
		t.Fatalf("simulate: %s", errOut)
	}
	if !strings.Contains(out, "violations 0") {
		t.Errorf("simulate output:\n%s", out)
	}
}

func TestConvertRoundTrip(t *testing.T) {
	path := writeInstance(t, "general", 10)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "inst.csv")
	backPath := filepath.Join(dir, "back.json")
	if code, _, errOut := run("convert", "-in", path, "-out", csvPath); code != 0 {
		t.Fatalf("to csv: %s", errOut)
	}
	if code, _, errOut := run("convert", "-in", csvPath, "-out", backPath); code != 0 {
		t.Fatalf("to json: %s", errOut)
	}
	// CSV does not carry the instance name, so compare semantically.
	a := readInstanceFile(t, path)
	b := readInstanceFile(t, backPath)
	if a.G != b.G || a.N() != b.N() {
		t.Fatalf("round trip changed shape: g %d→%d, n %d→%d", a.G, b.G, a.N(), b.N())
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Errorf("job %d changed: %+v → %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func readInstanceFile(t *testing.T, path string) *core.Instance {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := core.ReadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestConvertMissingFlags(t *testing.T) {
	code, _, errOut := run("convert", "-in", "x.json")
	if code != 1 || !strings.Contains(errOut, "convert needs") {
		t.Errorf("code=%d err=%q", code, errOut)
	}
}

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []string{"general", "proper", "clique", "bounded", "poisson", "diurnal"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "inst.json")
			code, _, errOut := run("generate", "-kind", kind, "-n", "20", "-g", "3",
				"-seed", "7", "-horizon", "48", "-out", path)
			if code != 0 {
				t.Fatalf("generate %s: %s", kind, errOut)
			}
			if code, _, errOut := run("eval", "-in", path); code != 0 {
				t.Fatalf("eval %s: %s", kind, errOut)
			}
		})
	}
}

func TestOnlineStream(t *testing.T) {
	code, out, errOut := run("online", "-n", "5000", "-live", "100", "-g", "3",
		"-maxdemand", "2", "-release", "0.25", "-window", "128", "-seed", "11")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"placed    : 5000", "released", "compactions", "cost/LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestOnlineJSON(t *testing.T) {
	code, out, errOut := run("online", "-n", "5000", "-live", "100", "-g", "3",
		"-maxdemand", "2", "-release", "0.25", "-window", "128", "-seed", "11", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var st busytime.OnlineStats
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("-json output is not an OnlineStats document: %v\n%s", err, out)
	}
	if st.Placed != 5000 || st.Cost <= 0 || st.Ratio < 1 {
		t.Fatalf("decoded stats: %+v", st)
	}
	// Same stream, same stats: the JSON document and the text report come
	// from one Stats() snapshot shape.
	code2, out2, _ := run("online", "-n", "5000", "-live", "100", "-g", "3",
		"-maxdemand", "2", "-release", "0.25", "-window", "128", "-seed", "11")
	if code2 != 0 || !strings.Contains(out2, fmt.Sprintf("placed    : %d", st.Placed)) {
		t.Fatalf("text/json divergence: %+v vs\n%s", st, out2)
	}
}

func TestOnlineBadFlags(t *testing.T) {
	if code, _, errOut := run("online", "-policy", "nonsense"); code != 1 ||
		!strings.Contains(errOut, "unknown online policy") {
		t.Errorf("bad policy: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("online", "-release", "1.5"); code != 1 ||
		!strings.Contains(errOut, "out of [0, 1]") {
		t.Errorf("bad release fraction: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("online", "-window", "-1"); code != 1 ||
		!strings.Contains(errOut, "WithWindow") {
		t.Errorf("bad window: code=%d err=%q", code, errOut)
	}
}

func TestReplayList(t *testing.T) {
	code, out, errOut := run("replay", "-list")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, name := range []string{"diurnal", "poisson", "ring", "lightpath"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %q:\n%s", name, out)
		}
	}
}

func TestReplayText(t *testing.T) {
	code, out, errOut := run("replay", "-scenario", "diurnal", "-n", "500",
		"-seed", "3", "-release", "0.1", "-repeat", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"scenario  : diurnal", "offline   :", "online    :", "[sim ok]", "ratio="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplayJSON(t *testing.T) {
	code, out, errOut := run("replay", "-scenario", "diurnal", "-n", "400", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var rep struct {
		Scenario string `json:"scenario"`
		Jobs     int    `json:"jobs"`
		Offline  *struct {
			Cost         float64 `json:"cost"`
			Ratio        float64 `json:"ratio"`
			CrossChecked bool    `json:"cross_checked"`
		} `json:"offline"`
		Online *struct {
			Stats busytime.OnlineStats `json:"stats"`
		} `json:"online"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out)
	}
	if rep.Scenario != "diurnal" || rep.Jobs == 0 {
		t.Fatalf("decoded report: %+v", rep)
	}
	if rep.Offline == nil || !rep.Offline.CrossChecked || rep.Offline.Ratio < 1 {
		t.Fatalf("offline section: %+v", rep.Offline)
	}
	if rep.Online == nil || rep.Online.Stats.Ratio < 1 {
		t.Fatalf("online section: %+v", rep.Online)
	}
}

func TestReplaySeedSweepCSV(t *testing.T) {
	code, out, errOut := run("replay", "-scenario", "poisson", "-n", "300",
		"-seeds", "3", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header+3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scenario,seed,") {
		t.Errorf("header %q", lines[0])
	}
}

func TestReplayTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(path, []byte("#g,2\nid,start,end,demand\n0,0,3,1\n1,1,4,1\n2,2,6,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := run("replay", "-trace", path, "-modes", "offline")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "jobs=3") || !strings.Contains(out, "[sim ok]") {
		t.Fatalf("trace replay report:\n%s", out)
	}
}

func TestReplayBadFlags(t *testing.T) {
	if code, _, errOut := run("replay", "-scenario", "nope"); code != 1 ||
		!strings.Contains(errOut, "unknown scenario") {
		t.Errorf("bad scenario: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("replay", "-modes", "wire"); code != 1 ||
		!strings.Contains(errOut, "needs -addr") {
		t.Errorf("wire without addr: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run("replay", "-modes", "bogus"); code != 1 ||
		!strings.Contains(errOut, "unknown mode") {
		t.Errorf("bad modes: code=%d err=%q", code, errOut)
	}
}
