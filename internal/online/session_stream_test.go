package online

import (
	"math"
	"testing"

	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
	"busytime/internal/xrand"
)

// refSession is the rebuild-from-scratch oracle for the rolling-horizon
// session: full history, no compaction, no incremental state — every
// decision recomputed naively from effective intervals. Streams are drawn on
// a dyadic grid so every measure and delta is exact in float64 and the
// differential can compare costs and argmin decisions bitwise.
type refSession struct {
	g      int
	rule   sessionRule
	jobs   []refJob
	nmach  int
	cursor int
	clock  float64
}

type refJob struct {
	iv       interval.Interval // effective (End clipped at release)
	demand   int
	machine  int
	released bool
}

func newRefSession(g int, rule sessionRule) *refSession {
	return &refSession{g: g, rule: rule, cursor: -1, clock: math.Inf(-1)}
}

// active reports whether job j holds capacity at time c: closed-interval
// semantics on the effective interval, uniformly for natural and early
// departures (a released job keeps its slot at the release instant).
func (r *refSession) active(j int, c float64) bool {
	return r.jobs[j].iv.End >= c
}

func (r *refSession) usedAt(m int, c float64) int {
	used := 0
	for j := range r.jobs {
		if r.jobs[j].machine == m && r.active(j, c) {
			used += r.jobs[j].demand
		}
	}
	return used
}

func (r *refSession) union(m int) interval.Set {
	var set interval.Set
	for j := range r.jobs {
		if r.jobs[j].machine == m {
			set = append(set, r.jobs[j].iv)
		}
	}
	return set
}

func (r *refSession) place(iv interval.Interval, demand int) int {
	c := iv.Start
	var m int
	switch r.rule {
	case ruleLowestFit:
		m = r.nmach
		for cand := 0; cand < r.nmach; cand++ {
			if r.usedAt(cand, c)+demand <= r.g {
				m = cand
				break
			}
		}
	case ruleBestFit:
		m = -1
		best := 0.0
		for cand := 0; cand < r.nmach; cand++ {
			if r.usedAt(cand, c)+demand > r.g {
				continue
			}
			set := r.union(cand)
			delta := append(set.Clone(), iv).Span() - set.Span()
			if m < 0 || delta < best {
				m, best = cand, delta
			}
		}
		if m < 0 {
			m = r.nmach
		}
	default: // nextFit
		if r.cursor >= 0 && r.usedAt(r.cursor, c)+demand <= r.g {
			m = r.cursor
		} else {
			m = r.nmach
		}
		r.cursor = m
	}
	if m == r.nmach {
		r.nmach++
	}
	r.jobs = append(r.jobs, refJob{iv: iv, demand: demand, machine: m})
	r.clock = c
	return m
}

func (r *refSession) release(j int) bool {
	jb := &r.jobs[j]
	if jb.released || jb.iv.End < r.clock {
		return false
	}
	jb.released = true
	if jb.iv.End > r.clock {
		jb.iv.End = r.clock
	}
	return true
}

func (r *refSession) cost() float64 {
	total := 0.0
	for m := 0; m < r.nmach; m++ {
		total += r.union(m).Span()
	}
	return total
}

func (r *refSession) live() int {
	n := 0
	for j := range r.jobs {
		if r.active(j, r.clock) {
			n++
		}
	}
	return n
}

// dead reports whether job j no longer holds capacity (released, or its end
// passed by the clock).
func (r *refSession) dead(j int) bool { return !r.active(j, r.clock) }

// runRollingDifferential drives a Session and the oracle through the same
// dyadic-grid Place/Release stream and pins every observable step by step.
func runRollingDifferential(t *testing.T, seed int64, n, g int, rule sessionRule, policy Policy) {
	t.Helper()
	rng := xrand.New(seed)
	sess, err := NewSession(g, policy)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefSession(g, rule)
	clock := 0.0
	placed := 0
	for placed < n {
		if placed > 0 && rng.Intn(3) == 0 { // release a random past job
			j := rng.Intn(placed)
			got, err := sess.Release(j)
			if err != nil {
				t.Fatalf("seed %d: Release(%d): %v", seed, j, err)
			}
			if want := ref.release(j); got != want {
				t.Fatalf("seed %d: Release(%d) = %v, oracle %v", seed, j, got, want)
			}
		} else {
			clock += float64(rng.Intn(8)) / 4
			iv := interval.Interval{Start: clock, End: clock + float64(rng.Intn(40))/4}
			demand := 1 + rng.Intn(g)
			m, err := sess.Place(iv, demand)
			if err != nil {
				t.Fatalf("seed %d: Place %v: %v", seed, iv, err)
			}
			if want := ref.place(iv, demand); m != want {
				t.Fatalf("seed %d job %d %v: session machine %d, oracle %d", seed, placed, iv, m, want)
			}
			placed++
		}
		if sess.Cost() != ref.cost() {
			t.Fatalf("seed %d after %d jobs: session cost %v, oracle %v (dyadic grid: must be exact)",
				seed, placed, sess.Cost(), ref.cost())
		}
		if sess.Machines() != ref.nmach {
			t.Fatalf("seed %d: session machines %d, oracle %d", seed, sess.Machines(), ref.nmach)
		}
		if sess.Live() != ref.live() {
			t.Fatalf("seed %d: session live %d, oracle %d", seed, sess.Live(), ref.live())
		}
	}
	// MachineOf: within the retained window the assignment is history; a
	// record compacted away must have been dead in the oracle too.
	for j := 0; j < placed; j++ {
		if m := sess.MachineOf(j); m >= 0 {
			if m != ref.jobs[j].machine {
				t.Fatalf("seed %d: MachineOf(%d) = %d, oracle %d", seed, j, m, ref.jobs[j].machine)
			}
		} else if !ref.dead(j) {
			t.Fatalf("seed %d: MachineOf(%d) = -1 but oracle job is live", seed, j)
		}
	}
}

func TestOnlineSessionRollingDifferential(t *testing.T) {
	for _, tc := range []struct {
		name   string
		rule   sessionRule
		policy Policy
	}{
		{"firstfit", ruleLowestFit, FirstFit{}},
		{"bestfit", ruleBestFit, BestFit{}},
		{"nextfit", ruleNextFit, NextFit{}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				for _, g := range []int{1, 3, 8} {
					runRollingDifferential(t, seed, 250, g, tc.rule, tc.policy)
				}
			}
		})
	}
}

// FuzzOnlineSessionRollingOracle is the fuzz leg of the differential: the
// fuzzer picks the stream seed, length, parallelism and policy, and the
// interleaved Place/Release/compaction run must stay step-bitwise equal to
// the rebuild-from-scratch oracle.
func FuzzOnlineSessionRollingOracle(f *testing.F) {
	f.Add(int64(1), uint8(120), uint8(3), uint8(0))
	f.Add(int64(42), uint8(200), uint8(1), uint8(1))
	f.Add(int64(7), uint8(80), uint8(6), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n, g, policyByte uint8) {
		if n == 0 || g == 0 {
			t.Skip()
		}
		var rule sessionRule
		var policy Policy
		switch policyByte % 3 {
		case 0:
			rule, policy = ruleLowestFit, FirstFit{}
		case 1:
			rule, policy = ruleBestFit, BestFit{}
		default:
			rule, policy = ruleNextFit, NextFit{}
		}
		runRollingDifferential(t, seed, int(n), int(g), rule, policy)
	})
}

// TestOnlineSessionReleaseSemantics pins the un-billing arithmetic on a
// hand-built scenario.
func TestOnlineSessionReleaseSemantics(t *testing.T) {
	sess, err := NewSession(2, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs share machine 0; a third overflows to machine 1.
	if m, _ := sess.Place(interval.Interval{Start: 0, End: 10}, 1); m != 0 {
		t.Fatalf("job 0 on machine %d, want 0", m)
	}
	if m, _ := sess.Place(interval.Interval{Start: 1, End: 4}, 1); m != 0 {
		t.Fatalf("job 1 on machine %d, want 0", m)
	}
	if m, _ := sess.Place(interval.Interval{Start: 2, End: 6}, 2); m != 1 {
		t.Fatalf("job 2 on machine %d, want 1", m)
	}
	if got := sess.Cost(); got != 14 {
		t.Fatalf("cost %v, want 14", got)
	}
	// Releasing job 0 at clock 2 clips machine 0's busy span back to the
	// latest remaining end (job 1 runs to 4): cost drops by 10-4 = 6.
	if ok, err := sess.Release(0); !ok || err != nil {
		t.Fatalf("Release(0) = %v, %v", ok, err)
	}
	if got := sess.Cost(); got != 8 {
		t.Fatalf("cost after release %v, want 8", got)
	}
	// Double release is a no-op.
	if ok, err := sess.Release(0); ok || err != nil {
		t.Fatalf("second Release(0) = %v, %v; want false, nil", ok, err)
	}
	// Releasing job 2 leaves machine 1 fully idle: its whole remaining span
	// beyond the clock is un-billed (it ran [2,2], measure 0 beyond... the
	// span [2,6] clips to [2,2]) and the machine returns to the free pool.
	if ok, _ := sess.Release(2); !ok {
		t.Fatal("Release(2) refused")
	}
	if got := sess.Cost(); got != 4 {
		t.Fatalf("cost after releasing job 2: %v, want 4", got)
	}
	// The next arrival that fits probes the freed machine only after lower
	// indices: machine 0 still has capacity, so it wins; a conflicting
	// arrival lands on freed machine 1 instead of opening machine 2.
	if m, _ := sess.Place(interval.Interval{Start: 3, End: 5}, 1); m != 0 {
		t.Fatalf("reuse arrival on machine %d, want 0", m)
	}
	if m, _ := sess.Place(interval.Interval{Start: 3, End: 5}, 2); m != 1 {
		t.Fatalf("heavy arrival on machine %d, want freed machine 1", m)
	}
	if sess.Machines() != 2 {
		t.Fatalf("machines %d, want 2 (free pool reused)", sess.Machines())
	}
	// Future and negative indices are errors.
	if _, err := sess.Release(99); err == nil {
		t.Fatal("Release(99) accepted")
	}
	if _, err := sess.Release(-1); err == nil {
		t.Fatal("Release(-1) accepted")
	}
}

// TestOnlineSessionStatsLowerBound pins the incremental fractional bound to
// the offline computation over the effective instance, and the live ratio to
// cost/bound ≥ 1.
func TestOnlineSessionStatsLowerBound(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := xrand.New(seed)
		const n = 300
		g := 1 + rng.Intn(6)
		sess, err := NewSessionSized(g, FirstFit{}, n) // presized: nothing compacts
		if err != nil {
			t.Fatal(err)
		}
		clock := 0.0
		for placed := 0; placed < n; {
			if placed > 0 && rng.Intn(4) == 0 {
				if _, err := sess.Release(rng.Intn(placed)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			clock += rng.Float64()
			iv := interval.Interval{Start: clock, End: clock + rng.Float64()*8}
			if _, err := sess.Place(iv, 1+rng.Intn(g)); err != nil {
				t.Fatal(err)
			}
			placed++
		}
		st := sess.Stats()
		want := core.FractionalBound(sess.Instance())
		if math.Abs(st.LowerBound-want) > 1e-9*(1+want) {
			t.Fatalf("seed %d: incremental bound %v, offline FractionalBound %v", seed, st.LowerBound, want)
		}
		if st.LowerBound > 0 && st.Cost < st.LowerBound-1e-9 {
			t.Fatalf("seed %d: cost %v below lower bound %v", seed, st.Cost, st.LowerBound)
		}
		if st.Ratio < 1-1e-9 {
			t.Fatalf("seed %d: live competitive ratio %v < 1", seed, st.Ratio)
		}
		// A far-future sentinel arrival flushes every pending departure, so
		// the counters partition the departed set exactly.
		if _, err := sess.Place(interval.Interval{Start: clock + 1e6, End: clock + 1e6}, 1); err != nil {
			t.Fatal(err)
		}
		st = sess.Stats()
		if st.Placed != n+1 || int(st.Released+st.Expired) != int(st.Placed)-st.Live {
			t.Fatalf("seed %d: counters placed=%d released=%d expired=%d live=%d don't partition",
				seed, st.Placed, st.Released, st.Expired, st.Live)
		}
	}
}

// TestOnlineSessionSnapshotAfterRelease pins snapshot self-consistency: the
// materialized window schedule verifies (released capacity re-used by later
// arrivals never double-books) and costs exactly the session's accrual when
// nothing has been compacted away.
func TestOnlineSessionSnapshotAfterRelease(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := xrand.New(seed)
		const n = 200
		sess, err := NewSessionSized(3, BestFit{}, n)
		if err != nil {
			t.Fatal(err)
		}
		clock := 0.0
		for placed := 0; placed < n; {
			if placed > 0 && rng.Intn(3) == 0 {
				if _, err := sess.Release(rng.Intn(placed)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			clock += float64(rng.Intn(6)) / 4
			iv := interval.Interval{Start: clock, End: clock + float64(rng.Intn(32))/4}
			if _, err := sess.Place(iv, 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
			placed++
		}
		sched, err := sess.Snapshot()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := sched.Cost(), sess.Cost(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: snapshot cost %v != session cost %v", seed, got, want)
		}
	}
}

// streamFeeder drives a session through a generator.Stream, releasing a
// fixed fraction of jobs early, deterministically.
type streamFeeder struct {
	sess *Session
	jobs []generator.StreamJob
	rng  *xrand.RNG
	next int
}

func (fd *streamFeeder) step(t testing.TB) {
	j := fd.jobs[fd.next]
	id := fd.sess.Jobs()
	if _, err := fd.sess.Place(j.Iv, j.Demand); err != nil {
		t.Fatal(err)
	}
	fd.next++
	if fd.rng.Intn(4) == 0 { // release ~25% of jobs early
		if _, err := fd.sess.Release(id - fd.rng.Intn(min(id+1, 64))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOnlineSessionZeroAllocSteadyState pins the rolling-horizon hot path —
// Place with automatic expiry, explicit Release, window compaction and a
// Stats read — to zero heap allocations once the session is warm.
func TestOnlineSessionZeroAllocSteadyState(t *testing.T) {
	const live = 256
	jobs := generator.Stream(5, 120_000, live, 3)
	sess, err := NewSession(8, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	fd := &streamFeeder{sess: sess, jobs: jobs, rng: xrand.New(17)}
	for fd.next < 60_000 { // warm: caps reach their high-water marks
		fd.step(t)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 500; i++ {
			fd.step(t)
		}
		if st := sess.Stats(); st.Live <= 0 {
			t.Fatal("stream drained during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm rolling session allocated %v times per 500-op batch; want 0", allocs)
	}
}

// TestOnlineSessionWindowBoundedMemory pins the tentpole memory claim: on
// equal-length 1M-job streams, the session's retained-window high-water
// marks scale with the live window, not the stream length.
func TestOnlineSessionWindowBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-job streams")
	}
	const n = 1_000_000
	run := func(live int) Stats {
		sess, err := NewSession(64, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range generator.Stream(9, n, live, 1) {
			if _, err := sess.Place(j.Iv, j.Demand); err != nil {
				t.Fatal(err)
			}
		}
		return sess.Stats()
	}
	small, large := run(1_000), run(10_000)
	for _, c := range []struct {
		name string
		st   Stats
		live int
	}{{"live=1e3", small, 1_000}, {"live=1e4", large, 10_000}} {
		// The retained window (and its backing capacity) must track the
		// live population, not the 1M-job stream: compaction reclaims at
		// least half the array before any growth, so the cap stays within a
		// small constant of the peak window.
		if c.st.PeakWindow > 8*c.live {
			t.Errorf("%s: peak window %d > 8x live target", c.name, c.st.PeakWindow)
		}
		if c.st.WindowCap > 16*c.live {
			t.Errorf("%s: window cap %d > 16x live target", c.name, c.st.WindowCap)
		}
		if c.st.Placed != n || c.st.Expired == 0 || c.st.Compactions == 0 {
			t.Errorf("%s: stream did not exercise departures+compaction: %+v", c.name, c.st)
		}
	}
	if small.WindowCap >= large.WindowCap {
		t.Errorf("window cap does not scale with the live window: live=1e3 cap %d ≥ live=1e4 cap %d",
			small.WindowCap, large.WindowCap)
	}
}
