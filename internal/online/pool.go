package online

import (
	"fmt"
	"sync"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Pool is sharded multi-tenant session state: one rolling-horizon Session
// per tenant key, distributed over power-of-two lock shards so concurrent
// tenants contend only when they hash together. Sessions are created on
// first placement with the pool's parallelism, policy and window hint; all
// per-tenant operations run under the owning shard's lock, so a Pool is safe
// for concurrent use while each underlying Session stays single-threaded.
//
// The optional scratch channel — the same recycled-arena pool the batch
// engine leases from — powers Offline: an on-demand replay of a tenant's
// retained window through the offline kernel on a leased arena, yielding the
// exact competitive comparison (online cost vs. offline cost vs. the
// window's CachedBounds) without allocating schedule state per call.
type Pool struct {
	g       int
	policy  Policy
	window  int
	mask    uint32
	shards  []poolShard
	scratch chan *core.Scratch // nil: Offline unavailable
}

type poolShard struct {
	mu      sync.Mutex
	tenants map[string]*Session
}

// NewPool returns an empty pool of rolling-horizon sessions with parallelism
// g placing through policy p. shards is rounded up to a power of two (≤ 1
// means a single shard); window is the per-session live-window presize hint
// (see NewSessionSized). scratch may be nil, disabling Offline.
func NewPool(g int, p Policy, shards, window int, scratch chan *core.Scratch) (*Pool, error) {
	if _, err := NewSessionSized(g, p, 0); err != nil {
		return nil, err // validates g and the policy once up front
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	pool := &Pool{
		g:       g,
		policy:  p,
		window:  window,
		mask:    uint32(n - 1),
		shards:  make([]poolShard, n),
		scratch: scratch,
	}
	for i := range pool.shards {
		pool.shards[i].tenants = make(map[string]*Session)
	}
	return pool, nil
}

// shard hashes the tenant key with FNV-1a onto a lock shard.
func (p *Pool) shard(tenant string) *poolShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return &p.shards[uint32(h)&p.mask]
}

// session returns the tenant's session, creating it on first use. Callers
// hold sh.mu.
func (p *Pool) session(sh *poolShard, tenant string) *Session {
	s := sh.tenants[tenant]
	if s == nil {
		s, _ = NewSessionSized(p.g, p.policy, p.window) // args validated in NewPool
		sh.tenants[tenant] = s
	}
	return s
}

// Place feeds the tenant's next arrival; see Session.Place. The returned
// feed index (the tenant's Jobs() before the call) is the Release handle.
func (p *Pool) Place(tenant string, iv interval.Interval, demand int) (machine, job int, err error) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := p.session(sh, tenant)
	job = s.Jobs()
	machine, err = s.Place(iv, demand)
	if err != nil {
		return -1, -1, err
	}
	return machine, job, nil
}

// Release departs the tenant's job early; see Session.Release. A tenant with
// no session reports (false, nil) like an already-departed job.
func (p *Pool) Release(tenant string, job int) (bool, error) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.tenants[tenant]
	if s == nil {
		return false, nil
	}
	return s.Release(job)
}

// Stats snapshots the tenant's session telemetry; ok is false for a tenant
// that never placed.
func (p *Pool) Stats(tenant string) (Stats, bool) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.tenants[tenant]
	if s == nil {
		return Stats{}, false
	}
	return s.Stats(), true
}

// Drop discards the tenant's session and reports whether one existed.
func (p *Pool) Drop(tenant string) bool {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.tenants[tenant]
	delete(sh.tenants, tenant)
	return ok
}

// Tenants returns every tenant key currently holding a session, in no
// particular order.
func (p *Pool) Tenants() []string {
	var out []string
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for k := range sh.tenants {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Comparison is Offline's verdict on one tenant's retained window.
type Comparison struct {
	OnlineCost float64     // the session's total accrued busy time
	WindowCost float64     // the policy's replay cost of the retained window alone
	Bounds     core.Bounds // offline lower bounds of the retained-window instance
	Ratio      float64     // WindowCost / Bounds.Fractional: the window's competitive ratio
}

// Offline replays the tenant's retained window through the pool's policy on
// an arena leased from the shared scratch pool and reports the competitive
// comparison. The window instance is snapshotted under the shard lock; the
// replay itself runs unlocked, so a slow comparison never stalls the
// tenant's placement path. Errors: no scratch pool configured, unknown
// tenant, or an infeasible replay (a bug).
func (p *Pool) Offline(tenant string) (Comparison, error) {
	if p.scratch == nil {
		return Comparison{}, fmt.Errorf("online: pool has no scratch arenas; Offline unavailable")
	}
	sh := p.shard(tenant)
	sh.mu.Lock()
	s := sh.tenants[tenant]
	if s == nil {
		sh.mu.Unlock()
		return Comparison{}, fmt.Errorf("online: unknown tenant %q", tenant)
	}
	in := s.Instance() // fresh copy: safe to release the lock
	online := s.Cost()
	sh.mu.Unlock()

	sc := <-p.scratch
	defer func() { p.scratch <- sc }()
	sched, err := RunScratch(in, sc, p.policy)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{
		OnlineCost: online,
		WindowCost: sched.Cost(),
		Bounds:     in.CachedBounds(),
	}
	if cmp.Bounds.Fractional > 0 {
		cmp.Ratio = cmp.WindowCost / cmp.Bounds.Fractional
	}
	return cmp, nil
}
