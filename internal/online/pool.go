package online

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Admission is a pool's per-tenant acceptance policy. The zero value admits
// everything; either limit alone may be set.
//
// MaxLive caps the number of simultaneously live jobs a tenant may hold:
// a Place that would exceed it is rejected with ErrLiveLimit, making a
// tenant's worst-case machine footprint (and the pool's per-tenant memory)
// a configured constant instead of whatever the stream does.
//
// Rate and Burst form a per-tenant token bucket over placement attempts:
// tokens refill at Rate per second up to Burst (0 defaults to Rate, minimum
// 1), each Place spends one, and an empty bucket rejects with ErrRateLimit.
// The bucket charges accepted and rejected placements alike — a tenant
// hammering rejects is exactly the tenant the limiter exists for — but
// Release, Stats and Offline are free: draining load is never throttled.
type Admission struct {
	MaxLive int     // max live jobs per tenant; 0 = unlimited
	Rate    float64 // sustained placements/sec per tenant; 0 = unlimited
	Burst   int     // token bucket depth; 0 derives max(1, ⌈Rate⌉)
}

// limited reports whether the policy constrains anything.
func (a Admission) limited() bool { return a.MaxLive > 0 || a.Rate > 0 }

// Validate rejects negative limits and NaN rates.
func (a Admission) Validate() error {
	if a.MaxLive < 0 {
		return fmt.Errorf("online: Admission.MaxLive = %d, want ≥ 0", a.MaxLive)
	}
	if a.Rate < 0 || a.Rate != a.Rate {
		return fmt.Errorf("online: Admission.Rate = %v, want ≥ 0", a.Rate)
	}
	if a.Burst < 0 {
		return fmt.Errorf("online: Admission.Burst = %d, want ≥ 0", a.Burst)
	}
	return nil
}

// Typed admission and lifecycle rejections. They are sentinel values —
// allocation-free to return on the hot path and matchable with errors.Is
// through every wrapping layer (the public facade, the daemon's reject
// frames).
var (
	// ErrLiveLimit rejects a placement that would exceed the tenant's
	// configured live-job cap; capacity frees as the tenant's jobs depart.
	ErrLiveLimit = errors.New("online: admission: tenant live-job limit reached")
	// ErrRateLimit rejects a placement arriving faster than the tenant's
	// configured sustained rate; the token bucket refills continuously.
	ErrRateLimit = errors.New("online: admission: tenant placement rate exceeded")
	// ErrPoolClosed rejects new work on a pool that has begun draining.
	ErrPoolClosed = errors.New("online: pool is draining; new placements rejected")
)

// Pool is sharded multi-tenant session state: one rolling-horizon Session
// per tenant key, distributed over power-of-two lock shards so concurrent
// tenants contend only when they hash together. Sessions are created on
// first placement with the pool's parallelism, policy and window hint; all
// per-tenant operations run under the owning shard's lock, so a Pool is safe
// for concurrent use while each underlying Session stays single-threaded.
//
// The optional scratch channel — the same recycled-arena pool the batch
// engine leases from — powers Offline: an on-demand replay of a tenant's
// retained window through the offline kernel on a leased arena, yielding the
// exact competitive comparison (online cost vs. offline cost vs. the
// window's CachedBounds) without allocating schedule state per call.
//
// A pool optionally enforces an Admission policy per tenant (SetAdmission)
// and supports a one-way drain switch (Close) that rejects new placements
// with ErrPoolClosed while leaving Release, Stats and Offline available to
// finish in-flight work — the daemon's graceful-shutdown contract.
type Pool struct {
	g       int
	policy  Policy
	window  int
	mask    uint32
	shards  []poolShard
	scratch chan *core.Scratch // nil: Offline unavailable

	adm    Admission
	burst  float64
	closed atomic.Bool
	epoch  time.Time // monotonic origin of the token-bucket clock
	now    func() int64
}

type poolShard struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState pairs a tenant's session with its admission bookkeeping; both
// live and die together under the owning shard's lock.
type tenantState struct {
	s      *Session
	tokens float64 // token bucket level, only meaningful when Rate > 0
	last   int64   // bucket refill clock, nanoseconds on the pool's scale
}

// NewPool returns an empty pool of rolling-horizon sessions with parallelism
// g placing through policy p. shards is rounded up to a power of two (≤ 1
// means a single shard); window is the per-session live-window presize hint
// (see NewSessionSized). scratch may be nil, disabling Offline.
func NewPool(g int, p Policy, shards, window int, scratch chan *core.Scratch) (*Pool, error) {
	if _, err := NewSessionSized(g, p, 0); err != nil {
		return nil, err // validates g and the policy once up front
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	pool := &Pool{
		g:       g,
		policy:  p,
		window:  window,
		mask:    uint32(n - 1),
		shards:  make([]poolShard, n),
		scratch: scratch,
		epoch:   time.Now(),
	}
	pool.now = func() int64 { return int64(time.Since(pool.epoch)) }
	for i := range pool.shards {
		pool.shards[i].tenants = make(map[string]*tenantState)
	}
	return pool, nil
}

// SetAdmission installs the per-tenant acceptance policy. It is a setup
// call: install limits before serving traffic, not concurrently with Place.
// Existing tenants start their buckets full at the next placement.
func (p *Pool) SetAdmission(a Admission) error {
	if err := a.Validate(); err != nil {
		return err
	}
	p.adm = a
	p.burst = float64(a.Burst)
	if a.Burst == 0 && a.Rate > 0 {
		p.burst = a.Rate
		if p.burst < 1 {
			p.burst = 1
		}
	}
	return nil
}

// Admission returns the installed acceptance policy (zero value: admit all).
func (p *Pool) Admission() Admission { return p.adm }

// Close flips the pool into draining: every subsequent Place or PlaceBatch
// item is rejected with ErrPoolClosed, while Release, Stats, Tenants, Drop
// and Offline keep working so in-flight work can finish and final telemetry
// can be read. Closing is idempotent and one-way.
func (p *Pool) Close() { p.closed.Store(true) }

// Closed reports whether the pool is draining.
func (p *Pool) Closed() bool { return p.closed.Load() }

// shard hashes the tenant key with FNV-1a onto a lock shard.
func (p *Pool) shard(tenant string) *poolShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return &p.shards[uint32(h)&p.mask]
}

// state returns the tenant's state, creating it on first use. Callers hold
// sh.mu.
func (p *Pool) state(sh *poolShard, tenant string) *tenantState {
	ts := sh.tenants[tenant]
	if ts == nil {
		s, _ := NewSessionSized(p.g, p.policy, p.window) // args validated in NewPool
		ts = &tenantState{s: s, tokens: p.burst, last: p.now()}
		sh.tenants[tenant] = ts
	}
	return ts
}

// admit charges one placement attempt against the tenant's limits. Callers
// hold the shard lock; rejections are sentinel errors (no allocation).
func (p *Pool) admit(ts *tenantState) error {
	if p.adm.MaxLive > 0 && ts.s.Live() >= p.adm.MaxLive {
		return ErrLiveLimit
	}
	if p.adm.Rate > 0 {
		now := p.now()
		ts.tokens += float64(now-ts.last) * p.adm.Rate / 1e9
		if ts.tokens > p.burst {
			ts.tokens = p.burst
		}
		ts.last = now
		if ts.tokens < 1 {
			return ErrRateLimit
		}
		ts.tokens--
	}
	return nil
}

// Place feeds the tenant's next arrival; see Session.Place. The returned
// feed index (the tenant's Jobs() before the call) is the Release handle.
// A draining pool rejects with ErrPoolClosed; a pool with an Admission
// policy may reject with ErrLiveLimit or ErrRateLimit.
func (p *Pool) Place(tenant string, iv interval.Interval, demand int) (machine, job int, err error) {
	if p.closed.Load() {
		return -1, -1, ErrPoolClosed
	}
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := p.state(sh, tenant)
	if p.adm.limited() {
		ts.s.Advance(iv.Start) // retire passed ends before judging the cap
		if err := p.admit(ts); err != nil {
			return -1, -1, err
		}
	}
	job = ts.s.Jobs()
	machine, err = ts.s.Place(iv, demand)
	if err != nil {
		return -1, -1, err
	}
	return machine, job, nil
}

// PlaceRequest is one arrival of a batched placement.
type PlaceRequest struct {
	Iv     interval.Interval
	Demand int
}

// PlaceResult is the verdict on one batched arrival: the machine and feed
// index on success, or the placement's error (admission sentinels included)
// with both set to -1.
type PlaceResult struct {
	Machine int
	Job     int
	Err     error
}

// PlaceBatch feeds several arrivals of one tenant under a single shard-lock
// acquisition, writing out[i] for reqs[i]. Batching amortizes the lock and
// the tenant lookup across the batch — the daemon's framed data plane reads
// N frames off a connection and lands them here as one call — and a warm
// batch allocates nothing. Items are admitted and placed in order;
// per-item failures (admission, out-of-order arrival) reject that item and
// continue, so one bad frame cannot shadow-reject its batch. On a draining
// pool every item reports ErrPoolClosed.
func (p *Pool) PlaceBatch(tenant string, reqs []PlaceRequest, out []PlaceResult) error {
	if len(reqs) != len(out) {
		return fmt.Errorf("online: PlaceBatch: %d requests but %d result slots", len(reqs), len(out))
	}
	if p.closed.Load() {
		for i := range out {
			out[i] = PlaceResult{Machine: -1, Job: -1, Err: ErrPoolClosed}
		}
		return nil
	}
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := p.state(sh, tenant)
	limited := p.adm.limited()
	for i := range reqs {
		if limited {
			ts.s.Advance(reqs[i].Iv.Start) // retire passed ends before judging the cap
			if err := p.admit(ts); err != nil {
				out[i] = PlaceResult{Machine: -1, Job: -1, Err: err}
				continue
			}
		}
		job := ts.s.Jobs()
		m, err := ts.s.Place(reqs[i].Iv, reqs[i].Demand)
		if err != nil {
			out[i] = PlaceResult{Machine: -1, Job: -1, Err: err}
			continue
		}
		out[i] = PlaceResult{Machine: m, Job: job}
	}
	return nil
}

// Release departs the tenant's job early; see Session.Release. A tenant with
// no session reports (false, nil) like an already-departed job. Release
// works on a draining pool: finishing work is never rejected.
func (p *Pool) Release(tenant string, job int) (bool, error) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.tenants[tenant]
	if ts == nil {
		return false, nil
	}
	return ts.s.Release(job)
}

// Stats snapshots the tenant's session telemetry; ok is false for a tenant
// that never placed.
func (p *Pool) Stats(tenant string) (Stats, bool) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.tenants[tenant]
	if ts == nil {
		return Stats{}, false
	}
	return ts.s.Stats(), true
}

// Drop discards the tenant's session and reports whether one existed. A
// later Place by the same key starts a fresh session (no error, no panic):
// dropping is an eviction, not a ban. An Offline replay already in flight
// for the tenant is unaffected — it runs on a snapshot taken before Drop.
func (p *Pool) Drop(tenant string) bool {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.tenants[tenant]
	delete(sh.tenants, tenant)
	return ok
}

// Tenants returns every tenant key currently holding a session, in no
// particular order.
func (p *Pool) Tenants() []string {
	var out []string
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for k := range sh.tenants {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Live returns the tenant's live-job count without a full Stats snapshot;
// ok is false for a tenant that never placed.
func (p *Pool) Live(tenant string) (n int, ok bool) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.tenants[tenant]
	if ts == nil {
		return 0, false
	}
	return ts.s.Live(), true
}

// Comparison is Offline's verdict on one tenant's retained window.
type Comparison struct {
	OnlineCost float64     // the session's total accrued busy time
	WindowCost float64     // the policy's replay cost of the retained window alone
	Bounds     core.Bounds // offline lower bounds of the retained-window instance
	Ratio      float64     // WindowCost / Bounds.Fractional: the window's competitive ratio
}

// Offline replays the tenant's retained window through the pool's policy on
// an arena leased from the shared scratch pool and reports the competitive
// comparison. The window instance is snapshotted under the shard lock; the
// replay itself runs unlocked, so a slow comparison never stalls the
// tenant's placement path — and a concurrent Drop of the tenant cannot
// disturb it, the replay owns its snapshot. Errors: no scratch pool
// configured, unknown tenant, or an infeasible replay (a bug).
func (p *Pool) Offline(tenant string) (Comparison, error) {
	if p.scratch == nil {
		return Comparison{}, fmt.Errorf("online: pool has no scratch arenas; Offline unavailable")
	}
	sh := p.shard(tenant)
	sh.mu.Lock()
	ts := sh.tenants[tenant]
	if ts == nil {
		sh.mu.Unlock()
		return Comparison{}, fmt.Errorf("online: unknown tenant %q", tenant)
	}
	in := ts.s.Instance() // fresh copy: safe to release the lock
	online := ts.s.Cost()
	sh.mu.Unlock()

	sc := <-p.scratch
	defer func() { p.scratch <- sc }()
	sched, err := RunScratch(in, sc, p.policy)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{
		OnlineCost: online,
		WindowCost: sched.Cost(),
		Bounds:     in.CachedBounds(),
	}
	if cmp.Bounds.Fractional > 0 {
		cmp.Ratio = cmp.WindowCost / cmp.Bounds.Fractional
	}
	return cmp, nil
}
