package online

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"busytime/internal/core"
	"busytime/internal/engine"
)

func newTestPool(t *testing.T, shards int, scratch bool) *Pool {
	t.Helper()
	arenas := (chan *core.Scratch)(nil)
	if scratch {
		arenas = engine.NewScratchPool(2)
	}
	pool, err := NewPool(4, FirstFit{}, shards, 0, arenas)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestPoolLiveLimit pins ErrLiveLimit at the cap and re-admission after
// capacity frees via Release.
func TestPoolLiveLimit(t *testing.T) {
	p := newTestPool(t, 1, false)
	if err := p.SetAdmission(Admission{MaxLive: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Place("a", iv(0, 10), 1); err != nil {
		t.Fatal(err)
	}
	_, job2, err := p.Place("a", iv(1, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Place("a", iv(2, 10), 1); !errors.Is(err, ErrLiveLimit) {
		t.Fatalf("over-cap Place: err = %v, want ErrLiveLimit", err)
	}
	// Another tenant is unaffected: the cap is per tenant.
	if _, _, err := p.Place("b", iv(2, 10), 1); err != nil {
		t.Fatalf("tenant b rejected: %v", err)
	}
	// Freeing one slot re-admits. The slot frees one strict clock advance
	// after the release (closed-interval semantics), so step the clock.
	if ok, err := p.Release("a", job2); !ok || err != nil {
		t.Fatalf("Release = %v, %v", ok, err)
	}
	if _, _, err := p.Place("a", iv(3, 10), 1); err != nil {
		t.Fatalf("post-release Place: %v", err)
	}
}

// TestPoolRateLimit drives the token bucket on a hand-cranked clock:
// burst admits, exhaustion rejects with ErrRateLimit, refill re-admits.
func TestPoolRateLimit(t *testing.T) {
	p := newTestPool(t, 1, false)
	if err := p.SetAdmission(Admission{Rate: 10, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	var clock int64
	p.now = func() int64 { return clock }

	start := 0.0
	place := func() error {
		start++
		_, _, err := p.Place("a", iv(start, start+100), 1)
		return err
	}
	if err := place(); err != nil {
		t.Fatal(err)
	}
	if err := place(); err != nil {
		t.Fatal(err)
	}
	if err := place(); !errors.Is(err, ErrRateLimit) {
		t.Fatalf("exhausted bucket: err = %v, want ErrRateLimit", err)
	}
	// 10/s: one token back after 100ms.
	clock += 100e6
	if err := place(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := place(); !errors.Is(err, ErrRateLimit) {
		t.Fatalf("bucket should hold at most the refill: %v", err)
	}
	// A long quiet period caps at Burst, not at elapsed×rate.
	clock += 3600 * 1e9
	for i := 0; i < 2; i++ {
		if err := place(); err != nil {
			t.Fatalf("burst refill place %d: %v", i, err)
		}
	}
	if err := place(); !errors.Is(err, ErrRateLimit) {
		t.Fatalf("burst cap: err = %v, want ErrRateLimit", err)
	}
}

// TestPoolPlaceAfterClose pins the drain contract: Place and PlaceBatch
// reject with the typed ErrPoolClosed, while Release, Stats and Drop keep
// working on the in-flight state.
func TestPoolPlaceAfterClose(t *testing.T) {
	p := newTestPool(t, 2, false)
	_, job, err := p.Place("a", iv(0, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if !p.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, _, err := p.Place("a", iv(1, 10), 1); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Place on closed pool: err = %v, want ErrPoolClosed", err)
	}
	reqs := []PlaceRequest{{Iv: iv(1, 2), Demand: 1}, {Iv: iv(1, 3), Demand: 1}}
	out := make([]PlaceResult, 2)
	if err := p.PlaceBatch("a", reqs, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if !errors.Is(r.Err, ErrPoolClosed) {
			t.Fatalf("batch item %d on closed pool: err = %v", i, r.Err)
		}
	}
	if ok, err := p.Release("a", job); !ok || err != nil {
		t.Fatalf("Release during drain = %v, %v", ok, err)
	}
	if _, ok := p.Stats("a"); !ok {
		t.Fatal("Stats during drain should work")
	}
	if !p.Drop("a") {
		t.Fatal("Drop during drain should work")
	}
}

// TestPoolPlaceAfterDrop pins eviction semantics: a dropped tenant's next
// Place starts a fresh session — no error, no panic — and stale Release
// handles into the dropped session report (false, nil), not a crash.
func TestPoolPlaceAfterDrop(t *testing.T) {
	p := newTestPool(t, 1, false)
	for i := 0; i < 5; i++ {
		if _, _, err := p.Place("a", iv(float64(i), 20), 1); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Drop("a") {
		t.Fatal("Drop reported no session")
	}
	if ok, err := p.Release("a", 3); ok || err != nil {
		t.Fatalf("Release after Drop = %v, %v, want false, nil", ok, err)
	}
	m, job, err := p.Place("a", iv(100, 110), 1)
	if err != nil {
		t.Fatalf("Place after Drop: %v", err)
	}
	if m != 0 || job != 0 {
		t.Fatalf("fresh session after Drop: machine %d job %d, want 0, 0", m, job)
	}
	st, ok := p.Stats("a")
	if !ok || st.Placed != 1 {
		t.Fatalf("fresh session stats = %+v, %v", st, ok)
	}
}

// TestPoolDropDuringOffline races Drop against an in-flight Offline replay
// (run under -race in CI): the replay owns a snapshot, so it must return a
// coherent comparison or a clean unknown-tenant error, never corrupt state.
func TestPoolDropDuringOffline(t *testing.T) {
	p := newTestPool(t, 2, true)
	for i := 0; i < 2000; i++ {
		if _, _, err := p.Place("a", iv(float64(i)*0.01, float64(i)*0.01+5), 1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cmp, err := p.Offline("a")
		if err == nil && (cmp.WindowCost <= 0 || cmp.Ratio < 1-1e-9) {
			err = fmt.Errorf("implausible comparison %+v", cmp)
		}
		errc <- err
	}()
	p.Drop("a")
	wg.Wait()
	if err := <-errc; err != nil && err.Error() != `online: unknown tenant "a"` {
		t.Fatalf("Offline racing Drop: %v", err)
	}
	if _, _, err := p.Place("a", iv(1e6, 1e6+1), 1); err != nil {
		t.Fatalf("pool unusable after Drop/Offline race: %v", err)
	}
}

// TestPoolChurnRaced hammers one pool from many goroutines mixing Place,
// Release, Stats, Drop, Tenants and Offline across colliding tenants — the
// concurrent-churn coverage the daemon relies on (run under -race in CI).
func TestPoolChurnRaced(t *testing.T) {
	p := newTestPool(t, 4, true)
	if err := p.SetAdmission(Admission{MaxLive: 64, Rate: 1e9}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", w%3) // force key collisions
			for i := 0; i < 400; i++ {
				start := float64(w*1000 + i) // per-goroutine clocks collide across tenants; errors are expected
				_, job, err := p.Place(tenant, iv(start, start+10), 1)
				if err == nil && i%3 == 0 {
					if _, err := p.Release(tenant, job); err != nil {
						t.Errorf("Release: %v", err)
					}
				}
				switch i % 97 {
				case 13:
					p.Stats(tenant)
				case 31:
					p.Tenants()
				case 53:
					p.Drop(tenant)
				case 71:
					p.Offline(tenant)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPoolPlaceBatchMatchesPlace pins the batched path byte-identical to
// the per-call path on a fresh pool, including interleaved rejects.
func TestPoolPlaceBatchMatchesPlace(t *testing.T) {
	mk := func() *Pool {
		p := newTestPool(t, 1, false)
		if err := p.SetAdmission(Admission{MaxLive: 3}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	reqs := make([]PlaceRequest, 8)
	for i := range reqs {
		reqs[i] = PlaceRequest{Iv: iv(float64(i), float64(i)+6), Demand: 1 + i%2}
	}
	single := mk()
	want := make([]PlaceResult, len(reqs))
	for i, r := range reqs {
		m, j, err := single.Place("a", r.Iv, r.Demand)
		want[i] = PlaceResult{Machine: m, Job: j, Err: err}
	}
	batched := mk()
	got := make([]PlaceResult, len(reqs))
	if err := batched.PlaceBatch("a", reqs, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Machine != want[i].Machine || got[i].Job != want[i].Job || !errors.Is(got[i].Err, want[i].Err) {
			t.Fatalf("item %d: batch %+v, single %+v", i, got[i], want[i])
		}
	}
	if err := batched.PlaceBatch("a", reqs, got[:3]); err == nil {
		t.Fatal("mismatched out length should error")
	}
}

// TestPoolPlaceBatchZeroAllocSteadyState pins the daemon's per-frame pool
// path: a warm tenant's batched placements (with admission checks on) and
// releases allocate nothing.
func TestPoolPlaceBatchZeroAllocSteadyState(t *testing.T) {
	p := newTestPool(t, 4, false)
	if err := p.SetAdmission(Admission{MaxLive: 1 << 20, Rate: 1e9}); err != nil {
		t.Fatal(err)
	}
	const batch = 16
	reqs := make([]PlaceRequest, batch)
	out := make([]PlaceResult, batch)
	clock := 0.0
	fill := func() {
		for i := range reqs {
			clock++
			reqs[i] = PlaceRequest{Iv: iv(clock, clock+40), Demand: 1}
		}
	}
	// Warm-up: reach the rolling-horizon steady state (window sized, heaps
	// grown, machines opened).
	for i := 0; i < 200; i++ {
		fill()
		if err := p.PlaceBatch("bench", reqs, out); err != nil {
			t.Fatal(err)
		}
		for _, r := range out {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		if _, err := p.Release("bench", out[0].Job); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		fill()
		if err := p.PlaceBatch("bench", reqs, out); err != nil {
			t.Fatal(err)
		}
		p.Release("bench", out[0].Job)
	})
	if allocs != 0 {
		t.Fatalf("warm PlaceBatch+Release allocates %v/op, want 0", allocs)
	}
}
