package online

import (
	"testing"
	"testing/quick"

	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestPoliciesFeasibleOnRandom(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(seed int64, nn, gg uint8) bool {
				in := generator.General(seed, int(nn%30)+1, int(gg%4)+1, 40, 12)
				// NextFit is stateful: fresh policy per run.
				var pol Policy
				switch p.(type) {
				case FirstFit:
					pol = FirstFit{}
				case BestFit:
					pol = BestFit{}
				default:
					pol = &NextFit{}
				}
				s, err := Run(in, pol)
				if err != nil {
					return false
				}
				return s.Complete() && s.Cost() >= core.BestBound(in)-1e-9
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOnlineFirstFitKnownPlacement(t *testing.T) {
	// Arrivals: [0,2], [1,3], [1.5,4] with g=2. Third job overflows M0.
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(1.5, 4))
	s, err := Run(in, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(0) != 0 || s.MachineOf(1) != 0 || s.MachineOf(2) != 1 {
		t.Errorf("placements: %d %d %d", s.MachineOf(0), s.MachineOf(1), s.MachineOf(2))
	}
}

func TestOnlineBestFitPrefersCheapMachine(t *testing.T) {
	// g=2. Arrivals: two copies of [0,4] fill M0; [3,7] overflows M0's
	// capacity on [3,4] and opens M1. Arrival [5,8]: M0 is feasible at
	// growth 3 (disjoint), M1 is feasible at growth 1 ([3,7]∪[5,8]=[3,8]).
	// BestFit must choose M1; FirstFit would have chosen M0.
	in := core.NewInstance(2, iv(0, 4), iv(0, 4), iv(3, 7), iv(5, 8))
	s, err := Run(in, BestFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(3) != s.MachineOf(2) {
		t.Errorf("BestFit placed [5,8] on machine %d, want machine of [3,7] (%d)",
			s.MachineOf(3), s.MachineOf(2))
	}
	ff, err := Run(in, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if ff.MachineOf(3) != ff.MachineOf(0) {
		t.Errorf("FirstFit placed [5,8] on machine %d, want machine of [0,4] (%d)",
			ff.MachineOf(3), ff.MachineOf(0))
	}
	if s.Cost() >= ff.Cost() {
		t.Errorf("BestFit cost %v not below FirstFit %v on this instance", s.Cost(), ff.Cost())
	}
}

func TestOnlineNextFitAbandons(t *testing.T) {
	// g=1: [0,4] opens M0; [1,2] conflicts → M1; [5,6] fits M1 (current),
	// never returns to M0 even though it also fits.
	in := core.NewInstance(1, iv(0, 4), iv(1, 2), iv(5, 6))
	s, err := Run(in, &NextFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(2) != s.MachineOf(1) {
		t.Errorf("NextFit revisited an abandoned machine")
	}
}

func TestOnlineVsOfflineGap(t *testing.T) {
	// Online policies cannot sort by length; measure that they are still
	// within a constant of OPT on random instances, and never below it.
	for seed := int64(0); seed < 15; seed++ {
		in := generator.General(seed, 9, 2, 16, 7)
		opt, err := exact.Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			s, err := Run(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			if s.Cost() < opt-1e-9 {
				t.Fatalf("%s beat OPT", pol.Name())
			}
			if s.Cost() > 5*opt {
				t.Errorf("seed %d: %s ratio %v implausibly high", seed, pol.Name(), s.Cost()/opt)
			}
		}
	}
}

func TestRunRejectsStalePolicy(t *testing.T) {
	// A policy returning an out-of-range machine index is rejected.
	bad := policyFunc{name: "bad", f: func(s *core.Schedule, j int) int { return 99 }}
	in := core.NewInstance(2, iv(0, 1))
	if _, err := Run(in, bad); err == nil {
		t.Error("invalid machine index accepted")
	}
	// A policy choosing an overloaded machine is rejected.
	over := policyFunc{name: "over", f: func(s *core.Schedule, j int) int {
		if s.NumMachines() > 0 {
			return 0
		}
		return core.Unassigned
	}}
	in2 := core.NewInstance(1, iv(0, 2), iv(1, 3))
	if _, err := Run(in2, over); err == nil {
		t.Error("overloaded placement accepted")
	}
}

type policyFunc struct {
	name string
	f    func(*core.Schedule, int) int
}

func (p policyFunc) Name() string                      { return p.name }
func (p policyFunc) Place(s *core.Schedule, j int) int { return p.f(s, j) }

func BenchmarkOnlineFirstFit1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(in, FirstFit{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLookaheadFullBufferEqualsOfflineFirstFit(t *testing.T) {
	// With k ≥ n the extraction order is the global longest-first order, so
	// the FirstFit policy reproduces the paper's offline FirstFit exactly.
	for seed := int64(0); seed < 20; seed++ {
		in := generator.General(seed, 25, 3, 30, 10)
		got, err := RunLookahead(in, in.N(), FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		want := firstfit.Schedule(in)
		if got.Cost() != want.Cost() || got.NumMachines() != want.NumMachines() {
			t.Fatalf("seed %d: lookahead-n %v/%d != offline %v/%d", seed,
				got.Cost(), got.NumMachines(), want.Cost(), want.NumMachines())
		}
		for j := 0; j < in.N(); j++ {
			if got.MachineOf(j) != want.MachineOf(j) {
				t.Fatalf("seed %d: job %d placement differs", seed, j)
			}
		}
	}
}

func TestLookaheadOneEqualsArrivalOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := generator.General(seed, 20, 3, 25, 8)
		got, err := RunLookahead(in, 1, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(in, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost() != want.Cost() {
			t.Fatalf("seed %d: k=1 cost %v != pure online %v", seed, got.Cost(), want.Cost())
		}
	}
}

func TestLookaheadRejectsBadK(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1))
	if _, err := RunLookahead(in, 0, FirstFit{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLookaheadFeasibleAcrossK(t *testing.T) {
	in := generator.General(9, 30, 3, 30, 10)
	for _, k := range []int{1, 2, 5, 10, 30} {
		s, err := RunLookahead(in, k, BestFit{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
