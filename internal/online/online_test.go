package online

import (
	"testing"
	"testing/quick"

	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestPoliciesFeasibleOnRandom(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(seed int64, nn, gg uint8) bool {
				in := generator.General(seed, int(nn%30)+1, int(gg%4)+1, 40, 12)
				s, err := Run(in, p)
				if err != nil {
					return false
				}
				return s.Complete() && s.Cost() >= core.BestBound(in)-1e-9
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOnlineFirstFitKnownPlacement(t *testing.T) {
	// Arrivals: [0,2], [1,3], [1.5,4] with g=2. Third job overflows M0.
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(1.5, 4))
	s, err := Run(in, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(0) != 0 || s.MachineOf(1) != 0 || s.MachineOf(2) != 1 {
		t.Errorf("placements: %d %d %d", s.MachineOf(0), s.MachineOf(1), s.MachineOf(2))
	}
}

func TestOnlineBestFitPrefersCheapMachine(t *testing.T) {
	// g=2. Arrivals: two copies of [0,4] fill M0; [3,7] overflows M0's
	// capacity on [3,4] and opens M1. Arrival [5,8]: M0 is feasible at
	// growth 3 (disjoint), M1 is feasible at growth 1 ([3,7]∪[5,8]=[3,8]).
	// BestFit must choose M1; FirstFit would have chosen M0.
	in := core.NewInstance(2, iv(0, 4), iv(0, 4), iv(3, 7), iv(5, 8))
	s, err := Run(in, BestFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(3) != s.MachineOf(2) {
		t.Errorf("BestFit placed [5,8] on machine %d, want machine of [3,7] (%d)",
			s.MachineOf(3), s.MachineOf(2))
	}
	ff, err := Run(in, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if ff.MachineOf(3) != ff.MachineOf(0) {
		t.Errorf("FirstFit placed [5,8] on machine %d, want machine of [0,4] (%d)",
			ff.MachineOf(3), ff.MachineOf(0))
	}
	if s.Cost() >= ff.Cost() {
		t.Errorf("BestFit cost %v not below FirstFit %v on this instance", s.Cost(), ff.Cost())
	}
}

func TestOnlineNextFitAbandons(t *testing.T) {
	// g=1: [0,4] opens M0; [1,2] conflicts → M1; [5,6] fits M1 (current),
	// never returns to M0 even though it also fits.
	in := core.NewInstance(1, iv(0, 4), iv(1, 2), iv(5, 6))
	s, err := Run(in, NextFit{})
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineOf(2) != s.MachineOf(1) {
		t.Errorf("NextFit revisited an abandoned machine")
	}
}

func TestOnlineVsOfflineGap(t *testing.T) {
	// Online policies cannot sort by length; measure that they are still
	// within a constant of OPT on random instances, and never below it.
	for seed := int64(0); seed < 15; seed++ {
		in := generator.General(seed, 9, 2, 16, 7)
		opt, err := exact.Cost(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies() {
			s, err := Run(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			if s.Cost() < opt-1e-9 {
				t.Fatalf("%s beat OPT", pol.Name())
			}
			if s.Cost() > 5*opt {
				t.Errorf("seed %d: %s ratio %v implausibly high", seed, pol.Name(), s.Cost()/opt)
			}
		}
	}
}

// TestRunWrapsPolicyMisuse pins the misuse contract: a policy that lies
// about its placement, places nothing, or trips a kernel panic yields a
// wrapped error, never a panic.
func TestRunWrapsPolicyMisuse(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(0.5, 2))
	// Places correctly but reports the wrong machine.
	liar := policyFunc{name: "liar", f: func(k core.Placer, j int) int {
		k.LowestFit(j)
		return 99
	}}
	if _, err := Run(in, liar); err == nil {
		t.Error("mis-reported placement accepted")
	}
	// Never places at all.
	idle := policyFunc{name: "idle", f: func(k core.Placer, j int) int { return 0 }}
	if _, err := Run(in, idle); err == nil {
		t.Error("unplaced job accepted")
	}
	// Places the same job twice: the kernel panics, the runner must wrap it.
	double := policyFunc{name: "double", f: func(k core.Placer, j int) int {
		m := k.PlaceNew(j)
		k.Place(j, m)
		return m
	}}
	if _, err := Run(in, double); err == nil {
		t.Error("double placement accepted")
	}
	// Out-of-range raw placement panics inside the kernel; wrapped too.
	wild := policyFunc{name: "wild", f: func(k core.Placer, j int) int {
		k.Place(j, 42)
		return 42
	}}
	if _, err := Run(in, wild); err == nil {
		t.Error("out-of-range machine accepted")
	}
	// RunScratch wraps identically.
	sc := new(core.Scratch)
	if _, err := RunScratch(in, sc, double); err == nil {
		t.Error("RunScratch did not wrap double placement")
	}
}

type policyFunc struct {
	name string
	f    func(core.Placer, int) int
}

func (p policyFunc) Name() string                   { return p.name }
func (p policyFunc) Place(k core.Placer, j int) int { return p.f(k, j) }

// TestRunScratchMatchesRun is the online leg of the differential contract:
// replaying through a recycled scratch must reproduce fresh runs byte for
// byte, for every built-in policy, across instance shapes.
func TestRunScratchMatchesRun(t *testing.T) {
	sc := new(core.Scratch)
	for seed := int64(0); seed < 12; seed++ {
		in := generator.General(seed, 60+int(seed)*13, 2+int(seed)%4, 50, 14)
		for _, pol := range Policies() {
			fresh, err := Run(in, pol)
			if err != nil {
				t.Fatal(err)
			}
			recycled, err := RunScratch(in, sc, pol)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.NumMachines() != recycled.NumMachines() || fresh.Cost() != recycled.Cost() {
				t.Fatalf("seed %d %s: fresh (%d machines, cost %v) != scratch (%d machines, cost %v)",
					seed, pol.Name(), fresh.NumMachines(), fresh.Cost(),
					recycled.NumMachines(), recycled.Cost())
			}
			for j := 0; j < in.N(); j++ {
				if fresh.MachineOf(j) != recycled.MachineOf(j) {
					t.Fatalf("seed %d %s: job %d placement differs", seed, pol.Name(), j)
				}
			}
		}
	}
}

// TestOnlineFirstFitZeroAllocSteadyState is the online arena gate: after a
// warm-up replay, re-running online FirstFit through a recycled Scratch
// performs zero allocations per run.
func TestOnlineFirstFitZeroAllocSteadyState(t *testing.T) {
	in := generator.General(3, 3000, 4, 1500, 25)
	sc := new(core.Scratch)
	run := func() {
		if _, err := RunScratch(in, sc, FirstFit{}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up sizes the arena and the instance's cached orders
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("warm online FirstFit allocated %v times per run; want 0", allocs)
	}
}

// FuzzOnlineFirstFitWarmScratch drives the online differential check from
// fuzzed shapes, with the scratch arriving warm from a differently-shaped
// instance so no stale state can leak through the recycled arena.
func FuzzOnlineFirstFitWarmScratch(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(3), uint8(20))
	f.Add(int64(99), uint8(200), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, g, maxLen uint8) {
		in := generator.General(seed, int(n)+1, int(g)%8+1, float64(n)/2+1, float64(maxLen)+1)
		fresh, err := Run(in, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		sc := new(core.Scratch)
		warm := generator.General(seed+1, int(maxLen)+2, int(g)%5+1, float64(g)+2, float64(n)/4+1)
		if _, err := RunScratch(warm, sc, FirstFit{}); err != nil {
			t.Fatal(err)
		}
		recycled, err := RunScratch(in, sc, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.NumMachines() != recycled.NumMachines() || fresh.Cost() != recycled.Cost() {
			t.Fatalf("fresh (%d machines, cost %v) != warm scratch (%d machines, cost %v)",
				fresh.NumMachines(), fresh.Cost(), recycled.NumMachines(), recycled.Cost())
		}
		for j := 0; j < in.N(); j++ {
			if fresh.MachineOf(j) != recycled.MachineOf(j) {
				t.Fatalf("job %d placement differs", j)
			}
		}
	})
}

func BenchmarkOnlineFirstFit1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(in, FirstFit{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLookaheadFullBufferEqualsOfflineFirstFit(t *testing.T) {
	// With k ≥ n the extraction order is the global longest-first order, so
	// the FirstFit policy reproduces the paper's offline FirstFit exactly.
	for seed := int64(0); seed < 20; seed++ {
		in := generator.General(seed, 25, 3, 30, 10)
		got, err := RunLookahead(in, in.N(), FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		want := firstfit.Schedule(in)
		if got.Cost() != want.Cost() || got.NumMachines() != want.NumMachines() {
			t.Fatalf("seed %d: lookahead-n %v/%d != offline %v/%d", seed,
				got.Cost(), got.NumMachines(), want.Cost(), want.NumMachines())
		}
		for j := 0; j < in.N(); j++ {
			if got.MachineOf(j) != want.MachineOf(j) {
				t.Fatalf("seed %d: job %d placement differs", seed, j)
			}
		}
	}
}

func TestLookaheadOneEqualsArrivalOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := generator.General(seed, 20, 3, 25, 8)
		got, err := RunLookahead(in, 1, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(in, FirstFit{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost() != want.Cost() {
			t.Fatalf("seed %d: k=1 cost %v != pure online %v", seed, got.Cost(), want.Cost())
		}
	}
}

func TestLookaheadRejectsBadK(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1))
	if _, err := RunLookahead(in, 0, FirstFit{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLookaheadFeasibleAcrossK(t *testing.T) {
	in := generator.General(9, 30, 3, 30, 10)
	for _, k := range []int{1, 2, 5, 10, 30} {
		s, err := RunLookahead(in, k, BestFit{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
