// Package online studies the online variant of busy-time scheduling: jobs
// are revealed at their start times (with their end times) and must be
// assigned to a machine immediately and irrevocably. The offline FirstFit of
// the paper needs the full job list up front (it sorts by length); online
// algorithms cannot, which is exactly the gap the §2.1 length sort closes.
//
// The package provides an event-driven runner and three online policies —
// FirstFit, BestFit and NextFit by arrival — plus a harness hook measuring
// empirical competitive ratios against the offline optimum / lower bound.
package online

import (
	"fmt"
	"sort"

	"busytime/internal/core"
)

// Policy decides the machine for each arriving job. Implementations receive
// the current schedule (for feasibility queries) and the arriving job index
// and return an existing machine or core.Unassigned to request a new one.
type Policy interface {
	Name() string
	Place(s *core.Schedule, j int) int
}

// Run replays the instance in arrival order (start, end, ID) through the
// policy and returns the resulting schedule. The returned schedule is
// verified feasible; a policy returning an infeasible machine is an error.
func Run(in *core.Instance, p Policy) (*core.Schedule, error) {
	order := arrivalOrder(in)
	s := core.NewSchedule(in)
	for _, j := range order {
		m := p.Place(s, j)
		if m == core.Unassigned {
			s.AssignNew(j)
			continue
		}
		if m < 0 || m >= s.NumMachines() {
			return nil, fmt.Errorf("online: policy %s returned invalid machine %d", p.Name(), m)
		}
		if !s.CanAssign(j, m) {
			return nil, fmt.Errorf("online: policy %s chose overloaded machine %d for job %d",
				p.Name(), m, j)
		}
		s.Assign(j, m)
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("online: %s produced infeasible schedule: %w", p.Name(), err)
	}
	return s, nil
}

func arrivalOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	sort.Slice(order, func(a, b int) bool {
		a, b = order[a], order[b]
		if jobs[a].Iv.Start != jobs[b].Iv.Start {
			return jobs[a].Iv.Start < jobs[b].Iv.Start
		}
		if jobs[a].Iv.End != jobs[b].Iv.End {
			return jobs[a].Iv.End < jobs[b].Iv.End
		}
		return jobs[a].ID < jobs[b].ID
	})
	return order
}

// FirstFit places each arrival on the lowest-indexed feasible machine.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "online-firstfit" }

// Place implements Policy.
func (FirstFit) Place(s *core.Schedule, j int) int {
	for m := 0; m < s.NumMachines(); m++ {
		if s.CanAssign(j, m) {
			return m
		}
	}
	return core.Unassigned
}

// BestFit places each arrival on the feasible machine whose busy time grows
// the least (ties to the lowest index).
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "online-bestfit" }

// Place implements Policy.
func (BestFit) Place(s *core.Schedule, j int) int {
	in := s.Instance()
	best, bestDelta := core.Unassigned, 0.0
	for m := 0; m < s.NumMachines(); m++ {
		if !s.CanAssign(j, m) {
			continue
		}
		set := s.MachineSet(m)
		delta := append(set, in.Jobs[j].Iv).Span() - set.Span()
		if best == core.Unassigned || delta < bestDelta {
			best, bestDelta = m, delta
		}
	}
	return best
}

// NextFit keeps one open machine and abandons it permanently on overflow.
type NextFit struct {
	cur int
	ok  bool
}

// Name implements Policy.
func (*NextFit) Name() string { return "online-nextfit" }

// Place implements Policy.
func (p *NextFit) Place(s *core.Schedule, j int) int {
	if p.ok && s.CanAssign(j, p.cur) {
		return p.cur
	}
	p.ok = true
	p.cur = s.NumMachines() // the runner opens it via AssignNew
	return core.Unassigned
}

// Policies returns fresh instances of every built-in policy.
func Policies() []Policy {
	return []Policy{FirstFit{}, BestFit{}, &NextFit{}}
}

// RunLookahead is the semi-online variant: the scheduler sees a buffer of
// the next k future arrivals and repeatedly extracts the longest buffered
// job (ties by start, end, ID — FirstFit's offline order) before placing it
// with the policy. k = 1 degenerates to arrival order; k ≥ n recovers the
// offline processing order exactly, so with the FirstFit policy it equals
// the paper's offline FirstFit.
func RunLookahead(in *core.Instance, k int, p Policy) (*core.Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("online: lookahead %d, want ≥ 1", k)
	}
	arrivals := arrivalOrder(in)
	s := core.NewSchedule(in)
	buffer := make([]int, 0, k)
	next := 0
	fill := func() {
		for len(buffer) < k && next < len(arrivals) {
			buffer = append(buffer, arrivals[next])
			next++
		}
	}
	longest := func() int {
		best := 0
		for i := 1; i < len(buffer); i++ {
			ji, jb := in.Jobs[buffer[i]], in.Jobs[buffer[best]]
			switch {
			case ji.Len() != jb.Len():
				if ji.Len() > jb.Len() {
					best = i
				}
			case ji.Iv.Start != jb.Iv.Start:
				if ji.Iv.Start < jb.Iv.Start {
					best = i
				}
			case ji.Iv.End != jb.Iv.End:
				if ji.Iv.End < jb.Iv.End {
					best = i
				}
			case ji.ID < jb.ID:
				best = i
			}
		}
		return best
	}
	for fill(); len(buffer) > 0; fill() {
		i := longest()
		j := buffer[i]
		buffer = append(buffer[:i], buffer[i+1:]...)
		m := p.Place(s, j)
		if m == core.Unassigned {
			s.AssignNew(j)
			continue
		}
		if m < 0 || m >= s.NumMachines() || !s.CanAssign(j, m) {
			return nil, fmt.Errorf("online: policy %s made invalid placement %d for job %d",
				p.Name(), m, j)
		}
		s.Assign(j, m)
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("online: lookahead %s infeasible: %w", p.Name(), err)
	}
	return s, nil
}
