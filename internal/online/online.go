// Package online studies the online variant of busy-time scheduling: jobs
// are revealed at their start times (with their end times) and must be
// assigned to a machine immediately and irrevocably. The offline FirstFit of
// the paper needs the full job list up front (it sorts by length); online
// algorithms cannot, which is exactly the gap the §2.1 length sort closes.
//
// The package provides an event-driven runner and three online policies —
// FirstFit, BestFit and NextFit by arrival — plus a harness hook measuring
// empirical competitive ratios against the offline optimum / lower bound.
//
// Policies place arrivals through the shared placement kernel: Place
// receives a core.Placer view instead of a raw schedule, so every policy
// rides the machine-selection index, the saturation bitmap and the arena,
// and competitive-ratio replays through a recycled core.Scratch are
// allocation-free once warm (RunScratch). The policies are also registered
// with the algorithm registry ("online-firstfit", "online-bestfit",
// "online-nextfit"), so the batch engine and the CLI drive online replays
// exactly like offline algorithms.
package online

import (
	"fmt"

	"busytime/internal/algo"
	"busytime/internal/core"
)

func init() {
	for _, pol := range Policies() {
		pol := pol
		algo.Register(algo.Algorithm{
			Name:        pol.Name(),
			Description: "online " + pol.Name()[len("online-"):] + " by arrival order (jobs revealed at start times)",
			Run: func(in *core.Instance) *core.Schedule {
				s, err := Run(in, pol)
				if err != nil {
					panic(err)
				}
				return s
			},
			RunScratch: func(in *core.Instance, sc *core.Scratch) *core.Schedule {
				s, err := RunScratch(in, sc, pol)
				if err != nil {
					panic(err)
				}
				return s
			},
			Decompose: decomposer(pol),
		})
	}
}

// decomposer maps a policy to its decomposition contract: the arrival-order
// replays of the memoryless FirstFit and BestFit rules decompose under the
// identity merge (arrival order restricted to a component is the component's
// arrival order, and time-disjoint components never change a placement).
// NextFit's cursor survives component boundaries, so it does not decompose.
// Lookahead replays (k > 1) carry a dynamic buffer and never route through
// the registry's Decompose; the Solver gates them off explicitly.
func decomposer(p Policy) *algo.Decomposer {
	startOrder := func(in *core.Instance) []int32 { return in.StartOrder() }
	switch p.(type) {
	case FirstFit:
		return &algo.Decomposer{
			Order: startOrder, RunComponent: algo.ComponentLowestFit,
			Stitch: true, Shard: algo.ShardLowestFit,
		}
	case BestFit:
		return &algo.Decomposer{
			Order: startOrder, RunComponent: algo.ComponentBestFit,
			Stitch: true, Shard: algo.ShardBestFit,
		}
	default:
		return nil
	}
}

// Policy decides the machine for each arriving job. Place receives the
// placement-kernel view of the schedule under construction and the arriving
// job index; it must place the job through the kernel (LowestFit, BestFit,
// NextFit, or CanPlace/Place/PlaceNew for bespoke rules) and return the
// machine it chose. The built-in policies are stateless values: per-arrival
// state such as the NextFit cursor lives in the kernel.
type Policy interface {
	Name() string
	Place(k core.Placer, j int) int
}

// Run replays the instance in arrival order (start, end, ID) through the
// policy and returns the resulting schedule. The returned schedule is
// verified feasible; policy misuse — placing nothing, double-placing, or
// overloading a machine — is reported as a wrapped error, never a panic.
func Run(in *core.Instance, p Policy) (*core.Schedule, error) {
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	if err := replay(in, s, p); err != nil {
		return nil, err
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("online: %s produced infeasible schedule: %w", p.Name(), err)
	}
	return s, nil
}

// RunScratch is Run with all schedule state drawn from sc, so
// competitive-ratio sweeps replaying many instances recycle one arena and
// stop allocating once warm. It skips the final feasibility re-verification
// (the kernel's checked primitives only make feasible placements; batch
// callers re-verify via the engine's Verify option); misuse detection is
// identical to Run. The returned schedule is only valid until sc's next use.
func RunScratch(in *core.Instance, sc *core.Scratch, p Policy) (*core.Schedule, error) {
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	if err := replay(in, s, p); err != nil {
		return nil, err
	}
	return s, nil
}

// replay feeds the arrivals to the policy and validates each decision.
func replay(in *core.Instance, s *core.Schedule, p Policy) error {
	k := s.Placer()
	for _, j := range in.StartOrder() {
		if err := placeOne(k, s, p, int(j)); err != nil {
			return err
		}
	}
	return nil
}

// placeOne invokes the policy for one arrival and validates its decision. A
// panic raised during the placement (a policy driving the raw kernel out of
// range, double-placing, …) is converted to a wrapped error so one bad
// policy cannot take down a sweep; the recover is scoped to the single
// Place call, so the error pinpoints the offending job and a panic anywhere
// outside a placement still surfaces with its stack intact.
func placeOne(k core.Placer, s *core.Schedule, p Policy, j int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("online: policy %s panicked placing job %d: %v", p.Name(), j, r)
		}
	}()
	m := p.Place(k, j)
	if got := s.MachineOf(j); got == core.Unassigned || got != m {
		return fmt.Errorf("online: policy %s returned machine %d for job %d but placed it on %d",
			p.Name(), m, j, got)
	}
	return nil
}

// FirstFit places each arrival on the lowest-indexed feasible machine
// (the kernel's index-accelerated LowestFit).
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "online-firstfit" }

// Place implements Policy.
func (FirstFit) Place(k core.Placer, j int) int { return k.LowestFit(j) }

// BestFit places each arrival on the feasible machine whose busy time grows
// the least (ties to the lowest index), via the kernel's pruned argmin.
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "online-bestfit" }

// Place implements Policy.
func (BestFit) Place(k core.Placer, j int) int { return k.BestFit(j) }

// NextFit keeps one open machine and abandons it permanently on overflow
// (the kernel cursor).
type NextFit struct{}

// Name implements Policy.
func (NextFit) Name() string { return "online-nextfit" }

// Place implements Policy.
func (NextFit) Place(k core.Placer, j int) int { return k.NextFit(j) }

// Policies returns every built-in policy. The built-ins are stateless, so
// the same values can drive any number of runs.
func Policies() []Policy {
	return []Policy{FirstFit{}, BestFit{}, NextFit{}}
}

// PolicyByName returns the built-in policy with the given registered name
// ("online-firstfit", …); the bare rule name without the "online-" prefix
// is also accepted. It is the single name→policy mapping, so callers
// cannot drift from Policies().
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.Name() == name || p.Name() == "online-"+name {
			return p, true
		}
	}
	return nil, false
}

// RunLookahead is the semi-online variant: the scheduler sees a buffer of
// the next k future arrivals and repeatedly extracts the longest buffered
// job (ties by start, end, ID — FirstFit's offline order) before placing it
// with the policy. k = 1 degenerates to arrival order; k ≥ n recovers the
// offline processing order exactly, so with the FirstFit policy it equals
// the paper's offline FirstFit.
func RunLookahead(in *core.Instance, k int, p Policy) (*core.Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("online: lookahead %d, want ≥ 1", k)
	}
	arrivals := in.StartOrder()
	s := core.NewSchedule(in)
	s.EnableMachineIndex()
	if err := lookaheadReplay(in, s, arrivals, k, p); err != nil {
		return nil, err
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("online: lookahead %s infeasible: %w", p.Name(), err)
	}
	return s, nil
}

// RunLookaheadScratch is RunLookahead with schedule state drawn from sc, the
// warm path of Solver-driven semi-online replays. Like RunScratch it skips
// the final re-verification (the kernel only makes feasible placements); the
// returned schedule is only valid until sc's next use.
func RunLookaheadScratch(in *core.Instance, sc *core.Scratch, k int, p Policy) (*core.Schedule, error) {
	if k < 1 {
		return nil, fmt.Errorf("online: lookahead %d, want ≥ 1", k)
	}
	s := sc.NewSchedule(in)
	s.EnableMachineIndex()
	if err := lookaheadReplay(in, s, in.StartOrder(), k, p); err != nil {
		return nil, err
	}
	return s, nil
}

func lookaheadReplay(in *core.Instance, s *core.Schedule, arrivals []int32, k int, p Policy) error {
	view := s.Placer()
	buffer := make([]int, 0, k)
	next := 0
	fill := func() {
		for len(buffer) < k && next < len(arrivals) {
			buffer = append(buffer, int(arrivals[next]))
			next++
		}
	}
	longest := func() int {
		best := 0
		for i := 1; i < len(buffer); i++ {
			ji, jb := in.Jobs[buffer[i]], in.Jobs[buffer[best]]
			switch {
			case ji.Len() != jb.Len():
				if ji.Len() > jb.Len() {
					best = i
				}
			case ji.Iv.Start != jb.Iv.Start:
				if ji.Iv.Start < jb.Iv.Start {
					best = i
				}
			case ji.Iv.End != jb.Iv.End:
				if ji.Iv.End < jb.Iv.End {
					best = i
				}
			case ji.ID < jb.ID:
				best = i
			}
		}
		return best
	}
	for fill(); len(buffer) > 0; fill() {
		i := longest()
		j := buffer[i]
		buffer = append(buffer[:i], buffer[i+1:]...)
		if err := placeOne(view, s, p, j); err != nil {
			return err
		}
	}
	return nil
}
