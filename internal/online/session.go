package online

import (
	"fmt"
	"math"
	"slices"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Session is the incremental online handle: jobs are fed one at a time in
// non-decreasing start order — the paper's online model, where a job is
// revealed at its start time — and each is placed immediately and
// irrevocably by the session's policy. Unlike Run/RunScratch, which replay a
// complete instance, a Session never sees the future: there is no job list
// to index, so placement state is a per-machine active-load list and busy
// union maintained exactly like the exact solver's incremental machines
// (amortized O(active jobs) per arrival).
//
// Sessions are rolling-horizon: a job departs either naturally, when the
// stream clock (the latest arrival start) passes its end, or early via
// Release. Departure removes its load from its machine, returns a fully-idle
// machine to a free pool that FirstFit probes before opening new machines,
// and eventually reclaims its record during window compaction, so
// steady-state memory is proportional to the live window — not to every job
// ever seen — and a warm session places, releases and compacts at zero heap
// allocations per operation.
//
// Sessions support the built-in policies only (FirstFit, BestFit, NextFit):
// a bespoke Policy places through a core.Placer, which requires the full
// instance up front. The per-policy differential tests pin a Session fed in
// arrival order byte-identical (assignment, cost, machine count) to the
// corresponding kernel replay of the completed instance.
type Session struct {
	g    int
	rule sessionRule
	name string

	machines []sessionMachine
	cursor   int // NextFit's single open machine, -1 when closed

	// recs is the retained window of job records in feed order; the record
	// of job j lives at recs[j-base]. A negative demand marks a departed
	// job (its absolute value is the original demand). Records are
	// reclaimed by compaction once they form a departed prefix.
	recs []jobRec
	base int // feed index of recs[0]

	endHeap  []endEntry // min-heap of (end, job): pending natural departures
	idleHeap []int32    // min-heap of fully-idle machine indices

	clock float64 // latest arrival start; -Inf before the first
	cost  float64 // total busy time accrued, including retired coverage

	// Incremental fractional lower bound ∫⌈D_t/g⌉dt of the effective
	// stream (early-released jobs clipped at their release clock),
	// integrated up to lbClock with lbDemand demand currently live.
	lbClock  float64
	lbDemand int
	cumLB    float64

	live int // jobs currently holding capacity

	placed, released, expired, compactions uint64

	peakLive, peakWindow, peakMachines int

	tailBuf []tailEnt // reusable Stats projection scratch
}

type sessionRule int

const (
	ruleLowestFit sessionRule = iota
	ruleBestFit
	ruleNextFit
)

// jobRec is one retained arrival. 32 bytes: a 1e4-job live window retains
// well under a megabyte.
type jobRec struct {
	iv       interval.Interval // effective interval (End clipped on early release)
	machine  int32
	demand   int32 // > 0 holding capacity; < 0 departed with original demand -demand
	released bool  // departed early; departure counters and the bound skip it
}

type endEntry struct {
	end float64
	job int
}

type tailEnt struct {
	end    float64
	demand int32
}

// sessionMachine mirrors the exact solver's incremental machine: busy pieces
// stay sorted and disjoint because arrivals come in non-decreasing start
// order, and capacity at a new job's window is maximized at its start, so
// the demand sum over the live loads is a complete feasibility check.
type sessionMachine struct {
	busy   interval.Spans
	loads  []loadRec
	used   int32
	inIdle bool // present in the idle heap (entries are unique)
}

type loadRec struct {
	job    int
	end    float64
	demand int32
}

// NewSession returns an empty session with parallelism g placing through the
// built-in policy p. Custom policies are rejected: they require the kernel's
// full-instance view.
func NewSession(g int, p Policy) (*Session, error) { return NewSessionSized(g, p, 0) }

// NewSessionSized is NewSession with the retained-window structures
// pre-sized for about `window` simultaneously live jobs, so a stream that
// stays under the hint reaches the zero-allocation steady state without any
// growth reallocations. window ≤ 0 starts empty and grows on demand.
func NewSessionSized(g int, p Policy, window int) (*Session, error) {
	if g < 1 {
		return nil, fmt.Errorf("online: session parallelism g = %d, want ≥ 1", g)
	}
	s := &Session{g: g, cursor: -1, clock: math.Inf(-1), lbClock: math.Inf(-1)}
	switch p.(type) {
	case FirstFit:
		s.rule = ruleLowestFit
	case BestFit:
		s.rule = ruleBestFit
	case NextFit:
		s.rule = ruleNextFit
	default:
		return nil, fmt.Errorf("online: policy %s is not supported by incremental sessions (built-in policies only)", p.Name())
	}
	s.name = p.Name()
	if window > 0 {
		s.recs = make([]jobRec, 0, window)
		s.endHeap = make([]endEntry, 0, window)
		s.tailBuf = make([]tailEnt, 0, window)
	}
	return s, nil
}

// Policy returns the name of the session's placement policy.
func (s *Session) Policy() string { return s.name }

// Place feeds the next arrival — the closed interval iv with the given
// capacity demand — and returns the machine it was irrevocably assigned to.
// Arrivals must come in non-decreasing start order (jobs are revealed at
// their start times); an out-of-order start, an invalid interval, or a
// demand outside [1, g] is rejected without changing the session.
//
// Advancing the clock to iv.Start first retires every job whose end it
// passed (their departure is automatic), so placement only ever scans live
// state. The job's feed index — the handle Release and MachineOf take — is
// Jobs() just before the call.
func (s *Session) Place(iv interval.Interval, demand int) (int, error) {
	if math.IsNaN(iv.Start) || math.IsNaN(iv.End) {
		return -1, fmt.Errorf("online: NaN endpoint in %v", iv)
	}
	if iv.End < iv.Start {
		return -1, fmt.Errorf("online: reversed interval %v", iv)
	}
	if demand < 1 || demand > s.g {
		return -1, fmt.Errorf("online: demand %d outside [1, %d]", demand, s.g)
	}
	if iv.Start < s.clock {
		return -1, fmt.Errorf("online: out-of-order arrival %v (previous start %v): online jobs are revealed at their start times", iv, s.clock)
	}
	s.advance(iv.Start)

	var m int
	switch s.rule {
	case ruleLowestFit:
		m = s.lowestFit(demand)
	case ruleBestFit:
		m = s.bestFit(iv, demand)
	default:
		m = s.nextFit(demand)
	}

	id := s.base + len(s.recs)
	mc := &s.machines[m]
	mc.busy.RetireBefore(iv.Start) // settled pieces can never merge again
	s.cost += mc.busy.Add(iv)
	mc.loads = append(mc.loads, loadRec{job: id, end: iv.End, demand: int32(demand)})
	mc.used += int32(demand)
	s.appendRec(jobRec{iv: iv, machine: int32(m), demand: int32(demand)})
	s.endPush(endEntry{end: iv.End, job: id})

	s.lbDemand += demand
	s.live++
	s.placed++
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
	s.clock = iv.Start
	return m, nil
}

// Release departs the job with the given feed index before its natural end:
// its effective interval is clipped to end at the current clock, and its
// machine's busy span is clipped back to the coverage of the jobs still
// running there (the un-billed tail leaves Cost immediately). Closed-interval
// semantics are preserved exactly: the job still occupies its capacity slot
// at the release instant itself — an arrival at the very same clock cannot
// re-use it, just as two intervals touching at a point both hold a slot —
// and the slot frees (returning a fully-idle machine to the free pool) when
// the clock next advances strictly past, through the same retirement path a
// natural departure takes. Releasing a job that already departed returns
// (false, nil); an index that was never placed is an error. Release is
// O(live jobs on the machine).
func (s *Session) Release(job int) (bool, error) {
	if job < 0 || job >= s.base+len(s.recs) {
		return false, fmt.Errorf("online: Release(%d): no such job (placed %d)", job, s.base+len(s.recs))
	}
	if job < s.base {
		return false, nil // departed and already compacted away
	}
	rec := &s.recs[job-s.base]
	if rec.demand <= 0 || rec.released {
		return false, nil
	}
	m := int(rec.machine)
	mc := &s.machines[m]
	for i := range mc.loads {
		if mc.loads[i].job == job {
			mc.loads[i].end = s.clock
			break
		}
	}

	// The busy tail beyond the remaining effective coverage belonged solely
	// to the released job: every load's effective interval contains the
	// clock (placed at start ≤ clock, end not yet passed), so coverage is
	// one contiguous run [≤clock, newTail] and everything past newTail is
	// un-billed exactly.
	newTail := s.clock
	for _, ld := range mc.loads {
		if ld.end > newTail {
			newTail = ld.end
		}
	}
	s.cost -= mc.busy.TruncateAfter(newTail)

	if rec.iv.End > s.clock {
		rec.iv.End = s.clock // effective interval for snapshots and bounds
	}
	rec.released = true
	s.released++
	// The fractional bound integrates the effective stream with open
	// interiors (ends before starts), so the clipped job carries no demand
	// past the clock; lbClock == clock already, nothing to integrate.
	s.lbDemand -= int(rec.demand)
	// Schedule the retirement at the clipped end; the original-end heap
	// entry outlives the job and is skipped lazily.
	s.endPush(endEntry{end: s.clock, job: job})
	return true, nil
}

// Advance moves the stream clock forward to c without placing anything,
// retiring every departure it passes. The admission path uses it so a
// live-job cap judges a new arrival against the capacity actually held at
// its start time — jobs whose ends the arrival's clock has passed are
// already gone, exactly as if the arrival had been placed. Starts at or
// before the current clock, and NaN, are no-ops; Advance never errors and
// never moves backwards, so interleaving it with Place preserves the
// session's ordering contract.
func (s *Session) Advance(c float64) {
	if math.IsNaN(c) || c <= s.clock {
		return
	}
	s.advance(c)
	s.clock = c
}

// advance moves the stream clock to c: every pending end strictly before c
// departs naturally (in end order, so the running lower bound integrates
// each constant-demand segment exactly), then the bound integrates the
// remaining segment up to c.
func (s *Session) advance(c float64) {
	for len(s.endHeap) > 0 && s.endHeap[0].end < c {
		e := s.endPop()
		if e.job < s.base {
			continue // released early and compacted; nothing left to do
		}
		rec := &s.recs[e.job-s.base]
		if rec.demand <= 0 {
			continue // released early; its lazy heap entry survives it
		}
		s.integrateLB(e.end)
		d := rec.demand
		m := int(rec.machine)
		mc := &s.machines[m]
		mc.removeLoad(e.job)
		mc.used -= d
		rec.demand = -d
		s.live--
		if !rec.released {
			s.expired++
			s.lbDemand -= int(d) // a released job's demand left the bound at Release
		}
		if mc.used == 0 {
			s.markIdle(m)
		}
	}
	s.integrateLB(c)
}

// integrateLB extends the fractional lower bound to time t with the current
// live demand. Demand zero advances the origin without integrating, which
// also absorbs the -Inf origin before the first arrival.
func (s *Session) integrateLB(t float64) {
	if s.lbDemand > 0 && t > s.lbClock {
		s.cumLB += math.Ceil(float64(s.lbDemand)/float64(s.g)) * (t - s.lbClock)
	}
	s.lbClock = t
}

// lowestFit returns the lowest-indexed machine that fits, preferring a
// fully-idle machine over opening a fresh one (the FirstFit rule). An idle
// machine always fits, so the scan for a lower-indexed busy fit stops at the
// lowest idle index — the free pool caps the probe length.
func (s *Session) lowestFit(demand int) int {
	limit := len(s.machines)
	idle := s.idleMin()
	if idle >= 0 {
		limit = idle
	}
	for m := 0; m < limit; m++ {
		if int(s.machines[m].used)+demand <= s.g {
			return m
		}
	}
	if idle >= 0 {
		return idle
	}
	return s.open()
}

// bestFit returns the feasible machine whose busy time grows the least, ties
// to the lowest index, opening a fresh one when none fits — the same argmin
// the kernel's pruned BestFit computes over a completed instance. All slots
// are scanned: an idle machine whose clipped span still touches the arrival
// can have a smaller delta than a fresh one, so idleness is not a shortcut.
func (s *Session) bestFit(iv interval.Interval, demand int) int {
	best, bestDelta := -1, 0.0
	for m := range s.machines {
		mc := &s.machines[m]
		if int(mc.used)+demand > s.g {
			continue
		}
		delta := mc.busy.Delta(iv)
		if best < 0 || delta < bestDelta {
			best, bestDelta = m, delta
		}
	}
	if best < 0 {
		return s.open()
	}
	return best
}

// nextFit keeps one open machine and abandons it permanently on overflow;
// it never returns to the free pool, preserving the replay differential.
// On unbounded streams NextFit's abandoned machines therefore accumulate —
// the rolling-horizon policies of choice are FirstFit and BestFit.
func (s *Session) nextFit(demand int) int {
	if s.cursor >= 0 && int(s.machines[s.cursor].used)+demand <= s.g {
		return s.cursor
	}
	s.cursor = s.open()
	return s.cursor
}

func (s *Session) open() int {
	s.machines = append(s.machines, sessionMachine{})
	if len(s.machines) > s.peakMachines {
		s.peakMachines = len(s.machines)
	}
	return len(s.machines) - 1
}

// removeLoad drops the load of the given job; order is irrelevant to every
// decision (capacity is a sum, the tail a max), so swap-remove suffices.
func (mc *sessionMachine) removeLoad(job int) {
	for i := range mc.loads {
		if mc.loads[i].job == job {
			last := len(mc.loads) - 1
			mc.loads[i] = mc.loads[last]
			mc.loads = mc.loads[:last]
			return
		}
	}
}

// appendRec retains a new arrival, compacting the departed prefix in place
// before growing: records are reclaimed (base advances, survivors shift
// down in the same backing array) whenever they would otherwise force a
// reallocation and at least half the array is reclaimable, so the backing
// capacity tracks the live-window high-water mark instead of the stream
// length, and steady-state appends never allocate.
func (s *Session) appendRec(r jobRec) {
	if len(s.recs) == cap(s.recs) {
		k := 0
		for k < len(s.recs) && s.recs[k].demand < 0 {
			k++
		}
		if 2*k >= len(s.recs) && k > 0 {
			n := copy(s.recs, s.recs[k:])
			s.recs = s.recs[:n]
			s.base += k
			s.compactions++
		}
	}
	s.recs = append(s.recs, r)
	if len(s.recs) > s.peakWindow {
		s.peakWindow = len(s.recs)
	}
}

func (s *Session) markIdle(m int) {
	if !s.machines[m].inIdle {
		s.machines[m].inIdle = true
		s.idlePush(int32(m))
	}
}

// idleMin returns the lowest-indexed fully-idle machine, discarding stale
// heap entries for machines that have since been re-used, or -1.
func (s *Session) idleMin() int {
	for len(s.idleHeap) > 0 {
		m := int(s.idleHeap[0])
		if s.machines[m].used == 0 {
			return m
		}
		s.idlePopTop()
		s.machines[m].inIdle = false
	}
	return -1
}

// --- manual slice-backed heaps (container/heap boxes through an interface
// and allocates on Push; these stay on the recycled backing arrays) ---

func (s *Session) endPush(e endEntry) {
	h := append(s.endHeap, e)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].end <= h[i].end {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.endHeap = h
}

func (s *Session) endPop() endEntry {
	h := s.endHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r].end < h[l].end {
			l = r
		}
		if h[i].end <= h[l].end {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	s.endHeap = h
	return top
}

func (s *Session) idlePush(m int32) {
	h := append(s.idleHeap, m)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	s.idleHeap = h
}

func (s *Session) idlePopTop() {
	h := s.idleHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r] < h[l] {
			l = r
		}
		if h[i] <= h[l] {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	s.idleHeap = h
}

// Jobs returns the number of arrivals placed so far (departed or not); the
// next arrival's feed index.
func (s *Session) Jobs() int { return s.base + len(s.recs) }

// Live returns the number of jobs currently holding capacity.
func (s *Session) Live() int { return s.live }

// Machines returns the number of machines opened so far.
func (s *Session) Machines() int { return len(s.machines) }

// Cost returns the total busy time accrued so far, maintained incrementally.
func (s *Session) Cost() float64 { return s.cost }

// MachineOf returns the machine of the j-th arrival (feed order), or -1 if
// the record left the retained window (departed and compacted away).
func (s *Session) MachineOf(j int) int {
	if j < s.base || j >= s.base+len(s.recs) {
		return -1
	}
	return int(s.recs[j-s.base].machine)
}

// Stats is a point-in-time snapshot of a session's rolling-horizon state and
// competitive telemetry. Reading it does not allocate on a warm session.
type Stats struct {
	Placed      uint64 // arrivals accepted
	Released    uint64 // explicit early departures
	Expired     uint64 // natural departures (clock passed the end)
	Compactions uint64 // retained-window reclaim passes

	Live         int // jobs currently holding capacity
	Window       int // retained records (live + departed awaiting reclaim)
	WindowCap    int // retained-window backing capacity (the memory bound)
	Machines     int // machines opened so far
	IdleMachines int // machines currently in the free pool

	PeakLive     int // high-water Live
	PeakWindow   int // high-water Window
	PeakMachines int // high-water Machines

	Cost       float64 // total busy time accrued
	LowerBound float64 // fractional bound of the effective stream, live tails projected
	Ratio      float64 // Cost / LowerBound; the live competitive ratio
}

// Stats reports the session's counters, memory high-water marks and live
// competitive ratio. The lower bound is the exact fractional bound
// ∫⌈D_t/g⌉dt of the effective stream seen so far (early releases clipped at
// their release clock), integrated incrementally event by event, plus the
// projection of the live jobs running to their natural ends — the same
// quantity core.FractionalBound would compute offline over the effective
// instance. Cost likewise bills live spans through their current ends, so
// Ratio compares like with like.
func (s *Session) Stats() Stats {
	st := Stats{
		Placed:       s.placed,
		Released:     s.released,
		Expired:      s.expired,
		Compactions:  s.compactions,
		Live:         s.live,
		Window:       len(s.recs),
		WindowCap:    cap(s.recs),
		Machines:     len(s.machines),
		PeakLive:     s.peakLive,
		PeakWindow:   s.peakWindow,
		PeakMachines: s.peakMachines,
		Cost:         s.cost,
		LowerBound:   s.lowerBound(),
	}
	for m := range s.machines {
		if s.machines[m].used == 0 {
			st.IdleMachines++
		}
	}
	if st.LowerBound > 0 {
		st.Ratio = st.Cost / st.LowerBound
	}
	return st
}

// lowerBound projects the incremental bound past the clock: live demand
// decays at the live jobs' ends, integrated over the sorted tail in the
// session-owned scratch buffer.
func (s *Session) lowerBound() float64 {
	buf := s.tailBuf[:0]
	for i := range s.recs {
		// Released-but-not-yet-retired jobs already left the bound (their
		// clipped interiors end at lbClock); only natural tails project.
		if r := &s.recs[i]; r.demand > 0 && !r.released {
			buf = append(buf, tailEnt{end: r.iv.End, demand: r.demand})
		}
	}
	s.tailBuf = buf
	slices.SortFunc(buf, func(a, b tailEnt) int {
		switch {
		case a.end < b.end:
			return -1
		case a.end > b.end:
			return 1
		default:
			return 0
		}
	})
	lb := s.cumLB
	t := s.lbClock
	d := s.lbDemand
	g := float64(s.g)
	for _, e := range buf {
		if d > 0 && e.end > t {
			lb += math.Ceil(float64(d)/g) * (e.end - t)
			t = e.end
		}
		d -= int(e.demand)
	}
	return lb
}

// Instance returns the retained window as a fresh instance: every record
// still held (live, plus departed records awaiting reclaim) with its
// effective interval and original demand, under its feed index as Job.ID. A
// session that has never compacted — any short-lived one — snapshots its
// complete history; a long-running stream snapshots its recent horizon.
func (s *Session) Instance() *core.Instance {
	jobs := make([]core.Job, len(s.recs))
	for i := range s.recs {
		r := &s.recs[i]
		d := int(r.demand)
		if d < 0 {
			d = -d
		}
		jobs[i] = core.Job{ID: s.base + i, Iv: r.iv, Demand: d}
	}
	return &core.Instance{Name: "online-session", G: s.g, Jobs: jobs}
}

// Snapshot materializes the retained window's decisions as a verified
// core.Schedule over the Instance snapshot, in caller-owned memory.
// Effective intervals make the snapshot self-consistent: a job released
// early appears clipped at its release clock, so capacity freed by the
// release and re-used by later arrivals never double-books a machine.
func (s *Session) Snapshot() (*core.Schedule, error) {
	in := s.Instance()
	byID := make(map[int]int, len(s.recs))
	for i := range s.recs {
		byID[s.base+i] = int(s.recs[i].machine)
	}
	sched, err := core.FromAssignment(in, byID)
	if err != nil {
		return nil, err
	}
	if err := sched.Verify(); err != nil {
		return nil, fmt.Errorf("online: session snapshot infeasible: %w", err)
	}
	return sched, nil
}
