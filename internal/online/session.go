package online

import (
	"fmt"
	"math"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Session is the incremental online handle: jobs are fed one at a time in
// non-decreasing start order — the paper's online model, where a job is
// revealed at its start time — and each is placed immediately and
// irrevocably by the session's policy. Unlike Run/RunScratch, which replay a
// complete instance, a Session never sees the future: there is no job list
// to index, so placement state is a per-machine active-load list and busy
// union maintained exactly like the exact solver's incremental machines
// (amortized O(active jobs) per arrival).
//
// Sessions support the built-in policies only (FirstFit, BestFit, NextFit):
// a bespoke Policy places through a core.Placer, which requires the full
// instance up front. The per-policy differential tests pin a Session fed in
// arrival order byte-identical (assignment, cost, machine count) to the
// corresponding kernel replay of the completed instance.
type Session struct {
	g         int
	rule      sessionRule
	name      string
	machines  []sessionMachine
	cursor    int // NextFit's single open machine, -1 when closed
	jobs      []core.Job
	assign    []int
	lastStart float64
	cost      float64
}

type sessionRule int

const (
	ruleLowestFit sessionRule = iota
	ruleBestFit
	ruleNextFit
)

// sessionMachine mirrors the exact solver's incremental machine: busy pieces
// stay sorted and disjoint because arrivals come in non-decreasing start
// order, and capacity at a new job's window is maximized at its start, so a
// demand sum over the still-active loads is a complete feasibility check.
type sessionMachine struct {
	pieces []interval.Interval
	load   []sessionLoad
}

type sessionLoad struct {
	end    float64
	demand int
}

// NewSession returns an empty session with parallelism g placing through the
// built-in policy p. Custom policies are rejected: they require the kernel's
// full-instance view.
func NewSession(g int, p Policy) (*Session, error) {
	if g < 1 {
		return nil, fmt.Errorf("online: session parallelism g = %d, want ≥ 1", g)
	}
	s := &Session{g: g, cursor: -1, lastStart: math.Inf(-1)}
	switch p.(type) {
	case FirstFit:
		s.rule = ruleLowestFit
	case BestFit:
		s.rule = ruleBestFit
	case NextFit:
		s.rule = ruleNextFit
	default:
		return nil, fmt.Errorf("online: policy %s is not supported by incremental sessions (built-in policies only)", p.Name())
	}
	s.name = p.Name()
	return s, nil
}

// Policy returns the name of the session's placement policy.
func (s *Session) Policy() string { return s.name }

// Place feeds the next arrival — the closed interval iv with the given
// capacity demand — and returns the machine it was irrevocably assigned to.
// Arrivals must come in non-decreasing start order (jobs are revealed at
// their start times); an out-of-order start, an invalid interval, or a
// demand outside [1, g] is rejected without changing the session.
func (s *Session) Place(iv interval.Interval, demand int) (int, error) {
	if math.IsNaN(iv.Start) || math.IsNaN(iv.End) {
		return -1, fmt.Errorf("online: NaN endpoint in %v", iv)
	}
	if iv.End < iv.Start {
		return -1, fmt.Errorf("online: reversed interval %v", iv)
	}
	if demand < 1 || demand > s.g {
		return -1, fmt.Errorf("online: demand %d outside [1, %d]", demand, s.g)
	}
	if iv.Start < s.lastStart {
		return -1, fmt.Errorf("online: out-of-order arrival %v (previous start %v): online jobs are revealed at their start times", iv, s.lastStart)
	}
	var m int
	switch s.rule {
	case ruleLowestFit:
		m = s.lowestFit(iv, demand)
	case ruleBestFit:
		m = s.bestFit(iv, demand)
	default:
		m = s.nextFit(iv, demand)
	}
	s.cost += s.machines[m].add(iv, demand)
	s.jobs = append(s.jobs, core.Job{ID: len(s.jobs), Iv: iv, Demand: demand})
	s.assign = append(s.assign, m)
	s.lastStart = iv.Start
	return m, nil
}

// lowestFit returns the lowest-indexed machine that fits, opening a fresh
// one when none does (the FirstFit rule).
func (s *Session) lowestFit(iv interval.Interval, demand int) int {
	for m := range s.machines {
		if s.machines[m].fits(iv.Start, demand, s.g) {
			return m
		}
	}
	return s.open()
}

// bestFit returns the feasible machine whose busy time grows the least, ties
// to the lowest index, opening a fresh one when none fits — the same argmin
// the kernel's pruned BestFit computes over a completed instance.
func (s *Session) bestFit(iv interval.Interval, demand int) int {
	best, bestDelta := -1, 0.0
	for m := range s.machines {
		if !s.machines[m].fits(iv.Start, demand, s.g) {
			continue
		}
		delta := s.machines[m].delta(iv)
		if best < 0 || delta < bestDelta {
			best, bestDelta = m, delta
		}
	}
	if best < 0 {
		return s.open()
	}
	return best
}

// nextFit keeps one open machine and abandons it permanently on overflow.
func (s *Session) nextFit(iv interval.Interval, demand int) int {
	if s.cursor >= 0 && s.machines[s.cursor].fits(iv.Start, demand, s.g) {
		return s.cursor
	}
	s.cursor = s.open()
	return s.cursor
}

func (s *Session) open() int {
	s.machines = append(s.machines, sessionMachine{})
	return len(s.machines) - 1
}

// fits reports whether a job starting at start with the given demand joins
// the machine without exceeding capacity g. Loads that ended before start
// can never constrain a future arrival (starts are non-decreasing), so they
// are compacted away during the scan.
func (mc *sessionMachine) fits(start float64, demand, g int) bool {
	used, keep := 0, mc.load[:0]
	for _, r := range mc.load {
		if r.end < start {
			continue // expired: end < every future start
		}
		keep = append(keep, r)
		used += r.demand
	}
	mc.load = keep
	return used+demand <= g
}

// delta returns the busy-time increase iv would cause. Every existing piece
// starts at or before iv.Start, so only the last piece can absorb it.
func (mc *sessionMachine) delta(iv interval.Interval) float64 {
	if n := len(mc.pieces); n > 0 && iv.Start <= mc.pieces[n-1].End {
		if iv.End <= mc.pieces[n-1].End {
			return 0
		}
		return iv.End - mc.pieces[n-1].End
	}
	return iv.End - iv.Start
}

// add records the job on the machine and returns the busy-time increase.
func (mc *sessionMachine) add(iv interval.Interval, demand int) float64 {
	mc.load = append(mc.load, sessionLoad{end: iv.End, demand: demand})
	if n := len(mc.pieces); n > 0 && iv.Start <= mc.pieces[n-1].End {
		last := &mc.pieces[n-1]
		old := last.End
		if iv.End > last.End {
			last.End = iv.End
		}
		return last.End - old
	}
	mc.pieces = append(mc.pieces, iv)
	return iv.Len()
}

// Jobs returns the number of arrivals placed so far.
func (s *Session) Jobs() int { return len(s.jobs) }

// Machines returns the number of machines opened so far.
func (s *Session) Machines() int { return len(s.machines) }

// Cost returns the total busy time accrued so far, maintained incrementally.
func (s *Session) Cost() float64 { return s.cost }

// MachineOf returns the machine of the j-th arrival (feed order).
func (s *Session) MachineOf(j int) int { return s.assign[j] }

// Assignment returns a copy of the per-arrival machine assignment in feed
// order.
func (s *Session) Assignment() []int {
	out := make([]int, len(s.assign))
	copy(out, s.assign)
	return out
}

// Instance returns a snapshot of the arrivals fed so far as a fresh
// instance: job IDs are feed positions, so the snapshot pairs with
// Assignment index-for-index.
func (s *Session) Instance() *core.Instance {
	jobs := make([]core.Job, len(s.jobs))
	copy(jobs, s.jobs)
	return &core.Instance{Name: "online-session", G: s.g, Jobs: jobs}
}

// Snapshot materializes the session's decisions as a verified core.Schedule
// over the Instance snapshot, in caller-owned memory.
func (s *Session) Snapshot() (*core.Schedule, error) {
	in := s.Instance()
	byID := make(map[int]int, len(s.assign))
	for j, m := range s.assign {
		byID[j] = m
	}
	sched, err := core.FromAssignment(in, byID)
	if err != nil {
		return nil, err
	}
	if err := sched.Verify(); err != nil {
		return nil, fmt.Errorf("online: session snapshot infeasible: %w", err)
	}
	return sched, nil
}
