package online

import (
	"fmt"
	"sync"
	"testing"

	"busytime/internal/engine"
	"busytime/internal/generator"
	"busytime/internal/interval"
	"busytime/internal/xrand"
)

func TestPoolShardedTenantsConcurrent(t *testing.T) {
	pool, err := NewPool(4, FirstFit{}, 8, 64, engine.NewScratchPool(2))
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 16
	var wg sync.WaitGroup
	for w := 0; w < tenants; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			rng := xrand.New(int64(w))
			jobs := generator.Stream(int64(w), 2000, 32, 4)
			for _, j := range jobs {
				_, id, err := pool.Place(tenant, j.Iv, j.Demand)
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(3) == 0 {
					if _, err := pool.Release(tenant, id-rng.Intn(id+1)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := len(pool.Tenants()); got != tenants {
		t.Fatalf("%d tenants registered, want %d", got, tenants)
	}
	for w := 0; w < tenants; w++ {
		tenant := fmt.Sprintf("tenant-%d", w)
		st, ok := pool.Stats(tenant)
		if !ok || st.Placed != 2000 {
			t.Fatalf("%s: stats ok=%v placed=%d, want 2000", tenant, ok, st.Placed)
		}
		if st.Ratio != 0 && st.Ratio < 1-1e-9 {
			t.Fatalf("%s: competitive ratio %v < 1", tenant, st.Ratio)
		}
		cmp, err := pool.Offline(tenant)
		if err != nil {
			t.Fatalf("%s: Offline: %v", tenant, err)
		}
		if cmp.WindowCost < cmp.Bounds.Fractional-1e-9 {
			t.Fatalf("%s: window cost %v below its fractional bound %v", tenant, cmp.WindowCost, cmp.Bounds.Fractional)
		}
		if cmp.OnlineCost < cmp.WindowCost-1e-9 {
			t.Fatalf("%s: stream cost %v below its window's %v", tenant, cmp.OnlineCost, cmp.WindowCost)
		}
	}
	if !pool.Drop("tenant-0") || pool.Drop("tenant-0") {
		t.Fatal("Drop: want true then false")
	}
	if _, ok := pool.Stats("tenant-0"); ok {
		t.Fatal("dropped tenant still reports stats")
	}
	if _, _, err := pool.Place("tenant-0", interval.Interval{Start: 0, End: 1}, 1); err != nil {
		t.Fatalf("re-created tenant rejected: %v", err)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, FirstFit{}, 4, 0, nil); err == nil {
		t.Error("g=0 accepted")
	}
	pool, err := NewPool(2, NextFit{}, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Offline("nobody"); err == nil {
		t.Error("Offline without scratch arenas accepted")
	}
	if ok, err := pool.Release("nobody", 3); ok || err != nil {
		t.Errorf("Release on unknown tenant = %v, %v", ok, err)
	}
	if _, _, err := pool.Place("a", interval.Interval{Start: 1, End: 0}, 1); err == nil {
		t.Error("reversed interval accepted")
	}
}
