package generator

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/core"
)

func TestGeneralDeterministicAndValid(t *testing.T) {
	a := General(3, 20, 2, 50, 10)
	b := General(3, 20, 2, 50, 10)
	if a.N() != 20 || a.G != 2 {
		t.Fatalf("bad shape: %+v", a)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed produced different instances")
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	c := General(4, 20, 2, 50, 10)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestProperIsProper(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		in := Proper(seed, int(nn%50)+1, 3, 40, 12)
		return in.IsProper() && in.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCliqueIsClique(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		in := Clique(seed, int(nn%50)+1, 3, 10, 5)
		return in.IsClique() && in.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedLengthRespectsBounds(t *testing.T) {
	const d = 5.0
	in := BoundedLength(9, 100, 3, 8, d)
	for _, j := range in.Jobs {
		if j.Len() < 1-1e-9 || j.Len() > d+1e-9 {
			t.Errorf("job %d length %v outside [1,%v]", j.ID, j.Len(), d)
		}
		if j.Iv.Start != math.Trunc(j.Iv.Start) {
			t.Errorf("job %d start %v not integral", j.ID, j.Iv.Start)
		}
	}
}

func TestWithDemands(t *testing.T) {
	base := General(1, 30, 4, 20, 6)
	in := WithDemands(base, 2, 3)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	seenAbove1 := false
	for _, j := range in.Jobs {
		if j.Demand < 1 || j.Demand > 3 {
			t.Errorf("demand %d outside [1,3]", j.Demand)
		}
		if j.Demand > 1 {
			seenAbove1 = true
		}
	}
	if !seenAbove1 {
		t.Error("no demand above 1 generated")
	}
	// Original untouched.
	for _, j := range base.Jobs {
		if j.Demand != 1 {
			t.Fatal("WithDemands mutated its input")
		}
	}
	// Clamps to g.
	clamped := WithDemands(base, 2, 99)
	for _, j := range clamped.Jobs {
		if j.Demand > base.G {
			t.Errorf("demand %d exceeds g", j.Demand)
		}
	}
}

func TestFig4Structure(t *testing.T) {
	const g = 3
	const eps = 0.125
	in, order := Fig4(g, eps)
	if in.N() != g+g*(g-1)+g {
		t.Fatalf("N = %d, want %d", in.N(), g*(g+1))
	}
	if len(order) != in.N() {
		t.Fatalf("order covers %d of %d jobs", len(order), in.N())
	}
	seen := map[int]bool{}
	for _, j := range order {
		if seen[j] {
			t.Fatal("order repeats a job")
		}
		seen[j] = true
	}
	// All jobs have length 1, so any order is a valid FirstFit length order.
	for _, j := range in.Jobs {
		if math.Abs(j.Len()-1) > 1e-12 {
			t.Errorf("job %d length %v, want 1", j.ID, j.Len())
		}
	}
	// The known optimum is g+1 (lefts on one machine, rights on one,
	// middles g-per-machine). Verify such a schedule exists and is feasible.
	s := core.NewSchedule(in)
	mLeft, mRight := s.OpenMachine(), s.OpenMachine()
	midMachines := make([]int, g-1)
	for i := range midMachines {
		midMachines[i] = s.OpenMachine()
	}
	midCount := 0
	for j, job := range in.Jobs {
		switch {
		case job.Iv.Start == 0:
			s.Assign(j, mLeft)
		case job.Iv.Start == 2-2*eps:
			s.Assign(j, mRight)
		default:
			s.Assign(j, midMachines[midCount/g])
			midCount++
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("witness schedule infeasible: %v", err)
	}
	if math.Abs(s.Cost()-float64(g+1)) > 1e-9 {
		t.Errorf("witness cost %v, want %d", s.Cost(), g+1)
	}
}

func TestFig4Panics(t *testing.T) {
	for _, tc := range []struct {
		g   int
		eps float64
	}{{1, 0.1}, {3, 0}, {3, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fig4(%d,%v) did not panic", tc.g, tc.eps)
				}
			}()
			Fig4(tc.g, tc.eps)
		}()
	}
}

func TestFig4ProperIsProper(t *testing.T) {
	in, order := Fig4Proper(4, 0.1, 1e-4)
	if !in.IsProper() {
		t.Error("Fig4Proper instance not proper")
	}
	if len(order) != in.N() {
		t.Error("order incomplete")
	}
}

func TestFig4ProperPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized delta accepted")
		}
	}()
	Fig4Proper(4, 0.1, 0.1) // g(g-1)·delta = 1.2 ≥ ε′
}
