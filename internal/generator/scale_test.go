package generator

import (
	"testing"
)

func TestCloudBurstDeterministicAndValid(t *testing.T) {
	a := CloudBurst(5, 500, 8, 1000, 12, 6, 0.5)
	b := CloudBurst(5, 500, 8, 1000, 12, 6, 0.5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.N() != 500 || a.G != 8 {
		t.Fatalf("n=%d g=%d, want 500/8", a.N(), a.G)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across identical seeds: %v vs %v", i, a.Jobs[i], b.Jobs[i])
		}
		if l := a.Jobs[i].Len(); l < 0 || l > 120 {
			t.Fatalf("job %d length %v outside [0, 10·meanLen]", i, l)
		}
		if a.Jobs[i].Iv.Start < 0 {
			t.Fatalf("job %d starts before 0: %v", i, a.Jobs[i].Iv)
		}
	}
	if c := CloudBurst(6, 500, 8, 1000, 12, 6, 0.5); c.Jobs[0] == a.Jobs[0] && c.Jobs[1] == a.Jobs[1] {
		t.Error("different seeds produced identical leading jobs")
	}
	// A burst-heavy instance should be measurably deeper than a uniform one
	// of the same size: bursts are the point of the family.
	uniform := CloudBurst(5, 500, 8, 1000, 12, 6, 0)
	if a.Set().MaxDepth() <= uniform.Set().MaxDepth() {
		t.Errorf("burst instance depth %d not above uniform depth %d",
			a.Set().MaxDepth(), uniform.Set().MaxDepth())
	}
}

func TestCloudBurstClampsParams(t *testing.T) {
	in := CloudBurst(1, 50, 4, 100, 5, 0, 1.5) // bursts < 1 and frac > 1 clamp
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.N() != 50 {
		t.Fatalf("n = %d, want 50", in.N())
	}
}

func TestLightpathWaveDeterministicAndValid(t *testing.T) {
	a := LightpathWave(9, 6, 50, 4, 100, 30, 20)
	b := LightpathWave(9, 6, 50, 4, 100, 30, 20)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.N() != 300 {
		t.Fatalf("n = %d, want waves·perWave = 300", a.N())
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	// Wave w's starts lie in [w·period, w·period+spread].
	for i, j := range a.Jobs {
		w := i / 50
		lo, hi := float64(w)*100, float64(w)*100+30
		if j.Iv.Start < lo || j.Iv.Start > hi {
			t.Fatalf("job %d of wave %d starts at %v, outside [%v, %v]", i, w, j.Iv.Start, lo, hi)
		}
	}
}
