// Package generator builds the workloads used by tests, examples and the
// benchmark harness: seeded random instances of each structural class the
// paper analyzes (general, proper, clique, bounded-length, demand-weighted)
// and the deterministic adversarial families of Theorem 2.4 (Fig. 4) and the
// §3.1 closing remark (its proper ranked-shift variant).
//
// All generators are deterministic in their inputs: the same seed yields the
// same instance. Randomness comes from a seedable splitmix64 generator (see
// rand.go) rather than math/rand, so drawing an instance allocates nothing
// beyond the instance itself and the stream is stable across platforms.
package generator

import (
	"fmt"
	"sort"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// General returns n jobs with starts uniform in [0, horizon) and lengths
// uniform in (0, maxLen], parallelism g.
func General(seed int64, n, g int, horizon, maxLen float64) *core.Instance {
	r := newRNG(seed)
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := r.Float64() * horizon
		ivs[i] = interval.New(s, s+r.Float64()*maxLen)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("general(seed=%d,n=%d,g=%d)", seed, n, g)
	return in
}

// Proper returns a proper instance: starts sorted ascending and ends forced
// strictly increasing, so no interval properly contains another while
// lengths still vary in (0, maxLen].
func Proper(seed int64, n, g int, horizon, maxLen float64) *core.Instance {
	r := newRNG(seed)
	starts := make([]float64, n)
	for i := range starts {
		starts[i] = r.Float64() * horizon
	}
	sort.Float64s(starts)
	const eps = 1e-6
	ivs := make([]interval.Interval, n)
	prevEnd := -1e18
	for i, s := range starts {
		e := s + eps + r.Float64()*maxLen
		if e <= prevEnd {
			e = prevEnd + eps
		}
		prevEnd = e
		ivs[i] = interval.New(s, e)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("proper(seed=%d,n=%d,g=%d)", seed, n, g)
	return in
}

// Clique returns n jobs that all contain the point t: job i spans
// [t-a, t+b] with a, b uniform in (0, reach].
func Clique(seed int64, n, g int, t, reach float64) *core.Instance {
	r := newRNG(seed)
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		a := r.Float64() * reach
		b := r.Float64() * reach
		ivs[i] = interval.New(t-a, t+b)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("clique(seed=%d,n=%d,g=%d)", seed, n, g)
	return in
}

// BoundedLength returns n jobs with integral starts in [0, segments·d) and
// real lengths in [1, d] — the §3.2 model (lengths in [1, d], integral start
// times).
func BoundedLength(seed int64, n, g, segments int, d float64) *core.Instance {
	r := newRNG(seed)
	ivs := make([]interval.Interval, n)
	horizon := int(float64(segments) * d)
	if horizon < 1 {
		horizon = 1
	}
	for i := range ivs {
		s := float64(r.Intn(horizon))
		ivs[i] = interval.New(s, s+1+r.Float64()*(d-1))
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("bounded(seed=%d,n=%d,g=%d,d=%g)", seed, n, g, d)
	return in
}

// Clustered returns a multi-component instance with a controlled component
// structure: `clusters` time windows of width clusterLen separated by unit
// gaps, each holding `per` jobs whose starts are uniform in the window and
// whose lengths are uniform in (0, maxLen], clipped so no job escapes its
// window. Every window is one connected component of the interval graph (the
// windows are gap-separated and each window's jobs share a common core once
// per ≥ 2 — and even sparse windows can only split into smaller components,
// never merge across windows), which makes component count and size directly
// steerable: the knob the decomposition-layer benchmarks need.
func Clustered(seed int64, clusters, per, g int, clusterLen, maxLen float64) *core.Instance {
	if clusters < 1 || per < 1 {
		panic("generator: Clustered requires clusters ≥ 1 and per ≥ 1")
	}
	if clusterLen <= 0 || maxLen <= 0 {
		panic("generator: Clustered requires positive clusterLen and maxLen")
	}
	if maxLen > clusterLen {
		maxLen = clusterLen
	}
	r := newRNG(seed)
	ivs := make([]interval.Interval, 0, clusters*per)
	for c := 0; c < clusters; c++ {
		winStart := float64(c) * (clusterLen + 1)
		winEnd := winStart + clusterLen
		for k := 0; k < per; k++ {
			s := winStart + r.Float64()*(clusterLen-maxLen)
			e := s + r.Float64()*maxLen
			if e > winEnd {
				e = winEnd
			}
			ivs = append(ivs, interval.New(s, e))
		}
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("clustered(seed=%d,k=%d,per=%d,g=%d)", seed, clusters, per, g)
	return in
}

// WithDemands returns a copy of in with pseudo-random demands in
// [1, maxDemand] (clamped to g).
func WithDemands(in *core.Instance, seed int64, maxDemand int) *core.Instance {
	r := newRNG(seed)
	out := in.Clone()
	if maxDemand > out.G {
		maxDemand = out.G
	}
	if maxDemand < 1 {
		maxDemand = 1
	}
	for i := range out.Jobs {
		out.Jobs[i].Demand = 1 + r.Intn(maxDemand)
	}
	out.Name = fmt.Sprintf("%s+demands(max=%d)", in.Name, maxDemand)
	return out
}

// Laminar returns a strictly laminar instance (any two jobs nested or
// strictly disjoint): `roots` top-level jobs of length rootLen separated by
// unit gaps, each recursively subdivided into up to maxChildren strictly
// interior children per level, down to maxDepth nesting levels.
func Laminar(seed int64, g, roots, maxChildren, maxDepth int, rootLen float64) *core.Instance {
	r := newRNG(seed)
	var ivs []interval.Interval
	var grow func(iv interval.Interval, depth int)
	grow = func(iv interval.Interval, depth int) {
		ivs = append(ivs, iv)
		if depth >= maxDepth || iv.Len() < 1e-3 {
			return
		}
		k := r.Intn(maxChildren + 1)
		if k == 0 {
			return
		}
		// Split the interior into k child slots with strict margins.
		margin := iv.Len() * 0.05
		inner := interval.New(iv.Start+margin, iv.End-margin)
		slot := inner.Len() / float64(k)
		for c := 0; c < k; c++ {
			lo := inner.Start + float64(c)*slot
			hi := lo + slot
			gap := slot * 0.1
			child := interval.New(lo+gap*r.Float64(), hi-gap*(r.Float64()+0.5))
			if child.Len() <= 0 {
				continue
			}
			grow(child, depth+1)
		}
	}
	for i := 0; i < roots; i++ {
		start := float64(i) * (rootLen + 1)
		grow(interval.New(start, start+rootLen), 1)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("laminar(seed=%d,roots=%d,g=%d)", seed, roots, g)
	return in
}

// CloudBurst returns a cloud-trace-like instance of n jobs over [0, horizon):
// a uniform background load punctuated by `bursts` short arrival storms, the
// pattern of batch jobs piling onto a cluster. A burstFrac fraction of the
// jobs starts inside a randomly placed burst window of width horizon/(4·
// bursts), and job lengths are exponential with mean meanLen (capped at
// 10·meanLen so instances stay bounded). Deterministic in its inputs.
func CloudBurst(seed int64, n, g int, horizon, meanLen float64, bursts int, burstFrac float64) *core.Instance {
	if bursts < 1 {
		bursts = 1
	}
	if burstFrac < 0 {
		burstFrac = 0
	}
	if burstFrac > 1 {
		burstFrac = 1
	}
	r := newRNG(seed)
	centers := make([]float64, bursts)
	for i := range centers {
		centers[i] = r.Float64() * horizon
	}
	width := horizon / float64(4*bursts)
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		var s float64
		if r.Float64() < burstFrac {
			c := centers[r.Intn(bursts)]
			s = c + (r.Float64()-0.5)*width
			if s < 0 {
				s = 0
			}
		} else {
			s = r.Float64() * horizon
		}
		l := r.ExpFloat64() * meanLen
		if l > 10*meanLen {
			l = 10 * meanLen
		}
		ivs[i] = interval.New(s, s+l)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("cloudburst(seed=%d,n=%d,g=%d,bursts=%d)", seed, n, g, bursts)
	return in
}

// LightpathWave returns an optical-network-like instance: lightpath requests
// arrive in `waves` (think scheduled backup or data-migration windows), wave
// w centered at w·period with its perWave requests' starts spread uniformly
// over [center, center+spread] and holding times uniform in (0, 2·meanLen].
// With g interpreted as the number of wavelengths groomable onto one fiber,
// minimizing busy time minimizes total fiber activation, the §4 application.
// Deterministic in its inputs.
func LightpathWave(seed int64, waves, perWave, g int, period, spread, meanLen float64) *core.Instance {
	r := newRNG(seed)
	ivs := make([]interval.Interval, 0, waves*perWave)
	for w := 0; w < waves; w++ {
		center := float64(w) * period
		for k := 0; k < perWave; k++ {
			s := center + r.Float64()*spread
			ivs = append(ivs, interval.New(s, s+r.Float64()*2*meanLen))
		}
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("lightwave(seed=%d,waves=%d,per=%d,g=%d)", seed, waves, perWave, g)
	return in
}

// Fig4 builds the lower-bound family of Theorem 2.4 (Fig. 4) for parallelism
// g ≥ 2 and 0 < epsPrime < 1/2, together with the adversarial processing
// order under which FirstFit uses g machines over [0, 3−2ε′].
//
// Jobs (all of length 1, so any order is a valid FirstFit length order):
//   - g "left" jobs  [0, 1]
//   - g·(g−1) "middle" jobs [1−ε′, 2−ε′]
//   - g "right" jobs [2−2ε′, 3−2ε′]
//
// OPT packs all lefts on one machine, all rights on one machine and the
// middles g-per-machine on g−1 machines: OPT = g+1. The adversarial order
// interleaves left_i, its g−1 middles, right_i, driving FirstFit to
// g·(3−2ε′); the ratio approaches 3 as g→∞ and ε′→0.
func Fig4(g int, epsPrime float64) (*core.Instance, []int) {
	if g < 2 {
		panic("generator: Fig4 requires g ≥ 2")
	}
	if epsPrime <= 0 || epsPrime >= 0.5 {
		panic("generator: Fig4 requires 0 < ε′ < 1/2")
	}
	left := interval.New(0, 1)
	mid := interval.New(1-epsPrime, 2-epsPrime)
	right := interval.New(2-2*epsPrime, 3-2*epsPrime)
	var ivs []interval.Interval
	var order []int
	for i := 0; i < g; i++ {
		order = append(order, len(ivs))
		ivs = append(ivs, left)
		for k := 0; k < g-1; k++ {
			order = append(order, len(ivs))
			ivs = append(ivs, mid)
		}
		order = append(order, len(ivs))
		ivs = append(ivs, right)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("fig4(g=%d,eps'=%g)", g, epsPrime)
	return in, order
}

// Fig4Proper is the §3.1 closing-remark variant of Fig4: the middle-column
// jobs receive a tiny ranked shift k·delta so that no interval properly
// contains another (duplicates are allowed in a proper family, but the shift
// additionally makes the middles pairwise distinct). On this proper instance
// the greedy NextFit stays within 2·OPT while FirstFit under the returned
// adversarial order still approaches ratio 3.
//
// delta must satisfy 0 < g·(g−1)·delta < epsPrime so shifts never change the
// overlap pattern.
func Fig4Proper(g int, epsPrime, delta float64) (*core.Instance, []int) {
	if g < 2 {
		panic("generator: Fig4Proper requires g ≥ 2")
	}
	maxShift := float64(g*(g-1)) * delta
	if delta <= 0 || maxShift >= epsPrime {
		panic("generator: Fig4Proper requires 0 < g(g-1)·delta < ε′")
	}
	left := interval.New(0, 1)
	right := interval.New(2-2*epsPrime, 3-2*epsPrime)
	var ivs []interval.Interval
	var order []int
	shift := 0
	for i := 0; i < g; i++ {
		order = append(order, len(ivs))
		ivs = append(ivs, left)
		for k := 0; k < g-1; k++ {
			d := float64(shift) * delta
			shift++
			order = append(order, len(ivs))
			ivs = append(ivs, interval.New(1-epsPrime+d, 2-epsPrime+d))
		}
		order = append(order, len(ivs))
		ivs = append(ivs, right)
	}
	in := core.NewInstance(g, ivs...)
	in.Name = fmt.Sprintf("fig4proper(g=%d,eps'=%g,delta=%g)", g, epsPrime, delta)
	return in, order
}
