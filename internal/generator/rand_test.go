package generator

import (
	"math"
	"testing"
)

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := newRNG(43)
	same := 0
	a = newRNG(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestRNGRangesAndMoments(t *testing.T) {
	r := newRNG(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v far from 0.5", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		k := r.Intn(10)
		if k < 0 || k >= 10 {
			t.Fatalf("Intn out of range: %d", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c < n/10-2000 || c > n/10+2000 {
			t.Errorf("Intn bucket %d count %d far from uniform", k, c)
		}
	}
	sum = 0
	for i := 0; i < n; i++ {
		e := r.ExpFloat64()
		if e < 0 {
			t.Fatalf("ExpFloat64 negative: %v", e)
		}
		sum += e
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean %v far from 1", mean)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	newRNG(1).Intn(0)
}
