package generator

import "busytime/internal/interval"

// StreamJob is one arrival of a rolling-horizon stream: the closed interval
// the job occupies and its capacity demand.
type StreamJob struct {
	Iv     interval.Interval
	Demand int
}

// Stream synthesizes a deterministic arrival sequence for the rolling-
// horizon online engine: n jobs in non-decreasing start order whose
// population of simultaneously live jobs hovers around `live` (by Little's
// law, arrival rate × mean duration = mean population: inter-arrival gaps
// are exponential with mean 1 and durations uniform in (0, 2·live]), with
// demands uniform in [1, maxDemand]. Durations are bounded — no job outlives
// 2·live time units — so the oldest live job, and with it the session's
// retained window, is hard-capped at a small multiple of the target
// population instead of growing with the longest exponential straggler.
// Feeding the stream to a session exercises arrivals and natural departures
// continuously — after the warm-up ramp every placement retires roughly one
// earlier job — so the live window, not the stream length, bounds the
// session's state.
func Stream(seed int64, n, live, maxDemand int) []StreamJob {
	if live < 1 {
		live = 1
	}
	if maxDemand < 1 {
		maxDemand = 1
	}
	r := newRNG(seed)
	jobs := make([]StreamJob, n)
	clock := 0.0
	for i := range jobs {
		clock += r.ExpFloat64()
		dur := r.Float64() * 2 * float64(live)
		jobs[i] = StreamJob{
			Iv:     interval.Interval{Start: clock, End: clock + dur},
			Demand: 1 + r.Intn(maxDemand),
		}
	}
	return jobs
}
