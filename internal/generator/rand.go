package generator

import "busytime/internal/xrand"

// rng aliases the shared splitmix64 generator (internal/xrand): a state step
// is one add and three xor-shift-multiplies, the value lives on the stack (no
// allocation, no lock), and the same seed yields the same instance on every
// platform — the per-instance seed convention of internal/experiments/rand.go.
// Suite generation stops dominating small-instance batch benchmarks.
type rng = xrand.RNG

// newRNG returns a generator for the given seed; distinct seeds (including
// 0 and negatives) land in distinct, well-mixed sequences.
func newRNG(seed int64) *rng { return xrand.New(seed) }
