package generator

import (
	"math"
	"math/bits"
)

// rng is a seedable splitmix64 generator (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA 2014). It replaces
// math/rand sources in the workload generators: a state step is one add and
// three xor-shift-multiplies, the value lives on the stack (no allocation,
// no lock), and the same seed yields the same instance on every platform —
// the per-instance seed convention of internal/experiments/rand.go. Suite
// generation stops dominating small-instance batch benchmarks.
type rng struct{ state uint64 }

// newRNG returns a generator for the given seed; distinct seeds (including
// 0 and negatives) land in distinct, well-mixed sequences.
func newRNG(seed int64) *rng { return &rng{state: uint64(seed)} }

// next advances the state and returns the next 64 uniformly random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n); it panics if n <= 0. The value is
// derived by fixed-point scaling (Lemire reduction without the rejection
// step); the residual bias of at most n/2⁶⁴ is irrelevant for workload
// synthesis and keeps the generator branch-free and deterministic.
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("generator: Intn argument must be positive")
	}
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1 via
// inversion sampling.
func (r *rng) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}
