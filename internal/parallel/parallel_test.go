package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"busytime/internal/xrand"
)

func TestMapOrderPreserved(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndSingleWorker(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Error("n=0 should return nil")
	}
	got := Map(10, 1, func(i int) int { return i })
	for i, v := range got {
		if v != i {
			t.Fatal("sequential path broken")
		}
	}
}

func TestMapCallsEachIndexOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	Map(n, 16, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%64) + 1
		work := func(i int) float64 {
			r := xrand.New(seed + int64(i))
			return r.Float64()
		}
		seq := Map(n, 1, work)
		par := Map(n, 8, work)
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapErrPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := MapErr(50, 4, func(i int) (int, error) {
		if i == 13 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestMapErrStopsClaimingAfterFailure(t *testing.T) {
	var calls atomic.Int32
	_, err := MapErr(10000, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if c := calls.Load(); c > 5000 {
		t.Errorf("%d calls after early failure; cancellation ineffective", c)
	}
}

func TestMapErrSequentialShortCircuit(t *testing.T) {
	var calls int
	_, err := MapErr(100, 1, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || calls != 4 {
		t.Errorf("calls = %d err = %v, want 4 calls and error", calls, err)
	}
}

func TestMapErrSuccess(t *testing.T) {
	got, err := MapErr(20, 4, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	ForEach(100, 8, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}

func TestClampWorkers(t *testing.T) {
	if w := clampWorkers(0, 5); w < 1 || w > 5 {
		t.Errorf("default workers = %d", w)
	}
	if w := clampWorkers(100, 3); w != 3 {
		t.Errorf("workers should clamp to n: %d", w)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Map(64, 0, func(i int) int { return i })
	}
}
