// Package parallel provides the small deterministic fan-out primitives the
// harness uses to spread independent trials across cores: an indexed Map
// (results land in input order regardless of completion order) and an
// error-collecting variant that cancels outstanding work on first failure.
//
// Determinism note: callers pass a function of the trial index and derive
// any randomness from per-index seeds, so parallel and sequential runs
// produce identical results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map evaluates f(0..n-1) using the given number of workers (≤ 0 means
// GOMAXPROCS) and returns the results in index order.
func Map[T any](n, workers int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapErr is Map with error handling: the first error (by completion) stops
// new work from being claimed, outstanding calls finish, and that error is
// returned alongside the partial results (failed or unclaimed slots hold
// zero values).
func MapErr[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = clampWorkers(workers, n)
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := f(i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	return out, firstErr
}

// ForEach runs f(0..n-1) for side effects with the given worker count.
func ForEach(n, workers int, f func(i int)) {
	Map(n, workers, func(i int) struct{} {
		f(i)
		return struct{}{}
	})
}

func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
