package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubtract(t *testing.T) {
	got := Subtract(New(0, 10), Set{New(2, 4), New(6, 7)})
	want := Set{New(0, 2), New(4, 6), New(7, 10)}
	if len(got) != len(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSubtractEdgeCases(t *testing.T) {
	if got := Subtract(New(0, 5), nil); len(got) != 1 || got[0] != New(0, 5) {
		t.Errorf("empty subtrahend: %v", got)
	}
	if got := Subtract(New(2, 3), Set{New(0, 5)}); len(got) != 0 {
		t.Errorf("full cover: %v", got)
	}
	if got := Subtract(New(0, 5), Set{New(0, 5)}); len(got) != 0 {
		t.Errorf("exact cover: %v", got)
	}
	// Unsorted, overlapping subtrahend handled via Union.
	got := Subtract(New(0, 6), Set{New(4, 5), New(1, 3), New(2, 4)})
	want := Set{New(0, 1), New(5, 6)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("messy subtrahend: %v, want %v", got, want)
	}
}

func TestSubtractSet(t *testing.T) {
	a := Set{New(0, 4), New(6, 10)}
	b := Set{New(2, 7)}
	got := SubtractSet(a, b)
	want := Set{New(0, 2), New(7, 10)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("SubtractSet = %v, want %v", got, want)
	}
}

func TestIntersectSets(t *testing.T) {
	a := Set{New(0, 4), New(6, 10)}
	b := Set{New(2, 7), New(9, 12)}
	got := IntersectSets(a, b)
	want := Set{New(2, 4), New(6, 7), New(9, 10)}
	if len(got) != len(want) {
		t.Fatalf("IntersectSets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
	if got := IntersectSets(Set{New(0, 1)}, Set{New(1, 2)}); len(got) != 0 {
		t.Errorf("touching sets have zero-measure intersection, got %v", got)
	}
}

func TestClip(t *testing.T) {
	s := Set{New(0, 4), New(3, 8), New(10, 12)}
	got := s.Clip(New(2, 10))
	want := Set{New(2, 4), New(3, 8), New(10, 10)}
	if len(got) != len(want) {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("piece %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuickSubtractMeasureIdentity(t *testing.T) {
	// span(a) = span(a∩b) + span(a\b)
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, int(na%16)+1)
		b := randomSet(r, int(nb%16)+1)
		inter := IntersectSets(a, b).TotalLen()
		diff := SubtractSet(a, b).TotalLen()
		return math.Abs(a.Span()-(inter+diff)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractDisjointFromSubtrahend(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, int(na%16)+1)
		b := randomSet(r, int(nb%16)+1)
		diff := SubtractSet(a, b)
		return IntersectSets(diff, b).TotalLen() < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, int(na%16)+1)
		b := randomSet(r, int(nb%16)+1)
		return math.Abs(IntersectSets(a, b).TotalLen()-IntersectSets(b, a).TotalLen()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
