package interval_test

import (
	"fmt"

	"busytime/internal/interval"
)

func ExampleSet_Span() {
	s := interval.Set{
		interval.New(0, 2),
		interval.New(1, 3),
		interval.New(5, 6),
	}
	fmt.Println(s.TotalLen(), s.Span())
	// Output: 5 4
}

func ExampleSet_MaxDepth() {
	// Closed semantics: touching intervals overlap at the shared point.
	s := interval.Set{interval.New(0, 1), interval.New(1, 2)}
	fmt.Println(s.MaxDepth())
	// Output: 2
}

func ExampleSet_IntegrateDepth() {
	s := interval.Set{interval.New(0, 2), interval.New(1, 3)}
	// Fractional machine requirement with g = 2: ⌈depth/2⌉ integrated.
	lb := s.IntegrateDepth(func(d int) float64 {
		return float64((d + 1) / 2)
	})
	fmt.Println(lb)
	// Output: 3
}

func ExampleSubtract() {
	pieces := interval.Subtract(interval.New(0, 10), interval.Set{
		interval.New(2, 4),
		interval.New(6, 7),
	})
	fmt.Println(pieces)
	// Output: [[0,2] [4,6] [7,10]]
}
