package interval

import (
	"math"
	"sort"
)

// Axis is a compressed time axis: a strictly increasing sequence of bucket
// boundaries derived from the distinct event times of a workload. Index
// structures keyed on Axis buckets (saturation bitmaps, load profiles, time
// shards) scale with the number of distinct endpoints instead of the raw
// time horizon, and on integral or wave-shaped workloads with few distinct
// times they collapse to a handful of buckets.
//
// Bucket b is the closed range [Boundary(b), Boundary(b+1)]. Consecutive
// buckets share their boundary point, mirroring the closed-interval
// semantics of the scheduling model: an event at a shared boundary belongs
// to both buckets.
//
// Range queries run through a uniform acceleration grid built once with the
// axis: a query first maps its time to a grid cell by one multiplication,
// then binary-searches only the handful of boundaries the cell brackets, so
// lookups are O(1) expected on near-uniform axes and O(log k) in a cell of
// k boundaries in the worst case.
type Axis struct {
	bounds []float64
	// Acceleration grid: cell c of [t0, t0+ncells/inv] brackets the
	// boundary indices [grid[c], grid[c+1]]; ncells = len(grid)-2.
	grid []int32
	t0   float64
	inv  float64
}

// NewAxis builds an axis whose boundaries are the distinct values of events,
// decimated with a uniform stride when the bucket count would exceed
// maxBuckets (maxBuckets <= 0 means unbounded). The events slice is sorted
// and deduplicated in place. Fewer than two distinct events yield the
// degenerate axis with NB() == 0.
func NewAxis(events []float64, maxBuckets int) Axis {
	if len(events) == 0 {
		return Axis{}
	}
	sort.Float64s(events)
	w := 1
	for i := 1; i < len(events); i++ {
		if events[i] != events[w-1] {
			events[w] = events[i]
			w++
		}
	}
	events = events[:w]
	if len(events) < 2 {
		return Axis{}
	}
	if segs := len(events) - 1; maxBuckets > 0 && segs > maxBuckets {
		stride := (segs + maxBuckets - 1) / maxBuckets
		w = 0
		for i := 0; i < len(events)-1; i += stride {
			events[w] = events[i]
			w++
		}
		events[w] = events[len(events)-1]
		events = events[:w+1]
	}
	ax := Axis{bounds: events, t0: events[0]}
	ncells := len(events) - 1
	ax.inv = float64(ncells) / (events[len(events)-1] - events[0])
	if !(ax.inv > 0) || math.IsInf(ax.inv, 1) {
		// Degenerate span; pos falls back to a plain binary search.
		ax.inv = 0
		return ax
	}
	// grid[c] = first boundary index whose cell (computed with the exact
	// query-side formula, so float rounding cancels) is >= c.
	ax.grid = make([]int32, ncells+2)
	i := 0
	for c := 0; c <= ncells+1; c++ {
		for i < len(events) && ax.cellOf(events[i]) < c {
			i++
		}
		ax.grid[c] = int32(i)
	}
	return ax
}

// cellOf maps a time to its acceleration-grid cell, clamped to the grid.
func (ax Axis) cellOf(t float64) int {
	c := int((t - ax.t0) * ax.inv)
	if c < 0 {
		return 0
	}
	if max := len(ax.grid) - 2; c > max {
		return max
	}
	return c
}

// pos returns the first boundary index i with Boundary(i) >= t (len(bounds)
// when every boundary is smaller), equivalent to sort.SearchFloat64s over
// the boundaries but restricted to the grid cell bracketing t.
func (ax Axis) pos(t float64) int {
	if t <= ax.bounds[0] {
		return 0
	}
	if t > ax.bounds[len(ax.bounds)-1] {
		return len(ax.bounds)
	}
	if ax.grid == nil {
		return sort.SearchFloat64s(ax.bounds, t)
	}
	c := ax.cellOf(t)
	lo, hi := int(ax.grid[c]), int(ax.grid[c+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ax.bounds[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NB returns the number of buckets.
func (ax Axis) NB() int {
	if len(ax.bounds) < 2 {
		return 0
	}
	return len(ax.bounds) - 1
}

// Boundary returns the i-th bucket boundary, 0 <= i <= NB().
func (ax Axis) Boundary(i int) float64 { return ax.bounds[i] }

// Hull returns the covered range [Boundary(0), Boundary(NB())]; ok is false
// for the degenerate axis.
func (ax Axis) Hull() (Interval, bool) {
	if ax.NB() == 0 {
		return Interval{}, false
	}
	return Interval{Start: ax.bounds[0], End: ax.bounds[len(ax.bounds)-1]}, true
}

// OverlapRange returns the inclusive range of buckets whose closed range
// intersects the closed interval iv — touching at a single point counts, so
// the range is exactly the set of buckets where iv can contribute load.
// lo > hi means no bucket intersects. For iv inside the hull the returned
// buckets also cover iv: Boundary(lo) <= iv.Start and Boundary(hi+1) >=
// iv.End.
func (ax Axis) OverlapRange(iv Interval) (lo, hi int) {
	nb := ax.NB()
	if nb == 0 || iv.End < ax.bounds[0] || iv.Start > ax.bounds[nb] {
		return 0, -1
	}
	// First bucket touching iv: smallest b with Boundary(b+1) >= iv.Start.
	lo = ax.pos(iv.Start) - 1
	if lo < 0 {
		lo = 0
	}
	if lo > nb-1 {
		lo = nb - 1
	}
	// Last bucket touching iv: largest b with Boundary(b) <= iv.End.
	hi = ax.pos(iv.End)
	if hi == len(ax.bounds) || ax.bounds[hi] > iv.End {
		hi--
	}
	if hi > nb-1 {
		hi = nb - 1
	}
	return lo, hi
}

// Interior returns the inclusive range of boundary indices strictly inside
// the closed interval iv: every returned index i satisfies
// iv.Start < Boundary(i) < iv.End. lo > hi means no boundary is interior.
// Cutting the time axis at an interior boundary of a job splits that job's
// window across the cut, so Interior is exactly the "which cuts would this
// job cross" query of the time-sharding layer.
func (ax Axis) Interior(iv Interval) (lo, hi int) {
	if ax.NB() == 0 {
		return 0, -1
	}
	lo = ax.pos(iv.Start)
	if lo < len(ax.bounds) && ax.bounds[lo] == iv.Start {
		lo++
	}
	hi = ax.pos(iv.End) - 1
	if last := len(ax.bounds) - 1; hi > last {
		hi = last
	}
	if lo > hi {
		return 0, -1
	}
	return lo, hi
}

// WithinRange returns the inclusive range of buckets entirely contained in
// the closed interval iv; lo > hi means none. Every returned bucket
// satisfies iv.Start <= Boundary(b) and Boundary(b+1) <= iv.End, so marking
// these buckets with a property that holds throughout iv never over-claims.
func (ax Axis) WithinRange(iv Interval) (lo, hi int) {
	nb := ax.NB()
	if nb == 0 {
		return 0, -1
	}
	lo = ax.pos(iv.Start)
	hi = ax.pos(iv.End)
	if hi == len(ax.bounds) || ax.bounds[hi] > iv.End {
		hi--
	}
	hi-- // bucket hi is bounded above by Boundary(hi+1)
	if hi > nb-1 {
		hi = nb - 1
	}
	if lo > hi {
		return 0, -1
	}
	return lo, hi
}

// InnerRange narrows a non-empty OverlapRange(iv) result to the buckets
// entirely contained in iv, in O(1) instead of WithinRange's searches.
// lo > hi means no bucket is fully covered.
func (ax Axis) InnerRange(lo, hi int, iv Interval) (ilo, ihi int) {
	ilo, ihi = lo, hi
	if ax.bounds[lo] < iv.Start {
		ilo = lo + 1
	}
	if ax.bounds[hi+1] > iv.End {
		ihi = hi - 1
	}
	return ilo, ihi
}
