package interval

import "slices"

// Event is a sweep-line event: Delta is +1 at an interval start and -1 at an
// interval end.
type Event struct {
	T     float64
	Delta int
}

// Events returns the start/end events of the set sorted by coordinate.
// At equal coordinates, start events come first: with closed intervals a job
// ending at t and a job starting at t are simultaneously active at t, so the
// sweep must reach their combined depth before decrementing.
func (s Set) Events() []Event {
	ev := make([]Event, 0, 2*len(s))
	for _, iv := range s {
		ev = append(ev, Event{T: iv.Start, Delta: +1}, Event{T: iv.End, Delta: -1})
	}
	slices.SortFunc(ev, func(a, b Event) int {
		if a.T != b.T {
			return cmpFloat(a.T, b.T)
		}
		return b.Delta - a.Delta // starts before ends
	})
	return ev
}

// MaxDepth returns the maximum number of intervals simultaneously active at
// any single point (closed semantics: touching intervals count together).
// This equals the maximum clique size of the induced interval graph.
func (s Set) MaxDepth() int {
	depth, best := 0, 0
	for _, ev := range s.Events() {
		depth += ev.Delta
		if depth > best {
			best = depth
		}
	}
	return best
}

// DepthAt returns the number of intervals containing the point t.
func (s Set) DepthAt(t float64) int {
	n := 0
	for _, iv := range s {
		if iv.Contains(t) {
			n++
		}
	}
	return n
}

// MaxDepthWithin returns the maximum point depth of the set restricted to the
// closed window w. Intervals not intersecting w are ignored. The result is
// the largest number of set members simultaneously active at some t ∈ w.
func (s Set) MaxDepthWithin(w Interval) int {
	clipped := make(Set, 0, len(s))
	for _, iv := range s {
		if x, ok := iv.Intersect(w); ok {
			clipped = append(clipped, x)
		}
	}
	return clipped.MaxDepth()
}

// DepthSegment is a maximal segment of constant open-interior depth produced
// by DepthProfile.
type DepthSegment struct {
	Window Interval
	Depth  int
}

// DepthProfile returns the piecewise-constant depth function of the set over
// the open interiors between consecutive event coordinates. Segments of depth
// zero inside the hull are included; zero-length segments are not. Point
// depths at event coordinates can exceed the surrounding segment depths
// (touching intervals) but carry no measure and are omitted.
func (s Set) DepthProfile() []DepthSegment {
	if len(s) == 0 {
		return nil
	}
	// For measure purposes, ends must be processed before starts at equal
	// coordinates so that the open segment between x and the next coordinate
	// reflects only intervals whose interior covers it.
	ev := make([]Event, 0, 2*len(s))
	for _, iv := range s {
		ev = append(ev, Event{T: iv.Start, Delta: +1}, Event{T: iv.End, Delta: -1})
	}
	slices.SortFunc(ev, func(a, b Event) int {
		if a.T != b.T {
			return cmpFloat(a.T, b.T)
		}
		return a.Delta - b.Delta // ends before starts
	})
	var segs []DepthSegment
	depth := 0
	prev := ev[0].T
	for _, e := range ev {
		if e.T > prev {
			segs = append(segs, DepthSegment{Window: Interval{Start: prev, End: e.T}, Depth: depth})
			prev = e.T
		}
		depth += e.Delta
	}
	return coalesce(segs)
}

func coalesce(segs []DepthSegment) []DepthSegment {
	out := segs[:0]
	for _, sg := range segs {
		if n := len(out); n > 0 && out[n-1].Depth == sg.Depth && out[n-1].Window.End == sg.Window.Start {
			out[n-1].Window.End = sg.Window.End
			continue
		}
		out = append(out, sg)
	}
	return out
}

// IntegrateDepth computes ∫ f(depth(t)) dt over the hull of the set, using
// the open-interior depth profile. Passing f = identity yields TotalLen;
// f = ceil(d/g) yields the fractional machine lower bound.
func (s Set) IntegrateDepth(f func(depth int) float64) float64 {
	var sum float64
	for _, sg := range s.DepthProfile() {
		sum += f(sg.Depth) * sg.Window.Len()
	}
	return sum
}
