package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name       string
		start, end float64
	}{
		{"reversed", 2, 1},
		{"nan start", math.NaN(), 1},
		{"nan end", 0, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v,%v) did not panic", tc.start, tc.end)
				}
			}()
			New(tc.start, tc.end)
		})
	}
}

func TestLenAndPoint(t *testing.T) {
	if got := New(1, 4).Len(); got != 3 {
		t.Errorf("Len = %v, want 3", got)
	}
	if !New(2, 2).IsPoint() {
		t.Error("degenerate interval not reported as point")
	}
	if New(2, 3).IsPoint() {
		t.Error("non-degenerate interval reported as point")
	}
}

func TestContains(t *testing.T) {
	iv := New(1, 3)
	for _, tc := range []struct {
		t    float64
		want bool
	}{{0.999, false}, {1, true}, {2, true}, {3, true}, {3.001, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestContainment(t *testing.T) {
	outer := New(0, 10)
	if !outer.ContainsInterval(New(2, 5)) {
		t.Error("ContainsInterval failed for strict subset")
	}
	if !outer.ContainsInterval(outer) {
		t.Error("ContainsInterval failed for equal interval")
	}
	if outer.ProperlyContains(outer) {
		t.Error("ProperlyContains true for equal interval")
	}
	if !outer.ProperlyContains(New(0, 5)) {
		t.Error("ProperlyContains false for shared-start subset")
	}
	if New(2, 5).ContainsInterval(outer) {
		t.Error("subset claims to contain superset")
	}
}

func TestOverlaps(t *testing.T) {
	a := New(0, 2)
	for _, tc := range []struct {
		b          Interval
		closed, op bool
	}{
		{New(2, 4), true, false},  // touching
		{New(1, 3), true, true},   // overlapping
		{New(3, 4), false, false}, // disjoint
		{New(0.5, 1), true, true}, // contained
	} {
		if got := a.Overlaps(tc.b); got != tc.closed {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", a, tc.b, got, tc.closed)
		}
		if got := a.OverlapsOpen(tc.b); got != tc.op {
			t.Errorf("OverlapsOpen(%v,%v) = %v, want %v", a, tc.b, got, tc.op)
		}
	}
}

func TestIntersectAndHull(t *testing.T) {
	a, b := New(0, 3), New(2, 5)
	x, ok := a.Intersect(b)
	if !ok || x != New(2, 3) {
		t.Errorf("Intersect = %v,%v; want [2,3],true", x, ok)
	}
	if _, ok := New(0, 1).Intersect(New(2, 3)); ok {
		t.Error("disjoint intervals reported as intersecting")
	}
	x, ok = New(0, 1).Intersect(New(1, 2))
	if !ok || !x.IsPoint() {
		t.Errorf("touching intersection = %v,%v; want point", x, ok)
	}
	if h := a.Hull(New(7, 9)); h != New(0, 9) {
		t.Errorf("Hull = %v, want [0,9]", h)
	}
}

func TestShiftScale(t *testing.T) {
	if got := New(1, 2).Shift(3); got != New(4, 5) {
		t.Errorf("Shift = %v", got)
	}
	if got := New(1, 2).Scale(2); got != New(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Scale did not panic")
		}
	}()
	New(1, 2).Scale(-1)
}

func TestSetTotalLenAndHull(t *testing.T) {
	s := Set{New(0, 1), New(2, 4), New(3, 6)}
	if got := s.TotalLen(); got != 6 {
		t.Errorf("TotalLen = %v, want 6", got)
	}
	h, ok := s.Hull()
	if !ok || h != New(0, 6) {
		t.Errorf("Hull = %v,%v; want [0,6],true", h, ok)
	}
	if _, ok := (Set{}).Hull(); ok {
		t.Error("empty set reported a hull")
	}
}

func TestUnionAndSpan(t *testing.T) {
	s := Set{New(3, 6), New(0, 1), New(1, 2), New(2, 4)}
	u := s.Union()
	if len(u) != 1 || u[0] != New(0, 6) {
		t.Errorf("Union = %v, want single [0,6]", u)
	}
	if got := s.Span(); got != 6 {
		t.Errorf("Span = %v, want 6", got)
	}
	gapped := Set{New(0, 1), New(5, 7)}
	if got := gapped.Span(); got != 3 {
		t.Errorf("Span with gap = %v, want 3", got)
	}
	if got := gapped.Union(); len(got) != 2 {
		t.Errorf("Union kept %d pieces, want 2", len(got))
	}
	if (Set{}).Union() != nil {
		t.Error("empty union should be nil")
	}
}

func TestDisjointCliqueProper(t *testing.T) {
	if !(Set{New(0, 1), New(1, 2)}).IsPairwiseDisjoint() {
		t.Error("touching intervals should be measure-disjoint")
	}
	if (Set{New(0, 2), New(1, 3)}).IsPairwiseDisjoint() {
		t.Error("overlapping intervals reported disjoint")
	}
	if !(Set{New(0, 3), New(1, 4), New(2, 5)}).IsClique() {
		t.Error("clique not detected")
	}
	if (Set{New(0, 1), New(2, 3)}).IsClique() {
		t.Error("non-clique reported as clique")
	}
	if !(Set{New(0, 2), New(1, 3)}).IsProper() {
		t.Error("proper set misclassified")
	}
	if (Set{New(0, 5), New(1, 2)}).IsProper() {
		t.Error("containment not detected by IsProper")
	}
	// Equal intervals contain but not properly.
	if !(Set{New(0, 1), New(0, 1)}).IsProper() {
		t.Error("duplicate intervals should count as proper")
	}
}

func TestCommonPoint(t *testing.T) {
	s := Set{New(0, 5), New(3, 8), New(4, 6)}
	pt, ok := s.CommonPoint()
	if !ok {
		t.Fatal("no common point found")
	}
	for _, iv := range s {
		if !iv.Contains(pt) {
			t.Errorf("common point %v outside %v", pt, iv)
		}
	}
	if _, ok := (Set{New(0, 1), New(2, 3)}).CommonPoint(); ok {
		t.Error("common point reported for disjoint set")
	}
}

func TestMaxDepthClosedSemantics(t *testing.T) {
	// [0,1] and [1,2] touch at 1: closed depth is 2, open profile max is 1.
	s := Set{New(0, 1), New(1, 2)}
	if got := s.MaxDepth(); got != 2 {
		t.Errorf("MaxDepth = %d, want 2 (closed)", got)
	}
	maxOpen := 0
	for _, sg := range s.DepthProfile() {
		if sg.Depth > maxOpen {
			maxOpen = sg.Depth
		}
	}
	if maxOpen != 1 {
		t.Errorf("open profile max = %d, want 1", maxOpen)
	}
}

func TestDepthAtAndWithin(t *testing.T) {
	s := Set{New(0, 4), New(1, 3), New(2, 6), New(5, 7)}
	if got := s.DepthAt(2.5); got != 3 {
		t.Errorf("DepthAt(2.5) = %d, want 3", got)
	}
	if got := s.MaxDepthWithin(New(4.5, 7)); got != 2 {
		t.Errorf("MaxDepthWithin = %d, want 2", got)
	}
	if got := s.MaxDepthWithin(New(10, 12)); got != 0 {
		t.Errorf("MaxDepthWithin empty window = %d, want 0", got)
	}
}

func TestDepthProfile(t *testing.T) {
	s := Set{New(0, 2), New(1, 3), New(5, 6)}
	segs := s.DepthProfile()
	want := []DepthSegment{
		{Window: New(0, 1), Depth: 1},
		{Window: New(1, 2), Depth: 2},
		{Window: New(2, 3), Depth: 1},
		{Window: New(3, 5), Depth: 0},
		{Window: New(5, 6), Depth: 1},
	}
	if len(segs) != len(want) {
		t.Fatalf("profile = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
	if (Set{}).DepthProfile() != nil {
		t.Error("empty profile should be nil")
	}
}

func TestIntegrateDepth(t *testing.T) {
	s := Set{New(0, 2), New(1, 3)}
	if got := s.IntegrateDepth(func(d int) float64 { return float64(d) }); got != s.TotalLen() {
		t.Errorf("∫depth = %v, want TotalLen %v", got, s.TotalLen())
	}
	ind := s.IntegrateDepth(func(d int) float64 {
		if d > 0 {
			return 1
		}
		return 0
	})
	if ind != s.Span() {
		t.Errorf("∫[depth>0] = %v, want Span %v", ind, s.Span())
	}
}

func TestSortOrders(t *testing.T) {
	s := Set{New(2, 3), New(0, 5), New(0, 2), New(1, 4)}
	s.SortByStart()
	for i := 1; i < len(s); i++ {
		if s[i-1].Start > s[i].Start {
			t.Fatalf("SortByStart violated at %d: %v", i, s)
		}
	}
	s.SortByLenDesc()
	for i := 1; i < len(s); i++ {
		if s[i-1].Len() < s[i].Len() {
			t.Fatalf("SortByLenDesc violated at %d: %v", i, s)
		}
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := make(Set, n)
	for i := range s {
		start := r.Float64() * 100
		s[i] = New(start, start+r.Float64()*20)
	}
	return s
}

func TestQuickSpanAtMostTotalLen(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		s := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		return s.Span() <= s.TotalLen()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanEqualsTotalLenIffDisjoint(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		s := randomSet(rand.New(rand.NewSource(seed)), int(sz%16)+1)
		near := math.Abs(s.Span()-s.TotalLen()) < 1e-9
		return near == s.IsPairwiseDisjoint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionPreservesMeasureAndDisjoint(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		s := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		u := s.Union()
		if !u.IsPairwiseDisjoint() {
			return false
		}
		return math.Abs(u.TotalLen()-s.Span()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDepthIntegralMatchesTotalLen(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		s := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		got := s.IntegrateDepth(func(d int) float64 { return float64(d) })
		return math.Abs(got-s.TotalLen()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxDepthBounds(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		s := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		d := s.MaxDepth()
		if d < 1 || d > len(s) {
			return false
		}
		// Open-profile max never exceeds closed max depth.
		for _, sg := range s.DepthProfile() {
			if sg.Depth > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSpan(b *testing.B) {
	s := randomSet(rand.New(rand.NewSource(1)), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Span()
	}
}

func BenchmarkMaxDepth(b *testing.B) {
	s := randomSet(rand.New(rand.NewSource(1)), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.MaxDepth()
	}
}
