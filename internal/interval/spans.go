package interval

import "sort"

// Spans maintains the union of a growing multiset of intervals as a sorted
// slice of pairwise-disjoint pieces (touching pieces are merged, matching
// Set.Union) together with the running total measure. Adding an interval
// costs O(log k) plus the size of the merged run; the total and the piece
// count are O(1) reads. Schedules use one Spans per machine so busy time is
// accounted incrementally instead of re-deriving interval sets per query.
//
// Batch schedulers only grow their spans — they never unassign jobs — but
// the rolling-horizon online engine additionally shrinks them at the edges:
// TruncateAfter removes coverage past a point when a job releases early, and
// RetireBefore drops fully-settled pieces behind the stream clock during
// window compaction. Both keep total equal to the measure of the remaining
// pieces; the online session accounts accrued (retired) busy time itself.
type Spans struct {
	pieces []Interval
	total  float64
}

// Reset empties the spans, retaining the piece slice for reuse.
func (sp *Spans) Reset() {
	sp.pieces = sp.pieces[:0]
	sp.total = 0
}

// Count returns the number of disjoint pieces.
func (sp *Spans) Count() int { return len(sp.pieces) }

// Total returns the measure of the union of everything added so far.
func (sp *Spans) Total() float64 { return sp.total }

// AppendTo appends the disjoint pieces in ascending order to dst and returns
// the extended slice.
func (sp *Spans) AppendTo(dst Set) Set { return append(dst, sp.pieces...) }

// run locates the run [i, j) of pieces that iv overlaps or touches; i == j
// means iv is disjoint from every piece and belongs at position i.
func (sp *Spans) run(iv Interval) (i, j int) {
	// First piece that could merge with iv: End ≥ iv.Start (touch counts).
	i = sort.Search(len(sp.pieces), func(k int) bool { return sp.pieces[k].End >= iv.Start })
	for j = i; j < len(sp.pieces) && sp.pieces[j].Start <= iv.End; j++ {
	}
	return i, j
}

// Delta returns the measure Add(iv) would contribute, without modifying the
// spans.
func (sp *Spans) Delta(iv Interval) float64 {
	i, j := sp.run(iv)
	if i == j {
		return iv.Len()
	}
	lo, hi := iv.Start, iv.End
	if s := sp.pieces[i].Start; s < lo {
		lo = s
	}
	if e := sp.pieces[j-1].End; e > hi {
		hi = e
	}
	removed := 0.0
	for k := i; k < j; k++ {
		removed += sp.pieces[k].Len()
	}
	return (hi - lo) - removed
}

// Graft appends already-merged pieces to the spans without touching the
// running total. The pieces must be disjoint, non-touching, ascending, and lie
// strictly after every piece already present — the shape produced by adopting
// another Spans' run from a later time range, which is exactly the
// decomposition layer's stitch merge (components are separated by gaps of
// positive length). Totals are accounted separately via AddMeasure so the
// caller can replay the originating run's floating-point accumulation order
// bit for bit instead of summing per-piece measures in graft order.
func (sp *Spans) Graft(pieces []Interval) {
	if len(pieces) == 0 {
		return
	}
	if n := len(sp.pieces); n > 0 && pieces[0].Start <= sp.pieces[n-1].End {
		panic("interval: Graft pieces must lie strictly after the existing spans")
	}
	sp.pieces = append(sp.pieces, pieces...)
}

// AddMeasure folds an externally computed measure contribution into the
// running total, the accounting half of Graft: the caller replays the
// originating run's per-placement span deltas in its placement order, so
// Total reproduces that run's accumulation bitwise.
func (sp *Spans) AddMeasure(d float64) { sp.total += d }

// TruncateAfter removes all coverage strictly after t and returns the measure
// removed (the decrease of Total). A piece straddling t is clipped to end at
// t; pieces beginning at or after t are dropped (a leftover point at t would
// carry no measure). The piece slice's capacity is retained. Used by Release:
// when the last job covering a machine's busy tail departs early, the tail
// beyond the remaining jobs' coverage is un-billed.
func (sp *Spans) TruncateAfter(t float64) float64 {
	n := len(sp.pieces)
	// First piece with End > t: everything before it is untouched.
	i := sort.Search(n, func(k int) bool { return sp.pieces[k].End > t })
	if i == n {
		return 0
	}
	removed := 0.0
	if p := &sp.pieces[i]; p.Start < t {
		removed += p.End - t
		p.End = t
		i++
	}
	for k := i; k < n; k++ {
		removed += sp.pieces[k].Len()
	}
	sp.pieces = sp.pieces[:i]
	sp.total -= removed
	return removed
}

// RetireBefore drops every piece ending strictly before t from the front of
// the spans and returns how many were retired. Remaining pieces shift down in
// the same backing array, so repeated retirement on a warm machine reuses
// capacity instead of allocating. Total decreases by the retired measure; the
// caller banks that measure in its own accrued-cost accumulator first (see
// the online session's compaction), keeping the invariant Total == measure of
// the pieces still held.
func (sp *Spans) RetireBefore(t float64) int {
	n := len(sp.pieces)
	i := 0
	for i < n && sp.pieces[i].End < t {
		sp.total -= sp.pieces[i].Len()
		i++
	}
	if i == 0 {
		return 0
	}
	copy(sp.pieces, sp.pieces[i:])
	sp.pieces = sp.pieces[:n-i]
	return i
}

// Add merges iv into the spans and returns the measure it contributed (the
// increase of Total).
func (sp *Spans) Add(iv Interval) float64 {
	i, j := sp.run(iv)
	if i == j {
		sp.pieces = append(sp.pieces, Interval{})
		copy(sp.pieces[i+1:], sp.pieces[i:])
		sp.pieces[i] = iv
		sp.total += iv.Len()
		return iv.Len()
	}
	if j == i+1 {
		// Merging into exactly one piece — the dominant case on a warm
		// machine — widens it in place with no tail movement. The delta
		// arithmetic mirrors the general path bit for bit so Delta and Add
		// always agree.
		p := &sp.pieces[i]
		lo, hi := iv.Start, iv.End
		if p.Start < lo {
			lo = p.Start
		}
		if p.End > hi {
			hi = p.End
		}
		delta := (hi - lo) - p.Len()
		p.Start, p.End = lo, hi
		sp.total += delta
		return delta
	}
	lo, hi := iv.Start, iv.End
	if s := sp.pieces[i].Start; s < lo {
		lo = s
	}
	if e := sp.pieces[j-1].End; e > hi {
		hi = e
	}
	removed := 0.0
	for k := i; k < j; k++ {
		removed += sp.pieces[k].Len()
	}
	sp.pieces[i] = Interval{Start: lo, End: hi}
	sp.pieces = append(sp.pieces[:i+1], sp.pieces[j:]...)
	delta := (hi - lo) - removed
	sp.total += delta
	return delta
}
