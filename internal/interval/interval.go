// Package interval provides closed-interval arithmetic and sweep-line
// primitives used throughout the busy-time scheduling library.
//
// Jobs in the paper are closed intervals [s, c]: two intervals that merely
// touch at a point intersect (they form an edge of the interval graph and
// both occupy a machine slot at the shared instant), but the shared point has
// measure zero and therefore contributes nothing to lengths, spans or any
// depth integral.
package interval

import (
	"fmt"
	"math"
	"slices"
)

// cmpFloat is the three-way comparator of finite float64 coordinates used by
// the slices.SortFunc orders in this package. NaN never reaches a sort (New
// and the generators reject it), so the IEEE comparison is a total order.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Interval is a closed interval [Start, End] on the real line.
// The zero value is the degenerate interval [0, 0].
type Interval struct {
	Start float64
	End   float64
}

// New returns the closed interval [start, end]. It panics if end < start or
// either endpoint is NaN; callers construct intervals from validated data.
func New(start, end float64) Interval {
	if math.IsNaN(start) || math.IsNaN(end) {
		panic("interval: NaN endpoint")
	}
	if end < start {
		panic(fmt.Sprintf("interval: end %v < start %v", end, start))
	}
	return Interval{Start: start, End: end}
}

// Len returns the length End-Start of the interval.
func (iv Interval) Len() float64 { return iv.End - iv.Start }

// IsPoint reports whether the interval is degenerate (Start == End).
func (iv Interval) IsPoint() bool { return iv.Start == iv.End }

// Contains reports whether t lies in the closed interval.
func (iv Interval) Contains(t float64) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether o is entirely inside iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return iv.Start <= o.Start && o.End <= iv.End
}

// ProperlyContains reports whether o is inside iv and strictly shorter on at
// least one side (i.e. o ⊆ iv and o ≠ iv).
func (iv Interval) ProperlyContains(o Interval) bool {
	return iv.ContainsInterval(o) && (iv.Start < o.Start || o.End < iv.End)
}

// Overlaps reports whether the two closed intervals intersect, including the
// case where they merely touch at a point.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

// OverlapsOpen reports whether the two intervals share a set of positive
// measure (their open interiors intersect).
func (iv Interval) OverlapsOpen(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Intersect returns the intersection of two intervals and whether it is
// non-empty (possibly a single point).
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	s := math.Max(iv.Start, o.Start)
	e := math.Min(iv.End, o.End)
	if e < s {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Hull returns the smallest interval containing both iv and o.
func (iv Interval) Hull(o Interval) Interval {
	return Interval{Start: math.Min(iv.Start, o.Start), End: math.Max(iv.End, o.End)}
}

// Shift returns the interval translated by dt.
func (iv Interval) Shift(dt float64) Interval {
	return Interval{Start: iv.Start + dt, End: iv.End + dt}
}

// Scale returns the interval with both endpoints multiplied by k ≥ 0.
func (iv Interval) Scale(k float64) Interval {
	if k < 0 {
		panic("interval: negative scale")
	}
	return Interval{Start: iv.Start * k, End: iv.End * k}
}

func (iv Interval) String() string { return fmt.Sprintf("[%g,%g]", iv.Start, iv.End) }

// Set is a multiset of intervals. Sets are ordinary slices; functions that
// need an ordering sort a copy unless documented otherwise.
type Set []Interval

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// TotalLen returns the sum of the interval lengths, len(I) in the paper.
func (s Set) TotalLen() float64 {
	var sum float64
	for _, iv := range s {
		sum += iv.Len()
	}
	return sum
}

// Hull returns the smallest interval containing every interval of the set.
// ok is false for an empty set.
func (s Set) Hull() (hull Interval, ok bool) {
	if len(s) == 0 {
		return Interval{}, false
	}
	hull = s[0]
	for _, iv := range s[1:] {
		hull = hull.Hull(iv)
	}
	return hull, true
}

// SortByStart sorts the set in place by start time, breaking ties by end time.
func (s Set) SortByStart() {
	slices.SortFunc(s, func(a, b Interval) int {
		if a.Start != b.Start {
			return cmpFloat(a.Start, b.Start)
		}
		return cmpFloat(a.End, b.End)
	})
}

// SortByLenDesc sorts the set in place by non-increasing length, breaking
// ties by start then end so that the order is deterministic.
func (s Set) SortByLenDesc() {
	slices.SortFunc(s, func(a, b Interval) int {
		la, lb := a.Len(), b.Len()
		if la != lb {
			return cmpFloat(lb, la)
		}
		if a.Start != b.Start {
			return cmpFloat(a.Start, b.Start)
		}
		return cmpFloat(a.End, b.End)
	})
}

// Union returns the union of the set as a minimal sorted slice of pairwise
// disjoint intervals. Touching intervals are merged.
func (s Set) Union() Set {
	if len(s) == 0 {
		return nil
	}
	sorted := s.Clone()
	sorted.SortByStart()
	out := Set{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Span returns the measure of the union of the set, span(I) in the paper.
func (s Set) Span() float64 {
	return s.Union().TotalLen()
}

// IsPairwiseDisjoint reports whether no two intervals of the set share
// positive measure. Touching at a point is allowed.
func (s Set) IsPairwiseDisjoint() bool {
	sorted := s.Clone()
	sorted.SortByStart()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].End > sorted[i].Start {
			return false
		}
	}
	return true
}

// IsClique reports whether every pair of intervals in the set intersects
// (closed semantics). By Helly's property for intervals this is equivalent to
// all intervals sharing a common point.
func (s Set) IsClique() bool {
	_, ok := s.CommonPoint()
	return ok || len(s) <= 1
}

// CommonPoint returns a point contained in every interval of the set, if one
// exists. For an empty set ok is false.
func (s Set) CommonPoint() (t float64, ok bool) {
	if len(s) == 0 {
		return 0, false
	}
	lo, hi := s[0].Start, s[0].End
	for _, iv := range s[1:] {
		lo = math.Max(lo, iv.Start)
		hi = math.Min(hi, iv.End)
	}
	if lo > hi {
		return 0, false
	}
	return lo, true
}

// IsProper reports whether no interval of the set properly contains another,
// i.e. the set induces a proper interval graph.
func (s Set) IsProper() bool {
	for i := range s {
		for j := range s {
			if i != j && s[i].ProperlyContains(s[j]) {
				return false
			}
		}
	}
	return true
}
