package interval

import (
	"math/rand"
	"testing"
)

func randAxis(r *rand.Rand, n, maxBuckets int) Axis {
	events := make([]float64, n)
	for i := range events {
		events[i] = float64(r.Intn(40)) + r.Float64()*float64(r.Intn(3))
	}
	return NewAxis(events, maxBuckets)
}

// TestAxisBoundariesStrictlyIncrease pins the structural invariant every
// range computation relies on.
func TestAxisBoundariesStrictlyIncrease(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ax := randAxis(r, 1+r.Intn(200), 1+r.Intn(32))
		for b := 1; b <= ax.NB(); b++ {
			if ax.Boundary(b-1) >= ax.Boundary(b) {
				t.Fatalf("trial %d: boundaries not increasing at %d: %v >= %v",
					trial, b, ax.Boundary(b-1), ax.Boundary(b))
			}
		}
	}
}

// TestAxisDecimationRespectsCapAndEndpoints checks the stride decimation:
// the bucket count obeys the cap and the hull endpoints survive exactly.
func TestAxisDecimationRespectsCapAndEndpoints(t *testing.T) {
	events := make([]float64, 1000)
	for i := range events {
		events[i] = float64(i)
	}
	lo, hi := events[0], events[len(events)-1]
	ax := NewAxis(events, 64)
	if ax.NB() > 64 || ax.NB() == 0 {
		t.Fatalf("NB = %d, want in (0, 64]", ax.NB())
	}
	hull, ok := ax.Hull()
	if !ok || hull.Start != lo || hull.End != hi {
		t.Fatalf("hull %v, want [%v,%v]", hull, lo, hi)
	}
}

// TestAxisRangeGeometry fuzzes the three range queries against the bucket
// geometry they promise: OverlapRange buckets touch the interval and cover
// it, WithinRange buckets lie inside it, and InnerRange reproduces
// WithinRange on overlap results.
func TestAxisRangeGeometry(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		ax := randAxis(r, 2+r.Intn(100), []int{0, 8, 1 << 16}[r.Intn(3)])
		nb := ax.NB()
		if nb == 0 {
			continue
		}
		for q := 0; q < 50; q++ {
			var iv Interval
			if r.Intn(3) == 0 && nb > 0 {
				// Exact boundary endpoints exercise the touching cases.
				a, b := r.Intn(nb+1), r.Intn(nb+1)
				if a > b {
					a, b = b, a
				}
				iv = Interval{Start: ax.Boundary(a), End: ax.Boundary(b)}
			} else {
				s := ax.Boundary(0) + r.Float64()*(ax.Boundary(nb)-ax.Boundary(0))
				iv = Interval{Start: s, End: s + r.Float64()*10}
			}
			lo, hi := ax.OverlapRange(iv)
			for b := 0; b < nb; b++ {
				bucket := Interval{Start: ax.Boundary(b), End: ax.Boundary(b + 1)}
				if bucket.Overlaps(iv) != (lo <= b && b <= hi) {
					t.Fatalf("trial %d: OverlapRange(%v) = [%d,%d], bucket %d %v overlap=%v",
						trial, iv, lo, hi, b, bucket, bucket.Overlaps(iv))
				}
			}
			if lo <= hi && iv.Start >= ax.Boundary(0) && iv.End <= ax.Boundary(nb) {
				if ax.Boundary(lo) > iv.Start || ax.Boundary(hi+1) < iv.End {
					t.Fatalf("trial %d: OverlapRange(%v) = [%d,%d] does not cover the interval", trial, iv, lo, hi)
				}
			}
			wlo, whi := ax.WithinRange(iv)
			for b := 0; b < nb; b++ {
				inside := iv.Start <= ax.Boundary(b) && ax.Boundary(b+1) <= iv.End
				if inside != (wlo <= b && b <= whi) {
					t.Fatalf("trial %d: WithinRange(%v) = [%d,%d], bucket %d inside=%v",
						trial, iv, wlo, whi, b, inside)
				}
			}
			if lo <= hi {
				ilo, ihi := ax.InnerRange(lo, hi, iv)
				if ilo <= ihi != (wlo <= whi) || (ilo <= ihi && (ilo != wlo || ihi != whi)) {
					t.Fatalf("trial %d: InnerRange(%v) = [%d,%d], WithinRange = [%d,%d]",
						trial, iv, ilo, ihi, wlo, whi)
				}
			}
		}
	}
}
