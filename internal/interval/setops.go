package interval

// Subtract returns the part of iv not covered by the set s, as a sorted
// disjoint slice of intervals. Point gaps (zero measure) are not reported.
func Subtract(iv Interval, s Set) Set {
	covered := s.Union()
	var out Set
	cur := iv
	for _, c := range covered {
		if c.End <= cur.Start {
			continue
		}
		if c.Start >= cur.End {
			break
		}
		if c.Start > cur.Start {
			out = append(out, Interval{Start: cur.Start, End: c.Start})
		}
		if c.End >= cur.End {
			return out
		}
		cur.Start = c.End
	}
	if cur.End > cur.Start {
		out = append(out, cur)
	}
	return out
}

// SubtractSet returns the measure-wise difference a \ b as a sorted disjoint
// slice of intervals.
func SubtractSet(a, b Set) Set {
	bu := b.Union()
	var out Set
	for _, iv := range a.Union() {
		out = append(out, subtractAgainstUnion(iv, bu)...)
	}
	return out
}

// subtractAgainstUnion is Subtract with b already unioned.
func subtractAgainstUnion(iv Interval, covered Set) Set {
	var out Set
	cur := iv
	for _, c := range covered {
		if c.End <= cur.Start {
			continue
		}
		if c.Start >= cur.End {
			break
		}
		if c.Start > cur.Start {
			out = append(out, Interval{Start: cur.Start, End: c.Start})
		}
		if c.End >= cur.End {
			return out
		}
		cur.Start = c.End
	}
	if cur.End > cur.Start {
		out = append(out, cur)
	}
	return out
}

// IntersectSets returns the measure-wise intersection a ∩ b as a sorted
// disjoint slice of intervals (zero-measure touch points omitted).
func IntersectSets(a, b Set) Set {
	au, bu := a.Union(), b.Union()
	var out Set
	i, j := 0, 0
	for i < len(au) && j < len(bu) {
		lo := au[i].Start
		if bu[j].Start > lo {
			lo = bu[j].Start
		}
		hi := au[i].End
		if bu[j].End < hi {
			hi = bu[j].End
		}
		if hi > lo {
			out = append(out, Interval{Start: lo, End: hi})
		}
		if au[i].End < bu[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Clip returns the parts of every interval of s inside the window w,
// dropping empty results but keeping touch points (closed semantics), so a
// clipped set preserves capacity interactions at the window border.
func (s Set) Clip(w Interval) Set {
	var out Set
	for _, iv := range s {
		if x, ok := iv.Intersect(w); ok {
			out = append(out, x)
		}
	}
	return out
}
