package interval

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpansMatchesSetUnion(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		var sp Spans
		var set Set
		for k := 0; k < 60; k++ {
			s := math.Round(r.Float64()*40) / 2 // coarse grid forces touches and duplicates
			iv := Interval{Start: s, End: s + math.Round(r.Float64()*10)/2}
			before := sp.Total()
			delta := sp.Add(iv)
			set = append(set, iv)
			if got, want := sp.Total(), set.Span(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d step %d: Total %v != Span %v", seed, k, got, want)
			}
			if math.Abs(before+delta-sp.Total()) > 1e-12 {
				t.Fatalf("seed %d step %d: delta %v inconsistent with totals", seed, k, delta)
			}
			union := set.Union()
			pieces := sp.AppendTo(nil)
			if len(pieces) != len(union) {
				t.Fatalf("seed %d step %d: %d pieces, union has %d", seed, k, len(pieces), len(union))
			}
			for i := range union {
				if pieces[i] != union[i] {
					t.Fatalf("seed %d step %d: piece %d = %v, union %v", seed, k, i, pieces[i], union[i])
				}
			}
		}
	}
}

func TestSpansDeltaIsReadOnlyAndExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sp Spans
	for k := 0; k < 200; k++ {
		s := r.Float64() * 30
		iv := Interval{Start: s, End: s + r.Float64()*8}
		want := sp.Delta(iv)
		before := sp.AppendTo(nil)
		got := sp.Add(iv)
		if got != want {
			t.Fatalf("step %d: Delta %v != Add %v", k, want, got)
		}
		_ = before
	}
}

func TestSpansTouchingMerges(t *testing.T) {
	var sp Spans
	sp.Add(Interval{0, 1})
	sp.Add(Interval{2, 3})
	if sp.Count() != 2 {
		t.Fatalf("want 2 disjoint pieces, got %d", sp.Count())
	}
	if d := sp.Add(Interval{1, 2}); d != 1 {
		t.Fatalf("bridging add contributed %v, want 1", d)
	}
	if sp.Count() != 1 || sp.Total() != 3 {
		t.Fatalf("after bridge: count=%d total=%v, want 1/3", sp.Count(), sp.Total())
	}
	// Point interval touching an end merges without growing the total.
	if d := sp.Add(Interval{3, 3}); d != 0 || sp.Count() != 1 {
		t.Fatalf("touching point: delta=%v count=%d", d, sp.Count())
	}
	sp.Reset()
	if sp.Count() != 0 || sp.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}
