package interval

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpansMatchesSetUnion(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		var sp Spans
		var set Set
		for k := 0; k < 60; k++ {
			s := math.Round(r.Float64()*40) / 2 // coarse grid forces touches and duplicates
			iv := Interval{Start: s, End: s + math.Round(r.Float64()*10)/2}
			before := sp.Total()
			delta := sp.Add(iv)
			set = append(set, iv)
			if got, want := sp.Total(), set.Span(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d step %d: Total %v != Span %v", seed, k, got, want)
			}
			if math.Abs(before+delta-sp.Total()) > 1e-12 {
				t.Fatalf("seed %d step %d: delta %v inconsistent with totals", seed, k, delta)
			}
			union := set.Union()
			pieces := sp.AppendTo(nil)
			if len(pieces) != len(union) {
				t.Fatalf("seed %d step %d: %d pieces, union has %d", seed, k, len(pieces), len(union))
			}
			for i := range union {
				if pieces[i] != union[i] {
					t.Fatalf("seed %d step %d: piece %d = %v, union %v", seed, k, i, pieces[i], union[i])
				}
			}
		}
	}
}

func TestSpansDeltaIsReadOnlyAndExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sp Spans
	for k := 0; k < 200; k++ {
		s := r.Float64() * 30
		iv := Interval{Start: s, End: s + r.Float64()*8}
		want := sp.Delta(iv)
		before := sp.AppendTo(nil)
		got := sp.Add(iv)
		if got != want {
			t.Fatalf("step %d: Delta %v != Add %v", k, want, got)
		}
		_ = before
	}
}

func TestSpansTruncateAfter(t *testing.T) {
	build := func() *Spans {
		var sp Spans
		sp.Add(Interval{0, 2})
		sp.Add(Interval{3, 5})
		sp.Add(Interval{6, 8})
		return &sp
	}
	cases := []struct {
		t       float64
		removed float64
		count   int
		total   float64
	}{
		{9, 0, 3, 6},   // past everything: no-op
		{8, 0, 3, 6},   // exactly the last end: closed pieces keep [6,8]
		{7, 1, 3, 5},   // clips the straddling piece to [6,7]
		{6, 2, 2, 4},   // piece starting at t is dropped (no zero-measure stub)
		{5.5, 2, 2, 4}, // drops the third piece entirely
		{4, 3, 2, 3},   // clips the middle piece to [3,4], drops the third
		{0, 6, 0, 0},   // piece starting at 0 dropped: empty
		{-1, 6, 0, 0},  // before everything: empty
	}
	for _, c := range cases {
		sp := build()
		if got := sp.TruncateAfter(c.t); math.Abs(got-c.removed) > 1e-12 {
			t.Fatalf("TruncateAfter(%v) removed %v, want %v", c.t, got, c.removed)
		}
		if sp.Count() != c.count || math.Abs(sp.Total()-c.total) > 1e-12 {
			t.Fatalf("TruncateAfter(%v): count=%d total=%v, want %d/%v",
				c.t, sp.Count(), sp.Total(), c.count, c.total)
		}
		// Invariant: total equals the measure of the remaining pieces.
		var m float64
		for _, p := range sp.AppendTo(nil) {
			m += p.Len()
		}
		if math.Abs(m-sp.Total()) > 1e-12 {
			t.Fatalf("TruncateAfter(%v): pieces measure %v != total %v", c.t, m, sp.Total())
		}
	}
}

func TestSpansRetireBefore(t *testing.T) {
	var sp Spans
	sp.Add(Interval{0, 2})
	sp.Add(Interval{3, 5})
	sp.Add(Interval{6, 8})
	if n := sp.RetireBefore(0); n != 0 {
		t.Fatalf("RetireBefore(0) retired %d, want 0", n)
	}
	if n := sp.RetireBefore(2); n != 0 { // End == t is not strictly before
		t.Fatalf("RetireBefore(2) retired %d, want 0", n)
	}
	if n := sp.RetireBefore(5.5); n != 2 {
		t.Fatalf("RetireBefore(5.5) retired %d, want 2", n)
	}
	if sp.Count() != 1 || math.Abs(sp.Total()-2) > 1e-12 {
		t.Fatalf("after retire: count=%d total=%v, want 1/2", sp.Count(), sp.Total())
	}
	// The backing array is reused: a later add within capacity must not move
	// the slice header's base (capacity preserved by the copy-down).
	if got := sp.AppendTo(nil); got[0] != (Interval{6, 8}) {
		t.Fatalf("surviving piece = %v, want [6,8]", got[0])
	}
	if n := sp.RetireBefore(100); n != 1 || sp.Count() != 0 || sp.Total() != 0 {
		t.Fatalf("final retire: n=%d count=%d total=%v", n, sp.Count(), sp.Total())
	}
}

func TestSpansTruncateRetireRandomized(t *testing.T) {
	// Differential: Spans under random Add/TruncateAfter/RetireBefore always
	// has total == measure of pieces and pieces sorted/disjoint.
	r := rand.New(rand.NewSource(11))
	var sp Spans
	retired := 0.0
	for k := 0; k < 2000; k++ {
		switch r.Intn(4) {
		case 0, 1:
			s := math.Round(r.Float64()*60) / 2
			sp.Add(Interval{Start: s, End: s + math.Round(r.Float64()*10)/2})
		case 2:
			sp.TruncateAfter(math.Round(r.Float64() * 140 / 2))
		default:
			retired += sp.Total()
			sp.RetireBefore(math.Round(r.Float64() * 60))
			retired -= sp.Total()
		}
		pieces := sp.AppendTo(nil)
		var m float64
		for i, p := range pieces {
			if p.End < p.Start {
				t.Fatalf("step %d: reversed piece %v", k, p)
			}
			if i > 0 && pieces[i-1].End >= p.Start {
				t.Fatalf("step %d: pieces %v, %v not disjoint-sorted", k, pieces[i-1], p)
			}
			m += p.Len()
		}
		if math.Abs(m-sp.Total()) > 1e-9 {
			t.Fatalf("step %d: measure %v != total %v", k, m, sp.Total())
		}
	}
	if retired < 0 {
		t.Fatalf("retired measure went negative: %v", retired)
	}
}

func TestSpansTouchingMerges(t *testing.T) {
	var sp Spans
	sp.Add(Interval{0, 1})
	sp.Add(Interval{2, 3})
	if sp.Count() != 2 {
		t.Fatalf("want 2 disjoint pieces, got %d", sp.Count())
	}
	if d := sp.Add(Interval{1, 2}); d != 1 {
		t.Fatalf("bridging add contributed %v, want 1", d)
	}
	if sp.Count() != 1 || sp.Total() != 3 {
		t.Fatalf("after bridge: count=%d total=%v, want 1/3", sp.Count(), sp.Total())
	}
	// Point interval touching an end merges without growing the total.
	if d := sp.Add(Interval{3, 3}); d != 0 || sp.Count() != 1 {
		t.Fatalf("touching point: delta=%v count=%d", d, sp.Count())
	}
	sp.Reset()
	if sp.Count() != 0 || sp.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}
