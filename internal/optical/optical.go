// Package optical implements the application of Section 4: traffic grooming
// on a path network. Lightpaths (a, b) over nodes 0..L−1 must be assigned
// wavelengths (colors) such that at most g lightpaths of one wavelength
// share an edge; the hardware cost combines regenerators (one per internal
// node per wavelength passing through, shared by up to g groomed paths) and
// ADMs (add-drop multiplexers at endpoints).
//
// The paper's reduction maps lightpath (a, b) to the job [a+½, b−½]: a
// wavelength corresponds to a machine, the regenerator at node i to the unit
// cell [i−½, i+½], and the number of regenerators of a coloring equals the
// total busy time of the corresponding schedule exactly. Minimizing
// regenerators (α = 1 in the paper's cost α·REG + (1−α)·ADM) is therefore
// the scheduling problem, and every approximation guarantee carries over.
package optical

import (
	"fmt"
	"math"
	"slices"

	"busytime/internal/xrand"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Lightpath is a connection request between nodes A < B of a path network.
type Lightpath struct {
	ID int
	A  int
	B  int
}

// Hops returns the number of edges the lightpath uses.
func (p Lightpath) Hops() int { return p.B - p.A }

// Network is a path topology with a grooming factor.
type Network struct {
	Name  string
	Nodes int // nodes are 0..Nodes-1
	G     int // grooming factor
	Paths []Lightpath
}

// Validate checks topology bounds and ID uniqueness.
func (n *Network) Validate() error {
	if n.Nodes < 2 {
		return fmt.Errorf("optical: %d nodes, want ≥ 2", n.Nodes)
	}
	if n.G < 1 {
		return fmt.Errorf("optical: grooming factor %d, want ≥ 1", n.G)
	}
	seen := map[int]bool{}
	for _, p := range n.Paths {
		if seen[p.ID] {
			return fmt.Errorf("optical: duplicate lightpath ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.A < 0 || p.B >= n.Nodes || p.A >= p.B {
			return fmt.Errorf("optical: lightpath %d spans (%d,%d) outside path of %d nodes",
				p.ID, p.A, p.B, n.Nodes)
		}
	}
	return nil
}

// ToInstance applies the §4.2 reduction: lightpath (a, b) becomes the job
// [a+½, b−½] and the grooming factor becomes the parallelism parameter.
// Job order follows Paths order and IDs are preserved.
func (n *Network) ToInstance() *core.Instance {
	in := &core.Instance{Name: n.Name + "/jobs", G: n.G, Jobs: make([]core.Job, len(n.Paths))}
	for i, p := range n.Paths {
		in.Jobs[i] = core.Job{
			ID:     p.ID,
			Iv:     interval.New(float64(p.A)+0.5, float64(p.B)-0.5),
			Demand: 1,
		}
	}
	return in
}

// Coloring assigns a wavelength to every lightpath of a network.
type Coloring struct {
	Net    *Network
	Colors map[int]int // Lightpath.ID -> wavelength
}

// FromSchedule converts a feasible schedule of n.ToInstance() into a
// coloring: machine indices become wavelengths.
func FromSchedule(n *Network, s *core.Schedule) (*Coloring, error) {
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("optical: schedule infeasible: %w", err)
	}
	return &Coloring{Net: n, Colors: s.Assignment()}, nil
}

// Validate checks that every lightpath is colored and no edge carries more
// than g lightpaths of one wavelength.
func (c *Coloring) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	load := map[[2]int]int{} // (edge, wavelength) -> count
	for _, p := range c.Net.Paths {
		w, ok := c.Colors[p.ID]
		if !ok {
			return fmt.Errorf("optical: lightpath %d uncolored", p.ID)
		}
		for e := p.A; e < p.B; e++ {
			key := [2]int{e, w}
			load[key]++
			if load[key] > c.Net.G {
				return fmt.Errorf("optical: edge (%d,%d) wavelength %d exceeds grooming %d",
					e, e+1, w, c.Net.G)
			}
		}
	}
	return nil
}

// Wavelengths returns the number of distinct wavelengths used.
func (c *Coloring) Wavelengths() int {
	seen := map[int]bool{}
	for _, w := range c.Colors {
		seen[w] = true
	}
	return len(seen)
}

// Regenerators returns the total regenerator count: for every wavelength w
// and internal node v, one regenerator if at least one lightpath colored w
// passes strictly through v (shared by up to g groomed paths).
func (c *Coloring) Regenerators() int {
	need := map[[2]int]bool{} // (node, wavelength)
	for _, p := range c.Net.Paths {
		w := c.Colors[p.ID]
		for v := p.A + 1; v < p.B; v++ {
			need[[2]int{v, w}] = true
		}
	}
	return len(need)
}

// ADMs returns the total ADM count. An ADM at (node v, wavelength w) serves
// up to g same-wavelength lightpaths terminating at v through its left edge
// and up to g through its right edge, so the count per (v, w) is
// max(⌈left/g⌉, ⌈right/g⌉).
func (c *Coloring) ADMs() int {
	type key struct{ v, w int }
	left := map[key]int{}  // lightpaths ending at v (arrive via edge v-1,v)
	right := map[key]int{} // lightpaths starting at v (leave via edge v,v+1)
	keys := map[key]bool{}
	for _, p := range c.Net.Paths {
		w := c.Colors[p.ID]
		kb, ka := key{p.B, w}, key{p.A, w}
		left[kb]++
		right[ka]++
		keys[kb] = true
		keys[ka] = true
	}
	g := float64(c.Net.G)
	total := 0
	for k := range keys {
		l := math.Ceil(float64(left[k]) / g)
		r := math.Ceil(float64(right[k]) / g)
		total += int(math.Max(l, r))
	}
	return total
}

// Cost returns α·Regenerators + (1−α)·ADMs, the paper's combined objective.
func (c *Coloring) Cost(alpha float64) float64 {
	return alpha*float64(c.Regenerators()) + (1-alpha)*float64(c.ADMs())
}

// WavelengthLoad is one row of a per-wavelength breakdown: how many
// lightpaths a wavelength carries and how many regenerators it needs.
type WavelengthLoad struct {
	Wavelength   int
	Lightpaths   int
	Regenerators int
}

// Breakdown returns per-wavelength statistics sorted by wavelength.
func (c *Coloring) Breakdown() []WavelengthLoad {
	paths := map[int]int{}
	regen := map[int]map[int]bool{}
	for _, p := range c.Net.Paths {
		w := c.Colors[p.ID]
		paths[w]++
		if regen[w] == nil {
			regen[w] = map[int]bool{}
		}
		for v := p.A + 1; v < p.B; v++ {
			regen[w][v] = true
		}
	}
	var ws []int
	for w := range paths {
		ws = append(ws, w)
	}
	slices.Sort(ws)
	out := make([]WavelengthLoad, len(ws))
	for i, w := range ws {
		out[i] = WavelengthLoad{Wavelength: w, Lightpaths: paths[w], Regenerators: len(regen[w])}
	}
	return out
}

// RandomTraffic generates n lightpaths with endpoints uniform over the path,
// hop counts in [1, maxHops]. Deterministic in seed.
func RandomTraffic(seed int64, nodes, n, maxHops, g int) *Network {
	r := xrand.New(seed)
	if maxHops < 1 {
		maxHops = 1
	}
	if maxHops > nodes-1 {
		maxHops = nodes - 1
	}
	net := &Network{
		Name:  fmt.Sprintf("traffic(seed=%d,nodes=%d,n=%d)", seed, nodes, n),
		Nodes: nodes,
		G:     g,
	}
	for i := 0; i < n; i++ {
		hops := 1 + r.Intn(maxHops)
		a := r.Intn(nodes - hops)
		net.Paths = append(net.Paths, Lightpath{ID: i, A: a, B: a + hops})
	}
	return net
}
