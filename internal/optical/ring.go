package optical

// Ring topology support. The paper treats the path topology (§4) and notes
// that [9] generalizes the results to arbitrary topologies; rings are the
// classical next step (traffic grooming was introduced for rings, Gerstel
// et al. [12]). This file implements the standard cut reduction:
//
//	Cut the ring at one edge. Arcs that avoid the cut edge become single
//	interval jobs exactly as on a path. Arcs that cross the cut split into
//	two interval pieces that must receive the same wavelength (a bonded
//	group), and the cut edge's grooming capacity becomes a side constraint:
//	at most g crossing arcs per wavelength.
//
// With node cells [i−½, i+½], a wavelength's regenerator count still equals
// its machines' total busy time, so the busy-time objective carries over to
// rings unchanged.

import (
	"cmp"
	"fmt"
	"slices"

	"busytime/internal/xrand"

	"busytime/internal/interval"
)

// Arc is a clockwise lightpath on a ring: it starts at node A, traverses
// edges A, A+1, …, and ends at node B (indices mod the ring size). A ≠ B.
type Arc struct {
	ID int
	A  int
	B  int
}

// RingNetwork is a cycle of Nodes nodes with grooming factor G. Edge i
// connects node i to node (i+1) mod Nodes.
type RingNetwork struct {
	Name  string
	Nodes int
	G     int
	Arcs  []Arc
}

// Hops returns the number of edges arc p uses on a ring of size l.
func (p Arc) Hops(l int) int { return ((p.B-p.A)%l + l) % l }

// uses reports whether the arc traverses edge e on a ring of size l.
func (p Arc) uses(e, l int) bool {
	d := ((e-p.A)%l + l) % l
	return d < p.Hops(l)
}

// Validate checks ring bounds and arc sanity.
func (r *RingNetwork) Validate() error {
	if r.Nodes < 3 {
		return fmt.Errorf("optical: ring with %d nodes, want ≥ 3", r.Nodes)
	}
	if r.G < 1 {
		return fmt.Errorf("optical: grooming factor %d, want ≥ 1", r.G)
	}
	seen := map[int]bool{}
	for _, p := range r.Arcs {
		if seen[p.ID] {
			return fmt.Errorf("optical: duplicate arc ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.A < 0 || p.A >= r.Nodes || p.B < 0 || p.B >= r.Nodes || p.A == p.B {
			return fmt.Errorf("optical: arc %d endpoints (%d,%d) invalid on %d-ring",
				p.ID, p.A, p.B, r.Nodes)
		}
	}
	return nil
}

// BestCut returns the edge crossed by the fewest arcs — cutting there
// minimizes the number of bonded groups the scheduler must co-locate.
func (r *RingNetwork) BestCut() int {
	best, bestLoad := 0, len(r.Arcs)+1
	for e := 0; e < r.Nodes; e++ {
		load := 0
		for _, p := range r.Arcs {
			if p.uses(e, r.Nodes) {
				load++
			}
		}
		if load < bestLoad {
			best, bestLoad = e, load
		}
	}
	return best
}

// RingColoring assigns a wavelength to every arc.
type RingColoring struct {
	Net    *RingNetwork
	Colors map[int]int // Arc.ID -> wavelength
	Cut    int         // the cut edge used by the construction
}

// Validate checks that every arc is colored and no edge of the ring carries
// more than g same-wavelength arcs.
func (c *RingColoring) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	for _, p := range c.Net.Arcs {
		if _, ok := c.Colors[p.ID]; !ok {
			return fmt.Errorf("optical: arc %d uncolored", p.ID)
		}
	}
	for e := 0; e < c.Net.Nodes; e++ {
		load := map[int]int{}
		for _, p := range c.Net.Arcs {
			if !p.uses(e, c.Net.Nodes) {
				continue
			}
			w := c.Colors[p.ID]
			load[w]++
			if load[w] > c.Net.G {
				return fmt.Errorf("optical: ring edge %d wavelength %d exceeds grooming %d",
					e, w, c.Net.G)
			}
		}
	}
	return nil
}

// Wavelengths returns the number of distinct wavelengths used.
func (c *RingColoring) Wavelengths() int {
	seen := map[int]bool{}
	for _, w := range c.Colors {
		seen[w] = true
	}
	return len(seen)
}

// Regenerators counts, per wavelength and node, one regenerator when some
// same-wavelength arc passes strictly through the node.
func (c *RingColoring) Regenerators() int {
	need := map[[2]int]bool{}
	l := c.Net.Nodes
	for _, p := range c.Net.Arcs {
		w := c.Colors[p.ID]
		for k := 1; k < p.Hops(l); k++ {
			v := (p.A + k) % l
			need[[2]int{v, w}] = true
		}
	}
	return len(need)
}

// ColorRing colors the ring's arcs by cutting at the given edge (pass a
// negative cut to use BestCut) and running a group-aware FirstFit on the
// unrolled pieces: arcs avoiding the cut become one piece, crossing arcs two
// bonded pieces plus one unit of the machine's cut-edge budget (at most g
// crossing arcs per wavelength).
func (r *RingNetwork) ColorRing(cut int) (*RingColoring, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if cut < 0 {
		cut = r.BestCut()
	}
	if cut >= r.Nodes {
		return nil, fmt.Errorf("optical: cut edge %d outside ring of %d edges", cut, r.Nodes)
	}
	l := r.Nodes
	// Relabel nodes so the cut edge becomes (l−1, 0): node v ↦ (v−cut−1) mod l.
	relabel := func(v int) int { return ((v-cut-1)%l + l) % l }

	type group struct {
		id      int
		pieces  interval.Set
		crosses bool
		length  float64
	}
	groups := make([]group, 0, len(r.Arcs))
	for _, p := range r.Arcs {
		a, b := relabel(p.A), relabel(p.B)
		gr := group{id: p.ID}
		if a < b { // does not use the cut edge after relabeling
			gr.pieces = interval.Set{interval.New(float64(a)+0.5, float64(b)-0.5)}
		} else { // crosses the cut: tail piece and, if it continues, head piece
			gr.crosses = true
			gr.pieces = interval.Set{interval.New(float64(a)+0.5, float64(l)-0.5)}
			if b > 0 {
				gr.pieces = append(gr.pieces, interval.New(-0.5, float64(b)-0.5))
			}
		}
		gr.length = gr.pieces.TotalLen()
		groups = append(groups, gr)
	}
	slices.SortFunc(groups, func(a, b group) int {
		if a.length != b.length {
			if a.length > b.length {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.id, b.id)
	})

	type machine struct {
		load     interval.Set
		crossing int
	}
	var machines []*machine
	colors := make(map[int]int, len(groups))
	fits := func(mc *machine, gr group) bool {
		if gr.crosses && mc.crossing+1 > r.G {
			return false
		}
		for _, piece := range gr.pieces {
			if mc.load.Clip(piece).MaxDepth()+1 > r.G {
				return false
			}
		}
		return true
	}
	for _, gr := range groups {
		placed := -1
		for m, mc := range machines {
			if fits(mc, gr) {
				placed = m
				break
			}
		}
		if placed < 0 {
			machines = append(machines, &machine{})
			placed = len(machines) - 1
		}
		mc := machines[placed]
		mc.load = append(mc.load, gr.pieces...)
		if gr.crosses {
			mc.crossing++
		}
		colors[gr.id] = placed
	}
	col := &RingColoring{Net: r, Colors: colors, Cut: cut}
	if err := col.Validate(); err != nil {
		return nil, fmt.Errorf("optical: ring coloring construction failed: %w", err)
	}
	return col, nil
}

// RandomRingTraffic generates n random arcs on a ring with hop counts in
// [1, maxHops]. Deterministic in seed.
func RandomRingTraffic(seed int64, nodes, n, maxHops, g int) *RingNetwork {
	r := xrand.New(seed)
	if maxHops < 1 {
		maxHops = 1
	}
	if maxHops > nodes-1 {
		maxHops = nodes - 1
	}
	net := &RingNetwork{
		Name:  fmt.Sprintf("ring(seed=%d,nodes=%d,n=%d)", seed, nodes, n),
		Nodes: nodes,
		G:     g,
	}
	for i := 0; i < n; i++ {
		a := r.Intn(nodes)
		hops := 1 + r.Intn(maxHops)
		net.Arcs = append(net.Arcs, Arc{ID: i, A: a, B: (a + hops) % nodes})
	}
	return net
}
