package optical

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
)

func TestValidateNetwork(t *testing.T) {
	bad := []*Network{
		{Nodes: 1, G: 1},
		{Nodes: 4, G: 0},
		{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 2, B: 2}}},
		{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 5}}},
		{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 1}, {ID: 0, A: 1, B: 2}}},
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Errorf("case %d: invalid network accepted", i)
		}
	}
}

func TestReduction(t *testing.T) {
	n := &Network{Nodes: 6, G: 2, Paths: []Lightpath{{ID: 7, A: 1, B: 4}}}
	in := n.ToInstance()
	if in.G != 2 || in.N() != 1 {
		t.Fatalf("bad instance %+v", in)
	}
	j := in.Jobs[0]
	if j.ID != 7 || j.Iv.Start != 1.5 || j.Iv.End != 3.5 {
		t.Errorf("job = %+v, want [1.5,3.5] id 7", j)
	}
}

func TestEdgeSharingMatchesClosedSemantics(t *testing.T) {
	// (0,2) and (1,3) share edge (1,2): jobs [0.5,1.5] and [1.5,2.5] touch.
	n := &Network{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}, {ID: 1, A: 1, B: 3}}}
	in := n.ToInstance()
	if !in.Jobs[0].Iv.Overlaps(in.Jobs[1].Iv) {
		t.Error("edge-sharing lightpaths must overlap as jobs")
	}
	// (0,2) and (2,4) share no edge: jobs [0.5,1.5] and [2.5,3.5] disjoint.
	n2 := &Network{Nodes: 5, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}, {ID: 1, A: 2, B: 4}}}
	in2 := n2.ToInstance()
	if in2.Jobs[0].Iv.Overlaps(in2.Jobs[1].Iv) {
		t.Error("edge-disjoint lightpaths must not overlap as jobs")
	}
}

func TestRegeneratorsEqualBusyTime(t *testing.T) {
	// §4.2: coloring cost (regenerators) == schedule total busy time.
	for seed := int64(0); seed < 40; seed++ {
		net := RandomTraffic(seed, 20, 30, 10, 3)
		in := net.ToInstance()
		s := firstfit.Schedule(in)
		col, err := FromSchedule(net, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := float64(col.Regenerators()), s.Cost(); math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: regenerators %v != busy time %v", seed, got, want)
		}
	}
}

func TestColoringValidateCatchesGroomingViolation(t *testing.T) {
	n := &Network{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}, {ID: 1, A: 1, B: 3}}}
	c := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 0}}
	if c.Validate() == nil {
		t.Error("edge overload accepted")
	}
	c.Colors[1] = 1
	if err := c.Validate(); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}

func TestColoringValidateCatchesUncolored(t *testing.T) {
	n := &Network{Nodes: 3, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}}}
	c := &Coloring{Net: n, Colors: map[int]int{}}
	if c.Validate() == nil {
		t.Error("uncolored lightpath accepted")
	}
}

func TestRegeneratorsHandComputed(t *testing.T) {
	// (0,3) passes nodes 1,2; (1,4) passes 2,3. Same wavelength: {1,2,3} = 3.
	n := &Network{Nodes: 5, G: 2, Paths: []Lightpath{{ID: 0, A: 0, B: 3}, {ID: 1, A: 1, B: 4}}}
	same := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 0}}
	if got := same.Regenerators(); got != 3 {
		t.Errorf("same wavelength: %d regenerators, want 3", got)
	}
	diff := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 1}}
	if got := diff.Regenerators(); got != 4 {
		t.Errorf("different wavelengths: %d regenerators, want 4", got)
	}
}

func TestADMsHandComputed(t *testing.T) {
	// Two same-wavelength paths meeting head-to-tail at node 2 with g=1:
	// ADMs: node0 right(1)=1, node2 left(1)/right(1) → max=1, node4 left=1.
	n := &Network{Nodes: 5, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}, {ID: 1, A: 2, B: 4}}}
	c := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 0}}
	if got := c.ADMs(); got != 3 {
		t.Errorf("ADMs = %d, want 3 (shared ADM at node 2)", got)
	}
	// Different wavelengths: no sharing at node 2 → 4 ADMs.
	c2 := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 1}}
	if got := c2.ADMs(); got != 4 {
		t.Errorf("ADMs = %d, want 4", got)
	}
}

func TestADMGrooming(t *testing.T) {
	// g=2, two same-wavelength paths both ending at node 3 via the same
	// edge: they share one ADM there.
	n := &Network{Nodes: 4, G: 2, Paths: []Lightpath{{ID: 0, A: 0, B: 3}, {ID: 1, A: 1, B: 3}}}
	c := &Coloring{Net: n, Colors: map[int]int{0: 0, 1: 0}}
	// Node 0: 1 ADM; node 1: 1 ADM; node 3: ceil(2/2)=1.
	if got := c.ADMs(); got != 3 {
		t.Errorf("ADMs = %d, want 3", got)
	}
}

func TestCostCombination(t *testing.T) {
	n := &Network{Nodes: 5, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 4}}}
	c := &Coloring{Net: n, Colors: map[int]int{0: 0}}
	reg, adm := float64(c.Regenerators()), float64(c.ADMs())
	if got := c.Cost(1); got != reg {
		t.Errorf("Cost(1) = %v, want %v", got, reg)
	}
	if got := c.Cost(0); got != adm {
		t.Errorf("Cost(0) = %v, want %v", got, adm)
	}
	if got := c.Cost(0.5); math.Abs(got-(reg+adm)/2) > 1e-12 {
		t.Errorf("Cost(0.5) = %v", got)
	}
}

func TestBreakdownConsistent(t *testing.T) {
	net := RandomTraffic(9, 15, 25, 8, 2)
	s := firstfit.Schedule(net.ToInstance())
	c, err := FromSchedule(net, s)
	if err != nil {
		t.Fatal(err)
	}
	bd := c.Breakdown()
	totalPaths, totalRegen := 0, 0
	for _, w := range bd {
		totalPaths += w.Lightpaths
		totalRegen += w.Regenerators
	}
	if totalPaths != len(net.Paths) {
		t.Errorf("breakdown paths %d, want %d", totalPaths, len(net.Paths))
	}
	if totalRegen != c.Regenerators() {
		t.Errorf("breakdown regenerators %d, want %d", totalRegen, c.Regenerators())
	}
	if len(bd) != c.Wavelengths() {
		t.Errorf("breakdown wavelengths %d, want %d", len(bd), c.Wavelengths())
	}
}

func TestQuickReductionRoundTrip(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		net := RandomTraffic(seed, 16, int(nn%30)+1, 8, 2)
		if net.Validate() != nil {
			return false
		}
		in := net.ToInstance()
		if in.Validate() != nil {
			return false
		}
		s := firstfit.Schedule(in)
		c, err := FromSchedule(net, s)
		if err != nil || c.Validate() != nil {
			return false
		}
		return math.Abs(float64(c.Regenerators())-s.Cost()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromScheduleRejectsInfeasible(t *testing.T) {
	net := &Network{Nodes: 4, G: 1, Paths: []Lightpath{{ID: 0, A: 0, B: 2}, {ID: 1, A: 1, B: 3}}}
	in := net.ToInstance()
	s := core.NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m) // violates g=1
	if _, err := FromSchedule(net, s); err == nil {
		t.Error("infeasible schedule converted to coloring")
	}
}

func BenchmarkTrafficToColoring(b *testing.B) {
	net := RandomTraffic(7, 64, 500, 20, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := firstfit.Schedule(net.ToInstance())
		if _, err := FromSchedule(net, s); err != nil {
			b.Fatal(err)
		}
	}
}
