package optical_test

import (
	"fmt"

	"busytime/internal/algo/firstfit"
	"busytime/internal/optical"
)

// ExampleNetwork_ToInstance shows the §4.2 reduction: a lightpath (a, b)
// becomes the job [a+½, b−½], and the regenerator count of any coloring
// equals the total busy time of the corresponding schedule.
func ExampleNetwork_ToInstance() {
	net := &optical.Network{
		Nodes: 8,
		G:     2,
		Paths: []optical.Lightpath{
			{ID: 0, A: 0, B: 4},
			{ID: 1, A: 2, B: 6},
			{ID: 2, A: 4, B: 7},
		},
	}
	in := net.ToInstance()
	s := firstfit.Schedule(in)
	col, _ := optical.FromSchedule(net, s)
	fmt.Println(col.Regenerators() == int(s.Cost()))
	// Output: true
}

// ExampleRingNetwork_ColorRing colors arcs on a ring via the cut reduction.
func ExampleRingNetwork_ColorRing() {
	net := &optical.RingNetwork{
		Nodes: 6,
		G:     1,
		Arcs: []optical.Arc{
			{ID: 0, A: 0, B: 3}, // edges 0,1,2
			{ID: 1, A: 4, B: 0}, // edges 4,5 — crosses the wrap-around
		},
	}
	col, _ := net.ColorRing(-1)
	fmt.Println(col.Validate() == nil, col.Wavelengths())
	// Output: true 1
}
