package optical

import (
	"testing"
	"testing/quick"
)

func TestArcHopsAndUses(t *testing.T) {
	const l = 8
	p := Arc{A: 6, B: 2} // edges 6, 7, 0, 1
	if got := p.Hops(l); got != 4 {
		t.Errorf("Hops = %d, want 4", got)
	}
	for _, tc := range []struct {
		e    int
		want bool
	}{{6, true}, {7, true}, {0, true}, {1, true}, {2, false}, {5, false}} {
		if got := p.uses(tc.e, l); got != tc.want {
			t.Errorf("uses(%d) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestRingValidate(t *testing.T) {
	bad := []*RingNetwork{
		{Nodes: 2, G: 1},
		{Nodes: 5, G: 0},
		{Nodes: 5, G: 1, Arcs: []Arc{{ID: 0, A: 1, B: 1}}},
		{Nodes: 5, G: 1, Arcs: []Arc{{ID: 0, A: 0, B: 7}}},
		{Nodes: 5, G: 1, Arcs: []Arc{{ID: 0, A: 0, B: 1}, {ID: 0, A: 1, B: 2}}},
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Errorf("case %d: invalid ring accepted", i)
		}
	}
}

func TestBestCutAvoidsTraffic(t *testing.T) {
	// All arcs use edges 0..3; edges 4..7 are free — the cut must be there.
	net := &RingNetwork{Nodes: 8, G: 2, Arcs: []Arc{
		{ID: 0, A: 0, B: 4}, {ID: 1, A: 1, B: 3}, {ID: 2, A: 0, B: 2},
	}}
	cut := net.BestCut()
	if cut < 4 {
		t.Errorf("cut = %d, want an unused edge ≥ 4", cut)
	}
}

func TestColorRingNoCrossing(t *testing.T) {
	// With the cut on a free edge the reduction is exactly the path case.
	net := &RingNetwork{Nodes: 8, G: 1, Arcs: []Arc{
		{ID: 0, A: 0, B: 2}, {ID: 1, A: 1, B: 3}, {ID: 2, A: 2, B: 4},
	}}
	col, err := net.ColorRing(-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arcs 0 and 1 share edge 1; g=1 forces distinct wavelengths.
	if col.Colors[0] == col.Colors[1] {
		t.Error("edge-sharing arcs got one wavelength with g=1")
	}
}

func TestColorRingCrossingArcs(t *testing.T) {
	// Two arcs crossing every cut (long arcs) with g=1: wavelengths differ.
	net := &RingNetwork{Nodes: 6, G: 1, Arcs: []Arc{
		{ID: 0, A: 0, B: 5}, {ID: 1, A: 3, B: 2},
	}}
	col, err := net.ColorRing(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	if col.Colors[0] == col.Colors[1] {
		t.Error("overlapping arcs share a wavelength with g=1")
	}
}

func TestColorRingCutCapacity(t *testing.T) {
	// Three arcs all crossing edge 5 of a 6-ring, g=2: at most two may share
	// a wavelength even though their pieces barely overlap elsewhere.
	net := &RingNetwork{Nodes: 6, G: 2, Arcs: []Arc{
		{ID: 0, A: 5, B: 1}, {ID: 1, A: 5, B: 1}, {ID: 2, A: 5, B: 1},
	}}
	col, err := net.ColorRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, w := range col.Colors {
		counts[w]++
	}
	for w, c := range counts {
		if c > 2 {
			t.Errorf("wavelength %d carries %d crossing arcs > g", w, c)
		}
	}
}

func TestRegeneratorsRing(t *testing.T) {
	// Arc 6→2 on an 8-ring passes through nodes 7, 0, 1.
	net := &RingNetwork{Nodes: 8, G: 1, Arcs: []Arc{{ID: 0, A: 6, B: 2}}}
	col := &RingColoring{Net: net, Colors: map[int]int{0: 0}}
	if got := col.Regenerators(); got != 3 {
		t.Errorf("regenerators = %d, want 3", got)
	}
}

func TestColorRingAnyCutFeasible(t *testing.T) {
	net := RandomRingTraffic(5, 12, 40, 6, 3)
	for cut := 0; cut < net.Nodes; cut++ {
		col, err := net.ColorRing(cut)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := col.Validate(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

func TestQuickRingColoringValid(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		net := RandomRingTraffic(seed, 10, int(nn%40)+1, 7, int(gg%3)+1)
		if net.Validate() != nil {
			return false
		}
		col, err := net.ColorRing(-1)
		if err != nil {
			return false
		}
		return col.Validate() == nil && col.Wavelengths() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCutChoiceNeverBreaksValidity(t *testing.T) {
	f := func(seed int64, cutSel uint8) bool {
		net := RandomRingTraffic(seed, 9, 25, 6, 2)
		col, err := net.ColorRing(int(cutSel) % net.Nodes)
		if err != nil {
			return false
		}
		return col.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestColorRingRejectsBadCut(t *testing.T) {
	net := RandomRingTraffic(1, 8, 5, 4, 2)
	if _, err := net.ColorRing(99); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestGroomingReducesRingWavelengths(t *testing.T) {
	base := RandomRingTraffic(7, 16, 60, 10, 1)
	groomed := &RingNetwork{Name: base.Name, Nodes: base.Nodes, G: 4, Arcs: base.Arcs}
	c1, err := base.ColorRing(-1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := groomed.ColorRing(-1)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Wavelengths() >= c1.Wavelengths() {
		t.Errorf("grooming did not reduce wavelengths: %d vs %d",
			c4.Wavelengths(), c1.Wavelengths())
	}
	if c4.Regenerators() > c1.Regenerators() {
		t.Errorf("grooming increased regenerators: %d vs %d",
			c4.Regenerators(), c1.Regenerators())
	}
}

func BenchmarkColorRing(b *testing.B) {
	net := RandomRingTraffic(7, 48, 400, 20, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ColorRing(-1); err != nil {
			b.Fatal(err)
		}
	}
}
