package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := NewInstance(3, iv(0, 2.5), iv(1, 3))
	in.Name = "rt"
	in.Jobs[1].Demand = 2
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatalf("ReadInstance: %v", err)
	}
	if got.Name != in.Name || got.G != in.G || got.N() != in.N() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	for i := range in.Jobs {
		if got.Jobs[i] != in.Jobs[i] {
			t.Errorf("job %d: %+v != %+v", i, got.Jobs[i], in.Jobs[i])
		}
	}
}

func TestInstanceJSONDefaultDemand(t *testing.T) {
	src := `{"g":2,"jobs":[{"id":0,"start":0,"end":1}]}`
	in, err := ReadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadInstance: %v", err)
	}
	if in.Jobs[0].Demand != 1 {
		t.Errorf("default demand = %d, want 1", in.Jobs[0].Demand)
	}
}

func TestInstanceJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"g":0,"jobs":[]}`,
		`{"g":2,"jobs":[{"id":0,"start":5,"end":1}]}`,
		`{"g":2,"jobs":[{"id":0,"start":0,"end":1,"demand":7}]}`,
		`{not json`,
	}
	for _, src := range cases {
		if _, err := ReadInstance(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid instance %q", src)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	in := NewInstance(2, iv(0, 2), iv(1, 3), iv(4, 5))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	s.Assign(2, m)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatalf("WriteSchedule: %v", err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatalf("ReadSchedule: %v", err)
	}
	if got.Cost() != s.Cost() || got.NumMachines() != s.NumMachines() {
		t.Errorf("round trip: cost %v machines %d, want %v/%d",
			got.Cost(), got.NumMachines(), s.Cost(), s.NumMachines())
	}
}

func TestWriteScheduleRejectsInfeasible(t *testing.T) {
	in := NewInstance(1, iv(0, 2), iv(1, 3))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m) // overload
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err == nil {
		t.Error("serialized an infeasible schedule")
	}
}

func TestReadScheduleRejectsBad(t *testing.T) {
	cases := []string{
		`{}`,
		`{"instance":{"g":1,"jobs":[{"id":0,"start":0,"end":2},{"id":1,"start":1,"end":3}]},"assignment":{"0":0,"1":0}}`,
	}
	for _, src := range cases {
		if _, err := ReadSchedule(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad schedule %q", src)
		}
	}
}
