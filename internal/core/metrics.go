package core

// Scheduling-quality metrics derived from a schedule. Utilization measures
// how much of the paid machine-time carries work: a machine that is busy for
// B time units offers g·B capacity-time, of which Σ demand·len is used. A
// utilization of 1 means the schedule meets the parallelism lower bound; the
// fleet-wide value is exactly ParallelismBound/Cost.

// MachineUtilization returns the fraction of machine m's paid capacity-time
// that is used by its jobs: Σ_{j∈M_m} demand_j·len_j / (g·busy_m).
// An empty machine has utilization 0.
func (s *Schedule) MachineUtilization(m int) float64 {
	busy := s.MachineBusy(m)
	if busy == 0 {
		return 0
	}
	var work float64
	for _, j := range s.machines[m].jobs {
		job := s.inst.Jobs[j]
		work += float64(job.Demand) * job.Len()
	}
	return work / (float64(s.inst.G) * busy)
}

// Utilization returns the fleet-wide capacity utilization:
// Σ demand_j·len_j / (g·Cost). It equals ParallelismBound/Cost, so a
// schedule meeting the parallelism lower bound has utilization 1.
func (s *Schedule) Utilization() float64 {
	cost := s.Cost()
	if cost == 0 {
		return 0
	}
	return s.inst.WeightedLen() / (float64(s.inst.G) * cost)
}

// IdleCapacity returns the total unused capacity-time the schedule pays
// for: g·Cost − Σ demand_j·len_j.
func (s *Schedule) IdleCapacity() float64 {
	return float64(s.inst.G)*s.Cost() - s.inst.WeightedLen()
}
