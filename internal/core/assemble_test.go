package core

import (
	"strings"
	"testing"

	"busytime/internal/interval"
	"busytime/internal/xrand"
)

// asmInstance builds a seeded instance without importing the generator
// package (which itself imports core).
func asmInstance(seed int64, n, g int, window, maxLen float64) *Instance {
	r := xrand.New(seed)
	in := &Instance{Name: "asm-test", G: g}
	for i := 0; i < n; i++ {
		s := r.Float64() * window
		in.Jobs = append(in.Jobs, Job{ID: i, Iv: interval.New(s, s+r.Float64()*maxLen), Demand: 1})
	}
	return in
}

// buildByFirstFit places every job (position order) on the lowest feasible
// machine via the public probe API, as a reference construction.
func buildByFirstFit(in *Instance, s *Schedule) *Schedule {
	for j := range in.Jobs {
		placed := false
		for m := 0; m < s.NumMachines(); m++ {
			if s.CanAssign(j, m) {
				s.Assign(j, m)
				placed = true
				break
			}
		}
		if !placed {
			s.AssignNew(j)
		}
	}
	return s
}

// TestAssemblyMatchesInsertion pins the sealed replay path against the
// ordinary insertion path: replaying a known assignment through Assembly in
// the same placement order must reproduce the machine job lists and the
// bitwise cost.
func TestAssemblyMatchesInsertion(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in := asmInstance(seed, 60, 3, 40, 10)
		ref := buildByFirstFit(in, NewSchedule(in))
		asm := BeginAssembly(in, nil, ref.NumMachines())
		for j := range in.Jobs {
			asm.Put(j, ref.MachineOf(j))
		}
		got := asm.Finish()
		if got.NumMachines() != ref.NumMachines() {
			t.Fatalf("seed=%d: %d machines vs %d", seed, got.NumMachines(), ref.NumMachines())
		}
		for j := range in.Jobs {
			if got.MachineOf(j) != ref.MachineOf(j) {
				t.Fatalf("seed=%d: job %d on %d vs %d", seed, j, got.MachineOf(j), ref.MachineOf(j))
			}
		}
		for m := 0; m < ref.NumMachines(); m++ {
			ja, jb := got.MachineJobs(m), ref.MachineJobs(m)
			if len(ja) != len(jb) {
				t.Fatalf("seed=%d: machine %d holds %d vs %d jobs", seed, m, len(ja), len(jb))
			}
			for i := range ja {
				if ja[i] != jb[i] {
					t.Fatalf("seed=%d: machine %d slot %d: %d vs %d", seed, m, i, ja[i], jb[i])
				}
			}
		}
		if got.Cost() != ref.Cost() {
			t.Fatalf("seed=%d: cost %v vs %v", seed, got.Cost(), ref.Cost())
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("seed=%d: assembled schedule does not verify: %v", seed, err)
		}
	}
}

// mustPanic runs f and returns the recovered panic message, failing the test
// if f returns normally.
func mustPanic(t *testing.T, label string, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = toString(r)
			}
		}()
		f()
		t.Fatalf("%s: no panic", label)
	}()
	return msg
}

func toString(r any) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return "?"
}

// TestSealedScheduleRejectsMutation pins the sealed contract: a finished
// assembly has no capacity oracles, so probing or placing on it must panic
// loudly instead of silently accepting an infeasible placement.
func TestSealedScheduleRejectsMutation(t *testing.T) {
	in := asmInstance(9, 20, 2, 15, 5)
	asm := BeginAssembly(in, nil, 1)
	for j := 0; j < in.N()-1; j++ {
		asm.Put(j, 0)
	}
	s := asm.Finish()
	last := in.N() - 1
	if msg := mustPanic(t, "CanAssign", func() { s.CanAssign(last, 0) }); !strings.Contains(msg, "sealed") {
		t.Errorf("CanAssign panic %q does not mention sealing", msg)
	}
	if msg := mustPanic(t, "Assign", func() { s.Assign(last, 0) }); !strings.Contains(msg, "sealed") {
		t.Errorf("Assign panic %q does not mention sealing", msg)
	}
}

// TestAssemblyDoublePlacementPanics pins Put's replay invariant.
func TestAssemblyDoublePlacementPanics(t *testing.T) {
	in := asmInstance(10, 10, 2, 8, 3)
	asm := BeginAssembly(in, nil, 1)
	asm.Put(0, 0)
	if msg := mustPanic(t, "double Put", func() { asm.Put(0, 0) }); !strings.Contains(msg, "twice") {
		t.Errorf("double placement panic %q does not mention the duplicate", msg)
	}
}

// TestSealedClearsOnRecycle pins that recycling an arena that last held a
// sealed schedule returns a fully mutable schedule again.
func TestSealedClearsOnRecycle(t *testing.T) {
	in := asmInstance(11, 30, 3, 20, 6)
	sc := new(Scratch)
	asm := BeginAssembly(in, sc, 2)
	for j := range in.Jobs {
		asm.Put(j, j%2)
	}
	asm.Finish()
	s := sc.NewSchedule(in)
	buildByFirstFit(in, s)
	if err := s.Verify(); err != nil {
		t.Fatalf("recycled schedule does not verify: %v", err)
	}
}
