package core

import (
	"fmt"
	"math/bits"
	"slices"

	"busytime/internal/interval"
	"busytime/internal/itree"
)

// Unassigned marks a job that has not been placed on any machine.
const Unassigned = -1

// Schedule is an assignment of an instance's jobs to machines. Machines are
// dense indices 0..NumMachines()-1; jobs are addressed by position in the
// instance's job slice (not by Job.ID, which is preserved metadata).
//
// Machine state is stored as a flat value slice — one contiguous record per
// machine instead of a pointer per machine — and every capacity structure a
// machine needs (interval tree or time shards, load profile, span union) is
// drawn from recyclable backing arrays, so schedules built from a Scratch
// reach a zero-allocation steady state (see Scratch).
//
// Each machine answers feasibility checks through cheap residual-capacity
// hints — its busy hull, its peak load, and a few saturation witness points
// — backed by an exact capacity oracle: time-sharded job lists under the
// machine-selection index, an interval tree otherwise (see CanAssign).
type Schedule struct {
	inst     *Instance
	assign   []int
	machines []machineState
	scratch  *Scratch
	// totalBusy is Σ_m span(J_m), maintained incrementally by insert so
	// Cost is an O(1) read.
	totalBusy float64
	// index is the optional machine-selection index behind FirstFitAssign
	// (see machindex and EnableMachineIndex); ia is the instance's compressed
	// time axis and pool the shard arena, both set alongside index.
	index *machindex
	ia    *instanceAxis
	pool  *shardPool
	// cursor is the NextFit placement cursor of the kernel (Placer.NextFit):
	// the single currently open machine, or Unassigned before the first
	// opening. It lives on the schedule so recycled schedules reset it for
	// free and the kernel view stays a stateless handle.
	cursor int
	// sealed marks a schedule assembled from precomputed placements (see
	// Assembly): its machines carry no capacity oracle, so the mutating
	// kernel entry points refuse to run rather than answer unsoundly. All
	// read paths (Cost, Verify, Summary, Assignment, …) remain valid —
	// Verify in particular re-derives loads independently of the oracles.
	sealed bool
	// spanLog, when armed via Scratch.ArmSpanLog, records every placement's
	// span-union delta in placement order. The decomposition layer's stitch
	// merge replays these deltas in the global processing order so the merged
	// schedule's busy-time accumulation reproduces the sequential run bit for
	// bit without re-running any span merge. logSpans gates the hot path.
	spanLog  []float64
	logSpans bool
}

// hotspot is a saturation hint: the machine's load at time at is known to be
// at least depth. Machines only ever gain jobs, so the bound stays valid for
// the machine's lifetime; Assign tightens it as covering jobs arrive.
type hotspot struct {
	at    float64
	depth int
}

// maxHotspots bounds the per-machine hint list; rejects beyond the cap evict
// the weakest entry.
const maxHotspots = 8

type machineState struct {
	// tree is the exact capacity oracle of non-indexed machines, created
	// lazily on the machine's first insertion (indexed machines never need
	// one) and recycled with the machine state.
	tree *itree.Tree
	jobs []int
	// hull is the smallest interval containing every job on the machine
	// (meaningless while jobs is empty). A candidate job outside the hull
	// trivially fits.
	hull interval.Interval
	// peak is an upper bound on the machine's maximum demand-weighted load
	// over all time — exact while placements go through TryAssign's oracle
	// query, which learns the true in-window load; the bucketed-profile and
	// plain-Assign paths widen it conservatively instead of paying a query.
	// A candidate with Demand ≤ g − peak trivially fits.
	peak int
	// hot are saturation witnesses recorded by rejected probes, stored
	// inline so recording one never allocates.
	hot  [maxHotspots]hotspot
	nhot int
	// spans is the running union of the machine's job intervals, so the
	// machine's busy time is an O(1) read and never re-derived.
	spans interval.Spans
	// shards holds the machine's jobs bucketed by time under the
	// machine-selection index, replacing the interval tree as the exact
	// capacity oracle (see loadShards).
	shards loadShards
	// prof backs the bucketed load profile, allocated only under the
	// machine-selection index; floor and ceil are its two halves.
	// floor[b] is a lower bound on the load at EVERY point of axis bucket b,
	// so floor[b]+d > g rejects any job window touching the bucket; ceil[b]
	// is an upper bound on the maximum load anywhere in bucket b (255 means
	// unknown), so max ceil over a window's buckets within g−d accepts
	// without an oracle query. Both are maintained by insert and stay sound
	// in their respective directions, which keeps indexed scans
	// byte-identical to linear ones.
	prof  []uint8
	floor []uint8
	ceil  []uint8
}

// ceilUnknown marks a ceiling byte whose upper bound has overflowed; it can
// never justify an acceptance.
const ceilUnknown = 255

// recycle clears the state for a fresh machine with index seed−1, retaining
// every backing allocation. The load profile is dropped, not cleared:
// OpenMachine re-sizes it only when the schedule's index needs one.
func (st *machineState) recycle(seed uint64) {
	if st.tree != nil {
		st.tree.ResetSeed(seed)
	}
	st.jobs = st.jobs[:0]
	st.hull = interval.Interval{}
	st.peak = 0
	st.nhot = 0
	st.spans.Reset()
	st.floor, st.ceil = nil, nil
	st.shards.reset()
}

// maxDepthRun answers the exact capacity query — maximum demand-weighted
// closed depth within w, with witness and saturated run — from whichever
// structure is authoritative: the time-sharded job lists under the
// machine-selection index (slo/shi is w's shard range), the interval tree
// otherwise.
func (s *Schedule) maxDepthRun(st *machineState, w interval.Interval, thresh, slo, shi int) (depth int, at float64, run interval.Interval, ok bool) {
	if st.shards.enabled() {
		return st.shards.maxDepthRun(s.pool, s.ia, w, thresh, slo, shi)
	}
	if st.tree == nil {
		return 0, 0, interval.Interval{}, false
	}
	return st.tree.MaxDepthRunWithinAt(w, thresh)
}

// NewSchedule returns an empty schedule (all jobs unassigned) for inst.
func NewSchedule(inst *Instance) *Schedule {
	assign := make([]int, inst.N())
	for i := range assign {
		assign[i] = Unassigned
	}
	return &Schedule{inst: inst, assign: assign, cursor: Unassigned}
}

// Instance returns the instance this schedule belongs to.
func (s *Schedule) Instance() *Instance { return s.inst }

// NumMachines returns the number of opened machines.
func (s *Schedule) NumMachines() int { return len(s.machines) }

// MachineOf returns the machine of job index j, or Unassigned.
func (s *Schedule) MachineOf(j int) int { return s.assign[j] }

// MachineJobs returns the job indices assigned to machine m in assignment
// order. The returned slice is owned by the schedule.
func (s *Schedule) MachineJobs(m int) []int { return s.machines[m].jobs }

// noteAlloc feeds the arena-allocation counter of the backing Scratch (a
// no-op for fresh schedules); see ScratchStats.
func (s *Schedule) noteAlloc() {
	if s.scratch != nil {
		s.scratch.allocs++
	}
}

// OpenMachine creates a new empty machine and returns its index. Machine
// records beyond the backing array's retained capacity are appended; within
// it, the previous instance's record is recycled in place.
func (s *Schedule) OpenMachine() int {
	m := len(s.machines)
	if m < cap(s.machines) {
		s.machines = s.machines[:m+1]
	} else {
		s.noteAlloc()
		s.machines = append(s.machines, machineState{})
	}
	st := &s.machines[m]
	st.recycle(uint64(m + 1))
	if s.index != nil {
		s.index.addMachine()
		if st.sizeProfile(s.index.profileBuckets(m)) {
			s.noteAlloc()
		}
		if st.shards.init(s.ia) {
			s.noteAlloc()
		}
	}
	return m
}

// sizeProfile (re)initializes the bucketed load profile for nb buckets,
// retaining allocations; nb == 0 disables the profile. It reports whether
// the backing array had to grow.
func (st *machineState) sizeProfile(nb int) (grew bool) {
	if nb == 0 {
		st.floor, st.ceil = nil, nil
		return false
	}
	if cap(st.prof) < 2*nb {
		st.prof = make([]uint8, 2*nb)
		grew = true
	} else {
		st.prof = st.prof[:2*nb]
		clear(st.prof)
	}
	st.floor = st.prof[:nb:nb]
	st.ceil = st.prof[nb:]
	return grew
}

// EnableMachineIndex attaches the machine-selection index that powers
// FirstFitAssign. Call it once, right after creating the schedule; machines
// opened before the call are indexed retroactively. Schedules drawn from a
// Scratch recycle the index arena across instances; the instance's
// compressed time axis is computed once and cached on the instance.
func (s *Schedule) EnableMachineIndex() {
	if s.index != nil {
		return
	}
	s.ia = s.inst.timeAxis()
	if s.scratch != nil {
		s.pool = &s.scratch.pool
		s.index = &s.scratch.index
	} else {
		s.pool = new(shardPool)
		s.index = new(machindex)
	}
	s.pool.reset()
	s.index.reset(s.ia)
	for m := range s.machines {
		st := &s.machines[m]
		s.index.addMachine()
		st.sizeProfile(s.index.profileBuckets(m))
		st.shards.init(s.ia)
		if len(st.jobs) > 0 {
			s.index.update(m, st.hull, st.peak)
			// The profile was not maintained while these jobs arrived:
			// floors of 0 stay sound, ceilings must be marked unknown, and
			// the shards must absorb the machine's existing jobs.
			for b := range st.ceil {
				st.ceil[b] = ceilUnknown
			}
			for _, j := range st.jobs {
				job := s.inst.Jobs[j]
				slo, shi := s.ia.shardRange(s.jobBuckets(j))
				st.shards.add(s.pool, job.Iv, job.Demand, slo, shi)
			}
		}
	}
}

// jobBuckets returns the axis bucket overlap range of job j's window, or an
// empty range when no index (or a degenerate axis) is attached. The range is
// precomputed per job with the axis, so the hot path never searches.
func (s *Schedule) jobBuckets(j int) (lo, hi int) {
	if s.ia == nil || s.ia.nb == 0 {
		return 0, -1
	}
	return int(s.ia.jobLo[j]), int(s.ia.jobHi[j])
}

// probeProfile consults machine state st's bucketed load profile for a job
// with window w spanning axis buckets [lo, hi] and demand d against capacity
// g. It returns verdict +1 with a sound upper bound on the in-window load
// when the profile proves the job fits, −1 when it proves the job cannot
// fit, and 0 when the profile cannot decide and the caller must query the
// exact oracle.
func (s *Schedule) probeProfile(st *machineState, w interval.Interval, d, g, lo, hi int) (verdict, usedUB int) {
	if lo > hi {
		return 0, 0
	}
	maxCeil := 0
	for b := lo; b <= hi; b++ {
		if int(st.floor[b])+d > g {
			return -1, 0
		}
		if c := int(st.ceil[b]); c > maxCeil {
			maxCeil = c
		}
	}
	// Accepting on the ceilings requires the buckets to cover the whole
	// window (rejects only need an overlap); the axis guarantees coverage
	// for job windows, but verify against the boundaries so no caller can
	// ever sneak an unsound accept.
	if maxCeil < ceilUnknown && maxCeil+d <= g &&
		s.ia.ax.Boundary(lo) <= w.Start && s.ia.ax.Boundary(hi+1) >= w.End {
		return 1, maxCeil
	}
	return 0, 0
}

// CanAssign reports whether job index j fits on machine m without violating
// the capacity g at any instant (closed semantics, demand-weighted).
//
// The check consults the machine's residual-capacity hints before paying for
// an exact oracle query: a job outside the busy hull always fits, a job
// whose demand is within g − peak always fits, and a job covering a known
// saturation point that it cannot share never fits. Probes that fall through
// to the oracle and get rejected record the rejection's witness point, so
// repeated probing of a saturated machine converges to O(1).
func (s *Schedule) CanAssign(j, m int) bool {
	if s.sealed {
		panic("core: capacity probe on a sealed schedule")
	}
	lo, hi := s.jobBuckets(j)
	job := s.inst.Jobs[j]
	st := &s.machines[m]
	g := s.inst.G
	if len(st.jobs) == 0 || !job.Iv.Overlaps(st.hull) {
		return job.Demand <= g
	}
	if st.peak+job.Demand <= g {
		return true
	}
	for _, h := range st.hot[:st.nhot] {
		if h.depth+job.Demand > g && job.Iv.Contains(h.at) {
			return false
		}
	}
	if len(st.floor) > 0 {
		if verdict, _ := s.probeProfile(st, job.Iv, job.Demand, g, lo, hi); verdict != 0 {
			return verdict > 0
		}
	}
	slo, shi := 0, 0
	if s.ia != nil {
		slo, shi = s.ia.shardRange(lo, hi)
	}
	used, at, run, sat := s.maxDepthRun(st, job.Iv, g, slo, shi)
	if used+job.Demand > g {
		st.noteHot(at, used)
		if sat && s.index != nil {
			s.markSaturatedRun(st, m, run)
		}
		return false
	}
	return true
}

// markSaturatedRun records a saturated run (load ≥ g at every point of run)
// in the machine-selection index: bitmap bits for the scan and floor bumps
// for subsequent per-machine probes.
func (s *Schedule) markSaturatedRun(st *machineState, m int, run interval.Interval) {
	lo, hi := s.ia.ax.WithinRange(run)
	if lo > hi {
		return
	}
	f := s.inst.G
	if f > 254 {
		f = 254
	}
	for b := lo; b <= hi; b++ {
		if len(st.floor) > 0 && int(st.floor[b]) < f {
			st.floor[b] = uint8(f)
		}
		s.index.markBucket(m, b)
	}
}

// noteHot records a saturation witness, evicting the shallowest entry when
// the hint list is full.
func (st *machineState) noteHot(at float64, depth int) {
	for i := 0; i < st.nhot; i++ {
		if st.hot[i].at == at {
			if depth > st.hot[i].depth {
				st.hot[i].depth = depth
			}
			return
		}
	}
	if st.nhot < maxHotspots {
		st.hot[st.nhot] = hotspot{at, depth}
		st.nhot++
		return
	}
	weakest := 0
	for i := 1; i < st.nhot; i++ {
		if st.hot[i].depth < st.hot[weakest].depth {
			weakest = i
		}
	}
	if depth > st.hot[weakest].depth {
		st.hot[weakest] = hotspot{at, depth}
	}
}

// Assign places job index j on machine m. It panics if the job is already
// assigned or the machine does not exist; it does not re-check capacity
// (algorithms call CanAssign, and Verify re-checks everything).
//
// Assign keeps the peak hint a sound upper bound without querying the
// oracle: a job overlapping the busy hull can raise the true peak by at most
// its demand. TryAssign is the path that keeps peak exact for free.
func (s *Schedule) Assign(j, m int) {
	lo, hi := s.jobBuckets(j)
	st := &s.machines[m]
	job := s.inst.Jobs[j]
	used := 0
	if len(st.jobs) > 0 && job.Iv.Overlaps(st.hull) {
		used = st.peak
	}
	s.insert(st, j, m, used, lo, hi)
}

// TryAssign atomically checks capacity and, when job index j fits machine m,
// assigns it there, reporting success. It is the hot path of greedy
// schedulers: a successful placement costs at most one oracle query (shared
// between the check and the hint update), and most probes resolve on the
// hints alone.
func (s *Schedule) TryAssign(j, m int) bool {
	lo, hi := s.jobBuckets(j)
	return s.tryAssign(j, m, lo, hi)
}

// tryAssign is TryAssign with job j's axis bucket range precomputed, so
// FirstFitAssign resolves the range once per job instead of once per probe.
func (s *Schedule) tryAssign(j, m, lo, hi int) bool {
	st := &s.machines[m]
	job := s.inst.Jobs[j]
	g := s.inst.G
	if len(st.jobs) == 0 || !job.Iv.Overlaps(st.hull) {
		if job.Demand > g {
			return false
		}
		s.insert(st, j, m, 0, lo, hi)
		return true
	}
	if st.peak+job.Demand > g {
		for _, h := range st.hot[:st.nhot] {
			if h.depth+job.Demand > g && job.Iv.Contains(h.at) {
				return false
			}
		}
	}
	if len(st.floor) > 0 {
		if verdict, usedUB := s.probeProfile(st, job.Iv, job.Demand, g, lo, hi); verdict < 0 {
			return false
		} else if verdict > 0 {
			s.insert(st, j, m, usedUB, lo, hi)
			return true
		}
	}
	slo, shi := 0, 0
	if s.ia != nil {
		slo, shi = s.ia.shardRange(lo, hi)
	}
	used, at, run, sat := s.maxDepthRun(st, job.Iv, g, slo, shi)
	if used+job.Demand > g {
		st.noteHot(at, used)
		if sat && s.index != nil {
			s.markSaturatedRun(st, m, run)
		}
		return false
	}
	s.insert(st, j, m, used, lo, hi)
	return true
}

// FirstFitAssign places job index j by the FirstFit rule — the lowest-indexed
// machine that can process it, a fresh machine when none can — and returns
// the machine. With the machine-selection index enabled (EnableMachineIndex)
// the scan is sublinear: the segment tree bounds it at the first machine
// guaranteed to accept, and the saturation bitmap skips whole runs of
// machines provably unable to take the job's window. Both prunings are
// sound, so the produced schedule is byte-identical to probing every machine
// in order.
func (s *Schedule) FirstFitAssign(j int) int {
	ix := s.index
	if ix == nil {
		for m := range s.machines {
			if s.TryAssign(j, m) {
				return m
			}
		}
		return s.AssignNew(j)
	}
	job := s.inst.Jobs[j]
	lo, hi := s.jobBuckets(j)
	g := s.inst.G
	stop := len(s.machines)
	trivial := -1
	if job.Demand <= g {
		if t := ix.firstTrivial(job.Iv, int32(g-job.Demand)); t >= 0 {
			trivial, stop = t, t
		}
	}
	if stop > 0 {
		bl := ix.blockedMask(lo, hi)
		for wi := 0; wi*64 < stop && wi < len(bl); wi++ {
			free := ^bl[wi]
			for free != 0 {
				m := wi*64 + bits.TrailingZeros64(free)
				if m >= stop {
					break
				}
				if s.tryAssign(j, m, lo, hi) {
					return m
				}
				free &= free - 1
			}
		}
		// Machines past the bitmap prefix are probed unskipped.
		for m := 64 * len(bl); m < stop; m++ {
			if s.tryAssign(j, m, lo, hi) {
				return m
			}
		}
	}
	if trivial >= 0 {
		if !s.tryAssign(j, trivial, lo, hi) {
			panic("core: machine index reported a trivially fitting machine that rejected its job")
		}
		return trivial
	}
	return s.AssignNew(j)
}

// FirstFitProbe returns the machine FirstFitAssign would choose among the
// already-open machines — the lowest-indexed one that fits — or Unassigned
// when none fits, without placing the job or opening a machine. It reuses the
// machine-selection index prunings (trivial-fit bound, saturation bitmap), so
// the probe is as sublinear as the placement path; the reconciliation pass of
// the time-sharding layer drives it against live shard schedules.
func (s *Schedule) FirstFitProbe(j int) int {
	ix := s.index
	if ix == nil {
		for m := range s.machines {
			if s.CanAssign(j, m) {
				return m
			}
		}
		return Unassigned
	}
	job := s.inst.Jobs[j]
	lo, hi := s.jobBuckets(j)
	g := s.inst.G
	stop := len(s.machines)
	trivial := -1
	if job.Demand <= g {
		if t := ix.firstTrivial(job.Iv, int32(g-job.Demand)); t >= 0 {
			trivial, stop = t, t
		}
	}
	if stop > 0 {
		bl := ix.blockedMask(lo, hi)
		for wi := 0; wi*64 < stop && wi < len(bl); wi++ {
			free := ^bl[wi]
			for free != 0 {
				m := wi*64 + bits.TrailingZeros64(free)
				if m >= stop {
					break
				}
				if s.CanAssign(j, m) {
					return m
				}
				free &= free - 1
			}
		}
		for m := 64 * len(bl); m < stop; m++ {
			if s.CanAssign(j, m) {
				return m
			}
		}
	}
	return trivial
}

// SpanLog returns the per-placement span deltas recorded since the schedule
// was created with an armed log (Scratch.ArmSpanLog); nil when no log was
// armed. Entry i is the busy-time contribution of the i-th placement, in
// placement order — the values insert folded into Cost.
func (s *Schedule) SpanLog() []float64 { return s.spanLog }

// AppendMachineSpans appends machine m's busy-span pieces (the disjoint,
// ascending union of its job intervals) to dst and returns the extended
// slice. It is the capture half of the decomposition layer's stitch merge:
// the pieces are copied out of the live per-machine span union so a sealed
// assembly can adopt them wholesale instead of re-merging every job.
func (s *Schedule) AppendMachineSpans(m int, dst interval.Set) interval.Set {
	return s.machines[m].spans.AppendTo(dst)
}

// insert performs the bookkeeping of placing job index j on machine state st
// (machine index m): capacity-oracle copies, assignment map, and the hint
// update. used must be at least the machine's maximum load within the job's
// window before insertion (exact keeps peak exact; an upper bound keeps it
// sound). lo/hi is the job's axis bucket range (empty without an index).
func (s *Schedule) insert(st *machineState, j, m, used, lo, hi int) {
	if s.sealed {
		panic("core: placement on a sealed schedule")
	}
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: job index %d already assigned to machine %d", j, s.assign[j]))
	}
	job := s.inst.Jobs[j]
	if st.shards.enabled() {
		slo, shi := s.ia.shardRange(lo, hi)
		st.shards.add(s.pool, job.Iv, job.Demand, slo, shi)
	} else {
		if st.tree == nil {
			st.tree = itree.New(uint64(m + 1))
		}
		for d := 0; d < job.Demand; d++ {
			st.tree.Insert(itree.Item{Iv: job.Iv, ID: j})
		}
	}
	if len(st.jobs) == 0 {
		st.hull = job.Iv
	} else {
		st.hull = st.hull.Hull(job.Iv)
	}
	st.jobs = append(st.jobs, j)
	if used+job.Demand > st.peak {
		st.peak = used + job.Demand
	}
	for i := 0; i < st.nhot; i++ {
		if job.Iv.Contains(st.hot[i].at) {
			st.hot[i].depth += job.Demand
		}
	}
	d := st.spans.Add(job.Iv)
	s.totalBusy += d
	if s.logSpans {
		s.spanLog = append(s.spanLog, d)
	}
	if s.index != nil {
		s.index.update(m, st.hull, st.peak)
		if len(st.floor) > 0 && lo <= hi {
			s.insertProfile(st, m, job, lo, hi)
		}
	}
	s.assign[j] = m
}

// insertProfile folds a newly placed job spanning axis buckets [lo, hi] into
// the machine's bucketed load profile: every bucket the job touches may see
// its maximum rise by the demand (ceilings), and every bucket the job fully
// covers has its minimum load rise by the demand (floors). A floor reaching
// g makes the bucket fully saturated and lights its bitmap bit for the scan
// skip.
func (s *Schedule) insertProfile(st *machineState, m int, job Job, lo, hi int) {
	for b := lo; b <= hi; b++ {
		if c := int(st.ceil[b]) + job.Demand; c >= ceilUnknown {
			st.ceil[b] = ceilUnknown
		} else {
			st.ceil[b] = uint8(c)
		}
	}
	flo, fhi := s.ia.ax.InnerRange(lo, hi, job.Iv)
	if flo > fhi {
		return
	}
	g := s.inst.G
	for b := flo; b <= fhi; b++ {
		f := int(st.floor[b]) + job.Demand
		if f > 254 {
			f = 254
		}
		st.floor[b] = uint8(f)
		if f >= g {
			s.index.markBucket(m, b)
		}
	}
}

// AssignNew opens a fresh machine for job index j and returns the machine.
func (s *Schedule) AssignNew(j int) int {
	m := s.OpenMachine()
	s.Assign(j, m)
	return m
}

// Complete reports whether every job is assigned.
func (s *Schedule) Complete() bool {
	for _, m := range s.assign {
		if m == Unassigned {
			return false
		}
	}
	return true
}

// MachineSet returns the interval set of the jobs on machine m.
func (s *Schedule) MachineSet(m int) interval.Set {
	jobs := s.machines[m].jobs
	set := make(interval.Set, len(jobs))
	for i, j := range jobs {
		set[i] = s.inst.Jobs[j].Iv
	}
	return set
}

// MachineBusy returns span(J_m): the measure of time machine m has at least
// one active job. This is the machine's contribution to the objective, read
// in O(1) from the machine's incrementally maintained span union.
func (s *Schedule) MachineBusy(m int) float64 { return s.machines[m].spans.Total() }

// SpanDelta returns the busy-time increase machine m would incur if an
// interval iv were added to it, without modifying the schedule. Best-fit
// style schedulers use it to rank machines without rebuilding interval sets.
func (s *Schedule) SpanDelta(m int, iv interval.Interval) float64 {
	return s.machines[m].spans.Delta(iv)
}

// Cost returns the total busy time Σ_m span(J_m), an O(1) read of the total
// maintained by insert. Unassigned jobs contribute nothing; call Complete or
// Verify to ensure totality.
func (s *Schedule) Cost() float64 { return s.totalBusy }

// Verify checks that the schedule is feasible: instance valid, every job
// assigned to an existing machine, and no machine exceeds capacity g at any
// instant (demand-weighted, closed semantics). It returns nil if feasible.
func (s *Schedule) Verify() error {
	if err := s.inst.Validate(); err != nil {
		return err
	}
	for j, m := range s.assign {
		if m == Unassigned {
			return fmt.Errorf("core: job index %d (ID %d) unassigned", j, s.inst.Jobs[j].ID)
		}
		if m < 0 || m >= len(s.machines) {
			return fmt.Errorf("core: job index %d assigned to invalid machine %d", j, m)
		}
	}
	for m := range s.machines {
		if peak := maxWeightedDepth(s.inst, s.machines[m].jobs); peak > s.inst.G {
			return fmt.Errorf("core: machine %d reaches load %d > g = %d", m, peak, s.inst.G)
		}
	}
	return nil
}

// maxWeightedDepth computes the maximum demand-weighted closed depth of the
// given job indices, independently of the capacity oracles (so Verify can
// catch bookkeeping bugs in the oracles themselves).
func maxWeightedDepth(inst *Instance, jobs []int) int {
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(jobs))
	for _, j := range jobs {
		job := inst.Jobs[j]
		evs = append(evs, ev{job.Iv.Start, job.Demand}, ev{job.Iv.End, -job.Demand})
	}
	slices.SortFunc(evs, func(a, b ev) int {
		if a.t != b.t {
			return cmpCoord(a.t, b.t)
		}
		return b.delta - a.delta // starts before ends: closed depth
	})
	depth, best := 0, 0
	for _, e := range evs {
		depth += e.delta
		if depth > best {
			best = depth
		}
	}
	return best
}

// Assignment exports the job→machine map keyed by Job.ID.
func (s *Schedule) Assignment() map[int]int {
	out := make(map[int]int, len(s.assign))
	for j, m := range s.assign {
		out[s.inst.Jobs[j].ID] = m
	}
	return out
}

// MachineSummary describes one machine of a finished schedule.
type MachineSummary struct {
	Machine int
	JobIDs  []int
	Busy    interval.Set // disjoint busy intervals (union of its jobs)
	Cost    float64
}

// Summary returns a per-machine breakdown sorted by machine index. The busy
// intervals are copied from each machine's incrementally maintained span
// union rather than re-derived, so the pass is linear in the output size.
func (s *Schedule) Summary() []MachineSummary {
	out := make([]MachineSummary, len(s.machines))
	for m := range s.machines {
		st := &s.machines[m]
		ids := make([]int, len(st.jobs))
		for i, j := range st.jobs {
			ids[i] = s.inst.Jobs[j].ID
		}
		slices.Sort(ids)
		out[m] = MachineSummary{
			Machine: m,
			JobIDs:  ids,
			Busy:    st.spans.AppendTo(make(interval.Set, 0, st.spans.Count())),
			Cost:    st.spans.Total(),
		}
	}
	return out
}

// FromAssignment reconstructs a schedule from a Job.ID→machine map, e.g. one
// previously exported with Assignment or decoded from JSON. Machine indices
// are compacted preserving their relative order.
func FromAssignment(inst *Instance, byID map[int]int) (*Schedule, error) {
	return fromAssignmentInto(inst, byID, NewSchedule(inst))
}

// FromAssignmentScratch is FromAssignment with the schedule drawn from sc —
// the kernel-routed materialization step of solvers that compute an
// assignment out of band (e.g. the exact branch and bound). Jobs are
// inserted in position order, matching FromAssignment bit for bit.
func FromAssignmentScratch(inst *Instance, byID map[int]int, sc *Scratch) (*Schedule, error) {
	return fromAssignmentInto(inst, byID, sc.NewSchedule(inst))
}

func fromAssignmentInto(inst *Instance, byID map[int]int, s *Schedule) (*Schedule, error) {
	machines := make([]int, 0, len(byID))
	seen := map[int]bool{}
	for _, m := range byID {
		if !seen[m] {
			seen[m] = true
			machines = append(machines, m)
		}
	}
	slices.Sort(machines)
	remap := make(map[int]int, len(machines))
	for dense, m := range machines {
		remap[m] = dense
		s.OpenMachine()
	}
	for j, job := range inst.Jobs {
		m, ok := byID[job.ID]
		if !ok {
			return nil, fmt.Errorf("core: assignment missing job ID %d", job.ID)
		}
		s.Assign(j, remap[m])
	}
	return s, nil
}
