package core

import (
	"fmt"
	"sort"

	"busytime/internal/interval"
	"busytime/internal/itree"
)

// Unassigned marks a job that has not been placed on any machine.
const Unassigned = -1

// Schedule is an assignment of an instance's jobs to machines. Machines are
// dense indices 0..NumMachines()-1; jobs are addressed by position in the
// instance's job slice (not by Job.ID, which is preserved metadata).
//
// Schedule maintains one interval tree per machine so feasibility checks run
// in O(log n + k). A demand-d job occupies d capacity slots, implemented by
// storing d copies in the capacity tree. On top of the tree each machine
// keeps cheap residual-capacity hints — its busy hull, its peak load, and a
// few saturation witness points — that resolve most capacity probes in O(1)
// without touching the tree (see CanAssign).
type Schedule struct {
	inst     *Instance
	assign   []int
	machines []*machineState
	scratch  *Scratch
}

// hotspot is a saturation hint: the machine's load at time at is known to be
// at least depth. Machines only ever gain jobs, so the bound stays valid for
// the machine's lifetime; Assign tightens it as covering jobs arrive.
type hotspot struct {
	at    float64
	depth int
}

// maxHotspots bounds the per-machine hint list; rejects beyond the cap evict
// the weakest entry.
const maxHotspots = 8

type machineState struct {
	tree *itree.Tree
	jobs []int
	// hull is the smallest interval containing every job on the machine
	// (meaningless while jobs is empty). A candidate job outside the hull
	// trivially fits.
	hull interval.Interval
	// peak is an upper bound on the machine's maximum demand-weighted load
	// over all time — exact while placements go through TryAssign, which
	// learns the true in-window load from its capacity query; plain Assign
	// widens it conservatively instead of paying a query. A candidate with
	// Demand ≤ g − peak trivially fits.
	peak int
	// hot are saturation witnesses recorded by rejected probes.
	hot []hotspot
}

// reset clears the state for reuse, retaining allocations.
func (st *machineState) reset() {
	st.tree.Reset()
	st.jobs = st.jobs[:0]
	st.hull = interval.Interval{}
	st.peak = 0
	st.hot = st.hot[:0]
}

// NewSchedule returns an empty schedule (all jobs unassigned) for inst.
func NewSchedule(inst *Instance) *Schedule {
	assign := make([]int, inst.N())
	for i := range assign {
		assign[i] = Unassigned
	}
	return &Schedule{inst: inst, assign: assign}
}

// Instance returns the instance this schedule belongs to.
func (s *Schedule) Instance() *Instance { return s.inst }

// NumMachines returns the number of opened machines.
func (s *Schedule) NumMachines() int { return len(s.machines) }

// MachineOf returns the machine of job index j, or Unassigned.
func (s *Schedule) MachineOf(j int) int { return s.assign[j] }

// MachineJobs returns the job indices assigned to machine m in assignment
// order. The returned slice is owned by the schedule.
func (s *Schedule) MachineJobs(m int) []int { return s.machines[m].jobs }

// OpenMachine creates a new empty machine and returns its index.
func (s *Schedule) OpenMachine() int {
	var st *machineState
	if s.scratch != nil {
		st = s.scratch.takeMachine(uint64(len(s.machines) + 1))
	} else {
		st = &machineState{tree: itree.New(uint64(len(s.machines) + 1))}
	}
	s.machines = append(s.machines, st)
	return len(s.machines) - 1
}

// CanAssign reports whether job index j fits on machine m without violating
// the capacity g at any instant (closed semantics, demand-weighted).
//
// The check consults the machine's residual-capacity hints before paying for
// an interval-tree query: a job outside the busy hull always fits, a job
// whose demand is within g − peak always fits, and a job covering a known
// saturation point that it cannot share never fits. Probes that fall through
// to the tree and get rejected record the rejection's witness point, so
// repeated probing of a saturated machine converges to O(1).
func (s *Schedule) CanAssign(j, m int) bool {
	job := s.inst.Jobs[j]
	st := s.machines[m]
	g := s.inst.G
	if len(st.jobs) == 0 || !job.Iv.Overlaps(st.hull) {
		return job.Demand <= g
	}
	if st.peak+job.Demand <= g {
		return true
	}
	for _, h := range st.hot {
		if h.depth+job.Demand > g && job.Iv.Contains(h.at) {
			return false
		}
	}
	used, at := st.tree.MaxDepthWithinAt(job.Iv)
	if used+job.Demand > g {
		st.noteHot(at, used)
		return false
	}
	return true
}

// noteHot records a saturation witness, evicting the shallowest entry when
// the hint list is full.
func (st *machineState) noteHot(at float64, depth int) {
	for i := range st.hot {
		if st.hot[i].at == at {
			if depth > st.hot[i].depth {
				st.hot[i].depth = depth
			}
			return
		}
	}
	if len(st.hot) < maxHotspots {
		st.hot = append(st.hot, hotspot{at, depth})
		return
	}
	weakest := 0
	for i := 1; i < len(st.hot); i++ {
		if st.hot[i].depth < st.hot[weakest].depth {
			weakest = i
		}
	}
	if depth > st.hot[weakest].depth {
		st.hot[weakest] = hotspot{at, depth}
	}
}

// Assign places job index j on machine m. It panics if the job is already
// assigned or the machine does not exist; it does not re-check capacity
// (algorithms call CanAssign, and Verify re-checks everything).
//
// Assign keeps the peak hint a sound upper bound without querying the tree:
// a job overlapping the busy hull can raise the true peak by at most its
// demand. TryAssign is the path that keeps peak exact for free.
func (s *Schedule) Assign(j, m int) {
	st := s.machines[m]
	job := s.inst.Jobs[j]
	used := 0
	if len(st.jobs) > 0 && job.Iv.Overlaps(st.hull) {
		used = st.peak
	}
	s.insert(st, j, m, used)
}

// TryAssign atomically checks capacity and, when job index j fits machine m,
// assigns it there, reporting success. It is the hot path of greedy
// schedulers: a successful placement costs at most one tree query (shared
// between the check and the hint update), and most probes resolve on the
// hints alone.
func (s *Schedule) TryAssign(j, m int) bool {
	st := s.machines[m]
	job := s.inst.Jobs[j]
	g := s.inst.G
	if len(st.jobs) == 0 || !job.Iv.Overlaps(st.hull) {
		if job.Demand > g {
			return false
		}
		s.insert(st, j, m, 0)
		return true
	}
	if st.peak+job.Demand > g {
		for _, h := range st.hot {
			if h.depth+job.Demand > g && job.Iv.Contains(h.at) {
				return false
			}
		}
	}
	used, at := st.tree.MaxDepthWithinAt(job.Iv)
	if used+job.Demand > g {
		st.noteHot(at, used)
		return false
	}
	s.insert(st, j, m, used)
	return true
}

// insert performs the bookkeeping of placing job index j on machine state st
// (machine index m): capacity-tree copies, assignment map, and the hint
// update. used must be at least the machine's maximum load within the job's
// window before insertion (exact keeps peak exact; an upper bound keeps it
// sound).
func (s *Schedule) insert(st *machineState, j, m, used int) {
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: job index %d already assigned to machine %d", j, s.assign[j]))
	}
	job := s.inst.Jobs[j]
	for d := 0; d < job.Demand; d++ {
		st.tree.Insert(itree.Item{Iv: job.Iv, ID: j})
	}
	if len(st.jobs) == 0 {
		st.hull = job.Iv
	} else {
		st.hull = st.hull.Hull(job.Iv)
	}
	st.jobs = append(st.jobs, j)
	if used+job.Demand > st.peak {
		st.peak = used + job.Demand
	}
	for i := range st.hot {
		if job.Iv.Contains(st.hot[i].at) {
			st.hot[i].depth += job.Demand
		}
	}
	s.assign[j] = m
}

// AssignNew opens a fresh machine for job index j and returns the machine.
func (s *Schedule) AssignNew(j int) int {
	m := s.OpenMachine()
	s.Assign(j, m)
	return m
}

// Complete reports whether every job is assigned.
func (s *Schedule) Complete() bool {
	for _, m := range s.assign {
		if m == Unassigned {
			return false
		}
	}
	return true
}

// MachineSet returns the interval set of the jobs on machine m.
func (s *Schedule) MachineSet(m int) interval.Set {
	jobs := s.machines[m].jobs
	set := make(interval.Set, len(jobs))
	for i, j := range jobs {
		set[i] = s.inst.Jobs[j].Iv
	}
	return set
}

// MachineBusy returns span(J_m): the measure of time machine m has at least
// one active job. This is the machine's contribution to the objective.
func (s *Schedule) MachineBusy(m int) float64 { return s.MachineSet(m).Span() }

// Cost returns the total busy time Σ_m span(J_m). Unassigned jobs contribute
// nothing; call Complete or Verify to ensure totality.
func (s *Schedule) Cost() float64 {
	var total float64
	for m := range s.machines {
		total += s.MachineBusy(m)
	}
	return total
}

// Verify checks that the schedule is feasible: instance valid, every job
// assigned to an existing machine, and no machine exceeds capacity g at any
// instant (demand-weighted, closed semantics). It returns nil if feasible.
func (s *Schedule) Verify() error {
	if err := s.inst.Validate(); err != nil {
		return err
	}
	for j, m := range s.assign {
		if m == Unassigned {
			return fmt.Errorf("core: job index %d (ID %d) unassigned", j, s.inst.Jobs[j].ID)
		}
		if m < 0 || m >= len(s.machines) {
			return fmt.Errorf("core: job index %d assigned to invalid machine %d", j, m)
		}
	}
	for m, st := range s.machines {
		if peak := maxWeightedDepth(s.inst, st.jobs); peak > s.inst.G {
			return fmt.Errorf("core: machine %d reaches load %d > g = %d", m, peak, s.inst.G)
		}
	}
	return nil
}

// maxWeightedDepth computes the maximum demand-weighted closed depth of the
// given job indices, independently of the capacity trees (so Verify can
// catch bookkeeping bugs in the trees themselves).
func maxWeightedDepth(inst *Instance, jobs []int) int {
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(jobs))
	for _, j := range jobs {
		job := inst.Jobs[j]
		evs = append(evs, ev{job.Iv.Start, job.Demand}, ev{job.Iv.End, -job.Demand})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta > evs[j].delta
	})
	depth, best := 0, 0
	for _, e := range evs {
		depth += e.delta
		if depth > best {
			best = depth
		}
	}
	return best
}

// Assignment exports the job→machine map keyed by Job.ID.
func (s *Schedule) Assignment() map[int]int {
	out := make(map[int]int, len(s.assign))
	for j, m := range s.assign {
		out[s.inst.Jobs[j].ID] = m
	}
	return out
}

// MachineSummary describes one machine of a finished schedule.
type MachineSummary struct {
	Machine int
	JobIDs  []int
	Busy    interval.Set // disjoint busy intervals (union of its jobs)
	Cost    float64
}

// Summary returns a per-machine breakdown sorted by machine index.
func (s *Schedule) Summary() []MachineSummary {
	out := make([]MachineSummary, len(s.machines))
	for m, st := range s.machines {
		ids := make([]int, len(st.jobs))
		for i, j := range st.jobs {
			ids[i] = s.inst.Jobs[j].ID
		}
		sort.Ints(ids)
		busy := s.MachineSet(m).Union()
		out[m] = MachineSummary{Machine: m, JobIDs: ids, Busy: busy, Cost: busy.TotalLen()}
	}
	return out
}

// FromAssignment reconstructs a schedule from a Job.ID→machine map, e.g. one
// previously exported with Assignment or decoded from JSON. Machine indices
// are compacted preserving their relative order.
func FromAssignment(inst *Instance, byID map[int]int) (*Schedule, error) {
	s := NewSchedule(inst)
	machines := make([]int, 0, len(byID))
	seen := map[int]bool{}
	for _, m := range byID {
		if !seen[m] {
			seen[m] = true
			machines = append(machines, m)
		}
	}
	sort.Ints(machines)
	remap := make(map[int]int, len(machines))
	for dense, m := range machines {
		remap[m] = dense
		s.OpenMachine()
	}
	for j, job := range inst.Jobs {
		m, ok := byID[job.ID]
		if !ok {
			return nil, fmt.Errorf("core: assignment missing job ID %d", job.ID)
		}
		s.Assign(j, remap[m])
	}
	return s, nil
}
