package core

import (
	"encoding/json"
	"fmt"
	"io"

	"busytime/internal/interval"
)

// jobJSON is the wire form of a Job. Demand is omitted when 1.
type jobJSON struct {
	ID     int     `json:"id"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Demand int     `json:"demand,omitempty"`
}

// instanceJSON is the wire form of an Instance.
type instanceJSON struct {
	Name string    `json:"name,omitempty"`
	G    int       `json:"g"`
	Jobs []jobJSON `json:"jobs"`
}

// MarshalJSON implements json.Marshaler for Instance.
func (in *Instance) MarshalJSON() ([]byte, error) {
	w := instanceJSON{Name: in.Name, G: in.G, Jobs: make([]jobJSON, len(in.Jobs))}
	for i, j := range in.Jobs {
		d := j.Demand
		if d == 1 {
			d = 0 // omitempty
		}
		w.Jobs[i] = jobJSON{ID: j.ID, Start: j.Iv.Start, End: j.Iv.End, Demand: d}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for Instance. Missing demands
// default to 1; the decoded instance is validated.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: decoding instance: %w", err)
	}
	dec := Instance{Name: w.Name, G: w.G, Jobs: make([]Job, len(w.Jobs))}
	for i, j := range w.Jobs {
		if j.End < j.Start {
			return fmt.Errorf("core: job %d has end %v < start %v", j.ID, j.End, j.Start)
		}
		d := j.Demand
		if d == 0 {
			d = 1
		}
		dec.Jobs[i] = Job{ID: j.ID, Iv: interval.New(j.Start, j.End), Demand: d}
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	*in = dec
	return nil
}

// WriteInstance encodes the instance as indented JSON to w.
func WriteInstance(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadInstance decodes an instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	return &in, nil
}

// scheduleJSON is the wire form of a finished schedule.
type scheduleJSON struct {
	Instance   *Instance   `json:"instance"`
	Assignment map[int]int `json:"assignment"` // Job.ID -> machine
	Machines   int         `json:"machines"`
	Cost       float64     `json:"cost"`
}

// WriteSchedule encodes a verified schedule (with its instance) as JSON.
func WriteSchedule(w io.Writer, s *Schedule) error {
	if err := s.Verify(); err != nil {
		return fmt.Errorf("core: refusing to serialize infeasible schedule: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scheduleJSON{
		Instance:   s.inst,
		Assignment: s.Assignment(),
		Machines:   s.NumMachines(),
		Cost:       s.Cost(),
	})
}

// ReadSchedule decodes a schedule written by WriteSchedule and verifies it.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	var w scheduleJSON
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	if w.Instance == nil {
		return nil, fmt.Errorf("core: schedule JSON missing instance")
	}
	s, err := FromAssignment(w.Instance, w.Assignment)
	if err != nil {
		return nil, err
	}
	if err := s.Verify(); err != nil {
		return nil, err
	}
	return s, nil
}
