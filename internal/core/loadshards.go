package core

import (
	"slices"

	"busytime/internal/interval"
)

// The sharded capacity oracle of an indexed machine stores the machine's
// jobs bucketed by time over the instance's compressed axis: shard k spans
// the buckets [k<<shardShift, (k+1)<<shardShift) of the instance axis, so a
// capacity probe — maximum demand-weighted closed depth within a window —
// only sweeps the shards its window overlaps, each a short list.
//
// Storage is a flat chunked arena shared by every machine of the schedule
// (shardPool): a shard is a chain of fixed-size chunks addressed by index,
// so appending a job never moves other jobs and recycling the whole pool is
// an O(1) truncation. Shard count and width are fixed up front from the
// instance axis, which removes the PR 2 doubling growth (grow() re-copied
// every stored job each time a machine's shards doubled — the dominant
// allocation source at 100k jobs) from the insert path entirely.
//
// Shard membership is computed in bucket space (integer shifts on the
// precomputed axis ranges), and axis buckets touching an interval at a
// single point are included (interval.Axis.OverlapRange): a job ending
// exactly on a shard boundary is stored on both sides, so every shard holds
// every job overlapping any point of its closed time range and per-shard
// sweeps are exact under closed semantics, with no float widening.

// shardChunkLen is the number of items per chunk; chunks are ~400 B, small
// enough that sparsely filled shards waste little and large enough that a
// sweep mostly walks contiguous memory.
const shardChunkLen = 16

// smallSweep is the event count up to which sweepShard evaluates depths
// quadratically instead of sorting; beyond it the sort-based sweep wins.
const smallSweep = 32

type shardItem struct {
	iv     interval.Interval
	demand int32
}

type shardEvent struct {
	t float64
	d int32
}

type shardChunk struct {
	items [shardChunkLen]shardItem
	n     int32
	prev  int32 // earlier chunk of the same shard's chain; 0 terminates
}

// shardPool is the schedule-wide arena behind every machine's loadShards,
// plus the sweep scratch shared by their probes. It lives in the Scratch (or
// in the schedule, for fresh schedules) and is recycled across instances:
// reset is O(1) and a warm pool serves chunks without allocating.
type shardPool struct {
	// chunks[0] is a sentinel that is permanently full, so the append path
	// needs no empty-chain branch; heads of value 0 mean "empty shard".
	chunks []shardChunk
	// sweep scratch reused across every probe of the schedule
	sbuf, ebuf []shardEvent
	// allocs counts backing-array growth, feeding ScratchStats.
	allocs int
}

// reset drops every chunk in O(1), retaining the arena.
func (p *shardPool) reset() {
	if len(p.chunks) > 0 {
		p.chunks = p.chunks[:1]
	}
}

// take hands out an empty chunk chained after prev, recycling retained
// capacity before growing the arena.
func (p *shardPool) take(prev int32) int32 {
	if len(p.chunks) == 0 {
		if cap(p.chunks) == 0 {
			p.allocs++
		}
		p.chunks = append(p.chunks, shardChunk{n: shardChunkLen}) // sentinel
	}
	if len(p.chunks) < cap(p.chunks) {
		p.chunks = p.chunks[:len(p.chunks)+1]
		c := &p.chunks[len(p.chunks)-1]
		c.n, c.prev = 0, prev
	} else {
		p.allocs++
		p.chunks = append(p.chunks, shardChunk{prev: prev})
	}
	return int32(len(p.chunks) - 1)
}

// loadShards is one machine's shard directory: per shard, the head of its
// chunk chain in the schedule's shardPool.
type loadShards struct {
	heads []int32
	on    bool
}

// enabled reports whether init configured the shards for this schedule.
func (ls *loadShards) enabled() bool { return ls.on }

// init sizes the shard directory from the instance axis — shard count and
// width are fixed per instance, so the insert path never redistributes. It
// reports whether the directory's backing array had to grow.
func (ls *loadShards) init(ia *instanceAxis) (grew bool) {
	ls.on = true
	n := ia.nshards
	if cap(ls.heads) < n {
		ls.heads = make([]int32, n)
		return true
	}
	ls.heads = ls.heads[:n]
	clear(ls.heads)
	return false
}

// reset disables the shards until the next init; chunk chains die with the
// pool's own reset.
func (ls *loadShards) reset() { ls.on = false }

// add stores one copy of the job in every shard of [slo, shi] (the job's
// axis bucket range shifted to shard space).
func (ls *loadShards) add(p *shardPool, iv interval.Interval, demand int, slo, shi int) {
	it := shardItem{iv: iv, demand: int32(demand)}
	for k := slo; k <= shi; k++ {
		h := ls.heads[k]
		if len(p.chunks) == 0 || p.chunks[h].n == shardChunkLen {
			h = p.take(h)
			ls.heads[k] = h
		}
		c := &p.chunks[h]
		c.items[c.n] = it
		c.n++
	}
}

// maxDepthRun returns the maximum demand-weighted closed depth within w, a
// witness point attaining it, and (when the depth reaches thresh) a maximal
// saturated run around the witness, mirroring itree.MaxDepthRunWithinAt.
// [slo, shi] is w's shard range; the window is processed shard by shard on
// clipped sub-windows. Each shard holds every job overlapping its closed
// tile, so per-shard depths are exact and the overall maximum is their
// maximum.
func (ls *loadShards) maxDepthRun(p *shardPool, ia *instanceAxis, w interval.Interval, thresh, slo, shi int) (depth int, at float64, run interval.Interval, ok bool) {
	if thresh < 1 {
		thresh = 1
	}
	for k := slo; k <= shi; k++ {
		sub := w
		if k > slo {
			if t := ia.shardStart(k); t > sub.Start {
				sub.Start = t
			}
		}
		if k < shi {
			if t := ia.shardEnd(k); t < sub.End {
				sub.End = t
			}
		}
		if sub.Start > sub.End {
			continue
		}
		d, a, r, o := ls.sweepShard(p, k, sub, thresh)
		if d > depth {
			depth, at = d, a
			run, ok = r, o
		}
	}
	return depth, at, run, ok
}

// sweepShard computes the exact depth profile of one shard's items over the
// sub-window sub by walking the shard's chunk chain.
func (ls *loadShards) sweepShard(p *shardPool, k int, sub interval.Interval, thresh int) (depth int, at float64, run interval.Interval, ok bool) {
	starts, ends := p.sbuf[:0], p.ebuf[:0]
	for h := ls.heads[k]; h != 0; h = p.chunks[h].prev {
		c := &p.chunks[h]
		for i := int32(0); i < c.n; i++ {
			it := &c.items[i]
			if !it.iv.Overlaps(sub) {
				continue
			}
			s, e := it.iv.Start, it.iv.End
			if s < sub.Start {
				s = sub.Start
			}
			if e > sub.End {
				e = sub.End
			}
			starts = append(starts, shardEvent{t: s, d: it.demand})
			ends = append(ends, shardEvent{t: e, d: it.demand})
		}
	}
	p.sbuf, p.ebuf = starts, ends
	if len(starts) == 0 {
		return 0, 0, interval.Interval{}, false
	}
	// Small sweeps — the common case with shards sized to a handful of jobs
	// — skip the sorts: the maximum closed depth is attained at some clipped
	// start point, so a direct quadratic evaluation over the parallel
	// start/end arrays is exact and cheaper than two SortFunc calls. Only a
	// saturated result (depth >= thresh) falls through to the full sweep,
	// which additionally extracts the saturated run.
	if len(starts) <= smallSweep {
		for i := range starts {
			pt := starts[i].t
			d := 0
			for k := range starts {
				if starts[k].t <= pt && pt <= ends[k].t {
					d += int(starts[k].d)
				}
			}
			if d > depth || (d == depth && pt < at) {
				depth, at = d, pt
			}
		}
		if depth < thresh {
			return depth, at, interval.Interval{}, false
		}
		depth, at = 0, 0
	}
	slices.SortFunc(starts, func(a, b shardEvent) int {
		if a.t < b.t {
			return -1
		}
		if a.t > b.t {
			return 1
		}
		return 0
	})
	slices.SortFunc(ends, func(a, b shardEvent) int {
		if a.t < b.t {
			return -1
		}
		if a.t > b.t {
			return 1
		}
		return 0
	})
	// Two-pointer sweep, starts first at equal coordinates for closed
	// semantics; run tracking mirrors itree.MaxDepthRunWithinAt.
	cur, best := 0, 0
	inRun, runStart, bestRunStart := false, 0.0, 0.0
	i, j := 0, 0
	for i < len(starts) {
		if starts[i].t <= ends[j].t {
			cur += int(starts[i].d)
			if cur >= thresh && !inRun {
				inRun, runStart = true, starts[i].t
			}
			if cur > best {
				best = cur
				at = starts[i].t
				bestRunStart = runStart
			}
			i++
		} else {
			if inRun && cur-int(ends[j].d) < thresh {
				inRun = false
				if best >= thresh && bestRunStart == runStart {
					run, ok = interval.Interval{Start: runStart, End: ends[j].t}, true
				}
			}
			cur -= int(ends[j].d)
			j++
		}
	}
	for inRun && j < len(ends) {
		if cur-int(ends[j].d) < thresh {
			inRun = false
			if best >= thresh && bestRunStart == runStart {
				run, ok = interval.Interval{Start: runStart, End: ends[j].t}, true
			}
		}
		cur -= int(ends[j].d)
		j++
	}
	return best, at, run, ok
}
