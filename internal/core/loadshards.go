package core

import (
	"slices"

	"busytime/internal/interval"
)

// loadShards is the exact capacity oracle of an indexed machine: the
// machine's jobs, sharded by time over the instance hull. Appending a job is
// O(1) amortized (it lands in every shard its interval overlaps, and shard
// count doubles as the machine fills), and the capacity query — maximum
// demand-weighted closed depth within a window — scans only the shards the
// window overlaps, each a small contiguous slice. On the dense workloads the
// machine-selection index targets, probe windows span one or two shards, so
// the query never touches the rest of the machine's history; this is what
// replaces the interval tree's O(log n) pointer-chasing insertions and
// traversals on the hot path.
//
// Shard k notionally covers [t0+k·width, t0+(k+1)·width], with the first and
// last shard unbounded below and above; add widens its shard range by one on
// each side so float rounding at tile boundaries can only duplicate a job
// into an extra shard, never omit it from a shard it overlaps. Queries
// therefore see every job covering any point they ask about, and taking the
// per-shard maximum over clipped sub-windows needs no deduplication.
type loadShards struct {
	t0, width float64
	hullLen   float64
	shards    [][]shardItem
	items     int // total stored copies, duplication included
	// query scratch, reused across probes
	sbuf, ebuf []shardEvent
}

type shardItem struct {
	iv     interval.Interval
	demand int32
}

type shardEvent struct {
	t float64
	d int32
}

// shardTarget is the average shard occupancy that triggers a doubling; the
// cap bounds resharding work and memory on pathological machines.
const (
	shardTarget    = 160
	maxShardsPower = 12 // ≤ 4096 shards
)

// init configures the shards for an instance hull, retaining allocations;
// a degenerate hull (hullLen ≤ 0) leaves a single unbounded shard, which
// stays exact and simply never doubles.
func (ls *loadShards) init(t0, hullLen float64) {
	ls.t0, ls.hullLen = t0, hullLen
	ls.width = hullLen
	ls.items = 0
	if cap(ls.shards) < 1 {
		ls.shards = make([][]shardItem, 1)
		return
	}
	ls.shards = ls.shards[:1]
	ls.shards[0] = ls.shards[0][:0]
}

// reset disables the shards until the next init, keeping allocations.
func (ls *loadShards) reset() {
	for i := range ls.shards {
		ls.shards[i] = ls.shards[i][:0]
	}
	ls.shards = ls.shards[:0]
	ls.items = 0
}

// enabled reports whether init configured the structure for this schedule.
func (ls *loadShards) enabled() bool { return len(ls.shards) > 0 }

// shardFor clamps t onto a shard index.
func (ls *loadShards) shardFor(t float64) int {
	if ls.width <= 0 {
		return 0
	}
	k := int((t - ls.t0) / ls.width)
	if k < 0 {
		return 0
	}
	if k >= len(ls.shards) {
		return len(ls.shards) - 1
	}
	return k
}

// span returns the shard range of iv widened by one shard on each side, so
// every shard iv overlaps is included despite float rounding.
func (ls *loadShards) span(iv interval.Interval) (lo, hi int) {
	lo = ls.shardFor(iv.Start) - 1
	if lo < 0 {
		lo = 0
	}
	hi = ls.shardFor(iv.End) + 1
	if hi > len(ls.shards)-1 {
		hi = len(ls.shards) - 1
	}
	return lo, hi
}

// add stores a job copy in every shard its interval overlaps.
func (ls *loadShards) add(iv interval.Interval, demand int) {
	it := shardItem{iv: iv, demand: int32(demand)}
	lo, hi := ls.span(iv)
	for k := lo; k <= hi; k++ {
		ls.shards[k] = append(ls.shards[k], it)
	}
	ls.items += hi - lo + 1
	if ls.items > shardTarget*len(ls.shards) && len(ls.shards) < 1<<maxShardsPower && ls.hullLen > 0 {
		ls.grow()
	}
}

// grow doubles the shard count and redistributes every job. Duplicated
// copies are filtered by keeping only each job's canonical copy (the one in
// the first shard of its span) while collecting.
func (ls *loadShards) grow() {
	old := ls.shards
	oldWidth := ls.width
	n := 2 * len(old)
	ls.width = ls.hullLen / float64(n)
	if cap(ls.shards) >= n {
		ls.shards = ls.shards[:n]
	} else {
		grown := make([][]shardItem, n)
		copy(grown, old)
		ls.shards = grown
	}
	// Collect canonical copies before truncating the reused prefix. The
	// canonical shard of a job is the first shard of its old span, computed
	// with the old geometry exactly as span did.
	var all []shardItem
	for k, shard := range old {
		for _, it := range shard {
			c := 0
			if oldWidth > 0 {
				c = int((it.iv.Start - ls.t0) / oldWidth)
				if c < 0 {
					c = 0
				}
				if c > len(old)-1 {
					c = len(old) - 1
				}
			}
			if c = c - 1; c < 0 {
				c = 0
			}
			if c == k {
				all = append(all, it)
			}
		}
	}
	for i := range ls.shards {
		ls.shards[i] = ls.shards[i][:0]
	}
	ls.items = 0
	for _, it := range all {
		lo, hi := ls.span(it.iv)
		for k := lo; k <= hi; k++ {
			ls.shards[k] = append(ls.shards[k], it)
		}
		ls.items += hi - lo + 1
	}
}

// maxDepthRun returns the maximum demand-weighted closed depth within w, a
// witness point attaining it, and (when the depth reaches thresh) a maximal
// saturated run around the witness, mirroring itree.MaxDepthRunWithinAt.
// The window is processed shard by shard on clipped sub-windows; each shard
// holds every job overlapping its tile, so per-shard depths are exact and
// the overall maximum is their maximum.
func (ls *loadShards) maxDepthRun(w interval.Interval, thresh int) (depth int, at float64, run interval.Interval, ok bool) {
	if thresh < 1 {
		thresh = 1
	}
	lo, hi := ls.span(w)
	for k := lo; k <= hi; k++ {
		ws, we := w.Start, w.End
		if k > lo {
			if t := ls.t0 + float64(k)*ls.width; t > ws {
				ws = t
			}
		}
		if k < hi {
			if t := ls.t0 + float64(k+1)*ls.width; t < we {
				we = t
			}
		}
		if ws > we {
			continue
		}
		d, a, r, o := ls.sweepShard(k, interval.Interval{Start: ws, End: we}, thresh)
		if d > depth {
			depth, at = d, a
			run, ok = r, o
		}
	}
	return depth, at, run, ok
}

// sweepShard computes the exact depth profile of one shard's items over the
// sub-window sub.
func (ls *loadShards) sweepShard(k int, sub interval.Interval, thresh int) (depth int, at float64, run interval.Interval, ok bool) {
	starts, ends := ls.sbuf[:0], ls.ebuf[:0]
	for _, it := range ls.shards[k] {
		if !it.iv.Overlaps(sub) {
			continue
		}
		s, e := it.iv.Start, it.iv.End
		if s < sub.Start {
			s = sub.Start
		}
		if e > sub.End {
			e = sub.End
		}
		starts = append(starts, shardEvent{t: s, d: it.demand})
		ends = append(ends, shardEvent{t: e, d: it.demand})
	}
	ls.sbuf, ls.ebuf = starts, ends
	if len(starts) == 0 {
		return 0, 0, interval.Interval{}, false
	}
	slices.SortFunc(starts, func(a, b shardEvent) int {
		if a.t < b.t {
			return -1
		}
		if a.t > b.t {
			return 1
		}
		return 0
	})
	slices.SortFunc(ends, func(a, b shardEvent) int {
		if a.t < b.t {
			return -1
		}
		if a.t > b.t {
			return 1
		}
		return 0
	})
	// Two-pointer sweep, starts first at equal coordinates for closed
	// semantics; run tracking mirrors itree.MaxDepthRunWithinAt.
	cur, best := 0, 0
	inRun, runStart, bestRunStart := false, 0.0, 0.0
	i, j := 0, 0
	for i < len(starts) {
		if starts[i].t <= ends[j].t {
			cur += int(starts[i].d)
			if cur >= thresh && !inRun {
				inRun, runStart = true, starts[i].t
			}
			if cur > best {
				best = cur
				at = starts[i].t
				bestRunStart = runStart
			}
			i++
		} else {
			if inRun && cur-int(ends[j].d) < thresh {
				inRun = false
				if best >= thresh && bestRunStart == runStart {
					run, ok = interval.Interval{Start: runStart, End: ends[j].t}, true
				}
			}
			cur -= int(ends[j].d)
			j++
		}
	}
	for inRun && j < len(ends) {
		if cur-int(ends[j].d) < thresh {
			inRun = false
			if best >= thresh && bestRunStart == runStart {
				run, ok = interval.Interval{Start: runStart, End: ends[j].t}, true
			}
		}
		cur -= int(ends[j].d)
		j++
	}
	return best, at, run, ok
}
