package core

import (
	"fmt"

	"busytime/internal/interval"
)

// Assembly builds a schedule whose placements are already known — the merge
// step of the component-decomposition layer, where per-component runs have
// decided every job's machine and only the global bookkeeping remains. It
// replays placements through the same incremental accounting as the live
// kernel (per-machine job list, busy hull, span union feeding totalBusy) but
// skips every capacity structure: no interval trees, shards, profiles or
// index, because feasibility was established by the runs being merged. The
// result is sealed — mutating kernel entry points panic on it, since its
// machines carry no oracle to answer them — while every read path (Cost,
// Verify, Summary, Assignment, Detach-style re-derivation) stays valid.
//
// Replay order matters for bitwise equality: Σ busy time is accumulated by
// interval.Spans.Add one placement at a time, so putting jobs in the same
// order the sequential algorithm would have placed them reproduces its
// floating-point accumulation exactly.
type Assembly struct {
	s *Schedule
}

// BeginAssembly starts assembling a schedule for inst with the given number
// of pre-opened machines, drawn from sc (or fresh memory when sc is nil).
func BeginAssembly(inst *Instance, sc *Scratch, machines int) Assembly {
	s := NewScheduleFrom(inst, sc)
	for m := 0; m < machines; m++ {
		s.OpenMachine()
	}
	return Assembly{s: s}
}

// Put appends job index j to machine m. Placements on one machine must
// arrive in the order the originating run placed them, so the machine's job
// list and span union replay identically.
func (a Assembly) Put(j, m int) {
	s := a.s
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: assembly placed job index %d twice", j))
	}
	st := &s.machines[m]
	job := s.inst.Jobs[j]
	if len(st.jobs) == 0 {
		st.hull = job.Iv
	} else {
		st.hull = st.hull.Hull(job.Iv)
	}
	st.jobs = append(st.jobs, j)
	s.totalBusy += st.spans.Add(job.Iv)
	s.assign[j] = m
}

// Graft adopts already-merged busy-span pieces onto machine m wholesale —
// the stitch merge of the decomposition layer. The pieces come from a
// per-component (or per-shard) run's live span union via
// Schedule.AppendMachineSpans; successive grafts onto one machine must
// arrive in ascending time order with positive gaps between them, which the
// component sweep guarantees (components are separated by gaps of positive
// length). Graft maintains the machine's busy hull but not its total: totals
// are replayed separately (PutDelta or Credit) so the assembled Cost
// reproduces the originating accumulation order bitwise.
func (a Assembly) Graft(m int, pieces []interval.Interval) {
	if len(pieces) == 0 {
		return
	}
	st := &a.s.machines[m]
	if st.spans.Count() == 0 {
		st.hull = interval.Interval{Start: pieces[0].Start, End: pieces[len(pieces)-1].End}
	} else {
		st.hull.End = pieces[len(pieces)-1].End
	}
	st.spans.Graft(pieces)
}

// Credit folds measure into machine m's busy total and the schedule's Cost
// without touching the span pieces — the accounting half of a Graft whose
// per-machine total is already known (the time-sharding merge, where each
// shard machine maps to exactly one global machine).
func (a Assembly) Credit(m int, measure float64) {
	a.s.machines[m].spans.AddMeasure(measure)
	a.s.totalBusy += measure
}

// PutDelta appends job index j to machine m replaying its recorded
// span-union delta instead of re-merging the interval: the machine's job
// list, its busy total and the schedule's Cost advance exactly as the
// originating run's placement did. Placements must arrive in the originating
// global order so the floating-point accumulation reproduces bit for bit;
// the span pieces themselves are adopted separately via Graft.
func (a Assembly) PutDelta(j, m int, delta float64) {
	s := a.s
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: assembly placed job index %d twice", j))
	}
	st := &s.machines[m]
	st.jobs = append(st.jobs, j)
	st.spans.AddMeasure(delta)
	s.totalBusy += delta
	s.assign[j] = m
}

// PutPlaced appends job index j to machine m updating only the job list and
// assignment — for merges whose span pieces and totals were adopted
// machine-wholesale (Graft + Credit).
func (a Assembly) PutPlaced(j, m int) {
	s := a.s
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: assembly placed job index %d twice", j))
	}
	s.machines[m].jobs = append(s.machines[m].jobs, j)
	s.assign[j] = m
}

// Finish seals the assembled schedule and returns it.
func (a Assembly) Finish() *Schedule {
	a.s.sealed = true
	return a.s
}
