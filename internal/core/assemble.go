package core

import "fmt"

// Assembly builds a schedule whose placements are already known — the merge
// step of the component-decomposition layer, where per-component runs have
// decided every job's machine and only the global bookkeeping remains. It
// replays placements through the same incremental accounting as the live
// kernel (per-machine job list, busy hull, span union feeding totalBusy) but
// skips every capacity structure: no interval trees, shards, profiles or
// index, because feasibility was established by the runs being merged. The
// result is sealed — mutating kernel entry points panic on it, since its
// machines carry no oracle to answer them — while every read path (Cost,
// Verify, Summary, Assignment, Detach-style re-derivation) stays valid.
//
// Replay order matters for bitwise equality: Σ busy time is accumulated by
// interval.Spans.Add one placement at a time, so putting jobs in the same
// order the sequential algorithm would have placed them reproduces its
// floating-point accumulation exactly.
type Assembly struct {
	s *Schedule
}

// BeginAssembly starts assembling a schedule for inst with the given number
// of pre-opened machines, drawn from sc (or fresh memory when sc is nil).
func BeginAssembly(inst *Instance, sc *Scratch, machines int) Assembly {
	s := NewScheduleFrom(inst, sc)
	for m := 0; m < machines; m++ {
		s.OpenMachine()
	}
	return Assembly{s: s}
}

// Put appends job index j to machine m. Placements on one machine must
// arrive in the order the originating run placed them, so the machine's job
// list and span union replay identically.
func (a Assembly) Put(j, m int) {
	s := a.s
	if s.assign[j] != Unassigned {
		panic(fmt.Sprintf("core: assembly placed job index %d twice", j))
	}
	st := &s.machines[m]
	job := s.inst.Jobs[j]
	if len(st.jobs) == 0 {
		st.hull = job.Iv
	} else {
		st.hull = st.hull.Hull(job.Iv)
	}
	st.jobs = append(st.jobs, j)
	s.totalBusy += st.spans.Add(job.Iv)
	s.assign[j] = m
}

// Finish seals the assembled schedule and returns it.
func (a Assembly) Finish() *Schedule {
	a.s.sealed = true
	return a.s
}
