package core

import (
	"math/bits"

	"busytime/internal/interval"
)

// Placer is the shared placement kernel: a stateless view over a Schedule
// exposing the order-parameterized placement primitives every scheduler of
// the library composes. The kernel owns the fast substrate — the machine
// selection index, the saturation bitmap, the bucketed load profiles, the
// time-sharded capacity oracle and the recyclable arena — so an algorithm is
// just a policy choosing which primitive to call for each job:
//
//   - LowestFit: the FirstFit rule — lowest-indexed machine that fits, a
//     fresh machine when none does (index-accelerated, see FirstFitAssign);
//   - BestFit: argmin of the busy-time increase over all feasible machines,
//     ties to the lowest index, with sound index prunings;
//   - NextFit: a single-open-machine cursor that abandons machines
//     permanently on overflow;
//   - CanPlace / TryPlace / Place / PlaceNew: capacity probes and raw
//     placements for bespoke policies (colorings, matchings, exact search).
//
// Every primitive is sound with respect to the naive per-machine scan it
// replaces: prunings only skip machines that provably cannot change the
// outcome, so kernel-routed schedulers are byte-identical to their ad-hoc
// loops (the registry-wide differential suite pins this down).
//
// A Placer is a value — obtain one with Schedule.Placer and pass it by
// value; it holds no state of its own (the NextFit cursor lives on the
// schedule, so recycled schedules reset it for free).
type Placer struct {
	s *Schedule
}

// Placer returns the placement-kernel view of the schedule.
func (s *Schedule) Placer() Placer { return Placer{s: s} }

// Schedule returns the underlying schedule.
func (p Placer) Schedule() *Schedule { return p.s }

// Instance returns the instance being scheduled.
func (p Placer) Instance() *Instance { return p.s.inst }

// NumMachines returns the number of opened machines.
func (p Placer) NumMachines() int { return p.s.NumMachines() }

// MachineOf returns the machine of job index j, or Unassigned.
func (p Placer) MachineOf(j int) int { return p.s.MachineOf(j) }

// CanPlace reports whether job index j fits on machine m (capacity probe;
// see Schedule.CanAssign).
func (p Placer) CanPlace(j, m int) bool { return p.s.CanAssign(j, m) }

// Place puts job index j on machine m without a capacity check; callers are
// responsible for feasibility (via CanPlace, or by construction).
func (p Placer) Place(j, m int) { p.s.Assign(j, m) }

// TryPlace atomically checks capacity and places job index j on machine m
// when it fits, reporting success.
func (p Placer) TryPlace(j, m int) bool { return p.s.TryAssign(j, m) }

// PlaceNew opens a fresh machine for job index j and returns it.
func (p Placer) PlaceNew(j int) int { return p.s.AssignNew(j) }

// OpenMachine creates a new empty machine and returns its index.
func (p Placer) OpenMachine() int { return p.s.OpenMachine() }

// SpanDelta returns the busy-time increase machine m would incur from
// hosting iv, without modifying the schedule.
func (p Placer) SpanDelta(m int, iv interval.Interval) float64 { return p.s.SpanDelta(m, iv) }

// LowestFit places job index j by the FirstFit rule — the lowest-indexed
// machine that can process it, a fresh machine when none can — and returns
// the machine. With the machine-selection index enabled the scan is
// sublinear (see Schedule.FirstFitAssign).
func (p Placer) LowestFit(j int) int { return p.s.FirstFitAssign(j) }

// NextFit places job index j on the kernel's single open machine, opening a
// fresh one (and abandoning the old one permanently) when the job does not
// fit, and returns the machine. The cursor starts closed: the first call
// always opens machine 0.
func (p Placer) NextFit(j int) int {
	s := p.s
	if s.cursor != Unassigned {
		lo, hi := s.jobBuckets(j)
		if s.tryAssign(j, s.cursor, lo, hi) {
			return s.cursor
		}
	}
	s.cursor = s.AssignNew(j)
	return s.cursor
}

// BestFit places job index j on the feasible machine whose busy time grows
// the least — ties to the lowest index, a fresh machine when none fits — and
// returns the machine. The scan is pruned by two sound observations on top
// of the capacity hints:
//
//   - a machine whose busy hull is disjoint from the job's window (or that
//     is empty) grows by the full job length, the maximum possible delta, so
//     once any candidate is held such machines can never win the argmin
//     (ties go to the earlier candidate);
//   - a machine with a fully saturated axis bucket inside the job's window
//     provably rejects, so the index's saturation bitmap skips whole words
//     of such machines without probing them.
//
// Both prunings only skip machines the naive scan would also discard, so the
// produced schedule is byte-identical to probing every machine in order.
func (p Placer) BestFit(j int) int {
	m := p.BestFitProbe(j)
	if m == Unassigned {
		return p.s.AssignNew(j)
	}
	p.s.Assign(j, m)
	return m
}

// BestFitProbe is BestFit without the placement: it returns the machine
// BestFit would choose, or Unassigned when no machine fits. Callers that
// need to veto or record the decision place it themselves via Place.
func (p Placer) BestFitProbe(j int) int {
	s := p.s
	job := s.inst.Jobs[j]
	nm := len(s.machines)
	bestM, bestDelta := -1, 0.0
	if nm == 0 {
		return Unassigned
	}
	lo, hi := s.jobBuckets(j)
	var bl []uint64
	if s.index != nil {
		bl = s.index.blockedMask(lo, hi)
	}
	for wi := 0; wi*64 < nm; wi++ {
		free := ^uint64(0)
		if wi < len(bl) {
			free = ^bl[wi]
		}
		for free != 0 {
			m := wi*64 + bits.TrailingZeros64(free)
			free &= free - 1
			if m >= nm {
				break
			}
			st := &s.machines[m]
			if bestM >= 0 && bestDelta <= job.Iv.Len() &&
				(len(st.jobs) == 0 || !job.Iv.Overlaps(st.hull)) {
				// A disjoint (or empty) machine's delta is exactly the job
				// length; it cannot beat the held candidate. The bestDelta
				// guard keeps the skip sound even if floating point ever
				// reported a candidate delta above the length.
				continue
			}
			if !s.CanAssign(j, m) {
				continue
			}
			delta := st.spans.Delta(job.Iv)
			if bestM < 0 || delta < bestDelta {
				bestM, bestDelta = m, delta
			}
		}
	}
	if bestM < 0 {
		return Unassigned
	}
	return bestM
}
