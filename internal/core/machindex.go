package core

import (
	"math"

	"busytime/internal/interval"
)

// machindex is the machine-selection index behind Schedule.FirstFitAssign:
// it makes the greedy "lowest-indexed machine that fits" scan sublinear by
// combining two structures, both maintained incrementally by Schedule.insert
// and by rejected capacity probes.
//
//  1. A segment tree over machine slots keyed by each machine's busy hull
//     [min,max] and peak load. It answers "lowest-indexed machine whose hull
//     is disjoint from window W or whose peak ≤ g − d" in O(log M). Such a
//     machine is guaranteed to accept the job, so the scan never has to look
//     past it; the answer is exactly where the paper's FirstFit would stop
//     if every earlier machine rejects.
//
//  2. A per-bucket saturation bitmap over the instance's compressed time
//     axis. Bit m of bucket b means "machine m is loaded to ≥ g at every
//     point of bucket b". Bits are derived from saturated runs extracted by
//     rejected capacity probes, which are durable because machines only gain
//     jobs. A probe window overlapping a set bucket therefore contains a
//     saturated point, so the machine provably rejects and whole runs of
//     saturated machines are skipped with word-wide bit operations.
//
// Buckets are the elementary segments of the instance axis (distinct job
// endpoints, decimated past maxTimeBuckets), so bitmap and profile memory
// scale with distinct event times rather than the raw horizon. All bucket
// geometry lives in interval.Axis; the index only consumes precomputed
// bucket ranges.
//
// Soundness is one-directional by construction: the bitmap may only skip
// machines that would certainly reject, and the segment tree may only stop
// the scan at a machine that certainly accepts, so the indexed scan produces
// byte-identical schedules to the linear probe loop.
type machindex struct {
	// Saturation bitmap; nb == 0 disables it (degenerate axis).
	nb      int
	words   int      // uint64 words per bucket (machines / 64, rounded up)
	mask    []uint64 // nb × words, bucket-major
	blocked []uint64 // scratch for the per-probe blocked-machine mask

	// Segment tree over machine slots; standard 1-based array layout with
	// leaves at [size, 2·size). Unopened slots never qualify.
	size     int
	nm       int
	minEnd   []float64 // min busy-hull end per subtree (+inf when empty)
	maxStart []float64 // max busy-hull start per subtree (−inf when empty)
	minPeak  []int32   // min peak load per subtree

	// allocs counts backing-array growth, feeding ScratchStats; a warm index
	// recycled at the same shape performs none.
	allocs int
}

// maxQueryBuckets caps the per-probe bitmap scan; longer windows are sampled
// with a stride, which only under-reports blocked machines and is therefore
// always sound.
const maxQueryBuckets = 1024

// Bitmap and profile memory is O(buckets × machines), so both structures
// cover only a prefix of the machine range: machines beyond the caps are
// still indexed by the segment tree (O(1) per machine) and probed through
// hints and shards — they just can't be skipped by the bitmap or settled by
// a profile, which only costs time, never correctness. FirstFit concentrates
// its probes on low machine indices, so the prefix is where the structures
// pay off. With the maximum 2¹⁶ buckets this bounds the bitmap at 4 MiB and
// the profiles at 16 MiB per schedule.
const (
	maxBitmapMachines  = 512
	maxProfileMachines = 128
)

const unopenedPeak = math.MaxInt32

// reset reconfigures the index for an instance axis, retaining allocations
// where shapes allow, and drops all machines.
func (ix *machindex) reset(ia *instanceAxis) {
	ix.nm = 0
	ix.words = 1
	ix.nb = ia.nb
	if need := ix.nb * ix.words; cap(ix.mask) < need {
		ix.allocs++
		ix.mask = make([]uint64, need)
	} else {
		ix.mask = ix.mask[:need]
		clear(ix.mask)
	}
	if cap(ix.blocked) < ix.words {
		ix.allocs++
		ix.blocked = make([]uint64, ix.words)
	} else {
		ix.blocked = ix.blocked[:ix.words]
	}
	ix.clearTree(1)
}

// clearTree (re)shapes the segment tree for at least want leaves — keeping
// the larger of want and the current size, so a recycled index does not
// re-grow machine by machine — and resets every slot to unopened.
func (ix *machindex) clearTree(want int) {
	size := 1
	for size < want {
		size <<= 1
	}
	if size < ix.size {
		size = ix.size
	}
	if 2*size > cap(ix.minEnd) {
		ix.allocs++
		ix.minEnd = make([]float64, 2*size)
		ix.maxStart = make([]float64, 2*size)
		ix.minPeak = make([]int32, 2*size)
	} else {
		ix.minEnd = ix.minEnd[:2*size]
		ix.maxStart = ix.maxStart[:2*size]
		ix.minPeak = ix.minPeak[:2*size]
	}
	for i := range ix.minEnd {
		ix.minEnd[i] = math.Inf(1)
		ix.maxStart[i] = math.Inf(-1)
		ix.minPeak[i] = unopenedPeak
	}
	ix.size = size
}

// growTree doubles the tree to hold at least want leaves, preserving the nm
// open leaves in place (no temporary copies, and no allocation when the
// retained capacity suffices).
func (ix *machindex) growTree(want int) {
	oldSize, m := ix.size, ix.nm
	size := oldSize
	if size == 0 {
		size = 1
	}
	for size < want {
		size <<= 1
	}
	if 2*size > cap(ix.minEnd) {
		ix.allocs++
		minEnd := make([]float64, 2*size)
		maxStart := make([]float64, 2*size)
		minPeak := make([]int32, 2*size)
		copy(minEnd[size:], ix.minEnd[oldSize:oldSize+m])
		copy(maxStart[size:], ix.maxStart[oldSize:oldSize+m])
		copy(minPeak[size:], ix.minPeak[oldSize:oldSize+m])
		ix.minEnd, ix.maxStart, ix.minPeak = minEnd, maxStart, minPeak
	} else {
		ix.minEnd = ix.minEnd[:2*size]
		ix.maxStart = ix.maxStart[:2*size]
		ix.minPeak = ix.minPeak[:2*size]
		// size ≥ 2·oldSize ≥ oldSize+m, so the leaf block moves strictly
		// rightward and a forward copy never clobbers unread slots.
		copy(ix.minEnd[size:size+m], ix.minEnd[oldSize:oldSize+m])
		copy(ix.maxStart[size:size+m], ix.maxStart[oldSize:oldSize+m])
		copy(ix.minPeak[size:size+m], ix.minPeak[oldSize:oldSize+m])
	}
	for i := size + m; i < 2*size; i++ {
		ix.minEnd[i] = math.Inf(1)
		ix.maxStart[i] = math.Inf(-1)
		ix.minPeak[i] = unopenedPeak
	}
	for n := size - 1; n >= 1; n-- {
		l, r := 2*n, 2*n+1
		ix.minEnd[n] = math.Min(ix.minEnd[l], ix.minEnd[r])
		ix.maxStart[n] = math.Max(ix.maxStart[l], ix.maxStart[r])
		if ix.minPeak[l] < ix.minPeak[r] {
			ix.minPeak[n] = ix.minPeak[l]
		} else {
			ix.minPeak[n] = ix.minPeak[r]
		}
	}
	ix.size = size
}

// addMachine registers the next machine slot (empty: no hull, peak 0).
func (ix *machindex) addMachine() {
	m := ix.nm
	if m >= ix.size {
		ix.growTree(m + 1)
	}
	ix.nm++
	ix.setLeaf(m, math.Inf(-1), math.Inf(1), 0)
	if ix.nm > 64*ix.words && ix.nm <= maxBitmapMachines {
		ix.growWords()
	}
}

// setLeaf writes a leaf and re-aggregates its ancestors.
func (ix *machindex) setLeaf(m int, hullStart, hullEnd float64, peak int32) {
	n := ix.size + m
	ix.minEnd[n], ix.maxStart[n], ix.minPeak[n] = hullEnd, hullStart, peak
	for n >>= 1; n >= 1; n >>= 1 {
		l, r := 2*n, 2*n+1
		ix.minEnd[n] = math.Min(ix.minEnd[l], ix.minEnd[r])
		ix.maxStart[n] = math.Max(ix.maxStart[l], ix.maxStart[r])
		if ix.minPeak[l] < ix.minPeak[r] {
			ix.minPeak[n] = ix.minPeak[l]
		} else {
			ix.minPeak[n] = ix.minPeak[r]
		}
	}
}

// update refreshes machine m's hull and peak after an insertion.
func (ix *machindex) update(m int, hull interval.Interval, peak int) {
	p := int32(unopenedPeak - 1)
	if peak < int(p) {
		p = int32(peak)
	}
	ix.setLeaf(m, hull.Start, hull.End, p)
}

// qualifies reports whether subtree n can contain a machine that trivially
// accepts a job with window w and slack g−d: hull entirely before the
// window, hull entirely after it, or peak within the slack.
func (ix *machindex) qualifies(n int, w interval.Interval, slack int32) bool {
	return ix.minEnd[n] < w.Start || ix.maxStart[n] > w.End || ix.minPeak[n] <= slack
}

// firstTrivial returns the lowest-indexed machine guaranteed to accept a job
// with window w and demand g−slack, or −1 when no machine trivially fits.
// All three leaf conditions imply acceptance: a disjoint hull admits any job
// with demand ≤ g (an empty machine reports peak 0 and is covered by the
// slack condition), and peak ≤ g−d bounds the load anywhere inside w.
func (ix *machindex) firstTrivial(w interval.Interval, slack int32) int {
	if ix.nm == 0 || !ix.qualifies(1, w, slack) {
		return -1
	}
	n := 1
	for n < ix.size {
		if ix.qualifies(2*n, w, slack) {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	m := n - ix.size
	if m >= ix.nm {
		return -1
	}
	return m
}

// growWords widens the bitmap rows by one word, preserving existing bits. It
// widens in place when the retained capacity suffices: rows are moved back
// to front, so a destination row only ever overlaps source rows that have
// already been moved.
func (ix *machindex) growWords() {
	old := ix.words
	ix.words = old + 1
	need := ix.nb * ix.words
	if cap(ix.mask) < need {
		ix.allocs++
		mask := make([]uint64, need)
		for b := 0; b < ix.nb; b++ {
			copy(mask[b*ix.words:b*ix.words+old], ix.mask[b*old:(b+1)*old])
		}
		ix.mask = mask
	} else {
		ix.mask = ix.mask[:need]
		for b := ix.nb - 1; b >= 0; b-- {
			ix.mask[b*ix.words+old] = 0
			for w := old - 1; w >= 0; w-- {
				ix.mask[b*ix.words+w] = ix.mask[b*old+w]
			}
		}
	}
	if cap(ix.blocked) < ix.words {
		ix.allocs++
		ix.blocked = make([]uint64, ix.words)
	} else {
		ix.blocked = ix.blocked[:ix.words]
	}
}

// profileBuckets returns the bucketed-profile size for machine m: the full
// axis grid inside the profile prefix, zero (no profile) beyond it.
func (ix *machindex) profileBuckets(m int) int {
	if m >= maxProfileMachines {
		return 0
	}
	return ix.nb
}

// markBucket records that machine m is loaded to ≥ g at every point of
// bucket b; machines beyond the bitmap prefix are not tracked.
func (ix *machindex) markBucket(m, b int) {
	if m >= 64*ix.words {
		return
	}
	ix.mask[b*ix.words+m/64] |= 1 << (m % 64)
}

// blockedMask ORs the saturation rows of the buckets [lo, hi] (a window's
// axis overlap range) into the scratch mask and returns it: a set bit means
// the machine has a fully saturated bucket intersecting the window and
// therefore provably rejects any job on it. The mask is valid until the next
// call.
func (ix *machindex) blockedMask(lo, hi int) []uint64 {
	bl := ix.blocked[:ix.words]
	for i := range bl {
		bl[i] = 0
	}
	if lo > hi {
		return bl
	}
	step := 1
	if n := hi - lo + 1; n > maxQueryBuckets {
		step = n/maxQueryBuckets + 1
	}
	for b := lo; b <= hi; b += step {
		row := ix.mask[b*ix.words : b*ix.words+ix.words]
		for i := range bl {
			bl[i] |= row[i]
		}
	}
	return bl
}
