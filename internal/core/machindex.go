package core

import (
	"math"

	"busytime/internal/interval"
)

// machindex is the machine-selection index behind Schedule.FirstFitAssign:
// it makes the greedy "lowest-indexed machine that fits" scan sublinear by
// combining two structures, both maintained incrementally by Schedule.insert
// and by rejected capacity probes.
//
//  1. A segment tree over machine slots keyed by each machine's busy hull
//     [min,max] and peak load. It answers "lowest-indexed machine whose hull
//     is disjoint from window W or whose peak ≤ g − d" in O(log M). Such a
//     machine is guaranteed to accept the job, so the scan never has to look
//     past it; the answer is exactly where the paper's FirstFit would stop
//     if every earlier machine rejects.
//
//  2. A per-time-bucket saturation bitmap. Time is split into nb equal
//     buckets over the instance hull; bit m of bucket b means "machine m is
//     loaded to ≥ g at every point of bucket b". Bits are derived from
//     saturated runs extracted by rejected tree probes
//     (itree.MaxDepthRunWithinAt), which are durable because machines only
//     gain jobs. A probe window overlapping a set bucket therefore contains
//     a saturated point, so the machine provably rejects and whole runs of
//     saturated machines are skipped with word-wide bit operations.
//
// Soundness is one-directional by construction: the bitmap may only skip
// machines that would certainly reject, and the segment tree may only stop
// the scan at a machine that certainly accepts, so the indexed scan produces
// byte-identical schedules to the linear probe loop.
type machindex struct {
	// Saturation bitmap. Bucket k covers [t0+k·bw, t0+(k+1)·bw]; nb == 0
	// disables the bitmap (degenerate instance hull). hullLen is retained
	// for configuring per-machine load shards.
	t0, bw  float64
	hullLen float64
	nb      int
	words   int      // uint64 words per bucket (machines / 64, rounded up)
	mask    []uint64 // nb × words, bucket-major
	blocked []uint64 // scratch for the per-probe blocked-machine mask

	// Segment tree over machine slots; standard 1-based array layout with
	// leaves at [size, 2·size). Unopened slots never qualify.
	size     int
	nm       int
	minEnd   []float64 // min busy-hull end per subtree (+inf when empty)
	maxStart []float64 // max busy-hull start per subtree (−inf when empty)
	minPeak  []int32   // min peak load per subtree
}

// maxQueryBuckets caps the per-probe bitmap scan; longer windows are sampled
// with a stride, which only under-reports blocked machines and is therefore
// always sound.
const maxQueryBuckets = 1024

// Bitmap and profile memory is O(buckets × machines), so both structures
// cover only a prefix of the machine range: machines beyond the caps are
// still indexed by the segment tree (O(1) per machine) and probed through
// hints and shards — they just can't be skipped by the bitmap or settled by
// a profile, which only costs time, never correctness. FirstFit concentrates
// its probes on low machine indices, so the prefix is where the structures
// pay off. With the maximum 2¹⁶ buckets this bounds the bitmap at 4 MiB and
// the profiles at 16 MiB per schedule.
const (
	maxBitmapMachines  = 512
	maxProfileMachines = 128
)

const unopenedPeak = math.MaxInt32

// newMachindex returns an index configured for inst with no machines.
func newMachindex(inst *Instance) *machindex {
	ix := &machindex{}
	ix.reset(inst)
	return ix
}

// reset reconfigures the index for inst, retaining allocations where shapes
// allow, and drops all machines.
func (ix *machindex) reset(inst *Instance) {
	ix.nm = 0
	ix.words = 1
	ix.nb = 0
	ix.t0, ix.hullLen = 0, 0
	if hull, err := inst.Hull(); err == nil && hull.Len() > 0 {
		ix.nb = bucketCount(inst.N())
		ix.t0 = hull.Start
		ix.hullLen = hull.Len()
		ix.bw = hull.Len() / float64(ix.nb)
	}
	if need := ix.nb * ix.words; cap(ix.mask) < need {
		ix.mask = make([]uint64, need)
	} else {
		ix.mask = ix.mask[:need]
		clear(ix.mask)
	}
	if cap(ix.blocked) < ix.words {
		ix.blocked = make([]uint64, ix.words)
	} else {
		ix.blocked = ix.blocked[:ix.words]
	}
	ix.size = 0
	ix.growTree(1)
}

// bucketCount picks the bitmap resolution: enough buckets that typical jobs
// span several (so saturated runs mark whole buckets), capped to keep the
// mask and its reset cheap.
func bucketCount(n int) int {
	nb := 64
	for nb < 4*n && nb < 1<<16 {
		nb <<= 1
	}
	return nb
}

// growTree (re)allocates the segment tree for at least want leaves and
// rebuilds it from scratch as all-unopened; callers re-add machines.
func (ix *machindex) growTree(want int) {
	size := 1
	for size < want {
		size <<= 1
	}
	if size <= ix.size {
		// Same arrays, just clear to the unopened state.
		size = ix.size
	}
	if 2*size > cap(ix.minEnd) {
		ix.minEnd = make([]float64, 2*size)
		ix.maxStart = make([]float64, 2*size)
		ix.minPeak = make([]int32, 2*size)
	} else {
		ix.minEnd = ix.minEnd[:2*size]
		ix.maxStart = ix.maxStart[:2*size]
		ix.minPeak = ix.minPeak[:2*size]
	}
	for i := range ix.minEnd {
		ix.minEnd[i] = math.Inf(1)
		ix.maxStart[i] = math.Inf(-1)
		ix.minPeak[i] = unopenedPeak
	}
	ix.size = size
}

// addMachine registers the next machine slot (empty: no hull, peak 0).
func (ix *machindex) addMachine() {
	m := ix.nm
	if m >= ix.size {
		// Double the tree and replay the existing leaves.
		oldEnd := append([]float64(nil), ix.minEnd[ix.size:ix.size+m]...)
		oldStart := append([]float64(nil), ix.maxStart[ix.size:ix.size+m]...)
		oldPeak := append([]int32(nil), ix.minPeak[ix.size:ix.size+m]...)
		ix.size = 0
		ix.growTree(2 * (m + 1))
		for i := 0; i < m; i++ {
			ix.setLeaf(i, oldStart[i], oldEnd[i], oldPeak[i])
		}
	}
	ix.nm++
	ix.setLeaf(m, math.Inf(-1), math.Inf(1), 0)
	if ix.nm > 64*ix.words && ix.nm <= maxBitmapMachines {
		ix.growWords()
	}
}

// setLeaf writes a leaf and re-aggregates its ancestors.
func (ix *machindex) setLeaf(m int, hullStart, hullEnd float64, peak int32) {
	n := ix.size + m
	ix.minEnd[n], ix.maxStart[n], ix.minPeak[n] = hullEnd, hullStart, peak
	for n >>= 1; n >= 1; n >>= 1 {
		l, r := 2*n, 2*n+1
		ix.minEnd[n] = math.Min(ix.minEnd[l], ix.minEnd[r])
		ix.maxStart[n] = math.Max(ix.maxStart[l], ix.maxStart[r])
		if ix.minPeak[l] < ix.minPeak[r] {
			ix.minPeak[n] = ix.minPeak[l]
		} else {
			ix.minPeak[n] = ix.minPeak[r]
		}
	}
}

// update refreshes machine m's hull and peak after an insertion.
func (ix *machindex) update(m int, hull interval.Interval, peak int) {
	p := int32(unopenedPeak - 1)
	if peak < int(p) {
		p = int32(peak)
	}
	ix.setLeaf(m, hull.Start, hull.End, p)
}

// qualifies reports whether subtree n can contain a machine that trivially
// accepts a job with window w and slack g−d: hull entirely before the
// window, hull entirely after it, or peak within the slack.
func (ix *machindex) qualifies(n int, w interval.Interval, slack int32) bool {
	return ix.minEnd[n] < w.Start || ix.maxStart[n] > w.End || ix.minPeak[n] <= slack
}

// firstTrivial returns the lowest-indexed machine guaranteed to accept a job
// with window w and demand g−slack, or −1 when no machine trivially fits.
// All three leaf conditions imply acceptance: a disjoint hull admits any job
// with demand ≤ g (an empty machine reports peak 0 and is covered by the
// slack condition), and peak ≤ g−d bounds the load anywhere inside w.
func (ix *machindex) firstTrivial(w interval.Interval, slack int32) int {
	if ix.nm == 0 || !ix.qualifies(1, w, slack) {
		return -1
	}
	n := 1
	for n < ix.size {
		if ix.qualifies(2*n, w, slack) {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	m := n - ix.size
	if m >= ix.nm {
		return -1
	}
	return m
}

// growWords widens the bitmap rows by one word, preserving existing bits.
func (ix *machindex) growWords() {
	old := ix.words
	ix.words = old + 1
	mask := make([]uint64, ix.nb*ix.words)
	for b := 0; b < ix.nb; b++ {
		copy(mask[b*ix.words:], ix.mask[b*old:(b+1)*old])
	}
	ix.mask = mask
	ix.blocked = make([]uint64, ix.words)
}

// bucketsOverlapping returns the inclusive bucket range intersecting w
// (closed semantics); lo > hi means none. Every returned bucket is verified
// to truly overlap w, so blocked-mask queries never over-report.
func (ix *machindex) bucketsOverlapping(w interval.Interval) (lo, hi int) {
	if ix.nb == 0 {
		return 1, 0
	}
	lo = int((w.Start-ix.t0)/ix.bw) - 1
	hi = int((w.End-ix.t0)/ix.bw) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > ix.nb-1 {
		hi = ix.nb - 1
	}
	for lo <= hi && ix.t0+float64(lo+1)*ix.bw < w.Start {
		lo++
	}
	for hi >= lo && ix.t0+float64(hi)*ix.bw > w.End {
		hi--
	}
	return lo, hi
}

// bucketsWithin returns the inclusive range of buckets entirely contained in
// iv; lo > hi means none. Every returned bucket is verified to lie inside
// iv, so saturation marking never over-claims.
func (ix *machindex) bucketsWithin(iv interval.Interval) (lo, hi int) {
	if ix.nb == 0 {
		return 1, 0
	}
	lo = int((iv.Start - ix.t0) / ix.bw)
	hi = int((iv.End-ix.t0)/ix.bw) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > ix.nb-1 {
		hi = ix.nb - 1
	}
	for lo <= hi && ix.t0+float64(lo)*ix.bw < iv.Start {
		lo++
	}
	for hi >= lo && ix.t0+float64(hi+1)*ix.bw > iv.End {
		hi--
	}
	return lo, hi
}

// profileBuckets returns the bucketed-profile size for machine m: the full
// bucket grid inside the profile prefix, zero (no profile) beyond it.
func (ix *machindex) profileBuckets(m int) int {
	if m >= maxProfileMachines {
		return 0
	}
	return ix.nb
}

// markBucket records that machine m is loaded to ≥ g at every point of
// bucket b; machines beyond the bitmap prefix are not tracked.
func (ix *machindex) markBucket(m, b int) {
	if m >= 64*ix.words {
		return
	}
	ix.mask[b*ix.words+m/64] |= 1 << (m % 64)
}

// blockedMask ORs the saturation rows of every bucket overlapping w into the
// scratch mask and returns it: a set bit means the machine has a fully
// saturated bucket intersecting w and therefore provably rejects any job on
// that window. The mask is valid until the next call.
func (ix *machindex) blockedMask(w interval.Interval) []uint64 {
	bl := ix.blocked[:ix.words]
	for i := range bl {
		bl[i] = 0
	}
	lo, hi := ix.bucketsOverlapping(w)
	if lo > hi {
		return bl
	}
	step := 1
	if n := hi - lo + 1; n > maxQueryBuckets {
		step = n/maxQueryBuckets + 1
	}
	for b := lo; b <= hi; b += step {
		row := ix.mask[b*ix.words : b*ix.words+ix.words]
		for i := range bl {
			bl[i] |= row[i]
		}
	}
	return bl
}
