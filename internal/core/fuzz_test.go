package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance checks the JSON decoder never panics and that accepted
// instances are valid and round-trip losslessly.
func FuzzReadInstance(f *testing.F) {
	f.Add(`{"g":2,"jobs":[{"id":0,"start":0,"end":1}]}`)
	f.Add(`{"g":1,"jobs":[]}`)
	f.Add(`{"name":"x","g":3,"jobs":[{"id":5,"start":1.5,"end":2.25,"demand":2}]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"g":2,"jobs":[{"id":0,"start":9,"end":1}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadInstance(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("WriteInstance: %v", err)
		}
		rt, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.N() != in.N() || rt.G != in.G || rt.Name != in.Name {
			t.Fatal("round trip changed instance shape")
		}
		for i := range in.Jobs {
			if rt.Jobs[i] != in.Jobs[i] {
				t.Fatalf("job %d changed in round trip", i)
			}
		}
	})
}
