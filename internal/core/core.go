// Package core defines the busy-time scheduling problem of Flammini et al.:
// jobs are fixed closed intervals, a machine may process at most g jobs
// simultaneously, and the objective is to minimize the total busy time (the
// sum over machines of the measure of the time each machine has at least one
// active job).
//
// The package provides the instance and schedule models shared by every
// algorithm, schedule validation, cost accounting, the paper's lower bounds
// (Observation 1.1) plus the stronger fractional bound ∫⌈N_t/g⌉dt, JSON
// serialization, and decomposition into connected components.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"unsafe"

	"busytime/internal/interval"
)

// Job is a unit of work that must be processed during exactly its interval.
// Demand is the machine capacity the job consumes while active; the paper's
// base problem has Demand == 1, and the demand extension ([15]) allows
// 1 ≤ Demand ≤ g.
type Job struct {
	ID     int
	Iv     interval.Interval
	Demand int
}

// Len returns the job's processing length.
func (j Job) Len() float64 { return j.Iv.Len() }

func (j Job) String() string {
	if j.Demand > 1 {
		return fmt.Sprintf("J%d%v×%d", j.ID, j.Iv, j.Demand)
	}
	return fmt.Sprintf("J%d%v", j.ID, j.Iv)
}

// Instance is a busy-time scheduling instance: a job set and the parallelism
// parameter G (max simultaneous jobs per machine, demand-weighted).
type Instance struct {
	Name string
	G    int
	Jobs []Job

	// axis lazily caches the compressed time axis (*instanceAxis) shared by
	// every indexed schedule of this instance; accessed atomically via
	// timeAxis. lenOrder lazily caches LengthOrder, startOrder caches
	// StartOrder (both *[]int32), and bounds caches CachedBounds (*Bounds).
	// All are derived data: the job-reordering methods drop them, and
	// mutating jobs directly after scheduling has begun is not supported.
	axis       unsafe.Pointer
	lenOrder   unsafe.Pointer
	startOrder unsafe.Pointer
	bounds     unsafe.Pointer
	valid      unsafe.Pointer
}

// NewInstance builds an instance with parallelism g from raw intervals,
// assigning sequential IDs starting at 0 and unit demands.
func NewInstance(g int, ivs ...interval.Interval) *Instance {
	jobs := make([]Job, len(ivs))
	for i, iv := range ivs {
		jobs[i] = Job{ID: i, Iv: iv, Demand: 1}
	}
	return &Instance{G: g, Jobs: jobs}
}

// Validate checks structural well-formedness: g ≥ 1, unique job IDs, and
// demands in [1, g].
func (in *Instance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("core: parallelism g = %d, want ≥ 1", in.G)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		if seen[j.ID] {
			return fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Demand < 1 || j.Demand > in.G {
			return fmt.Errorf("core: job %d demand %d outside [1, %d]", j.ID, j.Demand, in.G)
		}
		if math.IsNaN(j.Iv.Start) || math.IsNaN(j.Iv.End) {
			return fmt.Errorf("core: job %d has NaN endpoint in %v", j.ID, j.Iv)
		}
		if j.Iv.End < j.Iv.Start {
			return fmt.Errorf("core: job %d has reversed interval %v", j.ID, j.Iv)
		}
	}
	return nil
}

// CachedValidate returns Validate, caching only a success verdict like the
// time axis (Validate's duplicate-ID check allocates, which would put a map
// allocation on every warm Solve). Failures are re-validated every call, so
// a caller that fixes a rejected instance (sets G, repairs a job) and
// retries is not served a stale error. The job-reordering methods drop the
// cache; mutating jobs directly after scheduling has begun is not
// supported.
func (in *Instance) CachedValidate() error {
	if p := (*error)(atomic.LoadPointer(&in.valid)); p != nil {
		return *p
	}
	err := in.Validate()
	if err == nil {
		atomic.StorePointer(&in.valid, unsafe.Pointer(&err))
	}
	return err
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// Set returns the jobs' intervals as an interval.Set in job order.
func (in *Instance) Set() interval.Set {
	s := make(interval.Set, len(in.Jobs))
	for i, j := range in.Jobs {
		s[i] = j.Iv
	}
	return s
}

// TotalLen returns len(J) = Σ len(J_j), unweighted by demand.
func (in *Instance) TotalLen() float64 { return in.Set().TotalLen() }

// WeightedLen returns Σ Demand_j · len(J_j), the demand-weighted total work.
func (in *Instance) WeightedLen() float64 {
	var sum float64
	for _, j := range in.Jobs {
		sum += float64(j.Demand) * j.Len()
	}
	return sum
}

// Span returns span(J), the measure of the union of all job intervals.
func (in *Instance) Span() float64 { return in.Set().Span() }

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	jobs := make([]Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	return &Instance{Name: in.Name, G: in.G, Jobs: jobs}
}

// IsProper reports whether no job interval properly contains another.
func (in *Instance) IsProper() bool { return in.Set().IsProper() }

// IsClique reports whether all job intervals pairwise intersect.
func (in *Instance) IsClique() bool { return in.Set().IsClique() }

// SortJobsByLenDesc sorts jobs in place by non-increasing length, breaking
// ties by (start, end, ID) for determinism. This is FirstFit's order.
// Reordering invalidates the cached per-job axis ranges, so the axis cache
// is dropped (its boundaries would survive, but the job-position caches
// would not).
func (in *Instance) SortJobsByLenDesc() {
	slices.SortFunc(in.Jobs, func(ja, jb Job) int {
		if la, lb := ja.Len(), jb.Len(); la != lb {
			if la > lb {
				return -1
			}
			return 1
		}
		return compareJobPosition(ja, jb)
	})
	in.dropDerived()
}

// SortJobsByStart sorts jobs in place by (start, end, ID). This is the
// proper-instance greedy order. Like SortJobsByLenDesc it drops the cached
// time axis.
func (in *Instance) SortJobsByStart() {
	slices.SortFunc(in.Jobs, compareJobPosition)
	in.dropDerived()
}

// dropDerived invalidates the cached per-job-position derivations (time
// axis, length order, start order, bounds) after a reordering.
func (in *Instance) dropDerived() {
	atomic.StorePointer(&in.axis, nil)
	atomic.StorePointer(&in.lenOrder, nil)
	atomic.StorePointer(&in.startOrder, nil)
	atomic.StorePointer(&in.bounds, nil)
	atomic.StorePointer(&in.valid, nil)
}

// LengthOrder returns the job indices in the paper's FirstFit order — by
// non-increasing length, ties broken by (start, end, ID) for determinism —
// computed once per instance and cached like the time axis. The returned
// slice is shared: callers must not modify it.
func (in *Instance) LengthOrder() []int32 {
	if p := (*[]int32)(atomic.LoadPointer(&in.lenOrder)); p != nil {
		return *p
	}
	type key struct {
		len, start float64
		id         int
		idx        int32
	}
	// Sorting runs over a contiguous key slice so the comparator never
	// chases the jobs slice — on 100k-job instances the sort prefix is
	// measurable. Equal length and start imply equal end, so (len, start,
	// ID) is the full (len, start, end, ID) order of the paper's step 1.
	keys := make([]key, in.N())
	for i, j := range in.Jobs {
		keys[i] = key{len: j.Len(), start: j.Iv.Start, id: j.ID, idx: int32(i)}
	}
	slices.SortFunc(keys, func(a, b key) int {
		if a.len != b.len {
			if a.len > b.len {
				return -1
			}
			return 1
		}
		if a.start != b.start {
			if a.start < b.start {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.id, b.id)
	})
	order := make([]int32, len(keys))
	for i, k := range keys {
		order[i] = k.idx
	}
	atomic.StorePointer(&in.lenOrder, unsafe.Pointer(&order))
	return order
}

// StartOrder returns the job indices in arrival order — by (start, end, ID)
// — computed once per instance and cached like LengthOrder. This is the
// processing order of the online replays and the start-time baselines, so
// steady-state batch traffic neither sorts nor allocates per run. The
// returned slice is shared: callers must not modify it.
func (in *Instance) StartOrder() []int32 {
	if p := (*[]int32)(atomic.LoadPointer(&in.startOrder)); p != nil {
		return *p
	}
	order := make([]int32, in.N())
	for i := range order {
		order[i] = int32(i)
	}
	jobs := in.Jobs
	slices.SortFunc(order, func(a, b int32) int {
		return compareJobPosition(jobs[a], jobs[b])
	})
	atomic.StorePointer(&in.startOrder, unsafe.Pointer(&order))
	return order
}

// compareJobPosition orders jobs by (start, end, ID), a total order used as
// the deterministic tie-break of every job ordering.
func compareJobPosition(ja, jb Job) int {
	if ja.Iv.Start != jb.Iv.Start {
		if ja.Iv.Start < jb.Iv.Start {
			return -1
		}
		return 1
	}
	if ja.Iv.End != jb.Iv.End {
		if ja.Iv.End < jb.Iv.End {
			return -1
		}
		return 1
	}
	return cmp.Compare(ja.ID, jb.ID)
}

// Components splits the instance into one sub-instance per connected
// component of the interval graph, ordered by component start. Indices refer
// to jobs by their IDs, which are preserved. Solving each component
// separately and concatenating is lossless for total busy time.
func (in *Instance) Components() []*Instance {
	n := in.N()
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := in.Jobs[a].Iv, in.Jobs[b].Iv
		if ia.Start != ib.Start {
			return cmpCoord(ia.Start, ib.Start)
		}
		if ia.End != ib.End {
			return cmpCoord(ia.End, ib.End)
		}
		return a - b // index tiebreak: total order, deterministic components
	})
	var out []*Instance
	var cur []Job
	reach := in.Jobs[order[0]].Iv.End
	flush := func() {
		if len(cur) == 0 {
			return
		}
		jobs := make([]Job, len(cur))
		copy(jobs, cur)
		out = append(out, &Instance{
			Name: fmt.Sprintf("%s/comp%d", in.Name, len(out)),
			G:    in.G,
			Jobs: jobs,
		})
		cur = cur[:0]
	}
	for _, idx := range order {
		j := in.Jobs[idx]
		if len(cur) > 0 && j.Iv.Start > reach {
			flush()
			reach = j.Iv.End
		}
		cur = append(cur, j)
		if j.Iv.End > reach {
			reach = j.Iv.End
		}
	}
	flush()
	return out
}

var errNoJobs = errors.New("core: instance has no jobs")

// Hull returns the smallest interval containing all jobs.
func (in *Instance) Hull() (interval.Interval, error) {
	h, ok := in.Set().Hull()
	if !ok {
		return interval.Interval{}, errNoJobs
	}
	return h, nil
}
