// Package core defines the busy-time scheduling problem of Flammini et al.:
// jobs are fixed closed intervals, a machine may process at most g jobs
// simultaneously, and the objective is to minimize the total busy time (the
// sum over machines of the measure of the time each machine has at least one
// active job).
//
// The package provides the instance and schedule models shared by every
// algorithm, schedule validation, cost accounting, the paper's lower bounds
// (Observation 1.1) plus the stronger fractional bound ∫⌈N_t/g⌉dt, JSON
// serialization, and decomposition into connected components.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"

	"busytime/internal/interval"
)

// Job is a unit of work that must be processed during exactly its interval.
// Demand is the machine capacity the job consumes while active; the paper's
// base problem has Demand == 1, and the demand extension ([15]) allows
// 1 ≤ Demand ≤ g.
type Job struct {
	ID     int
	Iv     interval.Interval
	Demand int
}

// Len returns the job's processing length.
func (j Job) Len() float64 { return j.Iv.Len() }

func (j Job) String() string {
	if j.Demand > 1 {
		return fmt.Sprintf("J%d%v×%d", j.ID, j.Iv, j.Demand)
	}
	return fmt.Sprintf("J%d%v", j.ID, j.Iv)
}

// Instance is a busy-time scheduling instance: a job set and the parallelism
// parameter G (max simultaneous jobs per machine, demand-weighted).
type Instance struct {
	Name string
	G    int
	Jobs []Job
}

// NewInstance builds an instance with parallelism g from raw intervals,
// assigning sequential IDs starting at 0 and unit demands.
func NewInstance(g int, ivs ...interval.Interval) *Instance {
	jobs := make([]Job, len(ivs))
	for i, iv := range ivs {
		jobs[i] = Job{ID: i, Iv: iv, Demand: 1}
	}
	return &Instance{G: g, Jobs: jobs}
}

// Validate checks structural well-formedness: g ≥ 1, unique job IDs, and
// demands in [1, g].
func (in *Instance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("core: parallelism g = %d, want ≥ 1", in.G)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		if seen[j.ID] {
			return fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Demand < 1 || j.Demand > in.G {
			return fmt.Errorf("core: job %d demand %d outside [1, %d]", j.ID, j.Demand, in.G)
		}
		if j.Iv.End < j.Iv.Start {
			return fmt.Errorf("core: job %d has reversed interval %v", j.ID, j.Iv)
		}
	}
	return nil
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// Set returns the jobs' intervals as an interval.Set in job order.
func (in *Instance) Set() interval.Set {
	s := make(interval.Set, len(in.Jobs))
	for i, j := range in.Jobs {
		s[i] = j.Iv
	}
	return s
}

// TotalLen returns len(J) = Σ len(J_j), unweighted by demand.
func (in *Instance) TotalLen() float64 { return in.Set().TotalLen() }

// WeightedLen returns Σ Demand_j · len(J_j), the demand-weighted total work.
func (in *Instance) WeightedLen() float64 {
	var sum float64
	for _, j := range in.Jobs {
		sum += float64(j.Demand) * j.Len()
	}
	return sum
}

// Span returns span(J), the measure of the union of all job intervals.
func (in *Instance) Span() float64 { return in.Set().Span() }

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	jobs := make([]Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	return &Instance{Name: in.Name, G: in.G, Jobs: jobs}
}

// IsProper reports whether no job interval properly contains another.
func (in *Instance) IsProper() bool { return in.Set().IsProper() }

// IsClique reports whether all job intervals pairwise intersect.
func (in *Instance) IsClique() bool { return in.Set().IsClique() }

// SortJobsByLenDesc sorts jobs in place by non-increasing length, breaking
// ties by (start, end, ID) for determinism. This is FirstFit's order.
func (in *Instance) SortJobsByLenDesc() {
	slices.SortFunc(in.Jobs, func(ja, jb Job) int {
		if la, lb := ja.Len(), jb.Len(); la != lb {
			if la > lb {
				return -1
			}
			return 1
		}
		return compareJobPosition(ja, jb)
	})
}

// SortJobsByStart sorts jobs in place by (start, end, ID). This is the
// proper-instance greedy order.
func (in *Instance) SortJobsByStart() {
	slices.SortFunc(in.Jobs, compareJobPosition)
}

// compareJobPosition orders jobs by (start, end, ID), a total order used as
// the deterministic tie-break of every job ordering.
func compareJobPosition(ja, jb Job) int {
	if ja.Iv.Start != jb.Iv.Start {
		if ja.Iv.Start < jb.Iv.Start {
			return -1
		}
		return 1
	}
	if ja.Iv.End != jb.Iv.End {
		if ja.Iv.End < jb.Iv.End {
			return -1
		}
		return 1
	}
	return cmp.Compare(ja.ID, jb.ID)
}

// Components splits the instance into one sub-instance per connected
// component of the interval graph, ordered by component start. Indices refer
// to jobs by their IDs, which are preserved. Solving each component
// separately and concatenating is lossless for total busy time.
func (in *Instance) Components() []*Instance {
	n := in.N()
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := in.Jobs[order[a]].Iv, in.Jobs[order[b]].Iv
		if ia.Start != ib.Start {
			return ia.Start < ib.Start
		}
		return ia.End < ib.End
	})
	var out []*Instance
	var cur []Job
	reach := in.Jobs[order[0]].Iv.End
	flush := func() {
		if len(cur) == 0 {
			return
		}
		jobs := make([]Job, len(cur))
		copy(jobs, cur)
		out = append(out, &Instance{
			Name: fmt.Sprintf("%s/comp%d", in.Name, len(out)),
			G:    in.G,
			Jobs: jobs,
		})
		cur = cur[:0]
	}
	for _, idx := range order {
		j := in.Jobs[idx]
		if len(cur) > 0 && j.Iv.Start > reach {
			flush()
			reach = j.Iv.End
		}
		cur = append(cur, j)
		if j.Iv.End > reach {
			reach = j.Iv.End
		}
	}
	flush()
	return out
}

var errNoJobs = errors.New("core: instance has no jobs")

// Hull returns the smallest interval containing all jobs.
func (in *Instance) Hull() (interval.Interval, error) {
	h, ok := in.Set().Hull()
	if !ok {
		return interval.Interval{}, errNoJobs
	}
	return h, nil
}
