package core

import (
	"math/rand"
	"testing"

	"busytime/internal/interval"
)

// randInstance builds a random demand-weighted instance for hint testing.
func randInstance(r *rand.Rand, n, g int) *Instance {
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := r.Float64() * 50
		ivs[i] = interval.New(s, s+r.Float64()*15)
	}
	in := NewInstance(g, ivs...)
	for i := range in.Jobs {
		in.Jobs[i].Demand = 1 + r.Intn(g)
	}
	return in
}

// naiveCanAssign recomputes the capacity check from scratch, ignoring every
// hint: the demand-weighted closed max depth of the machine's jobs within
// the candidate's window.
func naiveCanAssign(s *Schedule, j, m int) bool {
	job := s.inst.Jobs[j]
	set := make(interval.Set, 0, 8)
	for _, jj := range s.machines[m].jobs {
		other := s.inst.Jobs[jj]
		if x, ok := other.Iv.Intersect(job.Iv); ok {
			for d := 0; d < other.Demand; d++ {
				set = append(set, x)
			}
		}
	}
	return set.MaxDepth()+job.Demand <= s.inst.G
}

// TestCanAssignHintsMatchNaive drives first-fit placement on random
// instances and checks every probe — hint-resolved or tree-resolved —
// against the naive recomputation.
func TestCanAssignHintsMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, 120, 1+r.Intn(5))
		s := NewSchedule(in)
		for j := range in.Jobs {
			placed := false
			for m := 0; m < s.NumMachines(); m++ {
				got := s.CanAssign(j, m)
				if want := naiveCanAssign(s, j, m); got != want {
					t.Fatalf("seed %d: CanAssign(%d, %d) = %v, naive says %v", seed, j, m, got, want)
				}
				if got && !placed {
					s.Assign(j, m)
					placed = true
				}
			}
			if !placed {
				s.AssignNew(j)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTryAssignMatchesCanAssignPlusAssign runs the same first-fit placement
// through TryAssign and through CanAssign+Assign and requires identical
// machine assignments and costs.
func TestTryAssignMatchesCanAssignPlusAssign(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, 150, 1+r.Intn(5))

		a := NewSchedule(in)
		for j := range in.Jobs {
			placed := false
			for m := 0; m < a.NumMachines() && !placed; m++ {
				placed = a.TryAssign(j, m)
			}
			if !placed {
				a.AssignNew(j)
			}
		}

		b := NewSchedule(in)
		for j := range in.Jobs {
			placed := false
			for m := 0; m < b.NumMachines() && !placed; m++ {
				if b.CanAssign(j, m) {
					b.Assign(j, m)
					placed = true
				}
			}
			if !placed {
				b.AssignNew(j)
			}
		}

		for j := range in.Jobs {
			if a.MachineOf(j) != b.MachineOf(j) {
				t.Fatalf("seed %d: job %d on machine %d via TryAssign, %d via CanAssign+Assign",
					seed, j, a.MachineOf(j), b.MachineOf(j))
			}
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Cost() != b.Cost() {
			t.Fatalf("seed %d: costs differ: %v vs %v", seed, a.Cost(), b.Cost())
		}
	}
}

// TestScratchReuse runs a sequence of instances through one Scratch and
// checks each schedule agrees with a fresh one; it also checks the previous
// schedule is reclaimed rather than leaked.
func TestScratchReuse(t *testing.T) {
	sc := new(Scratch)
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 12; round++ {
		in := randInstance(r, 40+r.Intn(120), 1+r.Intn(4))
		s := sc.NewSchedule(in)
		fresh := NewSchedule(in)
		for j := range in.Jobs {
			placed := false
			for m := 0; m < s.NumMachines() && !placed; m++ {
				placed = s.TryAssign(j, m)
			}
			if !placed {
				s.AssignNew(j)
			}
			placedF := false
			for m := 0; m < fresh.NumMachines() && !placedF; m++ {
				placedF = fresh.TryAssign(j, m)
			}
			if !placedF {
				fresh.AssignNew(j)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("round %d: scratch schedule infeasible: %v", round, err)
		}
		if s.NumMachines() != fresh.NumMachines() || s.Cost() != fresh.Cost() {
			t.Fatalf("round %d: scratch (%d machines, cost %v) != fresh (%d machines, cost %v)",
				round, s.NumMachines(), s.Cost(), fresh.NumMachines(), fresh.Cost())
		}
	}
}

// TestFirstFitAssignZeroAllocSteadyState is the arena acceptance gate: after
// one warm-up pass, re-scheduling an instance through a recycled Scratch —
// NewSchedule, EnableMachineIndex, and every FirstFitAssign — performs zero
// allocations. This covers the whole indexed pipeline: assignment slice,
// machine records, segment tree, saturation bitmap, load profiles, shard
// directories, shard-pool chunks, sweep scratch and span unions.
func TestFirstFitAssignZeroAllocSteadyState(t *testing.T) {
	in := denseTestInstance(3000, 4, 1500, 25)
	sc := new(Scratch)
	run := func() {
		s := sc.NewSchedule(in)
		s.EnableMachineIndex()
		for j := range in.Jobs {
			s.FirstFitAssign(j)
		}
	}
	run() // warm-up sizes the arena for the instance
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("warm indexed FirstFit allocated %v times per run; want 0", allocs)
	}
	stats := sc.Stats()
	before := stats.SetupAllocs
	run()
	if after := sc.Stats().SetupAllocs; after != before {
		t.Fatalf("warm run performed %d arena setup allocations; want 0", after-before)
	}
}

// TestScratchZeroAllocAcrossShrinkingInstances checks the arena's sizing
// discipline across instance changes: after warming on the largest instance
// of a set, scheduling any smaller instance allocates nothing (backing
// arrays only ever grow).
func TestScratchZeroAllocAcrossShrinkingInstances(t *testing.T) {
	big := denseTestInstance(4000, 3, 2000, 20)
	small := denseTestInstance(500, 5, 120, 8)
	tiny := denseTestInstance(40, 2, 30, 6)
	sc := new(Scratch)
	run := func(in *Instance) {
		s := sc.NewSchedule(in)
		s.EnableMachineIndex()
		for j := range in.Jobs {
			s.FirstFitAssign(j)
		}
	}
	for _, in := range []*Instance{big, small, tiny} {
		run(in) // warm-up (also builds each instance's cached axis)
	}
	run(big)
	for _, in := range []*Instance{small, tiny, big} {
		in := in
		if allocs := testing.AllocsPerRun(3, func() { run(in) }); allocs != 0 {
			t.Fatalf("n=%d after warm-up on larger instance: %v allocs per run; want 0", in.N(), allocs)
		}
	}
}

// TestScratchStatsCounts pins the telemetry the engine reports: a cold
// scratch performs setup allocations, an identical second run performs none.
func TestScratchStatsCounts(t *testing.T) {
	in := denseTestInstance(800, 4, 400, 15)
	sc := new(Scratch)
	if got := sc.Stats(); got.Schedules != 0 || got.SetupAllocs != 0 {
		t.Fatalf("fresh scratch reports %+v", got)
	}
	run := func() {
		s := sc.NewSchedule(in)
		s.EnableMachineIndex()
		for j := range in.Jobs {
			s.FirstFitAssign(j)
		}
	}
	run()
	first := sc.Stats()
	if first.Schedules != 1 || first.SetupAllocs == 0 {
		t.Fatalf("cold run reports %+v; want 1 schedule and nonzero setup allocs", first)
	}
	run()
	second := sc.Stats()
	if second.Schedules != 2 {
		t.Fatalf("Schedules = %d, want 2", second.Schedules)
	}
	if second.SetupAllocs != first.SetupAllocs {
		t.Fatalf("warm identical run performed %d setup allocs; want 0", second.SetupAllocs-first.SetupAllocs)
	}
}

// TestScratchInvalidatesPreviousSchedule documents the reuse contract: the
// schedule handed out before the latest NewSchedule call is dead.
func TestScratchInvalidatesPreviousSchedule(t *testing.T) {
	sc := new(Scratch)
	in := NewInstance(2, interval.New(0, 1))
	old := sc.NewSchedule(in)
	old.AssignNew(0)
	if got := old.NumMachines(); got != 1 {
		t.Fatalf("NumMachines = %d, want 1", got)
	}
	_ = sc.NewSchedule(in)
	if got := old.NumMachines(); got != 0 {
		t.Errorf("reclaimed schedule still reports %d machines; want 0 (state stripped)", got)
	}
}
