package core

import (
	"sync/atomic"
	"unsafe"

	"busytime/internal/interval"
)

// Geometry caps of the per-instance index structures. The bucket cap bounds
// bitmap and profile memory (see machindex); the shard caps bound the
// per-machine shard directories and the duplication of jobs across shards.
const (
	// maxTimeBuckets caps the compressed time axis; workloads with more
	// distinct endpoints are decimated with a uniform stride.
	maxTimeBuckets = 1 << 16
	// shardJobTarget is the desired average number of jobs per time shard,
	// steering the shard count derived from the instance size.
	shardJobTarget = 160
	maxShardsPower = 12 // <= 4096 shards per machine
)

// instanceAxis bundles the compressed time axis of an instance with the
// shard geometry every indexed schedule of the instance shares: the number
// of buckets, and how many consecutive buckets one time shard spans. It is
// computed once per instance (an O(n log n) endpoint sort) and cached, so
// schedules — fresh or recycled — configure their index structures without
// re-deriving the axis.
type instanceAxis struct {
	ax interval.Axis
	// nb caches ax.NB(); 0 means a degenerate axis (no or point-only hull):
	// bitmap and profiles are disabled and shards run in single-shard mode.
	nb int
	// shardShift maps bucket indices to shard indices (bucket >> shardShift),
	// chosen so that a job overlaps few shards (bounded duplication) while
	// shards stay short enough for cheap exact sweeps.
	shardShift uint
	// nshards is the per-machine shard directory size, >= 1.
	nshards int
	// jobLo/jobHi cache each job's bucket overlap range by job position, so
	// the per-job hot path reads two int32s instead of searching the axis.
	// Job reordering invalidates them; the sort methods drop the cache.
	jobLo, jobHi []int32
}

// shardRange maps a bucket overlap range to the shards it spans. The
// degenerate axis stores everything in the single shard 0.
func (ia *instanceAxis) shardRange(lo, hi int) (slo, shi int) {
	if ia.nb == 0 || lo > hi {
		return 0, 0
	}
	return lo >> ia.shardShift, hi >> ia.shardShift
}

// shardStart returns the left time boundary of shard k.
func (ia *instanceAxis) shardStart(k int) float64 {
	return ia.ax.Boundary(k << ia.shardShift)
}

// shardEnd returns the right time boundary of shard k.
func (ia *instanceAxis) shardEnd(k int) float64 {
	b := (k + 1) << ia.shardShift
	if b > ia.nb {
		b = ia.nb
	}
	return ia.ax.Boundary(b)
}

// TimeAxis returns the instance's cached compressed time axis (built on
// first use). The returned value shares its backing arrays with the cache
// and must be treated as read-only; a degenerate workload (no or point-only
// hull) yields an axis with NB() == 0. The time-sharding layer scans its
// boundaries to pick low-crossing cut points in O(n + buckets).
func (in *Instance) TimeAxis() interval.Axis { return in.timeAxis().ax }

// timeAxis returns the instance's cached axis, building it on first use.
// The boundaries depend only on the multiset of job endpoints, but the
// jobLo/jobHi caches are keyed by job position, so the reordering methods
// (SortJobsByLenDesc, SortJobsByStart) drop the cache for a rebuild;
// mutating job intervals after scheduling has begun is not supported.
// Concurrent first use is safe: racing builders compute identical axes and
// either may win.
func (in *Instance) timeAxis() *instanceAxis {
	if p := (*instanceAxis)(atomic.LoadPointer(&in.axis)); p != nil {
		return p
	}
	ia := buildInstanceAxis(in)
	atomic.StorePointer(&in.axis, unsafe.Pointer(ia))
	return ia
}

func buildInstanceAxis(in *Instance) *instanceAxis {
	events := make([]float64, 0, 2*len(in.Jobs))
	for _, j := range in.Jobs {
		events = append(events, j.Iv.Start, j.Iv.End)
	}
	ia := &instanceAxis{ax: interval.NewAxis(events, maxTimeBuckets), nshards: 1}
	ia.nb = ia.ax.NB()
	if ia.nb == 0 {
		return ia
	}
	// Aim for shardJobTarget jobs per shard if the instance spread evenly.
	target := 1
	for target < len(in.Jobs)/shardJobTarget && target < 1<<maxShardsPower {
		target <<= 1
	}
	shift := uint(0)
	for ia.nb>>shift > target {
		shift++
	}
	// Widen shards until jobs average at most two shard copies each, so the
	// static (no-doubling) shard directories stay within a constant factor
	// of the job count in memory.
	ia.jobLo = make([]int32, len(in.Jobs))
	ia.jobHi = make([]int32, len(in.Jobs))
	for i, j := range in.Jobs {
		lo, hi := ia.ax.OverlapRange(j.Iv)
		ia.jobLo[i], ia.jobHi[i] = int32(lo), int32(hi)
	}
	for (ia.nb-1)>>shift > 0 {
		extra := 0
		for i := range ia.jobLo {
			if ia.jobLo[i] <= ia.jobHi[i] {
				extra += int(ia.jobHi[i]>>shift) - int(ia.jobLo[i]>>shift)
			}
		}
		if extra <= len(in.Jobs) {
			break
		}
		shift++
	}
	ia.shardShift = shift
	ia.nshards = (ia.nb-1)>>shift + 1
	return ia
}
