package core

import (
	"math/rand"
	"testing"
)

// naiveBestFit replicates the un-pruned BestFit argmin on a parallel
// schedule: probe every machine in index order, rank feasible ones by span
// delta, ties to the lowest index.
func naiveBestFit(s *Schedule, j int) int {
	iv := s.inst.Jobs[j].Iv
	bestM, bestDelta := -1, 0.0
	for m := 0; m < s.NumMachines(); m++ {
		if !s.CanAssign(j, m) {
			continue
		}
		if delta := s.SpanDelta(m, iv); bestM < 0 || delta < bestDelta {
			bestM, bestDelta = m, delta
		}
	}
	if bestM < 0 {
		return s.AssignNew(j)
	}
	s.Assign(j, bestM)
	return bestM
}

// TestPlacerBestFitMatchesNaive drives the kernel BestFit (indexed and
// unindexed) against the naive scan on random demand-weighted instances and
// requires identical machine choices throughout.
func TestPlacerBestFitMatchesNaive(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		for seed := int64(0); seed < 25; seed++ {
			r := rand.New(rand.NewSource(seed))
			in := randInstance(r, 140, 1+r.Intn(5))
			a := NewSchedule(in)
			if indexed {
				a.EnableMachineIndex()
			}
			b := NewSchedule(in)
			k := a.Placer()
			for j := range in.Jobs {
				got := k.BestFit(j)
				want := naiveBestFit(b, j)
				if got != want {
					t.Fatalf("indexed=%v seed %d: job %d kernel chose machine %d, naive %d",
						indexed, seed, j, got, want)
				}
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("indexed=%v seed %d: %v", indexed, seed, err)
			}
			if a.Cost() != b.Cost() {
				t.Fatalf("indexed=%v seed %d: cost %v vs %v", indexed, seed, a.Cost(), b.Cost())
			}
		}
	}
}

// TestPlacerNextFitCursor pins the cursor semantics: fill the current
// machine, abandon it permanently on overflow, and reset with the schedule.
func TestPlacerNextFitCursor(t *testing.T) {
	in := NewInstance(1,
		iv(0, 4), // opens M0
		iv(1, 2), // conflicts -> M1
		iv(5, 6), // fits M1 (current), M0 never revisited
	)
	s := NewSchedule(in)
	k := s.Placer()
	if m := k.NextFit(0); m != 0 {
		t.Fatalf("first placement on machine %d, want 0", m)
	}
	if m := k.NextFit(1); m != 1 {
		t.Fatalf("overflow placement on machine %d, want 1", m)
	}
	if m := k.NextFit(2); m != 1 {
		t.Fatalf("cursor placement on machine %d, want 1 (no revisiting)", m)
	}

	// A recycled schedule must reset the cursor.
	sc := new(Scratch)
	s2 := sc.NewSchedule(in)
	_ = s2.Placer().NextFit(0)
	s3 := sc.NewSchedule(in)
	if m := s3.Placer().NextFit(0); m != 0 {
		t.Fatalf("recycled schedule's cursor placed on machine %d, want fresh machine 0", m)
	}
}

// TestPlacerBestFitProbeDoesNotPlace checks the probe variant leaves the
// assignment untouched and agrees with the placing variant.
func TestPlacerBestFitProbeDoesNotPlace(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in := randInstance(r, 60, 3)
	s := NewSchedule(in)
	s.EnableMachineIndex()
	k := s.Placer()
	for j := range in.Jobs {
		probe := k.BestFitProbe(j)
		if s.MachineOf(j) != Unassigned {
			t.Fatalf("probe assigned job %d", j)
		}
		got := k.BestFit(j)
		if probe == Unassigned {
			if got != s.NumMachines()-1 {
				t.Fatalf("job %d: probe said no machine but BestFit chose existing %d", j, got)
			}
			continue
		}
		if got != probe {
			t.Fatalf("job %d: probe chose %d, BestFit placed on %d", j, probe, got)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
