package core

import (
	"math"
	"slices"
	"sync/atomic"
	"unsafe"
)

// cmpCoord is the three-way comparator of finite time coordinates used by
// the slices.SortFunc orders in this package; NaN endpoints are rejected at
// instance validation, so the IEEE comparison is a total order.
func cmpCoord(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SpanBound returns the span lower bound of Observation 1.1:
// OPT ≥ span(J), since at any covered instant at least one machine is busy.
func SpanBound(in *Instance) float64 { return in.Span() }

// ParallelismBound returns the parallelism lower bound of Observation 1.1,
// demand-weighted: OPT ≥ Σ Demand_j·len(J_j) / g, since g is the maximum
// capacity any machine delivers per unit of busy time.
func ParallelismBound(in *Instance) float64 {
	return in.WeightedLen() / float64(in.G)
}

// FractionalBound returns ∫ ⌈D_t/g⌉ dt, where D_t is the demand-weighted
// number of jobs active at time t (open-interior depth; isolated touching
// points have measure zero). At any instant every feasible solution runs at
// least ⌈D_t/g⌉ busy machines, so this dominates both Observation 1.1
// bounds: ⌈D_t/g⌉ ≥ 1 wherever D_t ≥ 1 (span) and ⌈D_t/g⌉ ≥ D_t/g
// (parallelism).
func FractionalBound(in *Instance) float64 {
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(in.Jobs))
	for _, j := range in.Jobs {
		if j.Iv.IsPoint() {
			continue
		}
		evs = append(evs, ev{j.Iv.Start, j.Demand}, ev{j.Iv.End, -j.Demand})
	}
	if len(evs) == 0 {
		return 0
	}
	slices.SortFunc(evs, func(a, b ev) int {
		if a.t != b.t {
			return cmpCoord(a.t, b.t)
		}
		return a.delta - b.delta // ends before starts: open-interior depth
	})
	g := float64(in.G)
	var total float64
	depth := 0
	prev := evs[0].t
	for _, e := range evs {
		if e.t > prev && depth > 0 {
			total += math.Ceil(float64(depth)/g) * (e.t - prev)
		}
		if e.t > prev {
			prev = e.t
		}
		depth += e.delta
	}
	return total
}

// BestBound returns the strongest known lower bound for the instance, which
// is the fractional bound (it dominates span and parallelism). Kept as a
// named entry point so harness code reads as "cost / BestBound".
func BestBound(in *Instance) float64 { return FractionalBound(in) }

// Bounds bundles all lower bounds for reporting.
type Bounds struct {
	Span        float64
	Parallelism float64
	Fractional  float64
}

// AllBounds computes every lower bound of the instance.
func AllBounds(in *Instance) Bounds {
	return Bounds{
		Span:        SpanBound(in),
		Parallelism: ParallelismBound(in),
		Fractional:  FractionalBound(in),
	}
}

// CachedBounds returns AllBounds computed once per instance and cached like
// the time axis and the job orders, so steady-state drivers (the engine's
// per-run lower bound, a warm Solver's repeat solves of one instance) read
// the bounds without re-running the sweep or allocating. Reordering methods
// drop the cache.
func (in *Instance) CachedBounds() Bounds {
	if p := (*Bounds)(atomic.LoadPointer(&in.bounds)); p != nil {
		return *p
	}
	b := AllBounds(in)
	atomic.StorePointer(&in.bounds, unsafe.Pointer(&b))
	return b
}
