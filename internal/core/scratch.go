package core

// Scratch is the schedule-state arena: it owns and recycles everything a
// schedule allocates — the schedule record itself, the assignment slice, the
// flat machine-state array (with each machine's interval tree, span union,
// load profile and shard directory), the machine-selection index (segment
// tree and saturation bitmap), and the chunked shard pool every machine's
// time-sharded job lists draw from. A worker that schedules a stream of
// instances through one Scratch stops allocating once warm: every reset is a
// truncation or a clear of retained backing arrays, sized on first use from
// the instance's compressed time axis.
//
// Contract: NewSchedule reclaims everything handed out by the previous
// NewSchedule call on the same Scratch, so at most one schedule per Scratch
// is live at a time (the returned pointer is the same recycled record).
// Callers must extract whatever they need from a schedule (cost, machine
// count, assignment, …) before requesting the next one. A Scratch must not
// be shared between goroutines.
type Scratch struct {
	sched  Schedule // the single live schedule, recycled in place
	assign []int
	// index and pool are the recycled machine-selection arena handed to
	// schedules that call EnableMachineIndex; reconfigured per instance.
	index machindex
	pool  shardPool
	// allocs counts backing-array growth performed on behalf of schedules
	// (machine records, assignment slice, profiles, shard directories);
	// index and pool keep their own counters. See Stats.
	allocs    int
	schedules int
	// pendingLog is a one-shot span-delta log armed by ArmSpanLog: the next
	// NewSchedule attaches it and clears the arming, so exactly one run's
	// placements land in the caller-provided buffer.
	pendingLog []float64
	armed      bool
}

// ScratchStats summarizes the arena traffic of a Scratch.
type ScratchStats struct {
	// Schedules is the number of schedules the scratch has served.
	Schedules int
	// SetupAllocs counts the backing-array allocations the arena performed
	// while setting up schedule state: machine records, the assignment
	// slice, segment-tree and bitmap arrays, load-profile slabs, shard
	// directories and shard-pool chunks. A warm scratch re-serving an
	// instance shape it has seen performs none.
	SetupAllocs int
}

// Stats returns the arena counters accumulated since the scratch was
// created. Engine workers snapshot it around each run to report per-run
// reuse.
func (sc *Scratch) Stats() ScratchStats {
	return ScratchStats{
		Schedules:   sc.schedules,
		SetupAllocs: sc.allocs + sc.index.allocs + sc.pool.allocs,
	}
}

// NewScheduleFrom returns an empty schedule for inst drawn from sc, or a
// fresh one when sc is nil. It is the single construction point for
// algorithms whose Run and RunScratch entry points share one body.
func NewScheduleFrom(inst *Instance, sc *Scratch) *Schedule {
	if sc != nil {
		return sc.NewSchedule(inst)
	}
	return NewSchedule(inst)
}

// NewSchedule returns an empty schedule for inst backed by this scratch,
// invalidating (and recycling in place) the schedule returned by the
// previous call.
func (sc *Scratch) NewSchedule(inst *Instance) *Schedule {
	s := &sc.sched
	machines := s.machines[:0]
	n := inst.N()
	if cap(sc.assign) < n {
		sc.allocs++
		sc.assign = make([]int, n)
	}
	assign := sc.assign[:n]
	for i := range assign {
		assign[i] = Unassigned
	}
	*s = Schedule{inst: inst, assign: assign, machines: machines, scratch: sc, cursor: Unassigned}
	if sc.armed {
		s.spanLog, s.logSpans = sc.pendingLog, true
		sc.pendingLog, sc.armed = nil, false
	}
	sc.schedules++
	return s
}

// ArmSpanLog arms a one-shot span-delta log: the next schedule drawn from
// this scratch records every placement's span-union delta by appending to
// buf (normally length 0 with capacity for the expected placement count, so
// a well-behaved run stays inside the caller's backing array). Read the
// result back with Schedule.SpanLog. The decomposition layer arms a
// per-component segment before each component solve, giving the stitch merge
// the exact floating-point deltas to replay in global order.
func (sc *Scratch) ArmSpanLog(buf []float64) {
	sc.pendingLog, sc.armed = buf, true
}

// LiveSchedule returns the schedule most recently drawn from this scratch
// (nil before the first NewSchedule). Per the arena contract at most one
// schedule per Scratch is live; this accessor lets a coordinator capture
// worker results — span pieces, machine counts, the span log — after worker
// goroutines finish without threading the pointer through their results.
func (sc *Scratch) LiveSchedule() *Schedule {
	if sc.schedules == 0 {
		return nil
	}
	return &sc.sched
}
