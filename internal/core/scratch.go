package core

import "busytime/internal/itree"

// Scratch recycles the allocations behind a Schedule — the assignment slice,
// the per-machine states, and their interval trees (node pools included) —
// across the many instances of a batch. A worker that schedules a stream of
// instances through one Scratch stops allocating once warm.
//
// Contract: NewSchedule reclaims everything handed out by the previous
// NewSchedule call on the same Scratch, so at most one schedule per Scratch
// is live at a time. Callers must extract whatever they need from a schedule
// (cost, machine count, assignment, …) before requesting the next one.
// A Scratch must not be shared between goroutines.
type Scratch struct {
	assign   []int
	machines []*machineState
	pool     []*machineState
	last     *Schedule
	// index is the recycled machine-selection index handed to schedules
	// that call EnableMachineIndex; reconfigured per instance.
	index *machindex
}

// NewSchedule returns an empty schedule for inst backed by this scratch,
// invalidating the schedule returned by the previous call.
func (sc *Scratch) NewSchedule(inst *Instance) *Schedule {
	if sc.last != nil {
		for _, st := range sc.last.machines {
			st.reset()
			sc.pool = append(sc.pool, st)
		}
		sc.machines = sc.last.machines[:0]
		sc.last.machines = nil
		sc.last.scratch = nil
		sc.last.index = nil
	}
	n := inst.N()
	if cap(sc.assign) < n {
		sc.assign = make([]int, n)
	}
	assign := sc.assign[:n]
	for i := range assign {
		assign[i] = Unassigned
	}
	s := &Schedule{inst: inst, assign: assign, machines: sc.machines[:0], scratch: sc}
	sc.last = s
	return s
}

// takeMachine pops a recycled machine state or builds a fresh one seeded for
// the given machine index.
func (sc *Scratch) takeMachine(seed uint64) *machineState {
	if k := len(sc.pool); k > 0 {
		st := sc.pool[k-1]
		sc.pool = sc.pool[:k-1]
		return st
	}
	return &machineState{tree: itree.New(seed)}
}
