package core

import (
	"math"
	"testing"

	"busytime/internal/interval"
)

// denseTestInstance builds a deterministic instance without importing the
// generator (which would cycle).
func denseTestInstance(n, g int, horizon, maxLen float64) *Instance {
	state := uint64(12345)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := next() * horizon
		ivs[i] = interval.New(s, s+next()*maxLen)
	}
	return NewInstance(g, ivs...)
}

func firstFitAll(in *Instance, indexed bool) *Schedule {
	s := NewSchedule(in)
	if indexed {
		s.EnableMachineIndex()
	}
	for j := range in.Jobs {
		s.FirstFitAssign(j)
	}
	return s
}

// TestCostMatchesMachineSets cross-checks the incremental busy-time totals
// against the from-scratch interval-set derivation.
func TestCostMatchesMachineSets(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		in := denseTestInstance(500, 3, 300, 12)
		s := firstFitAll(in, indexed)
		var want float64
		for m := 0; m < s.NumMachines(); m++ {
			span := s.MachineSet(m).Span()
			want += span
			if got := s.MachineBusy(m); math.Abs(got-span) > 1e-9 {
				t.Fatalf("indexed=%v machine %d busy %v, set says %v", indexed, m, got, span)
			}
		}
		if got := s.Cost(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("indexed=%v Cost %v, machine sets say %v", indexed, got, want)
		}
	}
}

// TestSummaryUsesIncrementalSpans checks Summary against the interval-set
// union it used to re-derive per machine.
func TestSummaryUsesIncrementalSpans(t *testing.T) {
	in := denseTestInstance(300, 4, 150, 10)
	s := firstFitAll(in, true)
	for _, ms := range s.Summary() {
		union := s.MachineSet(ms.Machine).Union()
		if len(ms.Busy) != len(union) {
			t.Fatalf("machine %d: %d busy pieces, union has %d", ms.Machine, len(ms.Busy), len(union))
		}
		for i := range union {
			if ms.Busy[i] != union[i] {
				t.Fatalf("machine %d piece %d: %v vs %v", ms.Machine, i, ms.Busy[i], union[i])
			}
		}
		if math.Abs(ms.Cost-union.TotalLen()) > 1e-9 {
			t.Fatalf("machine %d cost %v vs %v", ms.Machine, ms.Cost, union.TotalLen())
		}
	}
}

// TestCostIsAllocationFree asserts the acceptance criterion of the
// incremental accounting: after assignment, Cost, MachineBusy and SpanDelta
// are reads that never rebuild interval sets (zero allocations).
func TestCostIsAllocationFree(t *testing.T) {
	in := denseTestInstance(2000, 4, 1000, 25)
	s := firstFitAll(in, true)
	var sink float64
	if allocs := testing.AllocsPerRun(100, func() {
		sink += s.Cost()
		sink += s.MachineBusy(0)
		sink += s.SpanDelta(0, in.Jobs[0].Iv)
	}); allocs != 0 {
		t.Fatalf("Cost/MachineBusy/SpanDelta allocated %v times per read", allocs)
	}
	_ = sink
}

// BenchmarkScheduleCost demonstrates the O(1) read: b.N Cost calls on a
// finished 10k-job schedule, with the allocation counter asserting that no
// interval set is ever rebuilt.
func BenchmarkScheduleCost(b *testing.B) {
	in := denseTestInstance(10000, 4, 5000, 25)
	s := firstFitAll(in, true)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Cost()
	}
	_ = sink
}
