package core

import (
	"testing"

	"busytime/internal/interval"
	"busytime/internal/itree"
)

// TestFirstTrivialFindsLowestGuaranteedMachine drives the segment tree
// directly: the reported machine must actually satisfy one of the trivial
// acceptance conditions, and no lower-indexed machine may satisfy any.
func TestFirstTrivialFindsLowestGuaranteedMachine(t *testing.T) {
	in := denseTestInstance(200, 3, 100, 10)
	ix := new(machindex)
	ix.reset(in.timeAxis())
	type mstate struct {
		hull interval.Interval
		peak int
		open bool
	}
	var ms []mstate
	state := uint64(99)
	next := func(n int) int {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return int(z % uint64(n))
	}
	for step := 0; step < 400; step++ {
		switch {
		case len(ms) == 0 || next(5) == 0:
			ix.addMachine()
			ms = append(ms, mstate{open: true})
		default:
			m := next(len(ms))
			s := float64(next(100))
			hull := interval.Interval{Start: s, End: s + float64(next(20))}
			peak := next(4)
			ix.update(m, hull, peak)
			ms[m] = mstate{hull: hull, peak: peak, open: false}
		}
		ws := float64(next(110)) - 5
		w := interval.Interval{Start: ws, End: ws + float64(next(15))}
		d := 1 + next(3)
		slack := int32(in.G - d)
		got := ix.firstTrivial(w, slack)
		want := -1
		for m, st := range ms {
			trivial := st.open || // empty machine: peak 0 ≤ slack
				st.hull.End < w.Start || st.hull.Start > w.End ||
				st.peak <= int(slack)
			if trivial {
				want = m
				break
			}
		}
		if got != want {
			t.Fatalf("step %d: firstTrivial=%d, brute force=%d (w=%v slack=%d)", step, got, want, w, slack)
		}
	}
}

// TestShardGeometryCoversJobs pins the bucket→shard mapping every indexed
// machine relies on: a job's shard range covers its window, and every shard
// in the range genuinely touches the window, so sharded sweeps see exactly
// the jobs that can contribute load.
func TestShardGeometryCoversJobs(t *testing.T) {
	for _, n := range []int{5, 60, 600, 6000} {
		in := denseTestInstance(n, 3, float64(n), 12)
		ia := in.timeAxis()
		if ia.nb == 0 {
			t.Fatalf("n=%d: degenerate axis", n)
		}
		if ia.nshards != (ia.nb-1)>>ia.shardShift+1 {
			t.Fatalf("n=%d: nshards %d inconsistent with nb %d >> %d", n, ia.nshards, ia.nb, ia.shardShift)
		}
		extra := 0
		for _, job := range in.Jobs {
			lo, hi := ia.ax.OverlapRange(job.Iv)
			if lo > hi {
				t.Fatalf("n=%d: job %v got empty bucket range", n, job.Iv)
			}
			slo, shi := ia.shardRange(lo, hi)
			extra += shi - slo
			if ia.shardStart(slo) > job.Iv.Start || ia.shardEnd(shi) < job.Iv.End {
				t.Fatalf("n=%d: job %v not covered by shards [%d,%d] = [%v,%v]",
					n, job.Iv, slo, shi, ia.shardStart(slo), ia.shardEnd(shi))
			}
			for k := slo; k <= shi; k++ {
				tile := interval.Interval{Start: ia.shardStart(k), End: ia.shardEnd(k)}
				if !tile.Overlaps(job.Iv) {
					t.Fatalf("n=%d: job %v spans disjoint shard %d %v", n, job.Iv, k, tile)
				}
			}
		}
		if extra > in.N() {
			t.Fatalf("n=%d: %d extra shard copies for %d jobs; duplication bound violated", n, extra, in.N())
		}
	}
}

// TestMachindexWordGrowth exercises the bitmap re-layout past 64 machines,
// including the in-place widening of a recycled mask.
func TestMachindexWordGrowth(t *testing.T) {
	in := denseTestInstance(64, 2, 64, 4)
	ix := new(machindex)
	for round := 0; round < 2; round++ {
		// Round 1 re-runs on the warm index: the widening must then happen
		// in place, preserving bits without fresh backing arrays.
		ix.reset(in.timeAxis())
		if ix.nb == 0 {
			t.Skip("degenerate axis")
		}
		allocsBefore := ix.allocs
		for m := 0; m < 130; m++ {
			ix.addMachine()
			ix.markBucket(m, m%ix.nb)
		}
		for m := 0; m < 130; m++ {
			b := m % ix.nb
			if ix.mask[b*ix.words+m/64]&(1<<(m%64)) == 0 {
				t.Fatalf("round %d: bit for machine %d bucket %d lost across word growth", round, m, b)
			}
		}
		if round == 1 && ix.allocs != allocsBefore {
			t.Fatalf("warm re-run allocated %d backing arrays; want 0", ix.allocs-allocsBefore)
		}
	}
}

// shardHarness wires a loadShards directory to a pool and an axis the way a
// schedule does, for driving the oracle directly in tests.
type shardHarness struct {
	ia   *instanceAxis
	pool shardPool
	ls   loadShards
}

func newShardHarness(in *Instance) *shardHarness {
	h := &shardHarness{ia: in.timeAxis()}
	h.ls.init(h.ia)
	return h
}

func (h *shardHarness) add(iv interval.Interval, demand int) {
	lo, hi := h.ia.ax.OverlapRange(iv)
	slo, shi := h.ia.shardRange(lo, hi)
	h.ls.add(&h.pool, iv, demand, slo, shi)
}

func (h *shardHarness) maxDepthRun(w interval.Interval, thresh int) (int, float64, interval.Interval, bool) {
	lo, hi := h.ia.ax.OverlapRange(w)
	slo, shi := h.ia.shardRange(lo, hi)
	return h.ls.maxDepthRun(&h.pool, h.ia, w, thresh, slo, shi)
}

// TestLoadShardsMatchesBrute compares the sharded capacity oracle against a
// brute-force depth computation. The insertion count runs far past the old
// doubling-growth threshold (shardJobTarget items per shard) to pin the
// regression the up-front sizing replaced: the fixed directory must stay
// exact at any occupancy, with no redistribution path left to get wrong.
func TestLoadShardsMatchesBrute(t *testing.T) {
	state := uint64(3)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	type wjob struct {
		iv interval.Interval
		d  int
	}
	// Pre-generate the workload so the instance axis exists up front, the
	// way EnableMachineIndex sees a complete instance.
	jobs := make([]wjob, 1200)
	ivs := make([]interval.Interval, len(jobs))
	for i := range jobs {
		s := next() * 100
		iv := interval.Interval{Start: s, End: s + next()*12}
		jobs[i] = wjob{iv, 1 + int(next()*3)}
		ivs[i] = iv
	}
	h := newShardHarness(NewInstance(4, ivs...))
	if h.ia.nshards < 2 {
		t.Fatalf("only %d shard(s); multi-shard sweeps untested", h.ia.nshards)
	}
	if old := shardJobTarget; len(jobs) <= old {
		t.Fatalf("workload %d does not exceed the old growth threshold %d", len(jobs), old)
	}
	var added []wjob
	brute := func(w interval.Interval) int {
		// Max closed depth within w: evaluate at every clipped endpoint.
		best := 0
		for _, cand := range added {
			for _, p := range []float64{cand.iv.Start, cand.iv.End, w.Start, w.End} {
				if p < w.Start || p > w.End {
					continue
				}
				depth := 0
				for _, o := range added {
					if o.iv.Contains(p) {
						depth += o.d
					}
				}
				if depth > best {
					best = depth
				}
			}
		}
		return best
	}
	for step, j := range jobs {
		h.add(j.iv, j.d)
		added = append(added, j)
		qs := next() * 100
		w := interval.Interval{Start: qs, End: qs + next()*12}
		want := brute(w)
		got, at, run, ok := h.maxDepthRun(w, 3)
		if got != want {
			t.Fatalf("step %d: depth %d, brute %d (w=%v, shards=%d)", step, got, want, w, h.ia.nshards)
		}
		if ok != (want >= 3) {
			t.Fatalf("step %d: ok=%v with depth %d", step, ok, want)
		}
		if want > 0 && !w.Contains(at) {
			t.Fatalf("step %d: witness %v outside %v", step, at, w)
		}
		if ok {
			if !w.ContainsInterval(run) {
				t.Fatalf("step %d: run %v outside %v", step, run, w)
			}
			for i := 0; i <= 8; i++ {
				p := run.Start + (run.End-run.Start)*float64(i)/8
				depth := 0
				for _, o := range added {
					if o.iv.Contains(p) {
						depth += o.d
					}
				}
				if depth < 3 {
					t.Fatalf("step %d: run %v has depth %d < 3 at %v", step, run, depth, p)
				}
			}
		}
	}
}

// TestLoadShardsMatchesTreeOracle pins the two exact capacity oracles — the
// sharded sweep used under the index and the interval tree used without it —
// to each other on identical unit-demand content: depths must agree
// everywhere and reported runs must satisfy the same saturation contract.
// This is the tripwire for the duplicated run-extraction logic.
func TestLoadShardsMatchesTreeOracle(t *testing.T) {
	state := uint64(21)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	ivs := make([]interval.Interval, 800)
	for i := range ivs {
		s := next() * 60
		ivs[i] = interval.Interval{Start: s, End: s + next()*9}
	}
	h := newShardHarness(NewInstance(4, ivs...))
	if h.ia.nshards < 2 {
		t.Fatalf("only %d shard(s); multi-shard sweeps untested", h.ia.nshards)
	}
	tree := itree.New(5)
	for step, iv := range ivs {
		h.add(iv, 1)
		tree.Insert(itree.Item{Iv: iv, ID: step})
		qs := next() * 60
		w := interval.Interval{Start: qs, End: qs + next()*9}
		for _, thresh := range []int{2, 4} {
			sd, sa, srun, sok := h.maxDepthRun(w, thresh)
			td, ta, trun, tok := tree.MaxDepthRunWithinAt(w, thresh)
			if sd != td {
				t.Fatalf("step %d: shard depth %d != tree depth %d (w=%v)", step, sd, td, w)
			}
			if sok != tok {
				t.Fatalf("step %d: shard ok=%v != tree ok=%v at depth %d thresh %d", step, sok, tok, sd, thresh)
			}
			// Witnesses and runs may legitimately differ (the shard sweep
			// clips at tile boundaries), but both must be valid: witness in
			// window, run saturated at both ends.
			if sd > 0 && (!w.Contains(sa) || !w.Contains(ta)) {
				t.Fatalf("step %d: witness outside window: shard %v tree %v (w=%v)", step, sa, ta, w)
			}
			if sok && !w.ContainsInterval(srun) {
				t.Fatalf("step %d: shard run %v outside %v", step, srun, w)
			}
			if tok && !w.ContainsInterval(trun) {
				t.Fatalf("step %d: tree run %v outside %v", step, trun, w)
			}
		}
	}
}

// TestIndexManyMachinesPastPrefixCaps drives FirstFitAssign on a clique
// instance that opens far more machines than the bitmap (512) and profile
// (128) prefixes cover, checking the indexed scan still matches the plain
// scan machine for machine.
func TestIndexManyMachinesPastPrefixCaps(t *testing.T) {
	// 1500 unit jobs through a common point with g=2 → 750 machines.
	ivs := make([]interval.Interval, 1500)
	state := uint64(8)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	for i := range ivs {
		a, b := next()*5, next()*5
		ivs[i] = interval.New(10-a, 10+b)
	}
	in := NewInstance(2, ivs...)
	indexed := NewSchedule(in)
	indexed.EnableMachineIndex()
	plain := NewSchedule(in)
	for j := range in.Jobs {
		indexed.FirstFitAssign(j)
		plain.FirstFitAssign(j)
	}
	if indexed.NumMachines() <= maxBitmapMachines {
		t.Fatalf("instance opened only %d machines; prefix caps untested", indexed.NumMachines())
	}
	if indexed.NumMachines() != plain.NumMachines() {
		t.Fatalf("indexed %d machines, plain %d", indexed.NumMachines(), plain.NumMachines())
	}
	for j := range in.Jobs {
		if indexed.MachineOf(j) != plain.MachineOf(j) {
			t.Fatalf("job %d: indexed machine %d, plain %d", j, indexed.MachineOf(j), plain.MachineOf(j))
		}
	}
	if indexed.Cost() != plain.Cost() {
		t.Fatalf("cost %v vs %v", indexed.Cost(), plain.Cost())
	}
	if err := indexed.Verify(); err != nil {
		t.Fatal(err)
	}
}
