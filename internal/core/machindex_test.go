package core

import (
	"testing"

	"busytime/internal/interval"
	"busytime/internal/itree"
)

// TestFirstTrivialFindsLowestGuaranteedMachine drives the segment tree
// directly: the reported machine must actually satisfy one of the trivial
// acceptance conditions, and no lower-indexed machine may satisfy any.
func TestFirstTrivialFindsLowestGuaranteedMachine(t *testing.T) {
	in := denseTestInstance(200, 3, 100, 10)
	ix := newMachindex(in)
	type mstate struct {
		hull interval.Interval
		peak int
		open bool
	}
	var ms []mstate
	state := uint64(99)
	next := func(n int) int {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return int(z % uint64(n))
	}
	for step := 0; step < 400; step++ {
		switch {
		case len(ms) == 0 || next(5) == 0:
			ix.addMachine()
			ms = append(ms, mstate{open: true})
		default:
			m := next(len(ms))
			s := float64(next(100))
			hull := interval.Interval{Start: s, End: s + float64(next(20))}
			peak := next(4)
			ix.update(m, hull, peak)
			ms[m] = mstate{hull: hull, peak: peak, open: false}
		}
		ws := float64(next(110)) - 5
		w := interval.Interval{Start: ws, End: ws + float64(next(15))}
		d := 1 + next(3)
		slack := int32(in.G - d)
		got := ix.firstTrivial(w, slack)
		want := -1
		for m, st := range ms {
			trivial := st.open || // empty machine: peak 0 ≤ slack
				st.hull.End < w.Start || st.hull.Start > w.End ||
				st.peak <= int(slack)
			if trivial {
				want = m
				break
			}
		}
		if got != want {
			t.Fatalf("step %d: firstTrivial=%d, brute force=%d (w=%v slack=%d)", step, got, want, w, slack)
		}
	}
}

// TestSaturationBitmapSoundness checks that blockedMask only ever reports
// machines whose marked buckets really overlap the window, via the
// bucket-geometry helpers it is built from.
func TestSaturationBitmapSoundness(t *testing.T) {
	in := denseTestInstance(512, 2, 256, 8)
	ix := newMachindex(in)
	ix.addMachine()
	state := uint64(7)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	for trial := 0; trial < 2000; trial++ {
		s := next() * 256
		iv := interval.Interval{Start: s, End: s + next()*10}
		lo, hi := ix.bucketsWithin(iv)
		for b := lo; b <= hi; b++ {
			blo := ix.t0 + float64(b)*ix.bw
			bhi := ix.t0 + float64(b+1)*ix.bw
			if blo < iv.Start || bhi > iv.End {
				t.Fatalf("bucketsWithin(%v) reported bucket [%v,%v] outside the interval", iv, blo, bhi)
			}
		}
		qs := next() * 256
		q := interval.Interval{Start: qs, End: qs + next()*10}
		qlo, qhi := ix.bucketsOverlapping(q)
		for b := qlo; b <= qhi; b++ {
			blo := ix.t0 + float64(b)*ix.bw
			bhi := ix.t0 + float64(b+1)*ix.bw
			if blo > q.End || bhi < q.Start {
				t.Fatalf("bucketsOverlapping(%v) reported disjoint bucket [%v,%v]", q, blo, bhi)
			}
		}
	}
}

// TestMachindexWordGrowth exercises the bitmap re-layout past 64 machines.
func TestMachindexWordGrowth(t *testing.T) {
	in := denseTestInstance(64, 2, 64, 4)
	ix := newMachindex(in)
	if ix.nb == 0 {
		t.Skip("degenerate hull")
	}
	for m := 0; m < 130; m++ {
		ix.addMachine()
		ix.markBucket(m, m%ix.nb)
	}
	for m := 0; m < 130; m++ {
		b := m % ix.nb
		if ix.mask[b*ix.words+m/64]&(1<<(m%64)) == 0 {
			t.Fatalf("bit for machine %d bucket %d lost across word growth", m, b)
		}
	}
}

// TestLoadShardsMatchesBrute compares the sharded capacity oracle against a
// brute-force depth computation across growth boundaries.
func TestLoadShardsMatchesBrute(t *testing.T) {
	var ls loadShards
	ls.init(0, 100)
	state := uint64(3)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	type wjob struct {
		iv interval.Interval
		d  int
	}
	var jobs []wjob
	brute := func(w interval.Interval) int {
		// Max closed depth within w: evaluate at every clipped endpoint.
		best := 0
		for _, cand := range jobs {
			for _, p := range []float64{cand.iv.Start, cand.iv.End, w.Start, w.End} {
				if p < w.Start || p > w.End {
					continue
				}
				depth := 0
				for _, o := range jobs {
					if o.iv.Contains(p) {
						depth += o.d
					}
				}
				if depth > best {
					best = depth
				}
			}
		}
		return best
	}
	for step := 0; step < 1200; step++ {
		s := next() * 100
		iv := interval.Interval{Start: s, End: s + next()*12}
		d := 1 + int(next()*3)
		ls.add(iv, d)
		jobs = append(jobs, wjob{iv, d})
		qs := next() * 100
		w := interval.Interval{Start: qs, End: qs + next()*12}
		want := brute(w)
		got, at, run, ok := ls.maxDepthRun(w, 3)
		if got != want {
			t.Fatalf("step %d: depth %d, brute %d (w=%v, shards=%d)", step, got, want, w, len(ls.shards))
		}
		if ok != (want >= 3) {
			t.Fatalf("step %d: ok=%v with depth %d", step, ok, want)
		}
		if want > 0 && !w.Contains(at) {
			t.Fatalf("step %d: witness %v outside %v", step, at, w)
		}
		if ok {
			if !w.ContainsInterval(run) {
				t.Fatalf("step %d: run %v outside %v", step, run, w)
			}
			for i := 0; i <= 8; i++ {
				p := run.Start + (run.End-run.Start)*float64(i)/8
				depth := 0
				for _, o := range jobs {
					if o.iv.Contains(p) {
						depth += o.d
					}
				}
				if depth < 3 {
					t.Fatalf("step %d: run %v has depth %d < 3 at %v", step, run, depth, p)
				}
			}
		}
	}
	if len(ls.shards) == 1 {
		t.Fatal("shards never grew; growth path untested")
	}
}

// TestLoadShardsMatchesTreeOracle pins the two exact capacity oracles — the
// sharded sweep used under the index and the interval tree used without it —
// to each other on identical unit-demand content: depths must agree
// everywhere and reported runs must satisfy the same saturation contract.
// This is the tripwire for the duplicated run-extraction logic.
func TestLoadShardsMatchesTreeOracle(t *testing.T) {
	var ls loadShards
	ls.init(0, 60)
	tree := itree.New(5)
	state := uint64(21)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	for step := 0; step < 800; step++ {
		s := next() * 60
		iv := interval.Interval{Start: s, End: s + next()*9}
		ls.add(iv, 1)
		tree.Insert(itree.Item{Iv: iv, ID: step})
		qs := next() * 60
		w := interval.Interval{Start: qs, End: qs + next()*9}
		for _, thresh := range []int{2, 4} {
			sd, sa, srun, sok := ls.maxDepthRun(w, thresh)
			td, ta, trun, tok := tree.MaxDepthRunWithinAt(w, thresh)
			if sd != td {
				t.Fatalf("step %d: shard depth %d != tree depth %d (w=%v)", step, sd, td, w)
			}
			if sok != tok {
				t.Fatalf("step %d: shard ok=%v != tree ok=%v at depth %d thresh %d", step, sok, tok, sd, thresh)
			}
			// Witnesses and runs may legitimately differ (the shard sweep
			// clips at tile boundaries), but both must be valid: witness in
			// window, run saturated at both ends.
			if sd > 0 && (!w.Contains(sa) || !w.Contains(ta)) {
				t.Fatalf("step %d: witness outside window: shard %v tree %v (w=%v)", step, sa, ta, w)
			}
			if sok && !w.ContainsInterval(srun) {
				t.Fatalf("step %d: shard run %v outside %v", step, srun, w)
			}
			if tok && !w.ContainsInterval(trun) {
				t.Fatalf("step %d: tree run %v outside %v", step, trun, w)
			}
		}
	}
	if len(ls.shards) == 1 {
		t.Fatal("shards never grew")
	}
}

// TestIndexManyMachinesPastPrefixCaps drives FirstFitAssign on a clique
// instance that opens far more machines than the bitmap (512) and profile
// (128) prefixes cover, checking the indexed scan still matches the plain
// scan machine for machine.
func TestIndexManyMachinesPastPrefixCaps(t *testing.T) {
	// 1500 unit jobs through a common point with g=2 → 750 machines.
	ivs := make([]interval.Interval, 1500)
	state := uint64(8)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / (1 << 53)
	}
	for i := range ivs {
		a, b := next()*5, next()*5
		ivs[i] = interval.New(10-a, 10+b)
	}
	in := NewInstance(2, ivs...)
	indexed := NewSchedule(in)
	indexed.EnableMachineIndex()
	plain := NewSchedule(in)
	for j := range in.Jobs {
		indexed.FirstFitAssign(j)
		plain.FirstFitAssign(j)
	}
	if indexed.NumMachines() <= maxBitmapMachines {
		t.Fatalf("instance opened only %d machines; prefix caps untested", indexed.NumMachines())
	}
	if indexed.NumMachines() != plain.NumMachines() {
		t.Fatalf("indexed %d machines, plain %d", indexed.NumMachines(), plain.NumMachines())
	}
	for j := range in.Jobs {
		if indexed.MachineOf(j) != plain.MachineOf(j) {
			t.Fatalf("job %d: indexed machine %d, plain %d", j, indexed.MachineOf(j), plain.MachineOf(j))
		}
	}
	if indexed.Cost() != plain.Cost() {
		t.Fatalf("cost %v vs %v", indexed.Cost(), plain.Cost())
	}
	if err := indexed.Verify(); err != nil {
		t.Fatal(err)
	}
}
