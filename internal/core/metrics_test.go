package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busytime/internal/interval"
)

func TestUtilizationPerfectPacking(t *testing.T) {
	// Two jobs exactly stacked, g = 2: utilization 1.
	in := NewInstance(2, iv(0, 4), iv(0, 4))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	if got := s.Utilization(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Utilization = %v, want 1", got)
	}
	if got := s.MachineUtilization(m); math.Abs(got-1) > 1e-12 {
		t.Errorf("MachineUtilization = %v, want 1", got)
	}
	if got := s.IdleCapacity(); got != 0 {
		t.Errorf("IdleCapacity = %v, want 0", got)
	}
}

func TestUtilizationHalf(t *testing.T) {
	// One unit job alone on a g=2 machine: half the capacity is idle.
	in := NewInstance(2, iv(0, 4))
	s := NewSchedule(in)
	s.AssignNew(0)
	if got := s.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := s.IdleCapacity(); got != 4 {
		t.Errorf("IdleCapacity = %v, want 4", got)
	}
}

func TestUtilizationDemandWeighted(t *testing.T) {
	in := NewInstance(3, iv(0, 2))
	in.Jobs[0].Demand = 3
	s := NewSchedule(in)
	s.AssignNew(0)
	if got := s.Utilization(); math.Abs(got-1) > 1e-12 {
		t.Errorf("demand-3 job on g=3 machine: utilization %v, want 1", got)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	s := NewSchedule(NewInstance(2))
	if s.Utilization() != 0 || s.IdleCapacity() != 0 {
		t.Error("empty schedule metrics nonzero")
	}
}

func TestQuickUtilizationIdentities(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nn%16) + 1
		ivs := make([]interval.Interval, n)
		for i := range ivs {
			st := r.Float64() * 30
			ivs[i] = interval.New(st, st+0.5+r.Float64()*8)
		}
		in := NewInstance(3, ivs...)
		s := NewSchedule(in)
		for j := range in.Jobs {
			placed := false
			for m := 0; m < s.NumMachines(); m++ {
				if s.CanAssign(j, m) {
					s.Assign(j, m)
					placed = true
					break
				}
			}
			if !placed {
				s.AssignNew(j)
			}
		}
		u := s.Utilization()
		if u < 0 || u > 1+1e-9 {
			return false
		}
		// Utilization == ParallelismBound / Cost.
		if math.Abs(u-ParallelismBound(in)/s.Cost()) > 1e-9 {
			return false
		}
		// IdleCapacity consistent with utilization.
		return math.Abs(s.IdleCapacity()-(1-u)*float64(in.G)*s.Cost()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
