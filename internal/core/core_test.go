package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestNewInstance(t *testing.T) {
	in := NewInstance(2, iv(0, 1), iv(1, 3))
	if in.N() != 2 || in.G != 2 {
		t.Fatalf("bad instance: %+v", in)
	}
	for i, j := range in.Jobs {
		if j.ID != i || j.Demand != 1 {
			t.Errorf("job %d = %+v, want ID=%d demand=1", i, j, i)
		}
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		in   *Instance
	}{
		{"bad g", &Instance{G: 0}},
		{"dup id", &Instance{G: 1, Jobs: []Job{{ID: 1, Iv: iv(0, 1), Demand: 1}, {ID: 1, Iv: iv(2, 3), Demand: 1}}}},
		{"zero demand", &Instance{G: 2, Jobs: []Job{{ID: 0, Iv: iv(0, 1)}}}},
		{"demand above g", &Instance{G: 2, Jobs: []Job{{ID: 0, Iv: iv(0, 1), Demand: 3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.in.Validate() == nil {
				t.Error("Validate accepted invalid instance")
			}
		})
	}
}

func TestMeasures(t *testing.T) {
	in := NewInstance(2, iv(0, 2), iv(1, 3), iv(5, 6))
	if got := in.TotalLen(); got != 5 {
		t.Errorf("TotalLen = %v, want 5", got)
	}
	if got := in.Span(); got != 4 {
		t.Errorf("Span = %v, want 4", got)
	}
	in.Jobs[0].Demand = 2
	if got := in.WeightedLen(); got != 7 {
		t.Errorf("WeightedLen = %v, want 7", got)
	}
	h, err := in.Hull()
	if err != nil || h != iv(0, 6) {
		t.Errorf("Hull = %v,%v", h, err)
	}
	if _, err := NewInstance(1).Hull(); err == nil {
		t.Error("Hull of empty instance should error")
	}
}

func TestSortOrders(t *testing.T) {
	in := NewInstance(2, iv(5, 6), iv(0, 4), iv(2, 3))
	in.SortJobsByLenDesc()
	if in.Jobs[0].Iv != iv(0, 4) {
		t.Errorf("longest first: got %v", in.Jobs[0].Iv)
	}
	in.SortJobsByStart()
	if in.Jobs[0].Iv != iv(0, 4) || in.Jobs[1].Iv != iv(2, 3) {
		t.Errorf("start order broken: %v", in.Jobs)
	}
}

func TestComponents(t *testing.T) {
	in := NewInstance(3, iv(0, 1), iv(1, 2), iv(4, 5), iv(4.5, 6), iv(10, 11))
	comps := in.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{2, 2, 1}
	total := 0
	for i, c := range comps {
		if c.N() != sizes[i] {
			t.Errorf("component %d size %d, want %d", i, c.N(), sizes[i])
		}
		if c.G != in.G {
			t.Errorf("component %d lost g", i)
		}
		total += c.N()
	}
	if total != in.N() {
		t.Errorf("components cover %d jobs, want %d", total, in.N())
	}
	// Touching intervals [0,1],[1,2] must be one component (closed semantics).
	if comps[0].N() != 2 {
		t.Error("touching jobs split across components")
	}
}

func TestScheduleAssignAndCost(t *testing.T) {
	in := NewInstance(2, iv(0, 2), iv(1, 3), iv(1.5, 2.5), iv(10, 12))
	s := NewSchedule(in)
	if s.Complete() {
		t.Error("empty schedule reported complete")
	}
	m0 := s.AssignNew(0)
	if !s.CanAssign(1, m0) {
		t.Error("second job should fit (g=2)")
	}
	s.Assign(1, m0)
	if s.CanAssign(2, m0) {
		t.Error("third overlapping job must not fit with g=2")
	}
	m1 := s.AssignNew(2)
	s.Assign(3, m1)
	if !s.Complete() {
		t.Error("schedule should be complete")
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Machine 0 busy [0,3] = 3; machine 1 busy [1.5,2.5] ∪ [10,12] = 3.
	if got := s.MachineBusy(m0); got != 3 {
		t.Errorf("busy(m0) = %v, want 3", got)
	}
	if got := s.MachineBusy(m1); got != 3 {
		t.Errorf("busy(m1) = %v, want 3", got)
	}
	if got := s.Cost(); got != 6 {
		t.Errorf("Cost = %v, want 6", got)
	}
}

func TestCanAssignTouchingConsumesCapacity(t *testing.T) {
	// Closed semantics: [0,1] and [1,2] overlap at point 1, so with g=1 they
	// cannot share a machine even though the overlap has measure zero.
	in := NewInstance(1, iv(0, 1), iv(1, 2))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	if s.CanAssign(1, m) {
		t.Error("touching job admitted with g=1")
	}
	in2 := NewInstance(2, iv(0, 1), iv(1, 2))
	s2 := NewSchedule(in2)
	m2 := s2.AssignNew(0)
	if !s2.CanAssign(1, m2) {
		t.Error("touching job rejected with g=2")
	}
}

func TestDemandWeightedCapacity(t *testing.T) {
	in := NewInstance(3, iv(0, 4), iv(1, 3), iv(2, 5))
	in.Jobs[0].Demand = 2
	s := NewSchedule(in)
	m := s.AssignNew(0) // uses 2 of 3 slots on [0,4]
	if !s.CanAssign(1, m) {
		t.Error("unit job should fit in remaining slot")
	}
	s.Assign(1, m)
	if s.CanAssign(2, m) {
		t.Error("no capacity left on [2,3]; job must be rejected")
	}
	m2 := s.AssignNew(2)
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	_ = m2
}

func TestVerifyCatchesOverload(t *testing.T) {
	in := NewInstance(1, iv(0, 2), iv(1, 3))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m) // bypasses CanAssign on purpose
	if err := s.Verify(); err == nil {
		t.Error("Verify accepted overloaded machine")
	}
}

func TestVerifyCatchesUnassigned(t *testing.T) {
	in := NewInstance(2, iv(0, 1), iv(2, 3))
	s := NewSchedule(in)
	s.AssignNew(0)
	if err := s.Verify(); err == nil {
		t.Error("Verify accepted incomplete schedule")
	}
}

func TestAssignPanicsOnDouble(t *testing.T) {
	in := NewInstance(2, iv(0, 1))
	s := NewSchedule(in)
	m := s.AssignNew(0)
	defer func() {
		if recover() == nil {
			t.Error("double assign did not panic")
		}
	}()
	s.Assign(0, m)
}

func TestSummaryAndAssignmentRoundTrip(t *testing.T) {
	in := NewInstance(2, iv(0, 2), iv(1, 3), iv(5, 6))
	in.Jobs[0].ID = 10
	in.Jobs[1].ID = 20
	in.Jobs[2].ID = 30
	s := NewSchedule(in)
	m0 := s.AssignNew(0)
	s.Assign(1, m0)
	s.AssignNew(2)
	sum := s.Summary()
	if len(sum) != 2 {
		t.Fatalf("summary has %d machines, want 2", len(sum))
	}
	if sum[0].Cost != 3 || sum[1].Cost != 1 {
		t.Errorf("summary costs = %v,%v; want 3,1", sum[0].Cost, sum[1].Cost)
	}
	s2, err := FromAssignment(in, s.Assignment())
	if err != nil {
		t.Fatalf("FromAssignment: %v", err)
	}
	if err := s2.Verify(); err != nil {
		t.Fatalf("round-trip Verify: %v", err)
	}
	if s2.Cost() != s.Cost() {
		t.Errorf("round-trip cost %v != %v", s2.Cost(), s.Cost())
	}
}

func TestFromAssignmentMissingJob(t *testing.T) {
	in := NewInstance(2, iv(0, 1), iv(2, 3))
	if _, err := FromAssignment(in, map[int]int{0: 0}); err == nil {
		t.Error("missing job accepted")
	}
}

func TestBoundsOnKnownInstance(t *testing.T) {
	// Two disjoint unit jobs and one spanning job, g = 2.
	in := NewInstance(2, iv(0, 1), iv(2, 3), iv(0, 3))
	b := AllBounds(in)
	if b.Span != 3 {
		t.Errorf("span bound = %v, want 3", b.Span)
	}
	if b.Parallelism != 2.5 {
		t.Errorf("parallelism bound = %v, want 2.5", b.Parallelism)
	}
	// Depth is 2 on [0,1]∪[2,3], 1 on [1,2]: ceil = 1 everywhere → 3.
	if b.Fractional != 3 {
		t.Errorf("fractional bound = %v, want 3", b.Fractional)
	}
	if BestBound(in) != b.Fractional {
		t.Error("BestBound must be the fractional bound")
	}
}

func TestFractionalBoundWithDemands(t *testing.T) {
	in := NewInstance(2, iv(0, 1))
	in.Jobs[0].Demand = 2
	// One job of demand 2 with g=2: ceil(2/2)=1 over [0,1].
	if got := FractionalBound(in); got != 1 {
		t.Errorf("fractional = %v, want 1", got)
	}
	in.G = 1 // invalid per Validate but bound math still: ceil(2/1)=2
	if got := FractionalBound(in); got != 2 {
		t.Errorf("fractional = %v, want 2", got)
	}
}

func TestFractionalBoundEmptyAndPoints(t *testing.T) {
	if got := FractionalBound(NewInstance(2)); got != 0 {
		t.Errorf("empty fractional = %v", got)
	}
	if got := FractionalBound(NewInstance(2, iv(1, 1), iv(2, 2))); got != 0 {
		t.Errorf("point jobs fractional = %v, want 0", got)
	}
}

func randomInstance(r *rand.Rand, n, g int) *Instance {
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		s := r.Float64() * 50
		ivs[i] = interval.New(s, s+r.Float64()*12)
	}
	return NewInstance(g, ivs...)
}

func TestQuickBoundDominance(t *testing.T) {
	f := func(seed int64, sz, gg uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, int(sz%24)+1, int(gg%4)+1)
		b := AllBounds(in)
		const eps = 1e-9
		return b.Fractional+eps >= b.Span && b.Fractional+eps >= b.Parallelism
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPreserveMeasure(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, int(sz%24)+1, 2)
		comps := in.Components()
		var totalLen, span, frac float64
		njobs := 0
		for _, c := range comps {
			totalLen += c.TotalLen()
			span += c.Span()
			frac += FractionalBound(c)
			njobs += c.N()
		}
		return njobs == in.N() &&
			math.Abs(totalLen-in.TotalLen()) < 1e-9 &&
			math.Abs(span-in.Span()) < 1e-9 &&
			math.Abs(frac-FractionalBound(in)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScheduleCostAtLeastBestBound(t *testing.T) {
	// Any feasible schedule costs at least the fractional bound.
	f := func(seed int64, sz, gg uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, int(sz%16)+1, int(gg%3)+1)
		s := NewSchedule(in)
		// Arbitrary feasible assignment: first machine that fits, else new.
		for j := range in.Jobs {
			placed := false
			for m := 0; m < s.NumMachines(); m++ {
				if s.CanAssign(j, m) {
					s.Assign(j, m)
					placed = true
					break
				}
			}
			if !placed {
				s.AssignNew(j)
			}
		}
		if err := s.Verify(); err != nil {
			return false
		}
		return s.Cost() >= BestBound(in)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
