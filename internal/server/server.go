package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"busytime"
	"busytime/internal/stats"
)

// Config assembles one daemon instance. The zero value of optional fields
// picks production defaults; addresses use the usual "host:port" forms
// (":0" for an ephemeral port, the way the tests run).
type Config struct {
	ControlAddr string // HTTP control plane listen address; "" disables
	DataAddr    string // framed TCP data plane listen address; "" disables

	Algorithm string             // control-plane solve algorithm (default "firstfit")
	Policy    string             // data-plane arrival policy (default "firstfit")
	G         int                // parallelism parameter g (default 4)
	Window    int                // per-tenant live-window presize hint
	Workers   int                // solver workers / pool shards (0 = GOMAXPROCS)
	Admission busytime.Admission // per-tenant limits; zero admits everything

	// MaxBatch caps how many frames one connection read drains into a
	// single processing pass (and so how many placements share one
	// shard-lock acquisition). Default 64.
	MaxBatch int

	// DrainGrace bounds how long a draining connection keeps answering
	// frames (with shutdown rejects for new placements) before the server
	// closes it. Default 250ms.
	DrainGrace time.Duration

	Logf func(format string, args ...any) // nil discards
}

func (c *Config) setDefaults() {
	if c.Algorithm == "" {
		c.Algorithm = "firstfit"
	}
	if c.Policy == "" {
		c.Policy = "firstfit"
	}
	if c.G == 0 {
		c.G = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the daemon: one warm Solver session for the control plane, one
// multi-tenant OnlinePool for the data plane, both fronted by listeners
// with per-endpoint latency histograms and a graceful drain. Construct
// with New, bind with Start, then either Wait on the listeners or drive
// the lifecycle with Run.
type Server struct {
	cfg    Config
	solver *busytime.Solver
	pool   *busytime.OnlinePool

	ctrlLn  net.Listener
	dataLn  net.Listener
	httpSrv *http.Server

	start    time.Time
	draining atomic.Bool

	mu    sync.Mutex
	conns map[*dconn]struct{}
	wg    sync.WaitGroup // accept loops + data-plane connections

	// Per-endpoint latency histograms. Data-plane entries record the
	// batch's service time (first byte decoded → replies ready to flush)
	// once per frame, so a frame that waited behind its batch carries that
	// wait; control-plane entries record per-request handler time.
	placeHist   stats.Hist
	releaseHist stats.Hist
	statsHist   stats.Hist
	solveHist   stats.Hist

	frames      atomic.Uint64 // data-plane request frames processed
	accepted    atomic.Uint64 // placements accepted
	rejRate     atomic.Uint64
	rejLive     atomic.Uint64
	rejShutdown atomic.Uint64
	rejInvalid  atomic.Uint64
}

// New validates the configuration and assembles the daemon's solver and
// tenant pool; no sockets are touched until Start.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.ControlAddr == "" && cfg.DataAddr == "" {
		return nil, fmt.Errorf("server: no listen addresses configured")
	}
	solver, err := busytime.New(
		busytime.WithAlgorithm(cfg.Algorithm),
		busytime.WithWorkers(cfg.Workers),
		busytime.WithWindow(cfg.Window),
		busytime.WithAdmission(cfg.Admission),
	)
	if err != nil {
		return nil, err
	}
	pool, err := solver.OnlinePool(cfg.G, cfg.Policy)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		solver: solver,
		pool:   pool,
		conns:  make(map[*dconn]struct{}),
	}, nil
}

// Start binds the configured listeners and launches the serve loops; it
// returns once both planes are accepting (so ":0" callers can read the
// resolved addresses from ControlAddr/DataAddr).
func (s *Server) Start() error {
	s.start = time.Now()
	if s.cfg.ControlAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.ControlAddr)
		if err != nil {
			return err
		}
		s.ctrlLn = ln
		s.httpSrv = &http.Server{Handler: s.controlMux()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.cfg.Logf("busyschedd: control plane: %v", err)
			}
		}()
		s.cfg.Logf("busyschedd: control plane listening on %s", ln.Addr())
	}
	if s.cfg.DataAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.DataAddr)
		if err != nil {
			if s.ctrlLn != nil {
				s.ctrlLn.Close()
			}
			return err
		}
		s.dataLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln)
		s.cfg.Logf("busyschedd: data plane listening on %s", ln.Addr())
	}
	return nil
}

// ControlAddr returns the bound control-plane address (nil if disabled).
func (s *Server) ControlAddr() net.Addr {
	if s.ctrlLn == nil {
		return nil
	}
	return s.ctrlLn.Addr()
}

// DataAddr returns the bound data-plane address (nil if disabled).
func (s *Server) DataAddr() net.Addr {
	if s.dataLn == nil {
		return nil
	}
	return s.dataLn.Addr()
}

// Run starts the daemon and serves until ctx is cancelled, then drains:
// listeners close, the pool rejects new placements with typed shutdown
// frames, in-flight frames complete, and connections wind down within
// DrainGrace. It returns the shutdown error (nil on a clean drain).
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	grace := s.cfg.DrainGrace + 5*time.Second
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return s.Shutdown(sctx)
}

// Shutdown drains the daemon: stop accepting, flip the pool into rejecting
// new placements (ErrPoolClosed → typed shutdown frames), give every open
// data connection DrainGrace to finish its in-flight frames and read the
// rejects, then close everything and wait for the serve loops. Safe to
// call once; ctx bounds the total wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.pool.Close()
	if s.dataLn != nil {
		s.dataLn.Close()
	}

	// Wake blocked reads: every connection gets DrainGrace to pick up its
	// final frames; frames that arrive in the window get shutdown rejects.
	deadline := time.Now().Add(s.cfg.DrainGrace)
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(deadline)
	}
	s.mu.Unlock()

	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx) // closes the control listener too
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Force: close every remaining connection and wait again.
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return httpErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// acceptLoop owns the data-plane listener.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal
		}
		c := s.newConn(nc)
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}
