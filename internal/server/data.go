package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"time"

	"busytime"
	"busytime/internal/stats"
)

// Data-plane payload sizes (fixed-size request ops).
const (
	placeLen   = 4 + 8 + 8 + 4 // handle, start, end, demand
	releaseLen = 4 + 8         // handle, job
	statsLen   = 4             // handle
)

// pendFrame is one decoded request frame awaiting its batch's processing
// pass. Decoding up front (rather than keeping raw payload slices) is what
// lets the whole batch share one read buffer.
type pendFrame struct {
	op     byte
	h      uint32
	iv     busytime.Interval
	demand int
	job    int
	bad    bool // malformed coordinates → RejectInvalid, never placed
}

// dconn is one data-plane connection: buffered reader/writer over the
// socket plus every per-connection scratch buffer the steady-state loop
// reuses, so a warm connection serves place/release frames with zero
// allocations.
type dconn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	hdr     [frameHeader]byte // read scratch
	whdr    [frameHeader]byte // write scratch
	rbuf    []byte            // frame payload buffer (readFrameInto storage)
	pbuf    [16]byte          // reply payload scratch
	handles []string          // handle → interned tenant key
	pend    []pendFrame       // decoded batch
	reqs    []busytime.PlaceRequest
	res     []busytime.PlaceResult
	jsonBuf bytes.Buffer // statsOK payloads
}

func (s *Server) newConn(nc net.Conn) *dconn {
	return &dconn{
		s:  s,
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// serve runs the connection until EOF, a protocol violation, or the drain
// deadline closes it.
func (c *dconn) serve() {
	defer c.nc.Close()
	for {
		if err := c.serveBatch(); err != nil {
			return
		}
	}
}

// serveBatch reads one batch of frames — the first read blocks, then the
// loop drains whatever already sits in the read buffer up to MaxBatch —
// processes them in order, and flushes the replies. One syscall in, one
// processing pass, one syscall out. The returned error ends the
// connection; protocol violations send a hangup frame first.
func (c *dconn) serveBatch() error {
	c.pend = c.pend[:0]
	for {
		op, payload, buf, err := readFrameInto(c.br, &c.hdr, c.rbuf)
		c.rbuf = buf
		if err != nil {
			if len(c.pend) == 0 {
				return err // idle connection went away; nothing owed
			}
			return c.hangup(fmt.Errorf("mid-batch read: %w", err))
		}
		if err := c.decode(op, payload); err != nil {
			return c.hangup(err)
		}
		if len(c.pend) >= c.s.cfg.MaxBatch || c.br.Buffered() < frameHeader {
			break
		}
	}
	if err := c.process(); err != nil {
		return err
	}
	return c.bw.Flush()
}

// decode validates one frame and appends it to the pending batch. Errors
// are protocol violations (hangup); malformed coordinates in an otherwise
// well-formed place frame are marked bad and answered with RejectInvalid
// instead, because they are a data problem, not a framing problem.
func (c *dconn) decode(op byte, p []byte) error {
	switch op {
	case opOpen:
		if len(c.handles) >= maxHandles {
			return fmt.Errorf("handle limit %d reached", maxHandles)
		}
		if len(p) == 0 {
			return fmt.Errorf("open: empty tenant key")
		}
		c.handles = append(c.handles, string(p))
		c.pend = append(c.pend, pendFrame{op: op, h: uint32(len(c.handles) - 1)})
		return nil
	case opPlace:
		if len(p) != placeLen {
			return fmt.Errorf("place: payload %d bytes, want %d", len(p), placeLen)
		}
		h := binary.LittleEndian.Uint32(p)
		if int(h) >= len(c.handles) {
			return fmt.Errorf("place: unknown handle %d", h)
		}
		start := math.Float64frombits(binary.LittleEndian.Uint64(p[4:]))
		end := math.Float64frombits(binary.LittleEndian.Uint64(p[12:]))
		demand := int(binary.LittleEndian.Uint32(p[20:]))
		f := pendFrame{op: op, h: h, demand: demand}
		if math.IsNaN(start) || math.IsNaN(end) || end < start {
			f.bad = true // interval.New would panic; answer RejectInvalid
		} else {
			f.iv = busytime.Interval{Start: start, End: end}
		}
		c.pend = append(c.pend, f)
		return nil
	case opRelease:
		if len(p) != releaseLen {
			return fmt.Errorf("release: payload %d bytes, want %d", len(p), releaseLen)
		}
		h := binary.LittleEndian.Uint32(p)
		if int(h) >= len(c.handles) {
			return fmt.Errorf("release: unknown handle %d", h)
		}
		c.pend = append(c.pend, pendFrame{op: op, h: h, job: int(binary.LittleEndian.Uint64(p[4:]))})
		return nil
	case opStats:
		if len(p) != statsLen {
			return fmt.Errorf("stats: payload %d bytes, want %d", len(p), statsLen)
		}
		h := binary.LittleEndian.Uint32(p)
		if int(h) >= len(c.handles) {
			return fmt.Errorf("stats: unknown handle %d", h)
		}
		c.pend = append(c.pend, pendFrame{op: op, h: h})
		return nil
	case opPing:
		c.pend = append(c.pend, pendFrame{op: op})
		return nil
	default:
		return fmt.Errorf("unknown opcode 0x%02x", op)
	}
}

// process answers every pending frame in order. Contiguous same-handle
// place runs land as one PlaceBatch — one shard-lock acquisition for the
// run — and each frame's endpoint histogram observes the batch's service
// time, so queueing behind a batch is visible in the percentiles.
func (c *dconn) process() error {
	t0 := time.Now()
	srv := c.s
	i := 0
	for i < len(c.pend) {
		f := &c.pend[i]
		switch f.op {
		case opPlace:
			if f.bad { // never reaches the session; see decode
				c.s.countReject(RejectInvalid)
				c.pbuf[0] = RejectInvalid
				if err := writeFrame(c.bw, &c.whdr, opReject, c.pbuf[:1]); err != nil {
					return err
				}
				i++
				continue
			}
			j := i + 1
			for j < len(c.pend) && c.pend[j].op == opPlace && c.pend[j].h == f.h && !c.pend[j].bad {
				j++
			}
			if err := c.placeRun(c.pend[i:j]); err != nil {
				return c.hangup(err)
			}
			i = j
		case opRelease:
			ok, err := srv.pool.Release(c.handles[f.h], f.job)
			if err != nil {
				ok = false // unknown feed index: report not-released, keep the connection
			}
			c.pbuf[0] = 0
			if ok {
				c.pbuf[0] = 1
			}
			if err := writeFrame(c.bw, &c.whdr, opReleased, c.pbuf[:1]); err != nil {
				return err
			}
			i++
		case opStats:
			st, _ := srv.pool.Stats(c.handles[f.h]) // zero stats for an unknown tenant
			c.jsonBuf.Reset()
			if err := stats.WriteJSON(&c.jsonBuf, st); err != nil {
				return c.hangup(err)
			}
			if err := writeFrame(c.bw, &c.whdr, opStatsOK, c.jsonBuf.Bytes()); err != nil {
				return err
			}
			i++
		case opOpen:
			binary.LittleEndian.PutUint32(c.pbuf[:], f.h)
			if err := writeFrame(c.bw, &c.whdr, opOpenOK, c.pbuf[:4]); err != nil {
				return err
			}
			i++
		case opPing:
			if err := writeFrame(c.bw, &c.whdr, opPong, nil); err != nil {
				return err
			}
			i++
		}
	}
	d := time.Since(t0)
	for i := range c.pend {
		switch c.pend[i].op {
		case opPlace:
			srv.placeHist.Observe(d)
		case opRelease:
			srv.releaseHist.Observe(d)
		case opStats:
			srv.statsHist.Observe(d)
		}
	}
	srv.frames.Add(uint64(len(c.pend)))
	return nil
}

// placeRun lands one contiguous same-handle run of place frames as a
// single PlaceBatch and writes the per-frame replies.
func (c *dconn) placeRun(run []pendFrame) error {
	c.reqs = c.reqs[:0]
	for k := range run {
		c.reqs = append(c.reqs, busytime.PlaceRequest{Iv: run[k].iv, Demand: run[k].demand})
	}
	if cap(c.res) < len(run) {
		c.res = make([]busytime.PlaceResult, len(run))
	}
	res := c.res[:len(run)]
	if err := c.s.pool.PlaceBatch(c.handles[run[0].h], c.reqs, res); err != nil {
		return err // length mismatch: a server bug, not client data
	}
	for k := range res {
		if res[k].Err != nil {
			code := rejectCode(res[k].Err)
			c.s.countReject(code)
			c.pbuf[0] = code
			if err := writeFrame(c.bw, &c.whdr, opReject, c.pbuf[:1]); err != nil {
				return err
			}
			continue
		}
		c.s.accepted.Add(1)
		binary.LittleEndian.PutUint32(c.pbuf[:], uint32(res[k].Machine))
		binary.LittleEndian.PutUint64(c.pbuf[4:], uint64(res[k].Job))
		if err := writeFrame(c.bw, &c.whdr, opPlaced, c.pbuf[:12]); err != nil {
			return err
		}
	}
	return nil
}

// hangup reports a protocol violation to the peer and ends the connection.
func (c *dconn) hangup(cause error) error {
	c.s.cfg.Logf("busyschedd: data conn %v: %v", c.nc.RemoteAddr(), cause)
	_ = writeFrame(c.bw, &c.whdr, opHangup, []byte(cause.Error()))
	_ = c.bw.Flush()
	return cause
}

// countReject attributes one typed rejection to its telemetry counter.
func (s *Server) countReject(code byte) {
	switch code {
	case RejectRate:
		s.rejRate.Add(1)
	case RejectLive:
		s.rejLive.Add(1)
	case RejectShutdown:
		s.rejShutdown.Add(1)
	default:
		s.rejInvalid.Add(1)
	}
}
