package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"busytime"
)

// startServer boots a daemon on ephemeral ports and tears it down with the
// test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.ControlAddr == "" && cfg.DataAddr == "" {
		cfg.ControlAddr, cfg.DataAddr = "127.0.0.1:0", "127.0.0.1:0"
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// get fetches a control-plane URL and decodes the JSON body.
func get(t *testing.T, srv *Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get("http://" + srv.ControlAddr().String() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestControlPlane(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr().String()

	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if code := get(t, srv, "/healthz", &health); code != 200 || health.Status != "ok" || health.Draining {
		t.Fatalf("healthz: code %d, %+v", code, health)
	}

	instance := `{"g":2,"jobs":[{"id":0,"start":0,"end":2},{"id":1,"start":1,"end":3},{"id":2,"start":2,"end":4}]}`
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(instance))
	if err != nil {
		t.Fatal(err)
	}
	var solved solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if solved.Algorithm != "firstfit" || solved.N != 3 || solved.G != 2 {
		t.Fatalf("solve echo: %+v", solved)
	}
	if solved.Machines < 1 || solved.Cost <= 0 || len(solved.Assignment) != 3 || solved.Ratio < 1 {
		t.Fatalf("solve result: %+v", solved)
	}

	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader("["+instance+","+instance+"]"))
	if err != nil {
		t.Fatal(err)
	}
	var batch []busytime.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch) != 2 || batch[0].Cost != batch[1].Cost || batch[0].Cost != solved.Cost {
		t.Fatalf("batch: %+v", batch)
	}

	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad instance: status %d, want 400", resp.StatusCode)
	}

	// Tenant lifecycle: a data-plane placement creates the session the
	// control plane then inspects, compares, and drops.
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, code, err := cl.Place(h, 0, 10, 1); err != nil || code != 0 {
		t.Fatalf("place: code %d, %v", code, err)
	}

	var tenants struct {
		Count   int      `json:"count"`
		Tenants []string `json:"tenants"`
	}
	if code := get(t, srv, "/v1/tenants", &tenants); code != 200 || tenants.Count != 1 || tenants.Tenants[0] != "acme" {
		t.Fatalf("tenants: code %d, %+v", code, tenants)
	}
	var st busytime.OnlineStats
	if code := get(t, srv, "/v1/tenants/acme/stats", &st); code != 200 || st.Placed != 1 || st.Live != 1 {
		t.Fatalf("tenant stats: code %d, %+v", code, st)
	}
	if code := get(t, srv, "/v1/tenants/ghost/stats", nil); code != 404 {
		t.Fatalf("ghost stats: code %d, want 404", code)
	}

	resp, err = http.Post(base+"/v1/tenants/acme/offline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cmp offlineResponse
	if err := json.NewDecoder(resp.Body).Decode(&cmp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || cmp.Tenant != "acme" || cmp.WindowCost <= 0 {
		t.Fatalf("offline: status %d, %+v", resp.StatusCode, cmp)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/tenants/acme", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("drop: status %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("re-drop: status %d, want 404", resp.StatusCode)
	}

	var snap StatsSnapshot
	if code := get(t, srv, "/stats", &snap); code != 200 {
		t.Fatalf("stats: code %d", code)
	}
	// Solve observes once per HTTP request: one /v1/solve + one /v1/batch.
	if snap.Frames == 0 || snap.Accepted != 1 || snap.Solve.Count != 2 || snap.Place.Count != 1 {
		t.Fatalf("stats counters: %+v", snap)
	}
}

// TestDataPlaneRoundTrip pins the protocol against the library: the same
// arrival stream placed through the daemon and through a direct OnlinePool
// must produce identical machines and feed indexes.
func TestDataPlaneRoundTrip(t *testing.T) {
	srv := startServer(t, Config{})

	direct, err := busytime.New()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := direct.OnlinePool(4, "firstfit")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("t0")
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		start := float64(i) * 0.5
		end := start + 3.7
		demand := 1 + i%2
		m, j, code, err := cl.Place(h, start, end, demand)
		if err != nil || code != 0 {
			t.Fatalf("place %d: code %d, %v", i, code, err)
		}
		wm, wj, err := pool.PlaceDemand("t0", busytime.NewInterval(start, end), demand)
		if err != nil {
			t.Fatal(err)
		}
		if m != wm || j != wj {
			t.Fatalf("arrival %d: daemon (m=%d, j=%d), library (m=%d, j=%d)", i, m, j, wm, wj)
		}
	}

	// Releases agree too, including the already-departed double release.
	ok, err := cl.Release(h, n-1)
	if err != nil || !ok {
		t.Fatalf("release: %v %v", ok, err)
	}
	if ok, _ := pool.Release("t0", n-1); !ok {
		t.Fatal("library release disagrees")
	}
	ok, err = cl.Release(h, n-1)
	if err != nil || ok {
		t.Fatalf("double release: ok=%v, %v", ok, err)
	}

	st, err := cl.Stats(h)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := pool.Stats("t0")
	if st != want {
		t.Fatalf("stats over the wire %+v != library %+v", st, want)
	}

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestDataPlanePipelined sends a mixed batch without intermediate reads and
// checks the replies come back in request order.
func TestDataPlanePipelined(t *testing.T) {
	srv := startServer(t, Config{ControlAddr: "127.0.0.1:0", DataAddr: "127.0.0.1:0", MaxBatch: 8})
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("pipe")
	if err != nil {
		t.Fatal(err)
	}

	const n = 64 // spans several MaxBatch=8 server batches
	for i := 0; i < n; i++ {
		if err := cl.SendPlace(h, float64(i), float64(i)+2, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SendStats(h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cl.SendRelease(h, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if r.Op != opPlaced || r.Job != i {
			t.Fatalf("reply %d: op 0x%02x job %d", i, r.Op, r.Job)
		}
	}
	r, err := cl.ReadReply()
	if err != nil || r.Op != opStatsOK {
		t.Fatalf("stats reply: op 0x%02x, %v", r.Op, err)
	}
	released := 0
	for i := 0; i < n; i++ {
		r, err := cl.ReadReply()
		if err != nil || r.Op != opReleased {
			t.Fatalf("release reply %d: op 0x%02x, %v", i, r.Op, err)
		}
		if r.OK {
			released++
		}
	}
	// Job i departs naturally once a later start passes i+2, so only the
	// tail of the stream is still live to release; at least those succeed.
	if released == 0 || cl.Pending() != 0 {
		t.Fatalf("released %d, pending %d", released, cl.Pending())
	}
}

// TestAdmissionRejectFrames maps every admission failure onto its typed
// reject frame and checks the daemon attributes them in /stats.
func TestAdmissionRejectFrames(t *testing.T) {
	srv := startServer(t, Config{
		ControlAddr: "127.0.0.1:0",
		DataAddr:    "127.0.0.1:0",
		Admission:   busytime.Admission{MaxLive: 2},
	})
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("capped")
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, _, code, err := cl.Place(h, float64(i), 100, 1); err != nil || code != 0 {
			t.Fatalf("place %d: code %d (%s), %v", i, code, RejectString(code), err)
		}
	}
	if _, _, code, err := cl.Place(h, 2, 100, 1); err != nil || code != RejectLive {
		t.Fatalf("over-cap place: code %d (%s), %v", code, RejectString(code), err)
	}
	// Malformed coordinates never reach the session: reversed endpoints and
	// NaN are answered with RejectInvalid, and the connection stays usable.
	if _, _, code, err := cl.Place(h, 5, 4, 1); err != nil || code != RejectInvalid {
		t.Fatalf("reversed interval: code %d (%s), %v", code, RejectString(code), err)
	}
	if _, _, code, err := cl.Place(h, math.NaN(), 10, 1); err != nil || code != RejectInvalid {
		t.Fatalf("NaN start: code %d (%s), %v", code, RejectString(code), err)
	}
	// Demand out of range is a session-level rejection, same typed frame —
	// judged on a fresh tenant so the live cap above doesn't shadow it.
	hd, err := cl.Open("demander")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, code, err := cl.Place(hd, 6, 10, 99); err != nil || code != RejectInvalid {
		t.Fatalf("demand 99: code %d (%s), %v", code, RejectString(code), err)
	}

	snap := srv.StatsSnapshot()
	if snap.Rejected.Live != 1 || snap.Rejected.Invalid != 3 || snap.Accepted != 2 {
		t.Fatalf("reject attribution: %+v", snap.Rejected)
	}

	// A rate-limited tenant: burst of 1, negligible refill.
	srv2 := startServer(t, Config{
		ControlAddr: "127.0.0.1:0",
		DataAddr:    "127.0.0.1:0",
		Admission:   busytime.Admission{Rate: 1e-9, Burst: 1},
	})
	cl2, err := Dial(srv2.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	h2, err := cl2.Open("throttled")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, code, err := cl2.Place(h2, 0, 10, 1); err != nil || code != 0 {
		t.Fatalf("first place: code %d, %v", code, err)
	}
	if _, _, code, err := cl2.Place(h2, 1, 10, 1); err != nil || code != RejectRate {
		t.Fatalf("second place: code %d (%s), %v", code, RejectString(code), err)
	}
}

// TestProtocolHangup pins the failure mode of a misbehaving client: a
// hangup frame naming the violation, then a closed connection.
func TestProtocolHangup(t *testing.T) {
	srv := startServer(t, Config{ControlAddr: "127.0.0.1:0", DataAddr: "127.0.0.1:0"})
	for name, frame := range map[string][]byte{
		"unknown opcode": {0, 0, 0, 0, 0x7f},
		"unknown handle": append([]byte{placeLen, 0, 0, 0, opPlace}, make([]byte, placeLen)...),
		"short place":    {2, 0, 0, 0, opPlace, 1, 2},
	} {
		nc, err := net.Dial("tcp", srv.DataAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		var hdr [frameHeader]byte
		op, payload, _, err := readFrameInto(nc, &hdr, nil)
		if err != nil || op != opHangup {
			t.Fatalf("%s: op 0x%02x payload %q, %v", name, op, payload, err)
		}
		if _, err := nc.Read(hdr[:1]); err != io.EOF {
			t.Fatalf("%s: connection still open after hangup: %v", name, err)
		}
		nc.Close()
	}
}

// TestDrainShutdown drives the drain sequence end to end: frames arriving
// during the grace window get typed shutdown rejects while releases still
// work, Shutdown returns clean, and no server goroutines survive.
func TestDrainShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := startServer(t, Config{
		ControlAddr: "127.0.0.1:0",
		DataAddr:    "127.0.0.1:0",
		DrainGrace:  time.Second,
	})
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("draining")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, code, err := cl.Place(h, 0, 100, 1); err != nil || code != 0 {
		t.Fatalf("pre-drain place: code %d, %v", code, err)
	}

	sd := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sd <- srv.Shutdown(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New placements during the grace window: typed shutdown reject.
	if _, _, code, err := cl.Place(h, 1, 100, 1); err != nil || code != RejectShutdown {
		t.Fatalf("draining place: code %d (%s), %v", code, RejectString(code), err)
	}
	// Finishing work is never rejected.
	if ok, err := cl.Release(h, 0); err != nil || !ok {
		t.Fatalf("draining release: ok=%v, %v", ok, err)
	}
	// Telemetry stays readable through the drain.
	if st, err := cl.Stats(h); err != nil || st.Released != 1 {
		t.Fatalf("draining stats: %+v, %v", st, err)
	}

	if err := <-sd; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The connection is gone and new dials fail: both listeners are down.
	if err := cl.Ping(); err == nil {
		t.Fatal("connection survived shutdown")
	}
	if _, err := net.DialTimeout("tcp", srv.DataAddr().String(), 250*time.Millisecond); err == nil {
		t.Fatal("data listener survived shutdown")
	}

	snap := srv.StatsSnapshot()
	if !snap.Draining || snap.Rejected.Shutdown != 1 {
		t.Fatalf("post-drain stats: %+v", snap)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// placeSlab builds the fixed framing of n place frames for handle h and
// returns the slab plus a patch function that rewrites the interval of
// every frame in place (no allocation) so successive batches keep the
// per-tenant arrival order advancing.
func placeSlab(n int, h uint32) ([]byte, func(t0 float64)) {
	const frameLen = frameHeader + placeLen
	slab := make([]byte, n*frameLen)
	for k := 0; k < n; k++ {
		f := slab[k*frameLen:]
		putHeader(f, opPlace, placeLen)
		binary.LittleEndian.PutUint32(f[frameHeader:], h)
		binary.LittleEndian.PutUint32(f[frameHeader+20:], 1)
	}
	patch := func(t0 float64) {
		for k := 0; k < n; k++ {
			f := slab[k*frameLen+frameHeader:]
			start := t0 + float64(k)
			binary.LittleEndian.PutUint64(f[4:], math.Float64bits(start))
			binary.LittleEndian.PutUint64(f[12:], math.Float64bits(start+0.5))
		}
	}
	return slab, patch
}

// TestServePlaceZeroAllocSteadyState is the acceptance gate: after warm-up,
// one full server batch pass — frame decode, PlaceBatch, reply encode,
// histogram observation — allocates nothing. It drives the connection loop
// directly over an in-memory reader, since AllocsPerRun measures the
// calling goroutine.
func TestServePlaceZeroAllocSteadyState(t *testing.T) {
	srv, err := New(Config{DataAddr: "127.0.0.1:0"}) // configured, never started
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(nil)
	c := &dconn{
		s:  srv,
		br: bufio.NewReaderSize(rd, 32<<10),
		bw: bufio.NewWriterSize(io.Discard, 32<<10),
	}

	var open bytes.Buffer
	var hdr [frameHeader]byte
	if err := writeFrame(&open, &hdr, opOpen, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	rd.Reset(open.Bytes())
	c.br.Reset(rd)
	if err := c.serveBatch(); err != nil {
		t.Fatal(err)
	}

	const batch = 16
	slab, patch := placeSlab(batch, 0)
	clock := 0.0
	step := func() {
		patch(clock)
		clock += batch
		rd.Reset(slab)
		c.br.Reset(rd)
		if err := c.serveBatch(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ { // warm-up: session ring, batch scratch, buffers
		step()
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state serve batch allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkServePlaceLoopback is the daemon's end-to-end hot path: batches
// of 16 pipelined place frames over real loopback TCP, both sides of the
// protocol in the measured loop. CI holds its -benchmem allocs/op (which
// count the server goroutine too) against ci/alloc-budget-serve-place.txt.
func BenchmarkServePlaceLoopback(b *testing.B) {
	srv, err := New(Config{DataAddr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("bench")
	if err != nil {
		b.Fatal(err)
	}

	const batch = 16
	clock := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		for k := 0; k < n; k++ {
			if err := cl.SendPlace(h, clock, clock+0.5, 1); err != nil {
				b.Fatal(err)
			}
			clock++
		}
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < n; k++ {
			r, err := cl.ReadReply()
			if err != nil {
				b.Fatal(err)
			}
			if r.Op != opPlaced {
				b.Fatalf("reply op 0x%02x (%s)", r.Op, RejectString(r.Code))
			}
		}
		done += n
	}
}

// TestServeThroughputGate is the ISSUE 9 acceptance bar: ≥ 1e6 placements/s
// end to end over loopback with batching ≥ 16. Wall-clock gates flake on
// loaded shared runners, so it only arms under BUSYTIME_SERVE_GATE=1 (the
// CI daemon job sets it).
func TestServeThroughputGate(t *testing.T) {
	if os.Getenv("BUSYTIME_SERVE_GATE") == "" {
		t.Skip("set BUSYTIME_SERVE_GATE=1 to run the loopback throughput gate")
	}
	srv := startServer(t, Config{ControlAddr: "127.0.0.1:0", DataAddr: "127.0.0.1:0"})
	cl, err := Dial(srv.DataAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("gate")
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	const total = 2_000_000
	place := func(n int, clock *float64) {
		for done := 0; done < n; {
			m := batch
			if n-done < m {
				m = n - done
			}
			for k := 0; k < m; k++ {
				if err := cl.SendPlace(h, *clock, *clock+0.5, 1); err != nil {
					t.Fatal(err)
				}
				*clock++
			}
			if err := cl.Flush(); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < m; k++ {
				if r, err := cl.ReadReply(); err != nil || r.Op != opPlaced {
					t.Fatalf("reply op 0x%02x, %v", r.Op, err)
				}
			}
			done += m
		}
	}
	clock := 0.0
	place(total/10, &clock) // warm-up
	t0 := time.Now()
	place(total, &clock)
	rate := float64(total) / time.Since(t0).Seconds()
	t.Logf("loopback: %.0f placements/s (batch %d)", rate, batch)
	if rate < 1e6 {
		t.Fatalf("throughput %.0f placements/s below the 1e6 gate", rate)
	}
}

// TestStatsSnapshotJSON pins the telemetry document's field names — the
// scripting surface busybench and the e2e test parse.
func TestStatsSnapshotJSON(t *testing.T) {
	srv, err := New(Config{DataAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srv.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"uptime_sec"`, `"draining"`, `"tenants"`, `"frames"`, `"accepted"`,
		`"rejected"`, `"rate"`, `"live"`, `"shutdown"`, `"invalid"`,
		`"place"`, `"release"`, `"tenant_stats"`, `"solve"`,
		`"count"`, `"mean_ns"`, `"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"p999_ns"`, `"max_ns"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(key)) {
			t.Fatalf("stats document missing %s:\n%s", key, buf.String())
		}
	}
	var round StatsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("stats document does not round-trip: %v", err)
	}
}

// TestRejectString covers the wire-code naming used in logs and bench output.
func TestRejectString(t *testing.T) {
	for code, want := range map[byte]string{
		RejectRate:     "rate-limited",
		RejectLive:     "live-limit",
		RejectShutdown: "shutting-down",
		RejectInvalid:  "invalid",
		0x42:           fmt.Sprintf("reject(%d)", 0x42),
	} {
		if got := RejectString(code); got != want {
			t.Errorf("RejectString(%d) = %q, want %q", code, got, want)
		}
	}
}
