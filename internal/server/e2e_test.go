package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"busytime"
)

// buildBinary compiles a cmd/ package into the test's temp dir once.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, "busytime/"+pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestE2EDaemon is the full-system test: the real busyschedd binary on
// ephemeral ports, a real client over TCP, the real busybench binary as
// load, and a real SIGTERM — asserting the drain exits 0 with the
// percentile telemetry flushed to stderr.
func TestE2EDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs real binaries")
	}
	daemon := buildBinary(t, "cmd/busyschedd")
	bench := buildBinary(t, "cmd/busybench")

	cmd := exec.Command(daemon, "-control", "127.0.0.1:0", "-data", "127.0.0.1:0", "-drain-grace", "500ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its resolved addresses on stdout.
	var controlAddr, dataAddr string
	sc := bufio.NewScanner(stdout)
	addrTimeout := time.AfterFunc(10*time.Second, func() { cmd.Process.Kill() })
	for (controlAddr == "" || dataAddr == "") && sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "control plane listening on "); ok {
			controlAddr = after
		}
		if _, after, ok := strings.Cut(line, "data plane listening on "); ok {
			dataAddr = after
		}
	}
	addrTimeout.Stop()
	if controlAddr == "" || dataAddr == "" {
		t.Fatalf("daemon never announced its addresses (stderr: %s)", stderr.String())
	}
	go func() { // keep draining stdout so the daemon never blocks on the pipe
		for sc.Scan() {
		}
	}()

	// Drive the data plane through the real client.
	cl, err := Dial(dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Open("e2e")
	if err != nil {
		t.Fatal(err)
	}
	var firstJob int
	for i := 0; i < 100; i++ {
		m, j, code, err := cl.Place(h, float64(i), float64(i)+5, 1)
		if err != nil || code != 0 {
			t.Fatalf("place %d: code %d, %v", i, code, err)
		}
		if m < 0 || j != i {
			t.Fatalf("place %d: machine %d job %d", i, m, j)
		}
		if i == 0 {
			firstJob = j
		}
	}
	if ok, err := cl.Release(h, firstJob); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("job 0 should have departed naturally before the release")
	}
	st, err := cl.Stats(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != 100 {
		t.Fatalf("stats: %+v", st)
	}

	// Control plane over real HTTP.
	resp, err := http.Get("http://" + controlAddr + "/v1/tenants/e2e/stats")
	if err != nil {
		t.Fatal(err)
	}
	var hst busytime.OnlineStats
	if err := json.NewDecoder(resp.Body).Decode(&hst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hst.Placed != 100 {
		t.Fatalf("HTTP tenant stats: %d, %+v", resp.StatusCode, hst)
	}

	// Real load: the busybench binary against the live daemon.
	benchOut, err := exec.Command(bench,
		"-addr", dataAddr, "-n", "20000", "-conns", "2", "-tenants", "4",
		"-live", "64", "-batch", "16", "-json").Output()
	if err != nil {
		t.Fatalf("busybench: %v\n%s", err, benchOut)
	}
	var loaded struct {
		Placements uint64            `json:"placements"`
		PerSec     float64           `json:"placements_per_sec"`
		Rejects    map[string]uint64 `json:"rejects"`
	}
	if err := json.Unmarshal(benchOut, &loaded); err != nil {
		t.Fatalf("busybench output: %v\n%s", err, benchOut)
	}
	if loaded.Placements != 20000 || len(loaded.Rejects) != 0 || loaded.PerSec <= 0 {
		t.Fatalf("busybench: %+v", loaded)
	}

	// Graceful SIGTERM: clean exit 0 with the telemetry document — latency
	// percentiles included — flushed to stderr.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not exit within 15s of SIGTERM")
	}

	var final StatsSnapshot
	if err := json.Unmarshal(stderr.Bytes(), &final); err != nil {
		t.Fatalf("final stats flush is not the telemetry document: %v\n%s", err, stderr.String())
	}
	if !final.Draining || final.Accepted < 20100 || final.Place.Count < 20100 {
		t.Fatalf("final stats: %+v", final)
	}
	if final.Place.P99 <= 0 || final.Place.P999 < final.Place.P99 {
		t.Fatalf("final percentiles: %+v", final.Place)
	}
	// The connection the daemon drained under us is dead.
	if err := cl.Ping(); err == nil {
		t.Fatal("connection survived daemon exit")
	}
}
