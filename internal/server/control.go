package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"busytime"
	"busytime/internal/stats"
)

// maxControlBody bounds a control-plane request body (instances are JSON;
// a million-job instance is ~50 MB, far above any test workload).
const maxControlBody = 64 << 20

// StatsSnapshot is the daemon's telemetry document: lifetime counters,
// typed-reject attribution, and per-endpoint latency percentiles. It is
// what GET /stats returns and what the daemon flushes to stderr on
// SIGTERM, through the library's shared JSON encoder.
type StatsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
	Tenants   int     `json:"tenants"`

	Frames   uint64 `json:"frames"`   // data-plane request frames processed
	Accepted uint64 `json:"accepted"` // placements accepted

	Rejected RejectCounts `json:"rejected"`

	Place       stats.HistSummary `json:"place"`        // data-plane place latency
	Release     stats.HistSummary `json:"release"`      // data-plane release latency
	TenantStats stats.HistSummary `json:"tenant_stats"` // data-plane stats latency
	Solve       stats.HistSummary `json:"solve"`        // control-plane solve latency
}

// RejectCounts attributes every typed data-plane rejection.
type RejectCounts struct {
	Rate     uint64 `json:"rate"`
	Live     uint64 `json:"live"`
	Shutdown uint64 `json:"shutdown"`
	Invalid  uint64 `json:"invalid"`
}

// StatsSnapshot captures the daemon's current telemetry.
func (s *Server) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		UptimeSec: time.Since(s.start).Seconds(),
		Draining:  s.draining.Load(),
		Tenants:   len(s.pool.Tenants()),
		Frames:    s.frames.Load(),
		Accepted:  s.accepted.Load(),
		Rejected: RejectCounts{
			Rate:     s.rejRate.Load(),
			Live:     s.rejLive.Load(),
			Shutdown: s.rejShutdown.Load(),
			Invalid:  s.rejInvalid.Load(),
		},
		Place:       s.placeHist.Summary(),
		Release:     s.releaseHist.Summary(),
		TenantStats: s.statsHist.Summary(),
		Solve:       s.solveHist.Summary(),
	}
}

// WriteStats writes the telemetry snapshot as indented JSON — the same
// bytes GET /stats serves, reused by the daemon's shutdown flush and the
// CLI's -json paths.
func (s *Server) WriteStats(w io.Writer) error {
	return stats.WriteJSON(w, s.StatsSnapshot())
}

// solveResponse is POST /v1/solve's reply.
type solveResponse struct {
	Algorithm  string      `json:"algorithm"`
	N          int         `json:"n"`
	G          int         `json:"g"`
	Machines   int         `json:"machines"`
	Cost       float64     `json:"cost"`
	LowerBound float64     `json:"lower_bound"`
	Ratio      float64     `json:"ratio"`
	Assignment map[int]int `json:"assignment"` // Job.ID → machine
}

// offlineResponse is POST /v1/tenants/{name}/offline's reply.
type offlineResponse struct {
	Tenant     string  `json:"tenant"`
	OnlineCost float64 `json:"online_cost"`
	WindowCost float64 `json:"window_cost"`
	Fractional float64 `json:"fractional_bound"`
	Ratio      float64 `json:"ratio"`
}

// controlMux routes the HTTP control plane.
func (s *Server) controlMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /v1/tenants/{name}/stats", s.handleTenantStats)
	mux.HandleFunc("POST /v1/tenants/{name}/offline", s.handleTenantOffline)
	mux.HandleFunc("DELETE /v1/tenants/{name}", s.handleTenantDrop)
	return mux
}

// writeJSON serves v with the library's shared encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = stats.WriteJSON(w, v)
}

// httpError serves a JSON error document.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.draining.Load()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var in busytime.Instance
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxControlBody)).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "decoding instance: %v", err)
		return
	}
	res, err := s.solver.Solve(r.Context(), &in)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solve: %v", err)
		return
	}
	resp := solveResponse{
		Algorithm:  res.Algorithm,
		N:          len(in.Jobs),
		G:          in.G,
		Machines:   res.Machines,
		Cost:       res.Cost,
		LowerBound: res.LowerBound(),
		Ratio:      res.Ratio(),
		Assignment: res.Schedule.Assignment(),
	}
	s.solveHist.Observe(time.Since(t0))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var instances []*busytime.Instance
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxControlBody)).Decode(&instances); err != nil {
		httpError(w, http.StatusBadRequest, "decoding instances: %v", err)
		return
	}
	results, err := s.solver.SolveBatch(r.Context(), instances)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "batch: %v", err)
		return
	}
	s.solveHist.Observe(time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	_ = busytime.WriteBatchJSON(w, results)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	tenants := s.pool.Tenants()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(tenants), "tenants": tenants})
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.pool.Stats(name)
	if !ok {
		httpError(w, http.StatusNotFound, "tenant %q has no session", name)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTenantOffline(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cmp, err := s.pool.Offline(name)
	if err != nil {
		httpError(w, http.StatusNotFound, "offline comparison: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, offlineResponse{
		Tenant:     name,
		OnlineCost: cmp.OnlineCost,
		WindowCost: cmp.WindowCost,
		Fractional: cmp.Bounds.Fractional,
		Ratio:      cmp.Ratio,
	})
}

func (s *Server) handleTenantDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.pool.Drop(name) {
		httpError(w, http.StatusNotFound, "tenant %q has no session", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}
