// Package server implements busyschedd, the scheduling service daemon: a
// control plane (HTTP/JSON: one-shot solves, tenant lifecycle, telemetry)
// and a data plane (a length-prefixed binary framed protocol over TCP for
// per-tenant streaming Place/Release against rolling-horizon sessions).
// Both planes are thin wrappers over the public busytime API — the daemon
// consumes exactly the surface external users get — plus the internal
// telemetry and IO helpers. The split mirrors the CLI architecture: all
// logic lives here as a testable library, cmd/busyschedd is main() glue.
//
// # Wire protocol (data plane)
//
// Every frame, both directions, is a little-endian header followed by an
// op-specific payload:
//
//	uint32  payload length (bytes after the header)
//	uint8   opcode
//	...     payload
//
// Client → server ops:
//
//	open    0x01  payload = tenant key (raw bytes) → openOK with the uint32
//	              handle every later frame on this connection uses
//	place   0x02  uint32 handle, float64 start, float64 end, uint32 demand
//	release 0x03  uint32 handle, uint64 job (the feed index place returned)
//	stats   0x04  uint32 handle
//	ping    0x05  empty
//
// Server → client replies, one per request frame, in request order:
//
//	openOK   0x81  uint32 handle
//	placed   0x82  uint32 machine, uint64 job
//	released 0x83  uint8 ok
//	statsOK  0x84  OnlineStats JSON (the shared telemetry encoding)
//	pong     0x85  empty
//	reject   0xee  uint8 code — a typed refusal of one place frame:
//	               1 rate-limited, 2 live-limit, 3 shutting down, 4 invalid
//	               (bad interval, demand out of range, out-of-order start)
//	hangup   0xef  error text; a protocol violation — unknown opcode,
//	               malformed payload, unknown handle — after which the
//	               server closes the connection
//
// The protocol is deliberately dumb: no negotiation, no compression, no
// per-frame tenant strings (the open handshake interns the key once, so the
// steady-state path never hashes or allocates a string), and replies come
// strictly in request order so a client can pipeline N frames and read N
// replies — the batching the server exploits by landing every contiguous
// same-handle run of place frames as one PlaceBatch under one shard-lock
// acquisition.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"busytime"
)

// Frame header and opcode constants; see the package comment for layout.
const (
	frameHeader = 5

	// maxFramePayload bounds a single frame. Data-plane requests are ≤ 24
	// bytes; the bound exists so a corrupt or hostile length prefix cannot
	// make the server allocate gigabytes.
	maxFramePayload = 1 << 16

	// maxHandles bounds tenant handles per connection.
	maxHandles = 1 << 10
)

const (
	opOpen    = 0x01
	opPlace   = 0x02
	opRelease = 0x03
	opStats   = 0x04
	opPing    = 0x05

	opOpenOK   = 0x81
	opPlaced   = 0x82
	opReleased = 0x83
	opStatsOK  = 0x84
	opPong     = 0x85
	opReject   = 0xee
	opHangup   = 0xef
)

// Typed reject codes carried by opReject frames.
const (
	RejectRate     = 1 // tenant placement rate exceeded (Admission.Rate)
	RejectLive     = 2 // tenant live-job cap reached (Admission.MaxLive)
	RejectShutdown = 3 // daemon draining; connection will close after replies
	RejectInvalid  = 4 // bad interval, demand out of range, out-of-order start
)

// rejectCode maps a placement error onto its wire code.
func rejectCode(err error) byte {
	switch {
	case errors.Is(err, busytime.ErrPoolClosed):
		return RejectShutdown
	case errors.Is(err, busytime.ErrLiveLimit):
		return RejectLive
	case errors.Is(err, busytime.ErrRateLimit):
		return RejectRate
	default:
		return RejectInvalid
	}
}

// RejectString names a reject code for logs and error messages.
func RejectString(code byte) string {
	switch code {
	case RejectRate:
		return "rate-limited"
	case RejectLive:
		return "live-limit"
	case RejectShutdown:
		return "shutting-down"
	case RejectInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("reject(%d)", code)
	}
}

// putHeader writes the frame header into b[:frameHeader].
func putHeader(b []byte, op byte, payloadLen int) {
	binary.LittleEndian.PutUint32(b, uint32(payloadLen))
	b[4] = op
}

// readFrameInto reads one frame, returning the opcode and the payload in
// buf's storage (grown as needed and returned); the payload aliases the
// buffer and is valid until the next call.
func readFrameInto(r io.Reader, hdr *[frameHeader]byte, buf []byte) (op byte, payload, newBuf []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return 0, nil, buf, fmt.Errorf("frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return hdr[4], buf, buf, nil
}

// writeFrame writes a complete frame (header + payload) to w using scratch
// for the header; payload may be nil.
func writeFrame(w io.Writer, scratch *[frameHeader]byte, op byte, payload []byte) error {
	putHeader(scratch[:], op, len(payload))
	if _, err := w.Write(scratch[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}
