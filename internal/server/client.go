package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"

	"busytime"
)

// Client speaks the data-plane protocol. It is deliberately the only
// client implementation in the tree — busybench, the e2e test and the
// protocol tests all drive the daemon through it, so the client and server
// halves of the framing can never drift apart. Send* methods buffer;
// Flush pushes the batch; replies come back in send order via ReadReply.
// Not safe for concurrent use: pipeline from one goroutine, or use one
// Client per connection. The steady-state place/reply cycle allocates
// nothing.
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	hdr     [frameHeader]byte
	whdr    [frameHeader]byte
	pbuf    [24]byte
	rbuf    []byte
	pending int // replies owed by the server
}

// Dial connects to a daemon's data plane.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (net.Pipe in tests).
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Reply is one server reply frame. Payload (statsOK JSON, hangup text)
// aliases the client's read buffer and is valid until the next ReadReply.
type Reply struct {
	Op      byte
	Handle  uint32 // openOK
	Machine int    // placed
	Job     int    // placed
	OK      bool   // released
	Code    byte   // reject
	Payload []byte // statsOK / hangup
}

// IsPlaced reports a successful placement reply.
func (r Reply) IsPlaced() bool { return r.Op == opPlaced }

// IsReject reports a typed rejection reply; Code then names the reason
// (see RejectString).
func (r Reply) IsReject() bool { return r.Op == opReject }

// Open interns the tenant key on this connection and returns the handle
// every later frame uses. It flushes and drains all outstanding replies
// first, so it must not be interleaved into a pipelined batch.
func (c *Client) Open(tenant string) (uint32, error) {
	if err := writeFrame(c.bw, &c.whdr, opOpen, []byte(tenant)); err != nil {
		return 0, err
	}
	c.pending++
	if err := c.Flush(); err != nil {
		return 0, err
	}
	for c.pending > 1 { // drain pipelined replies queued before the open
		if _, err := c.ReadReply(); err != nil {
			return 0, err
		}
	}
	r, err := c.ReadReply()
	if err != nil {
		return 0, err
	}
	if r.Op != opOpenOK {
		return 0, fmt.Errorf("open %q: reply op 0x%02x", tenant, r.Op)
	}
	return r.Handle, nil
}

// SendPlace buffers one place frame; the reply (placed or reject) arrives
// in order via ReadReply after a Flush.
func (c *Client) SendPlace(h uint32, start, end float64, demand int) error {
	binary.LittleEndian.PutUint32(c.pbuf[:], h)
	binary.LittleEndian.PutUint64(c.pbuf[4:], math.Float64bits(start))
	binary.LittleEndian.PutUint64(c.pbuf[12:], math.Float64bits(end))
	binary.LittleEndian.PutUint32(c.pbuf[20:], uint32(demand))
	if err := writeFrame(c.bw, &c.whdr, opPlace, c.pbuf[:placeLen]); err != nil {
		return err
	}
	c.pending++
	return nil
}

// SendRelease buffers one release frame.
func (c *Client) SendRelease(h uint32, job int) error {
	binary.LittleEndian.PutUint32(c.pbuf[:], h)
	binary.LittleEndian.PutUint64(c.pbuf[4:], uint64(job))
	if err := writeFrame(c.bw, &c.whdr, opRelease, c.pbuf[:releaseLen]); err != nil {
		return err
	}
	c.pending++
	return nil
}

// SendStats buffers one stats frame.
func (c *Client) SendStats(h uint32) error {
	binary.LittleEndian.PutUint32(c.pbuf[:], h)
	if err := writeFrame(c.bw, &c.whdr, opStats, c.pbuf[:statsLen]); err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush pushes every buffered frame to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Pending reports how many replies the server still owes.
func (c *Client) Pending() int { return c.pending }

// ReadReply reads the next reply frame, in send order.
func (c *Client) ReadReply() (Reply, error) {
	op, payload, buf, err := readFrameInto(c.br, &c.hdr, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return Reply{}, err
	}
	if c.pending > 0 {
		c.pending--
	}
	r := Reply{Op: op}
	switch op {
	case opOpenOK:
		if len(payload) != 4 {
			return r, fmt.Errorf("openOK payload %d bytes", len(payload))
		}
		r.Handle = binary.LittleEndian.Uint32(payload)
	case opPlaced:
		if len(payload) != 12 {
			return r, fmt.Errorf("placed payload %d bytes", len(payload))
		}
		r.Machine = int(binary.LittleEndian.Uint32(payload))
		r.Job = int(binary.LittleEndian.Uint64(payload[4:]))
	case opReleased:
		if len(payload) != 1 {
			return r, fmt.Errorf("released payload %d bytes", len(payload))
		}
		r.OK = payload[0] == 1
	case opReject:
		if len(payload) != 1 {
			return r, fmt.Errorf("reject payload %d bytes", len(payload))
		}
		r.Code = payload[0]
	case opStatsOK, opHangup:
		r.Payload = payload
	case opPong:
	default:
		return r, fmt.Errorf("unknown reply op 0x%02x", op)
	}
	return r, nil
}

// Place is the unpipelined convenience: one frame out, one reply back.
// A typed rejection comes back as (-1, -1, code, nil).
func (c *Client) Place(h uint32, start, end float64, demand int) (machine, job int, code byte, err error) {
	if err := c.SendPlace(h, start, end, demand); err != nil {
		return 0, 0, 0, err
	}
	if err := c.Flush(); err != nil {
		return 0, 0, 0, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return 0, 0, 0, err
	}
	switch r.Op {
	case opPlaced:
		return r.Machine, r.Job, 0, nil
	case opReject:
		return -1, -1, r.Code, nil
	case opHangup:
		return 0, 0, 0, fmt.Errorf("server hangup: %s", r.Payload)
	default:
		return 0, 0, 0, fmt.Errorf("place: reply op 0x%02x", r.Op)
	}
}

// Release is the unpipelined convenience for one release frame.
func (c *Client) Release(h uint32, job int) (bool, error) {
	if err := c.SendRelease(h, job); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return false, err
	}
	if r.Op != opReleased {
		return false, fmt.Errorf("release: reply op 0x%02x", r.Op)
	}
	return r.OK, nil
}

// Stats fetches and decodes the tenant's telemetry.
func (c *Client) Stats(h uint32) (busytime.OnlineStats, error) {
	var st busytime.OnlineStats
	if err := c.SendStats(h); err != nil {
		return st, err
	}
	if err := c.Flush(); err != nil {
		return st, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return st, err
	}
	if r.Op != opStatsOK {
		return st, fmt.Errorf("stats: reply op 0x%02x", r.Op)
	}
	if err := json.Unmarshal(r.Payload, &st); err != nil {
		return st, err
	}
	return st, nil
}

// Ping round-trips an empty frame (a liveness check that also drains the
// write buffer).
func (c *Client) Ping() error {
	if err := writeFrame(c.bw, &c.whdr, opPing, nil); err != nil {
		return err
	}
	c.pending++
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadReply()
	if err != nil {
		return err
	}
	if r.Op != opPong {
		return fmt.Errorf("ping: reply op 0x%02x", r.Op)
	}
	return nil
}
