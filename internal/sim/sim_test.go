package sim

import (
	"math"
	"testing"
	"testing/quick"

	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestMeasuredBusyMatchesAnalytic(t *testing.T) {
	in := core.NewInstance(2, iv(0, 2), iv(1, 3), iv(5, 6))
	s := core.NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	s.Assign(2, m)
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	// Busy: [0,3] ∪ [5,6] = 4.
	if math.Abs(rep.TotalBusy-4) > 1e-12 {
		t.Errorf("TotalBusy = %v, want 4", rep.TotalBusy)
	}
	if rep.Machines[0].Switches != 2 {
		t.Errorf("switches = %d, want 2 (gap at [3,5])", rep.Machines[0].Switches)
	}
	if rep.PeakLoad != 2 {
		t.Errorf("peak = %d, want 2", rep.PeakLoad)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("unexpected violations: %v", rep.Violations)
	}
}

func TestTouchingJobsKeepMachineOn(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(1, 2))
	s := core.NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machines[0].Switches != 1 {
		t.Errorf("switches = %d, want 1 (no idle gap at touch point)", rep.Machines[0].Switches)
	}
	if rep.TotalBusy != 2 {
		t.Errorf("busy = %v, want 2", rep.TotalBusy)
	}
	// Closed semantics: both jobs active at t=1 → peak 2.
	if rep.PeakLoad != 2 {
		t.Errorf("peak = %d, want 2", rep.PeakLoad)
	}
}

func TestViolationDetected(t *testing.T) {
	in := core.NewInstance(1, iv(0, 2), iv(1, 3))
	s := core.NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("overload not detected")
	}
	v := rep.Violations[0]
	if v.Machine != 0 || v.T != 1 || v.Load != 2 {
		t.Errorf("violation = %+v", v)
	}
	if Check(s, 1e-9) == nil {
		t.Error("Check accepted violating schedule")
	}
}

func TestDemandWeightedLoad(t *testing.T) {
	in := core.NewInstance(3, iv(0, 2), iv(1, 3))
	in.Jobs[0].Demand = 2
	s := core.NewSchedule(in)
	m := s.AssignNew(0)
	s.Assign(1, m)
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakLoad != 3 {
		t.Errorf("peak = %d, want 3 (2+1)", rep.PeakLoad)
	}
	if len(rep.Violations) != 0 {
		t.Error("feasible demand schedule flagged")
	}
}

func TestUnassignedJobRejected(t *testing.T) {
	in := core.NewInstance(2, iv(0, 1), iv(2, 3))
	s := core.NewSchedule(in)
	s.AssignNew(0)
	if _, err := Replay(s); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestEmptySchedule(t *testing.T) {
	s := core.NewSchedule(core.NewInstance(2))
	rep, err := Replay(s)
	if err != nil || rep.TotalBusy != 0 || rep.Events != 0 {
		t.Errorf("empty replay: %+v err=%v", rep, err)
	}
}

func TestQuickSimAgreesWithCost(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		in := generator.General(seed, int(nn%40)+1, int(gg%4)+1, 50, 12)
		s := firstfit.Schedule(in)
		return Check(s, 1e-6) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPerMachineBusyMatches(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		in := generator.General(seed, int(nn%25)+1, 3, 30, 10)
		s := firstfit.Schedule(in)
		rep, err := Replay(s)
		if err != nil {
			return false
		}
		for m := range rep.Machines {
			if math.Abs(rep.Machines[m].Busy-s.MachineBusy(m)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkReplay1k(b *testing.B) {
	in := generator.General(7, 1000, 4, 500, 30)
	s := firstfit.Schedule(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(s); err != nil {
			b.Fatal(err)
		}
	}
}
