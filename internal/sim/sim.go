// Package sim replays a schedule as a discrete-event simulation and
// measures, independently of the analytic cost accounting in core, each
// machine's busy time, peak load and any capacity violations. It is the
// cross-check that the library's span-based cost formula corresponds to what
// a machine executing the schedule would actually bill.
//
// Events are processed in time order with starts before ends at equal
// timestamps, matching the closed-interval semantics: a job ending at t and
// a job starting at t are simultaneously active at t, so the machine never
// goes idle between them.
package sim

import (
	"fmt"
	"slices"

	"busytime/internal/core"
)

// EventKind distinguishes job starts from job completions.
type EventKind int

// Event kinds.
const (
	JobStart EventKind = iota
	JobEnd
)

func (k EventKind) String() string {
	if k == JobStart {
		return "start"
	}
	return "end"
}

// Event is one simulation event on a machine.
type Event struct {
	T       float64
	Kind    EventKind
	Job     int // job index within the instance
	Machine int
}

// Violation records a capacity overrun observed during replay.
type Violation struct {
	Machine int
	T       float64
	Load    int // demand-weighted load after the offending start
}

// MachineReport aggregates one machine's replay.
type MachineReport struct {
	Machine  int
	Jobs     int
	Busy     float64 // measured busy time (on/off integration)
	PeakLoad int     // max demand-weighted simultaneous load
	Switches int     // number of power-on transitions
}

// Report is the result of replaying a complete schedule.
type Report struct {
	Machines   []MachineReport
	TotalBusy  float64
	PeakLoad   int
	Violations []Violation
	Events     int
}

// Replay runs the schedule through the discrete-event simulation. The
// schedule need not be feasible — violations are recorded, not rejected —
// but every job must be assigned.
func Replay(s *core.Schedule) (*Report, error) {
	in := s.Instance()
	for j := 0; j < in.N(); j++ {
		if s.MachineOf(j) == core.Unassigned {
			return nil, fmt.Errorf("sim: job index %d unassigned", j)
		}
	}
	events := make([]Event, 0, 2*in.N())
	for j, job := range in.Jobs {
		m := s.MachineOf(j)
		events = append(events,
			Event{T: job.Iv.Start, Kind: JobStart, Job: j, Machine: m},
			Event{T: job.Iv.End, Kind: JobEnd, Job: j, Machine: m},
		)
	}
	slices.SortFunc(events, func(ea, eb Event) int {
		if ea.T != eb.T {
			if ea.T < eb.T {
				return -1
			}
			return 1
		}
		if ea.Kind != eb.Kind {
			return int(ea.Kind) - int(eb.Kind) // starts before ends (closed semantics)
		}
		return ea.Job - eb.Job
	})

	type mstate struct {
		load     int
		busy     float64
		onSince  float64
		on       bool
		peak     int
		jobs     int
		switches int
	}
	states := make([]*mstate, s.NumMachines())
	for i := range states {
		states[i] = &mstate{}
	}
	rep := &Report{Events: len(events)}
	for _, ev := range events {
		st := states[ev.Machine]
		switch ev.Kind {
		case JobStart:
			st.jobs++
			if !st.on {
				st.on = true
				st.onSince = ev.T
				st.switches++
			}
			st.load += in.Jobs[ev.Job].Demand
			if st.load > st.peak {
				st.peak = st.load
			}
			if st.load > in.G {
				rep.Violations = append(rep.Violations, Violation{
					Machine: ev.Machine, T: ev.T, Load: st.load,
				})
			}
		case JobEnd:
			st.load -= in.Jobs[ev.Job].Demand
			if st.load == 0 && st.on {
				st.on = false
				st.busy += ev.T - st.onSince
			}
		}
	}
	rep.Machines = make([]MachineReport, len(states))
	for m, st := range states {
		if st.on {
			return nil, fmt.Errorf("sim: machine %d still on after replay (unbalanced events)", m)
		}
		rep.Machines[m] = MachineReport{
			Machine:  m,
			Jobs:     st.jobs,
			Busy:     st.busy,
			PeakLoad: st.peak,
			Switches: st.switches,
		}
		rep.TotalBusy += st.busy
		if st.peak > rep.PeakLoad {
			rep.PeakLoad = st.peak
		}
	}
	return rep, nil
}

// Check replays the schedule and returns an error when the measured busy
// time disagrees with the analytic cost by more than tol or any capacity
// violation occurred. It is the library's end-to-end consistency assertion.
func Check(s *core.Schedule, tol float64) error {
	rep, err := Replay(s)
	if err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		v := rep.Violations[0]
		return fmt.Errorf("sim: machine %d load %d > g at t=%v (%d violations total)",
			v.Machine, v.Load, v.T, len(rep.Violations))
	}
	if d := rep.TotalBusy - s.Cost(); d > tol || d < -tol {
		return fmt.Errorf("sim: measured busy %v != analytic cost %v", rep.TotalBusy, s.Cost())
	}
	return nil
}
