package xrand

import (
	"math"
	"testing"
)

// TestDeterminism pins that the same seed replays the same stream — the
// contract every generator and test suite in the tree leans on.
func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

// TestDistinctSeeds checks that nearby seeds land in immediately different
// sequences (the splitmix64 finalizer avalanches the Weyl state).
func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across seeds 1 and 2", same)
	}
}

// TestShardDeterministic pins Shard's contract: the derived stream depends
// on (seed, shard) alone, so any assignment of shards to workers reproduces
// identical output.
func TestShardDeterministic(t *testing.T) {
	for shard := 0; shard < 8; shard++ {
		a, b := Shard(7, shard), Shard(7, shard)
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("shard %d not deterministic at draw %d", shard, i)
			}
		}
	}
}

// TestShardIndependence checks that sibling shards (and the base New stream)
// produce pairwise different sequences: derived states are avalanche hashes,
// not offsets into one shared Weyl orbit, so shard streams never alias the
// way state+i*golden slices of a single sequence would.
func TestShardIndependence(t *testing.T) {
	const shards, draws = 16, 256
	streams := make([][]uint64, shards+1)
	base := New(99)
	streams[0] = make([]uint64, draws)
	for i := range streams[0] {
		streams[0][i] = base.Uint64()
	}
	for s := 0; s < shards; s++ {
		r := Shard(99, s)
		streams[s+1] = make([]uint64, draws)
		for i := range streams[s+1] {
			streams[s+1][i] = r.Uint64()
		}
	}
	for a := 0; a <= shards; a++ {
		for b := a + 1; b <= shards; b++ {
			same := 0
			for i := 0; i < draws; i++ {
				if streams[a][i] == streams[b][i] {
					same++
				}
			}
			if same > 0 {
				t.Fatalf("streams %d and %d agree on %d/%d draws", a, b, same, draws)
			}
		}
	}
}

// TestShardSeedSensitivity checks the same shard index under different seeds
// yields different streams.
func TestShardSeedSensitivity(t *testing.T) {
	a, b := Shard(1, 3), Shard(2, 3)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws for shard 3 of seeds 1 and 2", same)
	}
}

// TestFloat64Range pins Float64 into [0, 1) and sanity-checks the mean.
func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

// TestIntnBounds pins Intn into [0, n) and hits every residue of a small n.
func TestIntnBounds(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d residues in 1000 draws", len(seen))
	}
}

// TestExpFloat64Positive pins the exponential sampler's support and mean.
func TestExpFloat64Positive(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("ExpFloat64 mean %v far from 1", mean)
	}
}
