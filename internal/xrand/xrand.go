// Package xrand is the library's seedable splitmix64 generator (Steele, Lea
// & Flood, "Fast splittable pseudorandom number generators", OOPSLA 2014),
// shared by every randomized path — workload generators, traffic synthesis,
// trace processes and the randomized baselines. It replaces math/rand
// sources: a state step is one add and three xor-shift-multiplies, the value
// lives on the stack (no allocation, no lock), and the same seed yields the
// same sequence on every platform, so all randomized outputs are
// deterministically seedable.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; use New to seed explicitly.
type RNG struct{ state uint64 }

// New returns a generator for the given seed; distinct seeds (including 0
// and negatives) land in distinct, well-mixed sequences.
func New(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Shard returns the i-th derived generator of a family keyed by seed — the
// fastrand-style per-worker split that lets parallel generators draw from
// one logical seed without sharing (or locking) any state. Each shard's
// stream starts at an avalanche hash of (seed, i), so shards are pairwise
// uncorrelated for any practical draw count, Shard(seed, i) is deterministic
// in both arguments alone, and no shard equals New(seed)'s own stream.
// Workers that each own Shard(seed, workerChunk) reproduce identical output
// at any level of parallelism, which is what keeps million-job scenario
// synthesis both contention-free and bit-reproducible.
func Shard(seed int64, i int) *RNG {
	return &RNG{state: mix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xd1342543de82ef95 + 0x2545f4914f6cdd1d)}
}

// Uint64 advances the state and returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n); it panics if n <= 0. The value is
// derived by fixed-point scaling (Lemire reduction without the rejection
// step); the residual bias of at most n/2⁶⁴ is irrelevant for workload
// synthesis and keeps the generator branch-free and deterministic.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn argument must be positive")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1 via
// inversion sampling.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Shuffle pseudo-randomizes the order of n elements via Fisher–Yates,
// calling swap(i, j) for 0 ≤ j ≤ i < n.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// NormFloat64 returns a standard normal float64 via the Box–Muller
// transform. Unlike math/rand's ziggurat it is two log/sqrt/cos evaluations
// per draw — slower, but exactly reproducible from the seed on every
// platform and Go release, which is what the deterministic test suites and
// workload synthesis need.
func (r *RNG) NormFloat64() float64 {
	u := 1 - r.Float64() // (0, 1]: keeps the log finite
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
