package scenario

import (
	"fmt"
	"io"
	"math"
	"os"

	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
	"busytime/internal/optical"
	"busytime/internal/trace"
	"busytime/internal/xrand"
)

func init() {
	Register(Scenario{
		Name:        "poisson",
		Description: "homogeneous Poisson arrivals, exponential durations (≈N jobs in expectation)",
		Defaults:    Params{Seed: 1, N: 2000, G: 4, Horizon: 240, MeanLen: 3},
		Generate:    genPoisson,
	})
	Register(Scenario{
		Name:        "diurnal",
		Description: "cloud VM trace: day/night sinusoidal arrival rate via thinning, early-departure mix",
		Defaults:    Params{Seed: 1, N: 2000, G: 4, Horizon: 240, MeanLen: 3},
		Generate:    genDiurnal,
	})
	Register(Scenario{
		Name:        "burst",
		Description: "CloudBurst family: baseline Poisson plus correlated arrival bursts",
		Defaults:    Params{Seed: 1, N: 2000, G: 6, Horizon: 300, MeanLen: 8},
		Generate: func(p Params) (*core.Instance, error) {
			in := generator.CloudBurst(p.Seed, p.N, p.G, p.Horizon, p.MeanLen, 1+p.N/200, 0.5)
			demands(p.Seed, p.MaxDemand, p.G, in.Jobs)
			return in, nil
		},
	})
	Register(Scenario{
		Name:        "clustered",
		Description: "clustered family: disjoint time clusters of overlapping jobs",
		Defaults:    Params{Seed: 1, N: 2000, G: 3, MeanLen: 6},
		Generate: func(p Params) (*core.Instance, error) {
			per := 12
			clusters := (p.N + per - 1) / per
			if clusters < 1 {
				clusters = 1
			}
			in := generator.Clustered(p.Seed, clusters, per, p.G, 1.5*p.MeanLen, p.MeanLen)
			demands(p.Seed, p.MaxDemand, p.G, in.Jobs)
			return in, nil
		},
	})
	Register(Scenario{
		Name:        "waves",
		Description: "LightpathWave family: periodic provisioning waves of near-simultaneous requests",
		Defaults:    Params{Seed: 1, N: 2000, G: 4, Horizon: 400, MeanLen: 12},
		Generate: func(p Params) (*core.Instance, error) {
			perWave := 25
			waves := (p.N + perWave - 1) / perWave
			if waves < 1 {
				waves = 1
			}
			period := p.Horizon / float64(waves)
			in := generator.LightpathWave(p.Seed, waves, perWave, p.G, period, period/3, p.MeanLen)
			demands(p.Seed, p.MaxDemand, p.G, in.Jobs)
			return in, nil
		},
	})
	Register(Scenario{
		Name:        "lightpath",
		Description: "optical path network: random lightpaths under grooming factor g (§4.2 reduction, exact)",
		Defaults:    Params{Seed: 1, N: 1000, G: 4, Horizon: 64},
		Generate: func(p Params) (*core.Instance, error) {
			net := lightpathNet(p)
			return net.ToInstance(), nil
		},
		Check: checkLightpath,
	})
	Register(Scenario{
		Name:        "ring",
		Description: "optical ring (SONET): random arcs cut-and-unrolled onto the line; native coloring cross-checked",
		Defaults:    Params{Seed: 1, N: 1000, G: 4, Horizon: 32},
		Generate: func(p Params) (*core.Instance, error) {
			return ringInstance(p, ringNet(p)), nil
		},
		Check: checkRing,
	})
}

// genPoisson is the homogeneous arrival process, chunked over the time axis:
// by memorylessness a rate-λ process restricted to [t0, t1) is itself a
// rate-λ process started at t0, so per-chunk generation with independent
// streams is distribution-exact. The rate is N/Horizon, hitting N jobs in
// expectation.
func genPoisson(p Params) (*core.Instance, error) {
	if p.N < 1 || p.Horizon <= 0 || p.MeanLen <= 0 {
		return nil, fmt.Errorf("poisson needs N ≥ 1, Horizon > 0, MeanLen > 0")
	}
	rate := float64(p.N) / p.Horizon
	jobs := parallelTime(p.Seed, p.Workers, p.Horizon, func(r *xrand.RNG, t0, t1 float64, emit func(core.Job)) {
		t := t0 + r.ExpFloat64()/rate
		for t < t1 {
			emit(core.Job{Iv: interval.New(t, t+r.ExpFloat64()*p.MeanLen), Demand: 1})
			t += r.ExpFloat64() / rate
		}
	})
	demands(p.Seed, p.MaxDemand, p.G, jobs)
	return &core.Instance{
		Name: fmt.Sprintf("poisson(seed=%d,n=%d)", p.Seed, p.N),
		G:    p.G,
		Jobs: jobs,
	}, nil
}

// genDiurnal is the cloud VM trace: a non-homogeneous Poisson process whose
// rate swings sinusoidally between 20% (night) and 180% (midday) of the
// mean, realized by thinning a homogeneous process at the peak rate. The
// thinning acceptance at time t depends only on t and the chunk's own
// stream, so chunked generation stays distribution-exact.
func genDiurnal(p Params) (*core.Instance, error) {
	if p.N < 1 || p.Horizon <= 0 || p.MeanLen <= 0 {
		return nil, fmt.Errorf("diurnal needs N ≥ 1, Horizon > 0, MeanLen > 0")
	}
	meanRate := float64(p.N) / p.Horizon
	base, peak := 0.2*meanRate, 1.8*meanRate
	rate := func(t float64) float64 {
		phase := 0.5 - 0.5*math.Cos(2*math.Pi*math.Mod(t, 24)/24)
		return base + (peak-base)*phase
	}
	jobs := parallelTime(p.Seed, p.Workers, p.Horizon, func(r *xrand.RNG, t0, t1 float64, emit func(core.Job)) {
		t := t0 + r.ExpFloat64()/peak
		for t < t1 {
			if r.Float64() <= rate(t)/peak {
				emit(core.Job{Iv: interval.New(t, t+r.ExpFloat64()*p.MeanLen), Demand: 1})
			}
			t += r.ExpFloat64() / peak
		}
	})
	demands(p.Seed, p.MaxDemand, p.G, jobs)
	return &core.Instance{
		Name: fmt.Sprintf("diurnal(seed=%d,n=%d)", p.Seed, p.N),
		G:    p.G,
		Jobs: jobs,
	}, nil
}

// lightpathNet builds the path-topology traffic of the "lightpath"
// scenario; Horizon is the node count.
func lightpathNet(p Params) *optical.Network {
	nodes := int(p.Horizon)
	if nodes < 2 {
		nodes = 2
	}
	return optical.RandomTraffic(p.Seed, nodes, p.N, nodes-1, p.G)
}

// checkLightpath rebuilds the wavelength coloring from the offline schedule
// and asserts the paper's exact correspondence: with half-integer job
// endpoints from the §4.2 reduction, total busy time IS the regenerator
// count, so the two must agree to the last ulp. The driver calls Check with
// the already-merged Params, so this regenerates the identical traffic.
func checkLightpath(p Params, in *core.Instance, s *core.Schedule) ([]Metric, error) {
	net := lightpathNet(p)
	col, err := optical.FromSchedule(net, s)
	if err != nil {
		return nil, err
	}
	if err := col.Validate(); err != nil {
		return nil, err
	}
	regen := float64(col.Regenerators())
	if math.Abs(regen-s.Cost()) > 1e-6 {
		return nil, fmt.Errorf("lightpath: %v regenerators but busy time %v (must be equal)", regen, s.Cost())
	}
	return []Metric{
		{Name: "wavelengths", Value: float64(col.Wavelengths())},
		{Name: "regenerators", Value: regen},
		{Name: "adms", Value: float64(col.ADMs())},
	}, nil
}

// ringNet builds the ring traffic of the "ring" scenario; Horizon is the
// ring size (node count).
func ringNet(p Params) *optical.RingNetwork {
	nodes := int(p.Horizon)
	if nodes < 3 {
		nodes = 3
	}
	return optical.RandomRingTraffic(p.Seed, nodes, p.N, nodes-1, p.G)
}

// ringInstance cuts the ring at its least-loaded edge and unrolls every arc
// onto the universal cover: an arc that does not cross the cut becomes the
// usual [a′+½, b′−½] job in cut-relative coordinates, one that does
// continues past l to [a′+½, l+b′−½]. Cover overlap implies sharing a ring
// edge but not conversely (cover positions e and e+l alias the same ring
// edge), so the cover instance is a relaxation: every valid ring coloring
// induces a feasible cover schedule, and the cover machine count lower-bounds
// the wavelengths any coloring of this traffic needs. The schedule itself is
// not a ring coloring; the scenario's Check runs the exact group-aware
// construction (optical.ColorRing) for the deployable answer and reports
// both sides.
func ringInstance(p Params, net *optical.RingNetwork) *core.Instance {
	cut := net.BestCut()
	l := net.Nodes
	in := &core.Instance{
		Name: fmt.Sprintf("ring(seed=%d,n=%d,cut=%d)", p.Seed, p.N, cut),
		G:    net.G,
		Jobs: make([]core.Job, len(net.Arcs)),
	}
	for i, arc := range net.Arcs {
		// Cut-relative node positions: the cut edge sits between position
		// l-1 and l (i.e. node cut is position l-1... the cut edge is edge
		// `cut`, from node cut to cut+1, so position 0 is node cut+1).
		a := ((arc.A-cut-1)%l + l) % l
		b := ((arc.B-cut-1)%l + l) % l
		if b <= a { // crosses the cut edge: unroll onto the cover
			b += l
		}
		in.Jobs[i] = core.Job{
			ID:     arc.ID,
			Iv:     interval.New(float64(a)+0.5, float64(b)-0.5),
			Demand: 1,
		}
	}
	demands(p.Seed, p.MaxDemand, net.G, in.Jobs)
	return in
}

// checkRing runs the exact group-aware ring construction (which validates
// its own coloring) and reports it next to the cover relaxation the solver
// just scheduled: cover machines lower-bound the wavelengths, so the pair
// brackets the traffic's true requirement. It fails if the native
// construction cannot color the traffic at all.
func checkRing(p Params, in *core.Instance, s *core.Schedule) ([]Metric, error) {
	native, err := ringNet(p).ColorRing(-1)
	if err != nil {
		return nil, fmt.Errorf("ring: native construction failed: %w", err)
	}
	return []Metric{
		{Name: "cover_machines", Value: float64(s.NumMachines())},
		{Name: "cover_busy", Value: s.Cost()},
		{Name: "native_wavelengths", Value: float64(native.Wavelengths())},
		{Name: "native_regenerators", Value: float64(native.Regenerators())},
	}, nil
}

// FromCSV wraps an external CSV trace file as an unregistered scenario so
// the driver replays it exactly like a built-in family. Params.G overrides
// a missing #g row; N, Horizon and MeanLen are ignored (the file is the
// workload).
func FromCSV(path string) Scenario {
	return Scenario{
		Name:        "csv:" + path,
		Description: "external CSV trace " + path,
		Defaults:    Params{G: 4},
		Generate: func(p Params) (*core.Instance, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return readCSV(f, p.G)
		},
	}
}

// readCSV adapts trace.ReadCSV (split out for tests that feed a reader).
func readCSV(r io.Reader, defaultG int) (*core.Instance, error) {
	return trace.ReadCSV(r, defaultG)
}
