package scenario

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"busytime"
	"busytime/internal/core"
	"busytime/internal/stats"
	"busytime/internal/xrand"
)

// Mode selects which replay paths a Run drives; modes compose as a bitmask.
type Mode uint8

// Replay modes.
const (
	// ModeOffline solves the complete instance through Solver.Solve.
	ModeOffline Mode = 1 << iota
	// ModeOnline feeds arrivals one at a time through a rolling-horizon
	// session, with an early-release mix.
	ModeOnline
	// ModeWire replays the stream over the framed data plane against a
	// running busyschedd at Config.Addr.
	ModeWire
)

// ParseModes parses a comma-separated mode list ("offline,online,wire").
func ParseModes(s string) (Mode, error) {
	var m Mode
	for _, f := range splitComma(s) {
		switch f {
		case "offline":
			m |= ModeOffline
		case "online":
			m |= ModeOnline
		case "wire":
			m |= ModeWire
		default:
			return 0, fmt.Errorf("scenario: unknown mode %q (want offline, online or wire)", f)
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("scenario: empty mode list")
	}
	return m, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Config steers one driver Run across the enabled modes.
type Config struct {
	// Modes is the replay-path bitmask; zero means offline|online.
	Modes Mode
	// Algorithm is the offline solve algorithm (default "bestfit").
	Algorithm string
	// Policy is the online/wire arrival policy (default "firstfit").
	Policy string
	// Addr is the busyschedd data-plane address; required for ModeWire.
	Addr string
	// Tenant keys the wire session (default "replay").
	Tenant string
	// ReleaseFrac is the fraction of online arrivals departed early, a lag
	// of a few arrivals after placement (deterministic in the seed).
	ReleaseFrac float64
	// Repeat re-solves the offline instance this many times so the solve
	// latency histogram has percentiles, not a point (default 1).
	Repeat int
	// CheckTol is the relative tolerance of the billing cross-check
	// (default 1e-6): |simulated − analytic| ≤ tol·max(1, |analytic|).
	CheckTol float64
}

func (c Config) withDefaults() Config {
	if c.Modes == 0 {
		c.Modes = ModeOffline | ModeOnline
	}
	if c.Algorithm == "" {
		c.Algorithm = "bestfit"
	}
	if c.Policy == "" {
		c.Policy = "firstfit"
	}
	if c.Tenant == "" {
		c.Tenant = "replay"
	}
	if c.Repeat < 1 {
		c.Repeat = 1
	}
	if c.CheckTol <= 0 {
		c.CheckTol = 1e-6
	}
	return c
}

// OfflineReport is the offline replay's outcome: the solved schedule's
// economics plus per-solve latency percentiles over Config.Repeat solves.
type OfflineReport struct {
	Algorithm  string            `json:"algorithm"`
	Machines   int               `json:"machines"`
	Cost       float64           `json:"cost"`
	LowerBound float64           `json:"lower_bound"`
	Gap        float64           `json:"gap"`
	Ratio      float64           `json:"ratio"`
	Solves     int               `json:"solves"`
	Latency    stats.HistSummary `json:"solve_latency"`
	// CrossChecked records that the discrete-event replay of the schedule
	// billed exactly the analytic cost (Run fails otherwise, so a written
	// report always carries true).
	CrossChecked bool `json:"cross_checked"`
}

// OnlineReport is the rolling-horizon replay's outcome: the session's
// stream-lifetime stats (including the live competitive ratio) plus
// per-Place latency percentiles.
type OnlineReport struct {
	Policy       string               `json:"policy"`
	Released     int                  `json:"released_early"`
	Stats        busytime.OnlineStats `json:"stats"`
	Latency      stats.HistSummary    `json:"place_latency"`
	CrossChecked bool                 `json:"cross_checked"`
}

// WireReport is the data-plane replay's outcome: placement/reject counts as
// the client saw them, the server's own per-tenant stats echoed back over
// the final stats frame, and per-batch round-trip latency percentiles
// (frames are pipelined in batches, so per-frame latency is not observable
// from the client).
type WireReport struct {
	Addr      string               `json:"addr"`
	Tenant    string               `json:"tenant"`
	Placed    int                  `json:"placed"`
	Rejected  int                  `json:"rejected"`
	BatchSize int                  `json:"batch_size"`
	Stats     busytime.OnlineStats `json:"server_stats"`
	Latency   stats.HistSummary    `json:"batch_latency"`
}

// Report is one scenario run across the enabled modes.
type Report struct {
	Scenario string        `json:"scenario"`
	Params   Params        `json:"params"`
	Jobs     int           `json:"jobs"`
	G        int           `json:"g"`
	GenTime  time.Duration `json:"gen_ns"`

	Offline *OfflineReport `json:"offline,omitempty"`
	Online  *OnlineReport  `json:"online,omitempty"`
	Wire    *WireReport    `json:"wire,omitempty"`
	// Metrics carries the scenario's own cross-check numbers (optical
	// wavelength and regenerator counts, and the like).
	Metrics []Metric `json:"metrics,omitempty"`
}

// Run replays the scenario under the merged params through every enabled
// mode and returns the combined report. Any mode failing — including a
// billing cross-check disagreement — fails the Run.
func Run(ctx context.Context, cfg Config, sc Scenario, p Params) (*Report, error) {
	cfg = cfg.withDefaults()
	p = p.merged(sc.Defaults)
	t0 := time.Now()
	in, err := sc.Instance(p)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario: sc.Name,
		Params:   p,
		Jobs:     in.N(),
		G:        in.G,
		GenTime:  time.Since(t0),
	}
	var order []int
	if cfg.Modes&(ModeOnline|ModeWire) != 0 {
		order = arrivalOrder(in)
	}
	if cfg.Modes&ModeOffline != 0 {
		off, sched, err := runOffline(ctx, cfg, in)
		if err != nil {
			return nil, fmt.Errorf("scenario %q offline: %w", sc.Name, err)
		}
		rep.Offline = off
		if sc.Check != nil {
			metrics, err := sc.Check(p, in, sched)
			if err != nil {
				return nil, fmt.Errorf("scenario %q check: %w", sc.Name, err)
			}
			rep.Metrics = metrics
		}
	}
	if cfg.Modes&ModeOnline != 0 {
		on, err := runOnline(cfg, p, in, order)
		if err != nil {
			return nil, fmt.Errorf("scenario %q online: %w", sc.Name, err)
		}
		rep.Online = on
	}
	if cfg.Modes&ModeWire != 0 {
		w, err := runWire(cfg, in, order)
		if err != nil {
			return nil, fmt.Errorf("scenario %q wire: %w", sc.Name, err)
		}
		rep.Wire = w
	}
	return rep, nil
}

// arrivalOrder returns job indices sorted by start (ties by index), the
// stream order the online and wire replays feed.
func arrivalOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := in.Jobs[order[a]].Iv.Start, in.Jobs[order[b]].Iv.Start
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	return order
}

// runOffline solves the full instance Repeat times on one warm Solver (the
// first solve pays arena setup, the rest ride it — exactly the shape the
// latency histogram should show), cross-checks the final schedule against
// the discrete-event simulator, and returns the report plus the schedule
// for the scenario's own Check. The schedule lives in the solver's arena;
// it stays valid because the solver is not used again.
func runOffline(ctx context.Context, cfg Config, in *core.Instance) (*OfflineReport, *core.Schedule, error) {
	solver, err := busytime.New(busytime.WithAlgorithm(cfg.Algorithm))
	if err != nil {
		return nil, nil, err
	}
	var res busytime.Result
	var h stats.Hist
	for i := 0; i < cfg.Repeat; i++ {
		t0 := time.Now()
		res, err = solver.Solve(ctx, in)
		if err != nil {
			return nil, nil, err
		}
		h.Observe(time.Since(t0))
	}
	if err := res.CrossCheck(cfg.CheckTol); err != nil {
		return nil, nil, err
	}
	return &OfflineReport{
		Algorithm:    res.Algorithm,
		Machines:     res.Machines,
		Cost:         res.Cost,
		LowerBound:   res.LowerBound(),
		Gap:          res.Gap(),
		Ratio:        res.Ratio(),
		Solves:       cfg.Repeat,
		Latency:      h.Summary(),
		CrossChecked: true,
	}, res.Schedule, nil
}

// runOnline feeds the stream through a rolling-horizon session in arrival
// order. A ReleaseFrac slice of arrivals departs early: each is scheduled,
// deterministically in the seed, for release a few arrivals after its
// placement — mimicking cancel-before-complete churn. The session's
// retained window is snapshotted at the end and cross-checked against the
// simulator.
func runOnline(cfg Config, p Params, in *core.Instance, order []int) (*OnlineReport, error) {
	solver, err := busytime.New()
	if err != nil {
		return nil, err
	}
	sess, err := solver.Online(in.G, cfg.Policy)
	if err != nil {
		return nil, err
	}
	// due[k] lists feed indices to release just before arrival k.
	r := xrand.Shard(p.Seed, genChunks+1)
	due := map[int][]int{}
	released := 0
	var h stats.Hist
	for k, j := range order {
		for _, feed := range due[k] {
			if ok, err := sess.Release(feed); err != nil {
				return nil, err
			} else if ok {
				released++
			}
		}
		delete(due, k)
		job := in.Jobs[j]
		t0 := time.Now()
		_, err := sess.PlaceDemand(busytime.Interval{Start: job.Iv.Start, End: job.Iv.End}, job.Demand)
		if err != nil {
			return nil, err
		}
		h.Observe(time.Since(t0))
		if cfg.ReleaseFrac > 0 && r.Float64() < cfg.ReleaseFrac {
			lag := 1 + r.Intn(16)
			at := k + lag
			if at < len(order) {
				due[at] = append(due[at], k)
			}
		}
	}
	res, err := sess.Result()
	if err != nil {
		return nil, err
	}
	if err := res.CrossCheck(cfg.CheckTol); err != nil {
		return nil, fmt.Errorf("window snapshot: %w", err)
	}
	return &OnlineReport{
		Policy:       cfg.Policy,
		Released:     released,
		Stats:        sess.Stats(),
		Latency:      h.Summary(),
		CrossChecked: true,
	}, nil
}

// WriteReportsCSV writes one flat row per report — the shape sweep scripts
// and spreadsheets want; richer per-mode detail is in the JSON encoding.
func WriteReportsCSV(w io.Writer, reports []*Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "seed", "jobs", "g", "gen_ms",
		"algorithm", "machines", "cost", "lower_bound", "ratio", "solve_p50_ms",
		"policy", "online_cost", "online_ratio", "place_p99_us",
		"wire_placed", "wire_rejected",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/1e6, 'g', 6, 64)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range reports {
		row := []string{r.Scenario, strconv.FormatInt(r.Params.Seed, 10),
			strconv.Itoa(r.Jobs), strconv.Itoa(r.G), ms(r.GenTime)}
		if o := r.Offline; o != nil {
			row = append(row, o.Algorithm, strconv.Itoa(o.Machines), f(o.Cost),
				f(o.LowerBound), f(o.Ratio), ms(o.Latency.P50))
		} else {
			row = append(row, "", "", "", "", "", "")
		}
		if o := r.Online; o != nil {
			row = append(row, o.Policy, f(o.Stats.Cost), f(o.Stats.Ratio),
				strconv.FormatFloat(float64(o.Latency.P99)/1e3, 'g', 6, 64))
		} else {
			row = append(row, "", "", "", "")
		}
		if o := r.Wire; o != nil {
			row = append(row, strconv.Itoa(o.Placed), strconv.Itoa(o.Rejected))
		} else {
			row = append(row, "", "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
