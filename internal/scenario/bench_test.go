package scenario

import (
	"context"
	"runtime"
	"testing"
)

// benchGen drives the diurnal generator at the million-job scale the
// scenario engine is specified for, at a fixed worker count.
func benchGen(b *testing.B, workers int) {
	sc, _ := Lookup("diurnal")
	p := Params{Seed: 1, N: 1_000_000, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := sc.Instance(p)
		if err != nil {
			b.Fatal(err)
		}
		if in.N() < 500_000 {
			b.Fatalf("only %d jobs", in.N())
		}
	}
}

func BenchmarkGenerateDiurnal1e6Workers1(b *testing.B) { benchGen(b, 1) }

func BenchmarkGenerateDiurnal1e6WorkersMax(b *testing.B) { benchGen(b, runtime.GOMAXPROCS(0)) }

// BenchmarkReplayOfflineDiurnal measures the full driver path (generate +
// solve + cross-check) at a sweep-friendly size.
func BenchmarkReplayOfflineDiurnal(b *testing.B) {
	sc, _ := Lookup("diurnal")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Modes: ModeOffline}, sc,
			Params{Seed: 1, N: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayOnlineDiurnal measures the rolling-horizon replay path.
func BenchmarkReplayOnlineDiurnal(b *testing.B) {
	sc, _ := Lookup("diurnal")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Modes: ModeOnline, ReleaseFrac: 0.1}, sc,
			Params{Seed: 1, N: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}
