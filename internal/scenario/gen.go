package scenario

import (
	"runtime"
	"sync"

	"busytime/internal/core"
	"busytime/internal/xrand"
)

// genChunks is the fixed work-decomposition width of parallel generation.
// It is a constant — independent of the worker count — because chunk i
// always draws from xrand.Shard(seed, i): the chunk→stream mapping, not the
// chunk→worker mapping, determines the output, so any parallelism replays
// the same instance. 64 chunks keep every plausible GOMAXPROCS busy while
// the per-chunk slices stay large enough to amortize scheduling.
const genChunks = 64

// parallelTime generates jobs by splitting [0, horizon) into genChunks
// equal windows and running gen on each with its own sharded RNG. gen must
// emit jobs whose construction depends only on its rng and window — the
// memorylessness of the Poisson families makes windowed generation
// distribution-exact. Chunks are concatenated in time order and IDs
// reassigned sequentially, so the result is start-sorted whenever each
// chunk emits in start order.
func parallelTime(seed int64, workers int, horizon float64,
	gen func(r *xrand.RNG, t0, t1 float64, emit func(core.Job))) []core.Job {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > genChunks {
		workers = genChunks
	}
	chunks := make([][]core.Job, genChunks)
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				r := xrand.Shard(seed, i)
				t0 := horizon * float64(i) / genChunks
				t1 := horizon * float64(i+1) / genChunks
				var out []core.Job
				gen(r, t0, t1, func(j core.Job) { out = append(out, j) })
				chunks[i] = out
			}
		}()
	}
	for i := 0; i < genChunks; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	jobs := make([]core.Job, 0, total)
	for _, c := range chunks {
		jobs = append(jobs, c...)
	}
	for i := range jobs {
		jobs[i].ID = i
	}
	return jobs
}

// demands overlays per-job demands in [1, maxDemand] drawn from a dedicated
// shard (index genChunks, disjoint from every time chunk), sequentially —
// one draw per job keeps it deterministic and it is O(n) either way.
func demands(seed int64, maxDemand, g int, jobs []core.Job) {
	if maxDemand <= 1 {
		return
	}
	if maxDemand > g {
		maxDemand = g
	}
	r := xrand.Shard(seed, genChunks)
	for i := range jobs {
		jobs[i].Demand = 1 + r.Intn(maxDemand)
	}
}
