package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"busytime/internal/server"
)

// TestRunOfflineOnline drives the default two-mode replay of the diurnal
// scenario end to end: both reports present, cross-checks asserted, bounds
// sane, latency histograms populated.
func TestRunOfflineOnline(t *testing.T) {
	sc, _ := Lookup("diurnal")
	rep, err := Run(context.Background(), Config{
		Repeat:      3,
		ReleaseFrac: 0.15,
	}, sc, Params{Seed: 2, N: 600})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offline == nil || rep.Online == nil || rep.Wire != nil {
		t.Fatalf("mode mix wrong: offline=%v online=%v wire=%v",
			rep.Offline != nil, rep.Online != nil, rep.Wire != nil)
	}
	off := rep.Offline
	if !off.CrossChecked || off.Cost < off.LowerBound || off.Ratio < 1 {
		t.Fatalf("offline report inconsistent: %+v", off)
	}
	if off.Latency.Count != 3 {
		t.Fatalf("solve latency count %d, want 3", off.Latency.Count)
	}
	on := rep.Online
	if !on.CrossChecked || on.Stats.Placed != uint64(rep.Jobs) {
		t.Fatalf("online report inconsistent: %+v", on)
	}
	if on.Released == 0 {
		t.Fatal("ReleaseFrac=0.15 released nothing")
	}
	if on.Stats.Ratio < 1 {
		t.Fatalf("online competitive ratio %v < 1", on.Stats.Ratio)
	}
	if on.Latency.Count != uint64(rep.Jobs) {
		t.Fatalf("place latency count %d, want %d", on.Latency.Count, rep.Jobs)
	}
	// No comparison of online vs offline cost here: the early-release mix
	// clips online intervals, so the online stream is a strictly smaller
	// workload than the offline instance.
}

// TestRunLightpathExact pins the §4.2 correspondence through the driver: the
// lightpath scenario's Check must find regenerators == busy time exactly and
// surface the coloring metrics.
func TestRunLightpathExact(t *testing.T) {
	sc, _ := Lookup("lightpath")
	rep, err := Run(context.Background(), Config{Modes: ModeOffline}, sc, Params{Seed: 3, N: 300})
	if err != nil {
		t.Fatal(err)
	}
	m := metricMap(rep.Metrics)
	if _, ok := m["wavelengths"]; !ok {
		t.Fatalf("no wavelengths metric in %v", rep.Metrics)
	}
	if m["regenerators"] != rep.Offline.Cost {
		t.Fatalf("regenerators %v != busy time %v", m["regenerators"], rep.Offline.Cost)
	}
}

// TestRunRingBrackets checks the ring scenario reports both sides of the
// bracket: the cover relaxation the solver schedules and the exact native
// construction, with cover machines never above native wavelengths.
func TestRunRingBrackets(t *testing.T) {
	sc, _ := Lookup("ring")
	rep, err := Run(context.Background(), Config{Modes: ModeOffline}, sc, Params{Seed: 4, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	m := metricMap(rep.Metrics)
	for _, k := range []string{"cover_machines", "cover_busy", "native_wavelengths", "native_regenerators"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metric %q missing from %v", k, rep.Metrics)
		}
	}
	if m["cover_machines"] == 0 || m["native_wavelengths"] == 0 {
		t.Fatalf("degenerate ring metrics: %v", rep.Metrics)
	}
}

func metricMap(ms []Metric) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out
}

// TestRunWire replays a scenario against an in-process busyschedd over the
// real framed data plane and checks the client-side counts agree with the
// server's own per-tenant stats echoed back over the stats frame.
func TestRunWire(t *testing.T) {
	srv, err := server.New(server.Config{DataAddr: "127.0.0.1:0", G: 4, Policy: "firstfit"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	sc, _ := Lookup("poisson")
	rep, err := Run(context.Background(), Config{
		Modes: ModeWire,
		Addr:  srv.DataAddr().String(),
	}, sc, Params{Seed: 5, N: 500, G: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Wire
	if w == nil {
		t.Fatal("no wire report")
	}
	if w.Placed != rep.Jobs || w.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want %d/0", w.Placed, w.Rejected, rep.Jobs)
	}
	if w.Stats.Placed != uint64(rep.Jobs) {
		t.Fatalf("server counted %d placements, client %d", w.Stats.Placed, w.Placed)
	}
	if w.Stats.Cost <= 0 || w.Stats.Ratio < 1 {
		t.Fatalf("server stats implausible: %+v", w.Stats)
	}
	if w.Latency.Count == 0 {
		t.Fatal("no batch latency observations")
	}
}

// TestRunWireAgreesWithLocalOnline is the three-way differential: the same
// stream through the in-process session and over the wire must land on the
// same machines — the daemon is a transport in front of the same pool — so
// costs agree exactly.
func TestRunWireAgreesWithLocalOnline(t *testing.T) {
	srv, err := server.New(server.Config{DataAddr: "127.0.0.1:0", G: 3, Policy: "bestfit"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	sc, _ := Lookup("burst")
	rep, err := Run(context.Background(), Config{
		Modes:  ModeOnline | ModeWire,
		Policy: "bestfit",
		Addr:   srv.DataAddr().String(),
	}, sc, Params{Seed: 6, N: 400, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Online.Stats.Cost != rep.Wire.Stats.Cost {
		t.Fatalf("local session cost %v != server cost %v",
			rep.Online.Stats.Cost, rep.Wire.Stats.Cost)
	}
	if rep.Online.Stats.Machines != rep.Wire.Stats.Machines {
		t.Fatalf("local machines %d != server machines %d",
			rep.Online.Stats.Machines, rep.Wire.Stats.Machines)
	}
}

// TestWriteReportsCSV smoke-tests the flat export.
func TestWriteReportsCSV(t *testing.T) {
	sc, _ := Lookup("clustered")
	rep, err := Run(context.Background(), Config{}, sc, Params{Seed: 7, N: 120})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReportsCSV(&buf, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[1], "clustered,7,") {
		t.Fatalf("row %q", lines[1])
	}
}
