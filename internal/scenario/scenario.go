// Package scenario is the workload-scenario engine: a registry of named,
// seeded, parameterized instance families — cloud arrival traces, optical
// lightpath and ring traffic, the synthetic families of internal/generator,
// external CSV traces — with a uniform driver that replays any of them
// offline through the Solver, online through a rolling-horizon session, or
// over the wire against a running busyschedd, and emits one structured
// report per run: cost, bounds, gap and competitive ratio, per-phase
// latency percentiles, and a discrete-event billing cross-check asserting
// the simulated busy time equals the analytic cost.
//
// Generation is parallel and contention-free: stochastic families split the
// time axis into a fixed number of chunks, each owning its own splitmix64
// stream derived by xrand.Shard, so a million-job suite synthesizes across
// GOMAXPROCS workers with no shared RNG lock and the output is
// bit-reproducible at any parallelism.
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"busytime/internal/core"
)

// Params is the knob set every scenario draws from. A scenario reads the
// knobs it understands and ignores the rest; zero fields fall back to the
// scenario's Defaults field by field.
type Params struct {
	// Seed drives every random choice; equal seeds replay equal workloads.
	Seed int64
	// N is the target job count (families reach it exactly or in
	// expectation, per their Description).
	N int
	// G is the parallelism parameter (grooming factor for the optical
	// families).
	G int
	// Horizon is the time span jobs arrive over, in the scenario's time
	// unit (hours for the cloud traces, ring positions for optical).
	Horizon float64
	// MeanLen is the mean job duration.
	MeanLen float64
	// MaxDemand, when > 1, draws per-job demands uniformly from
	// [1, MaxDemand]; otherwise every job has unit demand.
	MaxDemand int
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// merged fills zero fields of p from d.
func (p Params) merged(d Params) Params {
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.N == 0 {
		p.N = d.N
	}
	if p.G == 0 {
		p.G = d.G
	}
	if p.Horizon == 0 {
		p.Horizon = d.Horizon
	}
	if p.MeanLen == 0 {
		p.MeanLen = d.MeanLen
	}
	if p.MaxDemand == 0 {
		p.MaxDemand = d.MaxDemand
	}
	if p.Workers == 0 {
		p.Workers = d.Workers
	}
	return p
}

// Metric is one named number a scenario's Check contributes to the report —
// ring-native wavelength counts, regenerator totals, and the like.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Scenario is one registered workload family.
type Scenario struct {
	// Name keys the registry ("diurnal", "ring", ...).
	Name string
	// Description is one line for listings.
	Description string
	// Defaults fills Params fields the caller leaves zero.
	Defaults Params
	// Generate synthesizes the instance. It must be deterministic in the
	// (merged) Params alone — including Workers: any worker count must
	// produce the identical instance.
	Generate func(p Params) (*core.Instance, error)
	// Check, when non-nil, runs scenario-specific cross-checks against the
	// offline schedule (e.g. the optical families rebuild a coloring and
	// compare regenerator counts to the busy time) and returns extra
	// metrics for the report.
	Check func(p Params, in *core.Instance, s *core.Schedule) ([]Metric, error)
}

// Instance merges p onto the scenario's defaults and generates.
func (sc Scenario) Instance(p Params) (*core.Instance, error) {
	m := p.merged(sc.Defaults)
	if sc.Generate == nil {
		return nil, fmt.Errorf("scenario %q has no generator", sc.Name)
	}
	in, err := sc.Generate(m)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q generated an invalid instance: %w", sc.Name, err)
	}
	return in, nil
}

var (
	mu       sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario; re-registering a name panics, as with algorithms.
func Register(sc Scenario) {
	mu.Lock()
	defer mu.Unlock()
	if sc.Name == "" || sc.Generate == nil {
		panic("scenario: Register needs a name and a generator")
	}
	if _, dup := registry[sc.Name]; dup {
		panic("scenario: duplicate registration of " + sc.Name)
	}
	registry[sc.Name] = sc
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	mu.RLock()
	defer mu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registry names (for usage strings).
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return names
}
