package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"busytime"
	"busytime/internal/core"
	"busytime/internal/server"
	"busytime/internal/stats"
)

// wireBatch is how many place frames the wire replay pipelines per flush —
// the same default batch the daemon's connection reader drains in one
// processing pass, so one batch is one shard-lock acquisition server-side.
const wireBatch = 64

// runWire replays the stream over the framed data plane: frames are
// pipelined wireBatch at a time (send, flush, drain the replies in order),
// rejects are counted rather than fatal — an admission-limited or draining
// server is an answer, not a transport failure — and the server's own
// per-tenant stats are fetched over the final stats frame so the report
// shows the authoritative server-side cost and competitive ratio.
func runWire(cfg Config, in *core.Instance, order []int) (*WireReport, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("wire mode needs an address")
	}
	c, err := server.Dial(cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	h, err := c.Open(cfg.Tenant)
	if err != nil {
		return nil, err
	}
	rep := &WireReport{Addr: cfg.Addr, Tenant: cfg.Tenant, BatchSize: wireBatch}
	var hist stats.Hist
	for at := 0; at < len(order); at += wireBatch {
		end := at + wireBatch
		if end > len(order) {
			end = len(order)
		}
		t0 := time.Now()
		for _, j := range order[at:end] {
			job := in.Jobs[j]
			if err := c.SendPlace(h, job.Iv.Start, job.Iv.End, job.Demand); err != nil {
				return nil, err
			}
		}
		if err := c.Flush(); err != nil {
			return nil, err
		}
		for range order[at:end] {
			r, err := c.ReadReply()
			if err != nil {
				return nil, err
			}
			switch {
			case r.IsPlaced():
				rep.Placed++
			case r.IsReject():
				rep.Rejected++
			default:
				return nil, fmt.Errorf("wire: unexpected reply op 0x%02x", r.Op)
			}
		}
		hist.Observe(time.Since(t0))
	}
	if err := c.SendStats(h); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return nil, err
	}
	if len(r.Payload) == 0 {
		return nil, fmt.Errorf("wire: stats reply op 0x%02x with no payload", r.Op)
	}
	var st busytime.OnlineStats
	if err := json.Unmarshal(r.Payload, &st); err != nil {
		return nil, fmt.Errorf("wire: decoding server stats: %w", err)
	}
	rep.Stats = st
	rep.Latency = hist.Summary()
	return rep, nil
}
