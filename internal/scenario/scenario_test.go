package scenario

import (
	"strings"
	"testing"

	"busytime/internal/core"
)

// TestRegistryHasBuiltins pins the shipped scenario set.
func TestRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{"poisson", "diurnal", "burst", "clustered", "waves", "lightpath", "ring"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
	if got := len(Names()); got < 7 {
		t.Errorf("only %d scenarios registered", got)
	}
}

// TestGenerateDeterministicAcrossWorkers is the parallel-generation
// contract: the instance depends on (scenario, params) alone, never on the
// worker count — chunk i always draws from xrand.Shard(seed, i), whatever
// goroutine runs it.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"poisson", "diurnal"} {
		sc, _ := Lookup(name)
		base, err := sc.Instance(Params{Seed: 9, N: 3000, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			in, err := sc.Instance(Params{Seed: 9, N: 3000, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if in.N() != base.N() {
				t.Fatalf("%s workers=%d: %d jobs vs %d at workers=1", name, workers, in.N(), base.N())
			}
			for i := range in.Jobs {
				if in.Jobs[i] != base.Jobs[i] {
					t.Fatalf("%s workers=%d: job %d differs: %+v vs %+v",
						name, workers, i, in.Jobs[i], base.Jobs[i])
				}
			}
		}
	}
}

// TestGenerateSeedSensitivity checks different seeds give different traces.
func TestGenerateSeedSensitivity(t *testing.T) {
	sc, _ := Lookup("diurnal")
	a, err := sc.Instance(Params{Seed: 1, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Instance(Params{Seed: 2, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() == b.N() {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i].Iv != b.Jobs[i].Iv {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 generated the identical trace")
		}
	}
}

// TestEveryFamilyGeneratesValid sweeps the registry at a small scale: merged
// defaults, a couple of seeds, instances must validate (Instance checks) and
// be non-trivial.
func TestEveryFamilyGeneratesValid(t *testing.T) {
	for _, sc := range All() {
		for seed := int64(1); seed <= 2; seed++ {
			in, err := sc.Instance(Params{Seed: seed, N: 200})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", sc.Name, seed, err)
			}
			if in.N() == 0 {
				t.Errorf("%s seed=%d: empty instance", sc.Name, seed)
			}
			if in.G < 1 {
				t.Errorf("%s seed=%d: g=%d", sc.Name, seed, in.G)
			}
		}
	}
}

// TestStochasticFamiliesHitTargetCount checks N is hit in expectation: a
// ±40% band at N=4000 is ≈ 25 standard deviations for a Poisson count.
func TestStochasticFamiliesHitTargetCount(t *testing.T) {
	for _, name := range []string{"poisson", "diurnal"} {
		sc, _ := Lookup(name)
		in, err := sc.Instance(Params{Seed: 3, N: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if in.N() < 2400 || in.N() > 5600 {
			t.Errorf("%s: %d jobs, want ≈ 4000", name, in.N())
		}
	}
}

// TestArrivalOrderIsSorted pins the stream order the online replay feeds.
func TestArrivalOrderIsSorted(t *testing.T) {
	sc, _ := Lookup("burst")
	in, err := sc.Instance(Params{Seed: 5, N: 400})
	if err != nil {
		t.Fatal(err)
	}
	order := arrivalOrder(in)
	if len(order) != in.N() {
		t.Fatalf("order has %d entries for %d jobs", len(order), in.N())
	}
	for i := 1; i < len(order); i++ {
		if in.Jobs[order[i]].Iv.Start < in.Jobs[order[i-1]].Iv.Start {
			t.Fatalf("arrival order not sorted at %d", i)
		}
	}
}

// TestMaxDemandOverlay checks the demand overlay stays within [1, min(max, g)].
func TestMaxDemandOverlay(t *testing.T) {
	sc, _ := Lookup("poisson")
	in, err := sc.Instance(Params{Seed: 4, N: 1000, G: 4, MaxDemand: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, j := range in.Jobs {
		if j.Demand < 1 || j.Demand > 3 {
			t.Fatalf("demand %d outside [1,3]", j.Demand)
		}
		seen[j.Demand] = true
	}
	if len(seen) < 2 {
		t.Error("MaxDemand=3 produced a single demand value everywhere")
	}
}

// TestFromCSV round-trips an external trace through the scenario wrapper.
func TestFromCSV(t *testing.T) {
	in, err := readCSV(strings.NewReader("#g,3\nid,start,end,demand\n0,0,2,1\n1,1,4,2\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.G != 3 || in.N() != 2 {
		t.Fatalf("got g=%d n=%d", in.G, in.N())
	}
	if _, err := readCSV(strings.NewReader("id,start,end\n0,NaN,1\n"), 1); err == nil {
		t.Fatal("NaN trace accepted")
	}
}

// TestParseModes pins the mode grammar.
func TestParseModes(t *testing.T) {
	m, err := ParseModes("offline,online,wire")
	if err != nil || m != ModeOffline|ModeOnline|ModeWire {
		t.Fatalf("ParseModes = %v, %v", m, err)
	}
	if _, err := ParseModes("offline,bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := ParseModes(""); err == nil {
		t.Fatal("empty mode list accepted")
	}
}

// TestRegisterPanics pins the registry's duplicate and shape guards.
func TestRegisterPanics(t *testing.T) {
	stub := func(p Params) (*core.Instance, error) { return nil, nil }
	for _, sc := range []Scenario{
		{},
		{Name: "diurnal", Generate: stub},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", sc.Name)
				}
			}()
			Register(sc)
		}()
	}
}
