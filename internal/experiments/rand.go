package experiments

import "busytime/internal/xrand"

// newRand returns a seeded PRNG; isolated so every experiment draws from an
// explicitly seeded source and nothing depends on the global generator. The
// splitmix64 xrand generator matches the rest of the tree, so experiment
// workloads are reproducible across Go releases (math/rand's stream is not
// pinned by the compatibility promise).
func newRand(seed int64) *xrand.RNG { return xrand.New(seed) }
