package experiments

import "math/rand"

// newRand returns a seeded PRNG; isolated so every experiment draws from an
// explicitly seeded source and nothing depends on the global generator.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
