package experiments

import (
	"fmt"
	"testing"
)

func TestAblationsRun(t *testing.T) {
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Config{Trials: 5, Seed: 1, LargeN: 200})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Metrics) == 0 {
				t.Error("no metrics")
			}
		})
	}
}

func TestA1LengthOrderCompetitive(t *testing.T) {
	res, err := A1Ordering(Config{Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's order should not be dominated by random order on average.
	for _, g := range []int{2, 4} {
		paper := res.Metrics[fmt.Sprintf("g%d/length (paper)/mean", g)]
		random := res.Metrics[fmt.Sprintf("g%d/random/mean", g)]
		if paper > random*1.15 {
			t.Errorf("g=%d: paper order %v much worse than random %v", g, paper, random)
		}
	}
}

func TestA2VariantsAgree(t *testing.T) {
	// A2 errors internally if the variants ever disagree on cost.
	if _, err := A2TreeIndex(Config{Trials: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestA3NeverNegativeGain(t *testing.T) {
	res, err := A3LocalSearch(Config{Trials: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if v < -1e-9 {
			t.Errorf("%s = %v: local search made things worse", k, v)
		}
	}
}
