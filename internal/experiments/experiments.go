// Package experiments implements the paper-reproduction harness: one
// experiment per quantitative artifact of the paper (see DESIGN.md §4).
// Each experiment generates its workload, runs the paper's algorithm and
// the relevant baselines, and reports a table of the measured ratios, plus
// key metrics that the test suite asserts on (approximation guarantees must
// hold on every measured instance).
//
// The paper is an approximation-algorithms paper: its "figures" are proof
// illustrations and its evaluation artifacts are theorems. Every theorem is
// reproduced as a measured table: upper bounds are checked against exact
// optima on small instances and against the fractional lower bound at scale,
// and the lower-bound constructions (Theorem 2.4 / Fig. 4) are instantiated
// verbatim.
package experiments

import (
	"fmt"

	"busytime/internal/algo/baselines"
	"busytime/internal/algo/boundedlength"
	"busytime/internal/algo/cliquealgo"
	"busytime/internal/algo/demand"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/algo/properfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/optical"
	"busytime/internal/parallel"
	"busytime/internal/stats"
)

// Config scales the experiments.
type Config struct {
	// Trials is the number of random instances per table row (default 40).
	Trials int
	// Seed is the base RNG seed; trial t of row r uses Seed + 1000·r + t.
	Seed int64
	// LargeN is the size of the large-instance rows (default 2000).
	LargeN int
}

func (c Config) fill() Config {
	if c.Trials == 0 {
		c.Trials = 40
	}
	if c.LargeN == 0 {
		c.LargeN = 2000
	}
	return c
}

// Result is one experiment's output.
type Result struct {
	ID      string
	Name    string
	Table   *stats.Table
	Metrics map[string]float64
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 2.1: FirstFit ≤ 4·OPT (general instances)", E1FirstFitGeneral},
		{"E2", "Theorem 2.4 / Fig. 4: FirstFit lower-bound family → 3", E2Fig4},
		{"E3", "Theorem 3.1: Greedy ≤ 2·OPT (proper instances)", E3ProperGreedy},
		{"E4", "Theorem 3.2 / Lemma 3.3: Bounded_Length ≤ (2+ε)·OPT", E4BoundedLength},
		{"E5", "Theorem A.1 / Fig. 5: clique algorithm ≤ 2·OPT", E5Clique},
		{"E6", "Observation 1.1: lower-bound quality", E6LowerBounds},
		{"E7", "§4: optical grooming on a path (regenerators & ADMs)", E7Optical},
		{"E8", "§1.1 remark: machine minimization vs busy time", E8MachineMin},
		{"E9", "§3.1 remark: FirstFit → 3 on proper Fig. 4 shift", E9ProperAdversarial},
		{"E10", "§1.3/[15] extension: demands and flexible windows", E10Demand},
	}
}

// ratioStats runs trials (in parallel — each trial must derive all
// randomness from its index, which every caller does via per-trial seeds)
// and returns ratio statistics of alg/reference.
func ratioStats(trials int, f func(t int) (num, den float64, err error)) (*stats.Sample, error) {
	type pair struct{ num, den float64 }
	pairs, err := parallel.MapErr(trials, 0, func(t int) (pair, error) {
		num, den, err := f(t)
		return pair{num, den}, err
	})
	if err != nil {
		return nil, err
	}
	var s stats.Sample
	for _, p := range pairs {
		if p.den == 0 {
			continue
		}
		s.Add(p.num / p.den)
	}
	return &s, nil
}

// E1FirstFitGeneral measures FirstFit against the exact optimum on small
// random instances and against the fractional lower bound at scale, for
// g ∈ {2, 3, 4}. Theorem 2.1 promises ratio ≤ 4 everywhere.
func E1FirstFitGeneral(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E1 — FirstFit vs OPT (Theorem 2.1: ratio ≤ 4)",
		"g", "n", "reference", "mean ratio", "max ratio", "trials")
	metrics := map[string]float64{}
	worst := 0.0
	for _, g := range []int{2, 3, 4} {
		g := g
		small, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := generator.General(cfg.Seed+int64(1000*g+t), 9, g, 18, 7)
			opt, err := exact.Cost(in)
			if err != nil {
				return 0, 0, err
			}
			return firstfit.Schedule(in).Cost(), opt, nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(g, 9, "exact OPT", small.Mean(), small.Max(), small.N())
		if small.Max() > worst {
			worst = small.Max()
		}
		metrics[fmt.Sprintf("g%d/maxRatioOPT", g)] = small.Max()

		large, err := ratioStats(5, func(t int) (float64, float64, error) {
			in := generator.General(cfg.Seed+int64(9000*g+t), cfg.LargeN, g, 1000, 40)
			return firstfit.Schedule(in).Cost(), core.BestBound(in), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(g, cfg.LargeN, "fractional LB", large.Mean(), large.Max(), large.N())
		metrics[fmt.Sprintf("g%d/maxRatioLB", g)] = large.Max()
		if large.Max() > worst {
			worst = large.Max()
		}
	}
	metrics["worstRatio"] = worst
	return &Result{ID: "E1", Name: "FirstFit general", Table: tb, Metrics: metrics}, nil
}

// E2Fig4 instantiates the Theorem 2.4 family and measures the FirstFit/OPT
// ratio as g grows: it must approach 3 from below, exceeding 3−ε for
// g ≥ 6/ε − 1 (with ε′ = ε/4), while never exceeding 4 (Theorem 2.1).
func E2Fig4(cfg Config) (*Result, error) {
	tb := stats.NewTable("E2 — Fig. 4 adversarial family (Theorem 2.4: ratio → 3)",
		"g", "ε′", "n", "FirstFit", "OPT", "ratio", "limit 3−2ε′ · g/(g+1)")
	metrics := map[string]float64{}
	var last float64
	for _, g := range []int{2, 4, 8, 16, 32} {
		const epsPrime = 0.05
		in, order := generator.Fig4(g, epsPrime)
		ff := firstfit.ScheduleOrder(in, order)
		if err := ff.Verify(); err != nil {
			return nil, err
		}
		opt := float64(g + 1) // analytic OPT of the construction
		// Cross-check the analytic OPT on the smallest instance.
		if g == 2 {
			ex, err := exact.Cost(in)
			if err != nil {
				return nil, err
			}
			if diff := ex - opt; diff > 1e-9 || diff < -1e-9 {
				return nil, fmt.Errorf("E2: exact OPT %v != analytic %v", ex, opt)
			}
		}
		ratio := ff.Cost() / opt
		predicted := (3 - 2*epsPrime) * float64(g) / float64(g+1)
		tb.AddRow(g, epsPrime, in.N(), ff.Cost(), opt, ratio, predicted)
		metrics[fmt.Sprintf("g%d/ratio", g)] = ratio
		last = ratio
	}
	metrics["finalRatio"] = last
	return &Result{ID: "E2", Name: "Fig4 lower bound", Table: tb, Metrics: metrics}, nil
}

// E3ProperGreedy measures the §3.1 greedy on proper instances against exact
// OPT (small) and the fractional bound (large), with FirstFit alongside.
// Theorem 3.1 promises Greedy ≤ 2·OPT on proper instances.
func E3ProperGreedy(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E3 — Greedy (NextFit) on proper instances (Theorem 3.1: ratio ≤ 2)",
		"g", "n", "algorithm", "reference", "mean ratio", "max ratio")
	metrics := map[string]float64{}
	for _, g := range []int{2, 3} {
		g := g
		greedy, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := generator.Proper(cfg.Seed+int64(100*g+t), 9, g, 16, 6)
			opt, err := exact.Cost(in)
			if err != nil {
				return 0, 0, err
			}
			return properfit.Schedule(in).Cost(), opt, nil
		})
		if err != nil {
			return nil, err
		}
		ff, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := generator.Proper(cfg.Seed+int64(100*g+t), 9, g, 16, 6)
			opt, err := exact.Cost(in)
			if err != nil {
				return 0, 0, err
			}
			return firstfit.Schedule(in).Cost(), opt, nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(g, 9, "greedy", "exact OPT", greedy.Mean(), greedy.Max())
		tb.AddRow(g, 9, "firstfit", "exact OPT", ff.Mean(), ff.Max())
		metrics[fmt.Sprintf("g%d/greedyMax", g)] = greedy.Max()
	}
	large, err := ratioStats(5, func(t int) (float64, float64, error) {
		in := generator.Proper(cfg.Seed+int64(777+t), cfg.LargeN, 3, 800, 30)
		return properfit.Schedule(in).Cost(), core.BestBound(in), nil
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow(3, cfg.LargeN, "greedy", "fractional LB", large.Mean(), large.Max())
	metrics["largeMaxVsLB"] = large.Max()
	return &Result{ID: "E3", Name: "proper greedy", Table: tb, Metrics: metrics}, nil
}

// E4BoundedLength measures the §3.2 pipeline: the Lemma 3.3 segmentation
// loss (segment-respecting cost / unrestricted OPT ≤ 2) and the end-to-end
// cost of Bounded_Length, sweeping the length bound d. It also replays the
// witness-guided b-matching path (steps 2(d)–(e)).
func E4BoundedLength(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E4 — Bounded_Length (Theorem 3.2: ratio ≤ 2+ε; Lemma 3.3 split ≤ 2)",
		"d", "g", "n", "quantity", "mean", "max")
	metrics := map[string]float64{}
	for _, d := range []float64{2, 3, 4} {
		d := d
		seg, err := ratioStats(cfg.Trials/2, func(t int) (float64, float64, error) {
			in := generator.BoundedLength(cfg.Seed+int64(300*int(d)+t), 9, 2, 3, d)
			s, opt, err := boundedlength.SegmentationOverhead(in, boundedlength.Options{D: d})
			return s, opt, err
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(d, 2, 9, "segmented / OPT", seg.Mean(), seg.Max())
		metrics[fmt.Sprintf("d%g/segMax", d)] = seg.Max()

		match, err := ratioStats(cfg.Trials/2, func(t int) (float64, float64, error) {
			in := generator.BoundedLength(cfg.Seed+int64(500*int(d)+t), 20, 3, 5, d)
			witness := firstfit.Schedule(in)
			replayed, err := boundedlength.ScheduleFromWitness(witness)
			if err != nil {
				return 0, 0, err
			}
			return replayed.Cost(), core.BestBound(in), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(d, 3, 20, "b-matching replay / LB", match.Mean(), match.Max())
	}
	large, err := ratioStats(5, func(t int) (float64, float64, error) {
		in := generator.BoundedLength(cfg.Seed+int64(901+t), cfg.LargeN/2, 3, 40, 4)
		s, err := boundedlength.Schedule(in, boundedlength.Options{D: 4})
		if err != nil {
			return 0, 0, err
		}
		return s.Cost(), core.BestBound(in), nil
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow(4, 3, cfg.LargeN/2, "end-to-end / LB", large.Mean(), large.Max())
	metrics["largeMaxVsLB"] = large.Max()
	return &Result{ID: "E4", Name: "bounded length", Table: tb, Metrics: metrics}, nil
}

// E5Clique measures the Appendix clique algorithm against exact OPT for
// several g and clique sizes; Theorem A.1 promises ratio ≤ 2. FirstFit runs
// alongside for context.
func E5Clique(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E5 — clique algorithm (Theorem A.1: ratio ≤ 2)",
		"g", "|C|", "algorithm", "mean ratio", "max ratio")
	metrics := map[string]float64{}
	for _, g := range []int{2, 3, 4} {
		for _, n := range []int{8, 12} {
			g, n := g, n
			cl, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
				in := generator.Clique(cfg.Seed+int64(g*1000+n*10+t), n, g, 0, 5)
				opt, err := exact.Cost(in)
				if err != nil {
					return 0, 0, err
				}
				s, err := cliquealgo.Schedule(in)
				if err != nil {
					return 0, 0, err
				}
				return s.Cost(), opt, nil
			})
			if err != nil {
				return nil, err
			}
			ff, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
				in := generator.Clique(cfg.Seed+int64(g*1000+n*10+t), n, g, 0, 5)
				opt, err := exact.Cost(in)
				if err != nil {
					return 0, 0, err
				}
				return firstfit.Schedule(in).Cost(), opt, nil
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(g, n, "clique", cl.Mean(), cl.Max())
			tb.AddRow(g, n, "firstfit", ff.Mean(), ff.Max())
			metrics[fmt.Sprintf("g%d/n%d/cliqueMax", g, n)] = cl.Max()
		}
	}
	return &Result{ID: "E5", Name: "clique", Table: tb, Metrics: metrics}, nil
}

// E6LowerBounds compares the three lower bounds of the library against the
// exact optimum: Observation 1.1's span and parallelism bounds and the
// dominating fractional bound ∫⌈N_t/g⌉dt.
func E6LowerBounds(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E6 — lower-bound quality (Observation 1.1)",
		"g", "bound", "mean OPT/bound", "max OPT/bound", "tight (%)")
	metrics := map[string]float64{}
	for _, g := range []int{2, 3} {
		g := g
		var span, par, frac stats.Sample
		tight := 0
		for t := 0; t < cfg.Trials; t++ {
			in := generator.General(cfg.Seed+int64(g*77+t), 9, g, 18, 7)
			opt, err := exact.Cost(in)
			if err != nil {
				return nil, err
			}
			b := core.AllBounds(in)
			if b.Span > 0 {
				span.Add(opt / b.Span)
			}
			if b.Parallelism > 0 {
				par.Add(opt / b.Parallelism)
			}
			if b.Fractional > 0 {
				frac.Add(opt / b.Fractional)
				if opt/b.Fractional < 1+1e-9 {
					tight++
				}
			}
		}
		tb.AddRow(g, "span", span.Mean(), span.Max(), "")
		tb.AddRow(g, "parallelism", par.Mean(), par.Max(), "")
		tb.AddRow(g, "fractional", frac.Mean(), frac.Max(),
			fmt.Sprintf("%.0f", 100*float64(tight)/float64(cfg.Trials)))
		metrics[fmt.Sprintf("g%d/minSpanRatio", g)] = span.Min()
		metrics[fmt.Sprintf("g%d/minParRatio", g)] = par.Min()
		metrics[fmt.Sprintf("g%d/minFracRatio", g)] = frac.Min()
	}
	return &Result{ID: "E6", Name: "lower bounds", Table: tb, Metrics: metrics}, nil
}

// E7Optical reproduces the §4 application: color random path traffic via
// the scheduling reduction and count regenerators and ADMs, sweeping the
// grooming factor. It asserts the regenerators == busy-time identity.
func E7Optical(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E7 — optical grooming on a path (§4)",
		"g", "algorithm", "wavelengths", "regenerators", "ADMs", "cost α=0.5")
	metrics := map[string]float64{}
	const nodes, npaths = 40, 120
	for _, g := range []int{1, 2, 4, 8} {
		net := optical.RandomTraffic(cfg.Seed+int64(g), nodes, npaths, 16, g)
		in := net.ToInstance()
		algs := []struct {
			name string
			run  func(*core.Instance) *core.Schedule
		}{
			{"firstfit", firstfit.Schedule},
			{"machine-min", baselines.MachineMin},
			{"nextfit", baselines.NextFit},
		}
		for _, a := range algs {
			s := a.run(in)
			col, err := optical.FromSchedule(net, s)
			if err != nil {
				return nil, err
			}
			if err := col.Validate(); err != nil {
				return nil, err
			}
			reg := col.Regenerators()
			if diff := float64(reg) - s.Cost(); diff > 1e-9 || diff < -1e-9 {
				return nil, fmt.Errorf("E7: regenerators %d != busy time %v", reg, s.Cost())
			}
			tb.AddRow(g, a.name, col.Wavelengths(), reg, col.ADMs(), col.Cost(0.5))
			metrics[fmt.Sprintf("g%d/%s/regen", g, a.name)] = float64(reg)
		}
	}
	return &Result{ID: "E7", Name: "optical", Table: tb, Metrics: metrics}, nil
}

// E8MachineMin contrasts machine-count minimization (polynomial, §1.1
// remark) with busy-time minimization: the coloring-based schedule uses the
// minimum ⌈ω/g⌉ machines but pays more busy time than FirstFit.
func E8MachineMin(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E8 — machines vs busy time (§1.1 remark)",
		"g", "algorithm", "mean machines", "mean cost", "mean cost/LB")
	metrics := map[string]float64{}
	for _, g := range []int{2, 4} {
		var mmMach, mmCost, mmRatio, ffMach, ffCost, ffRatio stats.Sample
		for t := 0; t < cfg.Trials; t++ {
			in := generator.General(cfg.Seed+int64(g*31+t), 60, g, 40, 12)
			lb := core.BestBound(in)
			mm := baselines.MachineMin(in)
			ff := firstfit.Schedule(in)
			mmMach.Add(float64(mm.NumMachines()))
			ffMach.Add(float64(ff.NumMachines()))
			mmCost.Add(mm.Cost())
			ffCost.Add(ff.Cost())
			if lb > 0 {
				mmRatio.Add(mm.Cost() / lb)
				ffRatio.Add(ff.Cost() / lb)
			}
		}
		tb.AddRow(g, "machine-min", mmMach.Mean(), mmCost.Mean(), mmRatio.Mean())
		tb.AddRow(g, "firstfit", ffMach.Mean(), ffCost.Mean(), ffRatio.Mean())
		metrics[fmt.Sprintf("g%d/machineMinMachines", g)] = mmMach.Mean()
		metrics[fmt.Sprintf("g%d/firstfitMachines", g)] = ffMach.Mean()
		metrics[fmt.Sprintf("g%d/machineMinCost", g)] = mmCost.Mean()
		metrics[fmt.Sprintf("g%d/firstfitCost", g)] = ffCost.Mean()
	}
	return &Result{ID: "E8", Name: "machine minimization", Table: tb, Metrics: metrics}, nil
}

// E9ProperAdversarial runs the §3.1 closing remark: on the ranked-shift
// proper variant of Fig. 4, FirstFit (worst-case tie order) approaches
// ratio 3 while the proper greedy stays ≤ 2.
func E9ProperAdversarial(cfg Config) (*Result, error) {
	tb := stats.NewTable("E9 — proper Fig. 4 shift (§3.1 remark)",
		"g", "n", "FirstFit ratio", "Greedy ratio")
	metrics := map[string]float64{}
	for _, g := range []int{2, 4, 8, 16} {
		const epsPrime = 0.05
		delta := epsPrime / float64(2*g*g)
		in, order := generator.Fig4Proper(g, epsPrime, delta)
		if !in.IsProper() {
			return nil, fmt.Errorf("E9: instance not proper")
		}
		opt := float64(g + 1) // analytic OPT carries over (delta → 0 effects are O(gδ))
		ff := firstfit.ScheduleOrder(in, order)
		gr := properfit.Schedule(in)
		if err := ff.Verify(); err != nil {
			return nil, err
		}
		if err := gr.Verify(); err != nil {
			return nil, err
		}
		ffr, grr := ff.Cost()/opt, gr.Cost()/opt
		tb.AddRow(g, in.N(), ffr, grr)
		metrics[fmt.Sprintf("g%d/firstfit", g)] = ffr
		metrics[fmt.Sprintf("g%d/greedy", g)] = grr
	}
	return &Result{ID: "E9", Name: "proper adversarial", Table: tb, Metrics: metrics}, nil
}

// E10Demand evaluates the demand/flexible extension: fixed-interval jobs
// with random demands under FirstFit, and flexible windows under the demand
// scheduler, against demand-weighted lower bounds.
func E10Demand(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("E10 — demands and flexible windows ([15] extension)",
		"variant", "g", "mean ratio", "max ratio", "reference")
	metrics := map[string]float64{}
	for _, g := range []int{3, 4} {
		g := g
		fixed, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			base := generator.General(cfg.Seed+int64(g*13+t), 40, g, 30, 10)
			in := generator.WithDemands(base, cfg.Seed+int64(t), g)
			return firstfit.Schedule(in).Cost(), core.BestBound(in), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow("fixed+demands firstfit", g, fixed.Mean(), fixed.Max(), "fractional LB")
		metrics[fmt.Sprintf("g%d/fixedMax", g)] = fixed.Max()
	}
	for _, slack := range []float64{0, 3} {
		slack := slack
		flex, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := flexWorkload(cfg.Seed+int64(t)+int64(slack*100), 30, 3, slack)
			res, err := demand.Schedule(in)
			if err != nil {
				return 0, 0, err
			}
			return res.Schedule.Cost(), in.WorkBound(), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("flexible slack=%g", slack), 3, flex.Mean(), flex.Max(), "work bound")
		metrics[fmt.Sprintf("slack%g/max", slack)] = flex.Max()
	}
	return &Result{ID: "E10", Name: "demand extension", Table: tb, Metrics: metrics}, nil
}

// flexWorkload builds a random flexible instance (local helper mirroring the
// demand package's test generator, kept here to avoid exporting test code).
func flexWorkload(seed int64, n, g int, slackMax float64) *demand.FlexInstance {
	in := &demand.FlexInstance{Name: fmt.Sprintf("flex(seed=%d)", seed), G: g}
	r := newRand(seed)
	for i := 0; i < n; i++ {
		rel := r.Float64() * 40
		proc := 0.5 + r.Float64()*8
		in.Jobs = append(in.Jobs, demand.FlexJob{
			ID:      i,
			Release: rel,
			Due:     rel + proc + r.Float64()*slackMax,
			Proc:    proc,
			Demand:  1 + r.Intn(g),
		})
	}
	return in
}
