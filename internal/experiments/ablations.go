package experiments

import (
	"fmt"
	"time"

	"busytime/internal/algo/baselines"
	"busytime/internal/algo/firstfit"
	"busytime/internal/algo/laminar"
	"busytime/internal/algo/localsearch"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/online"
	"busytime/internal/stats"
	"busytime/internal/trace"
)

// Ablations returns the design-choice ablation experiments (DESIGN.md §4,
// "Ablations"). They are extensions, not paper artifacts, so they are
// listed separately from All().
func Ablations() []Experiment {
	return []Experiment{
		{"A1", "ablation: job ordering in FirstFit", A1Ordering},
		{"A2", "ablation: interval-tree index vs linear scans", A2TreeIndex},
		{"A3", "ablation: local-search post-pass on FirstFit", A3LocalSearch},
		{"A4", "extension: online policies vs offline FirstFit", A4Online},
		{"A5", "extension: exact level-grouping on laminar instances", A5Laminar},
		{"A6", "ablation: machine-selection index vs linear machine scan", A6MachineIndex},
	}
}

// A5Laminar evaluates the laminar special case: the level-grouping schedule
// provably equals the fractional lower bound (optimal), and the table shows
// how far the paper's general-purpose FirstFit lands from that optimum on
// nested workloads.
func A5Laminar(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A5 — laminar instances (level grouping is optimal)",
		"g", "algorithm", "mean cost/OPT", "max cost/OPT")
	metrics := map[string]float64{}
	for _, g := range []int{2, 3} {
		g := g
		lamRatio, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := generator.Laminar(cfg.Seed+int64(g*97+t), g, 3, 3, 4, 20)
			s, err := laminar.Schedule(in)
			if err != nil {
				return 0, 0, err
			}
			return s.Cost(), core.FractionalBound(in), nil
		})
		if err != nil {
			return nil, err
		}
		ffRatio, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := generator.Laminar(cfg.Seed+int64(g*97+t), g, 3, 3, 4, 20)
			opt, err := laminar.Schedule(in) // provably optimal reference
			if err != nil {
				return 0, 0, err
			}
			return firstfit.Schedule(in).Cost(), opt.Cost(), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(g, "laminar (exact)", lamRatio.Mean(), lamRatio.Max())
		tb.AddRow(g, "firstfit", ffRatio.Mean(), ffRatio.Max())
		metrics[fmt.Sprintf("g%d/laminarMax", g)] = lamRatio.Max()
		metrics[fmt.Sprintf("g%d/firstfitMax", g)] = ffRatio.Max()
	}
	return &Result{ID: "A5", Name: "laminar extension", Table: tb, Metrics: metrics}, nil
}

// A4Online measures the price of online arrival (assign on reveal,
// irrevocably, no length sort) against the offline FirstFit and the
// fractional bound, on uniform and Poisson workloads.
func A4Online(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A4 — online policies vs offline FirstFit",
		"workload", "policy", "mean cost/LB", "max cost/LB")
	metrics := map[string]float64{}
	type workload struct {
		name string
		gen  func(t int) *core.Instance
	}
	workloads := []workload{
		{"uniform", func(t int) *core.Instance {
			return generator.General(cfg.Seed+int64(t), 80, 3, 60, 18)
		}},
		{"poisson", func(t int) *core.Instance {
			return trace.Poisson(cfg.Seed+int64(t), 3, 1.5, 60, 6)
		}},
	}
	for _, w := range workloads {
		w := w
		offline, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
			in := w.gen(t)
			return firstfit.Schedule(in).Cost(), core.BestBound(in), nil
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(w.name, "offline firstfit", offline.Mean(), offline.Max())
		metrics[w.name+"/offline/mean"] = offline.Mean()
		for _, polName := range []string{"online-firstfit", "online-bestfit", "online-nextfit"} {
			polName := polName
			sample, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
				in := w.gen(t)
				var pol online.Policy
				switch polName {
				case "online-firstfit":
					pol = online.FirstFit{}
				case "online-bestfit":
					pol = online.BestFit{}
				default:
					pol = &online.NextFit{}
				}
				s, err := online.Run(in, pol)
				if err != nil {
					return 0, 0, err
				}
				return s.Cost(), core.BestBound(in), nil
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(w.name, polName, sample.Mean(), sample.Max())
			metrics[w.name+"/"+polName+"/mean"] = sample.Mean()
		}
		// Semi-online lookahead sweep: buffering k future arrivals and
		// extracting longest-first interpolates towards offline FirstFit.
		for _, k := range []int{2, 8, 32} {
			k := k
			sample, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
				in := w.gen(t)
				s, err := online.RunLookahead(in, k, online.FirstFit{})
				if err != nil {
					return 0, 0, err
				}
				return s.Cost(), core.BestBound(in), nil
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(w.name, fmt.Sprintf("lookahead-%d firstfit", k), sample.Mean(), sample.Max())
			metrics[fmt.Sprintf("%s/lookahead%d/mean", w.name, k)] = sample.Mean()
		}
	}
	return &Result{ID: "A4", Name: "online extension", Table: tb, Metrics: metrics}, nil
}

// A1Ordering isolates step 1 of the paper's FirstFit (the non-increasing
// length sort, which Observation 2.2(b) relies on): the same first-fit rule
// runs under length order, start order, and random order.
func A1Ordering(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A1 — FirstFit ordering ablation",
		"g", "order", "mean cost/LB", "max cost/LB")
	metrics := map[string]float64{}
	for _, g := range []int{2, 4} {
		g := g
		type variant struct {
			name string
			run  func(*core.Instance) *core.Schedule
		}
		variants := []variant{
			{"length (paper)", firstfit.Schedule},
			{"start time", baselines.FirstFitByStart},
			{"random", func(in *core.Instance) *core.Schedule { return baselines.RandomFit(in, 99) }},
		}
		for _, v := range variants {
			v := v
			sample, err := ratioStats(cfg.Trials, func(t int) (float64, float64, error) {
				in := generator.General(cfg.Seed+int64(g*53+t), 80, g, 60, 18)
				return v.run(in).Cost(), core.BestBound(in), nil
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(g, v.name, sample.Mean(), sample.Max())
			metrics[fmt.Sprintf("g%d/%s/mean", g, v.name)] = sample.Mean()
		}
	}
	return &Result{ID: "A1", Name: "ordering ablation", Table: tb, Metrics: metrics}, nil
}

// A2TreeIndex times the interval-tree capacity checks (ScheduleScan, the
// plain machine scan over tree-backed machines) against the fully linear
// variant at increasing instance sizes; the assignments are identical
// (asserted), only the capacity-check data structure differs. The machine
// selection index is ablated separately in A6.
func A2TreeIndex(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A2 — capacity-check index ablation",
		"n", "variant", "time/run", "cost")
	metrics := map[string]float64{}
	for _, n := range []int{100, 1000, 4000} {
		in := generator.General(cfg.Seed, n, 4, float64(n)/2, 30)
		reps := 3
		var treeCost, linCost float64
		start := time.Now()
		for r := 0; r < reps; r++ {
			treeCost = firstfit.ScheduleScan(in).Cost()
		}
		treeTime := time.Since(start) / time.Duration(reps)
		start = time.Now()
		for r := 0; r < reps; r++ {
			linCost = firstfit.ScheduleLinear(in).Cost()
		}
		linTime := time.Since(start) / time.Duration(reps)
		if treeCost != linCost {
			return nil, fmt.Errorf("A2: variants disagree at n=%d: %v vs %v", n, treeCost, linCost)
		}
		tb.AddRow(n, "itree", treeTime.Round(time.Microsecond).String(), treeCost)
		tb.AddRow(n, "linear", linTime.Round(time.Microsecond).String(), linCost)
		metrics[fmt.Sprintf("n%d/speedup", n)] = float64(linTime) / float64(treeTime)
	}
	return &Result{ID: "A2", Name: "index ablation", Table: tb, Metrics: metrics}, nil
}

// A6MachineIndex ablates the machine-selection index (segment tree over
// machine slots + time-bucketed saturation bitmap + sharded capacity
// oracle) against the linear machine scan it replaces. Both paths are exact
// and the schedules must agree bitwise — machine counts and incremental
// costs included — so the table isolates pure selection speed.
func A6MachineIndex(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A6 — machine-selection index ablation",
		"n", "variant", "time/run", "machines", "cost")
	metrics := map[string]float64{}
	for _, n := range []int{1000, 10000, 40000} {
		in := generator.General(cfg.Seed, n, 4, float64(n), 30)
		reps := 3
		var idx, scan *core.Schedule
		start := time.Now()
		for r := 0; r < reps; r++ {
			idx = firstfit.Schedule(in)
		}
		idxTime := time.Since(start) / time.Duration(reps)
		start = time.Now()
		for r := 0; r < reps; r++ {
			scan = firstfit.ScheduleScan(in)
		}
		scanTime := time.Since(start) / time.Duration(reps)
		if idx.Cost() != scan.Cost() || idx.NumMachines() != scan.NumMachines() {
			return nil, fmt.Errorf("A6: variants disagree at n=%d: cost %v/%v machines %d/%d",
				n, idx.Cost(), scan.Cost(), idx.NumMachines(), scan.NumMachines())
		}
		tb.AddRow(n, "indexed", idxTime.Round(time.Microsecond).String(), idx.NumMachines(), idx.Cost())
		tb.AddRow(n, "scan", scanTime.Round(time.Microsecond).String(), scan.NumMachines(), scan.Cost())
		metrics[fmt.Sprintf("n%d/speedup", n)] = float64(scanTime) / float64(idxTime)
	}
	return &Result{ID: "A6", Name: "machine-selection ablation", Table: tb, Metrics: metrics}, nil
}

// A3LocalSearch measures the cost reduction of the move/merge local search
// applied after FirstFit and after arrival-order NextFit.
func A3LocalSearch(cfg Config) (*Result, error) {
	cfg = cfg.fill()
	tb := stats.NewTable("A3 — local-search post-pass",
		"g", "base algorithm", "mean base/LB", "mean improved/LB", "mean gain (%)")
	metrics := map[string]float64{}
	for _, g := range []int{2, 4} {
		g := g
		type variant struct {
			name string
			run  func(*core.Instance) *core.Schedule
		}
		for _, v := range []variant{
			{"firstfit", firstfit.Schedule},
			{"nextfit", baselines.NextFit},
		} {
			var base, improved, gain stats.Sample
			for t := 0; t < cfg.Trials; t++ {
				in := generator.General(cfg.Seed+int64(g*71+t), 60, g, 50, 15)
				lb := core.BestBound(in)
				b := v.run(in)
				imp, err := localsearch.Improve(b, localsearch.Options{MaxRounds: 10})
				if err != nil {
					return nil, err
				}
				if imp.Cost() > b.Cost()+1e-9 {
					return nil, fmt.Errorf("A3: local search increased cost")
				}
				if lb > 0 {
					base.Add(b.Cost() / lb)
					improved.Add(imp.Cost() / lb)
				}
				if b.Cost() > 0 {
					gain.Add(100 * (b.Cost() - imp.Cost()) / b.Cost())
				}
			}
			tb.AddRow(g, v.name, base.Mean(), improved.Mean(), gain.Mean())
			metrics[fmt.Sprintf("g%d/%s/gainPct", g, v.name)] = gain.Mean()
		}
	}
	return &Result{ID: "A3", Name: "local search ablation", Table: tb, Metrics: metrics}, nil
}
