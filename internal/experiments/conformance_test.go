package experiments

// Conformance suite: every registered algorithm must produce a complete,
// feasible schedule whose cost respects the lower bounds and whose replay
// matches the analytic cost, on every instance family it accepts; the
// paper's per-class guarantees are asserted against exact optima.

import (
	"math"
	"strings"
	"testing"

	"busytime/internal/algo"
	_ "busytime/internal/algo/baselines"
	_ "busytime/internal/algo/boundedlength"
	_ "busytime/internal/algo/cliquealgo"
	"busytime/internal/algo/exact"
	_ "busytime/internal/algo/firstfit"
	"busytime/internal/algo/laminar"
	_ "busytime/internal/algo/portfolio"
	_ "busytime/internal/algo/properfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/sim"
)

// families lists the instance classes with their generators and which
// class-restricted algorithms apply.
func families(seed int64) map[string]*core.Instance {
	return map[string]*core.Instance{
		"general": generator.General(seed, 14, 3, 20, 7),
		"proper":  generator.Proper(seed, 14, 3, 20, 7),
		"clique":  generator.Clique(seed, 10, 3, 5, 4),
		"bounded": generator.BoundedLength(seed, 12, 2, 4, 3),
		"laminar": generator.Laminar(seed, 2, 2, 2, 3, 12),
	}
}

func accepts(algName, family string, in *core.Instance) bool {
	switch algName {
	case "clique":
		return in.IsClique()
	case "laminar":
		return laminar.IsLaminar(in.Set())
	case "exact":
		return in.N() <= 14
	case "portfolio":
		return true
	default:
		return true
	}
}

func runSafely(t *testing.T, a algo.Algorithm, in *core.Instance) (s *core.Schedule) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", a.Name, r)
		}
	}()
	return a.Run(in)
}

func TestConformanceAllAlgorithmsAllFamilies(t *testing.T) {
	for _, a := range algo.All() {
		if strings.HasPrefix(a.Name, "zz-") {
			continue // registry-test stubs
		}
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				for family, in := range families(seed) {
					if !accepts(a.Name, family, in) {
						continue
					}
					s := runSafely(t, a, in)
					if err := s.Verify(); err != nil {
						t.Fatalf("%s on %s seed %d: %v", a.Name, family, seed, err)
					}
					if !s.Complete() {
						t.Fatalf("%s on %s seed %d: incomplete", a.Name, family, seed)
					}
					if lb := core.BestBound(in); s.Cost() < lb-1e-9 {
						t.Fatalf("%s on %s seed %d: cost %v below LB %v",
							a.Name, family, seed, s.Cost(), lb)
					}
					if err := sim.Check(s, 1e-6); err != nil {
						t.Fatalf("%s on %s seed %d: replay: %v", a.Name, family, seed, err)
					}
				}
			}
		})
	}
}

func TestConformanceGuarantees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fams := families(seed)

		opt := func(in *core.Instance) float64 {
			c, err := exact.Cost(in)
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			return c
		}
		mustRun := func(name string, in *core.Instance) *core.Schedule {
			a, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			return runSafely(t, a, in)
		}

		// Theorem 2.1: FirstFit ≤ 4·OPT on every family.
		for family, in := range fams {
			o := opt(in)
			if c := mustRun("firstfit", in).Cost(); c > 4*o+1e-9 {
				t.Errorf("seed %d %s: FirstFit %v > 4·OPT %v", seed, family, c, 4*o)
			}
		}
		// Theorem 3.1: greedy ≤ 2·OPT on proper instances.
		if c := mustRun("properfit", fams["proper"]).Cost(); c > 2*opt(fams["proper"])+1e-9 {
			t.Errorf("seed %d: properfit exceeded 2·OPT", seed)
		}
		// Theorem A.1: clique algorithm ≤ 2·OPT on cliques.
		if c := mustRun("clique", fams["clique"]).Cost(); c > 2*opt(fams["clique"])+1e-9 {
			t.Errorf("seed %d: clique exceeded 2·OPT", seed)
		}
		// Lemma 3.3: Bounded_Length ≤ 2·(per-segment optimum) ⇒ ≤ 2·OPT here
		// (segments solved exactly at this size).
		if c := mustRun("boundedlength", fams["bounded"]).Cost(); c > 2*opt(fams["bounded"])+1e-9 {
			t.Errorf("seed %d: boundedlength exceeded 2·OPT", seed)
		}
		// Laminar level grouping is exactly optimal.
		lam := fams["laminar"]
		if lam.N() <= 14 {
			if c := mustRun("laminar", lam).Cost(); math.Abs(c-opt(lam)) > 1e-9 {
				t.Errorf("seed %d: laminar not optimal", seed)
			}
		}
	}
}
