package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// fastCfg keeps unit-test experiment runs quick; the bench harness uses the
// default (larger) configuration.
var fastCfg = Config{Trials: 8, Seed: 1, LargeN: 300}

func TestAllListsTen(t *testing.T) {
	exps := All()
	if len(exps) != 10 {
		t.Fatalf("got %d experiments, want 10", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(fastCfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %s, want %s", res.ID, e.ID)
			}
			out := res.Table.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("table missing experiment ID:\n%s", out)
			}
			if len(res.Metrics) == 0 {
				t.Error("no metrics reported")
			}
		})
	}
}

func TestE1Theorem21Holds(t *testing.T) {
	res, err := E1FirstFitGeneral(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["worstRatio"] > 4+1e-9 {
		t.Errorf("FirstFit ratio %v exceeds Theorem 2.1 bound 4", res.Metrics["worstRatio"])
	}
}

func TestE2RatioApproachesThree(t *testing.T) {
	res, err := E2Fig4(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios increase with g towards 3−2ε′ and stay below 3 and above 1.
	prev := 0.0
	for _, g := range []int{2, 4, 8, 16, 32} {
		r := res.Metrics[fmt.Sprintf("g%d/ratio", g)]
		if r <= prev {
			t.Errorf("g=%d: ratio %v not increasing (prev %v)", g, r, prev)
		}
		if r >= 3 {
			t.Errorf("g=%d: ratio %v ≥ 3", g, r)
		}
		prev = r
	}
	if res.Metrics["finalRatio"] < 2.7 {
		t.Errorf("final ratio %v too far from 3", res.Metrics["finalRatio"])
	}
}

func TestE3Theorem31Holds(t *testing.T) {
	res, err := E3ProperGreedy(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{2, 3} {
		if r := res.Metrics[fmt.Sprintf("g%d/greedyMax", g)]; r > 2+1e-9 {
			t.Errorf("g=%d: greedy ratio %v exceeds 2", g, r)
		}
	}
}

func TestE4Lemma33Holds(t *testing.T) {
	res, err := E4BoundedLength(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{2, 3, 4} {
		if r := res.Metrics[fmt.Sprintf("d%g/segMax", d)]; r > 2+1e-9 {
			t.Errorf("d=%g: segmentation overhead %v exceeds 2", d, r)
		}
	}
}

func TestE5TheoremA1Holds(t *testing.T) {
	res, err := E5Clique(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if strings.HasSuffix(k, "cliqueMax") && v > 2+1e-9 {
			t.Errorf("%s = %v exceeds 2", k, v)
		}
	}
}

func TestE6BoundsAreLowerBounds(t *testing.T) {
	res, err := E6LowerBounds(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if v < 1-1e-9 {
			t.Errorf("%s = %v < 1: OPT fell below a lower bound", k, v)
		}
	}
}

func TestE7GroomingReducesRegenerators(t *testing.T) {
	res, err := E7Optical(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// More grooming capacity must not increase FirstFit regenerators.
	r1 := res.Metrics["g1/firstfit/regen"]
	r8 := res.Metrics["g8/firstfit/regen"]
	if r8 > r1 {
		t.Errorf("regenerators grew with grooming: g=1 %v → g=8 %v", r1, r8)
	}
}

func TestE8TradeoffDirection(t *testing.T) {
	res, err := E8MachineMin(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{2, 4} {
		mmM := res.Metrics[fmt.Sprintf("g%d/machineMinMachines", g)]
		ffM := res.Metrics[fmt.Sprintf("g%d/firstfitMachines", g)]
		if mmM > ffM+1e-9 {
			t.Errorf("g=%d: machine-min used more machines (%v) than firstfit (%v)", g, mmM, ffM)
		}
		// Busy time is not what machine-min optimizes: no per-instance
		// direction is guaranteed, but both costs must be positive and
		// the recorded ratio finite.
		mmC := res.Metrics[fmt.Sprintf("g%d/machineMinCost", g)]
		ffC := res.Metrics[fmt.Sprintf("g%d/firstfitCost", g)]
		if mmC <= 0 || ffC <= 0 {
			t.Errorf("g=%d: degenerate costs mm=%v ff=%v", g, mmC, ffC)
		}
	}
}

func TestE9GreedyBeatsFirstFitOnProperAdversarial(t *testing.T) {
	res, err := E9ProperAdversarial(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{4, 8, 16} {
		ff := res.Metrics[fmt.Sprintf("g%d/firstfit", g)]
		gr := res.Metrics[fmt.Sprintf("g%d/greedy", g)]
		if gr > 2+1e-6 {
			t.Errorf("g=%d: greedy ratio %v exceeds 2", g, gr)
		}
		if ff <= gr {
			t.Errorf("g=%d: FirstFit ratio %v not worse than greedy %v", g, ff, gr)
		}
	}
	if res.Metrics["g16/firstfit"] < 2.5 {
		t.Errorf("FirstFit ratio %v not approaching 3", res.Metrics["g16/firstfit"])
	}
}

func TestE10RatiosFinite(t *testing.T) {
	res, err := E10Demand(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Metrics {
		if v < 1-1e-9 {
			t.Errorf("%s = %v below 1: cost beat a lower bound", k, v)
		}
		if v > 10 {
			t.Errorf("%s = %v implausibly large", k, v)
		}
	}
}
