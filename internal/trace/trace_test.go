package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"busytime/internal/core"
	"busytime/internal/interval"
)

func TestCSVRoundTrip(t *testing.T) {
	in := core.NewInstance(3,
		interval.New(0, 2.5), interval.New(1.25, 4), interval.New(10, 11))
	in.Jobs[1].Demand = 2
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.G != in.G {
		t.Errorf("g = %d, want %d", got.G, in.G)
	}
	if got.N() != in.N() {
		t.Fatalf("n = %d, want %d", got.N(), in.N())
	}
	for i := range in.Jobs {
		if got.Jobs[i] != in.Jobs[i] {
			t.Errorf("job %d: %+v != %+v", i, got.Jobs[i], in.Jobs[i])
		}
	}
}

func TestReadCSVDefaults(t *testing.T) {
	src := "id,start,end,demand\n0,0,1,\n1,2,3\n"
	in, err := ReadCSV(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.G != 2 {
		t.Errorf("defaultG not applied: %d", in.G)
	}
	for _, j := range in.Jobs {
		if j.Demand != 1 {
			t.Errorf("job %d demand %d, want 1", j.ID, j.Demand)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"id,start,end\nx,0,1\n",
		"id,start,end\n0,z,1\n",
		"id,start,end\n0,0,y\n",
		"id,start,end\n0,5,1\n",
		"id,start,end,demand\n0,0,1,eight\n",
		"#g\n",
		"#g,abc\n",
		"id,start,end\n0,0\n",
		"#g,0\nid,start,end\n0,0,1\n", // invalid g → Validate fails
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), 2); err == nil {
			t.Errorf("accepted bad CSV %q", src)
		}
	}
}

// TestReadCSVTypedErrors pins the error taxonomy: malformed numbers are
// ErrBadValue, non-finite or reversed intervals are ErrBadInterval, and —
// the regression this guards — a NaN endpoint is an error, never a panic
// out of interval.New.
func TestReadCSVTypedErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"id,start,end\nx,0,1\n", ErrBadValue},
		{"id,start,end\n0,z,1\n", ErrBadValue},
		{"id,start,end\n0,0,y\n", ErrBadValue},
		{"id,start,end,demand\n0,0,1,eight\n", ErrBadValue},
		{"#g,abc\n", ErrBadValue},
		{"id,start,end\n0,5,1\n", ErrBadInterval},
		{"id,start,end\n0,NaN,1\n", ErrBadInterval},
		{"id,start,end\n0,0,NaN\n", ErrBadInterval},
		{"id,start,end\n0,nan,nan\n", ErrBadInterval},
		{"id,start,end\n0,-Inf,1\n", ErrBadInterval},
		{"id,start,end\n0,0,+Inf\n", ErrBadInterval},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.src), 2)
		if err == nil {
			t.Errorf("accepted bad CSV %q", c.src)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("ReadCSV(%q) = %v, want errors.Is(%v)", c.src, err, c.want)
		}
	}
}

// TestCSVFloatFormattingLossless pins the 'g'/-1 float encoding: endpoints
// that need all 53 bits of the mantissa survive a write/read round trip
// bit for bit.
func TestCSVFloatFormattingLossless(t *testing.T) {
	vals := []float64{0, 0.1, 1.0 / 3, math.Pi, 1e-308, 12345678.000000012, math.Nextafter(2, 3)}
	in := &core.Instance{Name: "fmt", G: 2}
	for i, v := range vals {
		in.Jobs = append(in.Jobs, core.Job{ID: i, Iv: interval.New(v, v+1.0/7), Demand: 1})
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadCSV(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Jobs {
		if rt.Jobs[i].Iv != in.Jobs[i].Iv {
			t.Errorf("job %d: %v != %v after round trip", i, rt.Jobs[i].Iv, in.Jobs[i].Iv)
		}
	}
}

func TestPoissonDeterministicAndPlausible(t *testing.T) {
	a := Poisson(7, 4, 2.0, 100, 3.0)
	b := Poisson(7, 4, 2.0, 100, 3.0)
	if a.N() != b.N() {
		t.Fatal("same seed, different instance")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected ~200 arrivals; accept a generous band.
	if a.N() < 120 || a.N() > 300 {
		t.Errorf("n = %d, expected ≈ 200", a.N())
	}
	// Starts are increasing (arrival process).
	for i := 1; i < a.N(); i++ {
		if a.Jobs[i].Iv.Start < a.Jobs[i-1].Iv.Start {
			t.Fatal("arrivals not time-ordered")
		}
	}
	// Mean length ≈ 3.
	var sum float64
	for _, j := range a.Jobs {
		sum += j.Len()
	}
	mean := sum / float64(a.N())
	if mean < 2 || mean > 4.5 {
		t.Errorf("mean length %v, expected ≈ 3", mean)
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nonpositive rate accepted")
		}
	}()
	Poisson(1, 2, 0, 10, 1)
}

func TestDiurnalPattern(t *testing.T) {
	in := Diurnal(3, 4, 20, 0.5, 8, 1.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count arrivals by hour-of-day halves: midday rate must exceed night.
	night, day := 0, 0
	for _, j := range in.Jobs {
		h := math.Mod(j.Iv.Start, 24)
		switch {
		case h >= 9 && h < 15:
			day++
		case h < 3 || h >= 21:
			night++
		}
	}
	if day <= night {
		t.Errorf("diurnal pattern inverted: day=%d night=%d", day, night)
	}
}

func TestDiurnalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("peak < base accepted")
		}
	}()
	Diurnal(1, 2, 1, 5, 1, 1)
}

func TestGeneratedTracesScheduleCleanly(t *testing.T) {
	for _, in := range []*core.Instance{
		Poisson(11, 3, 1.5, 50, 2),
		Diurnal(11, 3, 3, 0.2, 4, 2),
	} {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadCSV(&buf, in.G)
		if err != nil {
			t.Fatal(err)
		}
		if rt.N() != in.N() {
			t.Errorf("%s: CSV round trip lost jobs", in.Name)
		}
	}
}
