// Package trace provides workload-trace interchange and arrival-process
// generators beyond the uniform families in internal/generator:
//
//   - CSV reading/writing of instances (one job per row: id,start,end,demand)
//     for interoperability with spreadsheet- or script-produced traces;
//   - a homogeneous Poisson arrival process with exponential durations (the
//     standard stochastic model for service requests);
//   - a diurnal (day/night) non-homogeneous Poisson process via thinning,
//     modeling the load pattern of VM-consolidation workloads.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"busytime/internal/core"
	"busytime/internal/interval"
	"busytime/internal/xrand"
)

// Typed parse errors of the CSV reader, following the daemon data plane's
// convention of splitting data errors from framing errors: a row whose
// values are malformed — an unparsable number, a non-finite or reversed
// interval — is a data problem and surfaces as one of these sentinels
// (match with errors.Is), while a structurally broken CSV stream keeps
// surfacing as the csv package's own framing error.
var (
	// ErrBadValue marks a field that failed to parse as its column's type
	// (id, g or demand not an integer, start or end not a float).
	ErrBadValue = errors.New("trace: bad field value")
	// ErrBadInterval marks a job whose interval no schedule could hold:
	// a NaN or infinite endpoint, or end < start.
	ErrBadInterval = errors.New("trace: invalid interval")
)

// WriteCSV writes the instance as CSV with a header row. The parallelism g
// is carried in a leading comment-like row ("#g", value) so a round trip is
// lossless.
func WriteCSV(w io.Writer, in *core.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#g", strconv.Itoa(in.G)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"id", "start", "end", "demand"}); err != nil {
		return err
	}
	for _, j := range in.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.Iv.Start, 'g', -1, 64),
			strconv.FormatFloat(j.Iv.End, 'g', -1, 64),
			strconv.Itoa(j.Demand),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses an instance written by WriteCSV (or hand-authored in the
// same shape). A missing "#g" row falls back to the provided defaultG; a
// missing demand column defaults to 1. Malformed values surface as typed
// errors (ErrBadValue, ErrBadInterval) and the decoded instance is
// validated, so arbitrary input never panics downstream interval or
// schedule construction.
func ReadCSV(r io.Reader, defaultG int) (*core.Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	in := &core.Instance{Name: "csv", G: defaultG}
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	for _, rec := range rows {
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "#g":
			if len(rec) < 2 {
				return nil, fmt.Errorf("trace: #g row missing value")
			}
			g, err := strconv.Atoi(rec[1])
			if err != nil {
				return nil, fmt.Errorf("%w: g %q", ErrBadValue, rec[1])
			}
			in.G = g
			continue
		case "id":
			continue // header
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("trace: row %v has %d fields, want ≥ 3", rec, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: id %q", ErrBadValue, rec[0])
		}
		start, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: start %q", ErrBadValue, rec[1])
		}
		end, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: end %q", ErrBadValue, rec[2])
		}
		// Checked here, not left to interval.New: NaN and ±Inf parse as valid
		// floats but no schedule can hold them, and interval.New panics on
		// NaN — a data error must stay an error on arbitrary input.
		if math.IsNaN(start) || math.IsInf(start, 0) || math.IsNaN(end) || math.IsInf(end, 0) {
			return nil, fmt.Errorf("%w: job %d endpoint not finite [%v, %v]", ErrBadInterval, id, start, end)
		}
		if end < start {
			return nil, fmt.Errorf("%w: job %d has end %v < start %v", ErrBadInterval, id, end, start)
		}
		demand := 1
		if len(rec) >= 4 && rec[3] != "" {
			demand, err = strconv.Atoi(rec[3])
			if err != nil {
				return nil, fmt.Errorf("%w: demand %q", ErrBadValue, rec[3])
			}
		}
		in.Jobs = append(in.Jobs, core.Job{ID: id, Iv: interval.New(start, end), Demand: demand})
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Poisson generates jobs arriving as a homogeneous Poisson process of the
// given rate over [0, horizon), with i.i.d. exponential durations of the
// given mean. Deterministic in seed.
func Poisson(seed int64, g int, rate, horizon, meanLen float64) *core.Instance {
	if rate <= 0 || horizon <= 0 || meanLen <= 0 {
		panic("trace: Poisson requires positive rate, horizon and mean length")
	}
	r := xrand.New(seed)
	in := &core.Instance{
		Name: fmt.Sprintf("poisson(seed=%d,rate=%g)", seed, rate),
		G:    g,
	}
	t := r.ExpFloat64() / rate
	id := 0
	for t < horizon {
		length := r.ExpFloat64() * meanLen
		in.Jobs = append(in.Jobs, core.Job{
			ID:     id,
			Iv:     interval.New(t, t+length),
			Demand: 1,
		})
		id++
		t += r.ExpFloat64() / rate
	}
	return in
}

// Diurnal generates a non-homogeneous Poisson process over the given number
// of 24-unit days: the arrival rate swings sinusoidally between baseRate (at
// night, t mod 24 = 0) and peakRate (midday), realized by thinning.
// Durations are exponential with the given mean. Deterministic in seed.
func Diurnal(seed int64, g, days int, baseRate, peakRate, meanLen float64) *core.Instance {
	if days < 1 || baseRate < 0 || peakRate < baseRate || peakRate <= 0 || meanLen <= 0 {
		panic("trace: Diurnal requires days ≥ 1, 0 ≤ baseRate ≤ peakRate, peakRate > 0, meanLen > 0")
	}
	r := xrand.New(seed)
	in := &core.Instance{
		Name: fmt.Sprintf("diurnal(seed=%d,days=%d)", seed, days),
		G:    g,
	}
	horizon := float64(days) * 24
	rate := func(t float64) float64 {
		phase := 0.5 - 0.5*math.Cos(2*math.Pi*math.Mod(t, 24)/24)
		return baseRate + (peakRate-baseRate)*phase
	}
	t := r.ExpFloat64() / peakRate
	id := 0
	for t < horizon {
		if r.Float64() <= rate(t)/peakRate { // thinning acceptance
			length := r.ExpFloat64() * meanLen
			in.Jobs = append(in.Jobs, core.Job{
				ID:     id,
				Iv:     interval.New(t, t+length),
				Demand: 1,
			})
			id++
		}
		t += r.ExpFloat64() / peakRate
	}
	return in
}
