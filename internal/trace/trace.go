// Package trace provides workload-trace interchange and arrival-process
// generators beyond the uniform families in internal/generator:
//
//   - CSV reading/writing of instances (one job per row: id,start,end,demand)
//     for interoperability with spreadsheet- or script-produced traces;
//   - a homogeneous Poisson arrival process with exponential durations (the
//     standard stochastic model for service requests);
//   - a diurnal (day/night) non-homogeneous Poisson process via thinning,
//     modeling the load pattern of VM-consolidation workloads.
package trace

import (
	"busytime/internal/xrand"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// WriteCSV writes the instance as CSV with a header row. The parallelism g
// is carried in a leading comment-like row ("#g", value) so a round trip is
// lossless.
func WriteCSV(w io.Writer, in *core.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#g", strconv.Itoa(in.G)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"id", "start", "end", "demand"}); err != nil {
		return err
	}
	for _, j := range in.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.Iv.Start, 'g', -1, 64),
			strconv.FormatFloat(j.Iv.End, 'g', -1, 64),
			strconv.Itoa(j.Demand),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses an instance written by WriteCSV (or hand-authored in the
// same shape). A missing "#g" row falls back to the provided defaultG; a
// missing demand column defaults to 1. The decoded instance is validated.
func ReadCSV(r io.Reader, defaultG int) (*core.Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	in := &core.Instance{Name: "csv", G: defaultG}
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	for _, rec := range rows {
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "#g":
			if len(rec) < 2 {
				return nil, fmt.Errorf("trace: #g row missing value")
			}
			g, err := strconv.Atoi(rec[1])
			if err != nil {
				return nil, fmt.Errorf("trace: bad g %q: %w", rec[1], err)
			}
			in.G = g
			continue
		case "id":
			continue // header
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("trace: row %v has %d fields, want ≥ 3", rec, len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad id %q: %w", rec[0], err)
		}
		start, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad start %q: %w", rec[1], err)
		}
		end, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad end %q: %w", rec[2], err)
		}
		if end < start {
			return nil, fmt.Errorf("trace: job %d has end %v < start %v", id, end, start)
		}
		demand := 1
		if len(rec) >= 4 && rec[3] != "" {
			demand, err = strconv.Atoi(rec[3])
			if err != nil {
				return nil, fmt.Errorf("trace: bad demand %q: %w", rec[3], err)
			}
		}
		in.Jobs = append(in.Jobs, core.Job{ID: id, Iv: interval.New(start, end), Demand: demand})
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Poisson generates jobs arriving as a homogeneous Poisson process of the
// given rate over [0, horizon), with i.i.d. exponential durations of the
// given mean. Deterministic in seed.
func Poisson(seed int64, g int, rate, horizon, meanLen float64) *core.Instance {
	if rate <= 0 || horizon <= 0 || meanLen <= 0 {
		panic("trace: Poisson requires positive rate, horizon and mean length")
	}
	r := xrand.New(seed)
	in := &core.Instance{
		Name: fmt.Sprintf("poisson(seed=%d,rate=%g)", seed, rate),
		G:    g,
	}
	t := r.ExpFloat64() / rate
	id := 0
	for t < horizon {
		length := r.ExpFloat64() * meanLen
		in.Jobs = append(in.Jobs, core.Job{
			ID:     id,
			Iv:     interval.New(t, t+length),
			Demand: 1,
		})
		id++
		t += r.ExpFloat64() / rate
	}
	return in
}

// Diurnal generates a non-homogeneous Poisson process over the given number
// of 24-unit days: the arrival rate swings sinusoidally between baseRate (at
// night, t mod 24 = 0) and peakRate (midday), realized by thinning.
// Durations are exponential with the given mean. Deterministic in seed.
func Diurnal(seed int64, g, days int, baseRate, peakRate, meanLen float64) *core.Instance {
	if days < 1 || baseRate < 0 || peakRate < baseRate || peakRate <= 0 || meanLen <= 0 {
		panic("trace: Diurnal requires days ≥ 1, 0 ≤ baseRate ≤ peakRate, peakRate > 0, meanLen > 0")
	}
	r := xrand.New(seed)
	in := &core.Instance{
		Name: fmt.Sprintf("diurnal(seed=%d,days=%d)", seed, days),
		G:    g,
	}
	horizon := float64(days) * 24
	rate := func(t float64) float64 {
		phase := 0.5 - 0.5*math.Cos(2*math.Pi*math.Mod(t, 24)/24)
		return baseRate + (peakRate-baseRate)*phase
	}
	t := r.ExpFloat64() / peakRate
	id := 0
	for t < horizon {
		if r.Float64() <= rate(t)/peakRate { // thinning acceptance
			length := r.ExpFloat64() * meanLen
			in.Jobs = append(in.Jobs, core.Job{
				ID:     id,
				Iv:     interval.New(t, t+length),
				Demand: 1,
			})
			id++
		}
		t += r.ExpFloat64() / peakRate
	}
	return in
}
