package trace

import (
	"bytes"
	"strings"
	"testing"

	"busytime/internal/core"
	"busytime/internal/interval"
	"busytime/internal/xrand"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// everything it accepts survives a write/read round trip. The seeds include
// the data-error shapes the typed-error split guards: NaN and infinite
// endpoints (which parse as floats but must be rejected, not passed to
// interval.New), reversed intervals, and malformed numbers.
func FuzzReadCSV(f *testing.F) {
	f.Add("#g,2\nid,start,end,demand\n0,0,1,1\n")
	f.Add("id,start,end\n0,0,1\n1,0.5,2.25\n")
	f.Add("")
	f.Add("#g,0\n")
	f.Add("id,start,end\n0,5,1\n")
	f.Add("garbage,,,,\n")
	f.Add("id,start,end\n0,NaN,1\n")
	f.Add("id,start,end\n0,0,NaN\n")
	f.Add("id,start,end\n0,-Inf,+Inf\n")
	f.Add("id,start,end\n0,1e309,2e309\n")
	f.Add("id,start,end,demand\n0,0,1,\n")
	f.Add("#g,2\n#g,3\nid,start,end\n0,0,1\n")
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadCSV(strings.NewReader(src), 2)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("WriteCSV on accepted instance: %v", err)
		}
		rt, err := ReadCSV(&buf, in.G)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.N() != in.N() || rt.G != in.G {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", rt.N(), rt.G, in.N(), in.G)
		}
	})
}

// FuzzCSVRoundTrip drives the write side: pseudo-random instances — full
// float64 endpoints, mixed demands, sparse demand columns — must round-trip
// through WriteCSV/ReadCSV with every job bit-identical: g lossless, float
// formatting exact ('g', -1 shortest round-trip), missing demand defaulting
// to 1 on both sides.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3))
	f.Add(int64(42), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(50), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nJobs, g uint8) {
		if g == 0 {
			g = 1
		}
		r := xrand.New(seed)
		in := &core.Instance{Name: "fuzz", G: int(g)}
		for i := 0; i < int(nJobs); i++ {
			// Endpoints exercise the formatter: mix tiny, fractional and
			// large magnitudes, all finite by construction.
			s := (r.Float64() - 0.5) * 1e9 * r.Float64() * r.Float64()
			l := r.ExpFloat64() * 100
			d := 1 + r.Intn(int(g))
			in.Jobs = append(in.Jobs, core.Job{ID: i, Iv: interval.New(s, s+l), Demand: d})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		rt, err := ReadCSV(&buf, 99)
		if err != nil {
			t.Fatalf("ReadCSV rejected own output: %v", err)
		}
		if rt.G != in.G {
			t.Fatalf("g not lossless: %d vs %d", rt.G, in.G)
		}
		if rt.N() != in.N() {
			t.Fatalf("job count changed: %d vs %d", rt.N(), in.N())
		}
		for i := range in.Jobs {
			if rt.Jobs[i] != in.Jobs[i] {
				t.Fatalf("job %d changed: %+v vs %+v", i, rt.Jobs[i], in.Jobs[i])
			}
		}
	})
}
