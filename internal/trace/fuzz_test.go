package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// everything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("#g,2\nid,start,end,demand\n0,0,1,1\n")
	f.Add("id,start,end\n0,0,1\n1,0.5,2.25\n")
	f.Add("")
	f.Add("#g,0\n")
	f.Add("id,start,end\n0,5,1\n")
	f.Add("garbage,,,,\n")
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadCSV(strings.NewReader(src), 2)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			t.Fatalf("WriteCSV on accepted instance: %v", err)
		}
		rt, err := ReadCSV(&buf, in.G)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.N() != in.N() || rt.G != in.G {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", rt.N(), rt.G, in.N(), in.G)
		}
	})
}
