// Package itree implements a dynamic interval tree: a treap keyed by
// interval start, augmented with subtree maximum end. It supports insertion,
// deletion, stabbing queries and window-overlap queries in expected
// O(log n + k) time, where k is the number of reported items.
//
// Schedulers use one tree per machine to find the jobs that conflict with a
// candidate job without scanning the machine's whole job list.
package itree

import (
	"busytime/internal/interval"
)

// Item is an interval with an opaque integer payload (typically a job index).
type Item struct {
	Iv interval.Interval
	ID int
}

type node struct {
	item        Item
	priority    uint64
	maxEnd      float64
	size        int
	left, right *node
}

// Tree is a dynamic interval tree. The zero value is an empty tree ready to
// use. Tree is not safe for concurrent mutation.
type Tree struct {
	root *node
	rng  uint64
}

// New returns an empty tree. Equivalent to new(Tree) but allows seeding the
// internal priority generator for reproducible shapes in tests.
func New(seed uint64) *Tree {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Tree{rng: seed}
}

// nextPriority is a splitmix64 step; treap priorities only need to be
// well-distributed, not cryptographic.
func (t *Tree) nextPriority() uint64 {
	if t.rng == 0 {
		t.rng = 0x9e3779b97f4a7c15
	}
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return size(t.root) }

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func maxEnd(n *node) float64 {
	if n == nil {
		return negInf
	}
	return n.maxEnd
}

const negInf = -1.7976931348623157e308

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
	n.maxEnd = n.item.Iv.End
	if m := maxEnd(n.left); m > n.maxEnd {
		n.maxEnd = m
	}
	if m := maxEnd(n.right); m > n.maxEnd {
		n.maxEnd = m
	}
}

// less orders items by (start, end, id) so duplicates are handled
// deterministically.
func less(a, b Item) bool {
	if a.Iv.Start != b.Iv.Start {
		return a.Iv.Start < b.Iv.Start
	}
	if a.Iv.End != b.Iv.End {
		return a.Iv.End < b.Iv.End
	}
	return a.ID < b.ID
}

// split partitions n into (< pivot, ≥ pivot).
func split(n *node, pivot Item) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if less(n.item, pivot) {
		n.right, r = split(n.right, pivot)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, pivot)
	n.update()
	return l, n
}

func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.priority > r.priority:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Insert adds an item to the tree. Duplicate intervals (even with equal IDs)
// are stored as separate items.
func (t *Tree) Insert(it Item) {
	nn := &node{item: it, priority: t.nextPriority()}
	nn.update()
	l, r := split(t.root, it)
	t.root = merge(merge(l, nn), r)
}

// Delete removes one item equal to it (same interval and ID). It reports
// whether an item was removed.
func (t *Tree) Delete(it Item) bool {
	var removed bool
	t.root = deleteNode(t.root, it, &removed)
	return removed
}

func deleteNode(n *node, it Item, removed *bool) *node {
	if n == nil {
		return nil
	}
	switch {
	case n.item == it && !*removed:
		*removed = true
		return merge(n.left, n.right)
	case less(it, n.item):
		n.left = deleteNode(n.left, it, removed)
	default:
		n.right = deleteNode(n.right, it, removed)
	}
	n.update()
	return n
}

// Stab appends to dst every item whose closed interval contains t and
// returns the extended slice.
func (t *Tree) Stab(dst []Item, pt float64) []Item {
	return stab(t.root, dst, pt)
}

func stab(n *node, dst []Item, pt float64) []Item {
	if n == nil || n.maxEnd < pt {
		return dst
	}
	dst = stab(n.left, dst, pt)
	if n.item.Iv.Contains(pt) {
		dst = append(dst, n.item)
	}
	if n.item.Iv.Start <= pt {
		dst = stab(n.right, dst, pt)
	}
	return dst
}

// Overlapping appends to dst every item whose closed interval intersects w
// (touching counts) and returns the extended slice.
func (t *Tree) Overlapping(dst []Item, w interval.Interval) []Item {
	return overlapping(t.root, dst, w)
}

func overlapping(n *node, dst []Item, w interval.Interval) []Item {
	if n == nil || n.maxEnd < w.Start {
		return dst
	}
	dst = overlapping(n.left, dst, w)
	if n.item.Iv.Overlaps(w) {
		dst = append(dst, n.item)
	}
	if n.item.Iv.Start <= w.End {
		dst = overlapping(n.right, dst, w)
	}
	return dst
}

// AnyOverlap reports whether any stored interval intersects w.
func (t *Tree) AnyOverlap(w interval.Interval) bool {
	n := t.root
	for n != nil {
		if n.maxEnd < w.Start {
			return false
		}
		if n.item.Iv.Overlaps(w) {
			return true
		}
		if anyOverlap(n.left, w) {
			return true
		}
		if n.item.Iv.Start > w.End {
			n = n.left
			continue
		}
		n = n.right
	}
	return false
}

func anyOverlap(n *node, w interval.Interval) bool {
	if n == nil || n.maxEnd < w.Start {
		return false
	}
	if n.item.Iv.Overlaps(w) {
		return true
	}
	if anyOverlap(n.left, w) {
		return true
	}
	if n.item.Iv.Start <= w.End {
		return anyOverlap(n.right, w)
	}
	return false
}

// Items appends all stored items in (start, end, id) order to dst and
// returns the extended slice.
func (t *Tree) Items(dst []Item) []Item {
	var walk func(*node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		dst = append(dst, n.item)
		walk(n.right)
	}
	walk(t.root)
	return dst
}

// MaxDepthWithin returns the maximum number of stored intervals
// simultaneously active at any point of the closed window w. It collects the
// overlapping items and runs a sweep clipped to w; touching intervals count
// together (closed semantics), matching machine-capacity checks.
func (t *Tree) MaxDepthWithin(w interval.Interval) int {
	items := t.Overlapping(nil, w)
	if len(items) == 0 {
		return 0
	}
	set := make(interval.Set, 0, len(items))
	for _, it := range items {
		if x, ok := it.Iv.Intersect(w); ok {
			set = append(set, x)
		}
	}
	return set.MaxDepth()
}
