// Package itree implements a dynamic interval tree: a treap keyed by
// interval start, augmented with subtree maximum end. It supports insertion,
// deletion, stabbing queries and window-overlap queries in expected
// O(log n + k) time, where k is the number of reported items.
//
// Nodes live in a per-tree arena (a contiguous slice addressed by index)
// rather than behind individual pointers: traversals stay cache-local, the
// garbage collector sees one allocation per tree, and Reset is an O(1)
// truncation that retains the arena for reuse. Schedulers use one tree per
// machine to find the jobs that conflict with a candidate job without
// scanning the machine's whole job list.
package itree

import (
	"slices"

	"busytime/internal/interval"
)

// Item is an interval with an opaque integer payload (typically a job index).
type Item struct {
	Iv interval.Interval
	ID int
}

// node is an arena slot. left and right are arena indices; index 0 is the
// shared sentinel playing the role of nil, with size 0 and maxEnd -inf so
// child lookups need no branching.
type node struct {
	item        Item
	priority    uint64
	maxEnd      float64
	size        int32
	left, right int32
}

// Tree is a dynamic interval tree. The zero value is an empty tree ready to
// use. Tree is not safe for concurrent mutation.
type Tree struct {
	nodes []node  // arena; nodes[0] is the sentinel, root 0 means empty
	free  []int32 // slots released by Delete, reused before the arena grows
	root  int32
	rng   uint64
	// Scratch buffers reused by MaxDepthWithinAt so the hot capacity check
	// of schedulers does not allocate once the tree is warm.
	qbuf []Item
	sbuf []float64
	ebuf []float64
}

// New returns an empty tree. Equivalent to new(Tree) but allows seeding the
// internal priority generator for reproducible shapes in tests.
func New(seed uint64) *Tree {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Tree{rng: seed}
}

// nextPriority is a splitmix64 step; treap priorities only need to be
// well-distributed, not cryptographic.
func (t *Tree) nextPriority() uint64 {
	if t.rng == 0 {
		t.rng = 0x9e3779b97f4a7c15
	}
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const negInf = -1.7976931348623157e308

// Len returns the number of items in the tree.
func (t *Tree) Len() int {
	if t.root == 0 {
		return 0
	}
	return int(t.nodes[t.root].size)
}

// Reset removes every item in O(1) while retaining the arena, so a warm tree
// that is repeatedly filled and Reset stops allocating and refills its nodes
// contiguously. Schedulers use this to recycle per-machine trees across the
// instances of a batch.
func (t *Tree) Reset() {
	if len(t.nodes) > 0 {
		t.nodes = t.nodes[:1]
	}
	t.free = t.free[:0]
	t.root = 0
}

// ResetSeed is Reset plus a reseed of the priority generator, so a recycled
// tree reproduces the exact shape a fresh New(seed) tree would build from
// the same insertion sequence. Machine pools use it to keep treap shapes
// independent of how often a tree has been recycled.
func (t *Tree) ResetSeed(seed uint64) {
	t.Reset()
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	t.rng = seed
}

// newNode reserves an arena slot for it and returns the slot's index.
func (t *Tree) newNode(it Item) int32 {
	if len(t.nodes) == 0 {
		// Materialize the sentinel on first use so the zero Tree works.
		t.nodes = append(t.nodes, node{maxEnd: negInf})
	}
	if k := len(t.free); k > 0 {
		idx := t.free[k-1]
		t.free = t.free[:k-1]
		t.nodes[idx] = node{item: it, priority: t.nextPriority(), maxEnd: it.Iv.End, size: 1}
		return idx
	}
	t.nodes = append(t.nodes, node{item: it, priority: t.nextPriority(), maxEnd: it.Iv.End, size: 1})
	return int32(len(t.nodes) - 1)
}

func (t *Tree) update(n int32) {
	nd := &t.nodes[n]
	nd.size = 1 + t.nodes[nd.left].size + t.nodes[nd.right].size
	nd.maxEnd = nd.item.Iv.End
	if m := t.nodes[nd.left].maxEnd; m > nd.maxEnd {
		nd.maxEnd = m
	}
	if m := t.nodes[nd.right].maxEnd; m > nd.maxEnd {
		nd.maxEnd = m
	}
}

// less orders items by (start, end, id) so duplicates are handled
// deterministically.
func less(a, b Item) bool {
	if a.Iv.Start != b.Iv.Start {
		return a.Iv.Start < b.Iv.Start
	}
	if a.Iv.End != b.Iv.End {
		return a.Iv.End < b.Iv.End
	}
	return a.ID < b.ID
}

// split partitions n into (< pivot, ≥ pivot).
func (t *Tree) split(n int32, pivot Item) (l, r int32) {
	if n == 0 {
		return 0, 0
	}
	if less(t.nodes[n].item, pivot) {
		t.nodes[n].right, r = t.split(t.nodes[n].right, pivot)
		t.update(n)
		return n, r
	}
	l, t.nodes[n].left = t.split(t.nodes[n].left, pivot)
	t.update(n)
	return l, n
}

func (t *Tree) merge(l, r int32) int32 {
	switch {
	case l == 0:
		return r
	case r == 0:
		return l
	case t.nodes[l].priority > t.nodes[r].priority:
		t.nodes[l].right = t.merge(t.nodes[l].right, r)
		t.update(l)
		return l
	default:
		t.nodes[r].left = t.merge(l, t.nodes[r].left)
		t.update(r)
		return r
	}
}

// Insert adds an item to the tree. Duplicate intervals (even with equal IDs)
// are stored as separate items.
func (t *Tree) Insert(it Item) {
	nn := t.newNode(it)
	l, r := t.split(t.root, it)
	t.root = t.merge(t.merge(l, nn), r)
}

// Delete removes one item equal to it (same interval and ID). It reports
// whether an item was removed.
func (t *Tree) Delete(it Item) bool {
	var removed bool
	t.root = t.deleteNode(t.root, it, &removed)
	return removed
}

func (t *Tree) deleteNode(n int32, it Item, removed *bool) int32 {
	if n == 0 {
		return 0
	}
	switch {
	case t.nodes[n].item == it && !*removed:
		*removed = true
		m := t.merge(t.nodes[n].left, t.nodes[n].right)
		t.free = append(t.free, n)
		return m
	case less(it, t.nodes[n].item):
		t.nodes[n].left = t.deleteNode(t.nodes[n].left, it, removed)
	default:
		t.nodes[n].right = t.deleteNode(t.nodes[n].right, it, removed)
	}
	t.update(n)
	return n
}

// Stab appends to dst every item whose closed interval contains t and
// returns the extended slice.
func (t *Tree) Stab(dst []Item, pt float64) []Item {
	return t.stab(t.root, dst, pt)
}

func (t *Tree) stab(n int32, dst []Item, pt float64) []Item {
	for n != 0 {
		nd := &t.nodes[n]
		if nd.maxEnd < pt {
			return dst
		}
		dst = t.stab(nd.left, dst, pt)
		if nd.item.Iv.Contains(pt) {
			dst = append(dst, nd.item)
		}
		if nd.item.Iv.Start > pt {
			return dst
		}
		n = nd.right
	}
	return dst
}

// Overlapping appends to dst every item whose closed interval intersects w
// (touching counts) and returns the extended slice. Items are reported in
// (start, end, id) order.
func (t *Tree) Overlapping(dst []Item, w interval.Interval) []Item {
	return t.overlapping(t.root, dst, w)
}

func (t *Tree) overlapping(n int32, dst []Item, w interval.Interval) []Item {
	// The right spine is walked iteratively so recursion depth only covers
	// left descents.
	for n != 0 {
		nd := &t.nodes[n]
		if nd.maxEnd < w.Start {
			return dst
		}
		dst = t.overlapping(nd.left, dst, w)
		if nd.item.Iv.Overlaps(w) {
			dst = append(dst, nd.item)
		}
		if nd.item.Iv.Start > w.End {
			return dst
		}
		n = nd.right
	}
	return dst
}

// AnyOverlap reports whether any stored interval intersects w.
func (t *Tree) AnyOverlap(w interval.Interval) bool {
	return t.anyOverlap(t.root, w)
}

func (t *Tree) anyOverlap(n int32, w interval.Interval) bool {
	for n != 0 {
		nd := &t.nodes[n]
		if nd.maxEnd < w.Start {
			return false
		}
		if nd.item.Iv.Overlaps(w) {
			return true
		}
		if t.anyOverlap(nd.left, w) {
			return true
		}
		if nd.item.Iv.Start > w.End {
			return false
		}
		n = nd.right
	}
	return false
}

// Items appends all stored items in (start, end, id) order to dst and
// returns the extended slice.
func (t *Tree) Items(dst []Item) []Item {
	var walk func(int32)
	walk = func(n int32) {
		if n == 0 {
			return
		}
		walk(t.nodes[n].left)
		dst = append(dst, t.nodes[n].item)
		walk(t.nodes[n].right)
	}
	walk(t.root)
	return dst
}

// MaxDepthWithin returns the maximum number of stored intervals
// simultaneously active at any point of the closed window w. Touching
// intervals count together (closed semantics), matching machine-capacity
// checks.
func (t *Tree) MaxDepthWithin(w interval.Interval) int {
	d, _ := t.MaxDepthWithinAt(w)
	return d
}

// MaxDepthWithinAt is MaxDepthWithin returning additionally a witness point
// at ∈ w where the maximum depth is attained (at is 0 when the depth is 0).
// Because schedulers only ever add intervals, the depth at the witness point
// can never decrease later, which makes (at, depth) a durable saturation hint
// for capacity pruning. The query reuses internal scratch buffers and does
// not allocate once the tree is warm; it must not be called concurrently.
func (t *Tree) MaxDepthWithinAt(w interval.Interval) (depth int, at float64) {
	depth, at, _, _ = t.MaxDepthRunWithinAt(w, int(^uint(0)>>1))
	return depth, at
}

// MaxDepthRunWithinAt is MaxDepthWithinAt extended with saturated-run
// extraction: when the maximum depth reaches thresh (ok reports this), run is
// a maximal sub-interval of w containing the deepest witness on which the
// depth is at least thresh at every point, closed semantics included. Because
// items are only ever added, every point of the run keeps depth ≥ thresh for
// the tree's lifetime; schedulers use the run to mark whole stretches of a
// machine's timeline as saturated from a single rejected probe.
func (t *Tree) MaxDepthRunWithinAt(w interval.Interval, thresh int) (depth int, at float64, run interval.Interval, ok bool) {
	t.qbuf = t.Overlapping(t.qbuf[:0], w)
	if len(t.qbuf) == 0 {
		return 0, 0, interval.Interval{}, false
	}
	starts, ends := t.sbuf[:0], t.ebuf[:0]
	for _, it := range t.qbuf {
		// Every reported item overlaps w; clip it to the window.
		s, e := it.Iv.Start, it.Iv.End
		if s < w.Start {
			s = w.Start
		}
		if e > w.End {
			e = w.End
		}
		starts = append(starts, s)
		ends = append(ends, e)
	}
	t.sbuf, t.ebuf = starts, ends
	// Overlapping reports items in (start, end, id) order and clipping to
	// max(start, w.Start) preserves that order, so only the ends need
	// sorting; the sweep is then a two-pointer merge. Processing starts
	// first at equal coordinates gives closed semantics: a job ending at t
	// and one starting at t are both active at t.
	slices.Sort(ends)
	if thresh < 1 {
		thresh = 1
	}
	cur, best := 0, 0
	inRun, runStart, bestRunStart := false, 0.0, 0.0
	i, j := 0, 0
	for i < len(starts) {
		if starts[i] <= ends[j] {
			cur++
			if cur >= thresh && !inRun {
				inRun, runStart = true, starts[i]
			}
			if cur > best {
				best = cur
				at = starts[i]
				bestRunStart = runStart
			}
			i++
		} else {
			if inRun && cur-1 < thresh {
				// The run closes at this end; the ending item is still
				// active at its endpoint (closed), so the point ends[j]
				// itself is saturated.
				inRun = false
				if best >= thresh && bestRunStart == runStart {
					run, ok = interval.Interval{Start: runStart, End: ends[j]}, true
				}
			}
			cur--
			j++
		}
	}
	// Starts are exhausted; drain ends until the open run (if any) closes.
	for inRun && j < len(ends) {
		if cur-1 < thresh {
			inRun = false
			if best >= thresh && bestRunStart == runStart {
				run, ok = interval.Interval{Start: runStart, End: ends[j]}, true
			}
		}
		cur--
		j++
	}
	return best, at, run, ok
}
