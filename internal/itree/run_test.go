package itree

import (
	"math/rand"
	"testing"

	"busytime/internal/interval"
)

// bruteDepthAt counts stored items containing t (closed semantics) for the
// given item list.
func bruteDepthAt(items []Item, t float64) int {
	d := 0
	for _, it := range items {
		if it.Iv.Contains(t) {
			d++
		}
	}
	return d
}

// TestMaxDepthRunSound checks the run contract against brute force: every
// sampled point of the reported run has depth ≥ thresh, the run lies inside
// the window, and ok agrees with depth ≥ thresh.
func TestMaxDepthRunSound(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		tree := New(uint64(seed + 1))
		var items []Item
		for k := 0; k < 40; k++ {
			s := float64(r.Intn(30))
			iv := interval.Interval{Start: s, End: s + float64(r.Intn(8))}
			it := Item{Iv: iv, ID: k}
			tree.Insert(it)
			items = append(items, it)
		}
		for q := 0; q < 30; q++ {
			ws := float64(r.Intn(30))
			w := interval.Interval{Start: ws, End: ws + float64(r.Intn(10))}
			for thresh := 1; thresh <= 6; thresh++ {
				depth, at, run, ok := tree.MaxDepthRunWithinAt(w, thresh)
				wantDepth, _ := tree.MaxDepthWithinAt(w)
				if depth != wantDepth {
					t.Fatalf("seed %d: depth %d != MaxDepthWithinAt %d", seed, depth, wantDepth)
				}
				if ok != (depth >= thresh) {
					t.Fatalf("seed %d: ok=%v but depth=%d thresh=%d", seed, ok, depth, thresh)
				}
				if !ok {
					continue
				}
				if !w.ContainsInterval(run) {
					t.Fatalf("seed %d: run %v outside window %v", seed, run, w)
				}
				if !run.Contains(at) {
					t.Fatalf("seed %d: run %v misses witness %v", seed, run, at)
				}
				// Sample the run densely, endpoints included.
				for i := 0; i <= 20; i++ {
					p := run.Start + (run.End-run.Start)*float64(i)/20
					if d := bruteDepthAt(items, p); d < thresh {
						t.Fatalf("seed %d: depth %d < thresh %d at %v inside run %v (w=%v)",
							seed, d, thresh, p, run, w)
					}
				}
			}
		}
	}
}

// TestMaxDepthRunMaximal pins down that the run extends across event points
// while the depth stays at or above the threshold.
func TestMaxDepthRunMaximal(t *testing.T) {
	tree := New(1)
	// Depth profile over [0,10]: [0,4]:1+, [2,8]:+1, [3,6]:+1 → depth ≥ 2 on [2,6].
	tree.Insert(Item{Iv: interval.Interval{Start: 0, End: 4}, ID: 0})
	tree.Insert(Item{Iv: interval.Interval{Start: 2, End: 8}, ID: 1})
	tree.Insert(Item{Iv: interval.Interval{Start: 3, End: 6}, ID: 2})
	w := interval.Interval{Start: 0, End: 10}
	depth, at, run, ok := tree.MaxDepthRunWithinAt(w, 2)
	if depth != 3 || !ok {
		t.Fatalf("depth=%d ok=%v, want 3/true", depth, ok)
	}
	if run != (interval.Interval{Start: 2, End: 6}) {
		t.Fatalf("run=%v, want [2,6]", run)
	}
	if at != 3 {
		t.Fatalf("witness=%v, want 3", at)
	}
}
