package itree

import (
	"math/rand"
	"testing"

	"busytime/internal/interval"
)

func randItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		s := r.Float64() * 40
		items[i] = Item{Iv: interval.New(s, s+r.Float64()*10), ID: i}
	}
	return items
}

// refDepthWithin recomputes MaxDepthWithin naively from a plain item slice.
func refDepthWithin(items []Item, w interval.Interval) int {
	set := make(interval.Set, 0, len(items))
	for _, it := range items {
		if x, ok := it.Iv.Intersect(w); ok {
			set = append(set, x)
		}
	}
	return set.MaxDepth()
}

// TestMaxDepthWithinAtMatchesNaive checks depth and witness validity on
// random trees and windows.
func TestMaxDepthWithinAtMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		items := randItems(r, 1+r.Intn(60))
		tr := New(uint64(seed) + 1)
		for _, it := range items {
			tr.Insert(it)
		}
		for q := 0; q < 40; q++ {
			s := r.Float64() * 45
			w := interval.New(s, s+r.Float64()*12)
			depth, at := tr.MaxDepthWithinAt(w)
			if want := refDepthWithin(items, w); depth != want {
				t.Fatalf("seed %d query %v: depth = %d, want %d", seed, w, depth, want)
			}
			if depth > 0 {
				if !w.Contains(at) {
					t.Fatalf("seed %d query %v: witness %v outside window", seed, w, at)
				}
				// The reported depth must be attained at the witness point.
				n := 0
				for _, it := range items {
					if it.Iv.Contains(at) {
						n++
					}
				}
				if n != depth {
					t.Fatalf("seed %d query %v: depth at witness %v is %d, reported %d", seed, w, at, n, depth)
				}
			}
		}
	}
}

// TestResetReuse fills, resets and refills a tree, checking queries stay
// correct and the node pool is actually reused (no growth in live nodes).
func TestResetReuse(t *testing.T) {
	tr := New(7)
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		items := randItems(r, 50)
		for _, it := range items {
			tr.Insert(it)
		}
		if got := tr.Len(); got != 50 {
			t.Fatalf("round %d: Len = %d, want 50", round, got)
		}
		w := interval.New(10, 30)
		if got, want := tr.MaxDepthWithin(w), refDepthWithin(items, w); got != want {
			t.Fatalf("round %d: depth %d, want %d", round, got, want)
		}
		tr.Reset()
		if got := tr.Len(); got != 0 {
			t.Fatalf("round %d: Len after Reset = %d, want 0", round, got)
		}
		if d, _ := tr.MaxDepthWithinAt(interval.New(0, 50)); d != 0 {
			t.Fatalf("round %d: depth after Reset = %d, want 0", round, d)
		}
	}
}

// TestInsertAfterResetStopsAllocating pins the node-pool behavior the batch
// engine relies on: a warm tree refilled to the same size allocates no new
// nodes.
func TestInsertAfterResetStopsAllocating(t *testing.T) {
	tr := New(3)
	r := rand.New(rand.NewSource(3))
	items := randItems(r, 200)
	for _, it := range items {
		tr.Insert(it)
	}
	tr.Reset()
	allocs := testing.AllocsPerRun(20, func() {
		for _, it := range items {
			tr.Insert(it)
		}
		tr.Reset()
	})
	if allocs > 1 {
		t.Errorf("refilling a warm tree allocates %.1f times per run, want ≤ 1", allocs)
	}
}
