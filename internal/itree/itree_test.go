package itree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"busytime/internal/interval"
)

func buildRandom(r *rand.Rand, n int) (*Tree, []Item) {
	t := New(uint64(r.Int63()) | 1)
	items := make([]Item, n)
	for i := range items {
		start := r.Float64() * 100
		items[i] = Item{Iv: interval.New(start, start+r.Float64()*25), ID: i}
		t.Insert(items[i])
	}
	return t, items
}

func bruteStab(items []Item, pt float64) []Item {
	var out []Item
	for _, it := range items {
		if it.Iv.Contains(pt) {
			out = append(out, it)
		}
	}
	return out
}

func bruteOverlap(items []Item, w interval.Interval) []Item {
	var out []Item
	for _, it := range items {
		if it.Iv.Overlaps(w) {
			out = append(out, it)
		}
	}
	return out
}

func sortItems(items []Item) {
	slices.SortFunc(items, func(a, b Item) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

func sameItems(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	sortItems(a)
	sortItems(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if got := tr.Stab(nil, 1); len(got) != 0 {
		t.Error("stab on empty tree returned items")
	}
	if tr.AnyOverlap(interval.New(0, 10)) {
		t.Error("AnyOverlap true on empty tree")
	}
	if tr.MaxDepthWithin(interval.New(0, 10)) != 0 {
		t.Error("MaxDepthWithin nonzero on empty tree")
	}
	if tr.Delete(Item{Iv: interval.New(0, 1)}) {
		t.Error("Delete succeeded on empty tree")
	}
}

func TestInsertLenItems(t *testing.T) {
	tr := New(7)
	ivs := []interval.Interval{
		interval.New(5, 9), interval.New(0, 3), interval.New(2, 4), interval.New(2, 4),
	}
	for i, iv := range ivs {
		tr.Insert(Item{Iv: iv, ID: i})
	}
	if tr.Len() != len(ivs) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ivs))
	}
	items := tr.Items(nil)
	if len(items) != len(ivs) {
		t.Fatalf("Items returned %d, want %d", len(items), len(ivs))
	}
	for i := 1; i < len(items); i++ {
		if less(items[i], items[i-1]) {
			t.Fatalf("Items not sorted: %v", items)
		}
	}
}

func TestStabTouching(t *testing.T) {
	tr := New(1)
	tr.Insert(Item{Iv: interval.New(0, 1), ID: 0})
	tr.Insert(Item{Iv: interval.New(1, 2), ID: 1})
	got := tr.Stab(nil, 1)
	if len(got) != 2 {
		t.Errorf("Stab(1) = %v, want both touching intervals", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New(3)
	a := Item{Iv: interval.New(0, 5), ID: 1}
	b := Item{Iv: interval.New(0, 5), ID: 1} // duplicate
	c := Item{Iv: interval.New(2, 3), ID: 2}
	tr.Insert(a)
	tr.Insert(b)
	tr.Insert(c)
	if !tr.Delete(a) {
		t.Fatal("Delete failed for present item")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d, want 2", tr.Len())
	}
	// The duplicate must still be found.
	if got := tr.Stab(nil, 4); len(got) != 1 || got[0] != b {
		t.Errorf("after delete, Stab(4) = %v, want one copy", got)
	}
	if tr.Delete(Item{Iv: interval.New(9, 10), ID: 9}) {
		t.Error("Delete reported success for absent item")
	}
}

func TestQuickStabMatchesBrute(t *testing.T) {
	f := func(seed int64, sz uint8, ptSeed uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr, items := buildRandom(r, int(sz%64)+1)
		pt := float64(ptSeed%1300) / 10
		return sameItems(tr.Stab(nil, pt), bruteStab(items, pt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapMatchesBrute(t *testing.T) {
	f := func(seed int64, sz uint8, a, b uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr, items := buildRandom(r, int(sz%64)+1)
		lo, hi := float64(a%1200)/10, float64(b%1200)/10
		if hi < lo {
			lo, hi = hi, lo
		}
		w := interval.New(lo, hi)
		if !sameItems(tr.Overlapping(nil, w), bruteOverlap(items, w)) {
			return false
		}
		return tr.AnyOverlap(w) == (len(bruteOverlap(items, w)) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeleteKeepsQueriesConsistent(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(sz%32) + 2
		tr, items := buildRandom(r, n)
		// Delete a random half.
		perm := r.Perm(n)
		alive := map[int]bool{}
		for _, i := range perm[:n/2] {
			if !tr.Delete(items[i]) {
				return false
			}
		}
		for _, i := range perm[n/2:] {
			alive[i] = true
		}
		var kept []Item
		for i, it := range items {
			if alive[i] {
				kept = append(kept, it)
			}
		}
		if tr.Len() != len(kept) {
			return false
		}
		pt := r.Float64() * 120
		return sameItems(tr.Stab(nil, pt), bruteStab(kept, pt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxDepthWithinMatchesSweep(t *testing.T) {
	f := func(seed int64, sz uint8, a, b uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr, items := buildRandom(r, int(sz%48)+1)
		lo, hi := float64(a%1200)/10, float64(b%1200)/10
		if hi < lo {
			lo, hi = hi, lo
		}
		w := interval.New(lo, hi)
		var clipped interval.Set
		for _, it := range items {
			if x, ok := it.Iv.Intersect(w); ok {
				clipped = append(clipped, x)
			}
		}
		return tr.MaxDepthWithin(w) == clipped.MaxDepth()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeShapeIndependence(t *testing.T) {
	// Two trees with different priorities must answer identically.
	r := rand.New(rand.NewSource(42))
	t1, t2 := New(1), New(99999)
	var items []Item
	for i := 0; i < 200; i++ {
		start := r.Float64() * 50
		it := Item{Iv: interval.New(start, start+r.Float64()*10), ID: i}
		items = append(items, it)
		t1.Insert(it)
		t2.Insert(it)
	}
	for pt := 0.0; pt < 60; pt += 0.7 {
		if !sameItems(t1.Stab(nil, pt), t2.Stab(nil, pt)) {
			t.Fatalf("trees disagree at %v", pt)
		}
	}
	_ = items
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	tr := New(1)
	for i := 0; i < b.N; i++ {
		start := r.Float64() * 1e6
		tr.Insert(Item{Iv: interval.New(start, start+10), ID: i})
	}
}

func BenchmarkOverlapQuery(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr, _ := buildRandom(r, 4096)
	w := interval.New(40, 45)
	buf := make([]Item, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Overlapping(buf[:0], w)
	}
}
