package engine

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV writes the results as CSV with a header row. Floats use the
// shortest round-trip representation, so output is byte-stable across runs
// and worker counts.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "name", "n", "g", "machines", "cost", "lower_bound", "ratio", "err"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Index),
			r.Name,
			strconv.Itoa(r.N),
			strconv.Itoa(r.G),
			strconv.Itoa(r.Machines),
			strconv.FormatFloat(r.Cost, 'g', -1, 64),
			strconv.FormatFloat(r.LowerBound, 'g', -1, 64),
			strconv.FormatFloat(r.Ratio, 'g', -1, 64),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the results as an indented JSON array.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// PoolSummary aggregates the arena-reuse telemetry of a run: how many runs
// found their worker's scratch warm, and how many backing allocations the
// arenas performed in total. In steady state (a warm pool re-serving seen
// instance shapes) SetupAllocs stays flat while WarmRuns tracks Runs.
type PoolSummary struct {
	Runs        int
	WarmRuns    int
	SetupAllocs int
}

// HitRate returns the fraction of runs served by a warm arena, 0 when the
// summary is empty.
func (p PoolSummary) HitRate() float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(p.WarmRuns) / float64(p.Runs)
}

// Summarize folds the per-run reuse counters of a batch into a PoolSummary.
func Summarize(results []Result) PoolSummary {
	var p PoolSummary
	for _, r := range results {
		p.Runs++
		if r.Warm {
			p.WarmRuns++
		}
		p.SetupAllocs += r.SetupAllocs
	}
	return p
}
