package engine

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV writes the results as CSV with a header row. Floats use the
// shortest round-trip representation, so output is byte-stable across runs
// and worker counts.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "name", "n", "g", "machines", "cost", "lower_bound", "ratio", "err"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Index),
			r.Name,
			strconv.Itoa(r.N),
			strconv.Itoa(r.G),
			strconv.Itoa(r.Machines),
			strconv.FormatFloat(r.Cost, 'g', -1, 64),
			strconv.FormatFloat(r.LowerBound, 'g', -1, 64),
			strconv.FormatFloat(r.Ratio, 'g', -1, 64),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the results as an indented JSON array.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
