package engine

import (
	"context"
	"testing"

	"busytime/internal/core"
	"busytime/internal/generator"
)

// TestIntraWorkersMatchesPlain is the engine-level determinism contract of
// the decomposition layer: a batch run with intra-instance parallelism
// enabled must produce results identical to the plain run — decomposition is
// a latency knob, never an algorithm change — while actually decomposing the
// multi-component instances. A single-instance batch with a wide pool
// guarantees spare arenas, so the layer cannot silently decline.
func TestIntraWorkersMatchesPlain(t *testing.T) {
	for _, name := range []string{"firstfit", "bestfit"} {
		for seed := int64(0); seed < 3; seed++ {
			in := []*core.Instance{generator.Clustered(seed, 8, 40, 3, 12, 5)}
			plain, err := Run(context.Background(), in, Options{Algorithm: name, Workers: 4, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			intra, err := Run(context.Background(), in, Options{Algorithm: name, Workers: 4, IntraWorkers: IntraAuto, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			p, q := plain[0], intra[0]
			if p.Err != "" || q.Err != "" {
				t.Fatalf("%s seed=%d: errs %q / %q", name, seed, p.Err, q.Err)
			}
			if q.Components < 2 || q.IntraWorkers < 2 {
				t.Fatalf("%s seed=%d: decomposition did not engage: components=%d intraWorkers=%d",
					name, seed, q.Components, q.IntraWorkers)
			}
			if p.Machines != q.Machines || p.Cost != q.Cost || p.LowerBound != q.LowerBound {
				t.Fatalf("%s seed=%d: plain (m=%d cost=%v) vs intra (m=%d cost=%v)",
					name, seed, p.Machines, p.Cost, q.Machines, q.Cost)
			}
			if p.Components != 0 || p.IntraWorkers != 0 {
				t.Fatalf("%s seed=%d: plain run reports decomposition telemetry (components=%d)",
					name, seed, p.Components)
			}
		}
	}
}

// TestIntraWorkersInertForUndecomposable pins that enabling the layer for an
// algorithm without a Decomposer changes nothing.
func TestIntraWorkersInertForUndecomposable(t *testing.T) {
	in := []*core.Instance{generator.Clustered(1, 6, 30, 3, 10, 4)}
	plain, err := Run(context.Background(), in, Options{Algorithm: "nextfit", Workers: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	intra, err := Run(context.Background(), in, Options{Algorithm: "nextfit", Workers: 4, IntraWorkers: IntraAuto, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	p, q := plain[0], intra[0]
	if p.Err != "" || q.Err != "" || p.Cost != q.Cost || p.Machines != q.Machines {
		t.Fatalf("nextfit diverged under IntraWorkers: %+v vs %+v", p, q)
	}
	if q.Components != 0 {
		t.Fatalf("nextfit consulted the decomposition layer: components=%d", q.Components)
	}
}

// TestIntraStreamMatchesBatch pins the stream path's decomposition routing:
// RunStream with intra workers equals Run with intra workers.
func TestIntraStreamMatchesBatch(t *testing.T) {
	var batch []*core.Instance
	for seed := int64(0); seed < 6; seed++ {
		batch = append(batch, generator.Clustered(seed, 5, 25, 3, 10, 4))
	}
	opt := Options{Algorithm: "firstfit", Workers: 2, IntraWorkers: 2, ShardSize: 2, Verify: true}
	fromBatch, err := Run(context.Background(), batch, opt)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() (*core.Instance, bool) {
		if i >= len(batch) {
			return nil, false
		}
		in := batch[i]
		i++
		return in, true
	}
	fromStream, err := RunStream(context.Background(), next, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromStream) != len(fromBatch) {
		t.Fatalf("stream returned %d results, batch %d", len(fromStream), len(fromBatch))
	}
	for k := range fromBatch {
		if fromBatch[k].Cost != fromStream[k].Cost || fromBatch[k].Machines != fromStream[k].Machines {
			t.Fatalf("index %d: batch (m=%d cost=%v) vs stream (m=%d cost=%v)", k,
				fromBatch[k].Machines, fromBatch[k].Cost, fromStream[k].Machines, fromStream[k].Cost)
		}
	}
}
