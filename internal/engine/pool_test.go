package engine

import (
	"context"
	"testing"

	"busytime/internal/core"
	"busytime/internal/generator"
)

// TestSecondRunReusesArena is the engine-side arena acceptance gate: in a
// two-instance shard processed by one worker, the second run must find the
// scratch warm and perform zero index setup allocations — the arena sized on
// the first instance is recycled wholesale.
func TestSecondRunReusesArena(t *testing.T) {
	batch := []*core.Instance{
		generator.General(5, 2000, 4, 500, 20),
		generator.General(5, 2000, 4, 500, 20), // identical shape → full reuse
	}
	res, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Warm {
		t.Error("first run reported a warm arena")
	}
	if res[0].SetupAllocs == 0 {
		t.Error("first run reported zero setup allocations; counter wired wrong")
	}
	if !res[1].Warm {
		t.Error("second run did not reuse the worker's arena")
	}
	if res[1].SetupAllocs != 0 {
		t.Errorf("second run performed %d index setup allocations; want 0", res[1].SetupAllocs)
	}
}

// TestStreamPoolSpansShards checks that the scratch pool is shared across
// stream shards: with a shard size of 1 and one worker, every run after the
// first must be warm, and Summarize must report the hit rate accordingly.
func TestStreamPoolSpansShards(t *testing.T) {
	const n = 5
	i := 0
	next := func() (*core.Instance, bool) {
		if i >= n {
			return nil, false
		}
		i++
		return generator.General(9, 400, 3, 150, 12), true
	}
	res, err := RunStream(context.Background(), next, Options{Algorithm: "firstfit", Workers: 1, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for k := 1; k < n; k++ {
		if !res[k].Warm {
			t.Errorf("run %d of the stream found a cold arena; pool not shared across shards", k)
		}
		if res[k].SetupAllocs != 0 {
			t.Errorf("run %d performed %d setup allocations; want 0", k, res[k].SetupAllocs)
		}
	}
	p := Summarize(res)
	if p.Runs != n || p.WarmRuns != n-1 {
		t.Errorf("Summarize = %+v, want %d runs with %d warm", p, n, n-1)
	}
	if got, want := p.HitRate(), float64(n-1)/float64(n); got != want {
		t.Errorf("HitRate = %v, want %v", got, want)
	}
}
