package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"busytime/internal/algo"
	_ "busytime/internal/algo/baselines"
	_ "busytime/internal/algo/firstfit"
	_ "busytime/internal/algo/properfit"
	"busytime/internal/core"
	"busytime/internal/generator"
)

// mixedBatch builds a batch spanning every generator family the engine is
// meant to serve. All randomness derives from the per-index seed, matching
// the seeded-PRNG convention of internal/experiments.
func mixedBatch(n int) []*core.Instance {
	out := make([]*core.Instance, 0, 4*n)
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		out = append(out,
			generator.General(seed, 300, 3, 200, 25),
			generator.Proper(seed, 200, 4, 150, 20),
			generator.CloudBurst(seed, 400, 8, 500, 12, 5, 0.6),
			generator.LightpathWave(seed, 8, 40, 6, 50, 20, 15),
		)
	}
	return out
}

// TestParallelMatchesSequential is the engine's determinism contract: a
// parallel batch run must produce byte-identical CSV and JSON output to a
// sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	batch := mixedBatch(8)
	seq, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: 8, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var seqCSV, parCSV, seqJSON, parJSON bytes.Buffer
	if err := WriteCSV(&seqCSV, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&parCSV, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqCSV.Bytes(), parCSV.Bytes()) {
		t.Errorf("parallel CSV differs from sequential:\nseq:\n%s\npar:\n%s", seqCSV.String(), parCSV.String())
	}
	if err := WriteJSON(&seqJSON, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&parJSON, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Error("parallel JSON differs from sequential")
	}
	for _, r := range seq {
		if r.Err != "" {
			t.Errorf("instance %d (%s): %s", r.Index, r.Name, r.Err)
		}
		if r.Machines == 0 || r.Cost <= 0 {
			t.Errorf("instance %d (%s): empty result %+v", r.Index, r.Name, r)
		}
		if r.LowerBound <= 0 || r.Ratio < 1-1e-9 {
			t.Errorf("instance %d (%s): cost %.4f below lower bound %.4f", r.Index, r.Name, r.Cost, r.LowerBound)
		}
	}
}

// TestStreamMatchesBatch checks that sharded stream processing returns the
// same results as the slice API.
func TestStreamMatchesBatch(t *testing.T) {
	batch := mixedBatch(5)
	want, err := Run(context.Background(), batch, Options{Algorithm: "firstfit"})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() (*core.Instance, bool) {
		if i >= len(batch) {
			return nil, false
		}
		in := batch[i]
		i++
		return in, true
	}
	// ShardSize 7 does not divide the batch, exercising the partial shard.
	got, err := RunStream(context.Background(), next, Options{Algorithm: "firstfit", ShardSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream returned %d results, want %d", len(got), len(want))
	}
	for k := range got {
		if stripPoolTelemetry(got[k]) != stripPoolTelemetry(want[k]) {
			t.Errorf("result %d: stream %+v != batch %+v", k, got[k], want[k])
		}
	}
}

// stripPoolTelemetry zeroes the arena-reuse counters, which intentionally
// depend on worker count and sharding (a warm worker reports differently
// from a cold one) and are therefore excluded from determinism contracts.
func stripPoolTelemetry(r Result) Result {
	r.Warm = false
	r.SetupAllocs = 0
	return r
}

// TestScratchReuseMatchesFresh pins down that RunScratch recycling does not
// change any result: a worker pool of one scratch (Workers=1) processing
// many instances must agree with fresh per-instance scheduling.
func TestScratchReuseMatchesFresh(t *testing.T) {
	a, ok := algo.Lookup("firstfit")
	if !ok {
		t.Fatal("firstfit not registered")
	}
	if a.RunScratch == nil {
		t.Fatal("firstfit has no RunScratch fast path")
	}
	batch := mixedBatch(4)
	got, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range batch {
		s := a.Run(in)
		if err := s.Verify(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if got[i].Machines != s.NumMachines() || got[i].Cost != s.Cost() {
			t.Errorf("instance %d (%s): scratch run (%d machines, cost %.6f) != fresh run (%d machines, cost %.6f)",
				i, in.Name, got[i].Machines, got[i].Cost, s.NumMachines(), s.Cost())
		}
	}
}

// TestRunWithoutScratchPath covers algorithms that only provide Run.
func TestRunWithoutScratchPath(t *testing.T) {
	batch := mixedBatch(2)
	res, err := Run(context.Background(), batch, Options{Algorithm: "nextfit", Workers: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != "" {
			t.Errorf("instance %d: %s", r.Index, r.Err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{Algorithm: "no-such-algo"}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := RunStream(context.Background(), func() (*core.Instance, bool) { return nil, false }, Options{Algorithm: "no-such-algo"}); err == nil {
		t.Error("expected error for unknown algorithm (stream)")
	}
}

// TestPanicIsolated checks that one panicking instance is reported in its
// result without poisoning the rest of the batch.
func TestPanicIsolated(t *testing.T) {
	bad := &core.Instance{Name: "bad", G: 0} // g < 1 makes every placement impossible
	batch := []*core.Instance{generator.General(1, 50, 3, 100, 10), bad, generator.General(2, 50, 3, 100, 10)}
	res, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != "" || res[2].Err != "" {
		t.Errorf("healthy instances affected: %q, %q", res[0].Err, res[2].Err)
	}
	if res[1].Err == "" {
		t.Error("bad instance reported no error")
	}
	if !strings.Contains(res[1].Name, "bad") {
		t.Errorf("bad result misattributed: %+v", res[1])
	}
}
