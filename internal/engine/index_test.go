package engine

import (
	"context"
	"testing"

	"busytime/internal/generator"
)

// TestIndexedEngineDeterministicUnderParallelism re-runs the same batch
// through the indexed FirstFit at several worker counts, twice each; every
// run must produce identical results. Under `go test -race` this also
// checks that the per-worker recycled machine-selection indexes share no
// state.
func TestIndexedEngineDeterministicUnderParallelism(t *testing.T) {
	batch := mixedBatch(6)
	var want []Result
	for _, workers := range []int{1, 4, 8, 1, 4} {
		got, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Workers: workers, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if stripPoolTelemetry(got[i]) != stripPoolTelemetry(want[i]) {
				t.Fatalf("workers=%d instance %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestIndexedMatchesScanThroughEngine runs the index ablation through the
// engine: "firstfit" (indexed machine selection) and "firstfit-scan" (plain
// probe loop) must report identical machine counts and bitwise-identical
// costs on every instance.
func TestIndexedMatchesScanThroughEngine(t *testing.T) {
	batch := mixedBatch(6)
	batch = append(batch,
		generator.WithDemands(generator.General(77, 300, 6, 200, 25), 78, 4),
		generator.Clique(79, 100, 5, 20, 12),
	)
	indexed, err := Run(context.Background(), batch, Options{Algorithm: "firstfit", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Run(context.Background(), batch, Options{Algorithm: "firstfit-scan", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range indexed {
		if indexed[i].Err != "" || scan[i].Err != "" {
			t.Fatalf("instance %d errored: %q / %q", i, indexed[i].Err, scan[i].Err)
		}
		if indexed[i].Machines != scan[i].Machines || indexed[i].Cost != scan[i].Cost {
			t.Fatalf("instance %d (%s): indexed (%d machines, cost %v) != scan (%d machines, cost %v)",
				i, indexed[i].Name, indexed[i].Machines, indexed[i].Cost, scan[i].Machines, scan[i].Cost)
		}
	}
}
