// Package engine runs registered scheduling algorithms over batches and
// streams of instances at high throughput: instances are fanned out across
// workers with the internal/parallel primitives, each worker recycles one
// core.Scratch so warm workers stop allocating schedule state, and results
// land in input order so a parallel run is byte-identical to a sequential
// one. Every registered algorithm carries a RunScratch entry point routed
// through the shared placement kernel (core.Placer), so arena recycling
// applies to the whole registry — offline heuristics, exact solvers and
// online replays alike.
//
// The engine reports per-instance summaries (machines, cost, lower bound,
// ratio) rather than retaining schedules: retaining every schedule of a
// 100k-job batch would defeat the scratch reuse that makes the engine fast.
// Callers that need a specific schedule re-run that instance directly.
package engine

import (
	"context"
	"fmt"
	"runtime"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/decomp"
	"busytime/internal/parallel"
)

// IntraAuto selects automatic intra-instance parallelism: a decomposable
// run may draw every momentarily idle arena of the pool.
const IntraAuto = -1

// Options configures a batch run.
type Options struct {
	// Algorithm is the algo.Register-ed name to run (required).
	Algorithm string
	// Workers is the fan-out width; ≤ 0 means GOMAXPROCS. Results do not
	// depend on it.
	Workers int
	// ShardSize is the number of instances drained from a stream per
	// parallel shard (default 64). Irrelevant to Run.
	ShardSize int
	// Verify re-checks every schedule's feasibility (capacity at every
	// instant, totality) and reports violations as per-instance errors.
	Verify bool
	// Pool optionally supplies the scratch arena pool. A caller that runs
	// many batches (the public Solver) passes one pool so arenas stay warm
	// across calls, not just across shards; nil means a run-private pool.
	// The pool may hold fewer scratches than Workers — workers then throttle
	// to the available arenas — but must never be empty.
	Pool chan *core.Scratch
	// Custom, when non-nil, supplies the algorithm record directly instead
	// of looking Algorithm up in the registry. The public Solver passes its
	// own dispatch here so a batch run carries the session's full
	// configuration (exact limits, lookahead buffers, segment bounds) and
	// is guaranteed to agree with single Solve calls.
	Custom *algo.Algorithm
	// IntraWorkers caps the intra-instance parallelism of the
	// component-decomposition layer: a decomposable algorithm (see
	// algo.Decomposer) solves an instance's connected components on up to
	// this many workers — the instance's own worker plus spare arenas
	// leased non-blockingly from the shared pool, so instance-level fan-out
	// and component-level fan-out draw on one worker budget instead of
	// multiplying. 0 (the default) disables decomposition; IntraAuto means
	// the full worker budget. Results never depend on it.
	IntraWorkers int
	// Runners optionally supplies the decomposition-layer runner pool so a
	// caller running many batches keeps the layer's buffers warm across
	// calls; nil means a run-private pool.
	Runners chan *decomp.Runner
	// TimeShards opts into the decomposition layer's time-axis sharding for
	// algorithms that declare a ShardRule: an instance whose component
	// structure starves intra-parallelism (one dominant component) is cut
	// into up to this many time shards solved concurrently, with crossing
	// jobs reconciled sequentially. 0 (the default) disables sharding;
	// IntraAuto means the full worker budget. Unlike IntraWorkers this knob
	// CAN change results: sharded schedules are feasible and near-identical
	// in cost but not bitwise-equal to sequential ones, which is why it is a
	// separate opt-in.
	TimeShards int
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return 64
	}
	return o.ShardSize
}

// Result is the summary of scheduling one instance.
type Result struct {
	// Index is the instance's position in the batch or stream.
	Index int `json:"index"`
	// Name echoes Instance.Name.
	Name string `json:"name"`
	// N and G are the instance's size and parallelism.
	N int `json:"n"`
	G int `json:"g"`
	// Machines and Cost describe the produced schedule.
	Machines int     `json:"machines"`
	Cost     float64 `json:"cost"`
	// LowerBound is the fractional lower bound ∫⌈N_t/g⌉dt and Ratio is
	// Cost/LowerBound (0 when the bound is 0).
	LowerBound float64 `json:"lower_bound"`
	Ratio      float64 `json:"ratio"`
	// Err is non-empty when the algorithm panicked or, under
	// Options.Verify, produced an infeasible schedule; the other schedule
	// fields are then zero.
	Err string `json:"err,omitempty"`
	// Warm reports whether the worker's recycled arena had already served an
	// instance when this run started, and SetupAllocs counts the arena
	// backing allocations (machine records, index arrays, profile slabs,
	// shard chunks — see core.ScratchStats) this run performed; a warm
	// worker re-serving a seen shape performs none. Both depend on worker
	// count and scheduling order, so they are excluded from serialization to
	// keep CSV/JSON output deterministic; Summarize aggregates them.
	Warm        bool `json:"-"`
	SetupAllocs int  `json:"-"`
	// Components is the connected-component count the decomposition layer
	// observed, and IntraWorkers how many workers solved them; both are 0
	// when the run never consulted the layer (IntraWorkers off, a
	// non-decomposable algorithm) and Components alone is set when the
	// layer declined (single component, no spare arena). Like Warm they
	// depend on pool pressure, so they are excluded from serialization.
	Components   int `json:"-"`
	IntraWorkers int `json:"-"`
	// Shards is the time-shard count when the decomposition layer took the
	// sharding path for this instance (Options.TimeShards), 0 otherwise.
	Shards int `json:"-"`
}

// Run schedules every instance with the named algorithm and returns one
// result per instance, in input order. Per-instance failures (panics,
// verification errors) are recorded in Result.Err and do not abort the
// batch; Run itself errors on an unknown algorithm name or a cancelled ctx.
//
// Cancellation is cooperative: each worker checks ctx before claiming its
// next instance (and mid-run algorithms — see algo.CancelMidRun — also stop
// inside the run), the fan-out drains without leaking goroutines, and Run
// returns ctx's error with no partial results.
func Run(ctx context.Context, instances []*core.Instance, opt Options) ([]Result, error) {
	a, err := opt.algorithm()
	if err != nil {
		return nil, err
	}
	out := runShard(ctx, a, instances, 0, opt, opt.pool(), opt.runnerPool())
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// RunStream drains the instance stream next (which reports ok=false when
// exhausted), scheduling it shard by shard: each shard of Options.ShardSize
// instances is fanned out across the workers while the results of previous
// shards accumulate in arrival order. The output is identical to collecting
// the stream into a slice and calling Run. Ctx is checked at every shard
// boundary as well as per instance inside each shard.
func RunStream(ctx context.Context, next func() (*core.Instance, bool), opt Options) ([]Result, error) {
	a, err := opt.algorithm()
	if err != nil {
		return nil, err
	}
	// One scratch pool serves every shard, so workers enter the second and
	// later shards with warm arenas and stream processing stops allocating
	// schedule state once the largest instance shape has been seen.
	pool := opt.pool()
	runners := opt.runnerPool()
	var out []Result
	shard := make([]*core.Instance, 0, opt.shardSize())
	for {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		shard = shard[:0]
		for len(shard) < cap(shard) {
			in, ok := next()
			if !ok {
				break
			}
			shard = append(shard, in)
		}
		if len(shard) == 0 {
			return out, nil
		}
		out = append(out, runShard(ctx, a, shard, len(out), opt, pool, runners)...)
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
	}
}

// maxWorkers resolves the fan-out width of the options once, so the scratch
// pool can never be smaller than any set of goroutines competing for it.
func (o Options) maxWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// algorithm resolves the run's algorithm record: Custom when supplied,
// otherwise a registry lookup by name.
func (o Options) algorithm() (algo.Algorithm, error) {
	if o.Custom != nil {
		return *o.Custom, nil
	}
	a, ok := algo.Lookup(o.Algorithm)
	if !ok {
		return algo.Algorithm{}, fmt.Errorf("engine: unknown algorithm %q", o.Algorithm)
	}
	return a, nil
}

// pool resolves the arena pool of the run: the caller-supplied one when set
// (the Solver's session pool, warm across calls), otherwise a fresh pool of
// one core.Scratch per potential worker.
func (o Options) pool() chan *core.Scratch {
	if o.Pool != nil {
		return o.Pool
	}
	return NewScratchPool(o.maxWorkers())
}

// intra resolves the intra-instance worker budget: IntraAuto means the full
// fan-out width, anything below 2 disables the decomposition layer.
func (o Options) intra() int {
	if o.IntraWorkers < 0 {
		return o.maxWorkers()
	}
	return o.IntraWorkers
}

// timeShards resolves the time-shard budget: IntraAuto means the full
// fan-out width, anything below 2 disables sharding.
func (o Options) timeShards() int {
	if o.TimeShards < 0 {
		return o.maxWorkers()
	}
	return o.TimeShards
}

// runnerPool resolves the decomposition-runner pool of the run: the
// caller-supplied one when set, a fresh one-per-worker pool when the run can
// decompose, nil (never consulted) when decomposition is off.
func (o Options) runnerPool() chan *decomp.Runner {
	if o.Runners != nil {
		return o.Runners
	}
	if o.intra() <= 1 && o.timeShards() <= 1 {
		return nil
	}
	return decomp.NewRunnerPool(o.maxWorkers())
}

// NewScratchPool builds an arena pool of the given width (min 1): a buffered
// channel holding one recyclable core.Scratch per slot. Sharing one pool
// across runs keeps arenas warm from run to run.
func NewScratchPool(workers int) chan *core.Scratch {
	if workers < 1 {
		workers = 1
	}
	pool := make(chan *core.Scratch, workers)
	for i := 0; i < workers; i++ {
		pool <- new(core.Scratch)
	}
	return pool
}

// runShard fans the instances out across workers. Each worker leases a
// core.Scratch from the run-wide pool for the duration of one instance, so
// the number of live scratches is bounded by the worker count and every
// schedule's state is recycled — across instances and across shards. A
// cancelled ctx makes the remaining workers claim-and-skip their indices
// (zero Results, overwritten by the callers' error return), so the fan-out
// always drains completely and never leaks a goroutine.
func runShard(ctx context.Context, a algo.Algorithm, instances []*core.Instance, base int, opt Options, pool chan *core.Scratch, runners chan *decomp.Runner) []Result {
	workers := opt.maxWorkers()
	if workers > len(instances) {
		workers = len(instances)
	}
	if workers < 1 {
		workers = 1
	}
	intra, tshards := opt.intra(), opt.timeShards()
	return parallel.Map(len(instances), workers, func(i int) Result {
		if ctx.Err() != nil {
			return Result{Index: base + i}
		}
		sc := <-pool
		defer func() { pool <- sc }()
		return runOne(ctx, a, instances[i], base+i, sc, opt.Verify, intra, tshards, pool, runners)
	})
}

// runOne schedules a single instance, converting panics to Result.Err so a
// malformed instance cannot take down the batch. Mid-run-cancellable
// algorithms run through their ctx entry point; for the rest ctx is observed
// by the shard loop only. The scratch's arena counters are snapshotted
// around the run to report per-run reuse.
//
// When the algorithm declares a Decomposer and the intra budget allows it,
// the instance is first offered to the decomposition layer, which solves its
// connected components on this worker plus any pool arenas that are idle
// right now. A declined offer (single component, no spare arena) falls
// through to the ordinary sequential entry points; either way the schedule
// is identical, so intra-parallelism is purely a latency knob.
func runOne(ctx context.Context, a algo.Algorithm, in *core.Instance, index int, sc *core.Scratch, verify bool, intra, tshards int, pool chan *core.Scratch, runners chan *decomp.Runner) (res Result) {
	before := sc.Stats()
	warm := before.Schedules > 0
	res = Result{Index: index, Name: in.Name, N: in.N(), G: in.G, Warm: warm}
	defer func() {
		if r := recover(); r != nil {
			res = Result{Index: index, Name: in.Name, N: in.N(), G: in.G, Warm: warm, Err: fmt.Sprint(r)}
		}
		res.SetupAllocs = sc.Stats().SetupAllocs - before.SetupAllocs
	}()
	var s *core.Schedule
	if (intra > 1 || tshards > 1) && a.Decompose != nil && runners != nil {
		r := <-runners
		ds, stats, derr := r.Solve(ctx, in, a.Decompose, sc, pool, intra, tshards)
		runners <- r
		res.Components = stats.Components
		res.IntraWorkers = stats.Workers
		res.Shards = stats.Shards
		if derr != nil {
			res.Err = derr.Error()
			return res
		}
		s = ds // nil when the layer declined: fall through to the plain path
	}
	if s == nil {
		switch {
		case a.RunScratchCtx != nil:
			var err error
			s, err = a.RunScratchCtx(ctx, in, sc)
			if err != nil {
				res.Err = err.Error()
				return res
			}
		case a.RunScratch != nil:
			s = a.RunScratch(in, sc)
		default:
			s = a.Run(in)
		}
	}
	if verify {
		if err := s.Verify(); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	res.Machines = s.NumMachines()
	res.Cost = s.Cost()
	res.LowerBound = in.CachedBounds().Fractional
	if res.LowerBound > 0 {
		res.Ratio = res.Cost / res.LowerBound
	}
	return res
}
