// Package engine runs registered scheduling algorithms over batches and
// streams of instances at high throughput: instances are fanned out across
// workers with the internal/parallel primitives, each worker recycles one
// core.Scratch so warm workers stop allocating schedule state, and results
// land in input order so a parallel run is byte-identical to a sequential
// one. Every registered algorithm carries a RunScratch entry point routed
// through the shared placement kernel (core.Placer), so arena recycling
// applies to the whole registry — offline heuristics, exact solvers and
// online replays alike.
//
// The engine reports per-instance summaries (machines, cost, lower bound,
// ratio) rather than retaining schedules: retaining every schedule of a
// 100k-job batch would defeat the scratch reuse that makes the engine fast.
// Callers that need a specific schedule re-run that instance directly.
package engine

import (
	"fmt"
	"runtime"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/parallel"
)

// Options configures a batch run.
type Options struct {
	// Algorithm is the algo.Register-ed name to run (required).
	Algorithm string
	// Workers is the fan-out width; ≤ 0 means GOMAXPROCS. Results do not
	// depend on it.
	Workers int
	// ShardSize is the number of instances drained from a stream per
	// parallel shard (default 64). Irrelevant to Run.
	ShardSize int
	// Verify re-checks every schedule's feasibility (capacity at every
	// instant, totality) and reports violations as per-instance errors.
	Verify bool
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return 64
	}
	return o.ShardSize
}

// Result is the summary of scheduling one instance.
type Result struct {
	// Index is the instance's position in the batch or stream.
	Index int `json:"index"`
	// Name echoes Instance.Name.
	Name string `json:"name"`
	// N and G are the instance's size and parallelism.
	N int `json:"n"`
	G int `json:"g"`
	// Machines and Cost describe the produced schedule.
	Machines int     `json:"machines"`
	Cost     float64 `json:"cost"`
	// LowerBound is the fractional lower bound ∫⌈N_t/g⌉dt and Ratio is
	// Cost/LowerBound (0 when the bound is 0).
	LowerBound float64 `json:"lower_bound"`
	Ratio      float64 `json:"ratio"`
	// Err is non-empty when the algorithm panicked or, under
	// Options.Verify, produced an infeasible schedule; the other schedule
	// fields are then zero.
	Err string `json:"err,omitempty"`
	// Warm reports whether the worker's recycled arena had already served an
	// instance when this run started, and SetupAllocs counts the arena
	// backing allocations (machine records, index arrays, profile slabs,
	// shard chunks — see core.ScratchStats) this run performed; a warm
	// worker re-serving a seen shape performs none. Both depend on worker
	// count and scheduling order, so they are excluded from serialization to
	// keep CSV/JSON output deterministic; Summarize aggregates them.
	Warm        bool `json:"-"`
	SetupAllocs int  `json:"-"`
}

// Run schedules every instance with the named algorithm and returns one
// result per instance, in input order. Per-instance failures (panics,
// verification errors) are recorded in Result.Err and do not abort the
// batch; Run itself errors only on an unknown algorithm name.
func Run(instances []*core.Instance, opt Options) ([]Result, error) {
	a, ok := algo.Lookup(opt.Algorithm)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", opt.Algorithm)
	}
	return runShard(a, instances, 0, opt, newScratchPool(opt)), nil
}

// RunStream drains the instance stream next (which reports ok=false when
// exhausted), scheduling it shard by shard: each shard of Options.ShardSize
// instances is fanned out across the workers while the results of previous
// shards accumulate in arrival order. The output is identical to collecting
// the stream into a slice and calling Run.
func RunStream(next func() (*core.Instance, bool), opt Options) ([]Result, error) {
	a, ok := algo.Lookup(opt.Algorithm)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", opt.Algorithm)
	}
	// One scratch pool serves every shard, so workers enter the second and
	// later shards with warm arenas and stream processing stops allocating
	// schedule state once the largest instance shape has been seen.
	pool := newScratchPool(opt)
	var out []Result
	shard := make([]*core.Instance, 0, opt.shardSize())
	for {
		shard = shard[:0]
		for len(shard) < cap(shard) {
			in, ok := next()
			if !ok {
				break
			}
			shard = append(shard, in)
		}
		if len(shard) == 0 {
			return out, nil
		}
		out = append(out, runShard(a, shard, len(out), opt, pool)...)
	}
}

// maxWorkers resolves the fan-out width of the options once, so the scratch
// pool can never be smaller than any set of goroutines competing for it.
func (o Options) maxWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// newScratchPool builds the per-run arena pool: one core.Scratch per
// potential worker, shared across every shard of the run so arenas stay warm
// from shard to shard.
func newScratchPool(opt Options) chan *core.Scratch {
	workers := opt.maxWorkers()
	if workers < 1 {
		workers = 1
	}
	pool := make(chan *core.Scratch, workers)
	for i := 0; i < workers; i++ {
		pool <- new(core.Scratch)
	}
	return pool
}

// runShard fans the instances out across workers. Each worker leases a
// core.Scratch from the run-wide pool for the duration of one instance, so
// the number of live scratches is bounded by the worker count and every
// schedule's state is recycled — across instances and across shards.
func runShard(a algo.Algorithm, instances []*core.Instance, base int, opt Options, pool chan *core.Scratch) []Result {
	workers := opt.maxWorkers()
	if workers > len(instances) {
		workers = len(instances)
	}
	if workers < 1 {
		workers = 1
	}
	return parallel.Map(len(instances), workers, func(i int) Result {
		sc := <-pool
		defer func() { pool <- sc }()
		return runOne(a, instances[i], base+i, sc, opt.Verify)
	})
}

// runOne schedules a single instance, converting panics to Result.Err so a
// malformed instance cannot take down the batch. The scratch's arena
// counters are snapshotted around the run to report per-run reuse.
func runOne(a algo.Algorithm, in *core.Instance, index int, sc *core.Scratch, verify bool) (res Result) {
	before := sc.Stats()
	warm := before.Schedules > 0
	res = Result{Index: index, Name: in.Name, N: in.N(), G: in.G, Warm: warm}
	defer func() {
		if r := recover(); r != nil {
			res = Result{Index: index, Name: in.Name, N: in.N(), G: in.G, Warm: warm, Err: fmt.Sprint(r)}
		}
		res.SetupAllocs = sc.Stats().SetupAllocs - before.SetupAllocs
	}()
	var s *core.Schedule
	if a.RunScratch != nil {
		s = a.RunScratch(in, sc)
	} else {
		s = a.Run(in)
	}
	if verify {
		if err := s.Verify(); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	res.Machines = s.NumMachines()
	res.Cost = s.Cost()
	res.LowerBound = core.BestBound(in)
	if res.LowerBound > 0 {
		res.Ratio = res.Cost / res.LowerBound
	}
	return res
}
