// Package viz renders schedules and instances as fixed-width ASCII art for
// terminals: per-machine Gantt charts (cell value = number of active jobs),
// instance depth profiles, and simple histograms. The CLI's `show`
// subcommand is built on it.
package viz

import (
	"fmt"
	"math"
	"strings"

	"busytime/internal/core"
	"busytime/internal/interval"
)

// Gantt renders one row per machine over a shared time axis of the given
// width (columns). Each cell shows the number of jobs active in that time
// slice: '·' for idle, digits 1–9, '+' beyond 9. A trailing column lists
// the machine's busy time.
func Gantt(s *core.Schedule, width int) string {
	in := s.Instance()
	hull, ok := in.Set().Hull()
	if !ok || width < 1 {
		return "(empty schedule)\n"
	}
	if hull.Len() == 0 {
		return "(degenerate time axis)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time [%g, %g], %d machines, cost %.3f\n",
		hull.Start, hull.End, s.NumMachines(), s.Cost())
	b.WriteString(axis(hull, width))
	for m := 0; m < s.NumMachines(); m++ {
		set := s.MachineSet(m)
		fmt.Fprintf(&b, "M%-3d |%s| %8.3f\n", m, row(set, hull, width), s.MachineBusy(m))
	}
	return b.String()
}

// DepthProfile renders the instance's demand-weighted depth N_t and the
// per-slice machine requirement ⌈N_t/g⌉ over a width-column axis.
func DepthProfile(in *core.Instance, width int) string {
	hull, ok := in.Set().Hull()
	if !ok || width < 1 {
		return "(empty instance)\n"
	}
	if hull.Len() == 0 {
		return "(degenerate time axis)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "depth profile of %s (n=%d, g=%d)\n", in.Name, in.N(), in.G)
	b.WriteString(axis(hull, width))
	depthCells := make([]int, width)
	needCells := make([]int, width)
	for c := 0; c < width; c++ {
		mid := hull.Start + (float64(c)+0.5)*hull.Len()/float64(width)
		d := 0
		for _, j := range in.Jobs {
			if j.Iv.Contains(mid) {
				d += j.Demand
			}
		}
		depthCells[c] = d
		needCells[c] = int(math.Ceil(float64(d) / float64(in.G)))
	}
	fmt.Fprintf(&b, "N_t  |%s|\n", cells(depthCells))
	fmt.Fprintf(&b, "⌈/g⌉ |%s|\n", cells(needCells))
	return b.String()
}

// Histogram renders value counts over equal-width bins as horizontal bars.
func Histogram(values []float64, bins, width int) string {
	if len(values) == 0 || bins < 1 {
		return "(no data)\n"
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b == bins {
			b = bins - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		left := lo + float64(i)*(hi-lo)/float64(bins)
		right := lo + float64(i+1)*(hi-lo)/float64(bins)
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "[%8.3f, %8.3f) %s %d\n", left, right, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// axis renders the column header with start/end labels.
func axis(hull interval.Interval, width int) string {
	startLbl := fmt.Sprintf("%g", hull.Start)
	endLbl := fmt.Sprintf("%g", hull.End)
	pad := width - len(startLbl) - len(endLbl)
	if pad < 1 {
		pad = 1
	}
	return fmt.Sprintf("     |%s%s%s|\n", startLbl, strings.Repeat(" ", pad), endLbl)
}

// row renders one machine's activity over the hull.
func row(set interval.Set, hull interval.Interval, width int) string {
	counts := make([]int, width)
	for c := 0; c < width; c++ {
		mid := hull.Start + (float64(c)+0.5)*hull.Len()/float64(width)
		for _, iv := range set {
			if iv.Contains(mid) {
				counts[c]++
			}
		}
	}
	return cells(counts)
}

// cells maps counts to characters.
func cells(counts []int) string {
	out := make([]byte, len(counts))
	for i, c := range counts {
		switch {
		case c == 0:
			out[i] = '.'
		case c <= 9:
			out[i] = byte('0' + c)
		default:
			out[i] = '+'
		}
	}
	return string(out)
}
