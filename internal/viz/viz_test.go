package viz

import (
	"strings"
	"testing"

	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestGanttBasic(t *testing.T) {
	in := core.NewInstance(2, iv(0, 5), iv(2, 8), iv(20, 25))
	s := firstfit.Schedule(in)
	out := Gantt(s, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + axis + one line per machine.
	if len(lines) != 2+s.NumMachines() {
		t.Fatalf("got %d lines for %d machines:\n%s", len(lines), s.NumMachines(), out)
	}
	if !strings.Contains(lines[0], "cost") {
		t.Errorf("header missing cost: %q", lines[0])
	}
	// Busy cells and idle cells both present (the gap [8,20] is idle).
	body := strings.Join(lines[2:], "\n")
	if !strings.ContainsAny(body, "123456789") {
		t.Error("no busy cells rendered")
	}
	if !strings.Contains(body, ".") {
		t.Error("no idle cells rendered")
	}
}

func TestGanttDepthDigits(t *testing.T) {
	// Two overlapping jobs on one machine → a '2' cell must appear.
	in := core.NewInstance(2, iv(0, 10), iv(0, 10))
	s := firstfit.Schedule(in)
	if s.NumMachines() != 1 {
		t.Fatal("setup: expected one machine")
	}
	out := Gantt(s, 20)
	if !strings.Contains(out, "2") {
		t.Errorf("missing depth-2 cells:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	s := core.NewSchedule(core.NewInstance(2))
	if out := Gantt(s, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty schedule rendering: %q", out)
	}
}

func TestDepthProfile(t *testing.T) {
	in := core.NewInstance(2, iv(0, 4), iv(0, 4), iv(0, 4))
	in.Name = "profile-test"
	out := DepthProfile(in, 20)
	if !strings.Contains(out, "profile-test") {
		t.Error("missing instance name")
	}
	if !strings.Contains(out, "3") {
		t.Errorf("depth 3 not rendered:\n%s", out)
	}
	// ⌈3/2⌉ = 2 machines needed.
	if !strings.Contains(out, "2") {
		t.Errorf("machine requirement not rendered:\n%s", out)
	}
}

func TestDepthProfileEmpty(t *testing.T) {
	if out := DepthProfile(core.NewInstance(2), 10); !strings.Contains(out, "empty") {
		t.Errorf("empty rendering: %q", out)
	}
}

func TestHighDepthPlus(t *testing.T) {
	ivs := make([]interval.Interval, 12)
	for i := range ivs {
		ivs[i] = iv(0, 5)
	}
	in := core.NewInstance(12, ivs...)
	out := DepthProfile(in, 10)
	if !strings.Contains(out, "+") {
		t.Errorf("depth > 9 should render '+':\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]float64{1, 1, 1, 2, 3}, 2, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d bins:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#") {
		t.Error("first bin should have bars")
	}
	if Histogram(nil, 3, 10) != "(no data)\n" {
		t.Error("empty data rendering wrong")
	}
	// Constant data doesn't divide by zero.
	if out := Histogram([]float64{5, 5, 5}, 2, 10); !strings.Contains(out, "3") {
		t.Errorf("constant data: %q", out)
	}
}

func TestGanttWidthsStable(t *testing.T) {
	in := generator.General(3, 30, 3, 40, 10)
	s := firstfit.Schedule(in)
	for _, w := range []int{10, 60, 120} {
		out := Gantt(s, w)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		for _, ln := range lines[2:] {
			inner := ln[strings.Index(ln, "|")+1 : strings.LastIndex(ln, "|")]
			if len(inner) != w {
				t.Fatalf("width %d: row has %d cells", w, len(inner))
			}
		}
	}
}
