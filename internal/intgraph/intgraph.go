// Package intgraph provides an interval-graph toolkit: the intersection
// graph of a set of closed intervals, with the classical polynomial
// structure exploited by the paper — maximum clique and minimum coloring via
// sweeps, connected components, and class tests (proper, clique).
//
// Vertex i of a Graph corresponds to the i-th interval of the set it was
// built from; all results are reported in terms of these indices.
package intgraph

import (
	"cmp"
	"container/heap"
	"slices"

	"busytime/internal/interval"
)

// Graph is the intersection graph of a fixed interval set.
type Graph struct {
	ivs interval.Set
	adj [][]int
}

// New builds the intersection graph of ivs (closed semantics: touching
// intervals are adjacent). Construction is O(n log n + m) using a sweep.
func New(ivs interval.Set) *Graph {
	g := &Graph{ivs: ivs.Clone(), adj: make([][]int, len(ivs))}
	order := make([]int, len(ivs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := ivs[a], ivs[b]
		if c := cmp.Compare(ia.Start, ib.Start); c != 0 {
			return c
		}
		return cmp.Compare(ia.End, ib.End)
	})
	// Active vertices kept in a min-heap by end time; a new interval is
	// adjacent to every active vertex whose end ≥ its start.
	active := &endHeap{}
	for _, v := range order {
		iv := ivs[v]
		for active.Len() > 0 && (*active)[0].end < iv.Start {
			heap.Pop(active)
		}
		for _, a := range *active {
			g.adj[v] = append(g.adj[v], a.v)
			g.adj[a.v] = append(g.adj[a.v], v)
		}
		heap.Push(active, endVertex{end: iv.End, v: v})
	}
	for i := range g.adj {
		slices.Sort(g.adj[i])
	}
	return g
}

type endVertex struct {
	end float64
	v   int
}

type endHeap []endVertex

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(endVertex)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ivs) }

// Interval returns the interval of vertex v.
func (g *Graph) Interval(v int) interval.Interval { return g.ivs[v] }

// Intervals returns a copy of the underlying interval set.
func (g *Graph) Intervals() interval.Set { return g.ivs.Clone() }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Adjacent reports whether u and v are adjacent.
func (g *Graph) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	return g.ivs[u].Overlaps(g.ivs[v])
}

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, ordered by their earliest interval start. For interval graphs
// components are exactly the maximal groups whose union is contiguous.
func (g *Graph) ConnectedComponents() [][]int { return Components(g.ivs) }

// Components returns the connected components of the intersection graph of
// ivs without building the graph: a single reach sweep over the intervals in
// (start, end) order, O(n log n) for the sort and O(n) after. Each component
// is its sorted vertex indices; components are ordered by earliest start.
// With closed semantics touching intervals are connected, so a component
// break happens exactly where the next start strictly exceeds the running
// reach — consecutive components are separated by time gaps of positive
// length.
func Components(ivs interval.Set) [][]int {
	n := len(ivs)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := ivs[a], ivs[b]
		if c := cmp.Compare(ia.Start, ib.Start); c != 0 {
			return c
		}
		return cmp.Compare(ia.End, ib.End)
	})
	var comps [][]int
	var cur []int
	reach := ivs[order[0]].End
	for _, v := range order {
		iv := ivs[v]
		if len(cur) > 0 && iv.Start > reach {
			slices.Sort(cur)
			comps = append(comps, cur)
			cur = nil
			reach = iv.End
		}
		cur = append(cur, v)
		if iv.End > reach {
			reach = iv.End
		}
	}
	slices.Sort(cur)
	return append(comps, cur)
}

// MaxClique returns the size of a maximum clique and the vertices of one
// witness clique (sorted). For interval graphs the maximum clique is realized
// at some point stabbing the most intervals.
func (g *Graph) MaxClique() (size int, members []int) {
	if g.N() == 0 {
		return 0, nil
	}
	// Find the point of maximum closed depth via the event sweep, then stab.
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*g.N())
	for _, iv := range g.ivs {
		evs = append(evs, ev{iv.Start, +1}, ev{iv.End, -1})
	}
	slices.SortFunc(evs, func(a, b ev) int {
		if c := cmp.Compare(a.t, b.t); c != 0 {
			return c
		}
		return cmp.Compare(b.delta, a.delta)
	})
	depth, best, bestT := 0, 0, 0.0
	for _, e := range evs {
		depth += e.delta
		if depth > best {
			best, bestT = depth, e.t
		}
	}
	for v, iv := range g.ivs {
		if iv.Contains(bestT) {
			members = append(members, v)
		}
	}
	return best, members
}

// CliqueNumber returns ω(G), the maximum clique size.
func (g *Graph) CliqueNumber() int {
	size, _ := g.MaxClique()
	return size
}

// IsProper reports whether the interval representation is proper (no
// interval properly contains another).
func (g *Graph) IsProper() bool { return g.ivs.IsProper() }

// IsClique reports whether all intervals pairwise intersect.
func (g *Graph) IsClique() bool { return g.ivs.IsClique() }

// MinColoring returns an optimal proper coloring: colors[v] ∈ [0, ω) with
// adjacent vertices receiving distinct colors. The greedy sweep by start
// time is exact on interval graphs, so exactly CliqueNumber colors are used.
func (g *Graph) MinColoring() []int {
	n := g.N()
	colors := make([]int, n)
	if n == 0 {
		return colors
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := g.ivs[a], g.ivs[b]
		if c := cmp.Compare(ia.Start, ib.Start); c != 0 {
			return c
		}
		if c := cmp.Compare(ia.End, ib.End); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	active := &endColorHeap{}
	var free []int // colors released by expired intervals, reused smallest-first
	next := 0      // next never-used color
	for _, v := range order {
		iv := g.ivs[v]
		for active.Len() > 0 && (*active)[0].end < iv.Start {
			ec := heap.Pop(active).(endColor)
			free = append(free, ec.color)
		}
		var c int
		if len(free) > 0 {
			// Smallest free color keeps the coloring canonical.
			slices.Sort(free)
			c, free = free[0], free[1:]
		} else {
			c = next
			next++
		}
		colors[v] = c
		heap.Push(active, endColor{end: iv.End, color: c})
	}
	return colors
}

type endColor struct {
	end   float64
	color int
}

type endColorHeap []endColor

func (h endColorHeap) Len() int            { return len(h) }
func (h endColorHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h endColorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endColorHeap) Push(x interface{}) { *h = append(*h, x.(endColor)) }
func (h *endColorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ChromaticNumber returns χ(G) = ω(G) for interval graphs.
func (g *Graph) ChromaticNumber() int {
	colors := g.MinColoring()
	max := 0
	for _, c := range colors {
		if c+1 > max {
			max = c + 1
		}
	}
	return max
}

// ColorClasses groups vertices by color. Each class is an independent set of
// the graph (pairwise measure-disjoint intervals up to touching — with
// closed semantics members of one class never intersect at all).
func ColorClasses(colors []int) [][]int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	classes := make([][]int, max+1)
	for v, c := range colors {
		classes[c] = append(classes[c], v)
	}
	return classes
}

// ValidColoring reports whether colors is a proper coloring of g.
func (g *Graph) ValidColoring(colors []int) bool {
	if len(colors) != g.N() {
		return false
	}
	for v := range g.adj {
		for _, u := range g.adj[v] {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}
