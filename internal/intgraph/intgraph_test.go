package intgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"busytime/internal/interval"
)

func iv(s, e float64) interval.Interval { return interval.New(s, e) }

func TestEmptyGraph(t *testing.T) {
	g := New(nil)
	if g.N() != 0 || g.Edges() != 0 {
		t.Error("empty graph has vertices or edges")
	}
	if g.ConnectedComponents() != nil {
		t.Error("empty graph has components")
	}
	if size, _ := g.MaxClique(); size != 0 {
		t.Error("empty graph has a clique")
	}
	if len(g.MinColoring()) != 0 {
		t.Error("empty graph produced colors")
	}
}

func TestAdjacencyBasics(t *testing.T) {
	// 0:[0,2] 1:[1,3] 2:[3,4] 3:[5,6]
	g := New(interval.Set{iv(0, 2), iv(1, 3), iv(3, 4), iv(5, 6)})
	wantAdj := map[int][]int{0: {1}, 1: {0, 2}, 2: {1}, 3: {}}
	for v, want := range wantAdj {
		got := g.Neighbors(v)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Neighbors(%d) = %v, want %v", v, got, want)
		}
	}
	if !g.Adjacent(1, 2) {
		t.Error("touching intervals [1,3],[3,4] must be adjacent")
	}
	if g.Adjacent(0, 0) {
		t.Error("self-adjacency")
	}
	if g.Edges() != 2 {
		t.Errorf("Edges = %d, want 2", g.Edges())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(interval.Set{iv(0, 1), iv(1, 2), iv(5, 7), iv(6, 8), iv(10, 11)})
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestMaxClique(t *testing.T) {
	g := New(interval.Set{iv(0, 4), iv(1, 5), iv(2, 6), iv(7, 8)})
	size, members := g.MaxClique()
	if size != 3 {
		t.Fatalf("clique size = %d, want 3", size)
	}
	if !reflect.DeepEqual(members, []int{0, 1, 2}) {
		t.Errorf("clique members = %v, want [0 1 2]", members)
	}
	// Witness really is a clique.
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if !g.Adjacent(members[i], members[j]) {
				t.Errorf("witness vertices %d,%d not adjacent", members[i], members[j])
			}
		}
	}
}

func TestClassTests(t *testing.T) {
	if !New(interval.Set{iv(0, 2), iv(1, 3), iv(2, 4)}).IsProper() {
		t.Error("staircase set should be proper")
	}
	if New(interval.Set{iv(0, 5), iv(1, 2)}).IsProper() {
		t.Error("nested set misreported as proper")
	}
	if !New(interval.Set{iv(0, 3), iv(1, 4), iv(2, 5)}).IsClique() {
		t.Error("clique set misreported")
	}
	if New(interval.Set{iv(0, 1), iv(2, 3)}).IsClique() {
		t.Error("disjoint set reported as clique")
	}
}

func TestMinColoringOptimal(t *testing.T) {
	set := interval.Set{iv(0, 4), iv(1, 5), iv(2, 6), iv(5, 9), iv(6, 10)}
	g := New(set)
	colors := g.MinColoring()
	if !g.ValidColoring(colors) {
		t.Fatal("coloring not proper")
	}
	if got, want := g.ChromaticNumber(), g.CliqueNumber(); got != want {
		t.Errorf("χ = %d, ω = %d; interval graphs must have χ = ω", got, want)
	}
}

func TestColorClassesAreIndependent(t *testing.T) {
	set := interval.Set{iv(0, 3), iv(1, 4), iv(2, 5), iv(4, 7), iv(6, 9)}
	g := New(set)
	classes := ColorClasses(g.MinColoring())
	for c, class := range classes {
		for i := range class {
			for j := i + 1; j < len(class); j++ {
				if g.Adjacent(class[i], class[j]) {
					t.Errorf("color %d contains adjacent pair %d,%d", c, class[i], class[j])
				}
			}
		}
	}
}

func TestValidColoringRejects(t *testing.T) {
	g := New(interval.Set{iv(0, 2), iv(1, 3)})
	if g.ValidColoring([]int{0, 0}) {
		t.Error("monochromatic edge accepted")
	}
	if g.ValidColoring([]int{0}) {
		t.Error("wrong-length coloring accepted")
	}
}

func randomSet(r *rand.Rand, n int) interval.Set {
	s := make(interval.Set, n)
	for i := range s {
		start := r.Float64() * 60
		s[i] = interval.New(start, start+r.Float64()*15)
	}
	return s
}

func TestQuickAdjacencyMatchesBrute(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		set := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		g := New(set)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				want := u != v && set[u].Overlaps(set[v])
				if g.Adjacent(u, v) != want {
					return false
				}
			}
		}
		// Adjacency lists agree with Adjacent.
		for u := 0; u < g.N(); u++ {
			seen := map[int]bool{}
			for _, v := range g.Neighbors(u) {
				seen[v] = true
			}
			for v := 0; v < g.N(); v++ {
				if seen[v] != g.Adjacent(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCliqueEqualsMaxDepth(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		set := randomSet(rand.New(rand.NewSource(seed)), int(sz%40)+1)
		return New(set).CliqueNumber() == set.MaxDepth()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickColoringProperAndOptimal(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		set := randomSet(rand.New(rand.NewSource(seed)), int(sz%40)+1)
		g := New(set)
		colors := g.MinColoring()
		return g.ValidColoring(colors) && g.ChromaticNumber() == g.CliqueNumber()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		set := randomSet(rand.New(rand.NewSource(seed)), int(sz%32)+1)
		g := New(set)
		comps := g.ConnectedComponents()
		seen := map[int]bool{}
		for _, comp := range comps {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		if len(seen) != g.N() {
			return false
		}
		// No edges between different components.
		compOf := make([]int, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if compOf[u] != compOf[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	set := randomSet(rand.New(rand.NewSource(1)), 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = New(set)
	}
}

func BenchmarkMinColoring(b *testing.B) {
	g := New(randomSet(rand.New(rand.NewSource(1)), 2048))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MinColoring()
	}
}
