// Package decomp is the component-decomposition layer between the algorithm
// registry and the placement kernel: it splits an instance into the connected
// components of its interval graph (strictly time-disjoint sub-instances),
// solves the components concurrently on worker-private core.Scratch arenas,
// and merges the per-component schedules back into one.
//
// The merge is exact, not approximate. For the greedy family the mapping is
// the identity (component-local machine j → global machine j): components
// never overlap in time, so during the sequential whole-instance run the jobs
// other components placed on a machine neither constrain a job's feasibility
// nor change its span delta, and an inductive argument gives that the global
// run restricted to one component is exactly the component-local run — down
// to argmin ties, which other-component machines always lose (their delta is
// the full job length, the maximum, and ties go to the lowest index). The
// merged schedule is replayed through core.Assembly in the algorithm's global
// processing order, so the floating-point busy-time accumulation is
// reproduced bit for bit. The registry-wide differential suite pins
// decomposed == sequential bitwise for every algorithm that declares a
// Decomposer.
//
// Decomposition is purely opportunistic: Run declines (returning a nil
// schedule) when the instance is a single component or when no spare arenas
// are available, and the caller then takes the plain sequential path. Results
// therefore never depend on worker count or pool pressure — only latency
// does.
package decomp

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"busytime/internal/algo"
	"busytime/internal/core"
)

// Stats describes one decomposition attempt. The per-component slices are
// owned by the Runner and only valid until its next Run; callers that retain
// them must copy.
type Stats struct {
	// Components is the number of connected components the sweep found
	// (reported even when Run declines).
	Components int
	// Workers is the number of goroutines that solved components: the
	// calling goroutine plus the spare arenas leased from the pool.
	Workers int
	// Largest is the job count of the largest component.
	Largest int
	// Sweep, Solve and Merge are the wall times of the three phases:
	// component labeling, the concurrent per-component runs (as a whole),
	// and the ordered reassembly.
	Sweep, Solve, Merge time.Duration
	// Sizes[c] and Times[c] are component c's job count and solve wall
	// time, components in start order.
	Sizes []int32
	Times []time.Duration
}

// Runner owns the recyclable state of the decomposition layer: component
// labels, the scattered per-component processing orders, the local machine
// assignments and the scheduling/merge bookkeeping. A warm Runner re-serving
// an instance shape performs no allocations; like a core.Scratch it must not
// be shared between goroutines (the worker goroutines it spawns internally
// coordinate through it, but at most one Run is live at a time).
type Runner struct {
	labels   []int32 // job position → component id (start order)
	offsets  []int32 // component id → start of its segment in suborder
	cursor   []int32 // per-component scatter/replay cursors
	sizes    []int32 // component id → job count
	suborder []int32 // global order scattered component-major
	localm   []int32 // component-local machine per suborder position
	posOrder []int32 // identity order 0..n-1, for algorithms with nil Order
	used     []int32 // component id → local machine count
	base     []int32 // component id → global machine offset
	keys     []int64 // (size<<32|id) keys for largest-first scheduling
	times    []time.Duration
	errs     []error

	// Per-run shared state the worker goroutines coordinate through.
	ctx    context.Context
	in     *core.Instance
	d      *algo.Decomposer
	arenas []*core.Scratch
	next   atomic.Int64
	wg     sync.WaitGroup
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// NewRunnerPool builds a pool of the given width (min 1), mirroring
// engine.NewScratchPool: one recyclable Runner per slot on a buffered
// channel, shared across runs so the layer's buffers stay warm.
func NewRunnerPool(workers int) chan *Runner {
	if workers < 1 {
		workers = 1
	}
	pool := make(chan *Runner, workers)
	for i := 0; i < workers; i++ {
		pool <- NewRunner()
	}
	return pool
}

// grow returns buf resized to n, reallocating only beyond retained capacity.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Run decomposes in, solves the components on up to budget workers (the
// calling goroutine plus spare arenas leased non-blockingly from pool), and
// merges the component schedules into one schedule assembled on sc.
//
// A nil schedule with a nil error means Run declined — single component,
// budget ≤ 1, or no spare arena free — and the caller must run the plain
// sequential path; by the merge-identity argument the result is the same
// either way. The returned Stats are filled as far as the attempt got.
func (r *Runner) Run(ctx context.Context, in *core.Instance, d *algo.Decomposer, sc *core.Scratch, pool chan *core.Scratch, budget int) (*core.Schedule, Stats, error) {
	var st Stats
	n := in.N()
	if n == 0 || budget <= 1 {
		return nil, st, nil
	}

	t0 := time.Now()
	ncomp := r.sweep(in)
	st.Components = ncomp
	st.Sweep = time.Since(t0)
	if ncomp <= 1 {
		return nil, st, nil
	}

	extras := r.lease(pool, budget-1)
	if len(extras) == 0 {
		return nil, st, nil
	}
	defer func() {
		for _, a := range extras {
			pool <- a
		}
	}()

	// Scatter the algorithm's global processing order into contiguous
	// per-component segments (stable: each segment preserves the global
	// order restricted to its component).
	ord := r.posOrder
	if d.Order != nil {
		ord = d.Order(in)
	} else {
		ord = grow(ord, n)
		for i := range ord {
			ord[i] = int32(i)
		}
		r.posOrder = ord
	}
	r.offsets = grow(r.offsets, ncomp+1)
	clear(r.offsets[:ncomp+1])
	for _, c := range r.labels[:n] {
		r.offsets[c+1]++
	}
	r.sizes = grow(r.sizes, ncomp)
	for c := 0; c < ncomp; c++ {
		r.sizes[c] = r.offsets[c+1]
		r.offsets[c+1] += r.offsets[c]
		if int(r.sizes[c]) > st.Largest {
			st.Largest = int(r.sizes[c])
		}
	}
	st.Sizes = r.sizes[:ncomp]
	r.cursor = grow(r.cursor, ncomp)
	copy(r.cursor, r.offsets[:ncomp])
	r.suborder = grow(r.suborder, n)
	for _, j := range ord {
		c := r.labels[j]
		r.suborder[r.cursor[c]] = j
		r.cursor[c]++
	}
	r.localm = grow(r.localm, n)

	// Largest components first, so the tail of the run is small work: pack
	// (size, id) into one int64 key and sort ascending (no comparator
	// closure), then workers claim keys from the back.
	r.keys = grow(r.keys, ncomp)
	for c := 0; c < ncomp; c++ {
		r.keys[c] = int64(r.sizes[c])<<32 | int64(c)
	}
	slices.Sort(r.keys[:ncomp])
	r.times = grow(r.times, ncomp)
	clear(r.times[:ncomp])
	r.errs = grow(r.errs, ncomp)
	clear(r.errs[:ncomp])
	st.Times = r.times[:ncomp]

	t0 = time.Now()
	r.ctx, r.in, r.d = ctx, in, d
	r.next.Store(0)
	st.Workers = 1 + len(extras)
	r.wg.Add(len(extras))
	for w := range extras {
		go r.work(w)
	}
	r.drain(sc)
	r.wg.Wait()
	r.ctx, r.in, r.d = nil, nil, nil
	st.Solve = time.Since(t0)

	// Deterministic error selection: the lowest component id, i.e. the
	// earliest-starting failing component, independent of scheduling order.
	for c := 0; c < ncomp; c++ {
		if err := r.errs[c]; err != nil {
			return nil, st, err
		}
	}

	t0 = time.Now()
	s := r.merge(in, d, sc, ord, ncomp)
	st.Merge = time.Since(t0)
	return s, st, nil
}

// SweepCount runs only the component sweep and returns the component count,
// exposing the O(n) prefix of every decomposed run for benchmarks and
// instance triage (a count of 1 means the layer would decline).
func (r *Runner) SweepCount(in *core.Instance) int { return r.sweep(in) }

// sweep labels every job with its connected component (components numbered
// in start order) via a single reach sweep over the cached start order, and
// returns the component count. Strict `>` against the running reach matches
// closed interval semantics: touching intervals are connected, so
// consecutive components are separated by gaps of positive length.
func (r *Runner) sweep(in *core.Instance) int {
	n := in.N()
	r.labels = grow(r.labels, n)
	ncomp := 0
	reach := 0.0
	for _, j := range in.StartOrder() {
		iv := in.Jobs[j].Iv
		if ncomp == 0 || iv.Start > reach {
			ncomp++
			reach = iv.End
		} else if iv.End > reach {
			reach = iv.End
		}
		r.labels[j] = int32(ncomp - 1)
	}
	return ncomp
}

// lease claims up to max spare arenas from pool without blocking: intra- and
// inter-instance parallelism draw on the same pool, so total concurrency
// never exceeds the configured worker budget and an empty pool simply means
// no decomposition this run.
func (r *Runner) lease(pool chan *core.Scratch, max int) []*core.Scratch {
	r.arenas = r.arenas[:0]
	for len(r.arenas) < max {
		select {
		case sc := <-pool:
			r.arenas = append(r.arenas, sc)
		default:
			return r.arenas
		}
	}
	return r.arenas
}

// work is the body of one spawned worker: drain components on arena w.
func (r *Runner) work(w int) {
	defer r.wg.Done()
	r.drain(r.arenas[w])
}

// drain claims components largest-first off the shared counter and solves
// each on sc until none remain.
func (r *Runner) drain(sc *core.Scratch) {
	nt := int64(len(r.keys))
	for {
		t := r.next.Add(1) - 1
		if t >= nt {
			return
		}
		r.solveOne(int(uint32(r.keys[nt-1-t])), sc)
	}
}

// solveOne runs one component through the algorithm's RunComponent on the
// worker's arena, recording its error and wall time. Panics — the legacy
// error channel of registry algorithms — are converted to errors here, on
// the worker goroutine, so they cannot take the process down.
func (r *Runner) solveOne(c int, sc *core.Scratch) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case error:
			r.errs[c] = fmt.Errorf("decomp: component %d: %w", c, p)
		default:
			r.errs[c] = fmt.Errorf("decomp: component %d: %v", c, p)
		}
	}()
	if err := context.Cause(r.ctx); err != nil {
		r.errs[c] = err
		return
	}
	t0 := time.Now()
	lo, hi := r.offsets[c], r.offsets[c+1]
	r.errs[c] = r.d.RunComponent(r.ctx, r.in, r.suborder[lo:hi], sc, r.localm[lo:hi])
	r.times[c] = time.Since(t0)
}

// merge reassembles the per-component machine assignments into one sealed
// schedule on the caller's arena, replaying placements in the algorithm's
// global processing order so span accumulation (and hence Cost) reproduces
// the sequential run bit for bit. Identity merging overlays components on
// the shared machine range; stacked merging (the exact solver) offsets each
// component by the machine count of the components before it, in component
// start order — exactly the sequential solver's machineBase accumulation.
func (r *Runner) merge(in *core.Instance, d *algo.Decomposer, sc *core.Scratch, ord []int32, ncomp int) *core.Schedule {
	r.used = grow(r.used, ncomp)
	for c := 0; c < ncomp; c++ {
		hi := int32(0)
		for _, m := range r.localm[r.offsets[c]:r.offsets[c+1]] {
			if m >= hi {
				hi = m + 1
			}
		}
		r.used[c] = hi
	}
	r.base = grow(r.base, ncomp)
	machines := int32(0)
	if d.Stacked {
		for c := 0; c < ncomp; c++ {
			r.base[c] = machines
			machines += r.used[c]
		}
	} else {
		clear(r.base[:ncomp])
		for c := 0; c < ncomp; c++ {
			if r.used[c] > machines {
				machines = r.used[c]
			}
		}
	}
	copy(r.cursor, r.offsets[:ncomp])
	asm := core.BeginAssembly(in, sc, int(machines))
	for _, j := range ord {
		c := r.labels[j]
		p := r.cursor[c]
		r.cursor[c] = p + 1
		asm.Put(int(j), int(r.localm[p]+r.base[c]))
	}
	return asm.Finish()
}
