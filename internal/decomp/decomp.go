// Package decomp is the component-decomposition layer between the algorithm
// registry and the placement kernel: it splits an instance into the connected
// components of its interval graph (strictly time-disjoint sub-instances),
// solves the components concurrently on worker-private core.Scratch arenas,
// and merges the per-component schedules back into one.
//
// The merge is exact, not approximate. For the greedy family the mapping is
// the identity (component-local machine j → global machine j): components
// never overlap in time, so during the sequential whole-instance run the jobs
// other components placed on a machine neither constrain a job's feasibility
// nor change its span delta, and an inductive argument gives that the global
// run restricted to one component is exactly the component-local run — down
// to argmin ties, which other-component machines always lose (their delta is
// the full job length, the maximum, and ties go to the lowest index). The
// merged schedule is assembled through core.Assembly so the floating-point
// busy-time accumulation is reproduced bit for bit. Algorithms that declare
// Decomposer.Stitch take the fast path: each component's machine records and
// span pieces are adopted wholesale (Assembly.Graft) and only the scalar
// span deltas — recorded by the component runs into a per-component log —
// are replayed in the global processing order (Assembly.PutDelta), turning
// the merge from a second full span-union pass into O(components + machines)
// grafts plus one cheap linear scatter. Algorithms without Stitch (the exact
// solver, which computes assignments off-arena) keep the original Put
// replay. Either way the registry-wide differential suite pins decomposed ==
// sequential bitwise for every algorithm that declares a Decomposer.
//
// Solve additionally offers opt-in time-axis sharding for the regime where
// decomposition starves — a single (or dominant) component. The axis is cut
// at low-crossing bucket boundaries, the resulting shards are solved
// concurrently exactly like components, and the jobs crossing a cut are
// withheld and placed afterwards by a sequential reconciliation pass driven
// by the algorithm's declared ShardRule against the live shard schedules.
// Shard machines map to disjoint global machine ranges, so capacity never
// interacts across shards and the merged schedule is always feasible; the
// result is NOT bitwise-identical to the sequential run, which is why the
// path only runs when the caller asked for shards explicitly.
//
// Decomposition is purely opportunistic: Run and Solve decline (returning a
// nil schedule) when the instance is a single component and sharding is off
// or inapplicable, or when no spare arenas are available, and the caller
// then takes the plain sequential path. Results therefore never depend on
// worker count or pool pressure — only latency does (and, under sharding,
// on the shard count the caller fixed).
package decomp

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"busytime/internal/algo"
	"busytime/internal/core"
	"busytime/internal/interval"
)

// minShardJobs is the floor on the average jobs per time shard: cutting
// below it buys no latency (per-shard fixed costs dominate) while inflating
// the crossing set, so Solve caps the shard count at n/minShardJobs.
const minShardJobs = 32

// Stats describes one decomposition attempt. The per-component slices are
// owned by the Runner and only valid until its next Run; callers that retain
// them must copy.
type Stats struct {
	// Components is the number of connected components the sweep found
	// (reported even when Run declines).
	Components int
	// Workers is the number of goroutines that solved components or shards:
	// the calling goroutine plus the arenas leased from the pool.
	Workers int
	// Largest is the job count of the largest component.
	Largest int
	// Shards is the number of time shards solved when the run took the
	// time-sharding path, 0 otherwise.
	Shards int
	// Crossing is the number of jobs that crossed a shard cut and were
	// placed by the reconciliation pass (0 when Shards == 0).
	Crossing int
	// Sweep, Solve and Merge are the wall times of the three phases:
	// component labeling (plus cut selection when sharding), the concurrent
	// per-component or per-shard runs (as a whole), and the ordered
	// reassembly. Reconcile is the sequential crossing-job placement pass
	// between Solve and Merge (0 when Shards == 0).
	Sweep, Solve, Merge, Reconcile time.Duration
	// Sizes[c] and Times[c] are component (or shard) c's job count and solve
	// wall time, in start (or time) order.
	Sizes []int32
	Times []time.Duration
}

// capture holds the span pieces one worker copied out of its arena after
// each component solve, before the arena's next schedule recycles them:
// pieces is the flat piece store and ends[i] the cumulative piece count
// after the i-th captured machine, so machine runs are pieces[ends[i-1]:
// ends[i]]. Buffers are retained across runs.
type capture struct {
	pieces interval.Set
	ends   []int32
}

// workItem is one unit handed to a resident worker goroutine: solve either
// the component queue (drain) or a single time shard on the w-th arena of
// the carried Runner. Items carry the Runner so the resident goroutines
// reference only their channel and the Runner stays collectable — its
// finalizing cleanup closes the channel and the workers exit.
type workItem struct {
	r     *Runner
	w     int
	shard bool
}

func (it workItem) run() {
	r := it.r
	defer r.wg.Done()
	if it.shard {
		r.solveShard(it.w, r.scs[it.w])
	} else {
		r.drain(it.w, r.arenas[it.w-1])
	}
}

// worker is the resident goroutine body: it references only the channel, so
// an unreachable Runner can be collected (see Runner.dispatch).
func worker(ch chan workItem) {
	for it := range ch {
		it.run()
	}
}

// Runner owns the recyclable state of the decomposition layer: component
// labels, the scattered per-component processing orders, the local machine
// assignments, the stitch-capture buffers and the scheduling/merge
// bookkeeping. A warm Runner re-serving an instance shape performs no
// allocations; like a core.Scratch it must not be shared between goroutines
// (the resident workers it dispatches to coordinate through it, but at most
// one Run is live at a time).
type Runner struct {
	labels   []int32 // job position → component id (start order)
	slabels  []int32 // job position → shard id (crossing jobs get id = shards)
	offsets  []int32 // bucket id → start of its segment in suborder
	cursor   []int32 // per-bucket scatter/replay cursors
	sizes    []int32 // bucket id → job count
	suborder []int32 // global order scattered bucket-major
	localm   []int32 // bucket-local machine per suborder position
	posOrder []int32 // identity order 0..n-1, for algorithms with nil Order
	used     []int32 // bucket id → local machine count
	base     []int32 // bucket id → global machine offset
	keys     []int64 // (size<<32|id) keys for largest-first scheduling
	times    []time.Duration
	errs     []error

	// Stitch-merge capture state: one capture buffer per worker, the global
	// span-delta log (suborder-aligned), and per component the worker that
	// captured it and where in that worker's ends its machines begin.
	deltas     []float64
	caps       []capture
	compWorker []int32
	compSlot   []int32

	// Time-sharding state: per-boundary crossing and start counts, the
	// chosen cut times, per-crossing-job shard choices, captured per-machine
	// busy totals, and the per-shard arenas (scs[0] is the caller's).
	bcross []int32
	bstart []int32
	cuts   []float64
	xshard []int32
	totals []float64
	scs    []*core.Scratch

	// Resident worker pool: an unbuffered channel the (lazily spawned)
	// worker goroutines range over. started counts spawned goroutines; a
	// runtime cleanup closes the channel when the Runner becomes garbage.
	work    chan workItem
	started int

	// Pub is a mount point for a caller-layer companion that should ride
	// the pooled Runner between leases (the public Solver parks its
	// reusable per-component stats buffer here). The decomposition layer
	// never touches it.
	Pub any

	// Per-run shared state the worker goroutines coordinate through.
	ctx    context.Context
	in     *core.Instance
	d      *algo.Decomposer
	arenas []*core.Scratch
	next   atomic.Int64
	wg     sync.WaitGroup
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// NewRunnerPool builds a pool of the given width (min 1), mirroring
// engine.NewScratchPool: one recyclable Runner per slot on a buffered
// channel, shared across runs so the layer's buffers stay warm.
func NewRunnerPool(workers int) chan *Runner {
	if workers < 1 {
		workers = 1
	}
	pool := make(chan *Runner, workers)
	for i := 0; i < workers; i++ {
		pool <- NewRunner()
	}
	return pool
}

// grow returns buf resized to n, reallocating only beyond retained capacity.
// Contents are not preserved across a reallocation.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// extend is grow preserving existing contents — for buffers whose elements
// own retained sub-buffers (the per-worker capture set).
func extend[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	nb := make([]T, n)
	copy(nb, buf)
	return nb
}

// Run decomposes in, solves the components on up to budget workers (the
// calling goroutine plus spare arenas leased non-blockingly from pool), and
// merges the component schedules into one schedule assembled on sc.
//
// A nil schedule with a nil error means Run declined — single component,
// budget ≤ 1, or no spare arena free — and the caller must run the plain
// sequential path; by the merge-identity argument the result is the same
// either way. The returned Stats are filled as far as the attempt got.
func (r *Runner) Run(ctx context.Context, in *core.Instance, d *algo.Decomposer, sc *core.Scratch, pool chan *core.Scratch, budget int) (*core.Schedule, Stats, error) {
	return r.Solve(ctx, in, d, sc, pool, budget, 0)
}

// Solve is Run plus opt-in time-axis sharding: when shards ≥ 2, the
// algorithm declares a ShardRule, and the component sweep finds a single or
// dominant component (the regime where component parallelism starves), the
// instance's time axis is cut at up to shards−1 low-crossing boundaries,
// the shards are solved concurrently on leased arenas, the withheld
// crossing jobs are reconciled sequentially by the declared rule, and the
// result is assembled exactly like a stacked merge. Sharded schedules are
// feasible but not bitwise-identical to sequential; Stats.Shards > 0 tells
// the caller which path ran. Whenever sharding is inapplicable — axis too
// coarse, too many crossing jobs, no arenas — Solve falls back to the
// component path under the original bitwise contract.
func (r *Runner) Solve(ctx context.Context, in *core.Instance, d *algo.Decomposer, sc *core.Scratch, pool chan *core.Scratch, budget, shards int) (*core.Schedule, Stats, error) {
	var st Stats
	n := in.N()
	if n == 0 || (budget <= 1 && shards <= 1) {
		return nil, st, nil
	}

	t0 := time.Now()
	ncomp, largest := r.sweep(in)
	st.Components, st.Largest = ncomp, largest
	st.Sweep = time.Since(t0)

	if shards > 1 && d.Shard != algo.ShardNone && d.Stitch && !d.Stacked &&
		(ncomp == 1 || 2*largest >= n) {
		if s, err, ok := r.runSharded(ctx, in, d, sc, pool, shards, &st); ok {
			return s, st, err
		}
	}
	if ncomp <= 1 || budget <= 1 {
		return nil, st, nil
	}
	return r.runComponents(ctx, in, d, sc, pool, budget, ncomp, &st)
}

// runComponents is the component path: scatter the global order by
// component, solve components largest-first on the caller plus the leased
// arenas, and merge bitwise-identically to the sequential run.
func (r *Runner) runComponents(ctx context.Context, in *core.Instance, d *algo.Decomposer, sc *core.Scratch, pool chan *core.Scratch, budget, ncomp int, st *Stats) (*core.Schedule, Stats, error) {
	n := in.N()
	extras := r.lease(pool, budget-1)
	if len(extras) == 0 {
		return nil, *st, nil
	}
	defer func() {
		for _, a := range extras {
			pool <- a
		}
	}()

	// Scatter the algorithm's global processing order into contiguous
	// per-component segments (stable: each segment preserves the global
	// order restricted to its component).
	ord := r.order(in, d)
	r.offsets = grow(r.offsets, ncomp+1)
	clear(r.offsets[:ncomp+1])
	for _, c := range r.labels[:n] {
		r.offsets[c+1]++
	}
	r.sizes = grow(r.sizes, ncomp)
	for c := 0; c < ncomp; c++ {
		r.sizes[c] = r.offsets[c+1]
		r.offsets[c+1] += r.offsets[c]
	}
	st.Sizes = r.sizes[:ncomp]
	r.cursor = grow(r.cursor, ncomp)
	copy(r.cursor, r.offsets[:ncomp])
	r.suborder = grow(r.suborder, n)
	for _, j := range ord {
		c := r.labels[j]
		r.suborder[r.cursor[c]] = j
		r.cursor[c]++
	}
	r.localm = grow(r.localm, n)

	// Largest components first, so the tail of the run is small work: pack
	// (size, id) into one int64 key and sort ascending (no comparator
	// closure), then workers claim keys from the back.
	r.keys = grow(r.keys, ncomp)
	for c := 0; c < ncomp; c++ {
		r.keys[c] = int64(r.sizes[c])<<32 | int64(c)
	}
	slices.Sort(r.keys[:ncomp])
	r.times = grow(r.times, ncomp)
	clear(r.times[:ncomp])
	r.errs = grow(r.errs, ncomp)
	clear(r.errs[:ncomp])
	st.Times = r.times[:ncomp]

	workers := 1 + len(extras)
	stitch := d.Stitch && !d.Stacked
	if stitch {
		r.deltas = grow(r.deltas, n)
		r.caps = extend(r.caps, workers)
		for w := 0; w < workers; w++ {
			r.caps[w].pieces = r.caps[w].pieces[:0]
			r.caps[w].ends = r.caps[w].ends[:0]
		}
		r.compWorker = grow(r.compWorker, ncomp)
		r.compSlot = grow(r.compSlot, ncomp)
		r.used = grow(r.used, ncomp)
	}

	t0 := time.Now()
	r.ctx, r.in, r.d = ctx, in, d
	r.next.Store(0)
	st.Workers = workers
	r.dispatch(len(extras), false)
	r.drain(0, sc)
	r.wg.Wait()
	r.ctx, r.in, r.d = nil, nil, nil
	st.Solve = time.Since(t0)

	// Deterministic error selection: the lowest component id, i.e. the
	// earliest-starting failing component, independent of scheduling order.
	for c := 0; c < ncomp; c++ {
		if err := r.errs[c]; err != nil {
			return nil, *st, err
		}
	}

	t0 = time.Now()
	var s *core.Schedule
	if stitch {
		s = r.stitchMerge(in, sc, ord, ncomp)
	} else {
		s = r.merge(in, d, sc, ord, ncomp)
	}
	st.Merge = time.Since(t0)
	return s, *st, nil
}

// order resolves the algorithm's global processing order (the identity when
// the Decomposer declares none).
func (r *Runner) order(in *core.Instance, d *algo.Decomposer) []int32 {
	if d.Order != nil {
		return d.Order(in)
	}
	n := in.N()
	ord := grow(r.posOrder, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	r.posOrder = ord
	return ord
}

// dispatch hands workers items on the resident channel, spawning worker
// goroutines only up to the high-water mark: steady-state runs re-enter
// goroutines parked on the channel instead of spawning per run. The channel
// is closed by a runtime cleanup when the Runner itself becomes garbage, so
// engine-private runner pools cannot leak their workers.
func (r *Runner) dispatch(workers int, shard bool) {
	if workers <= 0 {
		return
	}
	if r.work == nil {
		ch := make(chan workItem)
		r.work = ch
		runtime.AddCleanup(r, func(c chan workItem) { close(c) }, ch)
	}
	for r.started < workers {
		r.started++
		go worker(r.work)
	}
	r.wg.Add(workers)
	for w := 1; w <= workers; w++ {
		r.work <- workItem{r: r, w: w, shard: shard}
	}
}

// SweepCount runs only the component sweep and returns the component count,
// exposing the O(n) prefix of every decomposed run for benchmarks and
// instance triage (a count of 1 means the layer would decline).
func (r *Runner) SweepCount(in *core.Instance) int {
	ncomp, _ := r.sweep(in)
	return ncomp
}

// sweep labels every job with its connected component (components numbered
// in start order) via a single reach sweep over the cached start order, and
// returns the component count plus the largest component's job count.
// Strict `>` against the running reach matches closed interval semantics:
// touching intervals are connected, so consecutive components are separated
// by gaps of positive length.
func (r *Runner) sweep(in *core.Instance) (ncomp, largest int) {
	n := in.N()
	r.labels = grow(r.labels, n)
	reach := 0.0
	run := 0
	for _, j := range in.StartOrder() {
		iv := in.Jobs[j].Iv
		if ncomp == 0 || iv.Start > reach {
			if run > largest {
				largest = run
			}
			run = 0
			ncomp++
			reach = iv.End
		} else if iv.End > reach {
			reach = iv.End
		}
		run++
		r.labels[j] = int32(ncomp - 1)
	}
	if run > largest {
		largest = run
	}
	return ncomp, largest
}

// lease claims up to max spare arenas from pool without blocking: intra- and
// inter-instance parallelism draw on the same pool, so total concurrency
// never exceeds the configured worker budget and an empty pool simply means
// no decomposition this run.
func (r *Runner) lease(pool chan *core.Scratch, max int) []*core.Scratch {
	r.arenas = r.arenas[:0]
	for len(r.arenas) < max {
		select {
		case sc := <-pool:
			r.arenas = append(r.arenas, sc)
		default:
			return r.arenas
		}
	}
	return r.arenas
}

// drain claims components largest-first off the shared counter and solves
// each as worker w on sc until none remain.
func (r *Runner) drain(w int, sc *core.Scratch) {
	nt := int64(len(r.keys))
	for {
		t := r.next.Add(1) - 1
		if t >= nt {
			return
		}
		r.solveOne(int(uint32(r.keys[nt-1-t])), w, sc)
	}
}

// solveOne runs one component through the algorithm's RunComponent on the
// worker's arena, recording its error and wall time, and — on the stitch
// path — capturing the component's machine span pieces off the arena before
// the worker's next component recycles them. Panics — the legacy error
// channel of registry algorithms — are converted to errors here, on the
// worker goroutine, so they cannot take the process down.
func (r *Runner) solveOne(c, w int, sc *core.Scratch) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case error:
			r.errs[c] = fmt.Errorf("decomp: component %d: %w", c, p)
		default:
			r.errs[c] = fmt.Errorf("decomp: component %d: %v", c, p)
		}
	}()
	if err := context.Cause(r.ctx); err != nil {
		r.errs[c] = err
		return
	}
	t0 := time.Now()
	lo, hi := r.offsets[c], r.offsets[c+1]
	stitch := r.d.Stitch && !r.d.Stacked
	if stitch {
		// Arm the per-component slice of the global delta log: capacity is
		// pinned to the component's placement count, so a misbehaving run
		// appending more grows away from the log instead of corrupting a
		// neighboring segment (and is caught by the length check below).
		sc.ArmSpanLog(r.deltas[lo:lo:hi])
	}
	err := r.d.RunComponent(r.ctx, r.in, r.suborder[lo:hi], sc, r.localm[lo:hi])
	if err == nil && stitch {
		err = r.capture(c, w, sc, int(hi-lo))
	}
	r.errs[c] = err
	r.times[c] = time.Since(t0)
}

// capture copies component c's per-machine span pieces from worker w's live
// schedule into the worker's capture buffer and records where they start,
// after checking the armed delta log saw exactly one placement per order
// entry (the stitch contract).
func (r *Runner) capture(c, w int, sc *core.Scratch, placements int) error {
	s := sc.LiveSchedule()
	if s == nil || len(s.SpanLog()) != placements {
		got := 0
		if s != nil {
			got = len(s.SpanLog())
		}
		return fmt.Errorf("decomp: component %d: span log recorded %d placements, want %d (Decomposer declares Stitch but RunComponent is not a one-placement-per-job kernel run)", c, got, placements)
	}
	cp := &r.caps[w]
	r.compWorker[c] = int32(w)
	r.compSlot[c] = int32(len(cp.ends))
	nm := s.NumMachines()
	r.used[c] = int32(nm)
	for m := 0; m < nm; m++ {
		cp.pieces = s.AppendMachineSpans(m, cp.pieces)
		cp.ends = append(cp.ends, int32(len(cp.pieces)))
	}
	return nil
}

// stitchMerge assembles the captured component runs under the identity
// machine mapping: per machine, each component's span pieces are grafted
// wholesale in component (= time) order, then one linear pass over the
// global processing order replays every placement's recorded span delta, so
// machine totals and Cost accumulate in exactly the sequential order — the
// whole merge is O(components + machines + n) instead of a second full
// span-union construction.
func (r *Runner) stitchMerge(in *core.Instance, sc *core.Scratch, ord []int32, ncomp int) *core.Schedule {
	machines := int32(0)
	for _, u := range r.used[:ncomp] {
		if u > machines {
			machines = u
		}
	}
	asm := core.BeginAssembly(in, sc, int(machines))
	for c := 0; c < ncomp; c++ {
		cp := &r.caps[r.compWorker[c]]
		slot := int(r.compSlot[c])
		lo := int32(0)
		if slot > 0 {
			lo = cp.ends[slot-1]
		}
		for m := int32(0); m < r.used[c]; m++ {
			hi := cp.ends[slot+int(m)]
			asm.Graft(int(m), cp.pieces[lo:hi])
			lo = hi
		}
	}
	copy(r.cursor, r.offsets[:ncomp])
	for _, j := range ord {
		c := r.labels[j]
		p := r.cursor[c]
		r.cursor[c] = p + 1
		asm.PutDelta(int(j), int(r.localm[p]), r.deltas[p])
	}
	return asm.Finish()
}

// merge reassembles the per-component machine assignments into one sealed
// schedule on the caller's arena, replaying placements in the algorithm's
// global processing order so span accumulation (and hence Cost) reproduces
// the sequential run bit for bit. Identity merging overlays components on
// the shared machine range; stacked merging (the exact solver) offsets each
// component by the machine count of the components before it, in component
// start order — exactly the sequential solver's machineBase accumulation.
func (r *Runner) merge(in *core.Instance, d *algo.Decomposer, sc *core.Scratch, ord []int32, ncomp int) *core.Schedule {
	r.used = grow(r.used, ncomp)
	for c := 0; c < ncomp; c++ {
		hi := int32(0)
		for _, m := range r.localm[r.offsets[c]:r.offsets[c+1]] {
			if m >= hi {
				hi = m + 1
			}
		}
		r.used[c] = hi
	}
	r.base = grow(r.base, ncomp)
	machines := int32(0)
	if d.Stacked {
		for c := 0; c < ncomp; c++ {
			r.base[c] = machines
			machines += r.used[c]
		}
	} else {
		clear(r.base[:ncomp])
		for c := 0; c < ncomp; c++ {
			if r.used[c] > machines {
				machines = r.used[c]
			}
		}
	}
	copy(r.cursor, r.offsets[:ncomp])
	asm := core.BeginAssembly(in, sc, int(machines))
	for _, j := range ord {
		c := r.labels[j]
		p := r.cursor[c]
		r.cursor[c] = p + 1
		asm.Put(int(j), int(r.localm[p]+r.base[c]))
	}
	return asm.Finish()
}

// runSharded is the time-sharding path. It returns ok == false (after
// releasing any leased arenas) when sharding is inapplicable and the caller
// should fall back to the component path: axis too coarse, not enough
// arenas, no low-crossing cuts, or too many crossing jobs.
func (r *Runner) runSharded(ctx context.Context, in *core.Instance, d *algo.Decomposer, sc *core.Scratch, pool chan *core.Scratch, shards int, st *Stats) (*core.Schedule, error, bool) {
	n := in.N()
	ax := in.TimeAxis()
	if ax.NB() < 2 {
		return nil, nil, false
	}
	want := shards
	if max := n / minShardJobs; want > max {
		want = max
	}
	if want < 2 {
		return nil, nil, false
	}

	extras := r.lease(pool, want-1)
	release := func() {
		for _, a := range extras {
			pool <- a
		}
	}
	if len(extras) == 0 {
		return nil, nil, false
	}

	t0 := time.Now()
	cuts := r.selectCuts(in, ax, len(extras)+1)
	k := len(cuts) + 1
	if k < 2 {
		release()
		st.Sweep += time.Since(t0)
		return nil, nil, false
	}
	crossing := r.partition(in, cuts, k)
	// Every crossing job is placed by the sequential reconcile pass; past a
	// quarter of the instance that pass dominates and sharding cannot pay.
	if crossing*4 > n {
		release()
		st.Sweep += time.Since(t0)
		return nil, nil, false
	}

	// Scatter the global order into k shard segments plus the crossing
	// segment (bucket k) — which, being the global order restricted to the
	// crossing jobs, is exactly the reconcile order.
	ord := r.order(in, d)
	r.offsets = grow(r.offsets, k+2)
	clear(r.offsets[:k+2])
	for _, c := range r.slabels[:n] {
		r.offsets[c+1]++
	}
	r.sizes = grow(r.sizes, k+1)
	for c := 0; c <= k; c++ {
		r.sizes[c] = r.offsets[c+1]
		r.offsets[c+1] += r.offsets[c]
	}
	r.cursor = grow(r.cursor, k+1)
	copy(r.cursor, r.offsets[:k+1])
	r.suborder = grow(r.suborder, n)
	for _, j := range ord {
		c := r.slabels[j]
		r.suborder[r.cursor[c]] = j
		r.cursor[c]++
	}
	r.localm = grow(r.localm, n)
	r.times = grow(r.times, k)
	clear(r.times[:k])
	r.errs = grow(r.errs, k)
	clear(r.errs[:k])
	st.Sweep += time.Since(t0)
	st.Shards, st.Crossing = k, crossing
	st.Sizes = r.sizes[:k]
	st.Times = r.times[:k]

	// Solve the shards 1:1 on caller + leased arenas, so every shard's
	// schedule is still live (queryable and growable) for reconciliation.
	r.scs = append(r.scs[:0], sc)
	r.scs = append(r.scs, extras[:k-1]...)
	t0 = time.Now()
	r.ctx, r.in, r.d = ctx, in, d
	st.Workers = k
	r.dispatch(k-1, true)
	r.solveShard(0, sc)
	r.wg.Wait()
	st.Solve = time.Since(t0)

	finish := func() {
		r.ctx, r.in, r.d = nil, nil, nil
		r.scs = r.scs[:0]
		release()
	}
	for s := 0; s < k; s++ {
		if err := r.errs[s]; err != nil {
			finish()
			return nil, err, true
		}
	}

	// Reconcile the crossing jobs sequentially, in the global processing
	// order, against the live shard schedules. Shard machines become
	// disjoint global machine ranges, so a shard-local capacity probe is
	// exact for the corresponding global machine.
	t0 = time.Now()
	nx := int32(crossing)
	xoff := r.offsets[k]
	r.xshard = grow(r.xshard, crossing)
	for i := int32(0); i < nx; i++ {
		p := xoff + i
		s, m := r.reconcileOne(in, d, int(r.suborder[p]), k)
		r.xshard[i] = int32(s)
		r.localm[p] = int32(m)
	}
	st.Reconcile = time.Since(t0)

	// Capture every shard machine's span pieces and busy total, then
	// assemble: graft + credit per machine, one linear pass for the job
	// lists. Totals are captured after reconciliation, so no delta log is
	// needed — each global machine's total is its shard machine's total.
	t0 = time.Now()
	r.caps = extend(r.caps, 1)
	cp := &r.caps[0]
	cp.pieces, cp.ends = cp.pieces[:0], cp.ends[:0]
	r.totals = r.totals[:0]
	r.used = grow(r.used, k)
	r.base = grow(r.base, k)
	machines := int32(0)
	for s := 0; s < k; s++ {
		sch := r.scs[s].LiveSchedule()
		nm := sch.NumMachines()
		r.used[s] = int32(nm)
		r.base[s] = machines
		machines += int32(nm)
		for m := 0; m < nm; m++ {
			cp.pieces = sch.AppendMachineSpans(m, cp.pieces)
			cp.ends = append(cp.ends, int32(len(cp.pieces)))
			r.totals = append(r.totals, sch.MachineBusy(m))
		}
	}
	asm := core.BeginAssembly(in, sc, int(machines))
	lo := int32(0)
	for g := int32(0); g < machines; g++ {
		hi := cp.ends[g]
		asm.Graft(int(g), cp.pieces[lo:hi])
		asm.Credit(int(g), r.totals[g])
		lo = hi
	}
	copy(r.cursor, r.offsets[:k+1])
	for _, j := range ord {
		c := r.slabels[j]
		p := r.cursor[c]
		r.cursor[c] = p + 1
		m := r.localm[p]
		if int(c) == k {
			m += r.base[r.xshard[p-xoff]]
		} else {
			m += r.base[c]
		}
		asm.PutPlaced(int(j), int(m))
	}
	s := asm.Finish()
	st.Merge = time.Since(t0)
	finish()
	return s, nil, true
}

// selectCuts picks up to k−1 cut times for a k-way shard split: for each
// job-count quantile target i·n/k it scans the axis boundaries whose
// started-job count falls within ±n/(4k) of the target and keeps the one
// the fewest jobs cross. Both per-boundary counts come from one O(n + nb)
// pass (a difference array over Axis.Interior ranges and a pointer walk
// over the cached start order); the quantile windows are disjoint, so one
// monotone boundary pointer serves all targets. A target with no boundary
// in its window is skipped — the two shards merge — so the returned cut
// count can be anywhere from 0 to k−1.
func (r *Runner) selectCuts(in *core.Instance, ax interval.Axis, k int) []float64 {
	n := in.N()
	nb := ax.NB()
	r.bcross = grow(r.bcross, nb+2)
	clear(r.bcross[:nb+2])
	for i := range in.Jobs {
		lo, hi := ax.Interior(in.Jobs[i].Iv)
		if lo > hi {
			continue
		}
		r.bcross[lo]++
		r.bcross[hi+1]--
	}
	for b := 1; b <= nb; b++ {
		r.bcross[b] += r.bcross[b-1]
	}
	r.bstart = grow(r.bstart, nb+1)
	so := in.StartOrder()
	p := 0
	for b := 0; b <= nb; b++ {
		t := ax.Boundary(b)
		for p < n && in.Jobs[so[p]].Iv.Start < t {
			p++
		}
		r.bstart[b] = int32(p)
	}

	r.cuts = r.cuts[:0]
	win := n / (4 * k)
	if win < 1 {
		win = 1
	}
	b := 1
	for i := 1; i < k; i++ {
		target := i * n / k
		wlo, whi := target-win, target+win
		best, bestCross := -1, int32(0)
		for b <= nb-1 && int(r.bstart[b]) < wlo {
			b++
		}
		for ; b <= nb-1 && int(r.bstart[b]) <= whi; b++ {
			if best < 0 || r.bcross[b] < bestCross {
				best, bestCross = b, r.bcross[b]
			}
		}
		if best >= 0 {
			r.cuts = append(r.cuts, ax.Boundary(best))
		}
	}
	return r.cuts
}

// partition labels every job with its shard — the unique shard whose time
// range contains it, under closed semantics: a job ending exactly on a cut
// belongs to the shard left of it. Jobs properly spanning a cut get label k
// (the crossing bucket) and are withheld for reconciliation. Returns the
// crossing count.
func (r *Runner) partition(in *core.Instance, cuts []float64, k int) int {
	n := in.N()
	r.slabels = grow(r.slabels, n)
	crossing := 0
	for i := range in.Jobs {
		iv := in.Jobs[i].Iv
		s := sort.SearchFloat64s(cuts, iv.End)
		if s > 0 && iv.Start < cuts[s-1] {
			r.slabels[i] = int32(k)
			crossing++
		} else {
			r.slabels[i] = int32(s)
		}
	}
	return crossing
}

// solveShard runs shard w's segment through RunComponent on sc, leaving the
// result live on the arena for reconciliation and capture. Error handling
// mirrors solveOne.
func (r *Runner) solveShard(w int, sc *core.Scratch) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case error:
			r.errs[w] = fmt.Errorf("decomp: shard %d: %w", w, p)
		default:
			r.errs[w] = fmt.Errorf("decomp: shard %d: %v", w, p)
		}
	}()
	if err := context.Cause(r.ctx); err != nil {
		r.errs[w] = err
		return
	}
	t0 := time.Now()
	lo, hi := r.offsets[w], r.offsets[w+1]
	r.errs[w] = r.d.RunComponent(r.ctx, r.in, r.suborder[lo:hi], sc, r.localm[lo:hi])
	r.times[w] = time.Since(t0)
}

// reconcileOne places one crossing job by the algorithm's declared rule
// against the live shard schedules and returns its (shard, shard-local
// machine). Every shard schedule is a schedule of the full instance, so
// probes and placements use the job's global index directly; placements are
// visible to subsequent reconciliations. When no machine in any shard fits,
// a machine is opened on the last shard (any choice is feasible — the new
// machine's global range is private).
func (r *Runner) reconcileOne(in *core.Instance, d *algo.Decomposer, j, k int) (int, int) {
	if d.Shard == algo.ShardBestFit {
		bs, bm, bd := -1, -1, 0.0
		for s := 0; s < k; s++ {
			sch := r.scs[s].LiveSchedule()
			m := sch.Placer().BestFitProbe(j)
			if m == core.Unassigned {
				continue
			}
			delta := sch.SpanDelta(m, in.Jobs[j].Iv)
			if bs < 0 || delta < bd {
				bs, bm, bd = s, m, delta
			}
		}
		if bs < 0 {
			return k - 1, r.scs[k-1].LiveSchedule().AssignNew(j)
		}
		r.scs[bs].LiveSchedule().Assign(j, bm)
		return bs, bm
	}
	for s := 0; s < k; s++ {
		sch := r.scs[s].LiveSchedule()
		if m := sch.FirstFitProbe(j); m != core.Unassigned {
			sch.Assign(j, m)
			return s, m
		}
	}
	return k - 1, r.scs[k-1].LiveSchedule().AssignNew(j)
}
