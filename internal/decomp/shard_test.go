package decomp

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"busytime/internal/algo"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
)

// shardCostBound is the documented empirical ceiling on sharded cost versus
// the sequential run of the same algorithm: cuts are picked at low-crossing
// boundaries and crossing jobs are re-placed by the algorithm's own rule, so
// on every generator family tested the overhead stays in the low single-digit
// percent; 1.25 leaves generous slack without letting a broken merge pass.
const shardCostBound = 1.25

// denseInstance is the sharding regime: one giant connected component that
// starves component decomposition. General at this density (n jobs over a
// horizon of n/10 units) has no positive-length gap anywhere.
func denseInstance(seed int64) *core.Instance {
	return generator.General(seed, 2000, 3, 200, 10)
}

// TestShardedSolveValidAndBounded is the differential gate of the sharding
// path: across algorithms (both reconcile rules), seeds and generator
// families, a sharded solve must engage, produce a Verify-clean schedule, and
// stay within shardCostBound of the sequential cost.
func TestShardedSolveValidAndBounded(t *testing.T) {
	names := []string{"firstfit", "bestfit", "firstfit-start", "online-firstfit"}
	pool := newPool(3)
	r := NewRunner()
	for seed := int64(0); seed < 4; seed++ {
		instances := []*core.Instance{
			denseInstance(seed),
			generator.CloudBurst(seed, 3000, 4, 400, 8, 5, 0.4),
			generator.Clustered(seed, 1, 1500, 3, 150, 6),
		}
		for fi, in := range instances {
			for _, name := range names {
				a, ok := algo.Lookup(name)
				if !ok {
					t.Fatalf("%s not registered", name)
				}
				d := a.Decompose
				if d == nil || d.Shard == algo.ShardNone {
					t.Fatalf("%s declares no shard rule", name)
				}
				label := fmt.Sprintf("%s seed=%d family=%d", name, seed, fi)
				seq := a.Run(in)
				sc := new(core.Scratch)
				got, st, err := r.Solve(context.Background(), in, d, sc, pool, 1, 4)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got == nil || st.Shards < 2 {
					t.Fatalf("%s: sharding did not engage (schedule=%v shards=%d components=%d largest=%d)",
						label, got, st.Shards, st.Components, st.Largest)
				}
				if err := got.Verify(); err != nil {
					t.Fatalf("%s: sharded schedule infeasible: %v", label, err)
				}
				if got.Cost() > seq.Cost()*shardCostBound {
					t.Fatalf("%s: sharded cost %v exceeds sequential %v × %v",
						label, got.Cost(), seq.Cost(), shardCostBound)
				}
				if st.Workers != st.Shards {
					t.Fatalf("%s: workers=%d, want one per shard (%d)", label, st.Workers, st.Shards)
				}
				total := st.Crossing
				for _, sz := range st.Sizes {
					total += int(sz)
				}
				if total != in.N() {
					t.Fatalf("%s: shard sizes %v + crossing %d cover %d jobs, want %d",
						label, st.Sizes, st.Crossing, total, in.N())
				}
				if st.Crossing*4 > in.N() {
					t.Fatalf("%s: crossing=%d exceeds the n/4 gate (n=%d)", label, st.Crossing, in.N())
				}
			}
		}
	}
}

// TestShardedOffIsUnsharded pins shards ≤ 1 to the exact unsharded behavior:
// on a single-component instance the layer declines (nil, nil), identically
// to Run.
func TestShardedOffIsUnsharded(t *testing.T) {
	in := denseInstance(1)
	d := firstfit.Decomposer()
	r := NewRunner()
	pool := newPool(3)
	for _, shards := range []int{0, 1} {
		got, st, err := r.Solve(context.Background(), in, d, new(core.Scratch), pool, 4, shards)
		if got != nil || err != nil {
			t.Fatalf("shards=%d: got schedule=%v err=%v, want decline (single component, sharding off)", shards, got, err)
		}
		if st.Shards != 0 {
			t.Fatalf("shards=%d: stats report %d shards on the unsharded path", shards, st.Shards)
		}
		if st.Components != 1 {
			t.Fatalf("shards=%d: dense instance swept into %d components, want 1", shards, st.Components)
		}
	}
}

// TestShardedDeclines pins every fall-back edge of the sharding gate: the
// layer must return (nil, nil) — or take the component path — rather than
// shard when sharding cannot pay or is not declared.
func TestShardedDeclines(t *testing.T) {
	ctx := context.Background()
	r := NewRunner()
	ff := firstfit.Decomposer()

	// Too few jobs: n/minShardJobs < 2 caps the shard count below 2.
	tiny := &core.Instance{Name: "tiny-chain", G: 2}
	for i := 0; i < 2*minShardJobs-2; i++ {
		tiny.Jobs = append(tiny.Jobs, core.Job{ID: i, Iv: interval.New(float64(i), float64(i)+1.5), Demand: 1})
	}
	if s, st, err := r.Solve(ctx, tiny, ff, new(core.Scratch), newPool(3), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("tiny: got schedule=%v err=%v shards=%d, want decline", s, err, st.Shards)
	}

	// Stacked decomposers (the exact solver) never shard: their component
	// runs compute assignments off-arena, so there is no live schedule to
	// reconcile against.
	if s, st, err := r.Solve(ctx, tiny, exact.Decomposer(exact.DefaultMaxJobs), new(core.Scratch), newPool(3), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("stacked: got schedule=%v err=%v shards=%d, want decline", s, err, st.Shards)
	}

	// No declared shard rule: the gate requires Decomposer.Shard.
	noRule := *ff
	noRule.Shard = algo.ShardNone
	if s, st, err := r.Solve(ctx, denseInstance(2), &noRule, new(core.Scratch), newPool(3), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("no rule: got schedule=%v err=%v shards=%d, want decline", s, err, st.Shards)
	}

	// Crossing-heavy: a laminar nest of intervals sharing one core — every
	// candidate cut is crossed by most of the instance, so crossing·4 > n
	// rejects the split.
	nest := &core.Instance{Name: "nest", G: 2}
	for i := 0; i < 100; i++ {
		nest.Jobs = append(nest.Jobs, core.Job{ID: i, Iv: interval.New(0.5*float64(i), 100-0.5*float64(i)), Demand: 1})
	}
	if s, st, err := r.Solve(ctx, nest, ff, new(core.Scratch), newPool(3), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("crossing-heavy: got schedule=%v err=%v shards=%d, want decline", s, err, st.Shards)
	}

	// Empty pool: no leased arena, no shard workers.
	if s, st, err := r.Solve(ctx, denseInstance(2), ff, new(core.Scratch), newPool(0), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("empty pool: got schedule=%v err=%v shards=%d, want decline", s, err, st.Shards)
	}

	// Multi-component instance without a dominant component: sharding defers
	// to component parallelism (which here is off via budget 1).
	multi := generator.Clustered(2, 6, 100, 3, 10, 4)
	if s, st, err := r.Solve(ctx, multi, ff, new(core.Scratch), newPool(3), 1, 4); s != nil || err != nil || st.Shards != 0 {
		t.Fatalf("multi-component: got schedule=%v err=%v shards=%d, want decline (components=%d)", s, err, st.Shards, st.Components)
	}
}

// TestShardedPoolRestored pins the lease contract on the sharding path: every
// spare arena returns to the pool whether the run shards, declines or errors.
func TestShardedPoolRestored(t *testing.T) {
	pool := newPool(3)
	r := NewRunner()
	ctx := context.Background()
	in := denseInstance(3)
	for i := 0; i < 3; i++ {
		s, st, err := r.Solve(ctx, in, firstfit.Decomposer(), new(core.Scratch), pool, 1, 4)
		if err != nil || s == nil || st.Shards < 2 {
			t.Fatalf("round %d: sharded run failed: schedule=%v err=%v shards=%d", i, s, err, st.Shards)
		}
		if len(pool) != 3 {
			t.Fatalf("round %d: pool holds %d arenas after success, want 3", i, len(pool))
		}
	}
	boom := &algo.Decomposer{
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			panic("shard blew up")
		},
		Stitch: true,
		Shard:  algo.ShardLowestFit,
	}
	if s, _, err := r.Solve(ctx, in, boom, new(core.Scratch), pool, 1, 4); s != nil || err == nil {
		t.Fatalf("got schedule=%v err=%v, want converted shard panic", s, err)
	}
	if len(pool) != 3 {
		t.Fatalf("pool holds %d arenas after shard error, want 3", len(pool))
	}
}

// TestShardedErrorSelection pins deterministic error reporting on the shard
// path: the lowest (earliest) failing shard wins, panics become errors, and
// the message names the shard.
func TestShardedErrorSelection(t *testing.T) {
	boom := &algo.Decomposer{
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			panic("shard blew up")
		},
		Stitch: true,
		Shard:  algo.ShardLowestFit,
	}
	r := NewRunner()
	s, st, err := r.Solve(context.Background(), denseInstance(4), boom, new(core.Scratch), newPool(3), 1, 4)
	if s != nil || err == nil {
		t.Fatalf("got schedule=%v err=%v, want converted panic", s, err)
	}
	if st.Shards < 2 {
		t.Fatalf("sharding did not engage (shards=%d)", st.Shards)
	}
	want := "decomp: shard 0: shard blew up"
	if err.Error() != want {
		t.Fatalf("error %q, want %q (lowest shard id)", err, want)
	}
}

// TestStitchMatchesPutReplay pins the stitch merge directly against the
// original Put-replay merge on the same decomposed runs: adopting span pieces
// wholesale and replaying only the recorded scalar deltas must reproduce the
// full re-merge bit for bit.
func TestStitchMatchesPutReplay(t *testing.T) {
	pool := newPool(3)
	r := NewRunner()
	for seed := int64(0); seed < 4; seed++ {
		in := generator.Clustered(seed, 6, 20, 3, 10, 4)
		stitch := firstfit.Decomposer()
		replay := *stitch
		replay.Stitch = false
		sc := new(core.Scratch)
		a, _, err := r.Run(context.Background(), in, stitch, sc, pool, 4)
		if err != nil || a == nil {
			t.Fatalf("seed=%d: stitch run: schedule=%v err=%v", seed, a, err)
		}
		// The stitch schedule lives on sc; extract before the replay run
		// recycles anything by assembling on a second arena.
		b, _, err := r.Run(context.Background(), in, &replay, new(core.Scratch), pool, 4)
		if err != nil || b == nil {
			t.Fatalf("seed=%d: replay run: schedule=%v err=%v", seed, b, err)
		}
		assertSame(t, fmt.Sprintf("stitch vs replay seed=%d", seed), a, b)
	}
}

// TestStitchContractViolation pins the guard on the stitch contract: a
// Decomposer that declares Stitch but whose RunComponent does not record one
// span delta per placement must fail loudly, not merge garbage.
func TestStitchContractViolation(t *testing.T) {
	lying := &algo.Decomposer{
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			_ = sc.NewSchedule(in) // picks up the armed log, then places nothing
			for i := range order {
				out[i] = 0 // fabricate assignments without kernel placements
			}
			return nil
		},
		Stitch: true,
	}
	in := generator.Clustered(5, 3, 10, 2, 8, 3)
	r := NewRunner()
	s, _, err := r.Run(context.Background(), in, lying, new(core.Scratch), newPool(2), 3)
	if s != nil || err == nil {
		t.Fatalf("got schedule=%v err=%v, want stitch-contract error", s, err)
	}
	if !strings.Contains(err.Error(), "span log") {
		t.Fatalf("error %q does not name the span-log contract", err)
	}
}

// FuzzShardedSolve fuzzes the sharding path on byte-derived instances:
// whenever the layer shards, the schedule must be feasible; whenever it does
// not (under budget 1), it must decline to nil exactly like the unsharded
// path.
func FuzzShardedSolve(f *testing.F) {
	f.Add([]byte{3, 9, 1, 4, 12, 2, 7, 7, 0})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2})
	f.Add([]byte{255, 1, 128, 64, 32, 16, 8, 4, 2, 1, 200, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// Derive ~2 jobs per input byte so instances clear the minShardJobs
		// floor; starts drift forward to build one long, dense component with
		// byte-controlled irregularities.
		in := &core.Instance{Name: "fuzz", G: 3}
		n := 4 * minShardJobs
		for i := 0; i < n; i++ {
			b0 := data[(2*i)%len(data)]
			b1 := data[(2*i+1)%len(data)]
			start := float64(i)/2 + float64(b0%16)
			in.Jobs = append(in.Jobs, core.Job{
				ID:     i,
				Iv:     interval.New(start, start+0.5+float64(b1%12)),
				Demand: 1,
			})
		}
		d := firstfit.Decomposer()
		r := NewRunner()
		pool := newPool(3)
		seq := firstfit.Schedule(in)
		got, st, err := r.Solve(context.Background(), in, d, new(core.Scratch), pool, 1, 4)
		if err != nil {
			t.Fatalf("sharded solve: %v", err)
		}
		if len(pool) != 3 {
			t.Fatalf("pool holds %d arenas, want 3", len(pool))
		}
		if got == nil {
			if st.Shards != 0 {
				t.Fatalf("declined but stats report %d shards", st.Shards)
			}
			return
		}
		if st.Shards < 2 {
			t.Fatalf("schedule produced without sharding under budget 1 (shards=%d)", st.Shards)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("sharded schedule infeasible: %v", err)
		}
		if got.Cost() > seq.Cost()*2 {
			t.Fatalf("sharded cost %v more than doubles sequential %v", got.Cost(), seq.Cost())
		}
	})
}
