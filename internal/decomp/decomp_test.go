package decomp

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"busytime/internal/algo"
	_ "busytime/internal/algo/baselines"
	"busytime/internal/algo/exact"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/generator"
	"busytime/internal/interval"
	_ "busytime/internal/online"
)

// newPool builds a scratch pool with the given number of spare arenas.
func newPool(spares int) chan *core.Scratch {
	pool := make(chan *core.Scratch, spares)
	for i := 0; i < spares; i++ {
		pool <- new(core.Scratch)
	}
	return pool
}

// unionFind is the quadratic reference partition: pairwise interval overlap
// (closed semantics: touching intervals connect) folded through union-find.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// referenceLabels computes the union-find partition of in's interval graph
// normalized like the sweep: components numbered by earliest start.
func referenceLabels(in *core.Instance) []int32 {
	n := in.N()
	u := newUnionFind(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ia, ib := in.Jobs[a].Iv, in.Jobs[b].Iv
			if ia.Start <= ib.End && ib.Start <= ia.End {
				u.union(a, b)
			}
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := map[int]int32{}
	for _, j := range in.StartOrder() {
		root := u.find(int(j))
		c, ok := id[root]
		if !ok {
			c = next
			next++
			id[root] = c
		}
		labels[j] = c
	}
	return labels
}

// TestSweepMatchesUnionFind pins the O(n) reach sweep against the quadratic
// pairwise-overlap union-find across generator families, including instances
// engineered to have many components.
func TestSweepMatchesUnionFind(t *testing.T) {
	r := NewRunner()
	for seed := int64(0); seed < 6; seed++ {
		instances := []*core.Instance{
			generator.General(seed, 80, 3, 60, 18),
			generator.Clustered(seed, 7, 9, 3, 8, 3),
			generator.Proper(seed, 50, 2, 40, 9),
			generator.CloudBurst(seed, 90, 4, 120, 8, 3, 0.5),
		}
		for fi, in := range instances {
			want := referenceLabels(in)
			ncomp, _ := r.sweep(in)
			wantComps := 0
			for _, c := range want {
				if int(c)+1 > wantComps {
					wantComps = int(c) + 1
				}
			}
			if ncomp != wantComps {
				t.Fatalf("seed=%d family=%d: sweep found %d components, union-find %d", seed, fi, ncomp, wantComps)
			}
			for j := 0; j < in.N(); j++ {
				if r.labels[j] != want[j] {
					t.Fatalf("seed=%d family=%d: job %d in component %d, union-find says %d", seed, fi, j, r.labels[j], want[j])
				}
			}
		}
	}
}

// FuzzSweepMatchesUnionFind fuzzes the reach sweep against union-find on
// byte-derived instances, covering touching endpoints, points, duplicates and
// containment chains that generators rarely emit.
func FuzzSweepMatchesUnionFind(f *testing.F) {
	f.Add([]byte{3, 9, 1, 4, 12, 2, 7, 7, 0})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2})
	f.Add([]byte{255, 1, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		in := &core.Instance{Name: "fuzz", G: 2}
		for i := 0; i+1 < len(data) && len(in.Jobs) < 64; i += 2 {
			start := float64(data[i] % 32)
			in.Jobs = append(in.Jobs, core.Job{
				ID:     len(in.Jobs),
				Iv:     interval.New(start, start+float64(data[i+1]%8)),
				Demand: 1,
			})
		}
		if len(in.Jobs) == 0 {
			return
		}
		r := NewRunner()
		want := referenceLabels(in)
		r.sweep(in)
		for j := range in.Jobs {
			if r.labels[j] != want[j] {
				t.Fatalf("job %d: sweep component %d, union-find %d", j, r.labels[j], want[j])
			}
		}
	})
}

// TestRunMatchesSequential pins the whole decompose–solve–merge path against
// the plain sequential run for the greedy identity-merge family, bitwise.
func TestRunMatchesSequential(t *testing.T) {
	names := []string{"firstfit", "bestfit", "firstfit-start", "online-firstfit"}
	pool := newPool(3)
	r := NewRunner()
	for seed := int64(0); seed < 4; seed++ {
		in := generator.Clustered(seed, 6, 20, 3, 10, 4)
		for _, name := range names {
			a, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			if a.Decompose == nil {
				t.Fatalf("%s has no Decomposer", name)
			}
			seq := a.Run(in)
			sc := new(core.Scratch)
			got, st, err := r.Run(context.Background(), in, a.Decompose, sc, pool, 4)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if got == nil {
				t.Fatalf("%s seed=%d: layer declined on a %d-component instance with spare arenas", name, seed, st.Components)
			}
			if st.Components < 2 || st.Workers < 2 {
				t.Fatalf("%s seed=%d: components=%d workers=%d, want ≥ 2 each", name, seed, st.Components, st.Workers)
			}
			assertSame(t, fmt.Sprintf("%s seed=%d", name, seed), seq, got)
			if err := got.Verify(); err != nil {
				t.Fatalf("%s seed=%d: merged schedule infeasible: %v", name, seed, err)
			}
		}
	}
}

// TestStackedMergeMatchesExact pins the stacked merge against the exact
// solver's own sequential component iteration.
func TestStackedMergeMatchesExact(t *testing.T) {
	pool := newPool(2)
	r := NewRunner()
	for seed := int64(0); seed < 3; seed++ {
		in := generator.Clustered(seed, 5, 7, 2, 6, 2)
		seq, err := exact.Solve(in)
		if err != nil {
			t.Fatalf("seed=%d: sequential exact: %v", seed, err)
		}
		sc := new(core.Scratch)
		got, st, runErr := r.Run(context.Background(), in, exact.Decomposer(exact.DefaultMaxJobs), sc, pool, 3)
		if runErr != nil {
			t.Fatalf("seed=%d: decomposed exact: %v", seed, runErr)
		}
		if got == nil {
			t.Fatalf("seed=%d: layer declined (components=%d)", seed, st.Components)
		}
		assertSame(t, fmt.Sprintf("exact seed=%d", seed), seq, got)
	}
}

// TestRunDeclines pins the decline contract: nil schedule, nil error, and a
// caller that can always fall back to the sequential path.
func TestRunDeclines(t *testing.T) {
	r := NewRunner()
	d := firstfit.Decomposer()
	ctx := context.Background()
	multi := generator.Clustered(1, 4, 10, 2, 8, 3)

	if s, _, err := r.Run(ctx, &core.Instance{Name: "empty", G: 2}, d, new(core.Scratch), newPool(2), 4); s != nil || err != nil {
		t.Fatalf("empty instance: got schedule=%v err=%v, want decline", s, err)
	}
	if s, _, err := r.Run(ctx, multi, d, new(core.Scratch), newPool(2), 1); s != nil || err != nil {
		t.Fatalf("budget 1: got schedule=%v err=%v, want decline", s, err)
	}
	single := &core.Instance{Name: "chain", G: 2} // one overlapping chain: one component
	for i := 0; i < 20; i++ {
		single.Jobs = append(single.Jobs, core.Job{ID: i, Iv: interval.New(float64(i), float64(i)+1.5), Demand: 1})
	}
	if s, st, err := r.Run(ctx, single, d, new(core.Scratch), newPool(2), 4); s != nil || err != nil {
		t.Fatalf("single component: got schedule=%v err=%v, want decline", s, err)
	} else if st.Components != 1 {
		t.Fatalf("single component: sweep reported %d components", st.Components)
	}
	if s, st, err := r.Run(ctx, multi, d, new(core.Scratch), newPool(0), 4); s != nil || err != nil {
		t.Fatalf("empty pool: got schedule=%v err=%v, want decline", s, err)
	} else if st.Components < 2 {
		t.Fatalf("empty pool: expected a multi-component instance, sweep saw %d", st.Components)
	}
}

// TestRunPoolRestored pins the lease contract: every spare arena goes back to
// the pool whether the run merges, declines or errors.
func TestRunPoolRestored(t *testing.T) {
	pool := newPool(3)
	r := NewRunner()
	in := generator.Clustered(3, 5, 12, 3, 9, 4)
	for i := 0; i < 4; i++ {
		if _, _, err := r.Run(context.Background(), in, firstfit.Decomposer(), new(core.Scratch), pool, 4); err != nil {
			t.Fatal(err)
		}
		if len(pool) != 3 {
			t.Fatalf("round %d: pool holds %d arenas, want 3", i, len(pool))
		}
	}
}

// TestErrorSelection pins deterministic error reporting: the lowest
// (earliest-starting) failing component wins regardless of solve order, and
// panics inside a component are converted to errors.
func TestErrorSelection(t *testing.T) {
	in := generator.Clustered(4, 6, 8, 2, 6, 2)
	sentinel := errors.New("component rejected")
	d := &algo.Decomposer{
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			return sentinel // every component fails; component 0 must win
		},
	}
	r := NewRunner()
	s, _, err := r.Run(context.Background(), in, d, new(core.Scratch), newPool(2), 3)
	if s != nil || !errors.Is(err, sentinel) {
		t.Fatalf("got schedule=%v err=%v, want wrapped sentinel", s, err)
	}

	dPanic := &algo.Decomposer{
		RunComponent: func(ctx context.Context, in *core.Instance, order []int32, sc *core.Scratch, out []int32) error {
			panic("component blew up")
		},
	}
	s, _, err = r.Run(context.Background(), in, dPanic, new(core.Scratch), newPool(2), 3)
	if s != nil || err == nil {
		t.Fatalf("got schedule=%v err=%v, want converted panic", s, err)
	}
	want := "decomp: component 0: component blew up"
	if err.Error() != want {
		t.Fatalf("error %q, want %q (lowest component id)", err, want)
	}
}

// TestWarmRunnerArenaSteadyState is the decomposition layer's alloc gate:
// once the runner and every arena have served the instance shape, repeated
// decomposed runs perform zero arena setup allocations on the caller's and
// every leased worker's scratch.
func TestWarmRunnerArenaSteadyState(t *testing.T) {
	in := generator.Clustered(5, 6, 25, 3, 10, 4)
	d, ok := algo.Lookup("bestfit")
	if !ok || d.Decompose == nil {
		t.Fatal("bestfit decomposer missing")
	}
	pool := newPool(3)
	sc := new(core.Scratch)
	r := NewRunner()
	run := func() {
		s, st, err := r.Run(context.Background(), in, d.Decompose, sc, pool, 4)
		if err != nil || s == nil {
			t.Fatalf("decomposed run failed: schedule=%v err=%v components=%d", s, err, st.Components)
		}
	}
	run() // cold: runner buffers grow
	// Component→arena pairing is racy under real parallelism, so warming by
	// repetition alone cannot guarantee a given arena has seen the largest
	// component. Instead warm every arena on the full instance shape, which
	// dominates every component's job count and machine count.
	arenas := []*core.Scratch{sc}
	for i := 0; i < 3; i++ {
		a := <-pool
		arenas = append(arenas, a)
		pool <- a
	}
	order := make([]int32, in.N())
	localm := make([]int32, in.N())
	for i := range order {
		order[i] = int32(i)
	}
	for _, a := range arenas {
		if err := d.Decompose.RunComponent(context.Background(), in, order, a, localm); err != nil {
			t.Fatalf("warming arena: %v", err)
		}
	}
	run() // warm the runner's merge path on the now-sized caller arena
	before := make([]int, len(arenas))
	for i, a := range arenas {
		before[i] = a.Stats().SetupAllocs
	}
	for i := 0; i < 5; i++ {
		run()
	}
	for i, a := range arenas {
		if got := a.Stats().SetupAllocs - before[i]; got != 0 {
			t.Errorf("arena %d performed %d setup allocations across 5 warm decomposed runs; want 0", i, got)
		}
	}
	// The Go-heap side of the same gate: with resident workers and recycled
	// stitch buffers a warm decomposed run performs (almost) no allocations
	// at all — the budget of 2 tolerates runtime jitter (stack growth,
	// timer churn), not a regression back to per-run spawning.
	if got := testing.AllocsPerRun(20, run); got > 2 {
		t.Errorf("warm decomposed run allocates %v objects/op; want ≤ 2", got)
	}
}

// assertSame fails unless the two schedules are byte-identical (machine
// count, assignment, per-machine slot order, bitwise cost).
func assertSame(t *testing.T, label string, a, b *core.Schedule) {
	t.Helper()
	if a.NumMachines() != b.NumMachines() {
		t.Fatalf("%s: %d machines vs %d", label, a.NumMachines(), b.NumMachines())
	}
	for j := 0; j < a.Instance().N(); j++ {
		if a.MachineOf(j) != b.MachineOf(j) {
			t.Fatalf("%s: job %d on machine %d vs %d", label, j, a.MachineOf(j), b.MachineOf(j))
		}
	}
	for m := 0; m < a.NumMachines(); m++ {
		ja, jb := a.MachineJobs(m), b.MachineJobs(m)
		if len(ja) != len(jb) {
			t.Fatalf("%s: machine %d holds %d vs %d jobs", label, m, len(ja), len(jb))
		}
		for i := range ja {
			if ja[i] != jb[i] {
				t.Fatalf("%s: machine %d slot %d: job %d vs %d", label, m, i, ja[i], jb[i])
			}
		}
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("%s: cost %v vs %v", label, a.Cost(), b.Cost())
	}
}
