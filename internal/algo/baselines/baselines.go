// Package baselines provides the comparison schedulers used by the
// benchmark harness:
//
//   - FirstFit by start time (FirstFit without the length sort — isolates
//     the contribution of step 1 of the paper's algorithm);
//   - NextFit in arrival (start) order;
//   - BestFit by minimal busy-time increase;
//   - the coloring-based machine-minimization schedule from the §1.1 remark
//     (⌈k/g⌉ machines from an optimal interval-graph coloring — optimal in
//     machine count, but not in busy time, which motivates the paper);
//   - RandomFit, FirstFit on a seeded random job order (noise floor).
package baselines

import (
	"cmp"
	"math/rand"
	"slices"

	"busytime/internal/algo"
	"busytime/internal/algo/firstfit"
	"busytime/internal/core"
	"busytime/internal/intgraph"
)

func init() {
	algo.Register(algo.Algorithm{
		Name:        "firstfit-start",
		Description: "FirstFit scanning jobs by start time (no length sort)",
		Run:         FirstFitByStart,
	})
	algo.Register(algo.Algorithm{
		Name:        "nextfit",
		Description: "NextFit in start order (single open machine)",
		Run:         NextFit,
	})
	algo.Register(algo.Algorithm{
		Name:        "bestfit",
		Description: "BestFit by minimal busy-time increase, longest job first",
		Run:         BestFit,
	})
	algo.Register(algo.Algorithm{
		Name:        "machine-min",
		Description: "⌈k/g⌉-machine schedule from optimal coloring (§1.1 remark)",
		Run:         MachineMin,
	})
	algo.Register(algo.Algorithm{
		Name:        "randomfit",
		Description: "FirstFit on a seeded random job order",
		Run:         func(in *core.Instance) *core.Schedule { return RandomFit(in, 1) },
	})
}

// FirstFitByStart runs FirstFit scanning jobs by (start, end, ID).
func FirstFitByStart(in *core.Instance) *core.Schedule {
	return firstfit.ScheduleOrder(in, startOrder(in))
}

// NextFit assigns jobs in start order to a single currently open machine,
// opening a new one when the job does not fit. Unlike properfit this is the
// same algorithm — NextFit is the §3.1 greedy; it is re-exported here under
// its bin-packing name for harness comparisons on non-proper instances,
// where its 2-approximation guarantee does not apply.
func NextFit(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	cur := -1
	for _, j := range startOrder(in) {
		if cur < 0 || !s.CanAssign(j, cur) {
			cur = s.OpenMachine()
		}
		s.Assign(j, cur)
	}
	return s
}

// BestFit scans jobs longest-first and assigns each to the machine whose
// busy time grows the least (ties to the lowest index), opening a new
// machine only when no machine fits. The growth of each candidate machine is
// read from its incrementally maintained span union (core.Schedule.SpanDelta)
// instead of rebuilding and re-sorting the machine's interval set per probe.
func BestFit(in *core.Instance) *core.Schedule {
	s := core.NewSchedule(in)
	for _, j := range lenOrder(in) {
		bestM, bestDelta := -1, 0.0
		for m := 0; m < s.NumMachines(); m++ {
			if !s.CanAssign(j, m) {
				continue
			}
			if delta := s.SpanDelta(m, in.Jobs[j].Iv); bestM < 0 || delta < bestDelta {
				bestM, bestDelta = m, delta
			}
		}
		if bestM < 0 {
			s.AssignNew(j)
			continue
		}
		s.Assign(j, bestM)
	}
	return s
}

// MachineMin builds the minimum-machine-count schedule of the §1.1 remark:
// color the interval graph optimally with k = ω colors, then pack color
// classes g at a time onto ⌈k/g⌉ machines. The result is optimal in the
// number of machines but can be far from optimal in busy time.
//
// MachineMin requires unit demands (the coloring argument does not apply to
// weighted jobs); it falls back to FirstFitByStart otherwise.
func MachineMin(in *core.Instance) *core.Schedule {
	for _, j := range in.Jobs {
		if j.Demand != 1 {
			return FirstFitByStart(in)
		}
	}
	g := intgraph.New(in.Set())
	classes := intgraph.ColorClasses(g.MinColoring())
	s := core.NewSchedule(in)
	for ci, class := range classes {
		if ci%in.G == 0 {
			s.OpenMachine()
		}
		m := s.NumMachines() - 1
		for _, j := range class {
			s.Assign(j, m)
		}
	}
	if in.N() == 0 {
		return s
	}
	return s
}

// RandomFit runs FirstFit on a deterministic pseudo-random permutation of
// the jobs derived from seed.
func RandomFit(in *core.Instance, seed int64) *core.Schedule {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return firstfit.ScheduleOrder(in, order)
}

func startOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	slices.SortFunc(order, func(a, b int) int {
		ja, jb := jobs[a], jobs[b]
		if ja.Iv.Start != jb.Iv.Start {
			if ja.Iv.Start < jb.Iv.Start {
				return -1
			}
			return 1
		}
		if ja.Iv.End != jb.Iv.End {
			if ja.Iv.End < jb.Iv.End {
				return -1
			}
			return 1
		}
		return cmp.Compare(ja.ID, jb.ID)
	})
	return order
}

func lenOrder(in *core.Instance) []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	jobs := in.Jobs
	slices.SortFunc(order, func(a, b int) int {
		ja, jb := jobs[a], jobs[b]
		if la, lb := ja.Len(), jb.Len(); la != lb {
			if la > lb {
				return -1
			}
			return 1
		}
		if ja.Iv.Start != jb.Iv.Start {
			if ja.Iv.Start < jb.Iv.Start {
				return -1
			}
			return 1
		}
		return cmp.Compare(ja.ID, jb.ID)
	})
	return order
}
